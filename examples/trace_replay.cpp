// Trace replay: generate traffic, write it through the real wire codec
// to a trace file, read it back, and replay it through an NF — original
// program, synthesized model, and the compiled dataplane engine
// (src/dataplane/, batch API) side by side; then once more through a
// 2-shard threaded-tier ShardedDataplane, with every shard validated
// against a reference engine fed that shard's packet subsequence.
//
//   trace_replay [nf-name] [packet-count]
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "dataplane/engine.h"
#include "dataplane/sharded.h"
#include "model/interp.h"
#include "netsim/packet_gen.h"
#include "netsim/trace.h"
#include "nfactor/pipeline.h"
#include "nfs/corpus.h"
#include "runtime/interp.h"

int main(int argc, char** argv) {
  using namespace nfactor;
  const std::string nf = argc > 1 ? argv[1] : "firewall";
  const int count = argc > 2 ? std::atoi(argv[2]) : 500;

  // 1. Generate a workload and round-trip it through the wire format.
  netsim::PacketGen gen(2026);
  auto packets = gen.batch(count);
  for (std::size_t i = 0; i < packets.size(); ++i) {
    packets[i].in_port = static_cast<int>(i % 2);
  }
  const std::string path = "/tmp/nfactor_replay.nftr";
  netsim::write_trace(path, packets);
  const auto replay = netsim::read_trace(path);
  std::printf("trace: wrote + re-read %zu frames via %s\n", replay.size(),
              path.c_str());

  // 2. Synthesize the model and replay the trace through all three
  // backends: the DSL runtime, the model interpreter (per packet), and
  // the compiled dataplane engine (one batch call over the whole trace).
  const auto r = pipeline::run_source(nfs::find(nf).source, nf);
  const auto store = model::initial_store(*r.module);
  runtime::Interpreter orig(*r.module);
  model::ModelInterpreter synth(r.model, store);

  dataplane::CompileOptions copts;
  copts.bindings = &store;
  const auto table = dataplane::compile(r.model, copts);
  dataplane::DataplaneEngine engine(table, store);
  dataplane::BatchOutput batch;
  engine.execute_batch(replay, batch);

  int fwd_orig = 0, fwd_model = 0, fwd_compiled = 0, agree = 0;
  const auto sends = batch.sends();
  std::size_t send_at = 0;  // sends are grouped by ascending src
  for (std::size_t k = 0; k < replay.size(); ++k) {
    const auto oo = orig.process(replay[k]);
    const auto mo = synth.process(replay[k]);
    std::vector<std::pair<netsim::Packet, int>> co;
    for (; send_at < sends.size() &&
           sends[send_at].src == static_cast<std::int32_t>(k);
         ++send_at) {
      co.emplace_back(sends[send_at].packet(), sends[send_at].port);
    }
    fwd_orig += oo.sent.empty() ? 0 : 1;
    fwd_model += mo.sent.empty() ? 0 : 1;
    fwd_compiled += co.empty() ? 0 : 1;
    bool same = oo.sent.size() == mo.sent.size() && mo.sent == co &&
                mo.matched_entry == batch.matched[k];
    for (std::size_t i = 0; same && i < oo.sent.size(); ++i) {
      same = oo.sent[i].first == mo.sent[i].first &&
             oo.sent[i].second == mo.sent[i].second;
    }
    agree += same ? 1 : 0;
  }
  std::printf("%s: %zu packets -> forwarded %d (original) / %d (model) / "
              "%d (compiled), all outputs agree on %d/%zu\n",
              nf.c_str(), replay.size(), fwd_orig, fwd_model, fwd_compiled,
              agree, replay.size());

  // 3. Sharded leg: the same trace through a 2-shard tier-2 (threaded)
  // ShardedDataplane. Each shard must match a fresh single engine fed
  // that shard's packet subsequence — verdicts, sends, global src
  // indices, and final state.
  dataplane::ShardOptions sopts;
  sopts.shards = 2;
  sopts.engine.tier = dataplane::Tier::kThreaded;
  dataplane::ShardedDataplane sharded(table, store, sopts);
  dataplane::ShardedOutput sout;
  sharded.execute_batch(replay, sout);
  int shard_ok = 0, shard_total = 0;
  for (int s = 0; s < sharded.shards(); ++s) {
    std::vector<netsim::Packet> sub;
    std::vector<std::int32_t> sub_src;
    for (std::size_t i = 0; i < replay.size(); ++i) {
      if (sout.shard_of[i] == s) {
        sub.push_back(replay[i]);
        sub_src.push_back(static_cast<std::int32_t>(i));
      }
    }
    dataplane::DataplaneEngine ref(table, store);
    dataplane::BatchOutput rout;
    ref.execute_batch(sub, rout);
    const auto& so = sout.shard_outputs()[static_cast<std::size_t>(s)];
    const auto rsends = rout.sends();
    const auto ssends = so.sends();
    bool ok = so.matched.size() == sub.size() && rsends.size() == ssends.size();
    for (std::size_t j = 0; ok && j < sub.size(); ++j) {
      ok = so.matched[j] == rout.matched[j] &&
           sout.matched[static_cast<std::size_t>(sub_src[j])] == rout.matched[j];
    }
    for (std::size_t j = 0; ok && j < rsends.size(); ++j) {
      ok = sub_src[static_cast<std::size_t>(rsends[j].src)] == ssends[j].src &&
           rsends[j].port == ssends[j].port &&
           rsends[j].packet() == ssends[j].packet();
    }
    for (const auto& v : r.model.ois_vars) {
      if (!ok) break;
      const runtime::Value* a = ref.state(v);
      const runtime::Value* b = sharded.engine(s).state(v);
      ok = (a == nullptr && b == nullptr) ||
           (a != nullptr && b != nullptr && runtime::value_eq(*a, *b));
    }
    shard_ok += ok ? 1 : 0;
    ++shard_total;
    std::printf("  shard %d: %zu packets, %zu sends, reference %s\n", s,
                sub.size(), ssends.size(), ok ? "agrees" : "DIVERGES");
  }
  std::printf("sharded (2 shards, threaded tier): %d/%d shards match their "
              "reference engine\n",
              shard_ok, shard_total);
  const bool pass =
      agree == static_cast<int>(replay.size()) && shard_ok == shard_total;
  return pass ? 0 : 1;
}
