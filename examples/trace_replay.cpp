// Trace replay: generate traffic, write it through the real wire codec
// to a trace file, read it back, and replay it through an NF — original
// program, synthesized model, and the compiled dataplane engine
// (src/dataplane/, batch API) side by side.
//
//   trace_replay [nf-name] [packet-count]
#include <cstdio>
#include <cstdlib>

#include "dataplane/engine.h"
#include "model/interp.h"
#include "netsim/packet_gen.h"
#include "netsim/trace.h"
#include "nfactor/pipeline.h"
#include "nfs/corpus.h"
#include "runtime/interp.h"

int main(int argc, char** argv) {
  using namespace nfactor;
  const std::string nf = argc > 1 ? argv[1] : "firewall";
  const int count = argc > 2 ? std::atoi(argv[2]) : 500;

  // 1. Generate a workload and round-trip it through the wire format.
  netsim::PacketGen gen(2026);
  auto packets = gen.batch(count);
  for (std::size_t i = 0; i < packets.size(); ++i) {
    packets[i].in_port = static_cast<int>(i % 2);
  }
  const std::string path = "/tmp/nfactor_replay.nftr";
  netsim::write_trace(path, packets);
  const auto replay = netsim::read_trace(path);
  std::printf("trace: wrote + re-read %zu frames via %s\n", replay.size(),
              path.c_str());

  // 2. Synthesize the model and replay the trace through all three
  // backends: the DSL runtime, the model interpreter (per packet), and
  // the compiled dataplane engine (one batch call over the whole trace).
  const auto r = pipeline::run_source(nfs::find(nf).source, nf);
  const auto store = model::initial_store(*r.module);
  runtime::Interpreter orig(*r.module);
  model::ModelInterpreter synth(r.model, store);

  dataplane::CompileOptions copts;
  copts.bindings = &store;
  const auto table = dataplane::compile(r.model, copts);
  dataplane::DataplaneEngine engine(table, store);
  dataplane::BatchOutput batch;
  engine.execute_batch(replay, batch);

  int fwd_orig = 0, fwd_model = 0, fwd_compiled = 0, agree = 0;
  const auto sends = batch.sends();
  std::size_t send_at = 0;  // sends are grouped by ascending src
  for (std::size_t k = 0; k < replay.size(); ++k) {
    const auto oo = orig.process(replay[k]);
    const auto mo = synth.process(replay[k]);
    std::vector<std::pair<netsim::Packet, int>> co;
    for (; send_at < sends.size() &&
           sends[send_at].src == static_cast<std::int32_t>(k);
         ++send_at) {
      co.emplace_back(sends[send_at].packet(), sends[send_at].port);
    }
    fwd_orig += oo.sent.empty() ? 0 : 1;
    fwd_model += mo.sent.empty() ? 0 : 1;
    fwd_compiled += co.empty() ? 0 : 1;
    bool same = oo.sent.size() == mo.sent.size() && mo.sent == co &&
                mo.matched_entry == batch.matched[k];
    for (std::size_t i = 0; same && i < oo.sent.size(); ++i) {
      same = oo.sent[i].first == mo.sent[i].first &&
             oo.sent[i].second == mo.sent[i].second;
    }
    agree += same ? 1 : 0;
  }
  std::printf("%s: %zu packets -> forwarded %d (original) / %d (model) / "
              "%d (compiled), all outputs agree on %d/%zu\n",
              nf.c_str(), replay.size(), fwd_orig, fwd_model, fwd_compiled,
              agree, replay.size());
  return agree == static_cast<int>(replay.size()) ? 0 : 1;
}
