// Trace replay: generate traffic, write it through the real wire codec
// to a trace file, read it back, and replay it through an NF — original
// program and synthesized model side by side.
//
//   trace_replay [nf-name] [packet-count]
#include <cstdio>
#include <cstdlib>

#include "model/interp.h"
#include "netsim/packet_gen.h"
#include "netsim/trace.h"
#include "nfactor/pipeline.h"
#include "nfs/corpus.h"
#include "runtime/interp.h"

int main(int argc, char** argv) {
  using namespace nfactor;
  const std::string nf = argc > 1 ? argv[1] : "firewall";
  const int count = argc > 2 ? std::atoi(argv[2]) : 500;

  // 1. Generate a workload and round-trip it through the wire format.
  netsim::PacketGen gen(2026);
  auto packets = gen.batch(count);
  for (std::size_t i = 0; i < packets.size(); ++i) {
    packets[i].in_port = static_cast<int>(i % 2);
  }
  const std::string path = "/tmp/nfactor_replay.nftr";
  netsim::write_trace(path, packets);
  const auto replay = netsim::read_trace(path);
  std::printf("trace: wrote + re-read %zu frames via %s\n", replay.size(),
              path.c_str());

  // 2. Synthesize the model and replay the trace through both sides.
  const auto r = pipeline::run_source(nfs::find(nf).source, nf);
  runtime::Interpreter orig(*r.module);
  model::ModelInterpreter synth(r.model, model::initial_store(*r.module));

  int fwd_orig = 0, fwd_model = 0, agree = 0;
  for (const auto& p : replay) {
    const auto oo = orig.process(p);
    const auto mo = synth.process(p);
    fwd_orig += oo.sent.empty() ? 0 : 1;
    fwd_model += mo.sent.empty() ? 0 : 1;
    bool same = oo.sent.size() == mo.sent.size();
    for (std::size_t i = 0; same && i < oo.sent.size(); ++i) {
      same = oo.sent[i].first == mo.sent[i].first &&
             oo.sent[i].second == mo.sent[i].second;
    }
    agree += same ? 1 : 0;
  }
  std::printf("%s: %zu packets -> forwarded %d (original) / %d (model), "
              "outputs agree on %d/%zu\n",
              nf.c_str(), replay.size(), fwd_orig, fwd_model, agree,
              replay.size());
  return agree == static_cast<int>(replay.size()) ? 0 : 1;
}
