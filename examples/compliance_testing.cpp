// Compliance-testing example (paper §4 "Testing", BUZZ-style): use the
// synthesized NAT model to generate concrete test traffic — including a
// priming packet that installs the translation entry before probing the
// state-dependent reverse path — then run the tests against the original
// NAT program and report compliance per model entry.
#include <cstdio>

#include "nfactor/pipeline.h"
#include "nfs/corpus.h"
#include "verify/compliance.h"

int main() {
  using namespace nfactor;

  const auto r = pipeline::run_source(nfs::find("nat").source, "nat");
  std::printf("NAT model: %zu entries\n\n", r.model.entries.size());

  const auto report = verify::run_compliance(*r.module, r.model);
  for (const auto& tc : report.cases) {
    std::printf("entry %d: %s\n", tc.entry_index,
                verify::to_string(tc.status).c_str());
    for (std::size_t i = 0; i < tc.sequence.size(); ++i) {
      const bool probe = i + 1 == tc.sequence.size();
      std::printf("   %s %s (in_port=%d)\n", probe ? "probe: " : "prime: ",
                  netsim::to_string(tc.sequence[i]).c_str(),
                  tc.sequence[i].in_port);
    }
    if (!tc.note.empty()) std::printf("   note: %s\n", tc.note.c_str());
  }
  std::printf("\nsummary: %s\n", report.summary().c_str());
  return report.ok() ? 0 : 1;
}
