// Quickstart: synthesize an NF forwarding model from source with NFactor.
//
//   $ ./examples/quickstart
//
// Runs the full pipeline on the paper's Figure-1 load balancer: structure
// normalization, lowering, packet/state slicing, StateAlyzer variable
// categorization, symbolic execution, and model refactoring — then prints
// the resulting stateful match/action tables and validates the model
// against the original program on random traffic.
#include <cstdio>

#include "model/model.h"
#include "netsim/packet_gen.h"
#include "nfactor/pipeline.h"
#include "nfs/corpus.h"
#include "verify/equivalence.h"

int main() {
  using namespace nfactor;

  // 1. Pick an NF program (here: the bundled Figure-1 load balancer).
  const auto& nf = nfs::find("lb");
  std::printf("== source (%s, %s structure) ==\n%s\n",
              std::string(nf.filename).c_str(),
              std::string(nf.structure).c_str(),
              std::string(nf.source).c_str());

  // 2. Run NFactor.
  const pipeline::PipelineResult r =
      pipeline::run_source(nf.source, std::string(nf.name));

  // 3. Inspect what the analysis found.
  std::printf("== StateAlyzer variable categories ==\n%s\n",
              r.cats.to_table().c_str());
  std::printf("slice: %d of %d source lines; %zu symbolic paths\n\n",
              r.loc_slice, r.loc_orig, r.slice_paths.size());

  // 4. The synthesized model.
  std::printf("== synthesized model ==\n%s\n", model::to_table(r.model).c_str());

  // 5. Trust, but verify: differential test against the original program.
  netsim::PacketGen gen(1234);
  auto packets = gen.batch(1000);
  const auto diff =
      verify::differential_test(*r.module, r.cats, r.model, packets);
  std::printf("differential test: %d packets, %d mismatches -> %s\n",
              diff.packets, diff.mismatches, diff.ok() ? "OK" : "FAILED");

  // 6. Ship it: the JSON artifact a vendor would hand to operators (§1).
  std::printf("\n== model JSON (excerpt) ==\n%.600s...\n",
              model::to_json(r.model).c_str());
  return diff.ok() ? 0 : 1;
}
