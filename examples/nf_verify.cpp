// nf-verify — network-scale topology verification with concrete witness
// replay (docs/verification.md). Loads a .topo file whose nodes name
// corpus NFs (or .nf file paths), synthesizes each distinct NF's model
// once in-process, then answers reachability / isolation / waypoint
// queries over the instance graph. Every SAT verdict is backed, when
// possible, by a concrete witness packet replayed hop-by-hop through
// the model interpreter, the wire codec and the compiled dataplane.
//
//   nf-verify --topology FILE --query SPEC [--query SPEC ...]
//             [--witness-out FILE] [--json-out FILE] [--jobs N]
//             [--max-hops N] [--max-paths N] [--quiet] [--metrics]
//
// --json-out writes one deterministic nfactor-topology-v1 document per
// query, one per line (byte-identical at any --jobs width — the CI
// determinism gate diffs exactly this file across widths).
// --witness-out writes the first replayed witness as a netsim trace.
// Exit code: 0 = every query holds, 1 = some query violated (or a
// witness failed to replay), 2 = usage / file / synthesis error.
#include <cstdio>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "cli_common.h"
#include "nfactor/pipeline.h"
#include "nfs/corpus.h"
#include "obs/obs.h"
#include "verify/topology.h"
#include "verify/witness.h"

namespace {

int usage() {
  std::fprintf(
      stderr,
      "usage: nf-verify --topology FILE --query SPEC [--query SPEC ...]\n"
      "                 [--witness-out FILE] [--json-out FILE] [--jobs N]\n"
      "                 [--max-hops N] [--max-paths N] [--quiet] [--metrics]\n"
      "Topology file format (docs/verification.md):\n"
      "  node <id> <nf> [cfg NAME=VALUE]...   # nf: corpus name or .nf path\n"
      "  edge <a>:<port|*> -> <b>:<port>\n"
      "  ingress <name> -> <node>:<port|*>\n"
      "  egress <name> <- <node>:<port|*>\n"
      "Query spec:\n"
      "  reach|isolate|waypoint <from> <to> [via <node>]\n"
      "      [where pkt.<field> OP <value> && ...]\n"
      "Exit: 0 = all queries hold, 1 = violation, 2 = usage error.\n");
  return 2;
}

bool parse_int(const std::string& s, int min, int& out) {
  try {
    std::size_t pos = 0;
    out = std::stoi(s, &pos);
    return pos == s.size() && out >= min;
  } catch (const std::exception&) {
    return false;
  }
}

/// Synthesizes each distinct NF once; results live here so model/module
/// pointers stay stable for the Topology's lifetime.
class Synthesizer {
 public:
  explicit Synthesizer(int jobs) {
    opts_.jobs = jobs;
    // Production pipeline settings, matching nf-synth: simplify with
    // config folding so models match the documented corpus tables.
    opts_.simplify.enabled = true;
    opts_.simplify.fold_config = true;
  }

  nfactor::verify::NodeModels resolve(const std::string& nf) {
    const auto it = cache_.find(nf);
    if (it != cache_.end()) {
      return {&it->second.model, it->second.module.get()};
    }
    std::string source;
    if (nf.size() > 3 && nf.ends_with(".nf")) {
      std::ifstream in(nf);
      if (!in) return {};
      std::ostringstream ss;
      ss << in.rdbuf();
      source = ss.str();
    } else {
      try {
        source = std::string(nfactor::nfs::find(nf).source);
      } catch (const std::exception&) {
        return {};
      }
    }
    auto result = nfactor::pipeline::run_source(source, nf, opts_);
    const auto [pos, _] = cache_.emplace(nf, std::move(result));
    return {&pos->second.model, pos->second.module.get()};
  }

 private:
  nfactor::pipeline::PipelineOptions opts_;
  std::map<std::string, nfactor::pipeline::PipelineResult> cache_;
};

}  // namespace

int main(int argc, char** argv) {
  using namespace nfactor;

  std::string topo_path;
  std::vector<std::string> query_specs;
  std::string witness_out;
  std::string json_out;
  verify::QueryOptions qopts;
  bool quiet = false;
  bool metrics = false;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto need_value = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "error: %s needs a value\n", flag);
        return nullptr;
      }
      return argv[++i];
    };
    if (arg == "--topology") {
      const char* v = need_value("--topology");
      if (v == nullptr) return usage();
      topo_path = v;
    } else if (arg == "--query") {
      const char* v = need_value("--query");
      if (v == nullptr) return usage();
      query_specs.emplace_back(v);
    } else if (arg == "--witness-out") {
      const char* v = need_value("--witness-out");
      if (v == nullptr) return usage();
      witness_out = v;
    } else if (arg == "--json-out") {
      const char* v = need_value("--json-out");
      if (v == nullptr) return usage();
      json_out = v;
    } else if (arg == "--jobs") {
      const char* v = need_value("--jobs");
      if (v == nullptr || !parse_int(v, 0, qopts.jobs)) return usage();
    } else if (arg == "--max-hops") {
      const char* v = need_value("--max-hops");
      if (v == nullptr || !parse_int(v, 1, qopts.max_hops)) return usage();
    } else if (arg == "--max-paths") {
      const char* v = need_value("--max-paths");
      int n = 0;
      if (v == nullptr || !parse_int(v, 1, n)) return usage();
      qopts.max_paths = static_cast<std::size_t>(n);
    } else if (arg == "--quiet") {
      quiet = true;
    } else if (arg == "--metrics") {
      metrics = true;
    } else {
      return nfcli::unknown_flag(arg, usage);
    }
  }
  if (topo_path.empty() || query_specs.empty()) return usage();

  std::ifstream in(topo_path);
  if (!in) {
    std::fprintf(stderr, "error: cannot read '%s'\n", topo_path.c_str());
    return 2;
  }
  std::ostringstream ss;
  ss << in.rdbuf();

  Synthesizer synth(qopts.jobs);
  verify::Topology topo;
  try {
    topo = verify::parse_topology(
        ss.str(), [&](const std::string& nf) { return synth.resolve(nf); });
  } catch (const std::exception& ex) {
    std::fprintf(stderr, "error: %s\n", ex.what());
    return 2;
  }
  if (!quiet) {
    std::printf("topology: %zu instances, %zu links, %zu ingress, %zu egress\n",
                topo.nodes.size(), topo.edges.size(), topo.ingress.size(),
                topo.egress.size());
  }

  symex::SolverCache cache;
  qopts.solver_cache = &cache;

  std::ofstream json_file;
  if (!json_out.empty()) {
    json_file.open(json_out);
    if (!json_file) {
      std::fprintf(stderr, "error: cannot write '%s'\n", json_out.c_str());
      return 2;
    }
  }

  bool all_hold = true;
  bool wrote_witness = false;
  for (const std::string& spec : query_specs) {
    verify::Query q;
    verify::QueryResult result;
    try {
      q = verify::parse_query(spec);
      result = verify::run_query(topo, q, qopts);
    } catch (const std::exception& ex) {
      std::fprintf(stderr, "error: %s\n", ex.what());
      return 2;
    }

    verify::ReplayReport replay;
    std::optional<verify::Witness> witness;
    if (result.sat) {
      witness = verify::find_witness(topo, result, &replay);
    }

    if (!quiet) {
      std::printf("\nquery: %s\n", spec.c_str());
      std::printf("  verdict: %s (%s, %s)\n",
                  result.holds ? "HOLDS" : "VIOLATED",
                  result.sat ? "sat" : "unsat",
                  result.stats.truncated ? "truncated" : "exhaustive");
      std::printf(
          "  frames: %zu, infeasible: %zu, paths: %zu, solver queries: %llu\n",
          result.stats.frames, result.stats.infeasible, result.paths.size(),
          static_cast<unsigned long long>(result.stats.solver_queries));
      if (result.sat) {
        if (witness) {
          std::printf("  witness: replayed %zu hop(s) consistently "
                      "(model + dataplane + wire codec)\n",
                      replay.hops.size());
          for (const auto& h : replay.hops) {
            std::printf("    %s entry %d -> port %d: %s\n", h.hop.node.c_str(),
                        h.hop.entry, h.out_port,
                        netsim::to_string(h.input).c_str());
          }
          std::printf("    egress: %s\n",
                      netsim::to_string(replay.egress).c_str());
        } else {
          std::printf("  witness: none of %zu path(s) materialized "
                      "(state-dependent or non-invertible)\n",
                      result.paths.size());
        }
      }
    }

    if (json_file.is_open()) {
      json_file << verify::topology_json(topo, result,
                                         witness ? &*witness : nullptr,
                                         witness ? &replay : nullptr)
                << "\n";
    }
    if (!witness_out.empty() && witness && !wrote_witness) {
      try {
        verify::write_witness_trace(witness_out, replay);
        wrote_witness = true;
        if (!quiet) {
          std::printf("  witness trace written to %s\n", witness_out.c_str());
        }
      } catch (const std::exception& ex) {
        std::fprintf(stderr, "error: %s\n", ex.what());
        return 2;
      }
    }

    if (!result.holds) all_hold = false;
    // A SAT reach verdict without a replayable witness is unproven —
    // surface it as a failure so CI gates on it.
    if (result.holds && result.sat && !witness) all_hold = false;
  }

  if (metrics) {
    auto& reg = obs::default_registry();
    const auto stats = cache.stats();
    const double rate =
        stats.hits + stats.misses > 0
            ? static_cast<double>(stats.hits) /
                  static_cast<double>(stats.hits + stats.misses)
            : 0.0;
    std::printf("\nmetrics:\n");
    std::printf("  verify.topology.queries: %llu\n",
                static_cast<unsigned long long>(
                    reg.counter("verify.topology.queries")));
    std::printf("  verify.topology.frames: %llu\n",
                static_cast<unsigned long long>(
                    reg.counter("verify.topology.frames")));
    std::printf("  verify.topology.solver.queries: %llu\n",
                static_cast<unsigned long long>(
                    reg.counter("verify.topology.solver.queries")));
    std::printf("  verify.topology.witnesses: %llu\n",
                static_cast<unsigned long long>(
                    reg.counter("verify.topology.witnesses")));
    std::printf("  solver cache: %llu hits / %llu misses (hit rate %.2f)\n",
                static_cast<unsigned long long>(stats.hits),
                static_cast<unsigned long long>(stats.misses), rate);
  }

  return all_hold ? 0 : 1;
}
