// nfactor_cli — the NFactor tool as a command line, the way a vendor
// would run it over their NF source (§1: "make our tool available to NF
// vendors who can run it on their proprietary code and provide only the
// resultant models to network operators").
//
//   nfactor_cli <file.nf> [--table|--json|--text|--slices|--vars|--stats]
//   nfactor_cli --corpus <name> [...same flags]
//   nfactor_cli --write-corpus <dir>
//
// Observability (docs/observability.md; may appear anywhere in argv):
//   --trace-out FILE       write the Chrome trace_event JSON of the run
//   --metrics-out FILE     write the metrics registry JSON
//   --obs-summary          print the one-line metrics digest to stderr
//   --provenance-out FILE  write per-rule provenance JSON (deterministic:
//                          byte-identical at any --jobs width)
//   --folded-out FILE      write the collapsed-stack "path flamegraph"
//   --explain [RULE|L<n>]  rule <-> source cross-reference with per-rule
//                          solver-time attribution (an output mode)
//
// This source builds as both `nfactor_cli` and `nf-synth` (the name the
// docs use for the synthesis front-end); they are the same binary.
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "analysis/dot.h"
#include "cli_common.h"
#include "ir/dot.h"
#include "lang/diagnostics.h"
#include "lint/lint.h"
#include "dataplane/engine.h"
#include "dataplane/threaded.h"
#include "model/fsm.h"
#include "model/model.h"
#include "model/sefl_export.h"
#include "model/validate.h"
#include "nfactor/pipeline.h"
#include "nfs/corpus.h"
#include "obs/obs.h"
#include "symex/intern.h"

namespace {

int usage() {
  std::fprintf(stderr,
               "usage: nfactor_cli <file.nf> [--table|--json|--text|--compile|"
               "--slices|--vars|--stats|--validate|--sefl|--fsm <statevar>|"
               "--dot-cfg|--dot-pdg|--lint|--lint-json|"
               "--explain [RULE|L<line>]]\n"
               "       nfactor_cli --corpus <name> [flags]   (bundled NFs: ");
  for (const auto& e : nfactor::nfs::corpus()) {
    std::fprintf(stderr, "%s ", std::string(e.name).c_str());
  }
  std::fprintf(stderr,
               ")\n       nfactor_cli --all              (summary over the "
               "bundled corpus)\n"
               "       nfactor_cli --write-corpus <dir>\n"
               "observability flags (any position): --trace-out FILE, "
               "--metrics-out FILE, --obs-summary,\n"
               "  --provenance-out FILE (per-rule provenance JSON, "
               "deterministic), --folded-out FILE\n"
               "  (collapsed-stack path flamegraph for standard renderers)\n"
               "execution flags (any position): --jobs N (symbolic-execution "
               "worker threads;\n"
               "  0 = one per core, 1 = serial; the model is byte-identical "
               "at any width)\n"
               "  --tier N (with --compile: 1 = flat table dump, 2 = "
               "threaded-code dump)\n"
               "lint/simplify flags (any position): --lint (diagnostics, "
               "exit 2 on errors), --lint-json,\n"
               "  --Werror (warnings become errors), --no-simplify (skip "
               "IR simplification before SE)\n");
  return 2;
}

struct ObsFlags {
  std::string trace_out;
  std::string metrics_out;
  bool summary = false;

  /// Write the requested exports. Call once, after all pipeline work.
  /// Returns false (with a message) when a file cannot be written.
  bool emit() const {
    if (!trace_out.empty()) {
      std::ofstream out(trace_out);
      if (!out) {
        std::fprintf(stderr, "error: cannot write %s\n", trace_out.c_str());
        return false;
      }
      out << nfactor::obs::default_tracer().to_chrome_json() << "\n";
    }
    if (!metrics_out.empty()) {
      std::ofstream out(metrics_out);
      if (!out) {
        std::fprintf(stderr, "error: cannot write %s\n", metrics_out.c_str());
        return false;
      }
      out << nfactor::obs::default_registry().to_json() << "\n";
    }
    if (summary) {
      std::fprintf(stderr, "%s\n",
                   nfactor::obs::default_registry().summary().c_str());
    }
    return true;
  }
};

/// Remove --trace-out/--metrics-out/--obs-summary (anywhere in args);
/// returns false on a flag missing its value.
bool extract_obs_flags(std::vector<std::string>& args, ObsFlags& obs) {
  for (auto it = args.begin(); it != args.end();) {
    if (*it == "--trace-out" || *it == "--metrics-out") {
      const bool is_trace = *it == "--trace-out";
      it = args.erase(it);
      if (it == args.end()) return false;
      (is_trace ? obs.trace_out : obs.metrics_out) = *it;
      it = args.erase(it);
    } else if (*it == "--obs-summary") {
      obs.summary = true;
      it = args.erase(it);
    } else {
      ++it;
    }
  }
  return true;
}

/// Remove `--jobs N` (anywhere in args). Returns false on a missing or
/// non-numeric value; leaves `jobs` untouched when the flag is absent.
bool extract_jobs_flag(std::vector<std::string>& args, int& jobs) {
  for (auto it = args.begin(); it != args.end();) {
    if (*it != "--jobs") {
      ++it;
      continue;
    }
    it = args.erase(it);
    if (it == args.end()) return false;
    try {
      std::size_t pos = 0;
      jobs = std::stoi(*it, &pos);
      if (pos != it->size() || jobs < 0) return false;
    } catch (const std::exception&) {
      return false;
    }
    it = args.erase(it);
  }
  return true;
}

/// Remove `FLAG VALUE` (anywhere in args). Returns false on a flag
/// missing its value; leaves `value` untouched when the flag is absent.
bool extract_value_flag(std::vector<std::string>& args, const std::string& flag,
                        std::string& value) {
  for (auto it = args.begin(); it != args.end();) {
    if (*it != flag) {
      ++it;
      continue;
    }
    it = args.erase(it);
    if (it == args.end()) return false;
    value = *it;
    it = args.erase(it);
  }
  return true;
}

/// Remove a boolean flag (anywhere in args); returns whether it was seen.
bool extract_flag(std::vector<std::string>& args, const std::string& flag) {
  bool seen = false;
  for (auto it = args.begin(); it != args.end();) {
    if (*it == flag) {
      seen = true;
      it = args.erase(it);
    } else {
      ++it;
    }
  }
  return seen;
}

void print_se_stats(const char* label, const nfactor::symex::ExecStats& s) {
  std::printf("%s: %s\n", label, s.to_string().c_str());
}

/// --lint / --lint-json: run the diagnostics engine instead of the
/// synthesis pipeline. Exit code 2 when errors (or, under --Werror,
/// warnings) were reported.
int run_lint(const std::string& source, const std::string& unit, bool json,
             bool werror) {
  nfactor::lang::DiagnosticSink sink;
  nfactor::lint::lint_source(source, unit, sink);
  if (json) {
    std::printf("%s\n", sink.render_json(unit).c_str());
  } else {
    std::fputs(sink.render_text(unit).c_str(), stdout);
    std::printf("%s: %d error(s), %d warning(s), %d note(s)\n", unit.c_str(),
                sink.errors(), sink.warnings(), sink.notes());
  }
  const bool fail = sink.has_errors() || (werror && sink.warnings() > 0);
  return fail ? 2 : 0;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace nfactor;

  std::vector<std::string> args(argv + 1, argv + argc);
  ObsFlags obs;
  if (!extract_obs_flags(args, obs)) return usage();
  int jobs = 0;  // 0 = leave ExecOptions defaults in charge
  if (!extract_jobs_flag(args, jobs)) return usage();
  std::string provenance_out;
  std::string folded_out;
  if (!extract_value_flag(args, "--provenance-out", provenance_out)) {
    return usage();
  }
  if (!extract_value_flag(args, "--folded-out", folded_out)) return usage();
  std::string tier_str;
  if (!extract_value_flag(args, "--tier", tier_str)) return usage();
  if (!tier_str.empty() && tier_str != "1" && tier_str != "2") {
    std::fprintf(stderr, "error: --tier must be 1 or 2\n");
    return usage();
  }
  const int tier = tier_str == "2" ? 2 : 1;
  const bool no_simplify = extract_flag(args, "--no-simplify");
  const bool werror = extract_flag(args, "--Werror");
  if (args.empty()) return usage();

  std::string source;
  std::string unit;
  std::size_t flag_start = 1;

  if (args[0] == "--write-corpus") {
    if (args.size() < 2) return usage();
    nfs::write_corpus(args[1]);
    std::printf("wrote %zu NF programs to %s\n", nfs::corpus().size(),
                args[1].c_str());
    return 0;
  }
  if (args[0] == "--all") {
    // Batch mode: one summary row per bundled NF. A trailing "!" marks a
    // degraded run (path cap / timeout / truncation) — see --stats.
    std::printf("%-12s | %-18s | %5s %5s %5s | %5s | %7s\n", "NF",
                "structure", "LoC", "slice", "path", "paths", "entries");
    for (int i = 0; i < 65; ++i) std::fputc('-', stdout);
    std::fputc('\n', stdout);
    for (const auto& e : nfactor::nfs::corpus()) {
      try {
        pipeline::PipelineOptions all_opts;
        all_opts.jobs = jobs;
        const auto r =
            pipeline::run_source(e.source, std::string(e.name), all_opts);
        std::printf("%-12s | %-18s | %5d %5d %5d | %5zu | %7zu%s\n",
                    std::string(e.name).c_str(),
                    std::string(e.structure).c_str(), r.loc_orig, r.loc_slice,
                    r.loc_path, r.slice_paths.size(), r.model.entries.size(),
                    r.degraded() ? " !" : "");
      } catch (const std::exception& ex) {
        std::printf("%-12s | error: %s\n", std::string(e.name).c_str(),
                    ex.what());
      }
    }
    return obs.emit() ? 0 : 1;
  }
  if (args[0] == "--corpus") {
    if (args.size() < 2) return usage();
    try {
      const auto& e = nfs::find(args[1]);
      source = std::string(e.source);
      unit = std::string(e.name);
    } catch (const std::exception& ex) {
      std::fprintf(stderr, "error: %s\n", ex.what());
      return 2;
    }
    flag_start = 2;
  } else {
    if (args[0].rfind("--", 0) == 0) {
      return nfcli::unknown_flag(args[0], usage);
    }
    std::ifstream in(args[0]);
    if (!in) {
      std::fprintf(stderr, "error: cannot open %s\n", args[0].c_str());
      return 2;
    }
    std::ostringstream ss;
    ss << in.rdbuf();
    source = ss.str();
    unit = args[0];
  }

  std::string mode = "--table";
  if (args.size() > flag_start) mode = args[flag_start];
  // Reject trailing arguments no mode consumes (previously silently
  // ignored): only --fsm and --explain take one operand.
  const std::size_t mode_args =
      (mode == "--fsm" || mode == "--explain") ? 1 : 0;
  if (args.size() > flag_start + 1 + mode_args) {
    return nfcli::unknown_flag(args[flag_start + 1 + mode_args], usage);
  }

  if (mode == "--lint" || mode == "--lint-json") {
    const int rc = run_lint(source, unit, mode == "--lint-json", werror);
    return obs.emit() ? rc : 1;
  }

  int rc = 0;
  try {
    pipeline::PipelineOptions opts;
    opts.jobs = jobs;
    if (mode == "--stats") opts.run_orig_se = true;
    // The CLI runs the full production pipeline: simplify on (with
    // config folding) unless --no-simplify asks for the raw IR.
    opts.simplify.enabled = !no_simplify;
    opts.simplify.fold_config = !no_simplify;
    const auto r = pipeline::run_source(source, unit, opts);

    if (mode == "--table") {
      std::printf("%s", model::to_table(r.model).c_str());
    } else if (mode == "--json") {
      std::printf("%s", model::to_json(r.model).c_str());
    } else if (mode == "--text") {
      std::printf("%s", model::to_text(r.model).c_str());
    } else if (mode == "--compile") {
      // Lower through the dataplane compiler with the module's concrete
      // initial store, so config specialization matches what a deployed
      // engine would run (docs/dataplane.md). The dump is deterministic:
      // byte-identical at any --jobs width. --tier 2 lowers one step
      // further, to the threaded-code program (dataplane/threaded.h);
      // that dump is also deterministic, and deliberately independent of
      // the dispatch mechanism the build selected.
      const auto store = model::initial_store(*r.module);
      dataplane::CompileOptions copts;
      copts.bindings = &store;
      const auto table = dataplane::compile(r.model, copts);
      if (tier == 2) {
        std::printf("%s", dataplane::lower_threaded(table).to_text(table).c_str());
      } else {
        std::printf("%s", table.to_text().c_str());
      }
    } else if (mode == "--vars") {
      std::printf("%s", r.cats.to_table().c_str());
    } else if (mode == "--slices") {
      std::printf("packet slice: %zu nodes, state slice: %zu nodes, union: "
                  "%zu of %zu statements\n",
                  r.pkt_slice.size(), r.state_slice.size(),
                  r.union_slice.size(), r.module->body.real_nodes().size());
      for (const int id : r.union_slice) {
        const auto& n = r.module->body.node(id);
        if (n.kind == ir::InstrKind::kEntry || n.kind == ir::InstrKind::kExit) {
          continue;
        }
        std::printf("  %s\n", n.to_string().c_str());
      }
    } else if (mode == "--validate") {
      const auto report = model::validate(r.model);
      std::printf("%s\n%s\n", report.ok() ? "model OK" : "model has issues",
                  report.summary().c_str());
      rc = report.ok() ? 0 : 1;
    } else if (mode == "--sefl") {
      std::printf("%s", model::to_sefl(r.model).c_str());
    } else if (mode == "--fsm") {
      if (args.size() <= flag_start + 1) {
        std::fprintf(stderr, "--fsm needs a state variable; oisVars are: ");
        for (const auto& v : r.cats.ois_vars) {
          std::fprintf(stderr, "%s ", v.c_str());
        }
        std::fprintf(stderr, "\n");
        return 2;
      }
      const auto fsm = model::extract_fsm(r.model, args[flag_start + 1]);
      std::printf("%s\n%s", fsm.to_text().c_str(), fsm.to_dot().c_str());
    } else if (mode == "--explain") {
      std::string query;
      if (args.size() > flag_start + 1) query = args[flag_start + 1];
      std::printf("%s", obs::explain(r.provenance, query).c_str());
    } else if (mode == "--dot-cfg") {
      std::printf("%s", ir::to_dot(r.module->body, unit, r.union_slice).c_str());
    } else if (mode == "--dot-pdg") {
      std::printf("%s", analysis::to_dot(*r.pdg, unit).c_str());
    } else if (mode == "--stats") {
      std::printf("LoC: orig=%d slice=%d path=%d\n", r.loc_orig, r.loc_slice,
                  r.loc_path);
      std::printf("stages: lower=%.2fms simplify=%.2fms slicing=%.2fms "
                  "se_slice=%.2fms model=%.2fms se_orig=%.2fms total=%.2fms\n",
                  r.times.lower_ms, r.times.simplify_ms, r.times.slicing_ms,
                  r.times.se_slice_ms, r.times.model_ms, r.times.se_orig_ms,
                  r.times.total_ms);
      std::printf("simplify: %s%s\n", r.simplify_stats.to_string().c_str(),
                  no_simplify ? " (disabled by --no-simplify)" : "");
      print_se_stats("SE(slice)", r.slice_stats);
      print_se_stats("SE(orig) ", r.orig_stats);
      std::printf("intern: %s\n", symex::intern_summary().c_str());
    } else {
      return nfcli::unknown_flag(mode, usage);
    }

    // Provenance exports work in any output mode: the record is built by
    // the pipeline unconditionally (aggregation is cheap bookkeeping).
    if (!provenance_out.empty()) {
      std::ofstream out(provenance_out);
      if (!out) {
        std::fprintf(stderr, "error: cannot write %s\n", provenance_out.c_str());
        return 1;
      }
      out << obs::to_json(r.provenance);
    }
    if (!folded_out.empty()) {
      std::ofstream out(folded_out);
      if (!out) {
        std::fprintf(stderr, "error: cannot write %s\n", folded_out.c_str());
        return 1;
      }
      out << obs::to_folded(r.provenance);
    }

    // A degraded SE run means the printed model may be incomplete —
    // always say so, whatever the output mode.
    if (r.degraded()) {
      std::fprintf(stderr,
                   "nfactor: warning: symbolic execution degraded "
                   "(slice: %s%s%s / orig: %s%s%s) — model may be missing "
                   "entries\n",
                   r.slice_stats.hit_path_cap ? "path-cap " : "",
                   r.slice_stats.timed_out ? "timeout " : "",
                   r.slice_stats.paths_truncated > 0 ? "truncated" : "-",
                   r.orig_stats.hit_path_cap ? "path-cap " : "",
                   r.orig_stats.timed_out ? "timeout " : "",
                   r.orig_stats.paths_truncated > 0 ? "truncated" : "-");
    }
  } catch (const std::exception& ex) {
    std::fprintf(stderr, "nfactor: %s\n", ex.what());
    return 1;
  }
  if (!obs.emit()) return 1;
  return rc;
}
