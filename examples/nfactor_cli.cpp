// nfactor_cli — the NFactor tool as a command line, the way a vendor
// would run it over their NF source (§1: "make our tool available to NF
// vendors who can run it on their proprietary code and provide only the
// resultant models to network operators").
//
//   nfactor_cli <file.nf> [--table|--json|--text|--slices|--vars|--stats]
//   nfactor_cli --corpus <name> [...same flags]
//   nfactor_cli --write-corpus <dir>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>

#include "analysis/dot.h"
#include "ir/dot.h"
#include "model/fsm.h"
#include "model/model.h"
#include "model/sefl_export.h"
#include "model/validate.h"
#include "nfactor/pipeline.h"
#include "nfs/corpus.h"

namespace {

int usage() {
  std::fprintf(stderr,
               "usage: nfactor_cli <file.nf> [--table|--json|--text|--slices|"
               "--vars|--stats|--validate|--sefl|--fsm <statevar>|--dot-cfg|--dot-pdg]\n"
               "       nfactor_cli --corpus <name> [flags]   (bundled NFs: ");
  for (const auto& e : nfactor::nfs::corpus()) {
    std::fprintf(stderr, "%s ", std::string(e.name).c_str());
  }
  std::fprintf(stderr,
               ")\n       nfactor_cli --all              (summary over the "
               "bundled corpus)\n"
               "       nfactor_cli --write-corpus <dir>\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace nfactor;
  if (argc < 2) return usage();

  std::string source;
  std::string unit;
  int flag_start = 2;

  if (std::strcmp(argv[1], "--write-corpus") == 0) {
    if (argc < 3) return usage();
    nfs::write_corpus(argv[2]);
    std::printf("wrote %zu NF programs to %s\n", nfs::corpus().size(), argv[2]);
    return 0;
  }
  if (std::strcmp(argv[1], "--all") == 0) {
    // Batch mode: one summary row per bundled NF.
    std::printf("%-12s | %-18s | %5s %5s %5s | %5s | %7s\n", "NF",
                "structure", "LoC", "slice", "path", "paths", "entries");
    for (int i = 0; i < 65; ++i) std::fputc('-', stdout);
    std::fputc('\n', stdout);
    for (const auto& e : nfactor::nfs::corpus()) {
      try {
        const auto r = pipeline::run_source(e.source, std::string(e.name));
        std::printf("%-12s | %-18s | %5d %5d %5d | %5zu | %7zu\n",
                    std::string(e.name).c_str(),
                    std::string(e.structure).c_str(), r.loc_orig, r.loc_slice,
                    r.loc_path, r.slice_paths.size(), r.model.entries.size());
      } catch (const std::exception& ex) {
        std::printf("%-12s | error: %s\n", std::string(e.name).c_str(),
                    ex.what());
      }
    }
    return 0;
  }
  if (std::strcmp(argv[1], "--corpus") == 0) {
    if (argc < 3) return usage();
    try {
      const auto& e = nfs::find(argv[2]);
      source = std::string(e.source);
      unit = std::string(e.name);
    } catch (const std::exception& ex) {
      std::fprintf(stderr, "error: %s\n", ex.what());
      return 2;
    }
    flag_start = 3;
  } else {
    std::ifstream in(argv[1]);
    if (!in) {
      std::fprintf(stderr, "error: cannot open %s\n", argv[1]);
      return 2;
    }
    std::ostringstream ss;
    ss << in.rdbuf();
    source = ss.str();
    unit = argv[1];
  }

  std::string mode = "--table";
  if (argc > flag_start) mode = argv[flag_start];

  try {
    pipeline::PipelineOptions opts;
    if (mode == "--stats") opts.run_orig_se = true;
    const auto r = pipeline::run_source(source, unit, opts);

    if (mode == "--table") {
      std::printf("%s", model::to_table(r.model).c_str());
    } else if (mode == "--json") {
      std::printf("%s", model::to_json(r.model).c_str());
    } else if (mode == "--text") {
      std::printf("%s", model::to_text(r.model).c_str());
    } else if (mode == "--vars") {
      std::printf("%s", r.cats.to_table().c_str());
    } else if (mode == "--slices") {
      std::printf("packet slice: %zu nodes, state slice: %zu nodes, union: "
                  "%zu of %zu statements\n",
                  r.pkt_slice.size(), r.state_slice.size(),
                  r.union_slice.size(), r.module->body.real_nodes().size());
      for (const int id : r.union_slice) {
        const auto& n = r.module->body.node(id);
        if (n.kind == ir::InstrKind::kEntry || n.kind == ir::InstrKind::kExit) {
          continue;
        }
        std::printf("  %s\n", n.to_string().c_str());
      }
    } else if (mode == "--validate") {
      const auto report = model::validate(r.model);
      std::printf("%s\n%s\n", report.ok() ? "model OK" : "model has issues",
                  report.summary().c_str());
      return report.ok() ? 0 : 1;
    } else if (mode == "--sefl") {
      std::printf("%s", model::to_sefl(r.model).c_str());
    } else if (mode == "--fsm") {
      if (argc <= flag_start + 1) {
        std::fprintf(stderr, "--fsm needs a state variable; oisVars are: ");
        for (const auto& v : r.cats.ois_vars) {
          std::fprintf(stderr, "%s ", v.c_str());
        }
        std::fprintf(stderr, "\n");
        return 2;
      }
      const auto fsm = model::extract_fsm(r.model, argv[flag_start + 1]);
      std::printf("%s\n%s", fsm.to_text().c_str(), fsm.to_dot().c_str());
    } else if (mode == "--dot-cfg") {
      std::printf("%s", ir::to_dot(r.module->body, unit, r.union_slice).c_str());
    } else if (mode == "--dot-pdg") {
      std::printf("%s", analysis::to_dot(*r.pdg, unit).c_str());
    } else if (mode == "--stats") {
      std::printf("LoC: orig=%d slice=%d path=%d\n", r.loc_orig, r.loc_slice,
                  r.loc_path);
      std::printf("slicing: %.2fms, SE(slice): %.2fms (%zu paths), "
                  "SE(orig): %.2fms (%zu paths%s)\n",
                  r.times.slicing_ms, r.times.se_slice_ms,
                  r.slice_paths.size(), r.times.se_orig_ms,
                  r.orig_paths.size(),
                  r.orig_stats.hit_path_cap ? ", capped" : "");
    } else {
      return usage();
    }
  } catch (const std::exception& ex) {
    std::fprintf(stderr, "nfactor: %s\n", ex.what());
    return 1;
  }
  return 0;
}
