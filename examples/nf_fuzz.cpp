// nf-fuzz — the differential fuzzing harness as a command line
// (docs/fuzzing.md). Generates random NF programs, judges each one with
// the oracle matrix (simplify off/on × jobs 1/4, runtime-vs-model
// differential + path-partition exclusivity + serial/parallel model
// identity), shrinks every failure to a minimal reproducer, and exits
// nonzero if anything failed — the CI fuzz-smoke gate.
//
//   nf-fuzz [--seed N] [--budget N] [--packets N] [--no-shrink]
//           [--corpus-out DIR] [--verbose] [--metrics-out FILE]
//           [--provenance] [--no-compiled-leg] [--no-threaded-leg]
//           [--no-sharded-leg]
//   nf-fuzz --replay DIR            (re-judge a committed corpus)
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "cli_common.h"
#include "fuzz/corpus.h"
#include "fuzz/fuzzer.h"
#include "fuzz/oracle.h"
#include "obs/obs.h"

namespace {

int usage() {
  std::fprintf(
      stderr,
      "usage: nf-fuzz [--seed N] [--budget N] [--packets N] [--no-shrink]\n"
      "               [--corpus-out DIR] [--verbose] [--metrics-out FILE]\n"
      "               [--provenance] [--no-compiled-leg] [--no-threaded-leg]\n"
      "               [--no-sharded-leg]\n"
      "       nf-fuzz --replay DIR\n"
      "Generates random NF programs and differentially tests the synthesis\n"
      "pipeline (docs/fuzzing.md). Exits 1 on any divergence, crash, or\n"
      "nondeterminism; shrunk reproducers are printed (and persisted with\n"
      "--corpus-out). --replay re-judges every program in a corpus\n"
      "directory and fails if any entry no longer passes the oracle.\n"
      "--provenance attaches synthesis provenance to divergence reports\n"
      "(implicated model entry + source lines) and records\n"
      "fuzz.provenance.* metrics. Each non-degraded leg also replays the\n"
      "batch through the compiled dataplane engine (src/dataplane/) at\n"
      "tier 1 (table walk) and tier 2 (threaded code), and the baseline\n"
      "leg is additionally run through ShardedDataplane at 2 and 3 shards\n"
      "with every shard checked against a reference engine.\n"
      "--no-compiled-leg / --no-threaded-leg / --no-sharded-leg disable\n"
      "those comparisons.\n");
  return 2;
}

bool parse_u64(const std::string& s, std::uint64_t& out) {
  try {
    std::size_t pos = 0;
    out = std::stoull(s, &pos);
    return pos == s.size();
  } catch (const std::exception&) {
    return false;
  }
}

int replay(const std::string& dir, int packets) {
  using namespace nfactor;
  fuzz::CorpusManager corpus(dir);
  std::vector<fuzz::CorpusEntry> entries;
  try {
    entries = corpus.load();
  } catch (const std::exception& e) {
    std::fprintf(stderr, "nf-fuzz: %s\n", e.what());
    return 1;
  }
  fuzz::OracleOptions oopts;
  oopts.packets = packets;
  const fuzz::DifferentialOracle oracle(oopts);
  int failures = 0;
  for (const auto& e : entries) {
    const auto report = oracle.run(e.source);
    const bool bad = report.failed();
    std::printf("%-40s %-12s first-seen %s  -> %s%s\n", e.file.c_str(),
                e.classification.c_str(), e.first_seen.c_str(),
                fuzz::to_string(report.cls).c_str(),
                report.degraded ? " (degraded)" : "");
    if (bad) {
      ++failures;
      std::printf("  leg: %s\n  detail: %s\n", report.leg.c_str(),
                  report.detail.c_str());
    }
  }
  std::printf("replayed %zu corpus entries, %d failing\n", entries.size(),
              failures);
  return failures == 0 ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace nfactor;

  fuzz::FuzzOptions opts;
  std::string replay_dir;
  std::string metrics_out;

  std::vector<std::string> args(argv + 1, argv + argc);
  for (std::size_t i = 0; i < args.size(); ++i) {
    const std::string& a = args[i];
    auto value = [&](std::string& out) {
      if (i + 1 >= args.size()) return false;
      out = args[++i];
      return true;
    };
    std::string v;
    if (a == "--seed") {
      if (!value(v) || !parse_u64(v, opts.seed)) return usage();
    } else if (a == "--budget") {
      std::uint64_t n = 0;
      if (!value(v) || !parse_u64(v, n) || n == 0) return usage();
      opts.budget = static_cast<int>(n);
    } else if (a == "--packets") {
      std::uint64_t n = 0;
      if (!value(v) || !parse_u64(v, n) || n == 0) return usage();
      opts.oracle.packets = static_cast<int>(n);
    } else if (a == "--no-shrink") {
      opts.shrink = false;
    } else if (a == "--provenance") {
      opts.oracle.attach_provenance = true;
    } else if (a == "--no-compiled-leg") {
      opts.oracle.compiled_leg = false;
    } else if (a == "--no-threaded-leg") {
      opts.oracle.threaded_leg = false;
    } else if (a == "--no-sharded-leg") {
      opts.oracle.sharded_leg = false;
    } else if (a == "--corpus-out") {
      if (!value(opts.corpus_dir)) return usage();
    } else if (a == "--replay") {
      if (!value(replay_dir)) return usage();
    } else if (a == "--verbose") {
      opts.verbose = true;
    } else if (a == "--metrics-out") {
      if (!value(metrics_out)) return usage();
    } else {
      return nfcli::unknown_flag(a, usage);
    }
  }

  int rc = 0;
  if (!replay_dir.empty()) {
    rc = replay(replay_dir, opts.oracle.packets);
  } else {
    fuzz::Fuzzer fuzzer(opts);
    const fuzz::FuzzSummary sum = fuzzer.run();
    std::printf("nf-fuzz: %s\n", sum.to_string().c_str());
    for (const auto& f : sum.findings) {
      std::printf("---- finding: %s (leg %s, structure %s, seed %llx)\n",
                  fuzz::to_string(f.cls).c_str(), f.leg.c_str(),
                  transform::to_string(f.structure).c_str(),
                  static_cast<unsigned long long>(f.seed));
      std::printf("  detail: %s\n", f.detail.c_str());
      if (!f.implicated_summary.empty()) {
        std::printf("  %s\n", f.implicated_summary.c_str());
      }
      if (!f.corpus_file.empty()) {
        std::printf("  persisted: %s\n", f.corpus_file.c_str());
      }
      std::printf("  shrunk reproducer:\n%s", f.shrunk_source.c_str());
    }
    if (!sum.ok()) rc = 1;
  }

  if (!metrics_out.empty()) {
    std::ofstream out(metrics_out);
    if (!out) {
      std::fprintf(stderr, "error: cannot write %s\n", metrics_out.c_str());
      return 1;
    }
    out << obs::default_registry().to_json() << "\n";
  }
  return rc;
}
