// nf-diff — semantic model differencing, fault localization, and
// oracle-validated repair as a command line (docs/diffing.md).
// Synthesizes models for two NF sources in one process (so structural
// fingerprints are comparable), reports the per-config/per-rule semantic
// deltas with ranked file:line suspects, and — with --repair — searches
// for a patch to the *new* side that restores equivalence to the old
// (reference) side.
//
//   nf-diff <old> <new> [--text|--json] [--diff-json FILE] [--repair]
//           [--repair-out FILE] [--no-localize] [--max-suspects N]
//           [--packets N] [--seed N] [--jobs N] [--no-simplify]
//
// <old>/<new> are .nf file paths or corpus:NAME for a bundled corpus NF.
// Exit code: 0 = semantically equivalent, 1 = differences found (or a
// synthesis error), 2 = usage / file error.
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "cli_common.h"
#include "diff/diff.h"
#include "nfs/corpus.h"

namespace {

int usage() {
  std::fprintf(
      stderr,
      "usage: nf-diff <old> <new> [--text|--json] [--diff-json FILE]\n"
      "               [--repair] [--repair-out FILE] [--no-localize]\n"
      "               [--max-suspects N] [--packets N] [--seed N]\n"
      "               [--jobs N] [--no-simplify]\n"
      "<old>/<new>: a .nf file path, or corpus:NAME for a bundled NF\n"
      "Synthesizes both models and reports the semantic diff — per config\n"
      "table, per rule, classified added/removed/guard-/action-/state-\n"
      "changed — with provenance-ranked file:line suspects per delta\n"
      "(docs/diffing.md). --repair searches for a patch to <new> that\n"
      "restores model equivalence to <old>, validated on the differential\n"
      "oracle's packet batch. --diff-json writes the deterministic\n"
      "nfactor-diff-v1 JSON (byte-identical at any --jobs width).\n"
      "Exit: 0 = equivalent, 1 = differences or synthesis error, 2 = usage.\n");
  return 2;
}

bool parse_int(const std::string& s, int min, int& out) {
  try {
    std::size_t pos = 0;
    out = std::stoi(s, &pos);
    return pos == s.size() && out >= min;
  } catch (const std::exception&) {
    return false;
  }
}

/// Load an NF source from a path or a corpus:NAME reference.
bool load_side(const std::string& arg, std::string& source, std::string& name) {
  if (arg.rfind("corpus:", 0) == 0) {
    try {
      const auto& e = nfactor::nfs::find(arg.substr(7));
      source = std::string(e.source);
      name = std::string(e.name);
      return true;
    } catch (const std::exception& ex) {
      std::fprintf(stderr, "error: %s\n", ex.what());
      return false;
    }
  }
  std::ifstream in(arg);
  if (!in) {
    std::fprintf(stderr, "error: cannot open %s\n", arg.c_str());
    return false;
  }
  std::ostringstream ss;
  ss << in.rdbuf();
  source = ss.str();
  name = arg;
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace nfactor;

  std::vector<std::string> args(argv + 1, argv + argc);
  std::vector<std::string> positional;
  diff::DiffOptions opts;
  bool emit_json = false;
  std::string diff_json_out;
  std::string repair_out;

  for (std::size_t i = 0; i < args.size(); ++i) {
    const std::string& a = args[i];
    auto value = [&](std::string& out) {
      if (i + 1 >= args.size()) return false;
      out = args[++i];
      return true;
    };
    std::string v;
    if (a == "--text") {
      emit_json = false;
    } else if (a == "--json") {
      emit_json = true;
    } else if (a == "--diff-json") {
      if (!value(diff_json_out)) return usage();
    } else if (a == "--repair") {
      opts.repair = true;
    } else if (a == "--repair-out") {
      if (!value(repair_out)) return usage();
    } else if (a == "--no-localize") {
      opts.localize = false;
    } else if (a == "--max-suspects") {
      if (!value(v) || !parse_int(v, 1, opts.max_suspects)) return usage();
    } else if (a == "--packets") {
      if (!value(v) || !parse_int(v, 1, opts.oracle_packets)) return usage();
    } else if (a == "--seed") {
      int seed = 0;
      if (!value(v) || !parse_int(v, 0, seed)) return usage();
      opts.packet_seed = static_cast<std::uint64_t>(seed);
    } else if (a == "--jobs") {
      if (!value(v) || !parse_int(v, 0, opts.pipeline.jobs)) return usage();
    } else if (a == "--no-simplify") {
      opts.pipeline.simplify.enabled = false;
      opts.pipeline.simplify.fold_config = false;
    } else if (a.rfind("--", 0) == 0) {
      return nfcli::unknown_flag(a, usage);
    } else {
      positional.push_back(a);
    }
  }
  if (positional.size() != 2) return usage();

  std::string old_source, old_name, new_source, new_name;
  if (!load_side(positional[0], old_source, old_name)) return 2;
  if (!load_side(positional[1], new_source, new_name)) return 2;
  // Two corpus references to the same NF would otherwise collide on name.
  if (old_name == new_name) {
    old_name += " (old)";
    new_name += " (new)";
  }

  diff::DiffResult r;
  try {
    r = diff::diff_sources(old_source, old_name, new_source, new_name, opts);
  } catch (const std::exception& ex) {
    std::fprintf(stderr, "nf-diff: %s\n", ex.what());
    return 1;
  }

  if (emit_json) {
    std::printf("%s", diff::to_json(r).c_str());
  } else {
    std::printf("%s", diff::to_text(r).c_str());
  }
  if (!diff_json_out.empty()) {
    std::ofstream out(diff_json_out);
    if (!out) {
      std::fprintf(stderr, "error: cannot write %s\n", diff_json_out.c_str());
      return 2;
    }
    out << diff::to_json(r);
  }
  if (!repair_out.empty() && r.repair.repaired) {
    std::ofstream out(repair_out);
    if (!out) {
      std::fprintf(stderr, "error: cannot write %s\n", repair_out.c_str());
      return 2;
    }
    out << r.repair.patched_source;
  }
  return r.equivalent() ? 0 : 1;
}
