// Service-chain example (paper §4): extract models for a firewall, an
// IDS and a load balancer, let the PGA-style composer order the chain,
// then verify end-to-end reachability properties of the composed chain
// with the stateful header-space checker.
#include <cstdio>

#include "nfactor/pipeline.h"
#include "nfs/corpus.h"
#include "verify/chain.h"
#include "verify/hsa.h"

int main() {
  using namespace nfactor;

  // 1. Extract models straight from the NF sources.
  const auto fw = pipeline::run_source(nfs::find("firewall").source, "fw");
  const auto ids = pipeline::run_source(nfs::find("snort_lite").source, "ids");
  const auto lb = pipeline::run_source(nfs::find("lb").source, "lb");
  std::printf("extracted models: fw=%zu entries, ids=%zu, lb=%zu\n\n",
              fw.model.entries.size(), ids.model.entries.size(),
              lb.model.entries.size());

  // 2. Compose the policies {FW, IDS} + {LB}: which order is right?
  const auto advice = verify::advise_order(
      {{"lb", &lb.model}, {"fw", &fw.model}, {"ids", &ids.model}});
  std::printf("composition advice:\n");
  for (const auto& c : advice.constraints) {
    std::printf("  %s must precede %s (it matches %s, which %s rewrites)\n",
                c.before.c_str(), c.after.c_str(), c.field.c_str(),
                c.after.c_str());
  }
  std::printf("  => order: ");
  for (std::size_t i = 0; i < advice.order.size(); ++i) {
    std::printf("%s%s", i ? " -> " : "", advice.order[i].c_str());
  }
  std::printf("\n\n");

  // 3. Verify the composed chain: telnet must never reach the backends.
  const auto pin = symex::make_bin(
      lang::BinOp::kEq, symex::make_var("INLINE_DROP", symex::VarClass::kCfg),
      symex::make_int(1));
  std::vector<verify::ChainHop> chain;
  for (const auto& name : advice.order) {
    if (name == "fw") chain.push_back({"fw", &fw.model, {}});
    if (name == "ids") chain.push_back({"ids", &ids.model, {pin}});
    if (name == "lb") chain.push_back({"lb", &lb.model, {}});
  }

  const auto pktvar = [](const char* f) {
    return symex::make_var(std::string("pkt.") + f, symex::VarClass::kPkt);
  };
  const auto telnet = std::vector<symex::SymRef>{
      symex::make_bin(lang::BinOp::kEq, pktvar("ip_proto"), symex::make_int(6)),
      symex::make_bin(lang::BinOp::kEq, pktvar("dport"), symex::make_int(23))};
  const auto web = std::vector<symex::SymRef>{
      symex::make_bin(lang::BinOp::kEq, pktvar("ip_proto"), symex::make_int(6)),
      symex::make_bin(lang::BinOp::kEq, pktvar("dport"), symex::make_int(80)),
      symex::make_bin(lang::BinOp::kEq, pktvar("in_port"), symex::make_int(0))};

  std::printf("chain verification:\n");
  std::printf("  telnet reaches egress: %s (want: no)\n",
              verify::can_reach_egress(chain, telnet) ? "YES - POLICY VIOLATION"
                                                      : "no");
  const auto web_paths = verify::reachable(chain, web, 16);
  std::printf("  web traffic reaches egress: %s via %zu feasible path(s) "
              "(want: yes)\n",
              web_paths.any() ? "yes" : "NO - BROKEN CHAIN",
              web_paths.delivered.size());

  // Show one end-to-end path with the transformed header.
  if (web_paths.any()) {
    const auto& p = web_paths.delivered.front();
    std::printf("\n  example end-to-end path (entry per hop:");
    for (const int e : p.entry_index) std::printf(" %d", e);
    std::printf("), egress header:\n");
    for (const auto& [field, expr] : p.egress_fields) {
      // Only show fields the chain actually rewrote.
      if (expr->kind == symex::SymKind::kVar && expr->str_val == field) continue;
      std::printf("    %s = %s\n", field.c_str(),
                  symex::to_string(*expr).c_str());
    }
  }
  return 0;
}
