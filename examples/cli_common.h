// Shared CLI conventions for the NFactor binaries (nf-synth, nf-fuzz,
// nf-diff): an unrecognized flag is reported by name on stderr, followed
// by the binary's usage text, and the process exits 2. Every binary
// funnels through this helper so the behavior can't drift per-tool.
#pragma once

#include <cstdio>
#include <string>

namespace nfcli {

/// Report `arg` as unknown and show usage. `usage` is the binary's own
/// usage printer (which returns 2); the result is the process exit code.
inline int unknown_flag(const std::string& arg, int (*usage)()) {
  std::fprintf(stderr, "error: unknown flag '%s'\n", arg.c_str());
  return usage();
}

}  // namespace nfcli
