#!/usr/bin/env python3
"""Perf-smoke gate: compare a bench metrics dump against the checked-in
baseline.

Usage: check_perf_baseline.py <metrics.json> <baseline.json> [factor]

<metrics.json> is the registry dump a bench binary writes via
--metrics-out / $NFACTOR_METRICS_OUT ({"counters": {...}, "gauges":
{...}}).  <baseline.json> maps gauge names to reference values (see
bench/perf_baseline.json).  The check fails when any baselined gauge
exceeds factor x its reference (default 2.0) — a deliberately loose
bound: it tolerates CI-runner noise and hardware drift but catches the
step-function regressions this gate exists for (e.g. the expression
interner silently disabled, a cache key that stopped hitting).

Exit codes: 0 ok, 1 regression, 2 usage/missing data.
"""

import json
import sys


def main(argv):
    if len(argv) < 3 or len(argv) > 4:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    factor = float(argv[3]) if len(argv) == 4 else 2.0

    with open(argv[1]) as f:
        metrics = json.load(f)
    with open(argv[2]) as f:
        baseline = json.load(f)
    gauges = metrics.get("gauges", {})

    failures = []
    for name, ref in sorted(baseline.items()):
        if name.startswith("_"):  # comment/provenance keys
            continue
        if name not in gauges:
            print(f"MISSING {name}: not in metrics dump", file=sys.stderr)
            failures.append(name)
            continue
        cur = float(gauges[name])
        limit = factor * float(ref)
        verdict = "FAIL" if cur > limit else "ok"
        print(f"{verdict:4} {name}: current={cur:.2f} baseline={ref:.2f} "
              f"limit={limit:.2f} ({factor:g}x)")
        if cur > limit:
            failures.append(name)

    if failures:
        print(f"perf-smoke: {len(failures)} gauge(s) regressed beyond "
              f"{factor:g}x baseline", file=sys.stderr)
        return 1
    print("perf-smoke: all gauges within budget")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
