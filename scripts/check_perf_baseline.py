#!/usr/bin/env python3
"""Perf-smoke gate: compare a bench metrics dump against the checked-in
baseline.

Usage: check_perf_baseline.py <metrics.json> <baseline.json> [factor]
       check_perf_baseline.py --update <metrics.json> <baseline.json>

<metrics.json> is the registry dump a bench binary writes via
--metrics-out / $NFACTOR_METRICS_OUT ({"counters": {...}, "gauges":
{...}}, plus a "meta" run-provenance key).  <baseline.json> maps gauge
names to reference values (see bench/perf_baseline.json).  The check
fails when any baselined gauge exceeds factor x its reference (default
2.0) — a deliberately loose bound: it tolerates CI-runner noise and
hardware drift but catches the step-function regressions this gate
exists for (e.g. the expression interner silently disabled, a cache key
that stopped hitting).

A gauge more than 2x *faster* than baseline is flagged STALE (non-fatal):
the baseline no longer reflects reality, and a regression back to the
old number would pass the gate unseen — refresh it with --update, which
rewrites every baselined gauge from the metrics file (non-gauge keys,
e.g. "_comment", are preserved).

A baseline entry whose value is null is a *placeholder*: the gauge was
just added (or is environment-dependent, like multi-core shard scaling
on a single-core runner) and has no trustworthy reference yet.  Such
entries report ADDED (informational, never FAIL/STALE) with the current
measurement, and are skipped without failing when the dump lacks them;
--update fills them with real numbers once one environment is blessed.

On failure the metrics file's "meta" stamp (git SHA, build type,
NFACTOR_OBS / NFACTOR_SYMEX_INTERN, jobs) is printed so the report names
the build that produced the numbers.

Exit codes: 0 ok, 1 regression, 2 usage/missing data.
"""

import json
import sys

STALE_FACTOR = 2.0  # >2x faster than baseline => baseline is stale


def update(metrics_path, baseline_path):
    with open(metrics_path) as f:
        gauges = json.load(f).get("gauges", {})
    with open(baseline_path) as f:
        baseline = json.load(f)

    missing = []
    for name in sorted(baseline):
        if name.startswith("_"):  # comment/provenance keys
            continue
        if name not in gauges:
            if baseline[name] is None:
                # Placeholder with no measurement in this run either:
                # leave it null rather than refusing the whole update.
                print(f"keep   {name}: null (absent from metrics dump)")
            else:
                missing.append(name)
            continue
        old = baseline[name]
        baseline[name] = round(float(gauges[name]), 3)
        print(f"update {name}: {old} -> {baseline[name]}")
    if missing:
        print(f"cannot update {len(missing)} gauge(s) absent from the "
              f"metrics dump: {', '.join(missing)}", file=sys.stderr)
        return 2

    with open(baseline_path, "w") as f:
        json.dump(baseline, f, indent=2, sort_keys=True)
        f.write("\n")
    print(f"perf-smoke: baseline {baseline_path} rewritten from "
          f"{metrics_path}")
    return 0


def main(argv):
    if len(argv) >= 2 and argv[1] == "--update":
        if len(argv) != 4:
            print(__doc__.strip(), file=sys.stderr)
            return 2
        return update(argv[2], argv[3])

    if len(argv) < 3 or len(argv) > 4:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    factor = float(argv[3]) if len(argv) == 4 else 2.0

    with open(argv[1]) as f:
        metrics = json.load(f)
    with open(argv[2]) as f:
        baseline = json.load(f)
    gauges = metrics.get("gauges", {})

    failures = []
    stale = []
    added = []
    for name, ref in sorted(baseline.items()):
        if name.startswith("_"):  # comment/provenance keys
            continue
        if ref is None:
            # Newly-added gauge with no reference yet: report the current
            # value informationally, never gate on it.
            added.append(name)
            if name in gauges:
                print(f"ADDED {name}: current={float(gauges[name]):.2f} "
                      f"(no baseline yet)")
            else:
                print(f"ADDED {name}: not measured in this run "
                      f"(no baseline yet)")
            continue
        if name not in gauges:
            print(f"MISSING {name}: not in metrics dump", file=sys.stderr)
            failures.append(name)
            continue
        cur = float(gauges[name])
        limit = factor * float(ref)
        if cur > limit:
            verdict = "FAIL"
            failures.append(name)
        elif cur * STALE_FACTOR < float(ref):
            # Non-fatal: the measurement beat the baseline by more than
            # the gate's own tolerance, so the gate has gone blind to
            # regressions back up to the recorded number.
            verdict = "STALE"
            stale.append(name)
        else:
            verdict = "ok"
        print(f"{verdict:5} {name}: current={cur:.2f} baseline={ref:.2f} "
              f"limit={limit:.2f} ({factor:g}x)")

    if added:
        print(f"perf-smoke: note: {len(added)} gauge(s) have null "
              f"(placeholder) baselines — bless one environment's numbers "
              f"with --update to start gating them", file=sys.stderr)

    if stale:
        print(f"perf-smoke: warning: {len(stale)} gauge(s) are >"
              f"{STALE_FACTOR:g}x faster than baseline — refresh with "
              f"'check_perf_baseline.py --update <metrics.json> "
              f"<baseline.json>' so regressions stay visible",
              file=sys.stderr)

    if failures:
        print(f"perf-smoke: {len(failures)} gauge(s) regressed beyond "
              f"{factor:g}x baseline", file=sys.stderr)
        meta = metrics.get("meta")
        if meta:
            print(f"perf-smoke: run meta: {json.dumps(meta, sort_keys=True)}",
                  file=sys.stderr)
        return 1
    print("perf-smoke: all gauges within budget")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
