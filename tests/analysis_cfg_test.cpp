// Dominators, postdominators, control dependence, reaching definitions,
// and live variables — checked on hand-shaped CFGs lowered from small
// programs, plus axiom-style property checks over the corpus.
#include <gtest/gtest.h>

#include "analysis/control_dep.h"
#include "analysis/dominators.h"
#include "analysis/live_vars.h"
#include "analysis/reaching_defs.h"
#include "lang/parser.h"
#include "nfs/corpus.h"
#include "tests/test_util.h"
#include "transform/normalize.h"

namespace nfactor::analysis {
namespace {

using testutil::lowered;
using testutil::nf_body;

ir::Module diamond() {
  return lowered(nf_body(
      "if (pkt.dport == 80) {\n  x = 1;\n} else {\n  x = 2;\n}\n"
      "send(pkt, x);"));
}

int find_node(const ir::Cfg& cfg, ir::InstrKind k, int nth = 0) {
  int seen = 0;
  for (const auto& n : cfg.nodes) {
    if (n->kind == k && seen++ == nth) return n->id;
  }
  return -1;
}

// ---------------------------------------------------------------------------
// Dominators
// ---------------------------------------------------------------------------

TEST(Dominators, EntryDominatesEverything) {
  const ir::Module m = diamond();
  const DomTree dom = dominators(m.body);
  for (const auto& n : m.body.nodes) {
    EXPECT_TRUE(dom.dominates(m.body.entry, n->id)) << n->id;
  }
}

TEST(Dominators, BranchDominatesBothArmsButNotJoin) {
  const ir::Module m = diamond();
  const DomTree dom = dominators(m.body);
  const int br = find_node(m.body, ir::InstrKind::kBranch);
  const int snd = find_node(m.body, ir::InstrKind::kSend);
  const auto& branch = m.body.node(br);
  EXPECT_TRUE(dom.dominates(br, branch.succs[0]));
  EXPECT_TRUE(dom.dominates(br, branch.succs[1]));
  EXPECT_TRUE(dom.dominates(br, snd));
  // Neither arm dominates the join.
  EXPECT_FALSE(dom.dominates(branch.succs[0], snd));
  EXPECT_FALSE(dom.dominates(branch.succs[1], snd));
  // idom of the join is the branch itself.
  EXPECT_EQ(dom.idom[static_cast<std::size_t>(snd)], br);
}

TEST(Dominators, SelfDominanceIsReflexive) {
  const ir::Module m = diamond();
  const DomTree dom = dominators(m.body);
  for (const auto& n : m.body.nodes) {
    EXPECT_TRUE(dom.dominates(n->id, n->id));
  }
}

TEST(Postdominators, ExitPostdominatesEverything) {
  const ir::Module m = diamond();
  const DomTree pdom = postdominators(m.body);
  for (const auto& n : m.body.nodes) {
    EXPECT_TRUE(pdom.dominates(m.body.exit, n->id)) << n->id;
  }
}

TEST(Postdominators, JoinPostdominatesBranch) {
  const ir::Module m = diamond();
  const DomTree pdom = postdominators(m.body);
  const int br = find_node(m.body, ir::InstrKind::kBranch);
  const int snd = find_node(m.body, ir::InstrKind::kSend);
  EXPECT_TRUE(pdom.dominates(snd, br));
  // The then-arm does not postdominate the branch.
  EXPECT_FALSE(pdom.dominates(m.body.node(br).succs[0], br));
}

/// Axiom check over every corpus NF: entry dominates all reachable nodes,
/// exit postdominates all, and idom is itself a dominator.
class DomAxioms : public ::testing::TestWithParam<const char*> {};

TEST_P(DomAxioms, HoldOnCorpusCfg) {
  const auto& e = nfs::find(GetParam());
  auto prog = transform::normalize(lang::parse(e.source, std::string(e.name)));
  const ir::Module m = ir::lower(std::move(prog));
  const DomTree dom = dominators(m.body);
  const DomTree pdom = postdominators(m.body);
  for (const auto& n : m.body.nodes) {
    if (!dom.reachable(n->id)) continue;
    EXPECT_TRUE(dom.dominates(m.body.entry, n->id));
    EXPECT_TRUE(pdom.dominates(m.body.exit, n->id));
    const int id = dom.idom[static_cast<std::size_t>(n->id)];
    EXPECT_TRUE(dom.dominates(id, n->id));
  }
}

INSTANTIATE_TEST_SUITE_P(Corpus, DomAxioms,
                         ::testing::Values("lb", "balance", "snort_lite",
                                           "nat", "firewall", "monitor",
                                           "l2_switch", "dpi", "heavy_hitter",
                                           "synflood"));

// ---------------------------------------------------------------------------
// Control dependence
// ---------------------------------------------------------------------------

TEST(ControlDep, ThenAndElseDependOnBranch) {
  const ir::Module m = diamond();
  const ControlDeps cd = control_dependence(m.body);
  const int br = find_node(m.body, ir::InstrKind::kBranch);
  const auto& branch = m.body.node(br);
  EXPECT_TRUE(cd.deps[static_cast<std::size_t>(branch.succs[0])].count(br));
  EXPECT_TRUE(cd.deps[static_cast<std::size_t>(branch.succs[1])].count(br));
}

TEST(ControlDep, JoinDoesNotDependOnBranch) {
  const ir::Module m = diamond();
  const ControlDeps cd = control_dependence(m.body);
  const int br = find_node(m.body, ir::InstrKind::kBranch);
  const int snd = find_node(m.body, ir::InstrKind::kSend);
  EXPECT_FALSE(cd.deps[static_cast<std::size_t>(snd)].count(br));
}

TEST(ControlDep, LoopBodyDependsOnHeader) {
  const ir::Module m = lowered(nf_body(
      "i = 0;\nwhile (i < 3) {\n  i = i + 1;\n}\nsend(pkt, i);"));
  const ControlDeps cd = control_dependence(m.body);
  const int br = find_node(m.body, ir::InstrKind::kBranch);
  const auto& branch = m.body.node(br);
  EXPECT_TRUE(cd.deps[static_cast<std::size_t>(branch.succs[0])].count(br));
}

TEST(ControlDep, NestedIfDependsOnBothBranches) {
  const ir::Module m = lowered(nf_body(
      "if (pkt.dport == 80) {\n  if (pkt.ip_ttl > 1) {\n    x = 1;\n  }\n}\n"
      "send(pkt, 0);"));
  const ControlDeps cd = control_dependence(m.body);
  const int outer = find_node(m.body, ir::InstrKind::kBranch, 0);
  const int inner = find_node(m.body, ir::InstrKind::kBranch, 1);
  // Find the x=1 node.
  int xnode = -1;
  for (const auto& n : m.body.nodes) {
    if (n->kind == ir::InstrKind::kAssign && n->var == "x") xnode = n->id;
  }
  ASSERT_NE(xnode, -1);
  EXPECT_TRUE(cd.deps[static_cast<std::size_t>(xnode)].count(inner));
  EXPECT_TRUE(cd.deps[static_cast<std::size_t>(inner)].count(outer));
  EXPECT_FALSE(cd.deps[static_cast<std::size_t>(xnode)].count(outer));
}

// ---------------------------------------------------------------------------
// Reaching definitions
// ---------------------------------------------------------------------------

TEST(ReachingDefs, StrongDefKills) {
  const ir::Module m = lowered(nf_body(
      "x = 1;\nx = 2;\nsend(pkt, x);"));
  const ReachingDefs rd(m.body);
  const int snd = find_node(m.body, ir::InstrKind::kSend);
  const auto defs = rd.reaching_def_nodes(snd, "x");
  ASSERT_EQ(defs.size(), 1u);
  // Only the second assignment reaches.
  const int def = *defs.begin();
  EXPECT_EQ(lang::to_source(*m.body.node(def).value), "2");
}

TEST(ReachingDefs, BothArmsReachJoin) {
  const ir::Module m = diamond();
  const ReachingDefs rd(m.body);
  const int snd = find_node(m.body, ir::InstrKind::kSend);
  EXPECT_EQ(rd.reaching_def_nodes(snd, "x").size(), 2u);
}

TEST(ReachingDefs, WeakContainerUpdateDoesNotKill) {
  const ir::Module m = lowered(nf_body(
      "m[(pkt.ip_src, 1)] = 1;\nm[(pkt.ip_src, 2)] = 2;\n"
      "x = m[(pkt.ip_src, 1)];\nsend(pkt, x);",
      "var m = {};"));
  const ReachingDefs rd(m.body);
  int read_node = -1;
  for (const auto& n : m.body.nodes) {
    if (n->kind == ir::InstrKind::kAssign && n->var == "x") read_node = n->id;
  }
  // Both stores reach the read (weak updates accumulate).
  EXPECT_EQ(rd.reaching_def_nodes(read_node, "m").size(), 2u);
}

TEST(ReachingDefs, RecvKillsFieldDefsOfPacket) {
  // A field write in a previous iteration cannot reach across recv —
  // within one body CFG, recv is the first def of pkt.
  const ir::Module m = lowered(nf_body(
      "pkt.ip_ttl = 9;\nsend(pkt, pkt.ip_ttl);"));
  const ReachingDefs rd(m.body);
  const int snd = find_node(m.body, ir::InstrKind::kSend);
  const auto defs = rd.reaching_def_nodes(snd, "pkt.ip_ttl");
  // Reaching defs: the field store AND the recv (whole-packet def aliases).
  EXPECT_EQ(defs.size(), 2u);
}

TEST(ReachingDefs, FieldStoreKillsPriorFieldStore) {
  const ir::Module m = lowered(nf_body(
      "pkt.ip_ttl = 9;\npkt.ip_ttl = 7;\nsend(pkt, 0);"));
  const ReachingDefs rd(m.body);
  const int snd = find_node(m.body, ir::InstrKind::kSend);
  const auto defs = rd.reaching_def_nodes(snd, "pkt.ip_ttl");
  // Second store + recv; the first store is killed.
  EXPECT_EQ(defs.size(), 2u);
  for (const int d : defs) {
    if (m.body.node(d).kind == ir::InstrKind::kFieldStore) {
      EXPECT_EQ(lang::to_source(*m.body.node(d).value), "7");
    }
  }
}

TEST(LocationAlias, WholeVarAliasesItsFields) {
  EXPECT_TRUE(locations_alias("pkt", "pkt.ip_src"));
  EXPECT_TRUE(locations_alias("pkt.ip_src", "pkt"));
  EXPECT_TRUE(locations_alias("x", "x"));
  EXPECT_FALSE(locations_alias("pkt.ip_src", "pkt.ip_dst"));
  EXPECT_FALSE(locations_alias("pkt", "other"));
  EXPECT_FALSE(locations_alias("a.f", "b.f"));
}

// ---------------------------------------------------------------------------
// Live variables
// ---------------------------------------------------------------------------

TEST(LiveVars, UsedValueIsLiveBeforeUse) {
  const ir::Module m = lowered(nf_body("x = 7;\nsend(pkt, x);"));
  const LiveVars lv(m.body);
  int def = -1;
  for (const auto& n : m.body.nodes) {
    if (n->kind == ir::InstrKind::kAssign && n->var == "x") def = n->id;
  }
  EXPECT_TRUE(lv.live_out(def).count("x"));
  EXPECT_FALSE(lv.live_in(def).count("x"));
}

TEST(LiveVars, DeadStoreIsNotLive) {
  const ir::Module m = lowered(nf_body("dead = 7;\nsend(pkt, 0);"));
  const LiveVars lv(m.body);
  int def = -1;
  for (const auto& n : m.body.nodes) {
    if (n->kind == ir::InstrKind::kAssign && n->var == "dead") def = n->id;
  }
  EXPECT_FALSE(lv.live_out(def).count("dead"));
}

TEST(LiveVars, LoopCarriedVariableStaysLive) {
  const ir::Module m = lowered(nf_body(
      "i = 0;\nwhile (i < 3) {\n  i = i + 1;\n}\nsend(pkt, i);"));
  const LiveVars lv(m.body);
  for (const auto& n : m.body.nodes) {
    if (n->kind == ir::InstrKind::kBranch) {
      EXPECT_TRUE(lv.live_in(n->id).count("i"));
    }
  }
}

}  // namespace
}  // namespace nfactor::analysis
