// Coverage sweep over remaining public-API corners: accessors, flags and
// renderings not exercised by the behavioural suites.
#include <gtest/gtest.h>

#include "analysis/dot.h"
#include "ir/dot.h"
#include "model/fsm.h"
#include "model/sefl_export.h"
#include "model/validate.h"
#include "nfactor/pipeline.h"
#include "nfs/corpus.h"
#include "tests/test_util.h"

namespace nfactor {
namespace {

pipeline::PipelineResult run_nf(const char* name) {
  return pipeline::run_source(nfs::find(name).source, name);
}

TEST(ApiSurface, ModuleFindGlobal) {
  const auto r = run_nf("lb");
  ASSERT_NE(r.module->find_global("mode"), nullptr);
  EXPECT_EQ(r.module->find_global("mode")->type, lang::Type::kInt);
  EXPECT_EQ(r.module->find_global("no_such"), nullptr);
}

TEST(ApiSurface, SourceLinesOfSubsets) {
  const auto r = run_nf("nat");
  const auto& body = r.module->body;
  EXPECT_EQ(body.source_lines({}), 0);
  EXPECT_EQ(body.source_lines({body.entry}), 0);  // entry has no source line
  const auto nodes = body.real_nodes();
  const std::set<int> all(nodes.begin(), nodes.end());
  EXPECT_EQ(body.source_lines(all), body.source_lines());
}

TEST(ApiSurface, CorpusLookupThrowsOnUnknown) {
  EXPECT_THROW(nfs::find("not_an_nf"), std::out_of_range);
  EXPECT_EQ(nfs::corpus().size(), 10u);
  for (const auto& e : nfs::corpus()) {
    EXPECT_FALSE(e.source.empty());
    EXPECT_TRUE(std::string(e.filename).ends_with(".nf"));
  }
}

TEST(ApiSurface, PipelineWithoutNormalizationRejectsCallbacks) {
  pipeline::PipelineOptions opts;
  opts.normalize_structure = false;
  EXPECT_THROW(
      pipeline::run_source(nfs::find("lb").source, "lb-raw", opts),
      ir::LowerError);
  // Canonical programs work either way.
  EXPECT_NO_THROW(
      pipeline::run_source(nfs::find("nat").source, "nat-raw", opts));
}

TEST(ApiSurface, CfgDotWithoutHighlightHasNoFill) {
  const auto r = run_nf("nat");
  const std::string dot = ir::to_dot(r.module->body, "plain");
  EXPECT_EQ(dot.find("fillcolor"), std::string::npos);
}

TEST(ApiSurface, FsmIncludeUnrelatedAddsSelfLoops) {
  const auto r = run_nf("firewall");
  const auto lean = model::extract_fsm(r.model, "conns");
  const auto full = model::extract_fsm(r.model, "conns",
                                       /*include_unrelated=*/true);
  EXPECT_GE(full.transitions.size(), lean.transitions.size());
  EXPECT_EQ(full.transitions.size(), r.model.entries.size());
}

TEST(ApiSurface, SeflMarksTruncatedEntries) {
  const auto r = pipeline::run_source(testutil::nf_body(
      "i = 0;\nwhile (i < pkt.dport) {\n  i = i + 1;\n}\nsend(pkt, i);"),
      "looping");
  bool any_trunc = false;
  for (const auto& e : r.model.entries) any_trunc |= e.truncated;
  ASSERT_TRUE(any_trunc);
  EXPECT_NE(model::to_sefl(r.model).find("(truncated)"), std::string::npos);
}

TEST(ApiSurface, SignatureStableAcrossReparse) {
  const auto a = run_nf("firewall");
  const auto b = run_nf("firewall");
  ASSERT_EQ(a.slice_paths.size(), b.slice_paths.size());
  std::multiset<std::string> sa, sb;
  for (const auto& p : a.slice_paths) sa.insert(p.signature());
  for (const auto& p : b.slice_paths) sb.insert(p.signature());
  EXPECT_EQ(sa, sb);
}

TEST(ApiSurface, EntrySignatureDistinguishesActions) {
  const auto r = run_nf("nat");
  std::set<std::string> sigs;
  for (const auto& e : r.model.entries) {
    sigs.insert(model::entry_signature(e));
  }
  EXPECT_EQ(sigs.size(), r.model.entries.size());  // all distinct
}

TEST(ApiSurface, StatsTableStable) {
  const auto r = run_nf("lb");
  const std::string t1 = r.cats.to_table();
  const std::string t2 = r.cats.to_table();
  EXPECT_EQ(t1, t2);
}

TEST(ApiSurface, SyntheticGeneratorScalesStructurally) {
  const std::string small = nfs::synthetic_nf(1, 1);
  const std::string big = nfs::synthetic_nf(20, 20);
  EXPECT_LT(small.size(), big.size());
  // Both parse and lower.
  EXPECT_NO_THROW(pipeline::run_source(small, "small"));
  EXPECT_NO_THROW(pipeline::run_source(big, "big"));
}

TEST(ApiSurface, ModelTablesPartitionEntries) {
  for (const char* nf : {"lb", "balance", "snort_lite"}) {
    const auto r = run_nf(nf);
    std::size_t total = 0;
    for (const auto& [key, entries] : r.model.tables()) {
      (void)key;
      total += entries.size();
    }
    EXPECT_EQ(total, r.model.entries.size()) << nf;
  }
}

TEST(ApiSurface, ExecStatsAccounting) {
  const auto r = run_nf("snort_lite");
  EXPECT_GT(r.slice_stats.steps, 0u);
  EXPECT_GT(r.slice_stats.solver_queries, 0u);
  EXPECT_EQ(r.slice_stats.paths_completed + r.slice_stats.paths_truncated,
            r.slice_paths.size());
  EXPECT_FALSE(r.slice_stats.timed_out);
  EXPECT_FALSE(r.slice_stats.hit_path_cap);
}

}  // namespace
}  // namespace nfactor
