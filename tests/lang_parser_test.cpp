#include "lang/parser.h"

#include <gtest/gtest.h>

#include "lang/diagnostics.h"
#include "nfs/corpus.h"

namespace nfactor::lang {
namespace {

/// Parse an expression by wrapping it into a statement.
ExprPtr parse_expr(const std::string& e) {
  Program p = parse("def f() { x = " + e + "; }");
  auto& body = p.funcs[0].body->stmts;
  auto* assign = static_cast<Assign*>(body[0].get());
  return std::move(assign->value);
}

TEST(Parser, PrecedenceMulOverAdd) {
  EXPECT_EQ(to_source(*parse_expr("1 + 2 * 3")), "(1 + (2 * 3))");
  EXPECT_EQ(to_source(*parse_expr("(1 + 2) * 3")), "((1 + 2) * 3)");
}

TEST(Parser, PrecedenceComparisonOverLogical) {
  EXPECT_EQ(to_source(*parse_expr("a == b && c < d")),
            "((a == b) && (c < d))");
}

TEST(Parser, PrecedenceOrBelowAnd) {
  EXPECT_EQ(to_source(*parse_expr("a || b && c")), "(a || (b && c))");
}

TEST(Parser, LeftAssociativity) {
  EXPECT_EQ(to_source(*parse_expr("1 - 2 - 3")), "((1 - 2) - 3)");
  EXPECT_EQ(to_source(*parse_expr("8 / 4 / 2")), "((8 / 4) / 2)");
}

TEST(Parser, BitwiseBindTighterThanComparison) {
  EXPECT_EQ(to_source(*parse_expr("a & 2 != 0")), "((a & 2) != 0)");
}

TEST(Parser, InOperator) {
  EXPECT_EQ(to_source(*parse_expr("k in m && x == 1")),
            "((k in m) && (x == 1))");
}

TEST(Parser, UnaryOperators) {
  EXPECT_EQ(to_source(*parse_expr("!a")), "!(a)");
  EXPECT_EQ(to_source(*parse_expr("-x + 1")), "(-(x) + 1)");
  EXPECT_EQ(to_source(*parse_expr("!!a")), "!(!(a))");
}

TEST(Parser, TupleVsParenthesized) {
  EXPECT_EQ(parse_expr("(1)")->kind, ExprKind::kIntLit);
  EXPECT_EQ(parse_expr("(1, 2)")->kind, ExprKind::kTupleLit);
  EXPECT_EQ(parse_expr("(a, b, c, d)")->kind, ExprKind::kTupleLit);
}

TEST(Parser, ListAndMapLiterals) {
  EXPECT_EQ(parse_expr("[]")->kind, ExprKind::kListLit);
  EXPECT_EQ(parse_expr("[1, 2, 3]")->kind, ExprKind::kListLit);
  EXPECT_EQ(parse_expr("[(1, 2), (3, 4)]")->kind, ExprKind::kListLit);
  EXPECT_EQ(parse_expr("[1, 2, 3,]")->kind, ExprKind::kListLit);  // trailing
  EXPECT_EQ(parse_expr("{}")->kind, ExprKind::kMapLit);
}

TEST(Parser, IndexAndFieldChains) {
  EXPECT_EQ(to_source(*parse_expr("m[k][0]")), "m[k][0]");
  EXPECT_EQ(to_source(*parse_expr("pkt.ip_src")), "pkt.ip_src");
  EXPECT_EQ(to_source(*parse_expr("servers[i][1] + pkt.dport")),
            "(servers[i][1] + pkt.dport)");
}

TEST(Parser, CallsWithArgs) {
  EXPECT_EQ(to_source(*parse_expr("hash(si) % len(servers)")),
            "(hash(si) % len(servers))");
  EXPECT_EQ(to_source(*parse_expr("f()")), "f()");
}

TEST(Parser, AugmentedAssignDesugars) {
  Program p = parse("def f() { x = 1; x += 2; x -= 3; x *= 4; x %= 5; }");
  const auto& b = p.funcs[0].body->stmts;
  EXPECT_EQ(to_source(*b[1]), "x = (x + 2);\n");
  EXPECT_EQ(to_source(*b[2]), "x = (x - 3);\n");
  EXPECT_EQ(to_source(*b[3]), "x = (x * 4);\n");
  EXPECT_EQ(to_source(*b[4]), "x = (x % 5);\n");
}

TEST(Parser, AugmentedElementAssignDesugars) {
  Program p = parse("def f(m) { m[k] += 1; }");
  EXPECT_EQ(to_source(*p.funcs[0].body->stmts[0]), "m[k] = (m[k] + 1);\n");
}

TEST(Parser, FieldAssignment) {
  Program p = parse("def f(pkt) { pkt.ip_src = 1; pkt.ip_ttl -= 1; }");
  const auto& b = p.funcs[0].body->stmts;
  const auto* a0 = static_cast<const Assign*>(b[0].get());
  EXPECT_EQ(a0->target, Assign::Target::kField);
  EXPECT_EQ(a0->var, "pkt");
  EXPECT_EQ(a0->field, "ip_src");
  EXPECT_EQ(to_source(*b[1]), "pkt.ip_ttl = (pkt.ip_ttl - 1);\n");
}

TEST(Parser, IndexAssignmentVsIndexExpression) {
  Program p = parse("def f(m) { m[k] = 1; x = m[k]; }");
  const auto& b = p.funcs[0].body->stmts;
  EXPECT_EQ(static_cast<const Assign*>(b[0].get())->target,
            Assign::Target::kIndex);
  EXPECT_EQ(static_cast<const Assign*>(b[1].get())->target,
            Assign::Target::kVar);
}

TEST(Parser, ElseIfChains) {
  Program p = parse(R"(def f(x) {
    if (x == 1) { a = 1; } else if (x == 2) { a = 2; } else { a = 3; }
  })");
  const auto* s = static_cast<const If*>(p.funcs[0].body->stmts[0].get());
  ASSERT_NE(s->else_body, nullptr);
  EXPECT_EQ(s->else_body->kind, StmtKind::kIf);
  const auto* ei = static_cast<const If*>(s->else_body.get());
  ASSERT_NE(ei->else_body, nullptr);
  EXPECT_EQ(ei->else_body->kind, StmtKind::kBlock);
}

TEST(Parser, ForRange) {
  Program p = parse("def f() { for i in 0..10 { x = i; } }");
  const auto* f = static_cast<const For*>(p.funcs[0].body->stmts[0].get());
  EXPECT_EQ(f->var, "i");
  EXPECT_EQ(to_source(*f->begin), "0");
  EXPECT_EQ(to_source(*f->end), "10");
}

TEST(Parser, WhileBreakContinueReturn) {
  Program p = parse(R"(def f() {
    while (true) {
      if (a) { break; }
      if (b) { continue; }
      return 1;
    }
    return;
  })");
  EXPECT_EQ(p.funcs[0].body->stmts.size(), 2u);
}

TEST(Parser, GlobalsAndFunctions) {
  Program p = parse("var a = 1;\nvar m = {};\ndef f(x, y) { return x; }\n");
  ASSERT_EQ(p.globals.size(), 2u);
  EXPECT_EQ(p.globals[0].name, "a");
  ASSERT_EQ(p.funcs.size(), 1u);
  EXPECT_EQ(p.funcs[0].params, (std::vector<std::string>{"x", "y"}));
}

TEST(Parser, Errors) {
  EXPECT_THROW(parse("var;"), ParseError);
  EXPECT_THROW(parse("def f() { x = ; }"), ParseError);
  EXPECT_THROW(parse("def f() { if x { } }"), ParseError);
  EXPECT_THROW(parse("def f() { x = 1 }"), ParseError);  // missing ;
  EXPECT_THROW(parse("def f() { "), ParseError);         // unterminated
  EXPECT_THROW(parse("xyzzy"), ParseError);              // bad top level
  EXPECT_THROW(parse("def f() { {1: 2} }"), ParseError);  // non-empty map lit
}

TEST(Parser, CloneIsDeep) {
  Program p = parse("var g = 1;\ndef f(x) { if (x) { g = 2; } return g; }\n");
  Program q = p.clone();
  // Mutating the clone must not affect the original.
  q.globals[0].name = "renamed";
  static_cast<Assign*>(
      static_cast<Block*>(
          static_cast<If*>(q.funcs[0].body->stmts[0].get())->then_body.get())
          ->stmts[0]
          .get())
      ->var = "other";
  EXPECT_EQ(p.globals[0].name, "g");
  EXPECT_EQ(to_source(p), to_source(parse(to_source(p))));
}

/// Printing then re-parsing then re-printing must be a fixpoint — checked
/// over the whole NF corpus (exercises every syntax form we use).
class RoundTrip : public ::testing::TestWithParam<const char*> {};

TEST_P(RoundTrip, ToSourceIsReparseable) {
  const auto& nf = nfs::find(GetParam());
  Program p = parse(nf.source, std::string(nf.name));
  const std::string once = to_source(p);
  Program q = parse(once, "reprinted");
  EXPECT_EQ(to_source(q), once);
}

INSTANTIATE_TEST_SUITE_P(Corpus, RoundTrip,
                         ::testing::Values("lb", "balance", "snort_lite",
                                           "nat", "firewall", "monitor",
                                           "l2_switch", "dpi", "heavy_hitter",
                                           "synflood"));

}  // namespace
}  // namespace nfactor::lang
