// Integration tests asserting the paper's *claims* hold on this
// reproduction — the Table-2 shape, Figure-6 content, and §5 accuracy —
// plus end-to-end seed-swept differential checks.
#include <gtest/gtest.h>

#include <fstream>
#include <sstream>

#include "model/model.h"
#include "netsim/packet_gen.h"
#include "nfactor/pipeline.h"
#include "nfs/corpus.h"
#include "obs/obs.h"
#include "verify/equivalence.h"

namespace nfactor {
namespace {

pipeline::PipelineResult run_nf(const char* name,
                                bool with_orig_se = false) {
  pipeline::PipelineOptions opts;
  opts.run_orig_se = with_orig_se;
  opts.se_orig.max_paths = 1024;
  return pipeline::run_source(nfs::find(name).source, name, opts);
}

TEST(Table2Shape, SnortSliceIsSmallFractionOfOriginal) {
  const auto r = run_nf("snort_lite", true);
  // Paper: 2678 -> 129 LoC (~5%); ours is a smaller program but the slice
  // must still cut the code by at least half.
  EXPECT_LT(r.loc_slice * 2, r.loc_orig);
  // A single path is smaller than the whole slice.
  EXPECT_LT(r.loc_path, r.loc_slice);
  EXPECT_GT(r.loc_path, 0);
}

TEST(Table2Shape, SnortOriginalPathsExplodeSliceDoesNot) {
  const auto r = run_nf("snort_lite", true);
  // Paper: >1000 EP on the original, 3 on the slice.
  EXPECT_TRUE(r.orig_stats.hit_path_cap);        // ">1000"
  EXPECT_LT(r.slice_paths.size(), 32u);          // small and exact
  EXPECT_GT(r.orig_paths.size(), r.slice_paths.size() * 10);
}

TEST(Table2Shape, SnortSymexFasterOnSlice) {
  const auto r = run_nf("snort_lite", true);
  EXPECT_LT(r.times.se_slice_ms, r.times.se_orig_ms);
}

TEST(Table2Shape, BalanceReductionIsModest) {
  const auto snort = run_nf("snort_lite", true);
  const auto balance = run_nf("balance", true);
  // Paper §5: "the reduction in complexity varies ... snort's logic is
  // more complex and benefits more from NFactor."
  ASSERT_FALSE(balance.orig_stats.hit_path_cap);
  const double balance_ratio =
      static_cast<double>(balance.orig_paths.size()) /
      static_cast<double>(balance.slice_paths.size());
  const double snort_ratio =
      static_cast<double>(snort.orig_paths.size()) /
      static_cast<double>(snort.slice_paths.size());
  EXPECT_GT(snort_ratio, balance_ratio);
  EXPECT_GE(balance.orig_paths.size(), balance.slice_paths.size());
}

TEST(Fig6Shape, BalanceModelHasRrAndHashTables) {
  const auto r = run_nf("balance");
  const auto tables = r.model.tables();
  bool has_rr = false, has_hash = false;
  for (const auto& [key, entries] : tables) {
    (void)entries;
    if (key.find("(vmode == vMODE_RR)") != std::string::npos) has_rr = true;
    if (key.find("(vmode != vMODE_RR)") != std::string::npos) has_hash = true;
  }
  EXPECT_TRUE(has_rr);
  EXPECT_TRUE(has_hash);

  // The RR table's SYN entry advances idx circularly; HASH does not
  // touch idx.
  for (const auto& e : r.model.entries) {
    const std::string cfg = e.config_key();
    if (cfg.find("==") != std::string::npos && !e.is_drop() &&
        !e.state_action.empty()) {
      EXPECT_TRUE(e.state_action.count("idx"));
      EXPECT_NE(symex::to_string(*e.state_action.at("idx")).find("% 2"),
                std::string::npos);
    }
    if (cfg.find("!=") != std::string::npos) {
      EXPECT_FALSE(e.state_action.count("idx"));
    }
  }
}

TEST(Accuracy, PathSetsOfOriginalAndSliceAgreeWhereTractable) {
  for (const char* nf : {"lb", "nat", "firewall", "monitor", "balance",
                         "l2_switch", "dpi", "heavy_hitter", "synflood"}) {
    pipeline::PipelineOptions opts;
    opts.run_orig_se = true;
    opts.se_orig.max_paths = 4096;
    const auto r = pipeline::run_source(nfs::find(nf).source, nf, opts);
    ASSERT_FALSE(r.orig_stats.hit_path_cap) << nf;
    const auto cmp =
        verify::compare_action_sets(r.orig_paths, r.slice_paths, r.cats);
    EXPECT_TRUE(cmp.equal())
        << nf << ": " << cmp.only_in_a.size() << " only-orig, "
        << cmp.only_in_b.size() << " only-slice";
  }
}

struct SeedCase {
  const char* nf;
  std::uint64_t seed;
};

class SeededDifferential
    : public ::testing::TestWithParam<std::tuple<const char*, int>> {};

TEST_P(SeededDifferential, ModelMatchesOriginalOn1000Packets) {
  const auto [nf, seed] = GetParam();
  const auto r = run_nf(nf);
  netsim::GenConfig cfg;
  cfg.udp_fraction = 0.2;  // exercise non-TCP handling too
  netsim::PacketGen gen(static_cast<std::uint64_t>(seed) * 7919u, cfg);
  auto packets = gen.batch(1000);
  for (int i = 0; i < 10; ++i) {
    const auto flow = gen.handshake_flow(3);
    packets.insert(packets.end(), flow.begin(), flow.end());
  }
  // Spread in_port so port-sensitive NFs see both sides.
  for (std::size_t i = 0; i < packets.size(); ++i) {
    packets[i].in_port = static_cast<int>(i % 2);
  }
  const auto diff =
      verify::differential_test(*r.module, r.cats, r.model, packets);
  EXPECT_EQ(diff.mismatches, 0)
      << (diff.details.empty() ? "" : diff.details[0]);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, SeededDifferential,
    ::testing::Combine(::testing::Values("lb", "balance", "snort_lite", "nat",
                                         "firewall", "monitor", "l2_switch",
                                         "dpi", "heavy_hitter", "synflood"),
                       ::testing::Values(1, 2, 3)));

TEST(ObsSpans, EveryStageEmitsExactlyOneSpanAndTimesMatch) {
  obs::default_tracer().clear();
  const auto r = run_nf("lb", /*with_orig_se=*/true);
  const auto spans = obs::default_tracer().spans();

  auto count_of = [&](const std::string& name) {
    std::size_t n = 0;
    for (const auto& s : spans) n += s.name == name ? 1 : 0;
    return n;
  };
  auto dur_ms = [&](const std::string& name) {
    for (const auto& s : spans) {
      if (s.name == name) return static_cast<double>(s.dur_ns) / 1e6;
    }
    return -1.0;
  };

  // One span per Algorithm-1 stage, plus the enclosing run span.
  for (const char* stage :
       {"pipeline.run", "pipeline.lower", "pipeline.slice",
        "pipeline.se_slice", "pipeline.model", "pipeline.se_orig"}) {
    EXPECT_EQ(count_of(stage), 1u) << stage;
  }

  // StageTimes is a *view* over the spans: identical numbers, not a
  // second measurement.
  EXPECT_DOUBLE_EQ(r.times.lower_ms, dur_ms("pipeline.lower"));
  EXPECT_DOUBLE_EQ(r.times.slicing_ms, dur_ms("pipeline.slice"));
  EXPECT_DOUBLE_EQ(r.times.se_slice_ms, dur_ms("pipeline.se_slice"));
  EXPECT_DOUBLE_EQ(r.times.model_ms, dur_ms("pipeline.model"));
  EXPECT_DOUBLE_EQ(r.times.se_orig_ms, dur_ms("pipeline.se_orig"));
  EXPECT_DOUBLE_EQ(r.times.total_ms, dur_ms("pipeline.run"));

  // Stage spans nest inside the run span.
  for (const auto& s : spans) {
    if (s.name.rfind("pipeline.", 0) == 0 && s.name != "pipeline.run") {
      EXPECT_EQ(s.depth, 1) << s.name;
    }
  }
}

TEST(ObsSpans, SkippedOrigSeEmitsNoSpan) {
  obs::default_tracer().clear();
  const auto r = run_nf("lb", /*with_orig_se=*/false);
  (void)r;
  for (const auto& s : obs::default_tracer().spans()) {
    EXPECT_NE(s.name, "pipeline.se_orig");
  }
}

TEST(PipelineTimings, AllStagesReported) {
  const auto r = run_nf("lb", true);
  EXPECT_GT(r.times.total_ms, 0.0);
  EXPECT_GE(r.times.slicing_ms, 0.0);
  EXPECT_GE(r.times.se_slice_ms, 0.0);
  EXPECT_GE(r.times.se_orig_ms, 0.0);
  EXPECT_GE(r.times.total_ms,
            r.times.slicing_ms);
}

TEST(SyntheticScaling, SlicePathsImmuneToLogBranches) {
  const auto r4 = pipeline::run_source(nfs::synthetic_nf(4, 4), "k4");
  const auto r10 = pipeline::run_source(nfs::synthetic_nf(10, 4), "k10");
  EXPECT_EQ(r4.slice_paths.size(), r10.slice_paths.size());
  EXPECT_GT(r10.loc_orig, r4.loc_orig);
}

TEST(SyntheticScaling, OrigPathsGrowWithLogBranches) {
  pipeline::PipelineOptions opts;
  opts.run_orig_se = true;
  opts.se_orig.max_paths = 4096;
  const auto r2 = pipeline::run_source(nfs::synthetic_nf(2, 2), "k2", opts);
  const auto r6 = pipeline::run_source(nfs::synthetic_nf(6, 2), "k6", opts);
  EXPECT_GT(r6.orig_paths.size(), r2.orig_paths.size() * 4);
}

TEST(SyntheticScaling, SynthNfIsEquivalentToItsModel) {
  const auto r = pipeline::run_source(nfs::synthetic_nf(6, 6), "synth");
  netsim::PacketGen gen(404);
  auto packets = gen.batch(500);
  const auto diff =
      verify::differential_test(*r.module, r.cats, r.model, packets);
  EXPECT_EQ(diff.mismatches, 0)
      << (diff.details.empty() ? "" : diff.details[0]);
}

TEST(CorpusFiles, WriteCorpusEmitsParseableSources) {
  const std::string dir = ::testing::TempDir();
  nfs::write_corpus(dir);
  for (const auto& e : nfs::corpus()) {
    std::ifstream in(dir + "/" + std::string(e.filename));
    ASSERT_TRUE(in.good()) << e.filename;
    std::stringstream ss;
    ss << in.rdbuf();
    EXPECT_EQ(ss.str(), std::string(e.source));
  }
}

}  // namespace
}  // namespace nfactor
