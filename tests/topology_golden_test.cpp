// Golden tests for the nfactor-topology-v1 query JSON: fixed queries
// over the triangle fixture and the shipped 18-instance datacenter
// fabric, each rendered with its (deterministic) witness and compared
// byte-for-byte against tests/golden/topology/<case>.json.
//
// The document is documented byte-identical at any --jobs width
// (docs/verification.md) — each case renders at jobs 1 AND jobs 4 and
// both must match the same golden bytes, so this suite is also the
// in-process determinism gate behind the CI step.
//
// Regenerate after an intentional format change with
//   NFACTOR_UPDATE_GOLDEN=1 ctest -R TopologyGolden
// and review the diff like any other source change.
#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <optional>
#include <sstream>
#include <string>

#include "symex/solver.h"
#include "tests/topology_test_util.h"
#include "verify/topology.h"
#include "verify/witness.h"

#ifndef NFACTOR_SOURCE_DIR
#error "tests/CMakeLists.txt must define NFACTOR_SOURCE_DIR"
#endif

namespace nfactor::verify {
namespace {

std::string read_file(const std::string& path, bool* ok = nullptr) {
  std::ifstream in(path);
  if (ok) *ok = static_cast<bool>(in);
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

std::string render(const Topology& topo, const std::string& spec, int jobs) {
  const Query q = parse_query(spec);
  symex::SolverCache cache;
  QueryOptions opts;
  opts.jobs = jobs;
  opts.solver_cache = &cache;
  const QueryResult result = run_query(topo, q, opts);
  ReplayReport replay;
  std::optional<Witness> witness;
  if (result.sat) witness = find_witness(topo, result, &replay);
  return topology_json(topo, result, witness ? &*witness : nullptr,
                       witness ? &replay : nullptr) +
         "\n";
}

void check_golden(const std::string& name, const std::string& topo_file,
                  const std::string& spec) {
  bool ok = false;
  const std::string text =
      read_file(std::string(NFACTOR_SOURCE_DIR) + "/" + topo_file, &ok);
  ASSERT_TRUE(ok) << "missing fixture " << topo_file;
  const Topology topo =
      parse_topology(text, testutil::corpus_models().resolver());
  ASSERT_TRUE(topo.validate().empty());

  const std::string actual = render(topo, spec, /*jobs=*/1);
  // Determinism leg: the same document at jobs 4, byte-for-byte.
  EXPECT_EQ(actual, render(topo, spec, /*jobs=*/4))
      << "JSON drifted across jobs widths for " << name;

  const std::string golden_path = std::string(NFACTOR_SOURCE_DIR) +
                                  "/tests/golden/topology/" + name + ".json";
  if (std::getenv("NFACTOR_UPDATE_GOLDEN") != nullptr) {
    std::ofstream out(golden_path);
    ASSERT_TRUE(out) << "cannot write " << golden_path;
    out << actual;
    return;
  }
  ok = false;
  const std::string expected = read_file(golden_path, &ok);
  ASSERT_TRUE(ok) << "missing golden file " << golden_path
                  << " (run with NFACTOR_UPDATE_GOLDEN=1 to create)";
  EXPECT_EQ(actual, expected) << "topology JSON drifted for " << name;
}

TEST(TopologyGolden, TriangleReachOut) {
  check_golden("triangle_reach_out", "tests/fixtures/topo/triangle.topo",
               "reach in out");
}

TEST(TopologyGolden, TriangleReachAlerts) {
  check_golden("triangle_reach_alerts", "tests/fixtures/topo/triangle.topo",
               "reach in alerts");
}

TEST(TopologyGolden, TriangleIsolateNonTcpFromAlerts) {
  check_golden("triangle_isolate_udp", "tests/fixtures/topo/triangle.topo",
               "isolate in alerts where pkt.ip_proto != 6");
}

TEST(TopologyGolden, DatacenterReachWeb) {
  check_golden("datacenter_reach_web", "examples/datacenter.topo",
               "reach cust_a web_out");
}

TEST(TopologyGolden, DatacenterWaypointSynGuard) {
  check_golden("datacenter_waypoint", "examples/datacenter.topo",
               "waypoint cust_a web_out via syn_guard");
}

}  // namespace
}  // namespace nfactor::verify
