// Serial-vs-parallel differential suite for the symbolic executor: the
// scheduler may run at any width, but paths, models, and deterministic
// stats must be byte-identical to the jobs=1 run. This is the lockdown
// for docs/parallel_symex.md's determinism guarantee:
//  - corpus-wide: jobs=4 == jobs=1 for slice SE, orig SE, model bytes,
//    and path/fork stats, with IR simplification both on and off;
//  - stress: snort_lite 20x at jobs=0 (one worker per core) produces
//    identical model bytes and signature order every time;
//  - global budgets: the path cap selects the same canonical survivor
//    set at any width, and timeout_ms=0 times out at any width.
// Cache hit/miss counters are deliberately NOT compared: two workers can
// race to first-compute the same key, so only verdicts are deterministic.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "analysis/pdg.h"
#include "model/model.h"
#include "nfactor/pipeline.h"
#include "nfs/corpus.h"
#include "statealyzer/statealyzer.h"
#include "symex/executor.h"
#include "tests/test_util.h"

namespace nfactor::symex {
namespace {

std::vector<std::string> signatures(const std::vector<ExecPath>& paths) {
  std::vector<std::string> out;
  out.reserve(paths.size());
  for (const auto& p : paths) out.push_back(p.signature());
  return out;
}

/// The schedule-independent part of ExecStats. Forks/steps/pruned/queries
/// are only included when the run explored the full tree: under a path
/// cap or timeout, *which* states get explored before the budget trips is
/// inherently schedule-dependent even though the survivor set is not.
std::string stats_fingerprint(const ExecStats& s) {
  std::string fp = "completed=" + std::to_string(s.paths_completed) +
                   " truncated=" + std::to_string(s.paths_truncated) +
                   " cap=" + std::to_string(s.hit_path_cap) +
                   " timeout=" + std::to_string(s.timed_out);
  if (!s.hit_path_cap && !s.timed_out) {
    fp += " pruned=" + std::to_string(s.paths_pruned) +
          " forks=" + std::to_string(s.forks) +
          " steps=" + std::to_string(s.steps) +
          " queries=" + std::to_string(s.solver_queries);
  }
  return fp;
}

TEST(ParallelDifferential, CorpusModelsAndPathsIdenticalAtJobs4) {
  for (const auto& e : nfs::corpus()) {
    for (const bool simplify : {false, true}) {
      pipeline::PipelineOptions serial;
      serial.run_orig_se = true;
      serial.jobs = 1;
      serial.simplify.enabled = simplify;
      serial.simplify.fold_config = simplify;
      pipeline::PipelineOptions wide = serial;
      wide.jobs = 4;

      const auto r1 = pipeline::run_source(e.source, std::string(e.name), serial);
      const auto r4 = pipeline::run_source(e.source, std::string(e.name), wide);
      const std::string tag =
          std::string(e.name) + (simplify ? " (simplify)" : " (raw)");

      // Exact ordered signature lists — stronger than sorted-set
      // equality: the parallel merge must reproduce the serial DFS
      // completion order, not just the same path set.
      EXPECT_EQ(signatures(r1.slice_paths), signatures(r4.slice_paths))
          << tag << ": slice SE paths diverge";
      EXPECT_EQ(signatures(r1.orig_paths), signatures(r4.orig_paths))
          << tag << ": orig SE paths diverge";

      // Model bytes, both renderings.
      EXPECT_EQ(model::to_json(r1.model), model::to_json(r4.model))
          << tag << ": model JSON diverges";
      EXPECT_EQ(model::to_text(r1.model), model::to_text(r4.model))
          << tag << ": model text diverges";

      EXPECT_EQ(stats_fingerprint(r1.slice_stats),
                stats_fingerprint(r4.slice_stats))
          << tag << ": slice SE stats diverge";
      EXPECT_EQ(stats_fingerprint(r1.orig_stats),
                stats_fingerprint(r4.orig_stats))
          << tag << ": orig SE stats diverge";

      EXPECT_EQ(r4.slice_stats.jobs, 4u) << tag;
      EXPECT_EQ(r1.slice_stats.jobs, 1u) << tag;
    }
  }
}

TEST(ParallelDifferential, SnortLiteStressTwentyRunsAtMaxWidth) {
  const auto& e = nfs::find("snort_lite");
  pipeline::PipelineOptions opts;
  opts.run_orig_se = true;
  opts.jobs = 0;  // one worker per core — whatever this machine has

  pipeline::PipelineOptions serial = opts;
  serial.jobs = 1;
  const auto base = pipeline::run_source(e.source, "snort_lite", serial);
  const std::string base_model = model::to_json(base.model);
  const auto base_slice_sigs = signatures(base.slice_paths);
  const auto base_orig_sigs = signatures(base.orig_paths);

  for (int i = 0; i < 20; ++i) {
    const auto r = pipeline::run_source(e.source, "snort_lite", opts);
    ASSERT_EQ(model::to_json(r.model), base_model) << "run " << i;
    ASSERT_EQ(signatures(r.slice_paths), base_slice_sigs) << "run " << i;
    ASSERT_EQ(signatures(r.orig_paths), base_orig_sigs) << "run " << i;
  }
}

// ---- executor-level budget tests ------------------------------------------

struct Setup {
  std::unique_ptr<ir::Module> module;
  std::unique_ptr<analysis::Pdg> pdg;
  statealyzer::Result cats;
};

Setup prepare(const std::string& src) {
  Setup s;
  s.module = std::make_unique<ir::Module>(testutil::lowered(src));
  s.pdg = std::make_unique<analysis::Pdg>(s.module->body);
  s.cats = statealyzer::analyze(*s.module, *s.pdg);
  return s;
}

// Four independent symbolic branches: 16 feasible paths.
const char* kWideProgram =
    "a = 0;\n"
    "if (pkt.len > 1) { a = 1; }\n"
    "if (pkt.ip_ttl > 1) { a = a + 1; }\n"
    "if (pkt.ip_tos > 1) { a = a + 1; }\n"
    "if (pkt.dport > 1) { a = a + 1; }\n"
    "send(pkt, a);";

TEST(ParallelBudgets, PathCapSelectsCanonicalSurvivorsAtAnyWidth) {
  const auto s = prepare(testutil::nf_body(kWideProgram));
  SymbolicExecutor se(*s.module, s.cats);

  ExecOptions opts;
  opts.max_paths = 5;
  opts.jobs = 1;
  ExecStats serial_stats;
  const auto serial = se.run(opts, &serial_stats);
  ASSERT_EQ(serial.size(), 5u);
  EXPECT_TRUE(serial_stats.hit_path_cap);
  const auto want = signatures(serial);

  // The cap is a global budget: at every width the same canonical
  // survivor set comes back, in the same order, run after run.
  for (const int jobs : {2, 4, 8}) {
    opts.jobs = jobs;
    for (int rep = 0; rep < 5; ++rep) {
      ExecStats stats;
      const auto paths = se.run(opts, &stats);
      ASSERT_EQ(signatures(paths), want)
          << "jobs=" << jobs << " rep=" << rep;
      EXPECT_TRUE(stats.hit_path_cap) << "jobs=" << jobs;
      EXPECT_EQ(stats.paths_completed, 5u) << "jobs=" << jobs;
    }
  }
}

TEST(ParallelBudgets, UncappedRunIsIdenticalIncludingWorkCounters) {
  const auto s = prepare(testutil::nf_body(kWideProgram));
  SymbolicExecutor se(*s.module, s.cats);

  ExecOptions opts;
  opts.jobs = 1;
  ExecStats serial_stats;
  const auto serial = se.run(opts, &serial_stats);
  EXPECT_EQ(serial.size(), 16u);

  opts.jobs = 4;
  ExecStats stats;
  const auto wide = se.run(opts, &stats);
  EXPECT_EQ(signatures(wide), signatures(serial));
  // Full exploration: even the work counters are schedule-independent.
  EXPECT_EQ(stats.forks, serial_stats.forks);
  EXPECT_EQ(stats.steps, serial_stats.steps);
  EXPECT_EQ(stats.paths_pruned, serial_stats.paths_pruned);
  EXPECT_EQ(stats.solver_queries, serial_stats.solver_queries);
  EXPECT_FALSE(stats.hit_path_cap);
  EXPECT_FALSE(stats.timed_out);
}

TEST(ParallelBudgets, ZeroCapDiscardsEverythingAtAnyWidth) {
  const auto s = prepare(testutil::nf_body(kWideProgram));
  SymbolicExecutor se(*s.module, s.cats);
  for (const int jobs : {1, 4}) {
    ExecOptions opts;
    opts.max_paths = 0;
    opts.jobs = jobs;
    ExecStats stats;
    const auto paths = se.run(opts, &stats);
    EXPECT_TRUE(paths.empty()) << "jobs=" << jobs;
    EXPECT_TRUE(stats.hit_path_cap) << "jobs=" << jobs;
  }
}

TEST(ParallelBudgets, TimeoutIsGlobalAcrossWorkers) {
  const auto s = prepare(testutil::nf_body(
      "i = 0;\nwhile (i < pkt.dport) {\n  i = i + 1;\n}\nsend(pkt, i);"));
  SymbolicExecutor se(*s.module, s.cats);
  ExecOptions opts;
  opts.timeout_ms = 0.0;  // the shared deadline trips before any pop
  opts.jobs = 4;
  ExecStats stats;
  const auto paths = se.run(opts, &stats);
  EXPECT_TRUE(stats.timed_out);
  EXPECT_TRUE(paths.empty());
}

}  // namespace
}  // namespace nfactor::symex
