// Property-based testing over *generated* NF programs, now built on the
// reusable fuzzing subsystem (src/fuzz/): the grammar lives in
// fuzz::ProgramGen and the judgments in fuzz::DifferentialOracle, so the
// same properties the old private generator checked —
//   (1) the synthesized model and the original program agree
//       (differential equivalence, §5 generalized to arbitrary programs);
//   (2) the symbolic execution paths of the program partition the
//       concrete input space: exactly one non-truncated path's
//       constraints are satisfied by any concrete (packet, initial
//       state) valuation
// — are exercised here per-seed, and continuously by `nf-fuzz`.
#include <gtest/gtest.h>

#include "fuzz/oracle.h"
#include "fuzz/program_gen.h"

namespace nfactor {
namespace {

class RandomPrograms : public ::testing::TestWithParam<int> {};

// The historical equivalence property: legacy grammar (the shape the old
// in-test generator spoke), differential test on 300 packets. The seed
// formula is unchanged so the same program population stays green.
TEST_P(RandomPrograms, ModelEquivalentToProgram) {
  fuzz::ProgramGen gen(static_cast<std::uint64_t>(GetParam()) * 0x9E3779B9u + 1,
                       fuzz::GenOptions::legacy());
  const auto prog = gen.generate();
  SCOPED_TRACE(prog.source);

  fuzz::OracleOptions opts;
  opts.packets = 300;
  opts.packet_seed = static_cast<std::uint64_t>(GetParam()) + 99;
  opts.check_partition = false;  // covered by PathsPartitionTheInputSpace
  const auto report = fuzz::DifferentialOracle(opts).run(prog.source);
  EXPECT_FALSE(report.failed())
      << to_string(report.cls) << " [" << report.leg << "] " << report.detail;
  // The legacy grammar is small enough that SE must never degrade.
  EXPECT_FALSE(report.degraded);
}

// The historical partition property, same seed formula as before.
TEST_P(RandomPrograms, PathsPartitionTheInputSpace) {
  fuzz::ProgramGen gen(static_cast<std::uint64_t>(GetParam()) * 0x51ED2701u + 7,
                       fuzz::GenOptions::legacy());
  const auto prog = gen.generate();
  SCOPED_TRACE(prog.source);

  fuzz::OracleOptions opts;
  opts.packets = 100;
  opts.packet_seed = static_cast<std::uint64_t>(GetParam()) * 31 + 5;
  opts.check_partition = true;
  opts.partition_packets = 100;
  const auto report = fuzz::DifferentialOracle(opts).run(prog.source);
  EXPECT_FALSE(report.failed())
      << to_string(report.cls) << " [" << report.leg << "] " << report.detail;
  EXPECT_FALSE(report.path_signatures.empty());
}

// The same properties over the *full* grammar — nested/compound
// conditionals, several maps and ports, and the §3.2 structural variants
// (callback, consumer-producer, socket), so transform:: sits inside the
// per-PR property surface too, not just inside nf-fuzz runs.
TEST_P(RandomPrograms, FullGrammarOracleMatrix) {
  fuzz::ProgramGen gen(static_cast<std::uint64_t>(GetParam()) * 0xD1B54A33u +
                       11);
  fuzz::OracleOptions opts;
  opts.packets = 150;
  opts.packet_seed = static_cast<std::uint64_t>(GetParam()) * 7 + 3;
  const fuzz::DifferentialOracle oracle(opts);
  for (int i = 0; i < 3; ++i) {
    const auto prog = gen.generate();
    SCOPED_TRACE("structure=" + transform::to_string(prog.structure) + "\n" +
                 prog.source);
    const auto report = oracle.run(prog.source);
    EXPECT_FALSE(report.failed())
        << to_string(report.cls) << " [" << report.leg << "] " << report.detail;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomPrograms, ::testing::Range(1, 21));

}  // namespace
}  // namespace nfactor
