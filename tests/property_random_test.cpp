// Property-based testing over *generated* NF programs: for random
// programs and random packets,
//   (1) the synthesized model and the original program agree
//       (differential equivalence, §5 generalized to arbitrary programs);
//   (2) the symbolic execution paths of the program partition the
//       concrete input space: exactly one non-truncated path's
//       constraints are satisfied by any concrete (packet, initial
//       state) valuation.
#include <gtest/gtest.h>

#include <random>
#include <sstream>

#include "model/interp.h"
#include "netsim/packet_gen.h"
#include "nfactor/pipeline.h"
#include "runtime/interp.h"
#include "symex/concrete_eval.h"
#include "verify/equivalence.h"

namespace nfactor {
namespace {

/// Seeded random NF-program generator. Produces canonical-loop programs
/// over packet fields, config scalars, state scalars and one state map.
class ProgramGen {
 public:
  explicit ProgramGen(std::uint64_t seed) : rng_(seed) {}

  std::string generate() {
    std::ostringstream g;
    g << "var CFG0 = " << pick({0, 1, 2, 80}) << ";\n";
    g << "var CFG1 = " << pick({23, 80, 443}) << ";\n";
    g << "var st0 = 0;\nvar st1 = 0;\nvar m0 = {};\n";
    std::ostringstream body;
    emit_stmts(body, 2 + static_cast<int>(rng_() % 4), 0);
    // Guarantee at least one reachable send.
    body << "    send(pkt, 1);\n";
    std::ostringstream out;
    out << g.str() << "def main() {\n  while (true) {\n    pkt = recv(0);\n"
        << body.str() << "  }\n}\n";
    return out.str();
  }

 private:
  int pick(std::initializer_list<int> xs) {
    auto it = xs.begin();
    std::advance(it, static_cast<long>(rng_() % xs.size()));
    return *it;
  }

  std::string field() {
    static const char* kFields[] = {"dport", "sport", "ip_proto",
                                    "ip_ttl", "len", "tcp_flags"};
    return std::string("pkt.") + kFields[rng_() % 6];
  }

  std::string cond() {
    switch (rng_() % 5) {
      case 0: return field() + " == " + std::to_string(pick({6, 23, 80, 64}));
      case 1: return field() + " < " + std::to_string(pick({16, 64, 512}));
      case 2: return "CFG0 == " + std::to_string(pick({0, 1, 2}));
      case 3: return "st0 > " + std::to_string(pick({0, 2, 5}));
      default: return "(pkt.ip_src, pkt.sport) in m0";
    }
  }

  void emit_stmts(std::ostringstream& os, int n, int depth) {
    const std::string pad(static_cast<std::size_t>(4 + depth * 2), ' ');
    for (int i = 0; i < n; ++i) {
      switch (rng_() % 8) {
        case 0:
          os << pad << "st0 = st0 + " << (1 + rng_() % 3) << ";\n";
          break;
        case 1:
          os << pad << "st1 = st1 + pkt.len;\n";
          break;
        case 2:
          os << pad << "m0[(pkt.ip_src, pkt.sport)] = "
             << (rng_() % 2 ? "1" : "st0") << ";\n";
          break;
        case 3:
          os << pad << "pkt.ip_ttl = " << (1 + rng_() % 64) << ";\n";
          break;
        case 4:
          os << pad << "send(pkt, " << rng_() % 3 << ");\n";
          break;
        case 5:
          if (depth > 0) {
            os << pad << "return;\n";
            return;  // statements after return are unreachable
          }
          os << pad << "st0 = st0 + 1;\n";
          break;
        default: {
          os << pad << "if (" << cond() << ") {\n";
          emit_stmts(os, 1 + static_cast<int>(rng_() % 2),
                     depth + 1);
          if (rng_() % 2) {
            os << pad << "} else {\n";
            emit_stmts(os, 1 + static_cast<int>(rng_() % 2), depth + 1);
          }
          os << pad << "}\n";
          break;
        }
      }
    }
  }

  std::mt19937_64 rng_;
};

class RandomPrograms : public ::testing::TestWithParam<int> {};

TEST_P(RandomPrograms, ModelEquivalentToProgram) {
  ProgramGen gen(static_cast<std::uint64_t>(GetParam()) * 0x9E3779B9u + 1);
  const std::string src = gen.generate();
  SCOPED_TRACE(src);

  const auto r = pipeline::run_source(src, "random");
  netsim::GenConfig cfg;
  cfg.udp_fraction = 0.3;
  netsim::PacketGen pgen(static_cast<std::uint64_t>(GetParam()) + 99, cfg);
  const auto packets = pgen.batch(300);
  const auto diff =
      verify::differential_test(*r.module, r.cats, r.model, packets);
  EXPECT_EQ(diff.mismatches, 0)
      << (diff.details.empty() ? "" : diff.details[0]);
}

TEST_P(RandomPrograms, PathsPartitionTheInputSpace) {
  ProgramGen gen(static_cast<std::uint64_t>(GetParam()) * 0x51ED2701u + 7);
  const std::string src = gen.generate();
  SCOPED_TRACE(src);

  const auto r = pipeline::run_source(src, "random");
  // Paths of the *whole* program (no slice filter).
  symex::SymbolicExecutor se(*r.module, r.cats);
  symex::ExecOptions opts;
  const auto paths = se.run(opts);

  const auto store = model::initial_store(*r.module);
  netsim::PacketGen pgen(static_cast<std::uint64_t>(GetParam()) * 31 + 5);
  for (const auto& pkt : pgen.batch(100)) {
    symex::ConcreteEnv env;
    env.input_packet = &pkt;
    env.var = [&](const std::string& name) -> runtime::Value {
      if (name.starts_with("pkt.")) {
        const std::string f = name.substr(4);
        if (f == "__payload") return runtime::Value(runtime::Int{0});
        if (f == "in_port") return runtime::Value(runtime::Int{pkt.in_port});
        return runtime::Value(runtime::get_packet_field(pkt, f));
      }
      const auto it = store.find(name);
      if (it == store.end()) throw std::out_of_range(name);
      return it->second;
    };
    env.map_base = [&](const std::string& name) -> const runtime::MapV* {
      const auto it = store.find(name);
      if (it == store.end() || !it->second.is_map()) return nullptr;
      return &it->second.as_map();
    };

    int sat_paths = 0;
    std::size_t sat_sends = 0;
    for (const auto& p : paths) {
      if (p.truncated) continue;
      bool sat = true;
      try {
        for (const auto& c : p.constraints) {
          if (!symex::eval_concrete_bool(c, env)) {
            sat = false;
            break;
          }
        }
      } catch (const std::exception&) {
        sat = false;
      }
      if (sat) {
        ++sat_paths;
        sat_sends = p.sends.size();
      }
    }
    EXPECT_EQ(sat_paths, 1) << netsim::to_string(pkt);

    // The satisfied path predicts the concrete output count.
    runtime::Interpreter interp(*r.module);
    const auto out = interp.process(pkt);
    EXPECT_EQ(out.sent.size(), sat_sends) << netsim::to_string(pkt);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomPrograms, ::testing::Range(1, 21));

}  // namespace
}  // namespace nfactor
