// Symbolic executor: path enumeration, feasibility pruning, loop
// bounding, slice-filtered execution, send/state capture.
#include "symex/executor.h"

#include <gtest/gtest.h>

#include "analysis/pdg.h"
#include "statealyzer/statealyzer.h"
#include "tests/test_util.h"

namespace nfactor::symex {
namespace {

struct Setup {
  std::unique_ptr<ir::Module> module;
  std::unique_ptr<analysis::Pdg> pdg;
  statealyzer::Result cats;
};

Setup prepare(const std::string& src) {
  Setup s;
  s.module = std::make_unique<ir::Module>(testutil::lowered(src));
  s.pdg = std::make_unique<analysis::Pdg>(s.module->body);
  s.cats = statealyzer::analyze(*s.module, *s.pdg);
  return s;
}

std::vector<ExecPath> run(const Setup& s, ExecOptions opts = {},
                          ExecStats* stats = nullptr) {
  SymbolicExecutor se(*s.module, s.cats);
  return se.run(opts, stats);
}

TEST(Executor, StraightLineHasOnePath) {
  const auto s = prepare(testutil::nf_body("send(pkt, 1);"));
  const auto paths = run(s);
  ASSERT_EQ(paths.size(), 1u);
  EXPECT_TRUE(paths[0].constraints.empty());
  ASSERT_EQ(paths[0].sends.size(), 1u);
  EXPECT_FALSE(paths[0].truncated);
}

TEST(Executor, SymbolicBranchForksTwoPaths) {
  const auto s = prepare(testutil::nf_body(
      "if (pkt.dport == 80) {\n  send(pkt, 1);\n}"));
  const auto paths = run(s);
  EXPECT_EQ(paths.size(), 2u);
  int sends = 0;
  for (const auto& p : paths) sends += static_cast<int>(p.sends.size());
  EXPECT_EQ(sends, 1);
}

TEST(Executor, ConcreteBranchDoesNotFork) {
  const auto s = prepare(testutil::nf_body(
      "if (CFG > 2) {\n  send(pkt, 1);\n}", "var CFG = 5;"));
  // CFG is a config scalar -> symbolic -> forks. Use a literal instead:
  const auto s2 = prepare(testutil::nf_body(
      "x = 5;\nif (x > 2) {\n  send(pkt, 1);\n}"));
  EXPECT_EQ(run(s2).size(), 1u);
  EXPECT_EQ(run(s).size(), 2u);  // config stays symbolic by design
}

TEST(Executor, InfeasibleNestedBranchPruned) {
  // The same condition twice: inner branch cannot go the other way.
  const auto s = prepare(testutil::nf_body(
      "if (pkt.dport == 80) {\n  if (pkt.dport == 80) {\n    send(pkt, 1);\n"
      "  } else {\n    send(pkt, 2);\n  }\n}"));
  ExecStats stats;
  const auto paths = run(s, {}, &stats);
  EXPECT_EQ(paths.size(), 2u);  // outer-true(inner-true), outer-false
  EXPECT_GE(stats.paths_pruned, 1u);
}

TEST(Executor, ContradictoryRangeBranchesPruned) {
  const auto s = prepare(testutil::nf_body(
      "if (pkt.len > 100) {\n  if (pkt.len < 50) {\n    send(pkt, 9);\n  }\n}"));
  const auto paths = run(s);
  for (const auto& p : paths) EXPECT_TRUE(p.sends.empty());
}

TEST(Executor, ConcreteLoopUnrollsExactly) {
  const auto s = prepare(testutil::nf_body(
      "acc = 0;\nfor i in 0..4 {\n  acc = acc + 1;\n}\nsend(pkt, acc);"));
  const auto paths = run(s);
  ASSERT_EQ(paths.size(), 1u);
  ASSERT_EQ(paths[0].sends.size(), 1u);
  EXPECT_EQ(to_string(*paths[0].sends[0].port), "4");
}

TEST(Executor, SymbolicLoopBoundTruncates) {
  const auto s = prepare(testutil::nf_body(
      "i = 0;\nwhile (i < pkt.dport) {\n  i = i + 1;\n}\nsend(pkt, i);"));
  ExecOptions opts;
  opts.max_loop_iters = 4;
  ExecStats stats;
  const auto paths = run(s, opts, &stats);
  EXPECT_GE(stats.paths_truncated, 1u);
  // Some paths complete (dport small), one gets truncated at the bound.
  EXPECT_GE(stats.paths_completed, 1u);
}

TEST(Executor, PathCapStopsExploration) {
  const auto s = prepare(testutil::nf_body(
      "a = 0;\n"
      "if (pkt.len > 1) { a = 1; }\n"
      "if (pkt.ip_ttl > 1) { a = a + 1; }\n"
      "if (pkt.ip_tos > 1) { a = a + 1; }\n"
      "if (pkt.dport > 1) { a = a + 1; }\n"
      "send(pkt, a);"));
  ExecOptions opts;
  opts.max_paths = 3;
  ExecStats stats;
  const auto paths = run(s, opts, &stats);
  EXPECT_TRUE(stats.hit_path_cap);
  EXPECT_LE(paths.size(), 3u);
}

TEST(Executor, SendCapturesRewrittenFields) {
  const auto s = prepare(testutil::nf_body(
      "pkt.ip_src = 42;\nsend(pkt, 7);"));
  const auto paths = run(s);
  ASSERT_EQ(paths.size(), 1u);
  const auto& send = paths[0].sends[0];
  EXPECT_EQ(to_string(*send.fields.at("ip_src")), "42");
  EXPECT_EQ(to_string(*send.fields.at("ip_dst")), "pkt.ip_dst");  // untouched
  EXPECT_EQ(to_string(*send.port), "7");
}

TEST(Executor, StateUpdatesAppearInFinalState) {
  const auto s = prepare(testutil::nf_body(
      "n = n + 1;\nm[(pkt.ip_src, pkt.sport)] = n;\nsend(pkt, 0);",
      "var n = 0;\nvar m = {};"));
  const auto paths = run(s);
  ASSERT_EQ(paths.size(), 1u);
  EXPECT_EQ(to_string(*paths[0].final_state.at("n")), "(n + 1)");
  EXPECT_EQ(paths[0].final_state.at("m")->kind, SymKind::kMapStore);
}

TEST(Executor, MapMembershipBecomesStateConstraint) {
  const auto s = prepare(testutil::nf_body(
      "k = (pkt.ip_src, pkt.sport);\nif (k in m) {\n  send(pkt, 1);\n}",
      "var m = {};"));
  const auto paths = run(s);
  ASSERT_EQ(paths.size(), 2u);
  bool saw_contains = false;
  for (const auto& p : paths) {
    for (const auto& c : p.constraints) {
      if (c->kind == SymKind::kContains ||
          (c->kind == SymKind::kUn && c->operands[0]->kind == SymKind::kContains)) {
        saw_contains = true;
      }
    }
  }
  EXPECT_TRUE(saw_contains);
}

TEST(Executor, FilterSkipsExcludedNodes) {
  const auto s = prepare(testutil::nf_body(
      "stat = stat + 1;\nif (pkt.len > 100) {\n  stat = stat + 10;\n}\n"
      "send(pkt, 1);",
      "var stat = 0;"));
  // Build the slice: everything except the stat updates and their branch.
  std::set<int> filter;
  for (const auto& n : s.module->body.nodes) {
    const bool stat_node =
        (n->kind == ir::InstrKind::kAssign && n->var == "stat") ||
        n->kind == ir::InstrKind::kBranch;
    if (!stat_node) filter.insert(n->id);
  }
  ExecOptions opts;
  opts.filter = &filter;
  const auto paths = run(s, opts);
  ASSERT_EQ(paths.size(), 1u);  // the stat branch no longer forks
  EXPECT_EQ(paths[0].final_state.count("stat"), 1u);
  EXPECT_EQ(to_string(*paths[0].final_state.at("stat")), "stat");  // identity
}

TEST(Executor, ConfigListsConcretizeFromInitializers) {
  const auto s = prepare(testutil::nf_body(
      "send(pkt, servers[0][1]);",
      "var servers = [(11, 80), (22, 443)];"));
  const auto paths = run(s);
  ASSERT_EQ(paths.size(), 1u);
  EXPECT_EQ(to_string(*paths[0].sends[0].port), "80");
}

TEST(Executor, HashOfConcreteFoldsSymbolicStays) {
  const auto s = prepare(testutil::nf_body(
      "a = hash((1, 2));\nb = hash((pkt.ip_src, 2));\nsend(pkt, a + b);"));
  const auto paths = run(s);
  ASSERT_EQ(paths.size(), 1u);
  const std::string port = to_string(*paths[0].sends[0].port);
  EXPECT_NE(port.find("hash((pkt.ip_src, 2))"), std::string::npos);
}

TEST(Executor, SignatureStableAcrossRuns) {
  const auto s = prepare(testutil::nf_body(
      "if (pkt.dport == 80) {\n  send(pkt, 1);\n}"));
  const auto p1 = run(s);
  const auto p2 = run(s);
  ASSERT_EQ(p1.size(), p2.size());
  std::multiset<std::string> s1, s2;
  for (const auto& p : p1) s1.insert(p.signature());
  for (const auto& p : p2) s2.insert(p.signature());
  EXPECT_EQ(s1, s2);
}

TEST(Executor, BranchRecordsCarryPolarity) {
  const auto s = prepare(testutil::nf_body(
      "if (pkt.dport == 80) {\n  send(pkt, 1);\n}"));
  for (const auto& p : run(s)) {
    ASSERT_EQ(p.branches.size(), 1u);
    const auto eff = p.branches[0].effective();
    if (p.sends.empty()) {
      EXPECT_EQ(eff->bin_op, lang::BinOp::kNe);
    } else {
      EXPECT_EQ(eff->bin_op, lang::BinOp::kEq);
    }
  }
}

TEST(Executor, TimeoutReported) {
  const auto s = prepare(testutil::nf_body(
      "i = 0;\nwhile (i < pkt.dport) {\n  i = i + 1;\n}\nsend(pkt, i);"));
  ExecOptions opts;
  opts.timeout_ms = 0.0;  // everything times out immediately
  ExecStats stats;
  run(s, opts, &stats);
  EXPECT_TRUE(stats.timed_out);
}

}  // namespace
}  // namespace nfactor::symex
