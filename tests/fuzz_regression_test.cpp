// Replays the committed fuzz corpus (tests/fixtures/fuzz/) through the
// full oracle matrix on every CI run: once a reproducer is shrunk and
// committed, the bug it caught can never silently come back. Also pins
// the corpus contract itself — the manifest stays in sync with the
// files, and the seed fixtures keep every §3.2 structural variant
// (callback, consumer-producer, socket) inside the replayed surface.
#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdio>
#include <filesystem>
#include <set>
#include <string>

#include "fuzz/corpus.h"
#include "fuzz/oracle.h"
#include "lang/parser.h"
#include "transform/normalize.h"

namespace nfactor {
namespace {

std::string corpus_dir() {
  return std::string(NFACTOR_SOURCE_DIR) + "/tests/fixtures/fuzz";
}

TEST(FuzzCorpus, EveryEntryPassesTheFullOracleMatrix) {
  const auto entries = fuzz::CorpusManager(corpus_dir()).load();
  ASSERT_GE(entries.size(), 4u);
  const fuzz::DifferentialOracle oracle;  // default = full matrix
  for (const auto& e : entries) {
    SCOPED_TRACE(e.file + " (" + e.classification + ", first seen " +
                 e.first_seen + ")");
    const auto report = oracle.run(e.source);
    EXPECT_FALSE(report.failed())
        << to_string(report.cls) << " [" << report.leg << "] "
        << report.detail;
    EXPECT_NE(report.cls, fuzz::FailureClass::kFrontendReject)
        << "a committed reproducer stopped parsing";
  }
}

TEST(FuzzCorpus, SeedFixturesCoverTheStructuralVariants) {
  const auto entries = fuzz::CorpusManager(corpus_dir()).load();
  std::set<transform::Structure> seen;
  int seed_fixtures = 0;
  for (const auto& e : entries) {
    if (e.classification != "seed") continue;
    ++seed_fixtures;
    const auto prog = lang::parse(e.source, e.file);
    seen.insert(transform::detect_structure(prog));
  }
  EXPECT_GE(seed_fixtures, 3);
  EXPECT_TRUE(seen.count(transform::Structure::kCallback))
      << "no callback-style seed fixture";
  EXPECT_TRUE(seen.count(transform::Structure::kNestedLoop))
      << "no socket-shape seed fixture";
  EXPECT_TRUE(seen.count(transform::Structure::kConsumerProducer))
      << "no consumer-producer seed fixture";
}

TEST(FuzzCorpus, ReproducersRecordTheSeedThatFoundThem) {
  const auto entries = fuzz::CorpusManager(corpus_dir()).load();
  for (const auto& e : entries) {
    if (e.classification == "seed") continue;
    EXPECT_NE(e.seed, 0u) << e.file;
    EXPECT_FALSE(e.first_seen.empty()) << e.file;
  }
}

TEST(FuzzCorpus, ManagerRoundTripsThroughAddAndLoad) {
  const auto dir = std::filesystem::temp_directory_path() /
                   ("nfactor_corpus_test_" + std::to_string(::getpid()));
  std::filesystem::remove_all(dir);
  fuzz::CorpusManager mgr(dir.string());
  const std::string src = "def main() {\n  while (true) {\n"
                          "    pkt = recv(0);\n    send(pkt, 1);\n  }\n}\n";
  const auto file =
      mgr.add("repro_roundtrip", 0xDEADBEEFu, "divergence", src, "2026-08-06");
  const auto entries = mgr.load();
  ASSERT_EQ(entries.size(), 1u);
  EXPECT_EQ(entries[0].file, file);
  EXPECT_EQ(entries[0].seed, 0xDEADBEEFu);
  EXPECT_EQ(entries[0].classification, "divergence");
  EXPECT_EQ(entries[0].first_seen, "2026-08-06");
  EXPECT_EQ(entries[0].source, src);
  std::filesystem::remove_all(dir);
}

TEST(FuzzCorpus, LoadThrowsOnManifestRowWithMissingFile) {
  const auto dir = std::filesystem::temp_directory_path() /
                   ("nfactor_corpus_lies_" + std::to_string(::getpid()));
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  {
    std::FILE* f = std::fopen((dir / "MANIFEST.tsv").c_str(), "w");
    ASSERT_NE(f, nullptr);
    std::fputs("ghost.nf\t1\tdivergence\t2026-08-06\n", f);
    std::fclose(f);
  }
  EXPECT_THROW(fuzz::CorpusManager(dir.string()).load(), std::runtime_error);
  std::filesystem::remove_all(dir);
}

}  // namespace
}  // namespace nfactor
