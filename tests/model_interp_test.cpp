// Model interpreter: the synthesized tables executed on concrete packets.
#include "model/interp.h"

#include <gtest/gtest.h>

#include "nfactor/pipeline.h"
#include "nfs/corpus.h"
#include "runtime/interp.h"
#include "tests/test_util.h"

namespace nfactor::model {
namespace {

using testutil::tcp_packet;

struct Rig {
  pipeline::PipelineResult r;
  std::unique_ptr<ModelInterpreter> mi;

  explicit Rig(const char* nf)
      : r(pipeline::run_source(nfs::find(nf).source, nf)) {
    mi = std::make_unique<ModelInterpreter>(r.model, initial_store(*r.module));
  }
};

TEST(ModelInterp, LbFirstPacketInstallsNatAndRewrites) {
  Rig rig("lb");
  const auto out = rig.mi->process(tcp_packet("10.0.0.1", 1111, "3.3.3.3", 80));
  ASSERT_EQ(out.sent.size(), 1u);
  const auto& p = out.sent[0].first;
  EXPECT_EQ(p.ip_src, netsim::ipv4("3.3.3.3"));      // LB_IP
  EXPECT_EQ(p.sport, 10000);                          // first cur_port
  EXPECT_EQ(p.ip_dst, netsim::ipv4("1.1.1.1"));      // first RR backend
  EXPECT_EQ(p.dport, 80);
  // State advanced.
  EXPECT_EQ(rig.mi->state("rr_idx")->as_int(), 1);
  EXPECT_EQ(rig.mi->state("cur_port")->as_int(), 10001);
  EXPECT_EQ(rig.mi->state("f2b_nat")->as_map().items.size(), 1u);
}

TEST(ModelInterp, LbRoundRobinAlternatesBackends) {
  Rig rig("lb");
  const auto o1 = rig.mi->process(tcp_packet("10.0.0.1", 1111, "3.3.3.3", 80));
  const auto o2 = rig.mi->process(tcp_packet("10.0.0.2", 2222, "3.3.3.3", 80));
  const auto o3 = rig.mi->process(tcp_packet("10.0.0.3", 3333, "3.3.3.3", 80));
  EXPECT_EQ(o1.sent[0].first.ip_dst, netsim::ipv4("1.1.1.1"));
  EXPECT_EQ(o2.sent[0].first.ip_dst, netsim::ipv4("2.2.2.2"));
  EXPECT_EQ(o3.sent[0].first.ip_dst, netsim::ipv4("1.1.1.1"));
}

TEST(ModelInterp, LbSecondPacketOfFlowReusesMapping) {
  Rig rig("lb");
  const auto p = tcp_packet("10.0.0.1", 1111, "3.3.3.3", 80);
  const auto o1 = rig.mi->process(p);
  const auto o2 = rig.mi->process(p);
  EXPECT_EQ(o1.sent[0].first, o2.sent[0].first);  // same translation
  EXPECT_EQ(rig.mi->state("rr_idx")->as_int(), 1);  // no second advance
  EXPECT_NE(o1.matched_entry, o2.matched_entry);    // hit a different entry
}

TEST(ModelInterp, LbReverseDirectionTranslatesBack) {
  Rig rig("lb");
  rig.mi->process(tcp_packet("10.0.0.1", 1111, "3.3.3.3", 80));
  // Backend -> LB: src is backend, dst is the allocated (LB_IP, 10000).
  const auto back = rig.mi->process(tcp_packet("1.1.1.1", 80, "3.3.3.3", 10000));
  ASSERT_EQ(back.sent.size(), 1u);
  EXPECT_EQ(back.sent[0].first.ip_dst, netsim::ipv4("10.0.0.1"));
  EXPECT_EQ(back.sent[0].first.dport, 1111);
  EXPECT_EQ(back.sent[0].first.ip_src, netsim::ipv4("3.3.3.3"));
  EXPECT_EQ(back.sent[0].first.sport, 80);
}

TEST(ModelInterp, LbUnknownReverseFlowDropped) {
  Rig rig("lb");
  const auto out = rig.mi->process(tcp_packet("1.1.1.1", 80, "3.3.3.3", 9999));
  EXPECT_TRUE(out.dropped());
  EXPECT_EQ(out.matched_entry, rig.r.model.entries.empty() ? -1
                                                           : out.matched_entry);
}

TEST(ModelInterp, LbHashModeViaStateOverride) {
  Rig rig("lb");
  rig.mi->set_state("mode", runtime::Value(runtime::Int{2}));  // HASH
  const auto o = rig.mi->process(tcp_packet("10.0.0.1", 1111, "3.3.3.3", 80));
  ASSERT_EQ(o.sent.size(), 1u);
  // rr_idx must NOT advance in hash mode.
  EXPECT_EQ(rig.mi->state("rr_idx")->as_int(), 0);
  // The backend matches what the original program picks in hash mode.
  runtime::Interpreter orig(*rig.r.module);
  orig.set_global("mode", runtime::Value(runtime::Int{2}));
  const auto oo = orig.process(tcp_packet("10.0.0.1", 1111, "3.3.3.3", 80));
  ASSERT_EQ(oo.sent.size(), 1u);
  EXPECT_EQ(o.sent[0].first, oo.sent[0].first);
}

TEST(ModelInterp, NatAllocatesSequentialPorts) {
  Rig rig("nat");
  auto p1 = tcp_packet("192.168.0.2", 1000, "8.8.8.8", 443);
  auto p2 = tcp_packet("192.168.0.3", 1000, "8.8.8.8", 443);
  p1.in_port = 0;
  p2.in_port = 0;
  const auto o1 = rig.mi->process(p1);
  const auto o2 = rig.mi->process(p2);
  EXPECT_EQ(o1.sent[0].first.sport, 40000);
  EXPECT_EQ(o2.sent[0].first.sport, 40001);
  EXPECT_EQ(o1.sent[0].first.ip_src, netsim::ipv4("5.5.5.5"));
}

TEST(ModelInterp, NatReversePathRestoresAddress) {
  Rig rig("nat");
  auto out_pkt = tcp_packet("192.168.0.2", 1000, "8.8.8.8", 443);
  out_pkt.in_port = 0;
  rig.mi->process(out_pkt);
  auto back = tcp_packet("8.8.8.8", 443, "5.5.5.5", 40000);
  back.in_port = 1;
  const auto o = rig.mi->process(back);
  ASSERT_EQ(o.sent.size(), 1u);
  EXPECT_EQ(o.sent[0].first.ip_dst, netsim::ipv4("192.168.0.2"));
  EXPECT_EQ(o.sent[0].first.dport, 1000);
}

TEST(ModelInterp, FirewallBlocksUnsolicitedInbound) {
  Rig rig("firewall");
  auto inbound = tcp_packet("8.8.8.8", 443, "10.0.0.2", 1000);
  inbound.in_port = 1;
  EXPECT_TRUE(rig.mi->process(inbound).dropped());

  auto outbound = tcp_packet("10.0.0.2", 1000, "8.8.8.8", 443);
  outbound.in_port = 0;
  EXPECT_FALSE(rig.mi->process(outbound).dropped());
  EXPECT_FALSE(rig.mi->process(inbound).dropped());  // now established
}

TEST(ModelInterp, FirewallRstTearsDown) {
  Rig rig("firewall");
  auto outbound = tcp_packet("10.0.0.2", 1000, "8.8.8.8", 443);
  outbound.in_port = 0;
  rig.mi->process(outbound);
  auto rst = tcp_packet("8.8.8.8", 443, "10.0.0.2", 1000, netsim::kRst);
  rst.in_port = 1;
  EXPECT_FALSE(rig.mi->process(rst).dropped());  // RST itself delivered
  auto more = tcp_packet("8.8.8.8", 443, "10.0.0.2", 1000);
  more.in_port = 1;
  EXPECT_TRUE(rig.mi->process(more).dropped());  // entry torn down
}

TEST(ModelInterp, MonitorRateLimitsPerFlow) {
  Rig rig("monitor");
  const auto p = tcp_packet("10.0.0.1", 1, "2.2.2.2", 2);
  int delivered = 0;
  for (int i = 0; i < 6; ++i) {
    delivered += rig.mi->process(p).dropped() ? 0 : 1;
  }
  EXPECT_EQ(delivered, 3);  // LIMIT = 3
  // A different flow gets its own budget.
  const auto q = tcp_packet("10.0.0.9", 1, "2.2.2.2", 2);
  EXPECT_FALSE(rig.mi->process(q).dropped());
}

TEST(ModelInterp, SnortDropsRuleMatchesForwardsRest) {
  Rig rig("snort_lite");
  EXPECT_TRUE(rig.mi->process(tcp_packet("10.0.0.1", 1, "2.2.2.2", 23)).dropped());
  auto tftp = tcp_packet("10.0.0.1", 1, "2.2.2.2", 69);
  tftp.ip_proto = static_cast<std::uint8_t>(netsim::IpProto::kUdp);
  tftp.tcp_flags = 0;
  EXPECT_TRUE(rig.mi->process(tftp).dropped());
  EXPECT_FALSE(rig.mi->process(tcp_packet("10.0.0.1", 1, "2.2.2.2", 443)).dropped());
}

TEST(ModelInterp, SnortContentRuleViaPayload) {
  Rig rig("snort_lite");
  auto ftp = tcp_packet("10.0.0.1", 1, "2.2.2.2", 21);
  const std::string evil = "USER root";
  ftp.payload.assign(evil.begin(), evil.end());
  EXPECT_TRUE(rig.mi->process(ftp).dropped());
  const std::string fine = "USER alice";
  ftp.payload.assign(fine.begin(), fine.end());
  EXPECT_FALSE(rig.mi->process(ftp).dropped());
}

TEST(ModelInterp, SynfloodLimitsHalfOpenHandshakes) {
  Rig rig("synflood");
  const auto syn = tcp_packet("6.6.6.6", 1000, "10.0.0.5", 80, netsim::kSyn);
  int forwarded = 0;
  for (int i = 0; i < 6; ++i) {
    forwarded += rig.mi->process(syn).dropped() ? 0 : 1;
  }
  EXPECT_EQ(forwarded, 3);  // SYN_LIMIT = 3

  // A completed handshake forgives one half-open slot.
  const auto ack = tcp_packet("6.6.6.6", 1000, "10.0.0.5", 80, netsim::kAck);
  EXPECT_FALSE(rig.mi->process(ack).dropped());
  EXPECT_FALSE(rig.mi->process(syn).dropped());  // one more SYN admitted
  EXPECT_TRUE(rig.mi->process(syn).dropped());   // and blocked again
}

TEST(ModelInterp, SynfloodPerSourceIsolation) {
  Rig rig("synflood");
  const auto evil = tcp_packet("6.6.6.6", 1000, "10.0.0.5", 80, netsim::kSyn);
  for (int i = 0; i < 5; ++i) rig.mi->process(evil);
  // An unrelated source still gets through.
  const auto good = tcp_packet("7.7.7.7", 1000, "10.0.0.5", 80, netsim::kSyn);
  EXPECT_FALSE(rig.mi->process(good).dropped());
}

TEST(ModelInterp, L2SwitchLearnsAndForwards) {
  Rig rig("l2_switch");
  auto a_to_b = tcp_packet("10.0.0.1", 1, "10.0.0.2", 2);
  a_to_b.eth_src = {0, 0, 0, 0, 0, 0xA};
  a_to_b.eth_dst = {0, 0, 0, 0, 0, 0xB};
  a_to_b.in_port = 1;
  // Unknown destination: flooded.
  const auto o1 = rig.mi->process(a_to_b);
  ASSERT_EQ(o1.sent.size(), 1u);
  EXPECT_EQ(o1.sent[0].second, 255);  // FLOOD_PORT

  // Reply from B teaches the switch B's port and hits A's learned port.
  auto b_to_a = a_to_b;
  std::swap(b_to_a.eth_src, b_to_a.eth_dst);
  b_to_a.in_port = 2;
  const auto o2 = rig.mi->process(b_to_a);
  ASSERT_EQ(o2.sent.size(), 1u);
  EXPECT_EQ(o2.sent[0].second, 1);  // A's learned port

  // Hairpin (destination on the ingress port) is filtered.
  auto hairpin = a_to_b;
  hairpin.eth_dst = hairpin.eth_src;
  const auto o3 = rig.mi->process(hairpin);
  EXPECT_TRUE(o3.dropped());
}

TEST(ModelInterp, DpiMirrorsAndForwardsMatches) {
  Rig rig("dpi");
  auto evil = tcp_packet("10.0.0.1", 1111, "2.2.2.2", 80);
  const std::string sig = "GET /exploit";
  evil.payload.assign(sig.begin(), sig.end());
  const auto out = rig.mi->process(evil);
  ASSERT_EQ(out.sent.size(), 2u);  // mirror + forward
  EXPECT_EQ(out.sent[0].second, 9);
  EXPECT_EQ(out.sent[1].second, 1);

  auto benign = evil;
  benign.payload.clear();
  const auto o2 = rig.mi->process(benign);
  ASSERT_EQ(o2.sent.size(), 1u);
}

TEST(ModelInterp, HeavyHitterBlocksAfterThreshold) {
  Rig rig("heavy_hitter");
  auto p = tcp_packet("10.0.0.1", 1, "2.2.2.2", 2);
  p.payload.assign(200, 0x61);  // 200 bytes per packet, THRESH = 600
  int delivered = 0;
  for (int i = 0; i < 6; ++i) delivered += rig.mi->process(p).dropped() ? 0 : 1;
  EXPECT_EQ(delivered, 3);  // 200, 400, 600 pass (600 !> 600); blocked after
}

TEST(ModelInterp, MatchedEntryReported) {
  Rig rig("firewall");
  auto outbound = tcp_packet("10.0.0.2", 1000, "8.8.8.8", 443);
  outbound.in_port = 0;
  const auto o = rig.mi->process(outbound);
  EXPECT_GE(o.matched_entry, 0);
  auto unknown = tcp_packet("9.9.9.9", 443, "10.0.0.77", 2000);
  unknown.in_port = 1;
  const auto d = rig.mi->process(unknown);
  // Either a drop entry matched or the default fired.
  if (d.matched_entry >= 0) {
    EXPECT_TRUE(rig.r.model.entries[static_cast<std::size_t>(d.matched_entry)]
                    .is_drop());
  }
}

TEST(ModelInterp, InitialStoreMatchesGlobalInitializers) {
  const auto r = pipeline::run_source(nfs::find("lb").source, "lb");
  const auto store = initial_store(*r.module);
  EXPECT_EQ(store.at("rr_idx").as_int(), 0);
  EXPECT_EQ(store.at("cur_port").as_int(), 10000);
  EXPECT_EQ(store.at("mode").as_int(), 1);
  EXPECT_TRUE(store.at("f2b_nat").is_map());
  EXPECT_TRUE(store.at("servers").is_list());
}

}  // namespace
}  // namespace nfactor::model
