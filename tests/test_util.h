// Shared helpers for the NFactor test suite.
#pragma once

#include <string>

#include "ir/lower.h"
#include "lang/parser.h"
#include "lang/sema.h"
#include "netsim/packet.h"

namespace nfactor::testutil {

/// Parse + analyze, returning the annotated program.
inline lang::Program parsed(const std::string& src) {
  lang::Program p = lang::parse(src, "<test>");
  lang::analyze(p);
  return p;
}

/// Lower a canonical-loop program directly.
inline ir::Module lowered(const std::string& src) {
  return ir::lower(lang::parse(src, "<test>"));
}

/// Wrap per-packet statements into the canonical program skeleton.
inline std::string nf_body(const std::string& stmts,
                           const std::string& globals = "") {
  return globals + "\ndef main() {\n  while (true) {\n    pkt = recv(0);\n" +
         stmts + "\n  }\n}\n";
}

/// A plain TCP client packet for runtime tests.
inline netsim::Packet tcp_packet(const std::string& src_ip, int sport,
                                 const std::string& dst_ip, int dport,
                                 std::uint8_t flags = netsim::kAck) {
  netsim::Packet p;
  p.ip_src = netsim::ipv4(src_ip);
  p.ip_dst = netsim::ipv4(dst_ip);
  p.sport = static_cast<std::uint16_t>(sport);
  p.dport = static_cast<std::uint16_t>(dport);
  p.tcp_flags = flags;
  return p;
}

}  // namespace nfactor::testutil
