// §3.2 code-structure normalization: callback, consumer-producer, and
// socket-unfolding transforms.
#include "transform/normalize.h"

#include <gtest/gtest.h>

#include "ir/lower.h"
#include "lang/parser.h"
#include "nfs/corpus.h"
#include "runtime/interp.h"
#include "tests/test_util.h"
#include "transform/rewrite.h"
#include "transform/unfold_sockets.h"

namespace nfactor::transform {
namespace {

using testutil::tcp_packet;

TEST(DetectStructure, ClassifiesCorpus) {
  EXPECT_EQ(detect_structure(lang::parse(nfs::find("lb").source)),
            Structure::kCallback);
  EXPECT_EQ(detect_structure(lang::parse(nfs::find("balance").source)),
            Structure::kNestedLoop);
  EXPECT_EQ(detect_structure(lang::parse(nfs::find("snort_lite").source)),
            Structure::kCanonicalLoop);
  EXPECT_EQ(detect_structure(lang::parse(nfs::find("monitor").source)),
            Structure::kConsumerProducer);
}

TEST(DetectStructure, RequiresMain) {
  EXPECT_THROW(detect_structure(lang::parse("def f() { }")), TransformError);
}

TEST(NormalizeCallback, ProducesCanonicalLoop) {
  auto prog = lang::parse(nfs::find("lb").source, "lb");
  auto out = normalize_callback(prog);
  EXPECT_EQ(detect_structure(out), Structure::kCanonicalLoop);
  // The callback function survives (it gets inlined at lowering).
  EXPECT_NE(out.find_func("pkt_callback"), nullptr);
  // And the result lowers cleanly.
  EXPECT_NO_THROW(ir::lower(std::move(out)));
}

TEST(NormalizeCallback, PreservesBehaviour) {
  auto prog = lang::parse(nfs::find("lb").source, "lb");
  auto mod = ir::lower(normalize(prog));
  runtime::Interpreter interp(mod);
  const auto out = interp.process(tcp_packet("10.0.0.1", 1234, "3.3.3.3", 80));
  ASSERT_EQ(out.sent.size(), 1u);
  EXPECT_EQ(out.sent[0].first.ip_dst, netsim::ipv4("1.1.1.1"));
}

TEST(NormalizeCallback, ErrorsWithoutSniff) {
  EXPECT_THROW(normalize_callback(lang::parse(
                   "def main() { while (true) { pkt = recv(0); } }")),
               TransformError);
}

TEST(NormalizeCallback, ErrorsOnUnknownCallback) {
  EXPECT_THROW(normalize_callback(lang::parse(
                   "def main() { sniff(0, nosuch); }")),
               TransformError);
}

TEST(NormalizeConsumerProducer, MergesLoops) {
  auto prog = lang::parse(nfs::find("monitor").source, "monitor");
  auto out = normalize_consumer_producer(prog);
  EXPECT_EQ(detect_structure(out), Structure::kCanonicalLoop);
  // The producer/consumer functions are gone.
  EXPECT_EQ(out.find_func("read_loop"), nullptr);
  EXPECT_EQ(out.find_func("proc_loop"), nullptr);
  EXPECT_NO_THROW(ir::lower(out.clone()));
}

TEST(NormalizeConsumerProducer, PreservesRateLimiting) {
  auto mod = ir::lower(normalize(lang::parse(nfs::find("monitor").source)));
  runtime::Interpreter interp(mod);
  const auto p = tcp_packet("10.0.0.1", 1, "2.2.2.2", 2);
  int delivered = 0;
  for (int i = 0; i < 6; ++i) delivered += interp.process(p).dropped() ? 0 : 1;
  EXPECT_EQ(delivered, 3);  // LIMIT = 3
}

TEST(NormalizeConsumerProducer, ErrorsWithoutTwoSpawns) {
  EXPECT_THROW(normalize_consumer_producer(lang::parse(
                   "def a() { while (true) { p = recv(0); } }\n"
                   "def main() { spawn(a); }")),
               TransformError);
}

TEST(UnfoldSockets, RecognizesBalanceShape) {
  auto prog = lang::parse(nfs::find("balance").source, "balance");
  auto out = unfold_sockets(prog);
  EXPECT_EQ(detect_structure(out), Structure::kCanonicalLoop);
  // The generated program carries the TCP state machinery.
  const std::string src = lang::to_source(out);
  EXPECT_NE(src.find("tcp_st"), std::string::npos);
  EXPECT_NE(src.find("fwd_nat"), std::string::npos);
  EXPECT_NE(src.find("rev_nat"), std::string::npos);
  // Original globals survive.
  EXPECT_NE(src.find("var idx = 0;"), std::string::npos);
}

TEST(UnfoldSockets, SynEstablishDataRelay) {
  auto mod = ir::lower(normalize(lang::parse(nfs::find("balance").source)));
  runtime::Interpreter interp(mod);

  // SYN from client: forwarded to backend 1 with NAT.
  const auto syn_out = interp.process(
      tcp_packet("10.0.0.1", 1234, "3.3.3.3", 80, netsim::kSyn));
  ASSERT_EQ(syn_out.sent.size(), 1u);
  EXPECT_EQ(syn_out.sent[0].first.ip_dst, netsim::ipv4("1.1.1.1"));
  EXPECT_EQ(syn_out.sent[0].first.ip_src, netsim::ipv4("3.3.3.3"));
  const auto lb_port = syn_out.sent[0].first.sport;

  // SYN-ACK from backend: relayed back to the client.
  const auto synack_out = interp.process(tcp_packet(
      "1.1.1.1", 80, "3.3.3.3", lb_port, netsim::kSyn | netsim::kAck));
  ASSERT_EQ(synack_out.sent.size(), 1u);
  EXPECT_EQ(synack_out.sent[0].first.ip_dst, netsim::ipv4("10.0.0.1"));
  EXPECT_EQ(synack_out.sent[0].first.dport, 1234);

  // Client ACK completes the handshake and is relayed.
  const auto ack_out = interp.process(
      tcp_packet("10.0.0.1", 1234, "3.3.3.3", 80, netsim::kAck));
  ASSERT_EQ(ack_out.sent.size(), 1u);

  // Data now flows.
  const auto data_out = interp.process(tcp_packet(
      "10.0.0.1", 1234, "3.3.3.3", 80, netsim::kAck | netsim::kPsh));
  EXPECT_EQ(data_out.sent.size(), 1u);
}

TEST(UnfoldSockets, DataWithoutHandshakeDropped) {
  auto mod = ir::lower(normalize(lang::parse(nfs::find("balance").source)));
  runtime::Interpreter interp(mod);
  // Pure data packet for an unknown connection: the hidden-state rule —
  // "data packets without 3-way handshake established would be dropped".
  const auto out = interp.process(
      tcp_packet("10.0.0.1", 999, "3.3.3.3", 80, netsim::kAck | netsim::kPsh));
  EXPECT_TRUE(out.dropped());
}

TEST(UnfoldSockets, RstTearsConnectionDown) {
  auto mod = ir::lower(normalize(lang::parse(nfs::find("balance").source)));
  runtime::Interpreter interp(mod);
  interp.process(tcp_packet("10.0.0.1", 1234, "3.3.3.3", 80, netsim::kSyn));
  interp.process(tcp_packet("1.1.1.1", 80, "3.3.3.3", 10000,
                            netsim::kSyn | netsim::kAck));
  interp.process(tcp_packet("10.0.0.1", 1234, "3.3.3.3", 80, netsim::kAck));
  // RST from the client side.
  interp.process(tcp_packet("10.0.0.1", 1234, "3.3.3.3", 80, netsim::kRst));
  const auto after = interp.process(tcp_packet(
      "10.0.0.1", 1234, "3.3.3.3", 80, netsim::kAck | netsim::kPsh));
  EXPECT_TRUE(after.dropped());
}

TEST(UnfoldSockets, RoundRobinAcrossConnections) {
  auto mod = ir::lower(normalize(lang::parse(nfs::find("balance").source)));
  runtime::Interpreter interp(mod);
  const auto o1 = interp.process(
      tcp_packet("10.0.0.1", 1000, "3.3.3.3", 80, netsim::kSyn));
  const auto o2 = interp.process(
      tcp_packet("10.0.0.2", 1000, "3.3.3.3", 80, netsim::kSyn));
  ASSERT_EQ(o1.sent.size(), 1u);
  ASSERT_EQ(o2.sent.size(), 1u);
  EXPECT_EQ(o1.sent[0].first.ip_dst, netsim::ipv4("1.1.1.1"));
  EXPECT_EQ(o2.sent[0].first.ip_dst, netsim::ipv4("2.2.2.2"));
}

TEST(UnfoldSockets, ErrorsOnNonconformingShape) {
  EXPECT_THROW(unfold_sockets(lang::parse(
                   "def main() { while (true) { pkt = recv(0); } }")),
               TransformError);
  EXPECT_THROW(unfold_sockets(lang::parse(
                   "def main() { lfd = sock_listen(80); }")),
               TransformError);
}

TEST(UnfoldSockets, CustomLbIpOption) {
  UnfoldOptions opts;
  opts.lb_ip = netsim::ipv4("9.9.9.9");
  auto out = unfold_sockets(lang::parse(nfs::find("balance").source), opts);
  EXPECT_NE(lang::to_source(out).find("var lb_ip = " +
                                      std::to_string(netsim::ipv4("9.9.9.9"))),
            std::string::npos);
}

TEST(NormalizeDispatch, IdentityOnCanonical) {
  auto prog = lang::parse(nfs::find("nat").source, "nat");
  auto out = normalize(prog);
  EXPECT_EQ(lang::to_source(out), lang::to_source(prog));
}

// ---------------------------------------------------------------------------
// rename_vars
// ---------------------------------------------------------------------------

TEST(RenameVars, RenamesReadsWritesAndTargets) {
  auto prog = lang::parse(
      "def f(a) { a = a + 1; b = a; m[a] = b; a.ip_src = 1; }");
  const auto& body = *prog.funcs[0].body;
  const std::map<std::string, std::string> ren = {{"a", "z"}};
  const auto out = rename_vars(body, ren);
  const std::string s = lang::to_source(*out);
  EXPECT_EQ(s.find(" a "), std::string::npos);
  EXPECT_NE(s.find("z = (z + 1);"), std::string::npos);
  EXPECT_NE(s.find("m[z] = b;"), std::string::npos);
  EXPECT_NE(s.find("z.ip_src = 1;"), std::string::npos);
}

TEST(RenameVars, LeavesOtherNamesAlone) {
  auto prog = lang::parse("def f() { x = y + 1; }");
  const auto out = rename_vars(*prog.funcs[0].body, {{"q", "r"}});
  EXPECT_EQ(lang::to_source(*out), lang::to_source(*prog.funcs[0].body));
}

}  // namespace
}  // namespace nfactor::transform
