// Unit tests for the diff subsystem building blocks: the public
// fuzz::mutate fault-injection API (site enumeration, determinism,
// line preservation), the rule matcher's solver-backed implication
// helpers, and delta classification + localization on minimal sources
// where the expected delta kind and faulty line are known by
// construction (docs/diffing.md).
#include <gtest/gtest.h>

#include <algorithm>
#include <string>

#include "diff/diff.h"
#include "diff/matcher.h"
#include "fuzz/mutate.h"
#include "lang/parser.h"
#include "lang/sema.h"
#include "symex/expr.h"
#include "symex/solver.h"

namespace nfactor {
namespace {

// A minimal NF whose model is known by construction: an overflow rule
// (count > LIMIT -> divert to port 2), a flow-match rule (dport 80 ->
// send on port 1, bump `count`), and the implicit drop rule. `count`
// is read by a guard, so StateAlyzer keeps it output-impacting and
// its update appears in the model's state actions.
//   line  7: if (count > LIMIT)
//   line 11: if (pkt.dport == 80)
//   line 12:   count = count + 1
//   line 13:   send(pkt, 1)
const std::string kRef = R"NF(var LIMIT = 5;
var count = 0;

def main() {
  while (true) {
    pkt = recv(0);
    if (count > LIMIT) {
      send(pkt, 2);
      return;
    }
    if (pkt.dport == 80) {
      count = count + 1;
      send(pkt, 1);
    }
    return;
  }
}
)NF";

std::string replace_once(std::string s, const std::string& from,
                         const std::string& to) {
  const auto pos = s.find(from);
  EXPECT_NE(pos, std::string::npos) << from;
  return s.replace(pos, from.size(), to);
}

long line_count(const std::string& s) {
  return std::count(s.begin(), s.end(), '\n');
}

// ---------------------------------------------------------------------------
// fuzz::mutate
// ---------------------------------------------------------------------------

TEST(MutateSites, WrongConstantEnumeratesBodyLiteralsOnly) {
  const auto sites =
      fuzz::mutation_sites(kRef, fuzz::FaultClass::kWrongConstant);
  // 0 (recv port), 2 (divert port), 80 (guard), 1 (count + 1),
  // 1 (send port) — never the global initializers 5 and 0.
  ASSERT_EQ(sites.size(), 5u);
  for (const auto& s : sites) {
    EXPECT_GE(s.line, 6) << "global initializer offered as a mutation site";
  }
  EXPECT_EQ(sites[2].line, 11);
  EXPECT_EQ(sites[2].value, 80);
}

TEST(MutateSites, InvertedGuardOnePerIf) {
  const auto sites =
      fuzz::mutation_sites(kRef, fuzz::FaultClass::kInvertedGuard);
  ASSERT_EQ(sites.size(), 2u);
  EXPECT_EQ(sites[0].line, 7);
  EXPECT_EQ(sites[1].line, 11);
}

TEST(MutateSites, MissingStateUpdateOnlyGlobalAssignments) {
  const auto sites =
      fuzz::mutation_sites(kRef, fuzz::FaultClass::kMissingStateUpdate);
  ASSERT_EQ(sites.size(), 1u);
  EXPECT_EQ(sites[0].line, 12);
}

TEST(MutateSites, DottedQuadIpLiteralsAreNotSites) {
  const std::string src = R"NF(var GW = 10.0.0.1;

def main() {
  while (true) {
    pkt = recv(0);
    if (pkt.ip_dst == 10.0.0.1) {
      send(pkt, 0);
    }
    return;
  }
}
)NF";
  // The only body literals are the IP in the guard (excluded: mutating
  // one octet of a dotted quad is not a "wrong constant" a programmer
  // writes) and the recv/send ports.
  const auto sites =
      fuzz::mutation_sites(src, fuzz::FaultClass::kWrongConstant);
  ASSERT_EQ(sites.size(), 2u);
  for (const auto& s : sites) EXPECT_EQ(s.value, 0);
}

TEST(MutateSites, UnparseableSourceYieldsNoSites) {
  for (const auto cls : fuzz::kAllFaultClasses) {
    EXPECT_TRUE(fuzz::mutation_sites("def oops {", cls).empty());
    EXPECT_FALSE(fuzz::mutate("def oops {", cls, 1).ok);
  }
}

TEST(Mutate, DeterministicPerSeedAndLinePreserving) {
  for (const auto cls : fuzz::kAllFaultClasses) {
    for (std::uint64_t seed = 0; seed < 6; ++seed) {
      const auto a = fuzz::mutate(kRef, cls, seed);
      const auto b = fuzz::mutate(kRef, cls, seed);
      ASSERT_TRUE(a.ok) << fuzz::to_string(cls) << " seed " << seed;
      EXPECT_EQ(a.source, b.source);
      EXPECT_EQ(a.line, b.line);
      EXPECT_EQ(a.description, b.description);
      EXPECT_NE(a.source, kRef);
      EXPECT_EQ(line_count(a.source), line_count(kRef));
      // Every mutant is a valid program (mutate() re-validates).
      auto prog = lang::parse(a.source, "mutant");
      EXPECT_NO_THROW(lang::analyze(prog));
    }
  }
}

TEST(Mutate, NoViableSiteReportsFailure) {
  // No global is assigned in the body: nothing to blank. No if: no
  // guard to invert.
  const std::string stateless = R"NF(def main() {
  while (true) {
    pkt = recv(0);
    send(pkt, 0);
    return;
  }
}
)NF";
  EXPECT_FALSE(
      fuzz::mutate(stateless, fuzz::FaultClass::kMissingStateUpdate, 1).ok);
  EXPECT_FALSE(
      fuzz::mutate(stateless, fuzz::FaultClass::kInvertedGuard, 1).ok);
}

TEST(Mutate, TargetedEditsPreserveLineStructure) {
  const auto consts =
      fuzz::mutation_sites(kRef, fuzz::FaultClass::kWrongConstant);
  ASSERT_FALSE(consts.empty());
  const std::string swapped = fuzz::replace_constant(kRef, consts[0], 8080);
  EXPECT_NE(swapped.find("8080"), std::string::npos);
  EXPECT_EQ(line_count(swapped), line_count(kRef));

  const auto guards =
      fuzz::mutation_sites(kRef, fuzz::FaultClass::kInvertedGuard);
  ASSERT_FALSE(guards.empty());
  const std::string inverted = fuzz::invert_guard(kRef, guards[0]);
  EXPECT_NE(inverted.find("!("), std::string::npos);
  EXPECT_EQ(line_count(inverted), line_count(kRef));

  const auto stmts =
      fuzz::mutation_sites(kRef, fuzz::FaultClass::kMissingStateUpdate);
  ASSERT_FALSE(stmts.empty());
  const std::string blanked = fuzz::blank_statement(kRef, stmts[0]);
  EXPECT_EQ(blanked.size(), kRef.size());  // blanked with spaces in place
  EXPECT_EQ(line_count(blanked), line_count(kRef));
  EXPECT_EQ(blanked.find("count = count + 1"), std::string::npos);
}

// ---------------------------------------------------------------------------
// diff::guard_implies / guards_equivalent
// ---------------------------------------------------------------------------

TEST(GuardImplication, ConjunctionSubsumption) {
  symex::Solver solver;
  const auto dport = symex::make_var("pkt.dport", symex::VarClass::kPkt);
  const auto sport = symex::make_var("pkt.sport", symex::VarClass::kPkt);
  const auto a = symex::make_bin(lang::BinOp::kEq, dport, symex::make_int(80));
  const auto b = symex::make_bin(lang::BinOp::kEq, sport, symex::make_int(22));

  // {a, b} => {a}: dropping a conjunct weakens the guard.
  EXPECT_TRUE(diff::guard_implies(solver, {a, b}, {a}));
  // {a} =/=> {a, b}: nothing pins sport.
  EXPECT_FALSE(diff::guard_implies(solver, {a}, {a, b}));
  // Permuted conjunct order is mutually implied.
  EXPECT_TRUE(diff::guards_equivalent(solver, {a, b}, {b, a}));
  EXPECT_FALSE(diff::guards_equivalent(solver, {a}, {b}));
}

// ---------------------------------------------------------------------------
// Delta classification + localization on known-by-construction edits
// ---------------------------------------------------------------------------

diff::DiffResult diff_against_ref(const std::string& variant) {
  return diff::diff_sources(kRef, "ref", variant, "variant");
}

/// The single paired delta of a one-edit diff (asserts there is one).
const diff::RuleDelta& single_delta(const diff::DiffResult& r) {
  EXPECT_EQ(r.diff.delta_count(), 1u) << diff::to_text(r);
  EXPECT_EQ(r.diff.tables.size(), 1u);
  return r.diff.tables.at(0).deltas.at(0);
}

TEST(DiffClassify, GuardConstantEdit) {
  const auto r = diff_against_ref(
      replace_once(kRef, "pkt.dport == 80", "pkt.dport == 81"));
  ASSERT_FALSE(r.equivalent());
  // Both the send rule and the drop rule change their guard; every
  // delta must be guard-kind and localize to the if line (5).
  ASSERT_GE(r.diff.delta_count(), 1u);
  for (const auto& t : r.diff.tables) {
    for (const auto& d : t.deltas) {
      EXPECT_EQ(d.kind, diff::DeltaKind::kGuardChanged);
      EXPECT_TRUE(d.guard_changed);
      EXPECT_FALSE(d.old_only_guard.empty());
      EXPECT_FALSE(d.new_only_guard.empty());
      ASSERT_FALSE(d.suspects.empty());
      EXPECT_EQ(d.suspects[0].line, 11) << diff::to_text(r);
    }
  }
}

TEST(DiffClassify, SendPortEdit) {
  const auto r =
      diff_against_ref(replace_once(kRef, "send(pkt, 1)", "send(pkt, 2)"));
  ASSERT_FALSE(r.equivalent());
  const auto& d = single_delta(r);
  EXPECT_EQ(d.kind, diff::DeltaKind::kActionChanged);
  EXPECT_TRUE(d.port_changed);
  EXPECT_FALSE(d.guard_changed);
  ASSERT_FALSE(d.suspects.empty());
  // Line 12's `+ 1` literal equals the changed old-side port constant,
  // so it legitimately ties the send line; the true line must still be
  // in the top-3 suspects.
  bool has_line_13 = false;
  for (const auto& s : d.suspects) has_line_13 |= (s.line == 13);
  EXPECT_TRUE(has_line_13) << diff::to_text(r);
}

TEST(DiffClassify, StateUpdateEdit) {
  const auto r = diff_against_ref(
      replace_once(kRef, "count = count + 1", "count = count + 2"));
  ASSERT_FALSE(r.equivalent());
  const auto& d = single_delta(r);
  EXPECT_EQ(d.kind, diff::DeltaKind::kStateChanged);
  EXPECT_TRUE(d.state_changed);
  EXPECT_FALSE(d.guard_changed);
  EXPECT_FALSE(d.action_changed);
  ASSERT_EQ(d.changed_state.size(), 1u);
  EXPECT_EQ(d.changed_state[0], "count");
  ASSERT_FALSE(d.suspects.empty());
  EXPECT_EQ(d.suspects[0].line, 12) << diff::to_text(r);
}

TEST(DiffClassify, AddedAndRemovedRules) {
  const std::string extra = replace_once(
      kRef, "    if (pkt.dport == 80) {",
      "    if (pkt.dport == 22) { send(pkt, 3); return; }\n"
      "    if (pkt.dport == 80) {");
  const auto added = diff_against_ref(extra);
  ASSERT_FALSE(added.equivalent());
  bool saw_added = false;
  for (const auto& t : added.diff.tables) {
    for (const auto& d : t.deltas) {
      if (d.kind == diff::DeltaKind::kAdded) {
        saw_added = true;
        EXPECT_GE(d.new_entry, 0);
        EXPECT_EQ(d.old_entry, -1);
        EXPECT_FALSE(d.new_terms.empty());
      }
    }
  }
  EXPECT_TRUE(saw_added) << diff::to_text(added);

  // Swapping the sides turns the same structural difference into a
  // removal.
  const auto removed = diff::diff_sources(extra, "ref", kRef, "variant");
  bool saw_removed = false;
  for (const auto& t : removed.diff.tables) {
    for (const auto& d : t.deltas) {
      if (d.kind == diff::DeltaKind::kRemoved) saw_removed = true;
    }
  }
  EXPECT_TRUE(saw_removed) << diff::to_text(removed);
}

TEST(DiffClassify, CosmeticDuplicateConjunctIsEquivalent) {
  // A nested duplicate test adds a second, identical conjunct to the
  // path condition; the sorted-dedup fingerprint signature must still
  // match it to the flat reference rule (no reported delta).
  const std::string nested = replace_once(
      kRef, "    if (pkt.dport == 80) {",
      "    if (pkt.dport == 80) { if (pkt.dport == 80) {");
  const auto r = diff_against_ref(
      replace_once(nested, "    }\n    return;", "    } }\n    return;"));
  EXPECT_TRUE(r.equivalent()) << diff::to_text(r);
}

TEST(DiffModels, SelfDiffHasNoDeltasAndNoSolverQueries) {
  const auto r = diff::diff_sources(kRef, "a", kRef, "b");
  EXPECT_TRUE(r.equivalent());
  EXPECT_EQ(r.diff.solver_queries, 0u);
  EXPECT_GT(r.diff.equivalent_pairs, 0u);
}

}  // namespace
}  // namespace nfactor
