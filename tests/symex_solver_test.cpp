// Path-constraint solver: satisfiability decisions on the fragment NF
// branch conditions generate.
#include "symex/solver.h"

#include <gtest/gtest.h>

namespace nfactor::symex {
namespace {

using lang::BinOp;

SymRef v(const char* name) { return make_var(name, VarClass::kPkt); }

SatResult check(std::vector<SymRef> cs) {
  Solver s;
  return s.check(cs);
}

TEST(Solver, EmptyIsSat) { EXPECT_EQ(check({}), SatResult::kSat); }

TEST(Solver, ConstantsFold) {
  EXPECT_EQ(check({make_bool(true)}), SatResult::kSat);
  EXPECT_EQ(check({make_bool(false)}), SatResult::kUnsat);
}

TEST(Solver, EqualityConflict) {
  const SymRef x = v("pkt.dport");
  EXPECT_EQ(check({make_bin(BinOp::kEq, x, make_int(80)),
                   make_bin(BinOp::kEq, x, make_int(23))}),
            SatResult::kUnsat);
  EXPECT_EQ(check({make_bin(BinOp::kEq, x, make_int(80)),
                   make_bin(BinOp::kEq, x, make_int(80))}),
            SatResult::kSat);
}

TEST(Solver, EqNeConflict) {
  const SymRef x = v("pkt.dport");
  EXPECT_EQ(check({make_bin(BinOp::kEq, x, make_int(80)),
                   make_bin(BinOp::kNe, x, make_int(80))}),
            SatResult::kUnsat);
  EXPECT_EQ(check({make_bin(BinOp::kEq, x, make_int(80)),
                   make_bin(BinOp::kNe, x, make_int(81))}),
            SatResult::kSat);
}

TEST(Solver, BoundsConflict) {
  const SymRef x = v("pkt.ip_ttl");
  EXPECT_EQ(check({make_bin(BinOp::kLt, x, make_int(5)),
                   make_bin(BinOp::kGt, x, make_int(10))}),
            SatResult::kUnsat);
  EXPECT_EQ(check({make_bin(BinOp::kGe, x, make_int(5)),
                   make_bin(BinOp::kLe, x, make_int(5))}),
            SatResult::kSat);
  EXPECT_EQ(check({make_bin(BinOp::kGt, x, make_int(5)),
                   make_bin(BinOp::kLe, x, make_int(5))}),
            SatResult::kUnsat);
}

TEST(Solver, BoundsPlusEquality) {
  const SymRef x = v("pkt.len");
  EXPECT_EQ(check({make_bin(BinOp::kEq, x, make_int(100)),
                   make_bin(BinOp::kGt, x, make_int(512))}),
            SatResult::kUnsat);
  EXPECT_EQ(check({make_bin(BinOp::kEq, x, make_int(600)),
                   make_bin(BinOp::kGt, x, make_int(512))}),
            SatResult::kSat);
}

TEST(Solver, SmallRangeExhaustedByDisequalities) {
  const SymRef x = v("pkt.ip_tos");
  std::vector<SymRef> cs = {make_bin(BinOp::kGe, x, make_int(0)),
                            make_bin(BinOp::kLe, x, make_int(2)),
                            make_bin(BinOp::kNe, x, make_int(0)),
                            make_bin(BinOp::kNe, x, make_int(1)),
                            make_bin(BinOp::kNe, x, make_int(2))};
  EXPECT_EQ(check(cs), SatResult::kUnsat);
  cs.pop_back();
  EXPECT_EQ(check(cs), SatResult::kSat);
}

TEST(Solver, TermEqualityPropagates) {
  const SymRef x = v("a");
  const SymRef y = v("b");
  const SymRef z = v("c");
  // a == b, b == c, a == 1, c == 2 -> conflict via union-find merge.
  EXPECT_EQ(check({make_bin(BinOp::kEq, x, y), make_bin(BinOp::kEq, y, z),
                   make_bin(BinOp::kEq, x, make_int(1)),
                   make_bin(BinOp::kEq, z, make_int(2))}),
            SatResult::kUnsat);
}

TEST(Solver, TermDisequalityAfterMerge) {
  const SymRef x = v("a");
  const SymRef y = v("b");
  EXPECT_EQ(check({make_bin(BinOp::kEq, x, y), make_bin(BinOp::kNe, x, y)}),
            SatResult::kUnsat);
  EXPECT_EQ(check({make_bin(BinOp::kNe, x, y)}), SatResult::kSat);
}

TEST(Solver, LinearOffsetsNormalize) {
  const SymRef x = v("cur_port");
  // x + 1 == 5 and x == 4 are consistent; x + 1 == 5 and x == 9 are not.
  const SymRef xp1 = make_bin(BinOp::kAdd, x, make_int(1));
  EXPECT_EQ(check({make_bin(BinOp::kEq, xp1, make_int(5)),
                   make_bin(BinOp::kEq, x, make_int(4))}),
            SatResult::kSat);
  EXPECT_EQ(check({make_bin(BinOp::kEq, xp1, make_int(5)),
                   make_bin(BinOp::kEq, x, make_int(9))}),
            SatResult::kUnsat);
}

TEST(Solver, TupleEqualityDecomposes) {
  const SymRef t1 = make_tuple({v("pkt.ip_src"), v("pkt.sport")});
  const SymRef t2 = make_tuple_const({10, 1234});
  EXPECT_EQ(check({make_bin(BinOp::kEq, t1, t2),
                   make_bin(BinOp::kEq, v("pkt.ip_src"), make_int(10))}),
            SatResult::kSat);
  EXPECT_EQ(check({make_bin(BinOp::kEq, t1, t2),
                   make_bin(BinOp::kEq, v("pkt.ip_src"), make_int(99))}),
            SatResult::kUnsat);
}

TEST(Solver, TupleArityMismatchUnsat) {
  const SymRef t1 = make_tuple({v("a"), v("b")});
  const SymRef t3 = make_tuple({v("a"), v("b"), v("c")});
  EXPECT_EQ(check({make_bin(BinOp::kEq, t1, t3)}), SatResult::kUnsat);
}

TEST(Solver, BooleanAtomPolarityConflict) {
  const SymRef c = make_contains(make_map_base("nat"),
                                 make_tuple({v("pkt.ip_src"), v("pkt.sport")}));
  EXPECT_EQ(check({c, negate(c)}), SatResult::kUnsat);
  EXPECT_EQ(check({c, c}), SatResult::kSat);
  EXPECT_EQ(check({negate(c), negate(c)}), SatResult::kSat);
}

TEST(Solver, UninterpretedCallPolarity) {
  const SymRef p = make_call("payload_contains",
                             {v("pkt.__payload"), make_str("attack")});
  EXPECT_EQ(check({p, negate(p)}), SatResult::kUnsat);
  EXPECT_EQ(check({p}), SatResult::kSat);
}

TEST(Solver, ConjunctionSplits) {
  const SymRef a = make_bin(BinOp::kEq, v("x"), make_int(1));
  const SymRef b = make_bin(BinOp::kEq, v("x"), make_int(2));
  // (a && b) alone is unsat (x can't be both).
  EXPECT_EQ(check({make_bin(BinOp::kAnd, a, b)}), SatResult::kUnsat);
}

TEST(Solver, DeMorganOnNegatedConjunction) {
  const SymRef proto = v("pkt.ip_proto");
  const SymRef dport = v("pkt.dport");
  const SymRef match = make_bin(
      BinOp::kAnd, make_bin(BinOp::kEq, proto, make_int(6)),
      make_bin(BinOp::kEq, dport, make_int(23)));
  // !(proto==6 && dport==23) with proto==6 and dport==23 pinned: UNSAT.
  EXPECT_EQ(check({negate(match), make_bin(BinOp::kEq, proto, make_int(6)),
                   make_bin(BinOp::kEq, dport, make_int(23))}),
            SatResult::kUnsat);
  // With dport==80 it's satisfiable.
  EXPECT_EQ(check({negate(match), make_bin(BinOp::kEq, proto, make_int(6)),
                   make_bin(BinOp::kEq, dport, make_int(80))}),
            SatResult::kSat);
}

TEST(Solver, DisjunctionCaseSplit) {
  const SymRef x = v("x");
  const SymRef either = make_bin(
      BinOp::kOr, make_bin(BinOp::kEq, x, make_int(1)),
      make_bin(BinOp::kEq, x, make_int(2)));
  EXPECT_EQ(check({either, make_bin(BinOp::kEq, x, make_int(2))}),
            SatResult::kSat);
  EXPECT_EQ(check({either, make_bin(BinOp::kEq, x, make_int(3))}),
            SatResult::kUnsat);
}

TEST(Solver, NegatedDisjunctionIsConjunction) {
  const SymRef x = v("x");
  const SymRef either = make_bin(
      BinOp::kOr, make_bin(BinOp::kEq, x, make_int(1)),
      make_bin(BinOp::kEq, x, make_int(2)));
  // !(x==1 || x==2) && x==1 -> UNSAT.
  EXPECT_EQ(check({negate(either), make_bin(BinOp::kEq, x, make_int(1))}),
            SatResult::kUnsat);
  EXPECT_EQ(check({negate(either), make_bin(BinOp::kEq, x, make_int(7))}),
            SatResult::kSat);
}

TEST(Solver, NestedSplitsAcrossMultipleRules) {
  // Three negated rule-matches plus pins, as the IDS pass-path generates.
  const SymRef proto = v("pkt.ip_proto");
  const SymRef dport = v("pkt.dport");
  auto rule = [&](Int p, Int d) {
    return make_bin(BinOp::kAnd, make_bin(BinOp::kEq, proto, make_int(p)),
                    make_bin(BinOp::kEq, dport, make_int(d)));
  };
  std::vector<SymRef> cs = {negate(rule(6, 23)), negate(rule(6, 8080)),
                            negate(rule(17, 69)),
                            make_bin(BinOp::kEq, proto, make_int(6)),
                            make_bin(BinOp::kEq, dport, make_int(80))};
  EXPECT_EQ(check(cs), SatResult::kSat);
  cs.back() = make_bin(BinOp::kEq, dport, make_int(8080));
  EXPECT_EQ(check(cs), SatResult::kUnsat);
}

TEST(Solver, TwoTermOrderingConflicts) {
  const SymRef x = v("x");
  const SymRef y = v("y");
  // x >= y && x < y -> UNSAT.
  EXPECT_EQ(check({make_bin(BinOp::kGe, x, y), make_bin(BinOp::kLt, x, y)}),
            SatResult::kUnsat);
  // x < y && y < x -> UNSAT (direction canonicalization).
  EXPECT_EQ(check({make_bin(BinOp::kLt, x, y), make_bin(BinOp::kLt, y, x)}),
            SatResult::kUnsat);
  // x <= y && x >= y && x != y -> UNSAT.
  EXPECT_EQ(check({make_bin(BinOp::kLe, x, y), make_bin(BinOp::kGe, x, y),
                   make_bin(BinOp::kNe, x, y)}),
            SatResult::kUnsat);
  // x < y && x != y -> SAT.
  EXPECT_EQ(check({make_bin(BinOp::kLt, x, y), make_bin(BinOp::kNe, x, y)}),
            SatResult::kSat);
  // x == y && x < y -> UNSAT.
  EXPECT_EQ(check({make_bin(BinOp::kEq, x, y), make_bin(BinOp::kLt, x, y)}),
            SatResult::kUnsat);
}

TEST(Solver, SameTermOffsetRelations) {
  const SymRef x = v("x");
  const SymRef xp1 = make_bin(BinOp::kAdd, x, make_int(1));
  EXPECT_EQ(check({make_bin(BinOp::kGt, xp1, x)}), SatResult::kSat);
  EXPECT_EQ(check({make_bin(BinOp::kLt, xp1, x)}), SatResult::kUnsat);
  EXPECT_EQ(check({make_bin(BinOp::kEq, xp1, x)}), SatResult::kUnsat);
}

TEST(Solver, OpaqueTermOrderingViaLinearization) {
  // MapGet-based terms (the monitor rate-limiter's condition shapes).
  const SymRef g = make_map_get(make_map_base("cnt"),
                                make_tuple({v("pkt.ip_src")}));
  const SymRef limit = make_var("LIMIT", VarClass::kCfg);
  EXPECT_EQ(check({make_bin(BinOp::kGe, g, limit),
                   make_bin(BinOp::kLt, g, limit)}),
            SatResult::kUnsat);
  const SymRef nb = make_bin(BinOp::kAdd, g, v("pkt.len"));
  EXPECT_EQ(check({make_bin(BinOp::kGt, nb, limit),
                   make_bin(BinOp::kLe, nb, limit)}),
            SatResult::kUnsat);
}

TEST(Solver, PacketFieldWidthBounds) {
  // Header fields carry intrinsic width bounds.
  EXPECT_EQ(check({make_bin(BinOp::kGt, v("pkt.dport"), make_int(70000))}),
            SatResult::kUnsat);
  EXPECT_EQ(check({make_bin(BinOp::kGt, v("pkt.dport"), make_int(60000))}),
            SatResult::kSat);
  EXPECT_EQ(check({make_bin(BinOp::kLt, v("pkt.ip_ttl"), make_int(0))}),
            SatResult::kUnsat);
  EXPECT_EQ(check({make_bin(BinOp::kEq, v("pkt.tcp_flags"), make_int(300))}),
            SatResult::kUnsat);
  // Multi-packet prefixes get the same bounds.
  EXPECT_EQ(check({make_bin(BinOp::kGt,
                            make_var("pkt2.dport", VarClass::kPkt),
                            make_int(70000))}),
            SatResult::kUnsat);
  // Non-packet symbols are unbounded.
  EXPECT_EQ(check({make_bin(BinOp::kGt, make_var("cur_port", VarClass::kState),
                            make_int(70000))}),
            SatResult::kSat);
}

TEST(Solver, ModuloResultBounds) {
  const SymRef m4 = make_bin(BinOp::kMod, v("x"), make_int(4));
  EXPECT_EQ(check({make_bin(BinOp::kEq, m4, make_int(5))}), SatResult::kUnsat);
  EXPECT_EQ(check({make_bin(BinOp::kEq, m4, make_int(3))}), SatResult::kSat);
  EXPECT_EQ(check({make_bin(BinOp::kGt, m4, make_int(3))}), SatResult::kUnsat);
  EXPECT_EQ(check({make_bin(BinOp::kLt, m4, make_int(0))}), SatResult::kUnsat);
}

TEST(Solver, MaskResultBounds) {
  const SymRef masked = make_bin(BinOp::kBitAnd, v("pkt.tcp_flags"), make_int(2));
  EXPECT_EQ(check({make_bin(BinOp::kEq, masked, make_int(4))}),
            SatResult::kUnsat);
  EXPECT_EQ(check({make_bin(BinOp::kEq, masked, make_int(2))}),
            SatResult::kSat);
  EXPECT_EQ(check({make_bin(BinOp::kGt, masked, make_int(2))}),
            SatResult::kUnsat);
}

TEST(Solver, QueryCountIncrements) {
  Solver s;
  s.check({make_bool(true)});
  s.check({make_bool(true)});
  EXPECT_EQ(s.query_count(), 2u);
}

TEST(Solver, SoundnessNeverUnsatOnSatisfiable) {
  // A grab-bag of satisfiable constraint sets the solver must not refute.
  const SymRef x = v("x");
  const SymRef y = v("y");
  EXPECT_EQ(check({make_bin(BinOp::kLt, x, y)}), SatResult::kSat);
  EXPECT_EQ(check({make_bin(BinOp::kEq, make_bin(BinOp::kMul, x, y),
                            make_int(6))}),
            SatResult::kSat);
  EXPECT_EQ(check({make_bin(BinOp::kEq,
                            make_call("hash", {x}), make_int(7))}),
            SatResult::kSat);
}

}  // namespace
}  // namespace nfactor::symex
