// Multi-packet symbolic exploration: state threaded across a K-packet
// sequence of symbolic packets.
#include "verify/multi_packet.h"

#include <gtest/gtest.h>

#include "nfactor/pipeline.h"
#include "nfs/corpus.h"

namespace nfactor::verify {
namespace {

pipeline::PipelineResult run_nf(const char* name) {
  return pipeline::run_source(nfs::find(name).source, name);
}

bool mentions_prefix(const symex::SymRef& e, const std::string& prefix) {
  std::map<std::string, symex::VarClass> vars;
  symex::collect_vars(e, vars);
  for (const auto& [name, cls] : vars) {
    (void)cls;
    if (name.starts_with(prefix)) return true;
  }
  return false;
}

TEST(MultiPacket, SequenceCountGrowsWithRounds) {
  const auto r = run_nf("firewall");
  SequenceOptions one;
  one.packets = 1;
  const auto s1 = explore_sequences(*r.module, r.cats, one);
  SequenceOptions two;
  two.packets = 2;
  const auto s2 = explore_sequences(*r.module, r.cats, two);
  EXPECT_GT(s1.size(), 0u);
  EXPECT_GT(s2.size(), s1.size());
  for (const auto& sp : s2) EXPECT_EQ(sp.rounds.size(), 2u);
}

TEST(MultiPacket, FirewallReverseDeliveryRequiresPriorOutbound) {
  const auto r = run_nf("firewall");
  SequenceOptions opts;
  opts.packets = 2;
  const auto seqs = explore_sequences(*r.module, r.cats, opts);

  // There must exist a sequence where round 2 forwards via the
  // established-connection entry — detectable because its round-2
  // constraints relate pkt2's header to round 1's state insertion,
  // i.e. they mention *both* packets' symbols.
  bool cross_packet_delivery = false;
  for (const auto& sp : seqs) {
    if (!sp.round_forwards(0) || !sp.round_forwards(1)) continue;
    for (const auto& c : sp.rounds[1].constraints) {
      if (mentions_prefix(c, "pkt1.") && mentions_prefix(c, "pkt2.")) {
        cross_packet_delivery = true;
      }
    }
  }
  EXPECT_TRUE(cross_packet_delivery);
}

TEST(MultiPacket, StateThreadsThroughRounds) {
  const auto r = run_nf("nat");
  SequenceOptions opts;
  opts.packets = 2;
  const auto seqs = explore_sequences(*r.module, r.cats, opts);
  // Some round-2 final state must contain a two-store chain (round 1
  // inserted one mapping, round 2 another) on nat_out.
  bool chained = false;
  for (const auto& sp : seqs) {
    const auto it = sp.rounds[1].final_state.find("nat_out");
    if (it == sp.rounds[1].final_state.end()) continue;
    const auto& v = it->second;
    if (v->kind == symex::SymKind::kMapStore &&
        v->operands[0]->kind == symex::SymKind::kMapStore) {
      chained = true;
    }
  }
  EXPECT_TRUE(chained);
}

TEST(MultiPacket, InfeasibleCrossPacketSequencesPruned) {
  // The monitor admits at most LIMIT packets per flow. With the pipeline
  // state threaded, a 2-packet same-flow sequence where round 1 exceeds
  // the (symbolic) limit and round 2 still forwards must not exist when
  // the constraints pin the counters contradictorily. Sanity: every
  // produced sequence's combined constraint set is solver-consistent.
  const auto r = run_nf("monitor");
  SequenceOptions opts;
  opts.packets = 2;
  const auto seqs = explore_sequences(*r.module, r.cats, opts);
  ASSERT_FALSE(seqs.empty());
  symex::Solver solver;
  for (const auto& sp : seqs) {
    EXPECT_EQ(solver.check(sp.constraints()), symex::SatResult::kSat);
  }
}

TEST(MultiPacket, PerRoundPacketSymbolsAreDistinct) {
  const auto r = run_nf("lb");
  SequenceOptions opts;
  opts.packets = 2;
  const auto seqs = explore_sequences(*r.module, r.cats, opts);
  for (const auto& sp : seqs) {
    for (const auto& c : sp.rounds[0].constraints) {
      EXPECT_FALSE(mentions_prefix(c, "pkt2."));
    }
  }
}

TEST(MultiPacket, TotalSendsAccumulates) {
  const auto r = run_nf("dpi");
  SequenceOptions opts;
  opts.packets = 2;
  const auto seqs = explore_sequences(*r.module, r.cats, opts);
  std::size_t max_sends = 0;
  for (const auto& sp : seqs) max_sends = std::max(max_sends, sp.total_sends());
  // Two matched packets: 2 sends each (mirror + forward).
  EXPECT_EQ(max_sends, 4u);
}

TEST(MultiPacket, SequenceCapRespected) {
  const auto r = run_nf("lb");
  SequenceOptions opts;
  opts.packets = 3;
  opts.max_sequences = 10;
  const auto seqs = explore_sequences(*r.module, r.cats, opts);
  EXPECT_LE(seqs.size(), 10u);
}

}  // namespace
}  // namespace nfactor::verify
