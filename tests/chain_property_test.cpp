// Property tests for the PGA-style composition advisor (verify/chain.h)
// on randomized I/O spaces:
//   1. has_cycle is sound and complete: it is set iff NO permutation of
//      the inputs satisfies every matcher-before-rewriter constraint
//      (checked by brute force over all permutations, n <= 6).
//   2. When acyclic, the advised order satisfies every constraint and is
//      a permutation of the inputs; ties keep the input order (with no
//      constraints at all the order IS the input order, and any two
//      mutually unconstrained names keep their relative input order
//      whenever no constraint chain forces otherwise).
//   3. The constraint list is exactly the matcher-before-rewriter pairs:
//      one constraint per ordered pair (a, b) where some field a matches
//      is rewritten by b, labelled with the first such field in set
//      order, and nothing else.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <map>
#include <numeric>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "model/model.h"
#include "symex/expr.h"
#include "verify/chain.h"

namespace nfactor::verify {
namespace {

// Deterministic 64-bit LCG (same recurrence the fuzzer uses) so every
// run explores the same random I/O spaces.
class Rng {
 public:
  explicit Rng(std::uint64_t seed) : s_(seed ? seed : 1) {}
  std::uint64_t next() {
    s_ = s_ * 6364136223846793005ULL + 1442695040888963407ULL;
    return s_ >> 17;
  }
  std::size_t below(std::size_t n) { return n ? next() % n : 0; }
  bool chance(int pct) { return static_cast<int>(below(100)) < pct; }

 private:
  std::uint64_t s_;
};

const std::vector<std::string>& field_pool() {
  static const std::vector<std::string> fields = {
      "ip_src", "ip_dst", "sport", "dport", "tcp_flags"};
  return fields;
}

/// Build a synthetic model whose io_space() is exactly (matched,
/// rewritten): pkt_fields_read carries the matched fields, one
/// forwarding entry rewrites the rewritten fields.
model::Model synthetic_model(const std::set<std::string>& matched,
                             const std::set<std::string>& rewritten) {
  model::Model m;
  m.nf_name = "synthetic";
  for (const auto& f : matched) m.pkt_fields_read.insert("pkt." + f);
  model::ModelEntry e;
  model::SendAction send;
  send.port = symex::make_int(1);
  for (const auto& f : rewritten) send.rewrites[f] = symex::make_int(0);
  e.flow_action.push_back(std::move(send));
  m.entries.push_back(std::move(e));
  return m;
}

struct RandomNfs {
  std::vector<std::string> names;
  std::vector<model::Model> models;  // stable storage
  std::vector<std::pair<std::string, const model::Model*>> input;
  std::vector<IoSpace> spaces;
};

RandomNfs random_nfs(Rng& rng, std::size_t n) {
  RandomNfs r;
  for (std::size_t i = 0; i < n; ++i) {
    std::set<std::string> matched;
    std::set<std::string> rewritten;
    for (const auto& f : field_pool()) {
      if (rng.chance(35)) matched.insert(f);
      if (rng.chance(25)) rewritten.insert(f);
    }
    r.names.push_back("nf" + std::to_string(i));
    r.models.push_back(synthetic_model(matched, rewritten));
  }
  for (std::size_t i = 0; i < n; ++i) {
    r.input.emplace_back(r.names[i], &r.models[i]);
    r.spaces.push_back(io_space(r.models[i]));
  }
  return r;
}

/// The reference constraint relation: (a, b, first conflicting field in
/// set order) for every ordered pair where a matches a field b rewrites.
std::vector<OrderConstraint> reference_constraints(const RandomNfs& nfs) {
  std::vector<OrderConstraint> out;
  const std::size_t n = nfs.input.size();
  for (std::size_t a = 0; a < n; ++a) {
    for (std::size_t b = 0; b < n; ++b) {
      if (a == b) continue;
      for (const auto& field : nfs.spaces[a].fields_matched) {
        if (nfs.spaces[b].fields_rewritten.count(field)) {
          out.push_back({nfs.names[a], nfs.names[b], field});
          break;
        }
      }
    }
  }
  return out;
}

bool order_satisfies(const std::vector<std::string>& order,
                     const std::vector<OrderConstraint>& constraints) {
  std::map<std::string, std::size_t> pos;
  for (std::size_t i = 0; i < order.size(); ++i) pos[order[i]] = i;
  return std::all_of(constraints.begin(), constraints.end(),
                     [&](const OrderConstraint& c) {
                       return pos.at(c.before) < pos.at(c.after);
                     });
}

/// Brute force: does ANY permutation satisfy all constraints?
bool some_order_exists(const std::vector<std::string>& names,
                       const std::vector<OrderConstraint>& constraints) {
  std::vector<std::size_t> idx(names.size());
  std::iota(idx.begin(), idx.end(), 0);
  do {
    std::vector<std::string> order;
    order.reserve(names.size());
    for (const std::size_t i : idx) order.push_back(names[i]);
    if (order_satisfies(order, constraints)) return true;
  } while (std::next_permutation(idx.begin(), idx.end()));
  return false;
}

std::multiset<std::string> triple_set(
    const std::vector<OrderConstraint>& constraints) {
  std::multiset<std::string> out;
  for (const auto& c : constraints) {
    out.insert(c.before + "<" + c.after + ":" + c.field);
  }
  return out;
}

// ---------------------------------------------------------------------------

TEST(ChainProperty, CycleDetectionSoundAndComplete) {
  Rng rng(0xC0FFEE);
  for (int trial = 0; trial < 300; ++trial) {
    SCOPED_TRACE("trial " + std::to_string(trial));
    const std::size_t n = 2 + rng.below(5);  // 2..6: permutations feasible
    const RandomNfs nfs = random_nfs(rng, n);
    const OrderAdvice advice = advise_order(nfs.input);
    const auto expected = reference_constraints(nfs);

    // has_cycle <=> no conflict-free order exists at all.
    EXPECT_EQ(advice.has_cycle, !some_order_exists(nfs.names, expected));

    // The advised order is always a permutation of the inputs.
    ASSERT_EQ(advice.order.size(), n);
    EXPECT_EQ(std::multiset<std::string>(advice.order.begin(),
                                         advice.order.end()),
              std::multiset<std::string>(nfs.names.begin(), nfs.names.end()));

    // When acyclic, the advised order satisfies every constraint.
    if (!advice.has_cycle) {
      EXPECT_TRUE(order_satisfies(advice.order, expected));
    }
  }
}

TEST(ChainProperty, ConstraintsAreExactlyMatcherBeforeRewriterPairs) {
  Rng rng(0xBADF00D);
  for (int trial = 0; trial < 300; ++trial) {
    SCOPED_TRACE("trial " + std::to_string(trial));
    const RandomNfs nfs = random_nfs(rng, 2 + rng.below(6));
    const OrderAdvice advice = advise_order(nfs.input);
    // Same pairs, same conflicting-field labels, one per ordered pair —
    // nothing missing, nothing invented.
    EXPECT_EQ(triple_set(advice.constraints),
              triple_set(reference_constraints(nfs)));
  }
}

TEST(ChainProperty, NoConstraintsPreservesInputOrderExactly) {
  Rng rng(0x5EED);
  for (int trial = 0; trial < 100; ++trial) {
    SCOPED_TRACE("trial " + std::to_string(trial));
    const std::size_t n = 2 + rng.below(5);
    // Rewriters touch nothing anyone matches: matched from a disjoint
    // field per node, no rewrites at all.
    RandomNfs nfs;
    for (std::size_t i = 0; i < n; ++i) {
      nfs.names.push_back("nf" + std::to_string(i));
      nfs.models.push_back(synthetic_model(
          {field_pool()[rng.below(field_pool().size())]}, {}));
    }
    for (std::size_t i = 0; i < n; ++i) {
      nfs.input.emplace_back(nfs.names[i], &nfs.models[i]);
      nfs.spaces.push_back(io_space(nfs.models[i]));
    }
    const OrderAdvice advice = advise_order(nfs.input);
    EXPECT_FALSE(advice.has_cycle);
    EXPECT_TRUE(advice.constraints.empty());
    EXPECT_EQ(advice.order, nfs.names);  // ties keep input order
  }
}

TEST(ChainProperty, TiesKeepRelativeInputOrderUnderConstraints) {
  // fw matches ip_src; nat rewrites ip_src -> fw before nat is forced.
  // mon matches nothing anyone rewrites and rewrites nothing: wherever
  // it lands, unconstrained names keep their relative input order.
  std::vector<model::Model> models;
  models.push_back(synthetic_model({"ip_src"}, {}));        // fw
  models.push_back(synthetic_model({}, {}));                // mon_a
  models.push_back(synthetic_model({"dport"}, {"ip_src"})); // nat
  models.push_back(synthetic_model({}, {}));                // mon_b
  const std::vector<std::pair<std::string, const model::Model*>> input = {
      {"fw", &models[0]},
      {"mon_a", &models[1]},
      {"nat", &models[2]},
      {"mon_b", &models[3]},
  };
  const OrderAdvice advice = advise_order(input);
  EXPECT_FALSE(advice.has_cycle);
  ASSERT_EQ(advice.constraints.size(), 1u);
  EXPECT_EQ(advice.constraints[0].before, "fw");
  EXPECT_EQ(advice.constraints[0].after, "nat");
  EXPECT_EQ(advice.constraints[0].field, "pkt.ip_src");
  // Stable Kahn's: everything placeable in the first sweep keeps input
  // order; nat joins as soon as fw is placed.
  EXPECT_EQ(advice.order,
            (std::vector<std::string>{"fw", "mon_a", "nat", "mon_b"}));
}

TEST(ChainProperty, MutualConflictIsACycle) {
  // a matches f and rewrites g; b matches g and rewrites f: each must
  // precede the other -> no conflict-free order.
  std::vector<model::Model> models;
  models.push_back(synthetic_model({"ip_src"}, {"dport"}));
  models.push_back(synthetic_model({"dport"}, {"ip_src"}));
  const OrderAdvice advice = advise_order(
      {{"a", &models[0]}, {"b", &models[1]}});
  EXPECT_TRUE(advice.has_cycle);
  EXPECT_EQ(advice.constraints.size(), 2u);
  // Even with a cycle every input is still reported exactly once.
  EXPECT_EQ(advice.order.size(), 2u);
}

}  // namespace
}  // namespace nfactor::verify
