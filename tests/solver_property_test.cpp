// Randomized soundness property for the path-constraint solver: build
// constraint sets that are true under a known random assignment — the
// solver must never refute them (kUnsat only on real conflicts is the
// invariant the executor's pruning correctness rests on). Plus
// constructive UNSAT families it must always refute.
#include <gtest/gtest.h>

#include <random>

#include "symex/solver.h"

namespace nfactor::symex {
namespace {

using lang::BinOp;

class SolverSoundness : public ::testing::TestWithParam<int> {};

TEST_P(SolverSoundness, NeverRefutesSatisfiableSets) {
  std::mt19937_64 rng(static_cast<std::uint64_t>(GetParam()) * 2654435761u);
  Solver solver;

  for (int trial = 0; trial < 40; ++trial) {
    // A random concrete assignment over a handful of variables.
    constexpr int kVars = 5;
    Int value[kVars];
    SymRef var[kVars];
    for (int i = 0; i < kVars; ++i) {
      value[i] = static_cast<Int>(rng() % 200) - 100;
      var[i] = make_var("v" + std::to_string(i), VarClass::kPkt);
    }

    // Generate atoms that hold under the assignment.
    std::vector<SymRef> cs;
    const int n_atoms = 3 + static_cast<int>(rng() % 10);
    for (int a = 0; a < n_atoms; ++a) {
      const int i = static_cast<int>(rng() % kVars);
      const int j = static_cast<int>(rng() % kVars);
      switch (rng() % 6) {
        case 0:
          cs.push_back(make_bin(BinOp::kEq, var[i], make_int(value[i])));
          break;
        case 1:
          cs.push_back(make_bin(BinOp::kNe, var[i],
                                make_int(value[i] + 1 + static_cast<Int>(rng() % 5))));
          break;
        case 2:
          cs.push_back(make_bin(BinOp::kLe, var[i], make_int(value[i] +
                                static_cast<Int>(rng() % 10))));
          break;
        case 3:
          cs.push_back(make_bin(BinOp::kGe, var[i], make_int(value[i] -
                                static_cast<Int>(rng() % 10))));
          break;
        case 4: {
          // var-var relation consistent with the assignment.
          if (value[i] < value[j]) {
            cs.push_back(make_bin(BinOp::kLt, var[i], var[j]));
          } else if (value[i] > value[j]) {
            cs.push_back(make_bin(BinOp::kGt, var[i], var[j]));
          } else {
            cs.push_back(make_bin(BinOp::kEq, var[i], var[j]));
          }
          break;
        }
        default: {
          // tuple equality consistent with the assignment.
          cs.push_back(make_bin(
              BinOp::kEq, make_tuple({var[i], var[j]}),
              make_tuple_const({value[i], value[j]})));
          break;
        }
      }
    }
    EXPECT_EQ(solver.check(cs), SatResult::kSat) << "trial " << trial;
  }
}

TEST_P(SolverSoundness, AlwaysRefutesConstructedContradictions) {
  std::mt19937_64 rng(static_cast<std::uint64_t>(GetParam()) * 97531u + 3);
  Solver solver;

  for (int trial = 0; trial < 40; ++trial) {
    const SymRef x = make_var("x" + std::to_string(trial), VarClass::kPkt);
    std::vector<SymRef> cs;
    const Int v = static_cast<Int>(rng() % 1000);

    switch (rng() % 4) {
      case 0:
        // x == v and x == v+k.
        cs.push_back(make_bin(BinOp::kEq, x, make_int(v)));
        cs.push_back(make_bin(BinOp::kEq, x, make_int(v + 1 +
                              static_cast<Int>(rng() % 9))));
        break;
      case 1:
        // Chain of equalities ending in contradictory constants.
        {
          const SymRef y = make_var("y" + std::to_string(trial), VarClass::kPkt);
          const SymRef z = make_var("z" + std::to_string(trial), VarClass::kPkt);
          cs.push_back(make_bin(BinOp::kEq, x, y));
          cs.push_back(make_bin(BinOp::kEq, y, z));
          cs.push_back(make_bin(BinOp::kEq, x, make_int(v)));
          cs.push_back(make_bin(BinOp::kNe, z, make_int(v)));
        }
        break;
      case 2:
        // Empty interval.
        cs.push_back(make_bin(BinOp::kGt, x, make_int(v + 10)));
        cs.push_back(make_bin(BinOp::kLt, x, make_int(v)));
        break;
      default:
        // Contradictory pair relation through negated conjunction.
        {
          const SymRef y = make_var("y" + std::to_string(trial), VarClass::kPkt);
          const SymRef both = make_bin(
              BinOp::kAnd, make_bin(BinOp::kLe, x, y),
              make_bin(BinOp::kGe, x, y));
          cs.push_back(both);
          cs.push_back(make_bin(BinOp::kNe, x, y));
        }
        break;
    }
    EXPECT_EQ(solver.check(cs), SatResult::kUnsat) << "trial " << trial;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SolverSoundness, ::testing::Range(1, 9));

}  // namespace
}  // namespace nfactor::symex
