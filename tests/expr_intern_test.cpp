// Hash-consing interner (src/symex/intern.*): structurally equal
// expressions must be pointer-identical, fingerprints must refine key
// equality (equal keys => equal fingerprints), struct_eq must agree with
// string-key equality on randomized DAGs, concurrent builders must agree
// on one canonical node per structure (the TSan target for the sharded
// table), and the collect_vars/substitute memoization must keep deeply
// shared map-store DAGs linear — the pre-memoization recursion walks
// every path through the DAG and would not finish within the age of the
// universe on the chains below.
#include <gtest/gtest.h>

#include <map>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include "symex/expr.h"
#include "symex/intern.h"

namespace nfactor::symex {
namespace {

using lang::BinOp;

TEST(Intern, StructurallyEqualBuildsSharePointer) {
  if (!intern_enabled()) GTEST_SKIP() << "NFACTOR_SYMEX_INTERN=0";
  const SymRef a =
      make_bin(BinOp::kEq, make_var("pkt.dport", VarClass::kPkt), make_int(80));
  const SymRef b =
      make_bin(BinOp::kEq, make_var("pkt.dport", VarClass::kPkt), make_int(80));
  EXPECT_EQ(a.get(), b.get());
  EXPECT_TRUE(struct_eq(a, b));
  EXPECT_EQ(a->fp, b->fp);

  // A differing leaf anywhere breaks the sharing.
  const SymRef c =
      make_bin(BinOp::kEq, make_var("pkt.dport", VarClass::kPkt), make_int(81));
  EXPECT_NE(a.get(), c.get());
  EXPECT_FALSE(struct_eq(a, c));

  // var_class is part of interned identity even though key() does not
  // render it: same-named variables of different classes never collapse.
  const SymRef as_cfg = make_var("pkt.dport", VarClass::kCfg);
  const SymRef as_pkt = make_var("pkt.dport", VarClass::kPkt);
  EXPECT_NE(as_cfg.get(), as_pkt.get());
  EXPECT_NE(as_cfg->fp, as_pkt->fp);
}

TEST(Intern, BuilderStatsCountHitsAndNodes) {
  const InternStats before = intern_stats();
  const SymRef fresh = make_call("intern_stats_probe", {make_int(123454321)});
  const SymRef again = make_call("intern_stats_probe", {make_int(123454321)});
  (void)fresh;
  (void)again;
  const InternStats after = intern_stats();
  EXPECT_GT(after.nodes, before.nodes);
  EXPECT_GT(after.bytes, before.bytes);
  if (intern_enabled()) {
    EXPECT_GT(after.hits, before.hits);  // `again` hit `fresh`'s node
    EXPECT_GE(after.live, 1u);
    EXPECT_GE(after.buckets, 1u);
  }
  EXPECT_FALSE(intern_summary().empty());
}

/// Random expression over a small pool of variables (one fixed class per
/// name — key() does not render the class, so mixed classes would make
/// key equality coarser than structural identity by design).
SymRef random_expr(std::mt19937_64& rng, int depth) {
  switch (depth <= 0 ? rng() % 3 : rng() % 7) {
    case 0:
      return make_int(static_cast<Int>(rng() % 16));
    case 1:
      return make_var("v" + std::to_string(rng() % 5), VarClass::kPkt);
    case 2:
      return make_var("s" + std::to_string(rng() % 3), VarClass::kState);
    case 3:
      return make_un(lang::UnOp::kNeg, random_expr(rng, depth - 1));
    case 4: {
      static const BinOp ops[] = {BinOp::kAdd, BinOp::kSub, BinOp::kMul,
                                  BinOp::kBitAnd, BinOp::kEq, BinOp::kLt};
      return make_bin(ops[rng() % 6], random_expr(rng, depth - 1),
                      random_expr(rng, depth - 1));
    }
    case 5:
      return make_contains(make_map_base("m" + std::to_string(rng() % 2)),
                           random_expr(rng, depth - 1));
    default:
      return make_map_get(make_map_base("m" + std::to_string(rng() % 2)),
                          random_expr(rng, depth - 1));
  }
}

TEST(Intern, StructEqAgreesWithKeyEqualityOnRandomizedDag) {
  std::mt19937_64 rng(0x1337);
  std::map<std::string, SymRef> by_key;
  std::map<std::uint64_t, std::string> fp_to_key;
  int built = 0;
  while (built < 10000) {
    const SymRef e = random_expr(rng, 4);
    ++built;

    // Equal keys <=> struct_eq <=> (interned) pointer identity.
    const auto [it, first_sight] = by_key.emplace(e->key(), e);
    if (!first_sight) {
      EXPECT_TRUE(struct_eq(e, it->second)) << e->key();
      EXPECT_EQ(e->fp, it->second->fp) << e->key();
      if (intern_enabled()) EXPECT_EQ(e.get(), it->second.get()) << e->key();
    } else {
      // fingerprint != => key !=, contrapositive bookkeeping: a
      // fingerprint maps to exactly one key.
      const auto [fit, fresh_fp] = fp_to_key.emplace(e->fp, e->key());
      EXPECT_TRUE(fresh_fp) << "fp collision between distinct structures: "
                            << fit->second << " vs " << e->key();
    }
  }
  // Distinct keys must never share a struct_eq verdict: spot-check pairs.
  std::vector<SymRef> pool;
  for (const auto& [k, v] : by_key) {
    (void)k;
    pool.push_back(v);
    if (pool.size() >= 200) break;
  }
  for (std::size_t i = 0; i < pool.size(); ++i) {
    for (std::size_t j = i + 1; j < pool.size(); ++j) {
      EXPECT_FALSE(struct_eq(pool[i], pool[j]))
          << pool[i]->key() << " vs " << pool[j]->key();
    }
  }
}

TEST(Intern, ConcurrentBuildersAgreeOnCanonicalNodes) {
  // 4 threads build the identical expression sequence; with interning on
  // they must end up with pointer-identical results. Run under TSan this
  // is the data-race check for the sharded intern table and the lazy
  // key() publication (threads race to render the same keys).
  constexpr int kThreads = 4;
  constexpr int kExprs = 2000;
  std::vector<std::vector<SymRef>> built(kThreads);
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&built, t] {
      std::mt19937_64 rng(0xABCDEF);  // same seed: same structures
      built[static_cast<std::size_t>(t)].reserve(kExprs);
      for (int i = 0; i < kExprs; ++i) {
        const SymRef e = random_expr(rng, 4);
        (void)e->key();  // race the lazy key render on shared nodes
        built[static_cast<std::size_t>(t)].push_back(e);
      }
    });
  }
  for (auto& th : threads) th.join();

  for (int t = 1; t < kThreads; ++t) {
    for (int i = 0; i < kExprs; ++i) {
      const auto& a = built[0][static_cast<std::size_t>(i)];
      const auto& b = built[static_cast<std::size_t>(t)][static_cast<std::size_t>(i)];
      EXPECT_TRUE(struct_eq(a, b)) << "thread " << t << " expr " << i;
      EXPECT_EQ(a->key(), b->key());
      if (intern_enabled()) {
        ASSERT_EQ(a.get(), b.get()) << "thread " << t << " expr " << i;
      }
    }
  }
}

/// Deep map-store chain where every level re-references the previous
/// level twice (store key and stored value both contain the tail), so
/// the number of *paths* through the DAG doubles per level: 2^60 paths,
/// 181 unique nodes. Any walk without node-identity memoization times
/// out here; the memoized walks are instant.
SymRef deep_shared_chain(int depth) {
  SymRef m = make_map_base("flows");
  const SymRef k = make_var("pkt.ip_src", VarClass::kPkt);
  for (int i = 0; i < depth; ++i) {
    const SymRef tail_get = make_map_get(m, make_bin(BinOp::kAdd, k, make_int(i + 1)));
    m = make_map_store(m, tail_get, make_bin(BinOp::kAdd, tail_get, make_int(1)));
  }
  return m;
}

TEST(Intern, CollectVarsIsLinearOnSharedDags) {
  const SymRef chain = deep_shared_chain(60);
  std::map<std::string, VarClass> vars;
  collect_vars(chain, vars);  // pre-memoization: 2^60 recursive calls
  ASSERT_EQ(vars.size(), 1u);
  EXPECT_EQ(vars.begin()->first, "pkt.ip_src");
  EXPECT_EQ(vars.begin()->second, VarClass::kPkt);
}

TEST(Intern, SubstituteIsLinearOnSharedDags) {
  const SymRef chain = deep_shared_chain(60);
  const SymRef replacement = make_var("pkt2.ip_src", VarClass::kPkt);
  const SymRef rewritten =
      substitute(chain, {{"pkt.ip_src", replacement}});
  std::map<std::string, VarClass> vars;
  collect_vars(rewritten, vars);
  ASSERT_EQ(vars.size(), 1u);
  EXPECT_EQ(vars.begin()->first, "pkt2.ip_src");

  // Substituting a name the DAG does not mention returns the same node.
  const SymRef unchanged =
      substitute(chain, {{"pkt.absent", replacement}});
  EXPECT_EQ(unchanged.get(), chain.get());
}

}  // namespace
}  // namespace nfactor::symex
