// Unit tests for the SCCP lattice (analysis/const_prop): meet laws,
// abstract expression evaluation (folding must match the concrete
// runtime), branch feasibility, and field- vs whole-variable locations.
#include "analysis/const_prop.h"

#include <gtest/gtest.h>

#include "ir/ir.h"
#include "ir/lower.h"
#include "tests/test_util.h"

namespace nfactor {
namespace {

using analysis::ConstEnv;
using analysis::ConstProp;
using analysis::ConstVal;
using testutil::lowered;
using testutil::nf_body;

const ir::Instr* find_kind(const ir::Cfg& cfg, ir::InstrKind kind,
                           const std::string& var = "") {
  for (const int id : cfg.real_nodes()) {
    const auto& n = cfg.node(id);
    if (n.kind == kind && (var.empty() || n.var == var)) return &n;
  }
  return nullptr;
}

/// Abstractly evaluate the source expression `expr` under `env`
/// (missing locations read as Top, as in the analysis itself).
ConstVal eval_src(const std::string& expr, const ConstEnv& env = {},
                  const std::string& globals = "") {
  const auto m =
      lowered(nf_body("y = " + expr + ";\n    send(pkt, 0);", globals));
  const auto* n = find_kind(m.body, ir::InstrKind::kAssign, "y");
  EXPECT_NE(n, nullptr) << expr;
  return analysis::eval_const(*n->value, [&](const ir::Location& loc) {
    const auto it = env.find(loc);
    return it == env.end() ? ConstVal::top() : it->second;
  });
}

TEST(ConstValTest, MeetLatticeLaws) {
  const auto top = ConstVal::top();
  const auto bot = ConstVal::bottom();
  const auto c1 = ConstVal::of_int(1);
  const auto c2 = ConstVal::of_int(2);
  const auto bt = ConstVal::of_bool(true);
  const auto s = ConstVal::of_str("a");

  // Top is the identity, Bottom absorbs.
  EXPECT_EQ(meet(top, c1), c1);
  EXPECT_EQ(meet(c1, top), c1);
  EXPECT_EQ(meet(bot, c1), bot);
  EXPECT_EQ(meet(c1, bot), bot);
  EXPECT_EQ(meet(top, top), top);

  // Equal constants survive; conflicting values or kinds collapse.
  EXPECT_EQ(meet(c1, c1), c1);
  EXPECT_EQ(meet(c1, c2), bot);
  EXPECT_EQ(meet(c1, bt), bot);
  EXPECT_EQ(meet(s, c1), bot);
  EXPECT_EQ(meet(s, ConstVal::of_str("a")), s);

  // Commutativity on a few representative pairs.
  EXPECT_EQ(meet(c1, c2), meet(c2, c1));
  EXPECT_EQ(meet(top, bot), meet(bot, top));
}

TEST(ConstValTest, ToStringSmoke) {
  EXPECT_EQ(ConstVal::top().is_top(), true);
  EXPECT_FALSE(ConstVal::of_int(3).to_string().empty());
  EXPECT_FALSE(ConstVal::bottom().to_string().empty());
}

TEST(EvalConstTest, FoldsArithmeticLikeTheRuntime) {
  EXPECT_EQ(eval_src("6 * 7"), ConstVal::of_int(42));
  EXPECT_EQ(eval_src("10 - 3"), ConstVal::of_int(7));
  EXPECT_EQ(eval_src("10 / 3"), ConstVal::of_int(3));
  // Python-style modulo: the result takes the divisor's sign.
  EXPECT_EQ(eval_src("(0 - 7) % 3"), ConstVal::of_int(2));
}

TEST(EvalConstTest, DivisionByZeroIsNotFolded) {
  // The runtime raises on /0 and %0; folding would erase that path.
  EXPECT_EQ(eval_src("1 / 0"), ConstVal::bottom());
  EXPECT_EQ(eval_src("1 % 0"), ConstVal::bottom());
}

TEST(EvalConstTest, ComparisonsAndBooleans) {
  EXPECT_EQ(eval_src("3 < 5"), ConstVal::of_bool(true));
  EXPECT_EQ(eval_src("3 >= 5"), ConstVal::of_bool(false));
  EXPECT_EQ(eval_src("3 == 3"), ConstVal::of_bool(true));
  EXPECT_EQ(eval_src("\"a\" == \"a\""), ConstVal::of_bool(true));
  EXPECT_EQ(eval_src("\"a\" != \"b\""), ConstVal::of_bool(true));
  EXPECT_EQ(eval_src("!(1 < 2)"), ConstVal::of_bool(false));
}

TEST(EvalConstTest, ShortCircuitOnlyOffConstLeft) {
  // A Const-false left side decides `and` even when the right side
  // cannot be evaluated (it may fault at runtime — never reached).
  EXPECT_EQ(eval_src("(1 > 2) && (1 / 0 > 0)"), ConstVal::of_bool(false));
  EXPECT_EQ(eval_src("(1 < 2) || (1 / 0 > 0)"), ConstVal::of_bool(true));
  // A non-Const left side means no fold, even if the right is Const.
  ConstEnv env;
  env["a"] = ConstVal::bottom();
  EXPECT_EQ(eval_src("(a > 0) && (1 > 2)", env, "var a = 0;"),
            ConstVal::bottom());
}

TEST(EvalConstTest, LookupPropagatesLattice) {
  ConstEnv env;
  env["a"] = ConstVal::of_int(3);
  EXPECT_EQ(eval_src("a + 4", env, "var a = 0;"), ConstVal::of_int(7));
  // An unknown-yet operand keeps the result optimistic (Top)...
  EXPECT_EQ(eval_src("z + 1", {}, "var z = 0;"), ConstVal::top());
  // ...while an overdefined one pins it at Bottom.
  env["z"] = ConstVal::bottom();
  EXPECT_EQ(eval_src("z + 1", env, "var z = 0;"), ConstVal::bottom());
}

TEST(ConstPropTest, ConstBranchDecidesOneArm) {
  const auto m = lowered(nf_body(R"(x = 1;
    if (x > 0) {
      pkt.ip_ttl = 1;
    } else {
      pkt.ip_ttl = 2;
    }
    send(pkt, 0);)"));
  const ConstProp cp(m.body, {});

  const auto* br = find_kind(m.body, ir::InstrKind::kBranch);
  ASSERT_NE(br, nullptr);
  EXPECT_EQ(cp.branch_decision(br->id), ConstVal::of_bool(true));
  EXPECT_TRUE(cp.edge_executable(br->id, 0));
  EXPECT_FALSE(cp.edge_executable(br->id, 1));

  // The dead arm's store never becomes executable.
  for (const int id : m.body.real_nodes()) {
    const auto& n = m.body.node(id);
    if (n.kind == ir::InstrKind::kFieldStore) {
      const bool is_dead_arm =
          analysis::eval_const(*n.value, [](const ir::Location&) {
            return ConstVal::top();
          }) == ConstVal::of_int(2);
      EXPECT_EQ(cp.node_executable(id), !is_dead_arm);
    }
  }
}

TEST(ConstPropTest, SymbolicBranchKeepsBothArmsLive) {
  const auto m = lowered(nf_body(R"(if (pkt.len > 5) {
      pkt.ip_ttl = 1;
    } else {
      pkt.ip_ttl = 2;
    }
    send(pkt, 0);)"));
  const ConstProp cp(m.body, {});

  const auto* br = find_kind(m.body, ir::InstrKind::kBranch);
  ASSERT_NE(br, nullptr);
  // recv() smashes the packet to Bottom, so the condition is overdefined
  // and both edges stay executable.
  EXPECT_TRUE(cp.branch_decision(br->id).is_bottom());
  EXPECT_TRUE(cp.edge_executable(br->id, 0));
  EXPECT_TRUE(cp.edge_executable(br->id, 1));
  for (const int id : m.body.real_nodes()) {
    EXPECT_TRUE(cp.node_executable(id));
  }
}

TEST(ConstPropTest, MergeMeetsArmValues) {
  const auto agree = lowered(nf_body(R"(if (pkt.len > 5) {
      y = 1;
    } else {
      y = 1;
    }
    pkt.ip_ttl = y;
    send(pkt, 0);)"));
  const ConstProp cp1(agree.body, {});
  const auto* store1 = find_kind(agree.body, ir::InstrKind::kFieldStore);
  ASSERT_NE(store1, nullptr);
  EXPECT_EQ(cp1.value_in(store1->id, "y"), ConstVal::of_int(1));

  const auto differ = lowered(nf_body(R"(if (pkt.len > 5) {
      y = 1;
    } else {
      y = 2;
    }
    pkt.ip_ttl = y;
    send(pkt, 0);)"));
  const ConstProp cp2(differ.body, {});
  const auto* store2 = find_kind(differ.body, ir::InstrKind::kFieldStore);
  ASSERT_NE(store2, nullptr);
  EXPECT_EQ(cp2.value_in(store2->id, "y"), ConstVal::bottom());
}

TEST(ConstPropTest, FieldAndWholeVarLocationsAreDistinct) {
  const auto m = lowered(nf_body(R"(pkt.ip_ttl = 7;
    send(pkt, 0);)"));
  const ConstProp cp(m.body, {});
  const auto* send = find_kind(m.body, ir::InstrKind::kSend);
  ASSERT_NE(send, nullptr);
  // The field store is tracked at field granularity: pkt.ip_ttl is a
  // known constant at the send even though pkt itself (recv result)
  // is Bottom.
  EXPECT_EQ(cp.value_in(send->id, ir::field_loc("pkt", "ip_ttl")),
            ConstVal::of_int(7));
  EXPECT_TRUE(cp.value_in(send->id, "pkt").is_bottom());
  // A sibling field never written stays at recv's smashed Bottom.
  EXPECT_TRUE(cp.value_in(send->id, ir::field_loc("pkt", "ip_tos")).is_bottom());
}

TEST(ConstPropTest, EntryEnvSeedsPersistents) {
  const auto m = lowered(nf_body("pkt.ip_ttl = cap;\n    send(pkt, 0);",
                                 "var cap = 9;"));
  // Seeded Const: the config value flows into the body.
  ConstEnv cfg;
  cfg["cap"] = ConstVal::of_int(9);
  const ConstProp with_cfg(m.body, cfg);
  const auto* send = find_kind(m.body, ir::InstrKind::kSend);
  ASSERT_NE(send, nullptr);
  EXPECT_EQ(with_cfg.value_in(send->id, ir::field_loc("pkt", "ip_ttl")),
            ConstVal::of_int(9));

  // Seeded Bottom (the config-agnostic lint mode): stays unknown.
  ConstEnv agnostic;
  agnostic["cap"] = ConstVal::bottom();
  const ConstProp no_cfg(m.body, agnostic);
  EXPECT_TRUE(
      no_cfg.value_in(send->id, ir::field_loc("pkt", "ip_ttl")).is_bottom());
}

}  // namespace
}  // namespace nfactor
