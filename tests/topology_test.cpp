// Topology verification (verify/topology.h): .topo parsing, structural
// validation, query parsing, symbolic path enumeration over branching
// instance graphs, and the determinism contract (byte-identical JSON at
// any --jobs width). The 18-instance datacenter fabric shipped as
// examples/datacenter.topo doubles as the network-scale acceptance case.
#include <gtest/gtest.h>

#include <fstream>
#include <optional>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "netsim/packet.h"
#include "obs/obs.h"
#include "symex/solver.h"
#include "tests/topology_test_util.h"
#include "verify/topology.h"
#include "verify/witness.h"

#ifndef NFACTOR_SOURCE_DIR
#error "tests/CMakeLists.txt must define NFACTOR_SOURCE_DIR"
#endif

namespace nfactor::verify {
namespace {

using testutil::corpus_models;

std::string read_file(const std::string& path) {
  std::ifstream in(path);
  EXPECT_TRUE(in) << "cannot read " << path;
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

// ---------------------------------------------------------------------------
// Parsing and validation
// ---------------------------------------------------------------------------

TEST(TopologyParse, RoundTripsTheFormat) {
  const std::string text =
      "# comment line\n"
      "node fw firewall\n"
      "node mon monitor   # trailing comment\n"
      "\n"
      "ingress in -> fw:0\n"
      "edge fw:1 -> mon:0\n"
      "edge fw:* -> mon:1\n"
      "egress out <- mon:1\n";
  const Topology topo = parse_topology(text, corpus_models().resolver());
  EXPECT_TRUE(topo.validate().empty());
  ASSERT_EQ(topo.nodes.size(), 2u);
  ASSERT_NE(topo.node("fw"), nullptr);
  EXPECT_EQ(topo.node("fw")->nf, "firewall");
  ASSERT_NE(topo.ingress_point("in"), nullptr);
  EXPECT_EQ(topo.ingress_point("in")->port, 0);
  ASSERT_NE(topo.egress_point("out"), nullptr);
  // Exact edge wins over the wildcard; wildcard catches the rest.
  ASSERT_NE(topo.edge_from("fw", 1), nullptr);
  EXPECT_EQ(topo.edge_from("fw", 1)->to_port, 0);
  ASSERT_NE(topo.edge_from("fw", 7), nullptr);
  EXPECT_EQ(topo.edge_from("fw", 7)->to_port, 1);
  EXPECT_EQ(topo.edge_from("mon", 3), nullptr);  // dangles
}

TEST(TopologyParse, AcceptsConfigPinsAndDottedQuads) {
  const std::string text =
      "node fw firewall cfg trusted_if=0 cfg gateway=10.0.0.1\n"
      "ingress in -> fw:0\n"
      "egress out <- fw:*\n";
  const Topology topo = parse_topology(text, corpus_models().resolver());
  const TopoNode* fw = topo.node("fw");
  ASSERT_NE(fw, nullptr);
  ASSERT_EQ(fw->cfg.size(), 2u);
  EXPECT_EQ(fw->cfg.at("trusted_if"), 0);
  EXPECT_EQ(fw->cfg.at("gateway"),
            static_cast<std::int64_t>(netsim::ipv4("10.0.0.1")));
}

TEST(TopologyParse, RejectsMalformedInputWithLineNumbers) {
  // Like nf-verify's resolver: an unknown NF yields an empty NodeModels,
  // which the parser reports with the offending line number.
  const auto resolver = [](const std::string& nf) -> NodeModels {
    try {
      return corpus_models().resolve(nf);
    } catch (const std::exception&) {
      return {};
    }
  };
  // Each bad input throws and the message carries its line number.
  const std::vector<std::pair<std::string, std::string>> cases = {
      {"frob fw firewall\n", "line 1"},
      {"node fw firewall\nedge fw:x -> fw:0\n", "line 2"},
      {"node fw firewall\n\nedge fw:1 fw:0\n", "line 3"},
      {"node fw no_such_nf\n", "line 1"},
      {"node fw firewall cfg bogus\n", "line 1"},
  };
  for (const auto& [text, needle] : cases) {
    SCOPED_TRACE(text);
    try {
      parse_topology(text, resolver);
      FAIL() << "expected parse failure";
    } catch (const std::runtime_error& ex) {
      EXPECT_NE(std::string(ex.what()).find(needle), std::string::npos)
          << ex.what();
    }
  }
}

TEST(TopologyValidate, FlagsStructuralProblems) {
  const auto models = corpus_models().resolve("firewall");
  Topology topo;
  topo.nodes.push_back({"fw", "firewall", models.model, models.module, {}});
  topo.nodes.push_back({"fw", "firewall", models.model, models.module, {}});
  topo.edges.push_back({"fw", 1, "ghost", 0});
  topo.ingress.push_back({"in", "fw", 0});
  topo.egress.push_back({"in", "fw", 1});  // name collides with ingress
  const auto problems = topo.validate();
  EXPECT_GE(problems.size(), 3u);  // dup id, dangling edge, dup point name
}

// ---------------------------------------------------------------------------
// Query parsing
// ---------------------------------------------------------------------------

TEST(TopologyQueryParse, ParsesAllKindsAndWhereClauses) {
  Query q = parse_query("reach in out");
  EXPECT_EQ(q.kind, QueryKind::kReach);
  EXPECT_EQ(q.from, "in");
  EXPECT_EQ(q.to, "out");
  EXPECT_TRUE(q.where.empty());

  q = parse_query("waypoint in out via fw");
  EXPECT_EQ(q.kind, QueryKind::kWaypoint);
  EXPECT_EQ(q.via, "fw");

  q = parse_query(
      "isolate in out where pkt.ip_proto != 6 && pkt.dport <= 1024");
  EXPECT_EQ(q.kind, QueryKind::kIsolate);
  EXPECT_EQ(q.where.size(), 2u);
  EXPECT_FALSE(q.where_text.empty());

  q = parse_query("reach in out where pkt.ip_dst == 10.1.2.3");
  EXPECT_EQ(q.where.size(), 1u);
}

TEST(TopologyQueryParse, RejectsBadSpecs) {
  for (const std::string spec :
       {"", "reach in", "teleport in out", "reach in out via",
        "waypoint in out", "reach in out where pkt.bogus == 1",
        "reach in out where pkt.dport ~ 80"}) {
    SCOPED_TRACE(spec);
    EXPECT_THROW(parse_query(spec), std::runtime_error);
  }
}

// ---------------------------------------------------------------------------
// Small-graph queries
// ---------------------------------------------------------------------------

TEST(TopologyQuery, TwoHopChainReachAndIsolate) {
  const Topology topo = testutil::parse_chain({"firewall", "monitor"});
  QueryOptions opts;

  QueryResult reach = run_query(topo, parse_query("reach in out"), opts);
  EXPECT_TRUE(reach.sat);
  EXPECT_TRUE(reach.holds);
  ASSERT_FALSE(reach.paths.empty());
  EXPECT_EQ(reach.paths[0].hops.size(), 2u);
  EXPECT_EQ(reach.paths[0].hops[0].node, "h0");
  EXPECT_EQ(reach.paths[0].hops[1].node, "h1");

  // Isolation over the same pair is the negation.
  QueryResult iso = run_query(topo, parse_query("isolate in out"), opts);
  EXPECT_TRUE(iso.sat);
  EXPECT_FALSE(iso.holds);
}

TEST(TopologyQuery, WhereClauseShapesTheWitness) {
  const Topology topo = testutil::parse_chain({"firewall", "monitor"});
  const Query q = parse_query("reach in out where pkt.ip_proto == 17");
  const QueryResult result = run_query(topo, q, {});
  ASSERT_TRUE(result.sat);
  ReplayReport replay;
  const auto witness = find_witness(topo, result, &replay);
  ASSERT_TRUE(witness.has_value());
  EXPECT_TRUE(replay.consistent) << replay.detail;
  EXPECT_EQ(witness->ingress.ip_proto, 17);  // the where clause held
}

TEST(TopologyQuery, FanOutSplitsAcrossMirrorPorts) {
  // dpi multicasts exploit traffic: port 9 (mirror) feeds the alerts
  // monitor, port 1 (forward) the normal one.
  const std::string text =
      "node dpi dpi\n"
      "node mon_fwd monitor\n"
      "node mon_alert monitor\n"
      "ingress in -> dpi:0\n"
      "edge dpi:1 -> mon_fwd:0\n"
      "edge dpi:9 -> mon_alert:0\n"
      "egress out <- mon_fwd:1\n"
      "egress alerts <- mon_alert:1\n";
  const Topology topo = parse_topology(text, corpus_models().resolver());
  ASSERT_TRUE(topo.validate().empty());

  const QueryResult fwd = run_query(topo, parse_query("reach in out"), {});
  EXPECT_TRUE(fwd.sat);

  const QueryResult alert =
      run_query(topo, parse_query("reach in alerts"), {});
  EXPECT_TRUE(alert.sat);
  // Every delivered alerts path left the dpi on the mirror port.
  for (const auto& path : alert.paths) {
    ASSERT_FALSE(path.hops.empty());
    EXPECT_EQ(path.hops[0].node, "dpi");
    EXPECT_EQ(path.hops[0].out_port, 9);
  }
  // Non-TCP traffic can never hit the payload-inspection entries.
  const QueryResult quiet = run_query(
      topo, parse_query("isolate in alerts where pkt.ip_proto != 6"), {});
  EXPECT_TRUE(quiet.holds);
  EXPECT_FALSE(quiet.stats.truncated);
}

TEST(TopologyQuery, MaxHopsBoundsAndReportsTruncation) {
  const Topology topo = testutil::parse_chain(
      {"firewall", "monitor", "monitor", "monitor"});
  QueryOptions opts;
  opts.max_hops = 2;  // chain needs 4
  const QueryResult r = run_query(topo, parse_query("reach in out"), opts);
  EXPECT_FALSE(r.sat);
  EXPECT_TRUE(r.stats.truncated);
}

TEST(TopologyQuery, UnknownPointsThrow) {
  const Topology topo = testutil::parse_chain({"firewall"});
  EXPECT_THROW(run_query(topo, parse_query("reach nope out"), {}),
               std::runtime_error);
  EXPECT_THROW(run_query(topo, parse_query("reach in nope"), {}),
               std::runtime_error);
}

// ---------------------------------------------------------------------------
// Network-scale acceptance: the 18-instance datacenter fabric
// ---------------------------------------------------------------------------

TEST(TopologyDatacenter, AnswersReachabilityAndIsolationWithWitness) {
  const Topology topo = parse_topology(
      read_file(std::string(NFACTOR_SOURCE_DIR) + "/examples/datacenter.topo"),
      corpus_models().resolver());
  ASSERT_TRUE(topo.validate().empty());
  ASSERT_GE(topo.nodes.size(), 16u);

  symex::SolverCache cache;
  QueryOptions opts;
  opts.jobs = 4;
  opts.solver_cache = &cache;

  // End-to-end reachability through the 10-hop core pipeline, witnessed.
  const QueryResult reach =
      run_query(topo, parse_query("reach cust_a web_out"), opts);
  EXPECT_TRUE(reach.holds);
  ASSERT_TRUE(reach.sat);
  ReplayReport replay;
  const auto witness = find_witness(topo, reach, &replay);
  ASSERT_TRUE(witness.has_value());
  EXPECT_TRUE(replay.consistent) << replay.detail;
  EXPECT_EQ(replay.hops.size(), witness->hops.size());

  // Non-TCP traffic cannot reach the quarantine rack (fed only by the
  // core DPI's payload-inspection mirror) — a proof, not a sample.
  const QueryResult iso = run_query(
      topo, parse_query("isolate cust_a quarantine where pkt.ip_proto != 6"),
      opts);
  EXPECT_TRUE(iso.holds);
  EXPECT_FALSE(iso.stats.truncated);

  // Every web-bound path traverses the SYN-flood guard.
  const QueryResult wp =
      run_query(topo, parse_query("waypoint cust_a web_out via syn_guard"),
                opts);
  EXPECT_TRUE(wp.holds);

  // Cross-instance memoization: the shared cache absorbed repeat
  // verdicts across the three queries.
  const auto stats = cache.stats();
  EXPECT_GT(stats.hits, 0u);

#if NFACTOR_OBS_ENABLED
  auto& reg = obs::default_registry();
  EXPECT_GE(reg.counter("verify.topology.queries"), 3u);
  EXPECT_GT(reg.counter("verify.topology.frames"), 0u);
  EXPECT_GT(reg.counter("verify.topology.solver.queries"), 0u);
  EXPECT_GT(reg.gauge("verify.topology.cache.hit_rate"), 0.0);
#endif
}

// ---------------------------------------------------------------------------
// Determinism: byte-identical results at any jobs width
// ---------------------------------------------------------------------------

TEST(TopologyDeterminism, JsonIsByteIdenticalAcrossJobsWidths) {
  const Topology topo = parse_topology(
      read_file(std::string(NFACTOR_SOURCE_DIR) + "/examples/datacenter.topo"),
      corpus_models().resolver());

  for (const std::string spec :
       {"reach cust_a web_out", "isolate cust_a quarantine",
        "waypoint cust_b web_out via nat_core"}) {
    SCOPED_TRACE(spec);
    const Query q = parse_query(spec);

    symex::SolverCache cache1;
    QueryOptions o1;
    o1.jobs = 1;
    o1.solver_cache = &cache1;
    const QueryResult r1 = run_query(topo, q, o1);

    symex::SolverCache cache4;
    QueryOptions o4;
    o4.jobs = 4;
    o4.solver_cache = &cache4;
    const QueryResult r4 = run_query(topo, q, o4);

    EXPECT_EQ(r1.sat, r4.sat);
    EXPECT_EQ(r1.holds, r4.holds);
    EXPECT_EQ(r1.paths.size(), r4.paths.size());
    EXPECT_EQ(r1.stats.frames, r4.stats.frames);
    EXPECT_EQ(r1.stats.infeasible, r4.stats.infeasible);
    EXPECT_EQ(r1.stats.solver_queries, r4.stats.solver_queries);

    // The full JSON document — paths, hops, egress expressions — is
    // byte-identical; the witness is deterministic too, so include it.
    ReplayReport rep1, rep4;
    std::optional<Witness> w1, w4;
    if (r1.sat) w1 = find_witness(topo, r1, &rep1);
    if (r4.sat) w4 = find_witness(topo, r4, &rep4);
    EXPECT_EQ(w1.has_value(), w4.has_value());
    EXPECT_EQ(topology_json(topo, r1, w1 ? &*w1 : nullptr,
                            w1 ? &rep1 : nullptr),
              topology_json(topo, r4, w4 ? &*w4 : nullptr,
                            w4 ? &rep4 : nullptr));
  }
}

}  // namespace
}  // namespace nfactor::verify
