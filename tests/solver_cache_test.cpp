// Memoizing solver cache: cached and uncached verdicts must agree (the
// cache is a pure accelerator), the cache key must be a function of the
// constraint *set* (a&&b hits b&&a's entry), the counters must account
// for every query, and eviction must bound the footprint without ever
// changing an answer. The concurrent test doubles as the TSan target for
// the sharded map.
#include <gtest/gtest.h>

#include <random>
#include <string>
#include <thread>
#include <vector>

#include "symex/solver.h"

namespace nfactor::symex {
namespace {

using lang::BinOp;

/// Random constraint set that is true under a known assignment
/// (satisfiable by construction), or a constructed contradiction.
std::vector<SymRef> random_sat_set(std::mt19937_64& rng) {
  constexpr int kVars = 4;
  Int value[kVars];
  SymRef var[kVars];
  for (int i = 0; i < kVars; ++i) {
    value[i] = static_cast<Int>(rng() % 100) - 50;
    var[i] = make_var("v" + std::to_string(i), VarClass::kPkt);
  }
  std::vector<SymRef> cs;
  const int n = 2 + static_cast<int>(rng() % 6);
  for (int a = 0; a < n; ++a) {
    const int i = static_cast<int>(rng() % kVars);
    switch (rng() % 4) {
      case 0:
        cs.push_back(make_bin(BinOp::kEq, var[i], make_int(value[i])));
        break;
      case 1:
        cs.push_back(make_bin(BinOp::kLe, var[i],
                              make_int(value[i] + static_cast<Int>(rng() % 8))));
        break;
      case 2:
        cs.push_back(make_bin(BinOp::kGe, var[i],
                              make_int(value[i] - static_cast<Int>(rng() % 8))));
        break;
      default:
        cs.push_back(make_bin(
            BinOp::kNe, var[i],
            make_int(value[i] + 1 + static_cast<Int>(rng() % 5))));
        break;
    }
  }
  return cs;
}

std::vector<SymRef> contradiction(std::mt19937_64& rng) {
  const SymRef x = make_var("x" + std::to_string(rng() % 7), VarClass::kPkt);
  const Int v = static_cast<Int>(rng() % 100);
  return {make_bin(BinOp::kEq, x, make_int(v)),
          make_bin(BinOp::kEq, x, make_int(v + 1 + static_cast<Int>(rng() % 9)))};
}

TEST(SolverCache, CachedAndUncachedVerdictsAgree) {
  std::mt19937_64 rng(0xC0FFEE);
  SolverCache cache;
  Solver cached(&cache);
  Solver plain;

  for (int trial = 0; trial < 200; ++trial) {
    const auto cs = (rng() % 3 == 0) ? contradiction(rng) : random_sat_set(rng);
    const SatResult want = plain.check(cs);
    // Twice through the cached solver: the second query of a repeated
    // set is a hit, and a hit must return the same verdict.
    EXPECT_EQ(cached.check(cs), want) << "trial " << trial;
    EXPECT_EQ(cached.check(cs), want) << "trial " << trial << " (cached)";
  }
  EXPECT_GE(cache.stats().hits, 200u);
}

TEST(SolverCache, KeyIsOrderInsensitiveAndDeduplicated) {
  const SymRef x = make_var("x", VarClass::kPkt);
  const SymRef y = make_var("y", VarClass::kPkt);
  const SymRef a = make_bin(BinOp::kGt, x, make_int(10));
  const SymRef b = make_bin(BinOp::kLt, y, make_int(5));

  EXPECT_EQ(SolverCache::canonical_key({a, b}), SolverCache::canonical_key({b, a}));
  EXPECT_EQ(SolverCache::canonical_key({a, a, b}),
            SolverCache::canonical_key({b, a}));
  EXPECT_NE(SolverCache::canonical_key({a}), SolverCache::canonical_key({b}));

  // a && b then b && a: the reversed conjunction must hit the cache and
  // return the identical verdict. a and b touch different variables, so
  // they form two independence components — the replay hits both.
  SolverCache cache;
  Solver solver(&cache);
  const SatResult first = solver.check({a, b});
  const auto before = cache.stats();
  const SatResult reversed = solver.check({b, a});
  const auto after = cache.stats();
  EXPECT_EQ(reversed, first);
  EXPECT_EQ(after.hits, before.hits + 2);
  EXPECT_EQ(after.misses, before.misses);
  EXPECT_EQ(solver.cache_hits(), 1u);  // query-level: one fully cached query
  EXPECT_EQ(solver.cache_misses(), 1u);
}

TEST(SolverCache, HitsPlusMissesAccountForEveryQuery) {
  std::mt19937_64 rng(42);
  SolverCache cache;
  Solver solver(&cache);

  std::vector<std::vector<SymRef>> replay;
  for (int trial = 0; trial < 100; ++trial) {
    auto cs = (rng() % 4 == 0) ? contradiction(rng) : random_sat_set(rng);
    solver.check(cs);
    if (replay.size() < 20) replay.push_back(std::move(cs));
  }
  for (const auto& cs : replay) solver.check(cs);  // guaranteed re-queries
  EXPECT_EQ(solver.query_count(), 120u);
  EXPECT_EQ(solver.cache_hits() + solver.cache_misses(), solver.query_count());
  EXPECT_GE(solver.cache_hits(), 20u);  // at least the replayed sets hit
  // The cache's own stats count per-component lookups — at least one per
  // (non-empty) query, usually several.
  const auto cs = cache.stats();
  EXPECT_GE(cs.hits + cs.misses, solver.query_count());
  EXPECT_GE(cs.hits, solver.cache_hits());

  // Without a cache the counters stay zero.
  Solver plain;
  plain.check({make_bin(BinOp::kEq, make_var("p", VarClass::kPkt), make_int(1))});
  EXPECT_EQ(plain.query_count(), 1u);
  EXPECT_EQ(plain.cache_hits(), 0u);
  EXPECT_EQ(plain.cache_misses(), 0u);
}

TEST(SolverCache, EvictionBoundsFootprintWithoutChangingVerdicts) {
  // max_entries=16 over 16 shards: one entry per shard, so nearly every
  // insert bulk-evicts its shard.
  SolverCache cache(16);
  const SymRef x = make_var("x", VarClass::kPkt);
  for (int i = 0; i < 100; ++i) {
    cache.insert({make_bin(BinOp::kEq, x, make_int(i))}, SatResult::kSat);
  }
  EXPECT_LE(cache.size(), SolverCache::kShards);
  EXPECT_GT(cache.stats().evictions, 0u);

  // A solver over an evicting cache still answers correctly: verdicts
  // are recomputed on the misses the eviction created.
  std::mt19937_64 rng(7);
  Solver tight(&cache);
  Solver plain;
  for (int trial = 0; trial < 60; ++trial) {
    const auto cs = (rng() % 3 == 0) ? contradiction(rng) : random_sat_set(rng);
    EXPECT_EQ(tight.check(cs), plain.check(cs)) << "trial " << trial;
  }
}

TEST(SolverCache, ConcurrentSolversShareOneCacheSafely) {
  // Small cache forces concurrent eviction; a shared pool of constraint
  // sets forces concurrent hits, misses, and same-key races. Run under
  // TSan, this is the data-race check for the sharded map.
  SolverCache cache(64);
  std::mt19937_64 seed_rng(99);
  std::vector<std::vector<SymRef>> pool;
  std::vector<SatResult> want;
  for (int i = 0; i < 24; ++i) {
    pool.push_back(i % 3 == 0 ? contradiction(seed_rng)
                              : random_sat_set(seed_rng));
  }
  Solver reference;
  want.reserve(pool.size());
  for (const auto& cs : pool) want.push_back(reference.check(cs));

  constexpr int kThreads = 4;
  constexpr int kQueries = 300;
  std::vector<int> wrong(kThreads, 0);
  std::vector<std::uint64_t> accounted(kThreads, 0);
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      std::mt19937_64 rng(1000 + t);
      Solver solver(&cache);
      for (int q = 0; q < kQueries; ++q) {
        const std::size_t i = rng() % pool.size();
        if (solver.check(pool[i]) != want[i]) ++wrong[t];
      }
      if (solver.cache_hits() + solver.cache_misses() == solver.query_count()) {
        accounted[t] = solver.query_count();
      }
    });
  }
  for (auto& th : threads) th.join();

  std::uint64_t total = 0;
  for (int t = 0; t < kThreads; ++t) {
    EXPECT_EQ(wrong[t], 0) << "thread " << t;
    total += accounted[t];
  }
  EXPECT_EQ(total, static_cast<std::uint64_t>(kThreads) * kQueries);
  const auto cs = cache.stats();
  // Per-component lookups: at least one per query.
  EXPECT_GE(cs.hits + cs.misses, total);
}

}  // namespace
}  // namespace nfactor::symex
