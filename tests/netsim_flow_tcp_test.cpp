#include <gtest/gtest.h>

#include "netsim/flow.h"
#include "netsim/packet_gen.h"
#include "netsim/tcp_fsm.h"
#include "tests/test_util.h"

namespace nfactor::netsim {
namespace {

Packet pkt(const char* src, int sp, const char* dst, int dp,
           std::uint8_t flags = kAck) {
  return testutil::tcp_packet(src, sp, dst, dp, flags);
}

// ---------------------------------------------------------------------------
// Flow tuples
// ---------------------------------------------------------------------------

TEST(FlowTuples, ExtractionMatchesHeaders) {
  const Packet p = pkt("10.0.0.1", 1234, "3.3.3.3", 80);
  const FourTuple t = four_tuple(p);
  EXPECT_EQ(t.src_ip, ipv4("10.0.0.1"));
  EXPECT_EQ(t.src_port, 1234);
  EXPECT_EQ(t.dst_ip, ipv4("3.3.3.3"));
  EXPECT_EQ(t.dst_port, 80);
}

TEST(FlowTuples, ReversedIsInvolution) {
  const FourTuple t = four_tuple(pkt("10.0.0.1", 1, "10.0.0.2", 2));
  EXPECT_EQ(t.reversed().reversed(), t);
  EXPECT_NE(t.reversed(), t);
}

TEST(FlowTuples, ConnectionKeyIsDirectionInsensitive) {
  const Packet fwd = pkt("10.0.0.1", 1234, "3.3.3.3", 80);
  Packet rev = pkt("3.3.3.3", 80, "10.0.0.1", 1234);
  EXPECT_EQ(connection_key(fwd), connection_key(rev));
}

TEST(FlowTuples, HashIsDeterministicAndSpreads) {
  const auto h1 = hash_value(four_tuple(pkt("10.0.0.1", 1, "10.0.0.2", 2)));
  const auto h2 = hash_value(four_tuple(pkt("10.0.0.1", 1, "10.0.0.2", 2)));
  EXPECT_EQ(h1, h2);
  // Nearby tuples should not collide (sanity, not a cryptographic claim).
  std::set<std::size_t> hashes;
  for (int i = 0; i < 100; ++i) {
    hashes.insert(hash_value(four_tuple(pkt("10.0.0.1", 1000 + i, "10.0.0.2", 80))));
  }
  EXPECT_EQ(hashes.size(), 100u);
}

TEST(FlowTuples, FiveTupleDistinguishesProtocol) {
  Packet t = pkt("10.0.0.1", 1, "10.0.0.2", 2);
  Packet u = t;
  u.ip_proto = static_cast<std::uint8_t>(IpProto::kUdp);
  EXPECT_NE(five_tuple(t), five_tuple(u));
  EXPECT_EQ(five_tuple(t).addr, five_tuple(u).addr);
}

// ---------------------------------------------------------------------------
// TCP state machine
// ---------------------------------------------------------------------------

TEST(TcpConnection, ThreeWayHandshakeReachesEstablished) {
  TcpConnection c;
  EXPECT_EQ(c.state(), TcpState::kListen);
  EXPECT_EQ(c.on_segment(Dir::kClientToServer, kSyn), TcpState::kSynReceived);
  EXPECT_EQ(c.on_segment(Dir::kServerToClient, kSyn | kAck),
            TcpState::kSynReceived);
  EXPECT_EQ(c.on_segment(Dir::kClientToServer, kAck), TcpState::kEstablished);
  EXPECT_TRUE(c.can_pass_data());
}

TEST(TcpConnection, RstAbortsFromAnyState) {
  for (const auto setup : {0, 1, 2, 3}) {
    TcpConnection c;
    if (setup >= 1) c.on_segment(Dir::kClientToServer, kSyn);
    if (setup >= 2) c.on_segment(Dir::kServerToClient, kSyn | kAck);
    if (setup >= 3) c.on_segment(Dir::kClientToServer, kAck);
    EXPECT_EQ(c.on_segment(Dir::kClientToServer, kRst), TcpState::kClosed);
    EXPECT_FALSE(c.can_pass_data());
  }
}

TEST(TcpConnection, ActiveCloseWalksFinStates) {
  TcpConnection c;
  c.on_segment(Dir::kClientToServer, kSyn);
  c.on_segment(Dir::kClientToServer, kAck);
  ASSERT_EQ(c.state(), TcpState::kEstablished);

  EXPECT_EQ(c.on_segment(Dir::kClientToServer, kFin | kAck),
            TcpState::kFinWait1);
  EXPECT_EQ(c.on_segment(Dir::kServerToClient, kAck), TcpState::kFinWait2);
  EXPECT_EQ(c.on_segment(Dir::kServerToClient, kFin | kAck),
            TcpState::kTimeWait);
  EXPECT_FALSE(c.can_pass_data());
}

TEST(TcpConnection, PassiveCloseWalksCloseWait) {
  TcpConnection c;
  c.on_segment(Dir::kClientToServer, kSyn);
  c.on_segment(Dir::kClientToServer, kAck);
  EXPECT_EQ(c.on_segment(Dir::kServerToClient, kFin | kAck),
            TcpState::kCloseWait);
  EXPECT_TRUE(c.can_pass_data());  // half-closed still delivers
  EXPECT_EQ(c.on_segment(Dir::kClientToServer, kFin | kAck),
            TcpState::kLastAck);
  EXPECT_EQ(c.on_segment(Dir::kServerToClient, kAck), TcpState::kClosed);
}

TEST(TcpConnection, DataBeforeHandshakeDoesNotEstablish) {
  TcpConnection c;
  c.on_segment(Dir::kClientToServer, kAck | kPsh);  // mid-stream data
  EXPECT_NE(c.state(), TcpState::kEstablished);
  EXPECT_FALSE(c.can_pass_data());
}

TEST(TcpTracker, TracksBothDirectionsOfOneConnection) {
  TcpTracker tracker;
  const Packet syn = pkt("10.0.0.1", 5555, "3.3.3.3", 80, kSyn);
  Packet synack = pkt("3.3.3.3", 80, "10.0.0.1", 5555, kSyn | kAck);
  Packet ack = syn;
  ack.tcp_flags = kAck;

  EXPECT_EQ(tracker.on_packet(syn), TcpState::kSynReceived);
  EXPECT_EQ(tracker.on_packet(synack), TcpState::kSynReceived);
  EXPECT_EQ(tracker.on_packet(ack), TcpState::kEstablished);
  EXPECT_TRUE(tracker.established(syn));
  EXPECT_TRUE(tracker.established(synack));
  EXPECT_EQ(tracker.size(), 1u);
}

TEST(TcpTracker, SeparateFlowsSeparateStates) {
  TcpTracker tracker;
  tracker.on_packet(pkt("10.0.0.1", 1000, "3.3.3.3", 80, kSyn));
  tracker.on_packet(pkt("10.0.0.2", 1000, "3.3.3.3", 80, kSyn));
  EXPECT_EQ(tracker.size(), 2u);
  EXPECT_EQ(tracker.state_of(pkt("10.0.0.9", 9, "3.3.3.3", 80)),
            TcpState::kClosed);
}

TEST(TcpTracker, IgnoresNonTcp) {
  TcpTracker tracker;
  Packet udp = pkt("10.0.0.1", 53, "8.8.8.8", 53);
  udp.ip_proto = static_cast<std::uint8_t>(IpProto::kUdp);
  EXPECT_EQ(tracker.on_packet(udp), TcpState::kClosed);
  EXPECT_EQ(tracker.size(), 0u);
}

TEST(TcpStateNames, AllDistinct) {
  std::set<std::string> names;
  for (int s = 0; s <= static_cast<int>(TcpState::kTimeWait); ++s) {
    names.insert(to_string(static_cast<TcpState>(s)));
  }
  EXPECT_EQ(names.size(), 11u);
}

// ---------------------------------------------------------------------------
// Packet generator
// ---------------------------------------------------------------------------

TEST(PacketGen, DeterministicForSeed) {
  PacketGen a(99), b(99);
  for (int i = 0; i < 50; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(PacketGen, DifferentSeedsDiffer) {
  PacketGen a(1), b(2);
  int same = 0;
  for (int i = 0; i < 50; ++i) same += a.next() == b.next() ? 1 : 0;
  EXPECT_LT(same, 5);
}

TEST(PacketGen, HandshakeFlowShape) {
  PacketGen gen(7);
  const auto flow = gen.handshake_flow(4);
  ASSERT_EQ(flow.size(), 7u);
  EXPECT_EQ(flow[0].tcp_flags, kSyn);
  EXPECT_EQ(flow[1].tcp_flags, kSyn | kAck);
  EXPECT_EQ(flow[2].tcp_flags, kAck);
  EXPECT_EQ(flow[1].ip_src, flow[0].ip_dst);
  EXPECT_EQ(flow[1].dport, flow[0].sport);
  for (std::size_t i = 3; i < flow.size(); ++i) {
    EXPECT_TRUE(flow[i].has_flag(kPsh));
    EXPECT_FALSE(flow[i].payload.empty());
  }
}

TEST(PacketGen, BackgroundFractionRespected) {
  GenConfig cfg;
  cfg.background_fraction = 1.0;
  cfg.reverse_fraction = 0.0;
  PacketGen gen(3, cfg);
  for (int i = 0; i < 30; ++i) {
    EXPECT_NE(gen.next().ip_dst, cfg.service_ip);
  }
}

TEST(PacketGen, ServiceTrafficByDefaultTargetsService) {
  GenConfig cfg;
  cfg.background_fraction = 0.0;
  cfg.reverse_fraction = 0.0;
  PacketGen gen(3, cfg);
  for (int i = 0; i < 30; ++i) {
    const Packet p = gen.next();
    EXPECT_EQ(p.ip_dst, cfg.service_ip);
    EXPECT_EQ(p.dport, cfg.service_port);
  }
}

}  // namespace
}  // namespace nfactor::netsim
