#include "ir/lower.h"

#include <gtest/gtest.h>

#include "tests/test_util.h"

namespace nfactor::ir {
namespace {

using testutil::lowered;
using testutil::nf_body;

int count_kind(const Cfg& cfg, InstrKind k) {
  int n = 0;
  for (const auto& i : cfg.nodes) n += i->kind == k ? 1 : 0;
  return n;
}

const Instr* first_of(const Cfg& cfg, InstrKind k) {
  for (const auto& i : cfg.nodes) {
    if (i->kind == k) return i.get();
  }
  return nullptr;
}

TEST(Lower, CanonicalLoopProducesRecvAnchoredBody) {
  const Module m = lowered(nf_body("send(pkt, 1);"));
  EXPECT_EQ(m.pkt_var, "pkt");
  EXPECT_GE(m.recv_port_node, 0);
  EXPECT_EQ(m.body.node(m.recv_port_node).kind, InstrKind::kRecv);
  EXPECT_EQ(count_kind(m.body, InstrKind::kSend), 1);
  EXPECT_EQ(count_kind(m.body, InstrKind::kEntry), 1);
  EXPECT_EQ(count_kind(m.body, InstrKind::kExit), 1);
}

TEST(Lower, RequiresMain) {
  EXPECT_THROW(ir::lower(lang::parse("def f() { }")), LowerError);
}

TEST(Lower, RequiresPacketLoop) {
  EXPECT_THROW(ir::lower(lang::parse("def main() { x = 1; }")), LowerError);
}

TEST(Lower, RequiresRecvAtLoopHead) {
  EXPECT_THROW(ir::lower(lang::parse(
                   "def main() { while (true) { x = 1; } }")),
               LowerError);
}

TEST(Lower, RejectsStatementsAfterLoop) {
  EXPECT_THROW(
      ir::lower(lang::parse(
          "def main() { while (true) { pkt = recv(0); } x = 1; }")),
      LowerError);
}

TEST(Lower, RejectsMultipleLoops) {
  EXPECT_THROW(ir::lower(lang::parse(
                   "def main() { while (true) { pkt = recv(0); } "
                   "while (true) { p2 = recv(1); } }")),
               LowerError);
}

TEST(Lower, RejectsSocketBuiltins) {
  EXPECT_THROW(
      ir::lower(lang::parse(
          "def main() { while (true) { pkt = recv(0); x = fork(); } }")),
      LowerError);
}

TEST(Lower, RejectsUnnormalizedSniff) {
  EXPECT_THROW(ir::lower(lang::parse(
                   "def cb(p) { }\ndef main() { sniff(0, cb); }")),
               LowerError);
}

TEST(Lower, IfElseJoins) {
  const Module m = lowered(nf_body(
      "if (pkt.dport == 80) {\n  x = 1;\n} else {\n  x = 2;\n}\n"
      "send(pkt, x);"));
  const Instr* br = first_of(m.body, InstrKind::kBranch);
  ASSERT_NE(br, nullptr);
  ASSERT_EQ(br->succs.size(), 2u);
  // Both assignment arms flow into the send.
  const Instr* snd = first_of(m.body, InstrKind::kSend);
  ASSERT_NE(snd, nullptr);
  EXPECT_EQ(snd->preds.size(), 2u);
}

TEST(Lower, WhileLoopHasBackEdge) {
  const Module m = lowered(nf_body(
      "i = 0;\nwhile (i < 3) {\n  i = i + 1;\n}\nsend(pkt, i);",
      "var LIMIT = 3;"));
  const Instr* br = first_of(m.body, InstrKind::kBranch);
  ASSERT_NE(br, nullptr);
  // The increment's successor must lead back to the branch.
  bool back_edge = false;
  for (const auto& n : m.body.nodes) {
    for (const int s : n->succs) {
      if (s == br->id && n->id > br->id) back_edge = true;
    }
  }
  EXPECT_TRUE(back_edge);
}

TEST(Lower, ForDesugarsToWhile) {
  const Module m = lowered(nf_body(
      "acc = 0;\nfor i in 0..4 {\n  acc = acc + i;\n}\nsend(pkt, acc);"));
  EXPECT_EQ(count_kind(m.body, InstrKind::kBranch), 1);  // the i < 4 test
  // init + cond-branch + body + increment present
  bool saw_incr = false;
  for (const auto& n : m.body.nodes) {
    if (n->kind == InstrKind::kAssign && n->var == "i" &&
        lang::to_source(*n->value).find("i + 1") != std::string::npos) {
      saw_incr = true;
    }
  }
  EXPECT_TRUE(saw_incr);
}

TEST(Lower, BreakLeavesLoop) {
  const Module m = lowered(nf_body(
      "i = 0;\nwhile (i < 10) {\n  if (i == 3) {\n    break;\n  }\n"
      "  i = i + 1;\n}\nsend(pkt, i);"));
  // The send node must be reachable from the break edge: it has >= 2 preds
  // (loop-exit and break).
  const Instr* snd = first_of(m.body, InstrKind::kSend);
  ASSERT_NE(snd, nullptr);
  EXPECT_GE(snd->preds.size(), 2u);
}

TEST(Lower, ContinueInForJumpsToIncrement) {
  const Module m = lowered(nf_body(
      "acc = 0;\nfor i in 0..4 {\n  if (i == 2) {\n    continue;\n  }\n"
      "  acc = acc + 1;\n}\nsend(pkt, acc);"));
  // The increment node must have two predecessors: fall-through and the
  // continue edge.
  for (const auto& n : m.body.nodes) {
    if (n->kind == InstrKind::kAssign && n->var == "i" &&
        lang::to_source(*n->value).find("i + 1") != std::string::npos) {
      EXPECT_GE(n->preds.size(), 2u);
    }
  }
}

TEST(Lower, ReturnGoesToExit) {
  const Module m = lowered(nf_body(
      "if (pkt.dport != 80) {\n  return;\n}\nsend(pkt, 1);"));
  const Instr* br = first_of(m.body, InstrKind::kBranch);
  ASSERT_NE(br, nullptr);
  // The true side reaches exit without passing through the send.
  int cur = br->succs[0];
  while (m.body.node(cur).kind != InstrKind::kExit) {
    EXPECT_NE(m.body.node(cur).kind, InstrKind::kSend);
    ASSERT_FALSE(m.body.node(cur).succs.empty());
    cur = m.body.node(cur).succs[0];
  }
}

TEST(Lower, InliningBindsParamsAndReturnValue) {
  const Module m = lowered(
      "def double(x) { return x * 2; }\n"
      "def main() { while (true) { pkt = recv(0); y = double(pkt.dport); "
      "send(pkt, y); } }");
  // A renamed parameter assignment and a $ret assignment must exist.
  bool saw_param = false, saw_ret_use = false;
  for (const auto& n : m.body.nodes) {
    if (n->kind == InstrKind::kAssign && n->var.find("double$") == 0 &&
        n->var.find("$x") != std::string::npos) {
      saw_param = true;
    }
    if (n->kind == InstrKind::kAssign && n->var == "y" &&
        lang::to_source(*n->value).find("$ret") != std::string::npos) {
      saw_ret_use = true;
    }
  }
  EXPECT_TRUE(saw_param);
  EXPECT_TRUE(saw_ret_use);
}

TEST(Lower, RepeatedCallsGetDistinctInstances) {
  const Module m = lowered(
      "def inc(x) { return x + 1; }\n"
      "def main() { while (true) { pkt = recv(0); a = inc(1); b = inc(2); "
      "send(pkt, a + b); } }");
  std::set<std::string> param_instances;
  for (const auto& n : m.body.nodes) {
    if (n->kind == InstrKind::kAssign && n->var.find("inc$") == 0 &&
        n->var.find("$x") != std::string::npos) {
      param_instances.insert(n->var);
    }
  }
  EXPECT_EQ(param_instances.size(), 2u);
}

TEST(Lower, EarlyReturnInCalleeJoins) {
  const Module m = lowered(
      "def pick(x) { if (x > 5) { return 100; } return 200; }\n"
      "def main() { while (true) { pkt = recv(0); y = pick(pkt.dport); "
      "send(pkt, y); } }");
  // Both returns assign the same $ret variable.
  int ret_defs = 0;
  for (const auto& n : m.body.nodes) {
    if (n->kind == InstrKind::kAssign &&
        n->var.find("$ret") != std::string::npos) {
      ++ret_defs;
    }
  }
  EXPECT_EQ(ret_defs, 2);
}

TEST(Lower, InitSectionVariablesArePersistent) {
  const Module m = ir::lower(lang::parse(
      "def main() { cache = {}; seq = 100; while (true) { pkt = recv(0); "
      "cache[(pkt.ip_src, seq)] = 1; send(pkt, 0); } }"));
  EXPECT_TRUE(m.persistent.count("cache"));
  EXPECT_TRUE(m.persistent.count("seq"));
  EXPECT_GE(m.init.real_nodes().size(), 2u);
}

TEST(Lower, GlobalsArePersistent) {
  const Module m = lowered(nf_body("send(pkt, P);", "var P = 1;"));
  EXPECT_TRUE(m.persistent.count("P"));
  ASSERT_EQ(m.globals.size(), 1u);
  EXPECT_EQ(m.globals[0].type, lang::Type::kInt);
}

// ---------------------------------------------------------------------------
// Instruction uses/defs
// ---------------------------------------------------------------------------

TEST(InstrUsesDefs, AssignUsesRhsDefinesLhs) {
  const Module m = lowered(nf_body("x = pkt.dport + 1;\nsend(pkt, x);"));
  for (const auto& n : m.body.nodes) {
    if (n->kind == InstrKind::kAssign && n->var == "x") {
      EXPECT_TRUE(n->uses().count("pkt.dport"));
      EXPECT_TRUE(n->defs().count("x"));
      EXPECT_TRUE(n->is_strong_def("x"));
    }
  }
}

TEST(InstrUsesDefs, FieldStoreIsStrongOnFieldOnly) {
  const Module m = lowered(nf_body("pkt.ip_ttl = 9;\nsend(pkt, 0);"));
  for (const auto& n : m.body.nodes) {
    if (n->kind == InstrKind::kFieldStore) {
      EXPECT_TRUE(n->defs().count("pkt.ip_ttl"));
      EXPECT_TRUE(n->is_strong_def("pkt.ip_ttl"));
      EXPECT_FALSE(n->is_strong_def("pkt"));
    }
  }
}

TEST(InstrUsesDefs, IndexStoreIsWeakAndUsesContainer) {
  const Module m = lowered(
      nf_body("m[(pkt.ip_src, pkt.sport)] = 1;\nsend(pkt, 0);", "var m = {};"));
  for (const auto& n : m.body.nodes) {
    if (n->kind == InstrKind::kIndexStore) {
      EXPECT_TRUE(n->defs().count("m"));
      EXPECT_FALSE(n->is_strong_def("m"));
      EXPECT_TRUE(n->uses().count("m"));  // weak update reads old value
      EXPECT_TRUE(n->uses().count("pkt.ip_src"));
    }
  }
}

TEST(InstrUsesDefs, SendUsesPacketAndPort) {
  const Module m = lowered(nf_body("send(pkt, P);", "var P = 2;"));
  const Instr* snd = first_of(m.body, InstrKind::kSend);
  ASSERT_NE(snd, nullptr);
  EXPECT_TRUE(snd->uses().count("pkt"));
  EXPECT_TRUE(snd->uses().count("P"));
  EXPECT_TRUE(snd->defs().empty());
}

TEST(InstrUsesDefs, RecvDefinesPacketVar) {
  const Module m = lowered(nf_body("send(pkt, 0);"));
  const Instr* rcv = first_of(m.body, InstrKind::kRecv);
  ASSERT_NE(rcv, nullptr);
  EXPECT_TRUE(rcv->defs().count("pkt"));
  EXPECT_TRUE(rcv->is_strong_def("pkt"));
}

TEST(LocationHelpers, SplitFieldLoc) {
  std::string base, field;
  EXPECT_TRUE(split_field_loc("pkt.ip_src", &base, &field));
  EXPECT_EQ(base, "pkt");
  EXPECT_EQ(field, "ip_src");
  EXPECT_FALSE(split_field_loc("plain", &base, &field));
}

TEST(SourceLines, CountsDistinctLines) {
  const Module m = lowered(nf_body("x = 1;\ny = 2;\nsend(pkt, x + y);"));
  EXPECT_EQ(m.body.source_lines(), 4);  // recv + 3 statements
}

TEST(CfgDump, MentionsEveryNode) {
  const Module m = lowered(nf_body("send(pkt, 0);"));
  const std::string d = m.body.dump();
  for (const auto& n : m.body.nodes) {
    EXPECT_NE(d.find("%" + std::to_string(n->id) + " "), std::string::npos);
  }
}

}  // namespace
}  // namespace nfactor::ir
