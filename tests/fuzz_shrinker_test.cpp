// Properties of the delta-debugging Shrinker (src/fuzz/shrinker.{h,cpp}),
// checked with injected fault predicates (the FailPredicate hook) so no
// real pipeline bug is needed: for any generated program and any
// predicate that holds on it, the shrunk output (1) still parses and
// analyzes, (2) still fails the predicate, and (3) is never larger than
// the input.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "fuzz/program_gen.h"
#include "fuzz/shrinker.h"
#include "lang/parser.h"
#include "lang/sema.h"

namespace nfactor {
namespace {

bool parses(const std::string& src) {
  try {
    auto prog = lang::parse(src, "shrunk");
    lang::analyze(prog);
    return true;
  } catch (const std::exception&) {
    return false;
  }
}

// Fault predicates keyed on syntactic features a generated program may
// carry. Each stands in for "the bug is still present".
struct Fault {
  const char* name;
  const char* token;
};
const Fault kFaults[] = {
    {"keeps-a-send", "send("},
    {"keeps-the-map", "m0["},
    {"keeps-a-conditional", "if ("},
    {"keeps-state-update", "st0 ="},
};

class ShrinkerProperties : public ::testing::TestWithParam<int> {};

TEST_P(ShrinkerProperties, OutputParsesStillFailsAndNeverGrows) {
  fuzz::ProgramGen gen(static_cast<std::uint64_t>(GetParam()) * 0x2545F491u +
                       17);
  for (int i = 0; i < 4; ++i) {
    const auto prog = gen.generate();
    for (const Fault& fault : kFaults) {
      if (prog.source.find(fault.token) == std::string::npos) continue;
      const fuzz::Shrinker shrinker(
          [&fault](const std::string& src) {
            return src.find(fault.token) != std::string::npos;
          });
      const auto result = shrinker.shrink(prog.source);
      SCOPED_TRACE(std::string("fault=") + fault.name + "\n--- input ---\n" +
                   prog.source + "--- shrunk ---\n" + result.source);

      EXPECT_TRUE(parses(result.source));
      EXPECT_NE(result.source.find(fault.token), std::string::npos)
          << "shrinking lost the failure";
      EXPECT_LE(result.source.size(), prog.source.size());
      EXPECT_GE(result.candidates_tried, result.candidates_kept);
    }
  }
}

TEST_P(ShrinkerProperties, ShrinkingIsIdempotentAtTheFixedPoint) {
  fuzz::ProgramGen gen(static_cast<std::uint64_t>(GetParam()) * 0xA24BAED4u +
                       29);
  const auto prog = gen.generate();
  const char* token = "send(";
  ASSERT_NE(prog.source.find(token), std::string::npos);
  const fuzz::Shrinker shrinker([token](const std::string& src) {
    return src.find(token) != std::string::npos;
  });
  const auto once = shrinker.shrink(prog.source);
  const auto twice = shrinker.shrink(once.source);
  EXPECT_EQ(twice.source, once.source)
      << "a second pass found more to remove — the first did not reach a "
         "fixed point";
  EXPECT_EQ(twice.candidates_kept, 0);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ShrinkerProperties, ::testing::Range(1, 13));

TEST(ShrinkerEdges, NonParsingInputIsReturnedUnchanged) {
  const std::string garbage = "def main( {{{ not a program";
  const fuzz::Shrinker shrinker([](const std::string&) { return true; });
  const auto result = shrinker.shrink(garbage);
  EXPECT_EQ(result.source, garbage);
  EXPECT_EQ(result.candidates_kept, 0);
}

TEST(ShrinkerEdges, PredicateNeverSeesNonParsingCandidates) {
  // Every candidate handed to the predicate must already parse — the
  // parse gate runs first (shrinker.cpp), which is what guarantees
  // property (1) above structurally rather than by luck.
  fuzz::ProgramGen gen(7, fuzz::GenOptions::legacy());
  const auto prog = gen.generate();
  std::vector<std::string> seen;
  const fuzz::Shrinker shrinker([&seen](const std::string& src) {
    seen.push_back(src);
    return src.find("send(") != std::string::npos;
  });
  shrinker.shrink(prog.source);
  ASSERT_FALSE(seen.empty());
  for (const auto& candidate : seen) {
    EXPECT_TRUE(parses(candidate));
  }
}

}  // namespace
}  // namespace nfactor
