// Concrete DSL runtime: the reference semantics.
#include "runtime/interp.h"

#include <gtest/gtest.h>

#include "tests/test_util.h"

namespace nfactor::runtime {
namespace {

using testutil::nf_body;
using testutil::tcp_packet;

struct Rig {
  ir::Module module;
  std::unique_ptr<Interpreter> interp;

  explicit Rig(const std::string& src) : module(testutil::lowered(src)) {
    interp = std::make_unique<Interpreter>(module);
  }
};

TEST(Runtime, ForwardsWithRewrittenFields) {
  Rig rig(nf_body("pkt.ip_dst = 1.1.1.1;\npkt.dport = 8080;\nsend(pkt, 3);"));
  const auto out = rig.interp->process(tcp_packet("10.0.0.1", 5, "3.3.3.3", 80));
  ASSERT_EQ(out.sent.size(), 1u);
  EXPECT_EQ(out.sent[0].first.ip_dst, netsim::ipv4("1.1.1.1"));
  EXPECT_EQ(out.sent[0].first.dport, 8080);
  EXPECT_EQ(out.sent[0].second, 3);
  EXPECT_FALSE(out.dropped());
}

TEST(Runtime, ImplicitDropOnReturn) {
  Rig rig(nf_body("if (pkt.dport != 80) {\n  return;\n}\nsend(pkt, 0);"));
  EXPECT_TRUE(rig.interp->process(tcp_packet("1.1.1.1", 1, "2.2.2.2", 99)).dropped());
  EXPECT_FALSE(rig.interp->process(tcp_packet("1.1.1.1", 1, "2.2.2.2", 80)).dropped());
}

TEST(Runtime, PersistentStateSurvivesPackets) {
  Rig rig(nf_body("n = n + 1;\nsend(pkt, n);", "var n = 0;"));
  const auto p = tcp_packet("1.1.1.1", 1, "2.2.2.2", 2);
  EXPECT_EQ(rig.interp->process(p).sent[0].second, 1);
  EXPECT_EQ(rig.interp->process(p).sent[0].second, 2);
  EXPECT_EQ(rig.interp->process(p).sent[0].second, 3);
  rig.interp->reset();
  EXPECT_EQ(rig.interp->process(p).sent[0].second, 1);
}

TEST(Runtime, LocalsDoNotSurvivePackets) {
  Rig rig(nf_body(
      "if (pkt.dport == 80) {\n  x = 7;\n}\nif (pkt.dport != 80) {\n"
      "  y = x;\n  send(pkt, y);\n}\nsend(pkt, 1);"));
  rig.interp->process(tcp_packet("1.1.1.1", 1, "2.2.2.2", 80));
  // Next packet takes the x-read path: x must be unset -> RuntimeError.
  EXPECT_THROW(rig.interp->process(tcp_packet("1.1.1.1", 1, "2.2.2.2", 81)),
               RuntimeError);
}

TEST(Runtime, MapInsertLookupMembership) {
  Rig rig(nf_body(
      "k = (pkt.ip_src, pkt.sport);\n"
      "if (k in m) {\n  send(pkt, m[k]);\n  return;\n}\n"
      "m[k] = pkt.dport;\nsend(pkt, 0);",
      "var m = {};"));
  const auto p = tcp_packet("9.9.9.9", 1000, "2.2.2.2", 443);
  EXPECT_EQ(rig.interp->process(p).sent[0].second, 0);    // miss -> insert
  EXPECT_EQ(rig.interp->process(p).sent[0].second, 443);  // hit
}

TEST(Runtime, TupleIndexingAndLen) {
  Rig rig(nf_body(
      "t = (10, 20, 30);\nsend(pkt, t[1] + len(t));"));
  EXPECT_EQ(rig.interp->process(tcp_packet("1.1.1.1", 1, "2.2.2.2", 2))
                .sent[0].second,
            23);
}

TEST(Runtime, ListIndexingAndStores) {
  Rig rig(nf_body(
      "x = l[0];\nl[0] = x + 5;\nsend(pkt, l[0]);", "var l = [100, 200];"));
  const auto p = tcp_packet("1.1.1.1", 1, "2.2.2.2", 2);
  EXPECT_EQ(rig.interp->process(p).sent[0].second, 105);
  // Reference semantics: the global list was mutated in place.
  EXPECT_EQ(rig.interp->process(p).sent[0].second, 110);
}

TEST(Runtime, PushPopQueueSemantics) {
  Rig rig(nf_body(
      "push(q, pkt.dport);\npush(q, pkt.sport);\nfirst = pop(q);\n"
      "send(pkt, first);",
      "var q = [];"));
  EXPECT_EQ(rig.interp->process(tcp_packet("1.1.1.1", 55, "2.2.2.2", 44))
                .sent[0].second,
            44);  // FIFO: dport pushed first
}

TEST(Runtime, HashIsDeterministic) {
  Rig rig(nf_body("send(pkt, hash((pkt.ip_src, pkt.sport)) % 100);"));
  const auto p = tcp_packet("9.9.9.9", 7, "1.1.1.1", 2);
  const int a = rig.interp->process(p).sent[0].second;
  const int b = rig.interp->process(p).sent[0].second;
  EXPECT_EQ(a, b);
  EXPECT_GE(a, 0);
  EXPECT_LT(a, 100);
}

TEST(Runtime, PayloadContains) {
  Rig rig(nf_body(
      "if (payload_contains(pkt, \"attack\")) {\n  return;\n}\nsend(pkt, 0);"));
  auto evil = tcp_packet("1.1.1.1", 1, "2.2.2.2", 80);
  const std::string data = "GET /attack HTTP/1.0";
  evil.payload.assign(data.begin(), data.end());
  EXPECT_TRUE(rig.interp->process(evil).dropped());
  auto benign = evil;
  const std::string ok = "GET /index.html";
  benign.payload.assign(ok.begin(), ok.end());
  EXPECT_FALSE(rig.interp->process(benign).dropped());
}

TEST(Runtime, LogLinesCaptured) {
  Rig rig(nf_body("log(\"saw\", pkt.dport);\nsend(pkt, 0);"));
  rig.interp->process(tcp_packet("1.1.1.1", 1, "2.2.2.2", 8080));
  ASSERT_EQ(rig.interp->log_lines().size(), 1u);
  EXPECT_NE(rig.interp->log_lines()[0].find("8080"), std::string::npos);
}

TEST(Runtime, DivisionAndModuloByZeroThrow) {
  Rig rig(nf_body("send(pkt, 1 / (pkt.dport - pkt.dport));"));
  EXPECT_THROW(rig.interp->process(tcp_packet("1.1.1.1", 1, "2.2.2.2", 2)),
               RuntimeError);
}

TEST(Runtime, MapMissingKeyThrows) {
  Rig rig(nf_body("send(pkt, m[(1, 2)]);", "var m = {};"));
  EXPECT_THROW(rig.interp->process(tcp_packet("1.1.1.1", 1, "2.2.2.2", 2)),
               RuntimeError);
}

TEST(Runtime, ListOutOfRangeThrows) {
  Rig rig(nf_body("send(pkt, l[5]);", "var l = [1];"));
  EXPECT_THROW(rig.interp->process(tcp_packet("1.1.1.1", 1, "2.2.2.2", 2)),
               RuntimeError);
}

TEST(Runtime, StepLimitStopsRunawayLoop) {
  Rig rig(nf_body("i = 0;\nwhile (i >= 0) {\n  i = i + 1;\n}\nsend(pkt, i);"));
  rig.interp->set_step_limit(1000);
  EXPECT_THROW(rig.interp->process(tcp_packet("1.1.1.1", 1, "2.2.2.2", 2)),
               RuntimeError);
}

TEST(Runtime, InitSectionRunsOnce) {
  ir::Module m = testutil::lowered(
      "def main() { base = 100; while (true) { pkt = recv(0); "
      "base = base + 1; send(pkt, base); } }");
  Interpreter interp(m);
  const auto p = tcp_packet("1.1.1.1", 1, "2.2.2.2", 2);
  EXPECT_EQ(interp.process(p).sent[0].second, 101);
  EXPECT_EQ(interp.process(p).sent[0].second, 102);
}

TEST(Runtime, MultipleSendsPerPacket) {
  Rig rig(nf_body("send(pkt, 1);\npkt.ip_ttl = 9;\nsend(pkt, 2);"));
  const auto out = rig.interp->process(tcp_packet("1.1.1.1", 1, "2.2.2.2", 2));
  ASSERT_EQ(out.sent.size(), 2u);
  EXPECT_EQ(out.sent[0].first.ip_ttl, 64);
  EXPECT_EQ(out.sent[1].first.ip_ttl, 9);  // rewrite between sends visible
}

TEST(Runtime, GlobalAccessors) {
  Rig rig(nf_body("n = n + pkt.dport;\nsend(pkt, 0);", "var n = 0;"));
  rig.interp->process(tcp_packet("1.1.1.1", 1, "2.2.2.2", 25));
  ASSERT_NE(rig.interp->global("n"), nullptr);
  EXPECT_EQ(rig.interp->global("n")->as_int(), 25);
  rig.interp->set_global("n", Value(Int{1000}));
  rig.interp->process(tcp_packet("1.1.1.1", 1, "2.2.2.2", 25));
  EXPECT_EQ(rig.interp->global("n")->as_int(), 1025);
  EXPECT_EQ(rig.interp->global("missing"), nullptr);
}

TEST(Runtime, TraceRecordsDynamicDefUse) {
  Rig rig(nf_body("x = pkt.dport;\ny = x + 1;\nsend(pkt, y);"));
  rig.interp->enable_trace(true);
  rig.interp->process(tcp_packet("1.1.1.1", 1, "2.2.2.2", 2));
  const auto& trace = rig.interp->trace();
  ASSERT_GE(trace.size(), 4u);  // recv, x=, y=, send
  // The y-assignment's use of x links back to the x-assignment event.
  bool linked = false;
  for (std::size_t i = 0; i < trace.size(); ++i) {
    for (const auto& [loc, def] : trace[i].use_defs) {
      if (loc == "x") {
        linked = true;
        EXPECT_LT(def, static_cast<int>(i));
        EXPECT_EQ(rig.module.body.node(trace[static_cast<std::size_t>(def)].node).var, "x");
      }
    }
  }
  EXPECT_TRUE(linked);
}

// ---------------------------------------------------------------------------
// Values
// ---------------------------------------------------------------------------

TEST(Values, StructuralEquality) {
  EXPECT_TRUE(value_eq(Value(Int{5}), Value(Int{5})));
  EXPECT_FALSE(value_eq(Value(Int{5}), Value(Int{6})));
  EXPECT_FALSE(value_eq(Value(Int{1}), Value(true)));
  EXPECT_TRUE(value_eq(Value(Tuple{1, 2}), Value(Tuple{1, 2})));
  auto l1 = std::make_shared<ListV>();
  auto l2 = std::make_shared<ListV>();
  l1->items.push_back(Value(Int{1}));
  l2->items.push_back(Value(Int{1}));
  EXPECT_TRUE(value_eq(Value(l1), Value(l2)));  // contents, not identity
  l2->items.push_back(Value(Int{2}));
  EXPECT_FALSE(value_eq(Value(l1), Value(l2)));
}

TEST(Values, ToKeyNormalizesScalars) {
  EXPECT_EQ(to_key(Value(Int{7})), (Tuple{7}));
  EXPECT_EQ(to_key(Value(true)), (Tuple{1}));
  EXPECT_EQ(to_key(Value(Tuple{1, 2})), (Tuple{1, 2}));
  EXPECT_THROW(to_key(Value(std::string("x"))), std::invalid_argument);
}

TEST(Values, PacketFieldRoundTrip) {
  netsim::Packet p;
  for (const char* f : {"ip_src", "ip_dst", "sport", "dport", "tcp_flags",
                        "ip_ttl", "tcp_seq", "tcp_win", "ip_id", "ip_tos",
                        "eth_type", "ip_proto", "tcp_ack"}) {
    set_packet_field(p, f, 1);
    EXPECT_EQ(get_packet_field(p, f), 1) << f;
  }
  EXPECT_THROW(set_packet_field(p, "len", 5), std::invalid_argument);
  EXPECT_THROW(get_packet_field(p, "bogus"), std::invalid_argument);
}

TEST(Values, Printing) {
  EXPECT_EQ(to_string(Value(Int{5})), "5");
  EXPECT_EQ(to_string(Value(true)), "true");
  EXPECT_EQ(to_string(Value(Tuple{1, 2})), "(1, 2)");
  auto m = std::make_shared<MapV>();
  m->items[{1}] = Value(Int{9});
  EXPECT_EQ(to_string(Value(m)), "{(1): 9}");
}

}  // namespace
}  // namespace nfactor::runtime
