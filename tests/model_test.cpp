// Model construction (Algorithm 1 lines 11-16) and serialization.
#include "model/model.h"

#include <gtest/gtest.h>

#include "analysis/pdg.h"
#include "nfactor/pipeline.h"
#include "nfs/corpus.h"
#include "statealyzer/statealyzer.h"
#include "symex/executor.h"
#include "tests/test_util.h"

namespace nfactor::model {
namespace {

pipeline::PipelineResult run_nf(const char* name) {
  const auto& e = nfs::find(name);
  return pipeline::run_source(e.source, name);
}

pipeline::PipelineResult run_src(const std::string& src) {
  return pipeline::run_source(src, "<test>");
}

TEST(ModelBuilder, PartitionsConditionsByVarClass) {
  const auto r = run_src(testutil::nf_body(
      "if (MODE == 1) {\n"
      "  if (pkt.dport == 80) {\n"
      "    if ((pkt.ip_src, pkt.sport) in conns) {\n"
      "      send(pkt, 1);\n"
      "    }\n"
      "  }\n"
      "}",
      "var MODE = 1;\nvar conns = {};"));
  // Find the full send entry.
  const ModelEntry* send_entry = nullptr;
  for (const auto& e : r.model.entries) {
    if (!e.is_drop()) send_entry = &e;
  }
  ASSERT_NE(send_entry, nullptr);
  ASSERT_EQ(send_entry->config_match.size(), 1u);
  EXPECT_NE(symex::to_string(*send_entry->config_match[0]).find("MODE"),
            std::string::npos);
  ASSERT_EQ(send_entry->flow_match.size(), 1u);
  EXPECT_NE(symex::to_string(*send_entry->flow_match[0]).find("pkt.dport"),
            std::string::npos);
  ASSERT_EQ(send_entry->state_match.size(), 1u);
  EXPECT_NE(symex::to_string(*send_entry->state_match[0]).find("conns"),
            std::string::npos);
}

TEST(ModelBuilder, MixedPacketStatePredicateGoesToStateMatch) {
  // "tuple-of-packet-fields in state-map" — the paper's canonical joint
  // predicate P(f, s) — must land in the state match column.
  const auto r = run_nf("lb");
  bool found = false;
  for (const auto& e : r.model.entries) {
    for (const auto& c : e.state_match) {
      if (c->kind == symex::SymKind::kContains ||
          (c->kind == symex::SymKind::kUn &&
           c->operands[0]->kind == symex::SymKind::kContains)) {
        found = true;
      }
    }
    for (const auto& c : e.flow_match) {
      // No membership predicate may leak into the flow match.
      EXPECT_EQ(c->kind == symex::SymKind::kContains, false);
    }
  }
  EXPECT_TRUE(found);
}

TEST(ModelBuilder, IdentityRewritesSuppressed) {
  const auto r = run_src(testutil::nf_body(
      "pkt.ip_ttl = 9;\nsend(pkt, 0);"));
  ASSERT_EQ(r.model.entries.size(), 1u);
  const auto& a = r.model.entries[0].flow_action[0];
  EXPECT_EQ(a.rewrites.size(), 1u);
  EXPECT_TRUE(a.rewrites.count("ip_ttl"));
  EXPECT_FALSE(a.rewrites.count("ip_src"));  // untouched field omitted
}

TEST(ModelBuilder, DropEntriesHaveNoActions) {
  const auto r = run_src(testutil::nf_body(
      "if (pkt.dport == 80) {\n  send(pkt, 0);\n}"));
  int drops = 0;
  for (const auto& e : r.model.entries) {
    if (e.is_drop()) {
      ++drops;
      EXPECT_TRUE(e.flow_action.empty());
    }
  }
  EXPECT_EQ(drops, 1);
}

TEST(ModelBuilder, StateIdentityUpdatesSuppressed) {
  const auto r = run_src(testutil::nf_body(
      "if (pkt.dport == 80) {\n  n = n + 1;\n}\nif (n > 5) { send(pkt, 0); }",
      "var n = 0;"));
  for (const auto& e : r.model.entries) {
    // Entries on the dport!=80 path must not claim an n update.
    bool has_dport_ne = false;
    for (const auto& c : e.flow_match) {
      if (symex::to_string(*c).find("!=") != std::string::npos) has_dport_ne = true;
    }
    if (has_dport_ne) {
      EXPECT_EQ(e.state_action.count("n"), 0u);
    }
  }
}

TEST(ModelBuilder, ConfigTablesGroupEntries) {
  const auto r = run_nf("lb");
  const auto tables = r.model.tables();
  // At least: RR table, HASH table, and config-independent entries.
  EXPECT_GE(tables.size(), 3u);
  std::size_t total = 0;
  for (const auto& [k, v] : tables) total += v.size();
  EXPECT_EQ(total, r.model.entries.size());
}

TEST(ModelBuilder, TruncatedPathsFlagged) {
  const auto r = run_src(testutil::nf_body(
      "i = 0;\nwhile (i < pkt.dport) {\n  i = i + 1;\n}\nsend(pkt, i);"));
  bool any_trunc = false;
  for (const auto& e : r.model.entries) any_trunc |= e.truncated;
  EXPECT_TRUE(any_trunc);
}

TEST(ModelBuilder, PktFieldsReadCollected) {
  const auto r = run_nf("lb");
  EXPECT_TRUE(r.model.pkt_fields_read.count("pkt.dport"));
  EXPECT_TRUE(r.model.cfg_vars.count("mode"));
  EXPECT_TRUE(r.model.ois_vars.count("f2b_nat"));
}

// ---------------------------------------------------------------------------
// Rendering
// ---------------------------------------------------------------------------

TEST(ModelRendering, TableMentionsDefaultDrop) {
  const auto r = run_nf("firewall");
  const std::string t = to_table(r.model);
  EXPECT_NE(t.find("(default) | * | drop"), std::string::npos);
  EXPECT_NE(t.find("Match(flow)"), std::string::npos);
}

TEST(ModelRendering, TextListsEveryEntry) {
  const auto r = run_nf("nat");
  const std::string t = to_text(r.model);
  for (std::size_t i = 0; i < r.model.entries.size(); ++i) {
    EXPECT_NE(t.find("entry " + std::to_string(i) + ":"), std::string::npos);
  }
}

TEST(ModelRendering, JsonIsBalanced) {
  for (const char* nf : {"lb", "nat", "firewall", "snort_lite"}) {
    const auto r = run_nf(nf);
    const std::string j = to_json(r.model);
    int braces = 0, brackets = 0;
    bool in_string = false;
    for (std::size_t i = 0; i < j.size(); ++i) {
      const char c = j[i];
      if (c == '"' && (i == 0 || j[i - 1] != '\\')) in_string = !in_string;
      if (in_string) continue;
      braces += c == '{' ? 1 : c == '}' ? -1 : 0;
      brackets += c == '[' ? 1 : c == ']' ? -1 : 0;
      EXPECT_GE(braces, 0);
      EXPECT_GE(brackets, 0);
    }
    EXPECT_EQ(braces, 0) << nf;
    EXPECT_EQ(brackets, 0) << nf;
    EXPECT_FALSE(in_string) << nf;
    EXPECT_NE(j.find("\"default_action\": \"drop\""), std::string::npos);
  }
}

TEST(ModelRendering, Figure6ShapeForBalance) {
  const auto r = run_nf("balance");
  const std::string t = to_table(r.model);
  // RR table: matches idx state, advances it modulo N.
  EXPECT_NE(t.find("(mode == MODE_RR)"), std::string::npos);
  EXPECT_NE(t.find("idx := ((idx + 1) % 2)"), std::string::npos);
  // HASH table: hash-based pick, no idx update.
  EXPECT_NE(t.find("(mode != MODE_RR)"), std::string::npos);
  EXPECT_NE(t.find("hash("), std::string::npos);
}

}  // namespace
}  // namespace nfactor::model
