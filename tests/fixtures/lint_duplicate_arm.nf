# lint_duplicate_arm.nf — deliberately buggy fixture for NF208: the
# second `pkt.dport == 22` test re-checks a condition the fall-through
# path has already decided false, so its true arm (send on port 2) can
# never execute. The nested `pkt.ip_proto == 6` re-test shows the true-edge
# direction: inside the outer arm the condition is already true, so the
# inner else arm is the unreachable one.
def main() {
  while (true) {
    pkt = recv(0);
    if (pkt.ip_proto == 6) {
      if (pkt.ip_proto == 6) {
        send(pkt, 1);
        return;
      }
      send(pkt, 3);
      return;
    }
    if (pkt.dport == 22) {
      send(pkt, 1);
      return;
    }
    if (pkt.dport == 22) {
      send(pkt, 2);
      return;
    }
    send(pkt, 0);
    return;
  }
}
