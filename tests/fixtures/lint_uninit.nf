# Deliberately-buggy lint fixture: use-before-init (NF201), a branch arm
# dead under constant propagation (NF204), and a send() whose port folds
# to an out-of-range constant (NF207). Kept synthesizable on purpose so
# the lint golden test can also lower it.
var BAD_PORT = 70000;

def main() {
  while (true) {
    pkt = recv(0);
    threshold = 100;
    if (pkt.len > threshold) {
      mark = 1;
    }
    pkt.ip_tos = mark;
    if (threshold < 50) {
      pkt.ip_ttl = 1;
    }
    send(pkt, BAD_PORT);
    return;
  }
}
