# Deliberately-buggy lint fixture: dead store to a local (NF202),
# write-only persistent state (NF203), a branch guarding on a logVar
# (NF205), and a container weak-update shadowed before any read (NF206).
var seen = {};
var hits = 0;
var stamps = 0;

def main() {
  while (true) {
    pkt = recv(0);
    tmp = pkt.len + 1;
    stamps = pkt.len;
    hits = hits + 1;
    if (hits > 10) {
      log(hits);
    }
    k = (pkt.ip_src, pkt.ip_dst);
    seen[k] = 1;
    seen[k] = 2;
    send(pkt, 1);
    return;
  }
}
