# heavy-hitter: per-source byte counter; sources above THRESH are
# blocked (Fig. 4a structure). The counter is output-impacting state —
# unlike a log counter, it gates forwarding.
var THRESH = 600;
var OUT_PORT = 1;
# Output-impacting state
var bytes_by_src = {};
# Log state
var blocked_cnt = 0;

def main() {
  while (true) {
    pkt = recv(0);
    if (pkt.ip_src in bytes_by_src) {
      b = bytes_by_src[pkt.ip_src];
    } else {
      b = 0;
    }
    nb = b + pkt.len;
    bytes_by_src[pkt.ip_src] = nb;
    if (!(nb > THRESH)) {
      blocked_cnt = blocked_cnt + 1;
      return;
    }
    send(pkt, OUT_PORT);
  }
}
