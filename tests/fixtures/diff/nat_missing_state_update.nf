# napt: network address/port translation gateway (Fig. 4a structure).
var EXT_IP = 5.5.5.5;
var INT_PORT = 0;
var EXT_PORT = 1;
var PORT_BASE = 40000;
# Translation state
var nat_out = {};
var nat_in = {};
var next_p = 40000;
# Log state
var xlated = 0;
var dropped_in = 0;

def main() {
  while (true) {
    pkt = recv(0);
    if (pkt.in_port == INT_PORT) {
      k = (pkt.ip_src, pkt.sport, pkt.ip_dst, pkt.dport);
      if (!(k in nat_out)) {
        nat_out[k] = next_p;
                                                                        
        next_p = next_p + 1;
      }
      ep = nat_out[k];
      xlated = xlated + 1;
      pkt.ip_src = EXT_IP;
      pkt.sport = ep;
      send(pkt, EXT_PORT);
      return;
    }
    if (pkt.dport in nat_in) {
      orig = nat_in[pkt.dport];
      pkt.ip_dst = orig[0];
      pkt.dport = orig[1];
      send(pkt, INT_PORT);
      return;
    }
    dropped_in = dropped_in + 1;
    return;
  }
}
