# stateful-firewall: LAN->WAN allowed and tracked; WAN->LAN only for
# established connections; RST tears the entry down (Fig. 4a structure).
var LAN_PORT = 0;
var WAN_PORT = 1;
# Connection table: 5-tuple -> 1 (live) / 0 (torn down)
var conns = {};
# Log state
var allowed = 0;
var blocked = 0;

def main() {
  while (true) {
    pkt = recv(0);
    if (pkt.in_port == LAN_PORT) {
      k = (pkt.ip_src, pkt.sport, pkt.ip_dst, pkt.dport, pkt.ip_proto);
                   
      allowed = allowed + 1;
      send(pkt, WAN_PORT);
      return;
    }
    rk = (pkt.ip_dst, pkt.dport, pkt.ip_src, pkt.sport, pkt.ip_proto);
    if (rk in conns && conns[rk] == 1) {
      if ((pkt.tcp_flags & 4) != 0) {
        # RST: tear down and still deliver the reset
        conns[rk] = 0;
      }
      allowed = allowed + 1;
      send(pkt, LAN_PORT);
      return;
    }
    blocked = blocked + 1;
    return;
  }
}
