# Seed fixture: callback structure (Fig. 4b), in the shape
# fuzz::ProgramGen emits it — keeps transform::normalize_callback inside
# the replayed oracle matrix even when random draws skip the shape.
var CFG0 = 80;
var CFG1 = 2;
var st0 = 0;
var st1 = 0;
var m0 = {};
def handle(p) {
    if (p.dport == CFG0 && p.ip_proto == 6) {
      m0[p.ip_src] = p.len;
      st0 = st0 + 1;
    } else {
      st1 = st1 + p.len;
    }
    if (p.ip_src in m0) {
      st1 = st1 + m0[p.ip_src];
    }
    if (st1 > 5) {
      send(p, 2);
      return;
    }
    send(p, 1);
}
def main() {
  sniff(0, handle);
}
