# Seed fixture: nested-loop socket structure (Fig. 3 / 4d), in the shape
# fuzz::ProgramGen emits it — keeps transform::unfold_sockets (hidden TCP
# state, NAT legs) inside the replayed oracle matrix.
var MODE_RR = 1;
var mode = 2;
var BAL_PORT = 443;
var servers = [(1.1.1.1, 8000), (2.2.2.2, 80), (3.3.3.3, 80)];
var idx = 0;
var conn_stat = 0;
var busy_stat = 0;
def main() {
  lfd = sock_listen(BAL_PORT);
  while (true) {
    cfd = sock_accept(lfd);
    if (mode == MODE_RR) {
      server = servers[idx];
      idx = (idx + 1) % len(servers);
    } else {
      server = servers[hash(cfd) % len(servers)];
    }
    conn_stat = conn_stat + 1;
    if (conn_stat > 500) {
      busy_stat = busy_stat + 1;
    }
    child = fork();
    if (child == 0) {
      sfd = sock_connect(server[0], server[1]);
      while (true) {
        buf = sock_recv(cfd);
        sock_send(sfd, buf);
        buf2 = sock_recv(sfd);
        sock_send(cfd, buf2);
      }
    }
  }
}
