# Seed fixture: consumer-producer structure (Fig. 4c), in the shape
# fuzz::ProgramGen emits it — keeps transform::normalize_consumer_producer
# inside the replayed oracle matrix.
var CFG0 = 23;
var st0 = 0;
var st1 = 0;
var m0 = {};
var m1 = {};
var queue = [];
def read_loop() {
  while (true) {
    p = recv(0);
    push(queue, p);
  }
}
def proc_loop() {
  while (true) {
    p = pop(queue);
    if ((p.tcp_flags & 2) != 0) {
      m1[(p.ip_src, p.sport)] = 1;
    }
    if ((p.ip_src, p.sport) in m1) {
      st0 = st0 + p.len;
    }
    if (st0 > 2 || p.dport == CFG0) {
      p.ip_ttl = 32;
      send(p, 2);
      return;
    }
    send(p, 1);
  }
}
def main() {
  spawn(read_loop);
  spawn(proc_loop);
}
