# Shrunk by fuzz::Shrinker from nf-fuzz seed 0xbcf35b6db5f3ba40
# (divergence, first found 2026-08-06, fixed in the same PR).
#
# The map m1 only influences forwarding *across* packets: this packet
# stores into it and folds it into st1, and st1 gates the send on the
# next packet. The per-iteration packet slice cannot see that loop
# -carried flow, so StateAlyzer classified m1 as logVar — the synthesized
# model then matched on `(...) in m1` but never updated m1, diverging
# from the runtime on the second packet of any flow. Fixed by the
# transitive output-impacting closure in statealyzer.cpp.
var st1 = 0;
var st2 = 0;
var m1 = {};
def main() {
  while (true) {
    pkt = recv(0);
    if (st1 > 5) {
      send(pkt, 3);
    } else {
      m1[(pkt.ip_src, pkt.sport)] = pkt.len;
    }
    if ((pkt.ip_src, pkt.sport) in m1) {
      st1 = st2 + m1[(pkt.ip_src, pkt.sport)];
    }
  }
}
