// Tests for the synthesis-provenance subsystem (src/obs/provenance.h):
// per-rule source-line attribution, JSON schema and determinism across
// --jobs widths, folded-stack export format, solver-time accounting,
// and the model-bytes-unchanged guarantee.
#include <gtest/gtest.h>

#include <algorithm>
#include <cctype>
#include <string>
#include <vector>

#include "netsim/packet_gen.h"
#include "nfactor/pipeline.h"
#include "nfs/corpus.h"
#include "obs/provenance.h"
#include "verify/equivalence.h"

namespace nfactor {
namespace {

pipeline::PipelineResult run_corpus_nf(const std::string& name, int jobs) {
  const auto& e = nfs::find(name);
  pipeline::PipelineOptions opts;
  opts.jobs = jobs;
  return pipeline::run_source(e.source, name, opts);
}

// Minimal structural JSON validity check (same approach as obs_test):
// enough to catch unbalanced brackets, dangling commas, bad escapes.
bool is_valid_json(const std::string& s) {
  std::vector<char> stack;
  bool in_str = false;
  bool esc = false;
  char prev = '\0';
  for (const char c : s) {
    if (in_str) {
      if (esc) {
        esc = false;
      } else if (c == '\\') {
        esc = true;
      } else if (c == '"') {
        in_str = false;
      }
      prev = c;
      continue;
    }
    switch (c) {
      case '"': in_str = true; break;
      case '{': stack.push_back('}'); break;
      case '[': stack.push_back(']'); break;
      case '}':
      case ']':
        if (stack.empty() || stack.back() != c || prev == ',') return false;
        stack.pop_back();
        break;
      default: break;
    }
    if (!std::isspace(static_cast<unsigned char>(c))) prev = c;
  }
  return !in_str && stack.empty();
}

// ---- structure of the record ---------------------------------------------

TEST(Provenance, OneRulePerModelEntryWithSourceLines) {
  const auto r = run_corpus_nf("snort_lite", 1);
  const obs::ModelProvenance& p = r.provenance;
  EXPECT_EQ(p.nf, "snort_lite");
  ASSERT_EQ(p.rules.size(), r.model.entries.size());
  for (std::size_t i = 0; i < p.rules.size(); ++i) {
    const obs::RuleProvenance& rule = p.rules[i];
    EXPECT_EQ(rule.entry, static_cast<int>(i));
    // Acceptance: every rule maps to at least one source line.
    EXPECT_FALSE(rule.lines.empty()) << "rule " << i << " has no lines";
    EXPECT_TRUE(std::is_sorted(rule.lines.begin(), rule.lines.end()));
    EXPECT_FALSE(rule.intervals.empty());
    // Intervals cover exactly the line set.
    std::vector<int> expanded;
    for (const auto& [lo, hi] : rule.intervals) {
      ASSERT_LE(lo, hi);
      for (int l = lo; l <= hi; ++l) expanded.push_back(l);
    }
    EXPECT_EQ(expanded, rule.lines);
    EXPECT_FALSE(rule.action.empty());
    // Decision key is (node, polarity) pairs.
    EXPECT_EQ(rule.decision_key.size() % 2, 0u);
    EXPECT_FALSE(rule.statements.empty());
  }
}

TEST(Provenance, ForkSitesAreBranchNodesOfThePath) {
  const auto r = run_corpus_nf("snort_lite", 1);
  ASSERT_EQ(r.provenance.rules.size(), r.slice_paths.size());
  for (std::size_t i = 0; i < r.slice_paths.size(); ++i) {
    const auto& rule = r.provenance.rules[i];
    EXPECT_TRUE(
        std::is_sorted(rule.fork_sites.begin(), rule.fork_sites.end()));
    for (const int n : rule.fork_sites) {
      EXPECT_TRUE(r.slice_paths[i].nodes.count(n))
          << "fork site n" << n << " not on path " << i;
    }
  }
}

TEST(Provenance, RulesForLineCrossReference) {
  const auto r = run_corpus_nf("snort_lite", 1);
  const obs::ModelProvenance& p = r.provenance;
  // The first line of the first rule must cross-reference back to it.
  ASSERT_FALSE(p.rules.empty());
  ASSERT_FALSE(p.rules[0].lines.empty());
  const int line = p.rules[0].lines[0];
  const auto hits = p.rules_for_line(line);
  EXPECT_TRUE(std::find(hits.begin(), hits.end(), 0) != hits.end());
  EXPECT_TRUE(p.rules_for_line(999999).empty());
}

// ---- exports --------------------------------------------------------------

TEST(Provenance, JsonExportIsValidAndCarriesSchema) {
  const auto r = run_corpus_nf("dpi", 1);
  const std::string json = obs::to_json(r.provenance);
  EXPECT_TRUE(is_valid_json(json)) << json;
  EXPECT_NE(json.find("\"schema\":\"nfactor-provenance-v1\""),
            std::string::npos);
  EXPECT_NE(json.find("\"decision_key\""), std::string::npos);
  EXPECT_NE(json.find("\"solver_queries\""), std::string::npos);
  // The deterministic export must not leak wall-clock fields.
  EXPECT_EQ(json.find("_ns"), std::string::npos);
  // The timing variant is also valid JSON and does carry them.
  const std::string timed = obs::to_json(r.provenance, /*include_timing=*/true);
  EXPECT_TRUE(is_valid_json(timed)) << timed;
  EXPECT_NE(timed.find("\"solver_ns\""), std::string::npos);
}

TEST(Provenance, FoldedExportIsRendererLoadable) {
  const auto r = run_corpus_nf("snort_lite", 1);
  const std::string folded = obs::to_folded(r.provenance);
  ASSERT_FALSE(folded.empty());
  // Collapsed-stack format: every line is "frame;frame;... <weight>" —
  // exactly what flamegraph.pl / speedscope / inferno consume.
  std::size_t start = 0;
  int checked = 0;
  while (start < folded.size()) {
    std::size_t end = folded.find('\n', start);
    if (end == std::string::npos) end = folded.size();
    const std::string line = folded.substr(start, end - start);
    start = end + 1;
    if (line.empty()) continue;
    const std::size_t sp = line.rfind(' ');
    ASSERT_NE(sp, std::string::npos) << line;
    const std::string stack = line.substr(0, sp);
    const std::string weight = line.substr(sp + 1);
    EXPECT_FALSE(weight.empty());
    EXPECT_EQ(weight.find_first_not_of("0123456789"), std::string::npos)
        << line;
    EXPECT_NE(stack.find(';'), std::string::npos) << line;
    EXPECT_EQ(stack.rfind("snort_lite;entry ", 0), 0u) << line;
    ++checked;
  }
  EXPECT_GT(checked, 0);
}

// ---- determinism and non-interference ------------------------------------

TEST(Provenance, JsonByteIdenticalAcrossJobsWidthsOnFullCorpus) {
  for (const auto& e : nfs::corpus()) {
    const std::string name(e.name);
    const auto r1 = run_corpus_nf(name, 1);
    const auto r4 = run_corpus_nf(name, 4);
    EXPECT_EQ(obs::to_json(r1.provenance), obs::to_json(r4.provenance))
        << "provenance JSON differs between jobs widths for " << name;
    // And collecting provenance never changes the model itself.
    EXPECT_EQ(model::to_text(r1.model), model::to_text(r4.model))
        << "model bytes differ between jobs widths for " << name;
  }
}

// ---- solver-effort attribution -------------------------------------------

TEST(Provenance, SolverTimeAccountingIsSane) {
  const auto r = run_corpus_nf("snort_lite", 1);
  const obs::ModelProvenance& p = r.provenance;
  const double accounted = p.solver_time_accounted();
  EXPECT_GE(accounted, 0.0);
  EXPECT_LE(accounted, 1.0);
#if NFACTOR_OBS_ENABLED
  // Acceptance: >= 95% of measured solver time lands on surviving rules
  // (the continuation-partition attribution is exact for a complete,
  // un-capped run like snort_lite).
  EXPECT_GT(p.total_solver_ns, 0u);
  EXPECT_GE(accounted, 0.95);
  std::uint64_t queries = 0;
  for (const auto& rule : p.rules) queries += rule.solver_queries;
  EXPECT_GT(queries, 0u);
  EXPECT_LE(queries, p.total_solver_queries);
#else
  // Kill switch off: the hot path collects nothing, the aggregation API
  // still works, and "nothing measured" reads as fully accounted.
  EXPECT_EQ(p.total_solver_ns, 0u);
  EXPECT_EQ(accounted, 1.0);
  for (const auto& rule : p.rules) {
    EXPECT_EQ(rule.solver_queries, 0u);
    EXPECT_EQ(rule.solver_ns, 0u);
    EXPECT_EQ(rule.exec_ns, 0u);
  }
#endif
}

// ---- divergence attribution (the oracle's raw material) -------------------

TEST(Provenance, DifferentialTestRecordsFirstMismatchEntry) {
  auto r = run_corpus_nf("l2_switch", 1);
  netsim::PacketGen pgen(7);
  auto packets = pgen.batch(100);
  const auto edges = netsim::PacketGen::edge_cases();
  packets.insert(packets.end(), edges.begin(), edges.end());

  // A healthy model records no mismatch info.
  const auto clean =
      verify::differential_test(*r.module, r.cats, r.model, packets);
  EXPECT_TRUE(clean.ok());
  EXPECT_FALSE(clean.has_first_mismatch);

  // Sabotage the model: turn every send rule into a drop. The first
  // diverging packet matches one of them, and the mismatch record must
  // name it so the oracle can hand its provenance (source lines) to
  // the fuzzer.
  model::Model broken = r.model;
  std::vector<int> sabotaged;
  for (std::size_t i = 0; i < broken.entries.size(); ++i) {
    if (!broken.entries[i].is_drop()) {
      sabotaged.push_back(static_cast<int>(i));
      broken.entries[i].flow_action.clear();
    }
  }
  ASSERT_FALSE(sabotaged.empty()) << "corpus NF lost its send rules";
  const auto diff =
      verify::differential_test(*r.module, r.cats, broken, packets);
  ASSERT_GT(diff.mismatches, 0)
      << "packet batch never hit a sabotaged rule";
  ASSERT_TRUE(diff.has_first_mismatch);
  EXPECT_TRUE(std::find(sabotaged.begin(), sabotaged.end(),
                        diff.first_mismatch_entry) != sabotaged.end())
      << "first mismatch names entry " << diff.first_mismatch_entry;
  EXPECT_FALSE(diff.first_mismatch_packet.empty());
  // And the named entry's provenance does carry source lines to report.
  const auto& rule =
      r.provenance.rules[static_cast<std::size_t>(diff.first_mismatch_entry)];
  EXPECT_FALSE(rule.lines.empty());
}

// ---- explain renderer ------------------------------------------------------

TEST(Provenance, ExplainListsEveryRuleAndAnswersQueries) {
  const auto r = run_corpus_nf("snort_lite", 1);
  const obs::ModelProvenance& p = r.provenance;

  const std::string all = obs::explain(p);
  for (std::size_t i = 0; i < p.rules.size(); ++i) {
    EXPECT_NE(all.find("rule " + std::to_string(i) + ":"), std::string::npos);
  }
  EXPECT_NE(all.find("solver accounting:"), std::string::npos);

  const std::string one = obs::explain(p, "0");
  EXPECT_NE(one.find("rule 0"), std::string::npos);
  EXPECT_NE(one.find("statements:"), std::string::npos);
  EXPECT_NE(one.find("decision key:"), std::string::npos);

  ASSERT_FALSE(p.rules[0].lines.empty());
  const std::string by_line =
      obs::explain(p, "L" + std::to_string(p.rules[0].lines[0]));
  EXPECT_NE(by_line.find("rule 0"), std::string::npos);

  EXPECT_NE(obs::explain(p, "99999").find("out of range"), std::string::npos);
  EXPECT_NE(obs::explain(p, "bogus").find("unknown query"), std::string::npos);
}

}  // namespace
}  // namespace nfactor
