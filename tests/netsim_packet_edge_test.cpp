// Boundary-value packets (netsim::PacketGen::edge_cases()): pins what
// each edge packet looks like, and — through a small NF that branches on
// exactly those boundaries — that the concrete runtime and the
// synthesized model route every one of them identically. The fuzzing
// oracle appends this same set to every differential batch.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>

#include "model/interp.h"
#include "netsim/packet_gen.h"
#include "nfactor/pipeline.h"
#include "runtime/interp.h"
#include "verify/equivalence.h"

namespace nfactor {
namespace {

using netsim::Packet;

std::vector<Packet> edges() { return netsim::PacketGen::edge_cases(); }

TEST(PacketEdgeCases, CoversTheDocumentedBoundaries) {
  const auto e = edges();
  ASSERT_GE(e.size(), 9u);

  const auto any = [&](auto pred) { return std::any_of(e.begin(), e.end(), pred); };
  EXPECT_TRUE(any([](const Packet& p) { return p.sport == 0; }));
  EXPECT_TRUE(any([](const Packet& p) { return p.dport == 0; }));
  EXPECT_TRUE(any([](const Packet& p) {
    return p.sport == 65535 && p.dport == 65535;
  }));
  EXPECT_TRUE(any([](const Packet& p) { return p.payload.empty(); }));
  EXPECT_TRUE(any([](const Packet& p) { return p.payload.size() >= 1400; }));
  EXPECT_TRUE(any([](const Packet& p) { return p.ip_ttl == 1; }));
  EXPECT_TRUE(any([](const Packet& p) { return p.ip_ttl == 255; }));
  EXPECT_TRUE(any([](const Packet& p) {
    return p.is_tcp() && p.has_flag(netsim::kFin) && p.has_flag(netsim::kSyn) &&
           p.has_flag(netsim::kRst) && p.has_flag(netsim::kPsh) &&
           p.has_flag(netsim::kAck) && p.has_flag(netsim::kUrg);
  }));
  EXPECT_TRUE(any([](const Packet& p) {
    return p.is_udp() && p.tcp_flags == 0 && p.dport == 0;
  }));
}

TEST(PacketEdgeCases, IsDeterministic) {
  EXPECT_EQ(edges(), edges());
}

TEST(PacketEdgeCases, EveryEdgePacketRoundTripsThroughTheWireCodec) {
  for (const auto& p : edges()) {
    const auto wire = netsim::encode(p);
    const auto back = netsim::decode(wire);
    ASSERT_TRUE(back.has_value()) << netsim::to_string(p);
    EXPECT_EQ(back->sport, p.sport);
    EXPECT_EQ(back->dport, p.dport);
    EXPECT_EQ(back->ip_ttl, p.ip_ttl);
    EXPECT_EQ(back->payload, p.payload) << netsim::to_string(p);
  }
}

// An NF that branches on exactly the boundary axes: port 0, port 65535,
// zero-length payload, extreme TTLs. Each arm routes to a distinct port
// so a wrong branch in either interpreter is a visible routing change.
constexpr const char* kBoundaryNf = R"(var st0 = 0;
def main() {
  while (true) {
    pkt = recv(0);
    if (pkt.sport == 0 || pkt.dport == 0) {
      st0 = st0 + 1;
      send(pkt, 2);
      return;
    }
    if (pkt.sport == 65535 && pkt.dport == 65535) {
      send(pkt, 3);
      return;
    }
    if (pkt.len == 0) {
      send(pkt, 4);
      return;
    }
    if (pkt.ip_ttl == 255 || pkt.ip_ttl == 1) {
      pkt.ip_ttl = 64;
      send(pkt, 5);
      return;
    }
    send(pkt, 1);
  }
}
)";

TEST(PacketEdgeCases, BothInterpretersRouteEveryEdgePacketIdentically) {
  const auto r = pipeline::run_source(kBoundaryNf, "boundary");
  ASSERT_FALSE(r.degraded());

  runtime::Interpreter runtime(*r.module);
  model::ModelInterpreter model(r.model, model::initial_store(*r.module));

  for (const auto& pkt : edges()) {
    const auto rt = runtime.process(pkt);
    const auto md = model.process(pkt);
    SCOPED_TRACE(netsim::to_string(pkt));
    ASSERT_EQ(rt.sent.size(), 1u);
    ASSERT_EQ(md.sent.size(), 1u);
    EXPECT_EQ(rt.sent[0].second, md.sent[0].second);
    EXPECT_EQ(rt.sent[0].first, md.sent[0].first)
        << "header rewrite differs between interpreters";
  }

  // And the exact routing both interpreters agreed on, per boundary.
  runtime::Interpreter fresh(*r.module);
  const auto port_of = [&](const Packet& p) {
    const auto out = fresh.process(p);
    return out.sent.empty() ? -1 : out.sent[0].second;
  };
  const auto e = edges();
  EXPECT_EQ(port_of(e[0]), 2);  // sport 0
  EXPECT_EQ(port_of(e[1]), 2);  // dport 0
  EXPECT_EQ(port_of(e[2]), 3);  // both ports 65535
  EXPECT_EQ(port_of(e[3]), 4);  // zero-length payload
}

TEST(PacketEdgeCases, DifferentialTestOverEdgeAndRandomBatches) {
  const auto r = pipeline::run_source(kBoundaryNf, "boundary");
  auto packets = edges();
  netsim::GenConfig cfg;
  cfg.udp_fraction = 0.3;
  const auto random = netsim::PacketGen(424242, cfg).batch(200);
  packets.insert(packets.end(), random.begin(), random.end());
  const auto diff =
      verify::differential_test(*r.module, r.cats, r.model, packets);
  EXPECT_EQ(diff.mismatches, 0)
      << (diff.details.empty() ? "" : diff.details[0]);
}

}  // namespace
}  // namespace nfactor
