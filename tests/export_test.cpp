// FSM extraction, SEFL export, and Graphviz exports.
#include <gtest/gtest.h>

#include "analysis/dot.h"
#include "ir/dot.h"
#include "model/fsm.h"
#include "model/sefl_export.h"
#include "nfactor/pipeline.h"
#include "nfs/corpus.h"

namespace nfactor {
namespace {

pipeline::PipelineResult run_nf(const char* name) {
  return pipeline::run_source(nfs::find(name).source, name);
}

// ---------------------------------------------------------------------------
// FSM extraction (§2.4)
// ---------------------------------------------------------------------------

TEST(Fsm, BalanceTcpStateMachineHasHandshakeChain) {
  const auto r = run_nf("balance");
  const auto fsm = model::extract_fsm(r.model, "tcp_st");
  ASSERT_GE(fsm.states.size(), 3u);

  auto has_transition = [&](const std::string& from, const std::string& to) {
    const int f = fsm.state_index(from);
    const int t = fsm.state_index(to);
    if (f < 0 || t < 0) return false;
    for (const auto& tr : fsm.transitions) {
      if (tr.from == f && tr.to == t) return true;
    }
    return false;
  };

  // SYN: no prior connection -> state 1. SYN-ACK: 1 -> 2. ACK: 2 -> 3.
  // RST: present -> 0.
  EXPECT_TRUE(has_transition("*", "== 1") ||
              has_transition("absent", "== 1"));
  EXPECT_TRUE(has_transition("== 1", "== 2"));
  EXPECT_TRUE(has_transition("== 2", "== 3"));
  EXPECT_TRUE(has_transition("present", "== 0"));
}

TEST(Fsm, EstablishedDataIsForwardingSelfLoop) {
  const auto r = run_nf("balance");
  const auto fsm = model::extract_fsm(r.model, "tcp_st");
  const int established = fsm.state_index("== 3");
  ASSERT_GE(established, 0);
  bool self_forward = false;
  for (const auto& t : fsm.transitions) {
    if (t.from == established && t.to == established && t.forwards) {
      self_forward = true;
    }
  }
  EXPECT_TRUE(self_forward);
}

TEST(Fsm, FirewallConnectionLifecycle) {
  const auto r = run_nf("firewall");
  const auto fsm = model::extract_fsm(r.model, "conns");
  // LAN->WAN installs ==1; RST tears down to ==0.
  EXPECT_GE(fsm.state_index("== 1"), 0);
  bool install = false, teardown = false;
  for (const auto& t : fsm.transitions) {
    if (fsm.states[static_cast<std::size_t>(t.to)] == "== 1") install = true;
    if (fsm.states[static_cast<std::size_t>(t.to)] == "== 0") teardown = true;
  }
  EXPECT_TRUE(install);
  EXPECT_TRUE(teardown);
}

TEST(Fsm, ScalarStateVariableSupported) {
  const auto r = run_nf("lb");
  const auto fsm = model::extract_fsm(r.model, "rr_idx");
  // The RR entry updates rr_idx as a function of its previous value.
  bool fprev = false;
  for (const auto& t : fsm.transitions) {
    if (fsm.states[static_cast<std::size_t>(t.to)] == "f(prev)") fprev = true;
  }
  EXPECT_TRUE(fprev);
}

TEST(Fsm, UnknownVariableYieldsEmptyFsm) {
  const auto r = run_nf("lb");
  const auto fsm = model::extract_fsm(r.model, "no_such_state");
  EXPECT_TRUE(fsm.transitions.empty());
}

TEST(Fsm, DotOutputWellFormed) {
  const auto r = run_nf("balance");
  const auto fsm = model::extract_fsm(r.model, "tcp_st");
  const std::string dot = fsm.to_dot();
  EXPECT_EQ(dot.find("digraph"), 0u);
  EXPECT_NE(dot.find("rankdir=LR"), std::string::npos);
  EXPECT_EQ(std::count(dot.begin(), dot.end(), '{'),
            std::count(dot.begin(), dot.end(), '}'));
  for (std::size_t i = 0; i < fsm.states.size(); ++i) {
    EXPECT_NE(dot.find("s" + std::to_string(i) + " ["), std::string::npos);
  }
}

TEST(Fsm, TextOutputListsTransitions) {
  const auto r = run_nf("firewall");
  const auto fsm = model::extract_fsm(r.model, "conns");
  const std::string text = fsm.to_text();
  EXPECT_NE(text.find("FSM over 'conns'"), std::string::npos);
  EXPECT_NE(text.find("-->"), std::string::npos);
}

// ---------------------------------------------------------------------------
// SEFL export (§6 future work)
// ---------------------------------------------------------------------------

TEST(Sefl, ExportsEveryEntry) {
  const auto r = run_nf("lb");
  const std::string sefl = model::to_sefl(r.model);
  for (std::size_t i = 0; i < r.model.entries.size(); ++i) {
    EXPECT_NE(sefl.find("// entry " + std::to_string(i)), std::string::npos);
  }
  EXPECT_NE(sefl.find("InstructionBlock("), std::string::npos);
  EXPECT_NE(sefl.find("Otherwise ( Fail(\"default drop\") )"),
            std::string::npos);
}

TEST(Sefl, UsesConstrainAssignForwardFail) {
  const auto r = run_nf("firewall");
  const std::string sefl = model::to_sefl(r.model);
  EXPECT_NE(sefl.find("Constrain("), std::string::npos);
  EXPECT_NE(sefl.find("Assign("), std::string::npos);
  EXPECT_NE(sefl.find("Forward("), std::string::npos);
  EXPECT_NE(sefl.find("Fail("), std::string::npos);
}

TEST(Sefl, DeclaresStateAndConfigVariables) {
  const auto r = run_nf("nat");
  const std::string sefl = model::to_sefl(r.model);
  EXPECT_NE(sefl.find("state variables:"), std::string::npos);
  EXPECT_NE(sefl.find("nat_out"), std::string::npos);
  EXPECT_NE(sefl.find("EXT_IP"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Graphviz exports
// ---------------------------------------------------------------------------

TEST(Dot, CfgExportCoversAllNodesAndEdges) {
  const auto r = run_nf("nat");
  const std::string dot = ir::to_dot(r.module->body, "nat");
  for (const auto& n : r.module->body.nodes) {
    EXPECT_NE(dot.find("n" + std::to_string(n->id) + " ["), std::string::npos);
  }
  EXPECT_NE(dot.find("[label=\"T\"]"), std::string::npos);
  EXPECT_NE(dot.find("[label=\"F\"]"), std::string::npos);
  EXPECT_EQ(std::count(dot.begin(), dot.end(), '{'),
            std::count(dot.begin(), dot.end(), '}'));
}

TEST(Dot, CfgHighlightMarksSlice) {
  const auto r = run_nf("nat");
  const std::string dot = ir::to_dot(r.module->body, "nat", r.union_slice);
  EXPECT_NE(dot.find("fillcolor=lightyellow"), std::string::npos);
}

TEST(Dot, PdgExportHasDataAndControlEdges) {
  const auto r = run_nf("nat");
  const std::string dot = analysis::to_dot(*r.pdg, "nat-pdg");
  EXPECT_NE(dot.find("color=blue"), std::string::npos);   // data edges
  EXPECT_NE(dot.find("color=red"), std::string::npos);    // control edges
  EXPECT_EQ(std::count(dot.begin(), dot.end(), '{'),
            std::count(dot.begin(), dot.end(), '}'));
}

}  // namespace
}  // namespace nfactor
