#include "netsim/trace.h"

#include <gtest/gtest.h>

#include <fstream>

#include "netsim/packet_gen.h"
#include "runtime/value.h"

namespace nfactor::netsim {
namespace {

std::string tmp_path(const char* name) {
  return ::testing::TempDir() + "/" + name;
}

TEST(TraceFile, RoundTripsPacketsAndPorts) {
  PacketGen gen(11);
  auto packets = gen.batch(64);
  for (std::size_t i = 0; i < packets.size(); ++i) {
    packets[i].in_port = static_cast<int>(i % 4);
  }
  const std::string path = tmp_path("roundtrip.nftr");
  write_trace(path, packets);
  const auto back = read_trace(path);
  ASSERT_EQ(back.size(), packets.size());
  for (std::size_t i = 0; i < packets.size(); ++i) {
    EXPECT_EQ(back[i], packets[i]) << i;
    EXPECT_EQ(back[i].in_port, packets[i].in_port) << i;
  }
}

TEST(TraceFile, EmptyTraceIsValid) {
  const std::string path = tmp_path("empty.nftr");
  write_trace(path, {});
  EXPECT_TRUE(read_trace(path).empty());
}

TEST(TraceFile, RejectsMissingFile) {
  EXPECT_THROW(read_trace(tmp_path("does_not_exist.nftr")),
               std::runtime_error);
}

TEST(TraceFile, RejectsBadMagic) {
  const std::string path = tmp_path("badmagic.nftr");
  std::ofstream(path, std::ios::binary) << "JUNKJUNKJUNK";
  EXPECT_THROW(read_trace(path), std::runtime_error);
}

TEST(TraceFile, RejectsTruncatedFrame) {
  PacketGen gen(3);
  const auto packets = gen.batch(4);
  const std::string path = tmp_path("trunc.nftr");
  write_trace(path, packets);
  // Chop the tail off.
  std::ifstream in(path, std::ios::binary);
  std::string data((std::istreambuf_iterator<char>(in)),
                   std::istreambuf_iterator<char>());
  in.close();
  std::ofstream(path, std::ios::binary | std::ios::trunc)
      << data.substr(0, data.size() - 9);
  EXPECT_THROW(read_trace(path), std::runtime_error);
}

TEST(TraceFile, RejectsCorruptedFrameChecksum) {
  PacketGen gen(4);
  const auto packets = gen.batch(2);
  const std::string path = tmp_path("corrupt.nftr");
  write_trace(path, packets);
  std::fstream f(path, std::ios::binary | std::ios::in | std::ios::out);
  f.seekp(-3, std::ios::end);  // flip a payload/transport byte
  char c;
  f.seekg(-3, std::ios::end);
  f.get(c);
  f.seekp(-3, std::ios::end);
  f.put(static_cast<char>(c ^ 0x5A));
  f.close();
  EXPECT_THROW(read_trace(path), std::runtime_error);
}

TEST(EthFields, DslVisibleAsIntegers) {
  Packet p;
  p.eth_src = {0x02, 0x00, 0x00, 0x00, 0x00, 0xAB};
  EXPECT_EQ(runtime::get_packet_field(p, "eth_src"), 0x020000000000LL + 0xAB);
  runtime::set_packet_field(p, "eth_dst", 0x0A0B0C0D0E0FLL);
  EXPECT_EQ(p.eth_dst, (MacAddr{0x0A, 0x0B, 0x0C, 0x0D, 0x0E, 0x0F}));
  EXPECT_EQ(runtime::get_packet_field(p, "eth_dst"), 0x0A0B0C0D0E0FLL);
}

}  // namespace
}  // namespace nfactor::netsim
