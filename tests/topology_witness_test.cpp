// Corpus-wide differential replay: 2- and 3-hop chains over the bundled
// NF corpus. For every SAT reachability verdict, every path that
// materializes into a concrete witness must replay with the SAME
// per-hop verdicts through the three independent backends — the model
// interpreter, the netsim wire codec, and the compiled dataplane engine
// (replay_witness enforces entry, emission-vector, port, and wire-byte
// agreement at every hop; any divergence is a differential bug in one
// of them). UNSAT verdicts must never produce a witness.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "tests/topology_test_util.h"
#include "verify/topology.h"
#include "verify/witness.h"

namespace nfactor::verify {
namespace {

using testutil::corpus_models;
using testutil::parse_chain;

/// NFs whose simplified model forwards some packet on a fresh (empty)
/// state store — 2-hop chains over these must yield a replayed witness.
const std::vector<std::string>& fresh_forwarders() {
  static const std::vector<std::string> nfs = {
      "firewall", "nat", "monitor", "snort_lite", "heavy_hitter", "synflood"};
  return nfs;
}

/// Run "reach in out" over the chain and check the differential
/// contract on every path; returns whether some witness replayed.
bool check_chain(const std::vector<std::string>& nfs,
                 const std::string& where = "") {
  const Topology topo = parse_chain(nfs);
  EXPECT_TRUE(topo.validate().empty());
  const Query q =
      parse_query("reach in out" + (where.empty() ? "" : " where " + where));
  QueryOptions opts;
  opts.max_hops = static_cast<int>(nfs.size()) + 1;
  const QueryResult result = run_query(topo, q, opts);

  if (!result.sat) {
    // UNSAT => no evidence paths, and find_witness must agree.
    EXPECT_TRUE(result.paths.empty());
    EXPECT_FALSE(find_witness(topo, result).has_value());
    return false;
  }

  bool any_replayed = false;
  for (const TopoPath& path : result.paths) {
    const auto witness = materialize_witness(topo, q, path);
    if (!witness) continue;  // state-dependent / non-invertible: allowed
    // Differential oracle: a materialized witness must replay with
    // identical per-hop verdicts across all three backends.
    const ReplayReport replay = replay_witness(topo, *witness);
    EXPECT_TRUE(replay.consistent)
        << "chain " << testutil::chain_topo(nfs) << "diverged: "
        << replay.detail;
    EXPECT_EQ(replay.hops.size(), witness->hops.size());
    EXPECT_EQ(witness->hops.size(), path.hops.size());
    any_replayed = true;
  }
  return any_replayed;
}

TEST(TopologyWitness, AllFreshForwarderPairsReplayConsistently) {
  for (const auto& a : fresh_forwarders()) {
    for (const auto& b : fresh_forwarders()) {
      SCOPED_TRACE(a + " -> " + b);
      EXPECT_TRUE(check_chain({a, b}));
    }
  }
}

TEST(TopologyWitness, DpiAndLbChainsReplayConsistently) {
  // dpi forwards benign TCP on port 1; lb forwards dport-80 flows to a
  // backend on port 0 (rewriting the destination). Wildcard chain edges
  // route either port into the next hop.
  EXPECT_TRUE(check_chain({"firewall", "dpi"}));
  EXPECT_TRUE(check_chain({"dpi", "monitor"}));
  EXPECT_TRUE(check_chain({"firewall", "lb"}, "pkt.dport == 80"));
  EXPECT_TRUE(check_chain({"lb", "monitor"}, "pkt.dport == 80"));
}

TEST(TopologyWitness, ThreeHopChainsReplayConsistently) {
  EXPECT_TRUE(check_chain({"firewall", "nat", "monitor"}));
  EXPECT_TRUE(check_chain({"firewall", "synflood", "heavy_hitter"}));
  EXPECT_TRUE(check_chain({"nat", "snort_lite", "monitor"}));
  // NAT preserves dport, so the lb still sees the port-80 constraint.
  EXPECT_TRUE(check_chain({"firewall", "nat", "lb"}, "pkt.dport == 80"));
}

TEST(TopologyWitness, StateDependentPathsYieldNoWitnessNotWrongness) {
  // l2_switch floods unknown destinations through a symbolic map-lookup
  // port: on fresh state nothing concrete materializes, but the checks
  // must stay sound (no bogus witness, no crash).
  check_chain({"l2_switch"});
  check_chain({"l2_switch", "monitor"});
}

TEST(TopologyWitness, RewritesSurviveTheChainInTheReplay) {
  // NAT rewrites the source address: the witness replay must show the
  // rewritten header leaving the chain, byte-for-byte in all backends.
  const Topology topo = parse_chain({"nat", "monitor"});
  const Query q = parse_query("reach in out");
  const QueryResult result = run_query(topo, q, {});
  ASSERT_TRUE(result.sat);
  ReplayReport replay;
  const auto witness = find_witness(topo, result, &replay);
  ASSERT_TRUE(witness.has_value());
  ASSERT_TRUE(replay.consistent) << replay.detail;
  ASSERT_EQ(replay.hops.size(), 2u);
  // Hop 0 is the NAT: its emitted packet differs from its input in the
  // translated source, and that exact packet entered the monitor.
  const auto& nat_hop = replay.hops[0];
  const auto& mon_hop = replay.hops[1];
  EXPECT_NE(nat_hop.output.ip_src, nat_hop.input.ip_src);
  EXPECT_EQ(mon_hop.input.ip_src, nat_hop.output.ip_src);
  EXPECT_EQ(replay.egress.ip_src, nat_hop.output.ip_src);
}

}  // namespace
}  // namespace nfactor::verify
