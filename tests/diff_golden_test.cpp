// End-to-end acceptance tests for nf-diff (docs/diffing.md): for each
// corpus NF × fault class, a committed mutant fixture under
// tests/fixtures/diff/ is diffed against its reference and the tool
// must (a) report a non-empty semantic diff, (b) place the true faulty
// line in the top-3 suspects of some delta, (c) find an oracle-validated
// repair that restores model equivalence, and (d) emit `--diff-json`
// output byte-identical to the committed golden — and byte-identical
// across --jobs widths.
//
// The fixtures themselves are reproducible: each is exactly
// `fuzz::mutate(reference, cls, seed)` for the (cls, seed) recorded in
// kCases, and the seed-stability test below re-derives them on every
// run. Regenerate fixtures + goldens after an intentional change with
//   NFACTOR_UPDATE_GOLDEN=1 ctest -R DiffGolden
// and review the diff like any other source change.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#include "diff/diff.h"
#include "fuzz/mutate.h"
#include "nfs/corpus.h"

#ifndef NFACTOR_SOURCE_DIR
#error "tests/CMakeLists.txt must define NFACTOR_SOURCE_DIR"
#endif

namespace nfactor {
namespace {

struct DiffCase {
  const char* nf;        ///< bundled corpus NF name (the reference side)
  fuzz::FaultClass cls;  ///< injected fault class
  std::uint64_t seed;    ///< fuzz::mutate seed that produced the fixture
  int faulty_line;       ///< true fault line (must rank in top-3 suspects)
};

// One fixture per corpus NF × fault class. Seeds were chosen as the
// first whose mutant yields a non-empty diff; the localization and
// repair requirements are then *asserted*, not assumed, below.
constexpr DiffCase kCases[] = {
    {"nat", fuzz::FaultClass::kWrongConstant, 1, 22},
    {"nat", fuzz::FaultClass::kInvertedGuard, 2, 31},
    {"nat", fuzz::FaultClass::kMissingStateUpdate, 1, 21},
    {"firewall", fuzz::FaultClass::kWrongConstant, 1, 16},
    {"firewall", fuzz::FaultClass::kInvertedGuard, 1, 22},
    {"firewall", fuzz::FaultClass::kMissingStateUpdate, 5, 16},
    {"heavy_hitter", fuzz::FaultClass::kWrongConstant, 1, 17},
    {"heavy_hitter", fuzz::FaultClass::kInvertedGuard, 1, 21},
    {"heavy_hitter", fuzz::FaultClass::kMissingStateUpdate, 2, 20},
};

std::string class_slug(fuzz::FaultClass cls) {
  switch (cls) {
    case fuzz::FaultClass::kWrongConstant: return "wrong_constant";
    case fuzz::FaultClass::kInvertedGuard: return "inverted_guard";
    case fuzz::FaultClass::kMissingStateUpdate: return "missing_state_update";
  }
  return "unknown";
}

std::string fixture_path(const DiffCase& c) {
  return std::string(NFACTOR_SOURCE_DIR) + "/tests/fixtures/diff/" + c.nf +
         "_" + class_slug(c.cls) + ".nf";
}

std::string golden_path(const DiffCase& c) {
  return std::string(NFACTOR_SOURCE_DIR) + "/tests/golden/diff/" + c.nf + "_" +
         class_slug(c.cls) + ".json";
}

std::string read_file(const std::string& path, bool* ok = nullptr) {
  std::ifstream in(path);
  if (ok) *ok = static_cast<bool>(in);
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

bool update_mode() {
  return std::getenv("NFACTOR_UPDATE_GOLDEN") != nullptr;
}

/// The exact diff the golden captures: reference vs fixture, with
/// localization and repair on (nf-diff <ref> <fix> --repair parity).
diff::DiffResult run_case(const DiffCase& c, const std::string& mutant,
                          int jobs = 0) {
  const std::string ref(nfs::find(c.nf).source);
  diff::DiffOptions opts;
  opts.repair = true;
  if (jobs > 0) opts.pipeline.jobs = jobs;
  return diff::diff_sources(ref, c.nf, mutant, std::string(c.nf) + "_mut",
                            opts);
}

class DiffGolden : public ::testing::TestWithParam<DiffCase> {};

TEST_P(DiffGolden, FixtureIsSeedStable) {
  const DiffCase c = GetParam();
  const std::string ref(nfs::find(c.nf).source);
  const auto m = fuzz::mutate(ref, c.cls, c.seed);
  ASSERT_TRUE(m.ok) << "mutate(" << c.nf << ", " << fuzz::to_string(c.cls)
                    << ", " << c.seed << ") found no viable site";
  EXPECT_EQ(m.line, c.faulty_line) << m.description;

  if (update_mode()) {
    std::ofstream out(fixture_path(c));
    ASSERT_TRUE(out) << "cannot write " << fixture_path(c);
    out << m.source;
    return;
  }
  bool ok = false;
  const std::string fixture = read_file(fixture_path(c), &ok);
  ASSERT_TRUE(ok) << "missing fixture " << fixture_path(c)
                  << " (run with NFACTOR_UPDATE_GOLDEN=1 to create)";
  // Byte-identical: the committed fixture is exactly what the public
  // mutate() API reproduces for this (source, class, seed) triple.
  EXPECT_EQ(fixture, m.source);
  // Line-preserving mutation: same line count as the reference.
  EXPECT_EQ(std::count(ref.begin(), ref.end(), '\n'),
            std::count(fixture.begin(), fixture.end(), '\n'));
}

TEST_P(DiffGolden, DiffLocalizeRepairAndGolden) {
  const DiffCase c = GetParam();
  bool ok = false;
  std::string mutant = read_file(fixture_path(c), &ok);
  if (!ok) {
    ASSERT_TRUE(update_mode())
        << "missing fixture " << fixture_path(c)
        << " (run with NFACTOR_UPDATE_GOLDEN=1 to create)";
    mutant = fuzz::mutate(std::string(nfs::find(c.nf).source), c.cls, c.seed)
                 .source;
  }
  const diff::DiffResult r = run_case(c, mutant);

  // (a) the injected fault must surface as a semantic diff.
  ASSERT_FALSE(r.equivalent());
  ASSERT_GT(r.diff.delta_count(), 0u);
  EXPECT_FALSE(r.degraded());

  // (b) the true faulty line ranks in the top-3 suspects of some delta.
  bool in_top3 = false;
  for (const auto& t : r.diff.tables) {
    for (const auto& d : t.deltas) {
      for (const auto& s : d.suspects) {
        if (s.line == c.faulty_line) in_top3 = true;
      }
    }
  }
  EXPECT_TRUE(in_top3) << "line " << c.faulty_line
                       << " not in top-3 suspects:\n"
                       << diff::to_text(r);

  // (c) the repair search restores model equivalence (validated against
  // the differential oracle's packet batch inside repair_search).
  EXPECT_TRUE(r.repair.attempted);
  EXPECT_TRUE(r.repair.repaired) << "no repair found after "
                                 << r.repair.candidates_tried
                                 << " candidates";
  if (r.repair.repaired) {
    const std::string ref(nfs::find(c.nf).source);
    diff::DiffOptions verify_opts;
    const auto again = diff::diff_sources(ref, c.nf, r.repair.patched_source,
                                          "patched", verify_opts);
    EXPECT_TRUE(again.equivalent())
        << "patched source is not equivalent to the reference";
  }

  // (d) the deterministic JSON matches the committed golden.
  const std::string json = diff::to_json(r);
  if (update_mode()) {
    std::ofstream out(golden_path(c));
    ASSERT_TRUE(out) << "cannot write " << golden_path(c);
    out << json;
    return;
  }
  const std::string expected = read_file(golden_path(c), &ok);
  ASSERT_TRUE(ok) << "missing golden " << golden_path(c)
                  << " (run with NFACTOR_UPDATE_GOLDEN=1 to create)";
  EXPECT_EQ(expected, json) << "golden mismatch for " << golden_path(c);
}

std::string case_name(const ::testing::TestParamInfo<DiffCase>& info) {
  return std::string(info.param.nf) + "_" + class_slug(info.param.cls);
}

INSTANTIATE_TEST_SUITE_P(Corpus, DiffGolden, ::testing::ValuesIn(kCases),
                         case_name);

// The nfactor-diff-v1 JSON must be byte-identical across --jobs widths:
// the models' deterministic cores are schedule-independent and the
// differ adds nothing schedule-dependent. (CI re-checks this through
// the nf-diff binary itself.)
TEST(DiffGoldenDeterminism, JsonIdenticalAcrossJobs) {
  const DiffCase c = kCases[0];  // nat / wrong_constant
  bool ok = false;
  const std::string mutant = read_file(fixture_path(c), &ok);
  if (!ok) GTEST_SKIP() << "fixture not yet generated";
  const std::string serial = diff::to_json(run_case(c, mutant, 1));
  const std::string parallel = diff::to_json(run_case(c, mutant, 4));
  EXPECT_EQ(serial, parallel);
}

// Sanity: a self-diff of every bundled NF is reported equivalent with
// zero deltas (exact-signature matching, no solver needed).
TEST(DiffGoldenDeterminism, SelfDiffIsEquivalent) {
  for (const auto& e : nfs::corpus()) {
    const std::string src(e.source);
    const auto r = diff::diff_sources(src, std::string(e.name) + " (old)", src,
                                      std::string(e.name) + " (new)");
    EXPECT_TRUE(r.equivalent()) << e.name;
    EXPECT_EQ(r.diff.solver_queries, 0u) << e.name;
  }
}

}  // namespace
}  // namespace nfactor
