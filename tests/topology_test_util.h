// Shared helpers for the topology-verification test suite: a corpus
// model cache (stable pointers for Topology's borrowed model/module
// references) and small .topo builders.
#pragma once

#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "nfactor/pipeline.h"
#include "nfs/corpus.h"
#include "verify/topology.h"

namespace nfactor::testutil {

/// Synthesizes each corpus NF at most once per process, with the
/// production pipeline settings nf-synth and nf-verify use (simplify +
/// config folding), and hands out stable model/module pointers.
class CorpusModels {
 public:
  verify::NodeModels resolve(const std::string& nf) {
    auto it = cache_.find(nf);
    if (it == cache_.end()) {
      pipeline::PipelineOptions opts;
      opts.simplify.enabled = true;
      opts.simplify.fold_config = true;
      auto r = pipeline::run_source(nfs::find(nf).source, nf, opts);
      it = cache_.emplace(nf, std::move(r)).first;
    }
    return {&it->second.model, it->second.module.get()};
  }

  verify::ModelResolver resolver() {
    return [this](const std::string& nf) { return resolve(nf); };
  }

 private:
  std::map<std::string, pipeline::PipelineResult> cache_;
};

/// Process-wide cache so each test binary synthesizes the corpus once.
inline CorpusModels& corpus_models() {
  static CorpusModels models;
  return models;
}

/// A linear chain "in -> nfs[0] -> ... -> nfs[n-1] -> out": every hop's
/// emissions (any port) feed the next instance's port 0; the last
/// instance's emissions exit at `out`. Instance ids are "h0", "h1", ...
inline std::string chain_topo(const std::vector<std::string>& nfs) {
  std::ostringstream os;
  for (std::size_t i = 0; i < nfs.size(); ++i) {
    os << "node h" << i << " " << nfs[i] << "\n";
  }
  os << "ingress in -> h0:0\n";
  for (std::size_t i = 0; i + 1 < nfs.size(); ++i) {
    os << "edge h" << i << ":* -> h" << (i + 1) << ":0\n";
  }
  os << "egress out <- h" << (nfs.size() - 1) << ":*\n";
  return os.str();
}

inline verify::Topology parse_chain(const std::vector<std::string>& nfs) {
  return verify::parse_topology(chain_topo(nfs), corpus_models().resolver());
}

}  // namespace nfactor::testutil
