// Pre-/post-simplify equivalence over the whole corpus:
//  - the core tier (constant folding + pruning with persistents treated
//    as unknown) must leave the synthesized model byte-identical;
//  - the fold_config tier specializes config scalars, so equivalence is
//    checked by substituting the config bindings into the unsimplified
//    path set (verify::compare_action_sets_under_config) and by random
//    differential testing of the specialized model against the
//    unsimplified module's concrete runtime;
//  - at least one NF must show the SE path-count reduction the pass
//    exists for (EXPERIMENTS.md records the full table).
#include <gtest/gtest.h>

#include <string>

#include "ir/lower.h"
#include "lang/parser.h"
#include "lint/simplify.h"
#include "model/model.h"
#include "netsim/packet_gen.h"
#include "nfactor/pipeline.h"
#include "nfs/corpus.h"
#include "tests/test_util.h"
#include "verify/equivalence.h"

namespace nfactor {
namespace {

pipeline::PipelineResult run(const nfs::CorpusEntry& e, bool enabled,
                             bool fold_config) {
  pipeline::PipelineOptions opts;
  opts.simplify.enabled = enabled;
  opts.simplify.fold_config = fold_config;
  return pipeline::run_source(e.source, std::string(e.name), opts);
}

TEST(SimplifyCoreTest, ModelIdenticalOnEveryCorpusNf) {
  for (const auto& e : nfs::corpus()) {
    SCOPED_TRACE(std::string(e.name));
    const auto base = run(e, /*enabled=*/false, /*fold_config=*/false);
    const auto core = run(e, /*enabled=*/true, /*fold_config=*/false);
    EXPECT_EQ(model::to_json(base.model), model::to_json(core.model));
  }
}

TEST(SimplifyFoldConfigTest, ActionSetsEquivalentUnderConfig) {
  for (const auto& e : nfs::corpus()) {
    SCOPED_TRACE(std::string(e.name));
    const auto full = run(e, /*enabled=*/false, /*fold_config=*/false);
    const auto spec = run(e, /*enabled=*/true, /*fold_config=*/true);

    const auto bindings = verify::config_bindings(*full.module);
    const auto cmp = verify::compare_action_sets_under_config(
        full.slice_paths, spec.slice_paths, full.cats, spec.cats, bindings);
    EXPECT_TRUE(cmp.equal())
        << e.name << ": only_in_full=" << cmp.only_in_a.size()
        << " only_in_specialized=" << cmp.only_in_b.size();

    // The specialized run may merge/prune paths but never invent new
    // behaviors, so its path count is bounded by the full run's.
    EXPECT_LE(spec.slice_paths.size(), full.slice_paths.size()) << e.name;
  }
}

TEST(SimplifyFoldConfigTest, SpecializedModelMatchesRuntime) {
  // The specialized model must agree with the *unsimplified* module's
  // concrete runtime packet-for-packet (§5-style differential testing).
  for (const auto& e : nfs::corpus()) {
    SCOPED_TRACE(std::string(e.name));
    const auto full = run(e, /*enabled=*/false, /*fold_config=*/false);
    const auto spec = run(e, /*enabled=*/true, /*fold_config=*/true);

    netsim::PacketGen gen(1234);
    const auto packets = gen.batch(200);
    const auto diff =
        verify::differential_test(*full.module, full.cats, spec.model, packets);
    EXPECT_TRUE(diff.ok())
        << e.name << ": " << diff.mismatches << " mismatches, e.g. "
        << (diff.details.empty() ? "" : diff.details.front());
  }
}

TEST(SimplifyFoldConfigTest, ReducesSePathsSomewhere) {
  // lb's round-robin guard folds under its config, pruning one slice
  // path (5 -> 4). Pinned to catch regressions in the pruner.
  const auto full = run(nfs::find("lb"), false, false);
  const auto spec = run(nfs::find("lb"), true, true);
  EXPECT_GT(spec.simplify_stats.branches_pruned, 0);
  EXPECT_LT(spec.slice_paths.size(), full.slice_paths.size());
}

TEST(SimplifyPassTest, StatsReportedThroughPipeline) {
  const auto spec = run(nfs::find("lb"), true, true);
  EXPECT_TRUE(spec.simplify_stats.changed());
  EXPECT_FALSE(spec.simplify_stats.to_string().empty());
  const auto base = run(nfs::find("lb"), false, false);
  EXPECT_FALSE(base.simplify_stats.changed());
}

TEST(SimplifyPassTest, IdempotentOnFixture) {
  // Second application of the pass finds nothing left to do.
  const std::string src = testutil::nf_body(R"(threshold = 100;
    if (threshold < 50) {
      pkt.ip_ttl = 1;
    }
    send(pkt, OUT);)",
                                            "var OUT = 7;");
  auto m = ir::lower(lang::parse(src, "<test>"));
  lint::SimplifyOptions opts;
  opts.enabled = true;
  opts.fold_config = true;
  const auto first = lint::simplify_module(m, opts);
  EXPECT_TRUE(first.changed());
  EXPECT_GT(first.branches_pruned, 0);
  const auto second = lint::simplify_module(m, opts);
  EXPECT_FALSE(second.changed())
      << "second pass: " << second.to_string();
}

TEST(SimplifyPassTest, DisabledIsANoOp) {
  const std::string src =
      testutil::nf_body("threshold = 1;\n    send(pkt, threshold);");
  auto m = ir::lower(lang::parse(src, "<test>"));
  const auto before = m.body.real_nodes().size();
  const auto stats = lint::simplify_module(m, lint::SimplifyOptions{});
  EXPECT_FALSE(stats.changed());
  EXPECT_EQ(m.body.real_nodes().size(), before);
}

}  // namespace
}  // namespace nfactor
