#include "lang/lexer.h"

#include <gtest/gtest.h>

#include "lang/diagnostics.h"

namespace nfactor::lang {
namespace {

std::vector<Tok> kinds(const std::string& src) {
  std::vector<Tok> out;
  for (const auto& t : lex(src)) out.push_back(t.kind);
  return out;
}

TEST(Lexer, EmptyInputYieldsEof) {
  const auto toks = lex("");
  ASSERT_EQ(toks.size(), 1u);
  EXPECT_EQ(toks[0].kind, Tok::kEof);
}

TEST(Lexer, SkipsWhitespaceAndComments) {
  const auto toks = lex("  # a comment\n\t x # trailing\n");
  ASSERT_EQ(toks.size(), 2u);
  EXPECT_EQ(toks[0].kind, Tok::kIdent);
  EXPECT_EQ(toks[0].text, "x");
}

TEST(Lexer, DecimalAndHexLiterals) {
  const auto toks = lex("0 42 0x1F 0xff");
  EXPECT_EQ(toks[0].value, 0);
  EXPECT_EQ(toks[1].value, 42);
  EXPECT_EQ(toks[2].value, 0x1F);
  EXPECT_EQ(toks[3].value, 0xFF);
}

TEST(Lexer, Ipv4LiteralLexesToBigEndianValue) {
  const auto toks = lex("3.3.3.3 10.0.0.1 255.255.255.0");
  EXPECT_EQ(toks[0].value, 0x03030303);
  EXPECT_EQ(toks[1].value, 0x0A000001);
  EXPECT_EQ(toks[2].value, 0xFFFFFF00);
}

TEST(Lexer, Ipv4OctetRangeChecked) {
  EXPECT_THROW(lex("1.2.3.999"), LexError);
  EXPECT_THROW(lex("1.2.3."), LexError);
}

TEST(Lexer, RangeOperatorIsNotAnIpLiteral) {
  // `0..n` must lex as INT DOTDOT IDENT, not a malformed IP.
  const auto k = kinds("0..n");
  ASSERT_EQ(k.size(), 4u);
  EXPECT_EQ(k[0], Tok::kInt);
  EXPECT_EQ(k[1], Tok::kDotDot);
  EXPECT_EQ(k[2], Tok::kIdent);
}

TEST(Lexer, FieldAccessAfterIdent) {
  const auto k = kinds("pkt.ip_src");
  ASSERT_EQ(k.size(), 4u);
  EXPECT_EQ(k[0], Tok::kIdent);
  EXPECT_EQ(k[1], Tok::kDot);
  EXPECT_EQ(k[2], Tok::kIdent);
}

TEST(Lexer, Keywords) {
  const auto k = kinds("var def if else while for in return break continue true false");
  const std::vector<Tok> want = {
      Tok::kVar, Tok::kDef, Tok::kIf, Tok::kElse, Tok::kWhile, Tok::kFor,
      Tok::kIn, Tok::kReturn, Tok::kBreak, Tok::kContinue, Tok::kTrue,
      Tok::kFalse, Tok::kEof};
  EXPECT_EQ(k, want);
}

TEST(Lexer, KeywordPrefixesAreIdents) {
  const auto toks = lex("iffy variable formal");
  EXPECT_EQ(toks[0].kind, Tok::kIdent);
  EXPECT_EQ(toks[1].kind, Tok::kIdent);
  EXPECT_EQ(toks[2].kind, Tok::kIdent);
}

TEST(Lexer, TwoCharOperators) {
  const auto k = kinds("== != <= >= && || << >> += -= *= %= ..");
  const std::vector<Tok> want = {
      Tok::kEq, Tok::kNe, Tok::kLe, Tok::kGe, Tok::kAndAnd, Tok::kOrOr,
      Tok::kShl, Tok::kShr, Tok::kPlusAssign, Tok::kMinusAssign,
      Tok::kStarAssign, Tok::kPercentAssign, Tok::kDotDot, Tok::kEof};
  EXPECT_EQ(k, want);
}

TEST(Lexer, SingleCharOperators) {
  const auto k = kinds("+ - * / % < > = ! & | ^ ( ) { } [ ] , ; : .");
  const std::vector<Tok> want = {
      Tok::kPlus, Tok::kMinus, Tok::kStar, Tok::kSlash, Tok::kPercent,
      Tok::kLt, Tok::kGt, Tok::kAssign, Tok::kNot, Tok::kAmp, Tok::kPipe,
      Tok::kCaret, Tok::kLParen, Tok::kRParen, Tok::kLBrace, Tok::kRBrace,
      Tok::kLBracket, Tok::kRBracket, Tok::kComma, Tok::kSemi, Tok::kColon,
      Tok::kDot, Tok::kEof};
  EXPECT_EQ(k, want);
}

TEST(Lexer, StringLiteralsWithEscapes) {
  const auto toks = lex(R"("eth0" "a\nb" "q\"q" "back\\slash")");
  EXPECT_EQ(toks[0].text, "eth0");
  EXPECT_EQ(toks[1].text, "a\nb");
  EXPECT_EQ(toks[2].text, "q\"q");
  EXPECT_EQ(toks[3].text, "back\\slash");
}

TEST(Lexer, UnterminatedStringThrows) {
  EXPECT_THROW(lex("\"oops"), LexError);
  EXPECT_THROW(lex("\"oops\n\""), LexError);
}

TEST(Lexer, UnknownEscapeThrows) { EXPECT_THROW(lex(R"("\q")"), LexError); }

TEST(Lexer, UnexpectedCharacterThrows) {
  EXPECT_THROW(lex("@"), LexError);
  EXPECT_THROW(lex("~"), LexError);
}

TEST(Lexer, MalformedHexThrows) { EXPECT_THROW(lex("0x"), LexError); }

TEST(Lexer, TracksLineAndColumn) {
  const auto toks = lex("a\n  b\nccc d");
  EXPECT_EQ(toks[0].loc.line, 1);
  EXPECT_EQ(toks[0].loc.col, 1);
  EXPECT_EQ(toks[1].loc.line, 2);
  EXPECT_EQ(toks[1].loc.col, 3);
  EXPECT_EQ(toks[2].loc.line, 3);
  EXPECT_EQ(toks[3].loc.line, 3);
  EXPECT_EQ(toks[3].loc.col, 5);
}

TEST(Lexer, TokenNamesAreHumanReadable) {
  EXPECT_EQ(token_name(Tok::kEq), "'=='");
  EXPECT_EQ(token_name(Tok::kIdent), "identifier");
  EXPECT_EQ(token_name(Tok::kEof), "end of input");
  // Every token kind has a non-"?" name.
  for (int t = 0; t <= static_cast<int>(Tok::kShr); ++t) {
    EXPECT_NE(token_name(static_cast<Tok>(t)), "?");
  }
}

}  // namespace
}  // namespace nfactor::lang
