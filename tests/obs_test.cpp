// Tests for the obs subsystem: span nesting and ring buffering in the
// tracer, histogram bucketing in the registry, well-formedness of both
// JSON exports (checked with a small structural JSON parser), and the
// compile-time kill switch.
#include <gtest/gtest.h>

#include <cctype>
#include <string>

#include "obs/obs.h"

namespace nfactor::obs {
namespace {

// ---- minimal structural JSON checker --------------------------------------

class JsonChecker {
 public:
  explicit JsonChecker(const std::string& s) : s_(s) {}

  bool valid() {
    skip_ws();
    if (!value()) return false;
    skip_ws();
    return pos_ == s_.size();
  }

 private:
  bool value() {
    if (pos_ >= s_.size()) return false;
    switch (s_[pos_]) {
      case '{':
        return object();
      case '[':
        return array();
      case '"':
        return string();
      case 't':
        return literal("true");
      case 'f':
        return literal("false");
      case 'n':
        return literal("null");
      default:
        return number();
    }
  }

  bool object() {
    ++pos_;  // '{'
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return true;
    }
    while (true) {
      skip_ws();
      if (!string()) return false;
      skip_ws();
      if (peek() != ':') return false;
      ++pos_;
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      if (peek() == '}') {
        ++pos_;
        return true;
      }
      return false;
    }
  }

  bool array() {
    ++pos_;  // '['
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return true;
    }
    while (true) {
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      if (peek() == ']') {
        ++pos_;
        return true;
      }
      return false;
    }
  }

  bool string() {
    if (peek() != '"') return false;
    ++pos_;
    while (pos_ < s_.size() && s_[pos_] != '"') {
      if (s_[pos_] == '\\') {
        ++pos_;
        if (pos_ >= s_.size()) return false;
      }
      ++pos_;
    }
    if (pos_ >= s_.size()) return false;
    ++pos_;
    return true;
  }

  bool number() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    while (pos_ < s_.size() &&
           (std::isdigit(static_cast<unsigned char>(s_[pos_])) != 0 ||
            s_[pos_] == '.' || s_[pos_] == 'e' || s_[pos_] == 'E' ||
            s_[pos_] == '+' || s_[pos_] == '-')) {
      ++pos_;
    }
    return pos_ > start;
  }

  bool literal(const char* lit) {
    const std::size_t n = std::string(lit).size();
    if (s_.compare(pos_, n, lit) != 0) return false;
    pos_ += n;
    return true;
  }

  char peek() const { return pos_ < s_.size() ? s_[pos_] : '\0'; }
  void skip_ws() {
    while (pos_ < s_.size() &&
           std::isspace(static_cast<unsigned char>(s_[pos_])) != 0) {
      ++pos_;
    }
  }

  const std::string& s_;
  std::size_t pos_ = 0;
};

bool is_valid_json(const std::string& s) { return JsonChecker(s).valid(); }

TEST(JsonCheckerSelfTest, AcceptsAndRejects) {
  EXPECT_TRUE(is_valid_json("{}"));
  EXPECT_TRUE(is_valid_json("{\"a\":[1,2.5,-3],\"b\":{\"c\":\"x\\\"y\"}}"));
  EXPECT_FALSE(is_valid_json("{"));
  EXPECT_FALSE(is_valid_json("{\"a\":}"));
  EXPECT_FALSE(is_valid_json("{} trailing"));
}

// ---- tracer ---------------------------------------------------------------

TEST(Tracer, NestedSpansRecordDepthAndOrder) {
  Tracer t;
  {
    Span outer(t, "outer");
    {
      Span inner(t, "inner");
      { Span leaf(t, "leaf"); }
    }
    { Span inner2(t, "inner2"); }
  }
  const auto spans = t.spans();
  ASSERT_EQ(spans.size(), 4u);
  // Records complete innermost-first.
  EXPECT_EQ(spans[0].name, "leaf");
  EXPECT_EQ(spans[0].depth, 2);
  EXPECT_EQ(spans[1].name, "inner");
  EXPECT_EQ(spans[1].depth, 1);
  EXPECT_EQ(spans[2].name, "inner2");
  EXPECT_EQ(spans[2].depth, 1);
  EXPECT_EQ(spans[3].name, "outer");
  EXPECT_EQ(spans[3].depth, 0);
  // Containment: the outer span brackets every inner span.
  for (const auto& s : spans) {
    EXPECT_GE(s.start_ns, spans[3].start_ns);
    EXPECT_LE(s.start_ns + s.dur_ns, spans[3].start_ns + spans[3].dur_ns);
    EXPECT_GE(s.dur_ns, 0);
  }
}

TEST(Tracer, TextTreeIndentsByDepth) {
  Tracer t;
  {
    Span a(t, "alpha");
    Span b(t, "beta");
    (void)a;
    (void)b;
  }
  const std::string tree = t.to_text_tree();
  EXPECT_NE(tree.find("alpha"), std::string::npos);
  EXPECT_NE(tree.find("\n  beta"), std::string::npos);  // depth-1 indent
}

TEST(Tracer, RingEvictsOldestAndCountsDropped) {
  Tracer t(4);
  for (int i = 0; i < 10; ++i) {
    Span s(t, "s" + std::to_string(i));
  }
  EXPECT_EQ(t.size(), 4u);
  EXPECT_EQ(t.dropped(), 6u);
  const auto spans = t.spans();
  ASSERT_EQ(spans.size(), 4u);
  EXPECT_EQ(spans.front().name, "s6");  // oldest surviving
  EXPECT_EQ(spans.back().name, "s9");
}

TEST(Tracer, RingDroppedCountIsExactAcrossMultipleWraps) {
  Tracer t(3);
  EXPECT_EQ(t.dropped(), 0u);
  // Fill exactly to capacity: nothing dropped yet.
  for (int i = 0; i < 3; ++i) {
    Span s(t, "fill" + std::to_string(i));
  }
  EXPECT_EQ(t.size(), 3u);
  EXPECT_EQ(t.dropped(), 0u);
  // Each further span evicts exactly one record; drive the ring through
  // several full wraps and check the count at every step.
  for (int i = 0; i < 3 * 4; ++i) {
    { Span s(t, "wrap" + std::to_string(i)); }
    EXPECT_EQ(t.size(), 3u);
    EXPECT_EQ(t.dropped(), static_cast<std::uint64_t>(i + 1));
  }
  // The survivors are exactly the newest `capacity` spans, in order.
  const auto spans = t.spans();
  ASSERT_EQ(spans.size(), 3u);
  EXPECT_EQ(spans[0].name, "wrap9");
  EXPECT_EQ(spans[1].name, "wrap10");
  EXPECT_EQ(spans[2].name, "wrap11");
  // clear() resets the eviction count too.
  t.clear();
  EXPECT_EQ(t.dropped(), 0u);
}

TEST(Tracer, ChromeJsonStaysWellFormedAfterEviction) {
  Tracer t(2);
  for (int i = 0; i < 7; ++i) {
    // Escaping-hostile names must survive the ring as well.
    Span s(t, "evict\"me\\" + std::to_string(i));
    s.attr("i", static_cast<std::int64_t>(i));
  }
  EXPECT_EQ(t.dropped(), 5u);
  const std::string json = t.to_chrome_json();
  EXPECT_TRUE(is_valid_json(json)) << json;
  // Only the surviving spans are exported — no dangling comma or
  // truncated record where the evicted ones used to be.
  EXPECT_EQ(json.find("evict\\\"me\\\\4"), std::string::npos);
  EXPECT_NE(json.find("evict\\\"me\\\\5"), std::string::npos);
  EXPECT_NE(json.find("evict\\\"me\\\\6"), std::string::npos);
}

TEST(Tracer, AttrsAndCloseMs) {
  Tracer t;
  Span s(t, "work");
  s.attr("k", "v");
  s.attr("n", std::int64_t{42});
  const double ms = s.close_ms();
  EXPECT_GE(ms, 0.0);
  const auto spans = t.spans();
  ASSERT_EQ(spans.size(), 1u);
  // close_ms is exactly the recorded duration — StageTimes-as-view
  // depends on this.
  EXPECT_DOUBLE_EQ(ms, static_cast<double>(spans[0].dur_ns) / 1e6);
  ASSERT_EQ(spans[0].attrs.size(), 2u);
  EXPECT_EQ(spans[0].attrs[0].first, "k");
  EXPECT_EQ(spans[0].attrs[0].second, "v");
  EXPECT_EQ(spans[0].attrs[1].second, "42");
}

TEST(Tracer, ChromeJsonIsWellFormedAndEscaped) {
  Tracer t;
  {
    Span s(t, "na\"me\\with\nbad chars");
    s.attr("key\"", "val\\ue");
  }
  const std::string json = t.to_chrome_json();
  EXPECT_TRUE(is_valid_json(json)) << json;
  EXPECT_NE(json.find("traceEvents"), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
}

TEST(Tracer, ClearDropsRecords) {
  Tracer t;
  { Span s(t, "x"); }
  EXPECT_EQ(t.size(), 1u);
  t.clear();
  EXPECT_EQ(t.size(), 0u);
  EXPECT_EQ(t.dropped(), 0u);
}

// ---- histogram ------------------------------------------------------------

TEST(Histogram, BucketIndexPowersOfTwo) {
  EXPECT_EQ(Histogram::bucket_index(0), 0u);
  EXPECT_EQ(Histogram::bucket_index(1), 0u);
  EXPECT_EQ(Histogram::bucket_index(2), 1u);
  EXPECT_EQ(Histogram::bucket_index(3), 2u);
  EXPECT_EQ(Histogram::bucket_index(4), 2u);
  EXPECT_EQ(Histogram::bucket_index(5), 3u);
  EXPECT_EQ(Histogram::bucket_index(8), 3u);
  EXPECT_EQ(Histogram::bucket_index(9), 4u);
  EXPECT_EQ(Histogram::bucket_index(1ull << 40), 40u);
  EXPECT_EQ(Histogram::bucket_index((1ull << 40) + 1), 41u);
}

TEST(Histogram, ObserveTracksCountSumMinMax) {
  Histogram h;
  for (const std::uint64_t v : {5u, 1u, 100u, 7u}) h.observe(v);
  EXPECT_EQ(h.count, 4u);
  EXPECT_EQ(h.sum, 113u);
  EXPECT_EQ(h.min, 1u);
  EXPECT_EQ(h.max, 100u);
  EXPECT_EQ(h.buckets[Histogram::bucket_index(5)], 2u);  // 5 and 7 share
  EXPECT_EQ(h.buckets[0], 1u);
  EXPECT_EQ(h.buckets[Histogram::bucket_index(100)], 1u);
}

TEST(Histogram, ApproxQuantileBracketsTrueValue) {
  Histogram h;
  for (std::uint64_t v = 1; v <= 100; ++v) h.observe(v);
  // p50 of 1..100 is 50; the bucket upper bound answer must be the
  // enclosing power of two (64), never below the true value's bucket.
  EXPECT_EQ(h.approx_quantile(0.5), 64u);
  EXPECT_EQ(h.approx_quantile(1.0), 100u);  // clamped to observed max
  EXPECT_EQ(Histogram{}.approx_quantile(0.5), 0u);
}

// ---- registry -------------------------------------------------------------

TEST(Registry, CountersGaugesHistograms) {
  Registry r;
  r.count("a.b");
  r.count("a.b", 4);
  r.gauge_set("g", 2.5);
  r.gauge_set("g", 3.5);  // last write wins
  r.observe("h_ns", 1000);
  EXPECT_EQ(r.counter("a.b"), 5u);
  EXPECT_EQ(r.counter("missing"), 0u);
  EXPECT_DOUBLE_EQ(r.gauge("g"), 3.5);
  EXPECT_EQ(r.histogram("h_ns").count, 1u);
  EXPECT_EQ(r.histogram("missing").count, 0u);
  r.clear();
  EXPECT_EQ(r.counter("a.b"), 0u);
}

TEST(Registry, JsonIsWellFormed) {
  Registry r;
  r.count("with\"quote", 2);
  r.gauge_set("gauge.x", -1.25);
  for (std::uint64_t v = 1; v < 2000; v *= 3) r.observe("lat_ns", v);
  const std::string json = r.to_json();
  EXPECT_TRUE(is_valid_json(json)) << json;
  EXPECT_NE(json.find("\"counters\""), std::string::npos);
  EXPECT_NE(json.find("\"histograms\""), std::string::npos);
  EXPECT_NE(json.find("\"buckets\""), std::string::npos);
}

TEST(Registry, SummaryIsOneLine) {
  Registry r;
  r.count("c", 7);
  r.gauge_set("g", 1);
  r.observe("h", 12);
  const std::string s = r.summary();
  EXPECT_EQ(s.find('\n'), std::string::npos);
  EXPECT_NE(s.find("c=7"), std::string::npos);
  EXPECT_NE(s.find("h{n=1"), std::string::npos);
}

TEST(Registry, EmptyExportsAreValid) {
  Registry r;
  EXPECT_TRUE(is_valid_json(r.to_json()));
  EXPECT_EQ(r.summary(), "obs:");
  Tracer t;
  EXPECT_TRUE(is_valid_json(t.to_chrome_json()));
  EXPECT_EQ(t.to_text_tree(), "");
}

// ---- macros / kill switch -------------------------------------------------

#if NFACTOR_OBS_ENABLED

TEST(Macros, RecordIntoDefaults) {
  const std::uint64_t before = default_registry().counter("obs_test.macro");
  const std::size_t spans_before = default_tracer().size();
  {
    OBS_SPAN("obs_test.span");
    OBS_SPAN_VAR(sp, "obs_test.span2");
    sp.attr("k", std::int64_t{1});
    OBS_COUNT("obs_test.macro");
    OBS_COUNT_N("obs_test.macro", 2);
    OBS_GAUGE("obs_test.gauge", 9);
    OBS_HIST("obs_test.hist", 3);
    { OBS_TIMER_NS("obs_test.timer_ns"); }
  }
  EXPECT_EQ(default_registry().counter("obs_test.macro"), before + 3);
  EXPECT_DOUBLE_EQ(default_registry().gauge("obs_test.gauge"), 9.0);
  EXPECT_GE(default_registry().histogram("obs_test.hist").count, 1u);
  EXPECT_GE(default_registry().histogram("obs_test.timer_ns").count, 1u);
  EXPECT_EQ(default_tracer().size(), spans_before + 2);
}

#else  // kill switch: same call sites must compile to no-ops.

TEST(Macros, NoOpWhenDisabled) {
  default_registry().clear();
  default_tracer().clear();
  {
    OBS_SPAN("obs_test.span");
    OBS_SPAN_VAR(sp, "obs_test.span2");
    sp.attr("k", std::int64_t{1});
    OBS_COUNT("obs_test.macro");
    OBS_COUNT_N("obs_test.macro", 2);
    OBS_GAUGE("obs_test.gauge", 9);
    OBS_HIST("obs_test.hist", 3);
    { OBS_TIMER_NS("obs_test.timer_ns"); }
  }
  EXPECT_EQ(default_registry().counter("obs_test.macro"), 0u);
  EXPECT_EQ(default_registry().histogram("obs_test.hist").count, 0u);
  EXPECT_EQ(default_tracer().size(), 0u);
  // The explicit API still works with the switch off (the pipeline's
  // stage spans rely on this).
  { Span s(default_tracer(), "explicit"); }
  EXPECT_EQ(default_tracer().size(), 1u);
}

#endif  // NFACTOR_OBS_ENABLED

}  // namespace
}  // namespace nfactor::obs
