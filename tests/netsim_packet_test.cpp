#include "netsim/packet.h"

#include <gtest/gtest.h>

#include <random>

#include "netsim/checksum.h"

namespace nfactor::netsim {
namespace {

TEST(Ipv4Literal, ParsesDottedQuad) {
  EXPECT_EQ(ipv4("0.0.0.0"), 0u);
  EXPECT_EQ(ipv4("1.2.3.4"), 0x01020304u);
  EXPECT_EQ(ipv4("255.255.255.255"), 0xFFFFFFFFu);
  EXPECT_EQ(ipv4("10.0.0.1"), 0x0A000001u);
}

TEST(Ipv4Literal, RejectsMalformed) {
  EXPECT_THROW(ipv4("1.2.3"), std::invalid_argument);
  EXPECT_THROW(ipv4("1.2.3.4.5"), std::invalid_argument);
  EXPECT_THROW(ipv4("256.0.0.1"), std::invalid_argument);
  EXPECT_THROW(ipv4("a.b.c.d"), std::invalid_argument);
  EXPECT_THROW(ipv4(""), std::invalid_argument);
}

TEST(Ipv4Literal, RoundTripsThroughString) {
  for (const std::uint32_t a :
       {0u, 1u, 0x01020304u, 0x0A000001u, 0xFFFFFFFFu, 0xC0A80101u}) {
    EXPECT_EQ(ipv4(ipv4_to_string(a)), a);
  }
}

TEST(Checksum, Rfc1071Vector) {
  // Classic example from RFC 1071 §3: words 0x0001, 0xf203, 0xf4f5, 0xf6f7.
  const std::uint8_t data[] = {0x00, 0x01, 0xf2, 0x03, 0xf4, 0xf5, 0xf6, 0xf7};
  // One's-complement sum is 0xddf2 -> checksum is its complement 0x220d.
  EXPECT_EQ(internet_checksum(data), 0x220D);
}

TEST(Checksum, OddLengthPadsWithZero) {
  const std::uint8_t even[] = {0xAB, 0xCD, 0x12, 0x00};
  const std::uint8_t odd[] = {0xAB, 0xCD, 0x12};
  EXPECT_EQ(internet_checksum(even), internet_checksum(odd));
}

TEST(Checksum, VerifiesToZeroWhenEmbedded) {
  std::vector<std::uint8_t> data = {0x45, 0x00, 0x00, 0x1c, 0x12, 0x34,
                                    0x00, 0x00, 0x40, 0x06, 0x00, 0x00,
                                    0x0a, 0x00, 0x00, 0x01, 0x0a, 0x00,
                                    0x00, 0x02};
  const std::uint16_t sum = internet_checksum(data);
  data[10] = static_cast<std::uint8_t>(sum >> 8);
  data[11] = static_cast<std::uint8_t>(sum);
  EXPECT_EQ(internet_checksum(data), 0);
}

Packet sample_tcp() {
  Packet p;
  p.eth_src = {0x02, 0x00, 0x00, 0x00, 0x00, 0x01};
  p.eth_dst = {0x02, 0x00, 0x00, 0x00, 0x00, 0x02};
  p.ip_src = ipv4("10.0.0.1");
  p.ip_dst = ipv4("3.3.3.3");
  p.ip_ttl = 63;
  p.ip_id = 0x1234;
  p.sport = 49152;
  p.dport = 80;
  p.tcp_seq = 1000;
  p.tcp_ack = 2000;
  p.tcp_flags = kSyn | kAck;
  p.tcp_win = 8192;
  p.payload = {'h', 'e', 'l', 'l', 'o'};
  return p;
}

TEST(Codec, TcpRoundTrip) {
  const Packet p = sample_tcp();
  const auto wire = encode(p);
  const auto back = decode(wire);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(*back, p);
}

TEST(Codec, UdpRoundTrip) {
  Packet p = sample_tcp();
  p.ip_proto = static_cast<std::uint8_t>(IpProto::kUdp);
  p.tcp_flags = 0;
  p.tcp_seq = p.tcp_ack = 0;
  p.tcp_win = 65535;
  const auto wire = encode(p);
  const auto back = decode(wire);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->ip_proto, p.ip_proto);
  EXPECT_EQ(back->sport, p.sport);
  EXPECT_EQ(back->dport, p.dport);
  EXPECT_EQ(back->payload, p.payload);
}

TEST(Codec, DetectsCorruptedIpChecksum) {
  auto wire = encode(sample_tcp());
  wire[14 + 8] ^= 0xFF;  // flip TTL without fixing the checksum
  EXPECT_FALSE(decode(wire).has_value());
  EXPECT_TRUE(decode(wire, /*verify_checksums=*/false).has_value());
}

TEST(Codec, DetectsCorruptedTcpChecksum) {
  auto wire = encode(sample_tcp());
  wire.back() ^= 0xFF;  // flip last payload byte
  EXPECT_FALSE(decode(wire).has_value());
}

TEST(Codec, RejectsTruncated) {
  const auto wire = encode(sample_tcp());
  for (const std::size_t keep : {std::size_t{0}, std::size_t{10}, std::size_t{14}, std::size_t{20}, std::size_t{33}}) {
    EXPECT_FALSE(decode({wire.data(), keep}).has_value()) << keep;
  }
}

TEST(Codec, RejectsNonIpv4EtherType) {
  auto wire = encode(sample_tcp());
  wire[12] = 0x86;  // 0x86DD = IPv6
  wire[13] = 0xDD;
  EXPECT_FALSE(decode(wire).has_value());
}

TEST(Codec, RejectsNonTcpUdpProtocol) {
  Packet p = sample_tcp();
  p.ip_proto = static_cast<std::uint8_t>(IpProto::kIcmp);
  // encode writes it faithfully; decode refuses to parse the transport.
  const auto wire = encode(p);
  EXPECT_FALSE(decode(wire).has_value());
}

class CodecRandomRoundTrip : public ::testing::TestWithParam<int> {};

TEST_P(CodecRandomRoundTrip, EncodeDecodeIsIdentity) {
  std::mt19937_64 rng(static_cast<std::uint64_t>(GetParam()));
  for (int i = 0; i < 50; ++i) {
    Packet p;
    p.ip_src = static_cast<std::uint32_t>(rng());
    p.ip_dst = static_cast<std::uint32_t>(rng());
    p.ip_ttl = static_cast<std::uint8_t>(rng() % 255 + 1);
    p.ip_id = static_cast<std::uint16_t>(rng());
    p.ip_tos = static_cast<std::uint8_t>(rng());
    p.sport = static_cast<std::uint16_t>(rng());
    p.dport = static_cast<std::uint16_t>(rng());
    const bool tcp = rng() & 1;
    p.ip_proto = static_cast<std::uint8_t>(tcp ? IpProto::kTcp : IpProto::kUdp);
    if (tcp) {
      p.tcp_seq = static_cast<std::uint32_t>(rng());
      p.tcp_ack = static_cast<std::uint32_t>(rng());
      p.tcp_flags = static_cast<std::uint8_t>(rng() & 0x3F);
      p.tcp_win = static_cast<std::uint16_t>(rng());
    } else {
      p.tcp_seq = p.tcp_ack = 0;
      p.tcp_flags = 0;
      p.tcp_win = 65535;
    }
    p.payload.resize(rng() % 256);
    for (auto& b : p.payload) b = static_cast<std::uint8_t>(rng());
    const auto back = decode(encode(p));
    ASSERT_TRUE(back.has_value());
    EXPECT_EQ(*back, p);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CodecRandomRoundTrip,
                         ::testing::Values(1, 2, 3, 4, 5));

TEST(Codec, AcceptsTcpOptionsViaDataOffset) {
  // Hand-build a frame whose TCP header carries 4 bytes of options
  // (doff = 6): the decoder must skip them and find the payload.
  Packet p = sample_tcp();
  p.payload = {'X', 'Y'};
  auto wire = encode(p);
  // Splice 4 NOP option bytes after the 20-byte TCP header.
  const std::size_t tcp_off = 14 + 20;
  wire.insert(wire.begin() + static_cast<long>(tcp_off + 20),
              {0x01, 0x01, 0x01, 0x01});
  // Fix data offset (6 words), IP total length, and checksums.
  wire[tcp_off + 12] = 0x60;
  const std::uint16_t total = static_cast<std::uint16_t>(20 + 24 + 2);
  wire[14 + 2] = static_cast<std::uint8_t>(total >> 8);
  wire[14 + 3] = static_cast<std::uint8_t>(total);
  wire[14 + 10] = wire[14 + 11] = 0;
  const std::uint16_t ip_sum = internet_checksum({wire.data() + 14, 20});
  wire[14 + 10] = static_cast<std::uint8_t>(ip_sum >> 8);
  wire[14 + 11] = static_cast<std::uint8_t>(ip_sum);
  wire[tcp_off + 16] = wire[tcp_off + 17] = 0;
  const std::uint16_t tcp_sum = transport_checksum(
      p.ip_src, p.ip_dst, p.ip_proto, {wire.data() + tcp_off, 24 + 2});
  wire[tcp_off + 16] = static_cast<std::uint8_t>(tcp_sum >> 8);
  wire[tcp_off + 17] = static_cast<std::uint8_t>(tcp_sum);

  const auto back = decode(wire);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->payload, (std::vector<std::uint8_t>{'X', 'Y'}));
  EXPECT_EQ(back->sport, p.sport);
}

TEST(Codec, RejectsBogusDataOffset) {
  auto wire = encode(sample_tcp());
  wire[14 + 20 + 12] = 0x20;  // doff = 2 words < minimum 5
  EXPECT_FALSE(decode(wire, /*verify_checksums=*/false).has_value());
}

TEST(PacketPrinting, ShowsFlagsAndAddresses) {
  const std::string s = to_string(sample_tcp());
  EXPECT_NE(s.find("10.0.0.1:49152"), std::string::npos);
  EXPECT_NE(s.find("3.3.3.3:80"), std::string::npos);
  EXPECT_NE(s.find('S'), std::string::npos);
  EXPECT_NE(s.find('A'), std::string::npos);
  EXPECT_NE(s.find("len=5"), std::string::npos);
}

TEST(PacketFields, TotalLengthCoversTransport) {
  Packet p = sample_tcp();
  EXPECT_EQ(p.ip_total_length(), 20u + 20u + 5u);
  p.ip_proto = static_cast<std::uint8_t>(IpProto::kUdp);
  EXPECT_EQ(p.ip_total_length(), 20u + 8u + 5u);
}

}  // namespace
}  // namespace nfactor::netsim
