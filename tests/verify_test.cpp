// Verification applications: equivalence checking, stateful header-space
// reachability, PGA-style composition, BUZZ-style compliance testing.
#include <gtest/gtest.h>

#include <algorithm>
#include <string>

#include "netsim/packet_gen.h"
#include "nfactor/pipeline.h"
#include "nfs/corpus.h"
#include "tests/test_util.h"
#include "verify/chain.h"
#include "verify/compliance.h"
#include "verify/equivalence.h"
#include "verify/hsa.h"

namespace nfactor::verify {
namespace {

pipeline::PipelineResult run_nf(const char* name) {
  return pipeline::run_source(nfs::find(name).source, name);
}

// ---------------------------------------------------------------------------
// Differential equivalence
// ---------------------------------------------------------------------------

TEST(Equivalence, DetectsSabotagedModel) {
  auto r = run_nf("firewall");
  // Sabotage: delete the LAN->WAN forwarding entry's action.
  for (auto& e : r.model.entries) {
    if (!e.is_drop()) {
      e.flow_action.clear();
      break;
    }
  }
  netsim::PacketGen gen(5);
  const auto diff =
      differential_test(*r.module, r.cats, r.model, gen.batch(200));
  EXPECT_GT(diff.mismatches, 0);
  EXPECT_FALSE(diff.details.empty());
}

TEST(Equivalence, DetectsSabotagedStateUpdate) {
  auto r = run_nf("lb");
  for (auto& e : r.model.entries) e.state_action.clear();
  netsim::PacketGen gen(6);
  const auto diff =
      differential_test(*r.module, r.cats, r.model, gen.batch(200));
  EXPECT_GT(diff.mismatches, 0);
}

TEST(Equivalence, ActionSignatureIgnoresLogState) {
  const auto r = run_nf("lb");
  for (const auto& p : r.slice_paths) {
    const std::string sig = action_signature(p, r.cats);
    EXPECT_EQ(sig.find("pass_stat"), std::string::npos);
    EXPECT_EQ(sig.find("drop_stat"), std::string::npos);
  }
}

TEST(Equivalence, CompareActionSetsSymmetric) {
  const auto r = run_nf("nat");
  const auto cmp = compare_action_sets(r.slice_paths, r.slice_paths, r.cats);
  EXPECT_TRUE(cmp.equal());
  EXPECT_GT(cmp.common, 0u);

  const auto empty = compare_action_sets(r.slice_paths, {}, r.cats);
  EXPECT_FALSE(empty.equal());
  EXPECT_EQ(empty.only_in_b.size(), 0u);
  EXPECT_GT(empty.only_in_a.size(), 0u);
}

TEST(Equivalence, UnderConfigEmptyVsAbsentPathSet) {
  const auto r = run_nf("nat");
  const auto bindings = config_bindings(*r.module);

  // Absent specialized side: every surviving full behavior is missing,
  // and nothing can be "extra" on an empty side.
  const auto absent = compare_action_sets_under_config(
      r.slice_paths, {}, r.cats, r.cats, bindings);
  EXPECT_FALSE(absent.equal());
  EXPECT_TRUE(absent.only_in_b.empty());
  EXPECT_GT(absent.only_in_a.size(), 0u);
  EXPECT_EQ(absent.common, 0u);

  // Both sides empty (the table is absent on both ends): trivially
  // equal with zero common signatures — not an error.
  const auto both =
      compare_action_sets_under_config({}, {}, r.cats, r.cats, bindings);
  EXPECT_TRUE(both.equal());
  EXPECT_EQ(both.common, 0u);
}

TEST(Equivalence, UnderConfigPermutedPathOrderIsEquivalent) {
  // Action-set comparison is over deduplicated signature *sets*: the
  // order paths were enumerated in must not matter.
  const auto& e = nfs::find("firewall");
  pipeline::PipelineOptions nofold;
  nofold.simplify.enabled = false;
  nofold.simplify.fold_config = false;
  pipeline::PipelineOptions fold;
  fold.simplify.enabled = true;
  fold.simplify.fold_config = true;
  const auto full = pipeline::run_source(e.source, "full", nofold);
  const auto spec = pipeline::run_source(e.source, "spec", fold);

  auto permuted = spec.slice_paths;
  std::reverse(permuted.begin(), permuted.end());
  const auto bindings = config_bindings(*full.module);
  const auto cmp = compare_action_sets_under_config(
      full.slice_paths, permuted, full.cats, spec.cats, bindings);
  EXPECT_TRUE(cmp.equal()) << "only_in_full=" << cmp.only_in_a.size()
                           << " only_in_permuted=" << cmp.only_in_b.size();
  EXPECT_GT(cmp.common, 0u);
}

TEST(Equivalence, UnderConfigDetectsConfigOnlyDivergence) {
  // Two programs identical except for one config initializer: under the
  // full side's bindings the folded side's behavior must NOT match.
  const std::string a = testutil::nf_body("send(pkt, OUT);\n    return;",
                                          "var OUT = 1;");
  const std::string b = testutil::nf_body("send(pkt, OUT);\n    return;",
                                          "var OUT = 2;");
  pipeline::PipelineOptions nofold;
  nofold.simplify.enabled = false;
  nofold.simplify.fold_config = false;
  pipeline::PipelineOptions fold;
  fold.simplify.enabled = true;
  fold.simplify.fold_config = true;
  const auto full = pipeline::run_source(a, "a", nofold);
  const auto spec = pipeline::run_source(b, "b", fold);

  const auto bindings = config_bindings(*full.module);
  const auto cmp = compare_action_sets_under_config(
      full.slice_paths, spec.slice_paths, full.cats, spec.cats, bindings);
  EXPECT_FALSE(cmp.equal());
  EXPECT_GT(cmp.only_in_a.size(), 0u);
  EXPECT_GT(cmp.only_in_b.size(), 0u);
}

// ---------------------------------------------------------------------------
// Stateful header-space reachability
// ---------------------------------------------------------------------------

symex::SymRef pkt_eq(const char* field, symex::Int v) {
  return symex::make_bin(
      lang::BinOp::kEq,
      symex::make_var(std::string("pkt.") + field, symex::VarClass::kPkt),
      symex::make_int(v));
}

TEST(Hsa, SingleHopFirewallForwardsLanTraffic) {
  const auto fw = run_nf("firewall");
  const std::vector<ChainHop> chain = {{"fw", &fw.model, {}}};
  EXPECT_TRUE(can_reach_egress(chain, {pkt_eq("in_port", 0)}));
}

TEST(Hsa, IngressConstraintCanBlockEverything) {
  const auto ids = run_nf("snort_lite");
  const auto pin = symex::make_bin(
      lang::BinOp::kEq, symex::make_var("INLINE_DROP", symex::VarClass::kCfg),
      symex::make_int(1));
  const std::vector<ChainHop> chain = {{"ids", &ids.model, {pin}}};
  // TCP telnet is rule-dropped.
  EXPECT_FALSE(can_reach_egress(
      chain, {pkt_eq("ip_proto", 6), pkt_eq("dport", 23)}));
  // TCP 443 passes.
  EXPECT_TRUE(can_reach_egress(
      chain, {pkt_eq("ip_proto", 6), pkt_eq("dport", 443),
              pkt_eq("eth_type", 0x0800)}));
}

TEST(Hsa, ConfigPinSelectsTable) {
  const auto ids = run_nf("snort_lite");
  const auto alert_only = symex::make_bin(
      lang::BinOp::kEq, symex::make_var("INLINE_DROP", symex::VarClass::kCfg),
      symex::make_int(0));
  const std::vector<ChainHop> chain = {{"ids", &ids.model, {alert_only}}};
  // In alert-only mode even telnet passes through.
  EXPECT_TRUE(can_reach_egress(
      chain, {pkt_eq("ip_proto", 6), pkt_eq("dport", 23),
              pkt_eq("eth_type", 0x0800)}));
}

TEST(Hsa, RewritesPropagateToNextHop) {
  // NAT rewrites ip_src to EXT_IP=5.5.5.5; a downstream firewall-style
  // model matching the original source address must become unreachable.
  const auto nat = run_nf("nat");
  const std::vector<ChainHop> chain = {{"nat", &nat.model, {}}};
  const auto res = reachable(chain, {pkt_eq("in_port", 0)}, 8);
  ASSERT_TRUE(res.any());
  bool rewrote = false;
  for (const auto& p : res.delivered) {
    const auto it = p.egress_fields.find("pkt.ip_src");
    ASSERT_NE(it, p.egress_fields.end());
    // The egress source address is the NAT's (prefixed) EXT_IP config
    // symbol — no longer the ingress pkt.ip_src.
    if (symex::to_string(*it->second).find("EXT_IP") != std::string::npos) {
      rewrote = true;
    }
  }
  EXPECT_TRUE(rewrote);
}

TEST(Hsa, TwoInstancesOfSameNfKeepDisjointState) {
  const auto fw = run_nf("firewall");
  const std::vector<ChainHop> chain = {{"fw_a", &fw.model, {}},
                                       {"fw_b", &fw.model, {}}};
  const auto res = reachable(chain, {pkt_eq("in_port", 0)}, 16);
  ASSERT_TRUE(res.any());
  // State symbols must carry distinct prefixes.
  for (const auto& p : res.delivered) {
    for (const auto& c : p.constraints) {
      const std::string s = c->key();
      EXPECT_EQ(s.find("fw_a$0$fw_b"), std::string::npos);
    }
  }
}

TEST(Hsa, HopIngressPortPinning) {
  const auto fw = run_nf("firewall");
  // Pin the hop's ingress to the LAN port: the LAN->WAN entry matches
  // with the in_port test fully resolved (no in_port symbol survives).
  std::vector<ChainHop> lan = {{"fw", &fw.model, {}, /*in_port=*/0}};
  const auto res = reachable(lan, {}, 8);
  ASSERT_TRUE(res.any());
  for (const auto& p : res.delivered) {
    for (const auto& c : p.constraints) {
      EXPECT_EQ(c->key().find("pkt.in_port"), std::string::npos)
          << symex::to_string(*c);
    }
  }

  // Pinned to a non-LAN port (with the LAN_PORT config also pinned so
  // the deployment is fixed), only the established-connection entry can
  // deliver — every surviving path must constrain the connection table.
  const auto lan_is_0 = symex::make_bin(
      lang::BinOp::kEq, symex::make_var("LAN_PORT", symex::VarClass::kCfg),
      symex::make_int(0));
  std::vector<ChainHop> wan = {{"fw", &fw.model, {lan_is_0}, /*in_port=*/7}};
  for (const auto& p : reachable(wan, {}, 8).delivered) {
    bool mentions_conns = false;
    for (const auto& c : p.constraints) {
      if (c->key().find("conns") != std::string::npos) mentions_conns = true;
    }
    EXPECT_TRUE(mentions_conns);
  }
}

TEST(Hsa, InfeasibleCountsReported) {
  const auto ids = run_nf("snort_lite");
  const auto pin = symex::make_bin(
      lang::BinOp::kEq, symex::make_var("INLINE_DROP", symex::VarClass::kCfg),
      symex::make_int(1));
  const std::vector<ChainHop> chain = {{"ids", &ids.model, {pin}}};
  // A rule-dropped flow: every forwarding entry is infeasible under the
  // inline-drop configuration.
  const auto res =
      reachable(chain, {pkt_eq("ip_proto", 6), pkt_eq("dport", 23)}, 8);
  EXPECT_FALSE(res.any());
  EXPECT_GT(res.infeasible, 0u);
}

// ---------------------------------------------------------------------------
// PGA-style composition
// ---------------------------------------------------------------------------

TEST(Compose, IoSpacesReflectModels) {
  const auto lb = run_nf("lb");
  const auto io = io_space(lb.model);
  EXPECT_TRUE(io.fields_matched.count("pkt.dport"));
  EXPECT_TRUE(io.fields_rewritten.count("pkt.ip_dst"));
  EXPECT_TRUE(io.fields_rewritten.count("pkt.sport"));

  const auto fw = run_nf("firewall");
  const auto fio = io_space(fw.model);
  EXPECT_TRUE(fio.fields_matched.count("pkt.in_port"));
  EXPECT_TRUE(fio.fields_rewritten.empty());
}

TEST(Compose, MatcherPrecedesRewriter) {
  const auto fw = run_nf("firewall");
  const auto ids = run_nf("snort_lite");
  const auto lb = run_nf("lb");
  const auto advice = advise_order(
      {{"lb", &lb.model}, {"fw", &fw.model}, {"ids", &ids.model}});
  ASSERT_EQ(advice.order.size(), 3u);
  EXPECT_FALSE(advice.has_cycle);
  // lb (the rewriter) must come last.
  EXPECT_EQ(advice.order.back(), "lb");
  // Constraints actually mention the port conflict.
  bool ids_before_lb = false;
  for (const auto& c : advice.constraints) {
    if (c.before == "ids" && c.after == "lb") ids_before_lb = true;
  }
  EXPECT_TRUE(ids_before_lb);
}

TEST(Compose, CycleDetected) {
  // Two NATs that each match on and rewrite the same field force a cycle.
  const auto nat = run_nf("nat");
  const auto advice = advise_order(
      {{"nat_a", &nat.model}, {"nat_b", &nat.model}});
  EXPECT_TRUE(advice.has_cycle);
  EXPECT_EQ(advice.order.size(), 2u);  // still emits a best-effort order
}

TEST(Compose, SingleNfTrivial) {
  const auto fw = run_nf("firewall");
  const auto advice = advise_order({{"fw", &fw.model}});
  EXPECT_EQ(advice.order, (std::vector<std::string>{"fw"}));
  EXPECT_TRUE(advice.constraints.empty());
}

// ---------------------------------------------------------------------------
// Compliance testing
// ---------------------------------------------------------------------------

class ComplianceOnCorpus : public ::testing::TestWithParam<const char*> {};

TEST_P(ComplianceOnCorpus, NoGeneratedTestFails) {
  const auto r = run_nf(GetParam());
  const auto rep = run_compliance(*r.module, r.model);
  EXPECT_EQ(rep.failed, 0) << rep.summary();
  EXPECT_GT(rep.passed, 0) << rep.summary();
  EXPECT_EQ(rep.cases.size(), r.model.entries.size());
}

INSTANTIATE_TEST_SUITE_P(Corpus, ComplianceOnCorpus,
                         ::testing::Values("lb", "nat", "firewall", "dpi",
                                           "monitor", "snort_lite", "heavy_hitter",
                                           "synflood"));

TEST(Compliance, NatCoversAllEntriesWithPriming) {
  const auto r = run_nf("nat");
  const auto rep = run_compliance(*r.module, r.model);
  EXPECT_EQ(rep.passed, static_cast<int>(r.model.entries.size()));
  // The reverse-path entry needs a priming packet.
  bool multi_step = false;
  for (const auto& tc : rep.cases) {
    if (tc.sequence.size() > 1) multi_step = true;
  }
  EXPECT_TRUE(multi_step);
}

TEST(Compliance, LbHashEntrySkippedUnderRrConfig) {
  const auto r = run_nf("lb");
  const auto rep = run_compliance(*r.module, r.model);
  EXPECT_GT(rep.config_skipped, 0);  // the mode != ROUND_ROBIN table
}

TEST(Compliance, StatusNamesReadable) {
  EXPECT_EQ(to_string(CaseStatus::kPassed), "passed");
  EXPECT_EQ(to_string(CaseStatus::kFailed), "failed");
  EXPECT_EQ(to_string(CaseStatus::kUncovered), "uncovered");
  EXPECT_EQ(to_string(CaseStatus::kConfigSkip), "config-skip");
}

TEST(Compliance, SummaryCountsAddUp) {
  const auto r = run_nf("firewall");
  const auto rep = run_compliance(*r.module, r.model);
  EXPECT_EQ(rep.passed + rep.failed + rep.uncovered + rep.config_skipped,
            static_cast<int>(rep.cases.size()));
  EXPECT_NE(rep.summary().find("passed"), std::string::npos);
}

}  // namespace
}  // namespace nfactor::verify
