#include "lang/sema.h"

#include <gtest/gtest.h>

#include "lang/builtins.h"
#include "lang/diagnostics.h"
#include "lang/parser.h"

namespace nfactor::lang {
namespace {

SemaInfo check(const std::string& src) {
  Program p = parse(src);
  return analyze(p);
}

TEST(Sema, InfersGlobalTypes) {
  const auto info = check(
      "var a = 1;\nvar b = true;\nvar s = \"x\";\nvar t = (1, 2);\n"
      "var l = [1, 2];\nvar m = {};\n");
  EXPECT_EQ(info.globals.at("a"), Type::kInt);
  EXPECT_EQ(info.globals.at("b"), Type::kBool);
  EXPECT_EQ(info.globals.at("s"), Type::kStr);
  EXPECT_EQ(info.globals.at("t"), Type::kTuple);
  EXPECT_EQ(info.globals.at("l"), Type::kList);
  EXPECT_EQ(info.globals.at("m"), Type::kMap);
}

TEST(Sema, GlobalMayReferenceEarlierGlobal) {
  const auto info = check("var a = 5;\nvar b = a + 1;\n");
  EXPECT_EQ(info.globals.at("b"), Type::kInt);
}

TEST(Sema, GlobalMayNotReferenceLaterGlobal) {
  EXPECT_THROW(check("var b = a + 1;\nvar a = 5;\n"), SemaError);
}

TEST(Sema, GlobalInitializerMustBeConst) {
  EXPECT_THROW(check("var a = hash(1);\n"), SemaError);
}

TEST(Sema, DuplicateGlobalRejected) {
  EXPECT_THROW(check("var a = 1;\nvar a = 2;\n"), SemaError);
}

TEST(Sema, ShadowingBuiltinRejected) {
  EXPECT_THROW(check("var len = 1;\n"), SemaError);
  EXPECT_THROW(check("def hash(x) { return x; }\n"), SemaError);
}

TEST(Sema, LocalTypeInference) {
  Program p = parse("def f(pkt) { x = pkt.ip_src; y = x + 1; b = y < 2; }");
  // Force pkt to be a packet via a callback-style second function:
  Program q = parse(
      "def cb(pkt) { x = pkt.ip_src; y = x + 1; b = y < 2; }\n"
      "def main() { sniff(0, cb); }");
  const auto info = analyze(q);
  const auto& locals = info.funcs.at("cb").locals;
  EXPECT_EQ(locals.at("pkt"), Type::kPacket);
  EXPECT_EQ(locals.at("x"), Type::kInt);
  EXPECT_EQ(locals.at("y"), Type::kInt);
  EXPECT_EQ(locals.at("b"), Type::kBool);
  (void)p;
}

TEST(Sema, ParamTypesFlowFromCallSites) {
  const auto info = check(
      "def helper(a, b) { return a + b; }\n"
      "def main() { while (true) { pkt = recv(0); x = helper(1, 2); } }");
  EXPECT_EQ(info.funcs.at("helper").locals.at("a"), Type::kInt);
  EXPECT_EQ(info.funcs.at("helper").return_type, Type::kInt);
}

TEST(Sema, ReturnTypeConflictsRejected) {
  EXPECT_THROW(check("def f(x) { if (x == 1) { return 1; } return true; }\n"
                     "def main() { y = f(1); }"),
               SemaError);
}

TEST(Sema, ConditionMustBeBool) {
  EXPECT_THROW(check("def f() { if (1) { } }"), SemaError);
  EXPECT_THROW(check("def f() { while (2 + 3) { } }"), SemaError);
}

TEST(Sema, ForBoundsMustBeInt) {
  EXPECT_THROW(check("def f() { for i in true..false { } }"), SemaError);
}

TEST(Sema, ArithmeticNeedsInts) {
  EXPECT_THROW(check("def f() { x = true + 1; }"), SemaError);
  EXPECT_THROW(check("def f() { x = (1, 2) * 3; }"), SemaError);
}

TEST(Sema, EqualityNeedsMatchingTypes) {
  EXPECT_THROW(check("def f() { x = 1 == true; }"), SemaError);
  EXPECT_THROW(check("def f() { x = (1, 2) == 3; }"), SemaError);
}

TEST(Sema, LogicalNeedsBools) {
  EXPECT_THROW(check("def f() { x = 1 && 2; }"), SemaError);
}

TEST(Sema, InNeedsContainerRhs) {
  EXPECT_THROW(check("def f() { x = 1 in 2; }"), SemaError);
}

TEST(Sema, UnknownVariableRejected) {
  EXPECT_THROW(check("def f() { x = nope + 1; }"), SemaError);
}

TEST(Sema, UnknownFunctionRejected) {
  EXPECT_THROW(check("def f() { x = mystery(); }"), SemaError);
}

TEST(Sema, FunctionArityChecked) {
  EXPECT_THROW(check("def g(a) { return a; }\ndef f() { x = g(1, 2); }"),
               SemaError);
  EXPECT_THROW(check("def f() { x = len(); }"), SemaError);
  EXPECT_THROW(check("def f(p) { send(p); }"), SemaError);
}

TEST(Sema, PacketFieldChecks) {
  EXPECT_THROW(check("def cb(pkt) { x = pkt.bogus_field; }\n"
                     "def main() { sniff(0, cb); }"),
               SemaError);
  EXPECT_THROW(check("def cb(pkt) { pkt.len = 5; }\n"  // read-only
                     "def main() { sniff(0, cb); }"),
               SemaError);
  EXPECT_THROW(check("def cb(pkt) { pkt.in_port = 5; }\n"
                     "def main() { sniff(0, cb); }"),
               SemaError);
}

TEST(Sema, FieldAccessOnNonPacketRejected) {
  EXPECT_THROW(check("def f() { x = 1; y = x.ip_src; }"), SemaError);
}

TEST(Sema, ElementStoreOnNonContainerRejected) {
  EXPECT_THROW(check("def f() { x = 1; x[0] = 2; }"), SemaError);
}

TEST(Sema, RecursionRejected) {
  EXPECT_THROW(check("def f(x) { return f(x); }"), SemaError);
  EXPECT_THROW(check("def a(x) { return b(x); }\ndef b(x) { return a(x); }"),
               SemaError);
}

TEST(Sema, GlobalReadWriteSetsTracked) {
  const auto info = check(
      "var g = 1;\nvar h = 2;\nvar m = {};\n"
      "def f() { x = g; h = 3; m[x] = 1; }\n");
  const auto& fi = info.funcs.at("f");
  EXPECT_TRUE(fi.globals_read.count("g"));
  EXPECT_TRUE(fi.globals_written.count("h"));
  EXPECT_TRUE(fi.globals_written.count("m"));
  EXPECT_FALSE(fi.globals_written.count("g"));
}

TEST(Sema, TupleElementsMustBeInts) {
  EXPECT_THROW(check("def f() { t = (1, true); }"), SemaError);
}

TEST(Sema, VariadicLogAcceptsAnything) {
  EXPECT_NO_THROW(check("def f() { log(\"x\", 1, (2, 3), true); }"));
}

TEST(Builtins, RegistryIsConsistent) {
  EXPECT_NE(find_builtin("recv"), nullptr);
  EXPECT_NE(find_builtin("send"), nullptr);
  EXPECT_EQ(find_builtin("no_such_builtin"), nullptr);
  EXPECT_TRUE(is_pkt_input("recv"));
  EXPECT_TRUE(is_pkt_output("send"));
  EXPECT_FALSE(is_pkt_output("recv"));
  for (const auto& b : all_builtins()) {
    EXPECT_EQ(find_builtin(b.name), &b) << b.name;
  }
}

TEST(Builtins, PacketFieldTable) {
  ASSERT_NE(find_packet_field("ip_src"), nullptr);
  EXPECT_TRUE(find_packet_field("ip_src")->writable);
  ASSERT_NE(find_packet_field("len"), nullptr);
  EXPECT_FALSE(find_packet_field("len")->writable);
  EXPECT_FALSE(find_packet_field("in_port")->writable);
  EXPECT_EQ(find_packet_field("nope"), nullptr);
}

}  // namespace
}  // namespace nfactor::lang
