// End-to-end smoke: the full NFactor pipeline over every corpus NF, plus
// model-vs-original differential testing. If this passes, the frontend,
// lowering, slicing, categorization, symbolic execution, model building
// and both interpreters agree with each other.
#include <gtest/gtest.h>

#include "netsim/packet_gen.h"
#include "nfactor/pipeline.h"
#include "nfs/corpus.h"
#include "verify/equivalence.h"

namespace nfactor {
namespace {

class PipelineSmoke : public ::testing::TestWithParam<const char*> {};

TEST_P(PipelineSmoke, ExtractsModelAndMatchesOriginal) {
  const auto& nf = nfs::find(GetParam());
  pipeline::PipelineResult r = pipeline::run_source(
      nf.source, std::string(nf.name));

  // The pipeline produced a non-trivial slice and at least one path.
  EXPECT_FALSE(r.union_slice.empty());
  ASSERT_FALSE(r.slice_paths.empty());
  EXPECT_FALSE(r.model.entries.empty());
  EXPECT_GT(r.loc_orig, 0);
  EXPECT_GT(r.loc_slice, 0);
  EXPECT_LE(r.loc_slice, r.loc_orig);

  // Differential test: 500 random packets through original and model.
  netsim::GenConfig cfg;
  netsim::PacketGen gen(0xC0FFEE ^ std::hash<std::string>{}(nf.name.data()), cfg);
  std::vector<netsim::Packet> packets = gen.batch(500);
  // Mix in stateful flows so map-hit entries get exercised.
  for (int i = 0; i < 10; ++i) {
    const auto flow = gen.handshake_flow(4);
    packets.insert(packets.end(), flow.begin(), flow.end());
  }
  const verify::DiffResult diff =
      verify::differential_test(*r.module, r.cats, r.model, packets);
  EXPECT_TRUE(diff.ok()) << diff.mismatches << " mismatches; first: "
                         << (diff.details.empty() ? "" : diff.details[0]);
  EXPECT_GT(diff.original_sent, 0) << "test traffic never exercised a send";
}

INSTANTIATE_TEST_SUITE_P(Corpus, PipelineSmoke,
                         ::testing::Values("lb", "balance", "snort_lite",
                                           "nat", "firewall", "monitor",
                                           "l2_switch", "dpi", "heavy_hitter",
                                           "synflood"));

}  // namespace
}  // namespace nfactor
