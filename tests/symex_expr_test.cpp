// Symbolic expression construction: folding, negation, store-chain
// resolution, substitution, canonical keys.
#include "symex/expr.h"

#include <gtest/gtest.h>

#include "runtime/value.h"

namespace nfactor::symex {
namespace {

using lang::BinOp;
using lang::UnOp;

SymRef v(const char* name, VarClass c = VarClass::kPkt) {
  return make_var(name, c);
}

TEST(Folding, IntArithmetic) {
  EXPECT_EQ(make_bin(BinOp::kAdd, make_int(2), make_int(3))->int_val, 5);
  EXPECT_EQ(make_bin(BinOp::kMul, make_int(4), make_int(5))->int_val, 20);
  EXPECT_EQ(make_bin(BinOp::kMod, make_int(-1), make_int(3))->int_val, 2);
  EXPECT_EQ(make_bin(BinOp::kShl, make_int(1), make_int(4))->int_val, 16);
  EXPECT_EQ(make_bin(BinOp::kBitAnd, make_int(0xF0), make_int(0x3C))->int_val,
            0x30);
}

TEST(Folding, DivisionByZeroStaysSymbolic) {
  const SymRef e = make_bin(BinOp::kDiv, make_int(1), make_int(0));
  EXPECT_EQ(e->kind, SymKind::kBin);
}

TEST(Folding, Comparisons) {
  EXPECT_TRUE(make_bin(BinOp::kLt, make_int(1), make_int(2))->bool_val);
  EXPECT_FALSE(make_bin(BinOp::kEq, make_int(1), make_int(2))->bool_val);
  EXPECT_TRUE(make_bin(BinOp::kNe, make_int(1), make_int(2))->bool_val);
}

TEST(Folding, BoolShortCircuit) {
  const SymRef x = v("pkt.dport");
  const SymRef cond = make_bin(BinOp::kEq, x, make_int(80));
  EXPECT_EQ(make_bin(BinOp::kAnd, make_bool(true), cond), cond);
  EXPECT_TRUE(is_const_bool(make_bin(BinOp::kAnd, make_bool(false), cond)));
  EXPECT_EQ(make_bin(BinOp::kOr, make_bool(false), cond), cond);
  EXPECT_TRUE(make_bin(BinOp::kOr, make_bool(true), cond)->bool_val);
}

TEST(Folding, IdentityElements) {
  const SymRef x = v("pkt.dport");
  EXPECT_EQ(make_bin(BinOp::kAdd, x, make_int(0)), x);
  EXPECT_EQ(make_bin(BinOp::kAdd, make_int(0), x), x);
  EXPECT_EQ(make_bin(BinOp::kSub, x, make_int(0)), x);
  EXPECT_EQ(make_bin(BinOp::kMul, x, make_int(1)), x);
}

TEST(Folding, SyntacticIdentityComparisons) {
  const SymRef x = v("rr_idx", VarClass::kState);
  EXPECT_TRUE(make_bin(BinOp::kEq, x, x)->bool_val);
  EXPECT_FALSE(make_bin(BinOp::kNe, x, x)->bool_val);
  EXPECT_TRUE(make_bin(BinOp::kLe, x, x)->bool_val);
  EXPECT_FALSE(make_bin(BinOp::kLt, x, x)->bool_val);
}

TEST(Folding, TupleEquality) {
  const SymRef a = make_tuple_const({1, 2, 3});
  const SymRef b = make_tuple_const({1, 2, 3});
  const SymRef c = make_tuple_const({1, 2, 4});
  EXPECT_TRUE(make_bin(BinOp::kEq, a, b)->bool_val);
  EXPECT_FALSE(make_bin(BinOp::kEq, a, c)->bool_val);
  EXPECT_TRUE(make_bin(BinOp::kNe, a, c)->bool_val);
}

TEST(Folding, TupleOfConstsCollapsesToConstTuple) {
  const SymRef t = make_tuple({make_int(1), make_int(2)});
  EXPECT_EQ(t->kind, SymKind::kConstTuple);
  EXPECT_EQ(t->tuple_val, (std::vector<Int>{1, 2}));
}

TEST(Negation, FlipsComparisons) {
  const SymRef x = v("pkt.dport");
  const SymRef eq = make_bin(BinOp::kEq, x, make_int(80));
  const SymRef ne = negate(eq);
  EXPECT_EQ(ne->bin_op, BinOp::kNe);
  EXPECT_EQ(negate(ne)->bin_op, BinOp::kEq);

  EXPECT_EQ(negate(make_bin(BinOp::kLt, x, make_int(5)))->bin_op, BinOp::kGe);
  EXPECT_EQ(negate(make_bin(BinOp::kGe, x, make_int(5)))->bin_op, BinOp::kLt);
  EXPECT_EQ(negate(make_bin(BinOp::kGt, x, make_int(5)))->bin_op, BinOp::kLe);
  EXPECT_EQ(negate(make_bin(BinOp::kLe, x, make_int(5)))->bin_op, BinOp::kGt);
}

TEST(Negation, DoubleNegationCancels) {
  const SymRef c = make_contains(make_map_base("m"), v("pkt.ip_src"));
  EXPECT_EQ(negate(negate(c)), c);
  EXPECT_FALSE(negate(make_bool(true))->bool_val);
}

TEST(ListGet, ResolvesConstIndex) {
  const SymRef list =
      make_list_const({make_tuple_const({1, 80}), make_tuple_const({2, 80})});
  const SymRef hit = make_list_get(list, make_int(1));
  EXPECT_EQ(hit->kind, SymKind::kConstTuple);
  EXPECT_EQ(hit->tuple_val, (std::vector<Int>{2, 80}));
  // Symbolic index stays residual.
  const SymRef residual = make_list_get(list, v("rr_idx", VarClass::kState));
  EXPECT_EQ(residual->kind, SymKind::kListGet);
  // Out-of-range const index stays residual rather than crashing.
  EXPECT_EQ(make_list_get(list, make_int(9))->kind, SymKind::kListGet);
}

TEST(MapChain, GetResolvesThroughStores) {
  const SymRef base = make_map_base("nat");
  const SymRef k1 = make_tuple_const({1, 2});
  const SymRef k2 = make_tuple_const({3, 4});
  const SymRef m1 = make_map_store(base, k1, make_int(100));
  const SymRef m2 = make_map_store(m1, k2, make_int(200));

  EXPECT_EQ(make_map_get(m2, k2)->int_val, 200);
  EXPECT_EQ(make_map_get(m2, k1)->int_val, 100);  // skips distinct k2
  // Unknown key: residual get over the chain.
  EXPECT_EQ(make_map_get(m2, make_tuple_const({9, 9}))->kind, SymKind::kMapGet);
}

TEST(MapChain, GetBlocksOnUndecidableKey) {
  const SymRef base = make_map_base("nat");
  const SymRef symk = make_tuple({v("pkt.ip_src"), v("pkt.sport")});
  const SymRef m1 = make_map_store(base, symk, make_int(1));
  // Lookup of a different concrete key cannot skip the symbolic store.
  const SymRef g = make_map_get(m1, make_tuple_const({5, 6}));
  EXPECT_EQ(g->kind, SymKind::kMapGet);
}

TEST(Contains, ResolvesThroughStores) {
  const SymRef base = make_map_base("nat");
  const SymRef k = make_tuple_const({1, 2});
  const SymRef m1 = make_map_store(base, k, make_int(1));
  EXPECT_TRUE(make_contains(m1, k)->bool_val);
  // Distinct concrete key falls through to the symbolic base: residual.
  EXPECT_EQ(make_contains(m1, make_tuple_const({7, 7}))->kind,
            SymKind::kContains);
}

TEST(Contains, ConstListMembershipFolds) {
  const SymRef list = make_list_const({make_int(2), make_int(4)});
  EXPECT_TRUE(make_contains(list, make_int(4))->bool_val);
  EXPECT_FALSE(make_contains(list, make_int(5))->bool_val);
  EXPECT_EQ(make_contains(list, v("pkt.dport"))->kind, SymKind::kContains);
}

TEST(Keys, StructurallyEqualExpressionsShareKeys) {
  const SymRef a =
      make_bin(BinOp::kEq, v("pkt.dport"), make_int(80));
  const SymRef b =
      make_bin(BinOp::kEq, v("pkt.dport"), make_int(80));
  EXPECT_EQ(a->key(), b->key());
  const SymRef c = make_bin(BinOp::kEq, v("pkt.dport"), make_int(81));
  EXPECT_NE(a->key(), c->key());
}

TEST(Substitute, ReplacesVarsAndRefolds) {
  const SymRef e = make_bin(BinOp::kAdd, v("pkt.dport"), make_int(1));
  const SymRef out = substitute(e, {{"pkt.dport", make_int(79)}});
  ASSERT_TRUE(is_const_int(out));
  EXPECT_EQ(out->int_val, 80);
}

TEST(Substitute, ReplacesMapBases) {
  const SymRef c = make_contains(make_map_base("conns"), v("pkt.ip_src"));
  const SymRef out =
      substitute(c, {{"conns", make_map_base("fw$0$conns")}});
  EXPECT_NE(out->key().find("fw$0$conns"), std::string::npos);
}

TEST(Substitute, UntouchedExpressionIsShared) {
  const SymRef e = make_bin(BinOp::kAdd, v("a", VarClass::kState), make_int(1));
  const SymRef out = substitute(e, {{"zzz", make_int(1)}});
  EXPECT_EQ(out, e);  // pointer-equal: no rebuild
}

TEST(CollectVars, GroupsByClass) {
  const SymRef e = make_bin(
      BinOp::kAnd, make_bin(BinOp::kEq, v("pkt.dport"), v("LB_PORT", VarClass::kCfg)),
      make_bin(BinOp::kEq, v("rr_idx", VarClass::kState), make_int(0)));
  std::map<std::string, VarClass> vars;
  collect_vars(e, vars);
  EXPECT_EQ(vars.at("pkt.dport"), VarClass::kPkt);
  EXPECT_EQ(vars.at("LB_PORT"), VarClass::kCfg);
  EXPECT_EQ(vars.at("rr_idx"), VarClass::kState);
}

TEST(Printing, RendersInfix) {
  const SymRef e = make_bin(BinOp::kEq, v("pkt.dport"), make_int(80));
  EXPECT_EQ(to_string(*e), "(pkt.dport == 80)");
  const SymRef c = make_contains(make_map_base("m"), make_tuple_const({1, 2}));
  EXPECT_EQ(to_string(*c), "(1, 2) in m");
}

TEST(HashFolding, ConstantTupleHashMatchesRuntime) {
  // The executor folds hash() of concrete tuples using the same dsl_hash
  // as the runtime — keep them in lockstep.
  const SymRef h = make_call("hash", {make_tuple_const({1, 2, 3})});
  (void)h;  // make_call itself does not fold; the executor does.
  EXPECT_EQ(runtime::dsl_hash({1, 2, 3}), runtime::dsl_hash({1, 2, 3}));
  EXPECT_NE(runtime::dsl_hash({1, 2, 3}), runtime::dsl_hash({3, 2, 1}));
  EXPECT_GE(runtime::dsl_hash({-1}), 0);
}

}  // namespace
}  // namespace nfactor::symex
