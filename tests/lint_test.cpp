// Unit tests for the nf-lint diagnostics engine: the DiagnosticSink
// container, the check catalog, and each NF1xx/NF2xx/NF3xx check firing
// on a minimal trigger while staying quiet on the bundled corpus.
#include "lint/lint.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <string>
#include <vector>

#include "lang/diagnostics.h"
#include "nfs/corpus.h"
#include "tests/test_util.h"

namespace nfactor {
namespace {

using lang::DiagnosticSink;
using lang::Severity;
using testutil::nf_body;

std::vector<std::string> codes(const DiagnosticSink& sink) {
  std::vector<std::string> v;
  for (const auto& d : sink.diagnostics()) v.push_back(d.code);
  return v;
}

bool has_code(const DiagnosticSink& sink, const std::string& code) {
  const auto v = codes(sink);
  return std::find(v.begin(), v.end(), code) != v.end();
}

DiagnosticSink lint(const std::string& source) {
  DiagnosticSink sink;
  lint::lint_source(source, "<test>", sink);
  return sink;
}

TEST(DiagnosticSinkTest, CountsBySeverity) {
  DiagnosticSink sink;
  EXPECT_TRUE(sink.empty());
  sink.report({{1, 1}, "a note", Severity::kNote, "NF205"});
  sink.report({{2, 1}, "a warning", Severity::kWarning, "NF202"});
  sink.report({{3, 1}, "an error", Severity::kError, "NF102"});
  EXPECT_EQ(sink.size(), 3u);
  EXPECT_EQ(sink.notes(), 1);
  EXPECT_EQ(sink.warnings(), 1);
  EXPECT_EQ(sink.errors(), 1);
  EXPECT_TRUE(sink.has_errors());
}

TEST(DiagnosticSinkTest, RenderTextSortsByLocation) {
  DiagnosticSink sink;
  sink.report({{9, 3}, "later", Severity::kWarning, "NF202"});
  sink.report({{2, 5}, "earlier", Severity::kWarning, "NF203"});
  const std::string text = sink.render_text("u.nf");
  const auto first = text.find("u.nf:2:5: warning: NF203: earlier");
  const auto second = text.find("u.nf:9:3: warning: NF202: later");
  EXPECT_NE(first, std::string::npos);
  EXPECT_NE(second, std::string::npos);
  EXPECT_LT(first, second);
}

TEST(DiagnosticSinkTest, RenderOmitsCodeWhenEmpty) {
  // Ad-hoc frontend errors (no code) keep the historical rendering.
  const lang::Diagnostic d{{4, 7}, "boom", Severity::kError, {}};
  EXPECT_EQ(d.render("u.nf"), "u.nf:4:7: boom");
  const lang::Diagnostic coded{{4, 7}, "boom", Severity::kError, "NF104"};
  EXPECT_EQ(coded.render("u.nf"), "u.nf:4:7: error: NF104: boom");
}

TEST(DiagnosticSinkTest, RenderJsonShape) {
  DiagnosticSink sink;
  sink.report({{2, 5}, "msg with \"quotes\"", Severity::kWarning, "NF202"});
  const std::string json = sink.render_json("u.nf");
  EXPECT_NE(json.find("\"unit\":\"u.nf\""), std::string::npos);
  EXPECT_NE(json.find("\"code\":\"NF202\""), std::string::npos);
  EXPECT_NE(json.find("\"severity\":\"warning\""), std::string::npos);
  EXPECT_NE(json.find("\\\"quotes\\\""), std::string::npos);
  EXPECT_NE(json.find("\"warning\":1"), std::string::npos);

  DiagnosticSink clean;
  EXPECT_NE(clean.render_json().find("\"diagnostics\":[]"),
            std::string::npos);
}

TEST(LintCatalogTest, CatalogIsStable) {
  const auto& cat = lint::checks();
  EXPECT_EQ(cat.size(), 9u);
  std::set<std::string> seen;
  for (const auto& c : cat) {
    EXPECT_TRUE(seen.insert(c.code).second) << "duplicate " << c.code;
    EXPECT_FALSE(c.name.empty());
    EXPECT_FALSE(c.summary.empty());
    if (c.code == "NF205") {
      EXPECT_EQ(c.severity, Severity::kNote);
    } else {
      EXPECT_EQ(c.severity, Severity::kWarning);
    }
  }
  EXPECT_TRUE(seen.count("NF201"));
  EXPECT_TRUE(seen.count("NF207"));
  EXPECT_TRUE(seen.count("NF208"));
  EXPECT_TRUE(seen.count("NF301"));
}

TEST(LintCheckTest, NF201UseBeforeInit) {
  const auto sink = lint(nf_body(R"(if (pkt.len > 100) {
      mark = 1;
    }
    pkt.ip_tos = mark;
    send(pkt, 0);)"));
  EXPECT_TRUE(has_code(sink, "NF201")) << sink.render_text();
}

TEST(LintCheckTest, NF201QuietWhenBothArmsAssign) {
  const auto sink = lint(nf_body(R"(if (pkt.len > 100) {
      mark = 1;
    } else {
      mark = 0;
    }
    pkt.ip_tos = mark;
    send(pkt, 0);)"));
  EXPECT_FALSE(has_code(sink, "NF201")) << sink.render_text();
}

TEST(LintCheckTest, NF202DeadStore) {
  const auto sink = lint(nf_body(R"(tmp = pkt.len + 1;
    send(pkt, 0);)"));
  EXPECT_TRUE(has_code(sink, "NF202")) << sink.render_text();
}

TEST(LintCheckTest, NF203WriteOnlyState) {
  const auto sink = lint(nf_body(R"(stamps = pkt.len;
    send(pkt, 0);)",
                                 "var stamps = 0;"));
  EXPECT_TRUE(has_code(sink, "NF203")) << sink.render_text();
}

TEST(LintCheckTest, NF203QuietOnReadState) {
  const auto sink = lint(nf_body(R"(total = total + pkt.len;
    if (total > 1000) {
      pkt.ip_tos = 1;
    }
    send(pkt, 0);)",
                                 "var total = 0;"));
  EXPECT_FALSE(has_code(sink, "NF203")) << sink.render_text();
}

TEST(LintCheckTest, NF204UnreachableArm) {
  const auto sink = lint(nf_body(R"(threshold = 100;
    if (threshold < 50) {
      pkt.ip_ttl = 1;
    }
    send(pkt, 0);)"));
  EXPECT_TRUE(has_code(sink, "NF204")) << sink.render_text();
}

TEST(LintCheckTest, NF204ConfigAgnostic) {
  // A branch on a persistent config scalar must NOT be reported dead,
  // even when the current initializer would decide it: the lint verdict
  // has to hold for every config, so persistents seed at Bottom.
  const auto sink = lint(nf_body(R"(if (limit < 50) {
      pkt.ip_ttl = 1;
    }
    send(pkt, 0);)",
                                 "var limit = 100;"));
  EXPECT_FALSE(has_code(sink, "NF204")) << sink.render_text();
}

TEST(LintCheckTest, NF205LogVarGuard) {
  const auto sink = lint(nf_body(R"(hits = hits + 1;
    if (hits > 10) {
      log(hits);
    }
    send(pkt, 0);)",
                                 "var hits = 0;"));
  EXPECT_TRUE(has_code(sink, "NF205")) << sink.render_text();
  // NF205 is a note: it never makes an NF "unclean".
  EXPECT_EQ(sink.warnings(), 0) << sink.render_text();
  EXPECT_GT(sink.notes(), 0);
}

TEST(LintCheckTest, NF206WeakUpdateShadowing) {
  const auto sink = lint(nf_body(R"(k = (pkt.ip_src, pkt.ip_dst);
    seen[k] = 1;
    seen[k] = 2;
    send(pkt, 0);)",
                                 "var seen = {};"));
  EXPECT_TRUE(has_code(sink, "NF206")) << sink.render_text();
}

TEST(LintCheckTest, NF206QuietWhenReadBetween) {
  const auto sink = lint(nf_body(R"(k = (pkt.ip_src, pkt.ip_dst);
    seen[k] = 1;
    seen[k] = seen[k] + 1;
    send(pkt, 0);)",
                                 "var seen = {};"));
  EXPECT_FALSE(has_code(sink, "NF206")) << sink.render_text();
}

TEST(LintCheckTest, NF207InvalidSendPort) {
  const auto sink = lint(nf_body("send(pkt, 99999);"));
  EXPECT_TRUE(has_code(sink, "NF207")) << sink.render_text();
}

TEST(LintCheckTest, NF207SeesThroughConfig) {
  // NF207 runs with config-folded seeds, so an out-of-range port that
  // arrives via a config scalar is still caught.
  const auto sink = lint(nf_body("send(pkt, OUT);", "var OUT = 70000;"));
  EXPECT_TRUE(has_code(sink, "NF207")) << sink.render_text();
}

TEST(LintCheckTest, NF208DuplicateArmFalseEdge) {
  // The second identical test sits on the first one's fall-through
  // path: its true arm can never run.
  const auto sink = lint(nf_body(R"(if (pkt.dport == 22) {
      send(pkt, 1);
      return;
    }
    if (pkt.dport == 22) {
      send(pkt, 2);
      return;
    }
    send(pkt, 0);
    return;)"));
  EXPECT_TRUE(has_code(sink, "NF208")) << sink.render_text();
}

TEST(LintCheckTest, NF208DuplicateArmTrueEdge) {
  // Nested re-test inside the taken arm: the inner else is dead.
  const auto sink = lint(nf_body(R"(if (pkt.dport == 22) {
      if (pkt.dport == 22) {
        send(pkt, 1);
        return;
      }
      send(pkt, 3);
      return;
    }
    send(pkt, 0);
    return;)"));
  EXPECT_TRUE(has_code(sink, "NF208")) << sink.render_text();
}

TEST(LintCheckTest, NF208QuietWhenGuardInputRedefined) {
  // The packet field the guard reads is rewritten between the two
  // tests, so the second test is a genuine re-check.
  const auto sink = lint(nf_body(R"(if (pkt.dport == 22) {
      pkt.dport = 23;
    }
    if (pkt.dport == 22) {
      send(pkt, 2);
      return;
    }
    send(pkt, 0);
    return;)"));
  EXPECT_FALSE(has_code(sink, "NF208")) << sink.render_text();
}

TEST(LintCheckTest, NF208QuietOnDistinctConditions) {
  const auto sink = lint(nf_body(R"(if (pkt.dport == 22) {
      send(pkt, 1);
      return;
    }
    if (pkt.dport == 80) {
      send(pkt, 2);
      return;
    }
    send(pkt, 0);
    return;)"));
  EXPECT_FALSE(has_code(sink, "NF208")) << sink.render_text();
}

TEST(LintCheckTest, NF301VacuousModel) {
  const auto sink = lint(nf_body("pkt.ip_ttl = 1;"));
  EXPECT_TRUE(has_code(sink, "NF301")) << sink.render_text();
}

TEST(LintFrontendTest, ParseErrorBecomesNF102) {
  DiagnosticSink sink;
  const bool ok = lint::lint_source("def main( {", "<test>", sink);
  EXPECT_FALSE(ok);
  EXPECT_TRUE(sink.has_errors());
  EXPECT_TRUE(has_code(sink, "NF102")) << sink.render_text();
}

TEST(LintFrontendTest, SemaErrorBecomesNF103) {
  DiagnosticSink sink;
  // Two mains: structurally valid syntax, rejected by sema.
  const bool ok = lint::lint_source(
      "def main() { while (true) { pkt = recv(0); send(pkt, 0); } }\n"
      "def main() { while (true) { pkt = recv(0); send(pkt, 0); } }\n",
      "<test>", sink);
  EXPECT_FALSE(ok);
  EXPECT_TRUE(sink.has_errors()) << sink.render_text();
}

TEST(LintCorpusTest, EveryBundledNfIsClean) {
  for (const auto& e : nfs::corpus()) {
    DiagnosticSink sink;
    const bool ok =
        lint::lint_source(std::string(e.source), std::string(e.name), sink);
    EXPECT_TRUE(ok) << e.name;
    EXPECT_EQ(sink.errors(), 0) << sink.render_text(std::string(e.name));
    EXPECT_EQ(sink.warnings(), 0) << sink.render_text(std::string(e.name));
  }
}

}  // namespace
}  // namespace nfactor
