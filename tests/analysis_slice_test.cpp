// Static slicing (PDG backward closure) and dynamic slicing.
#include <gtest/gtest.h>

#include "analysis/dynamic_slice.h"
#include "analysis/pdg.h"
#include "nfactor/pipeline.h"
#include "nfs/corpus.h"
#include "runtime/interp.h"
#include "tests/test_util.h"

namespace nfactor::analysis {
namespace {

using testutil::lowered;
using testutil::nf_body;

int find_send(const ir::Cfg& cfg) {
  for (const auto& n : cfg.nodes) {
    if (n->kind == ir::InstrKind::kSend) return n->id;
  }
  return -1;
}

TEST(Slicer, CriterionAlwaysInSlice) {
  const ir::Module m = lowered(nf_body("x = 1;\nsend(pkt, x);"));
  const Pdg pdg(m.body);
  const int snd = find_send(m.body);
  EXPECT_TRUE(pdg.backward_slice(snd).count(snd));
}

TEST(Slicer, PicksUpDataDependenceChain) {
  const ir::Module m = lowered(nf_body(
      "a = pkt.dport;\nb = a + 1;\nc = b * 2;\nunrelated = 99;\n"
      "send(pkt, c);"));
  const Pdg pdg(m.body);
  const auto slice = pdg.backward_slice(find_send(m.body));
  int in_slice_assigns = 0;
  bool unrelated_in = false;
  for (const int id : slice) {
    const auto& n = m.body.node(id);
    if (n.kind == ir::InstrKind::kAssign) {
      ++in_slice_assigns;
      if (n.var == "unrelated") unrelated_in = true;
    }
  }
  EXPECT_EQ(in_slice_assigns, 3);  // a, b, c
  EXPECT_FALSE(unrelated_in);
}

TEST(Slicer, IncludesControllingBranches) {
  const ir::Module m = lowered(nf_body(
      "x = 0;\nif (pkt.dport == 80) {\n  x = 1;\n}\nsend(pkt, x);"));
  const Pdg pdg(m.body);
  const auto slice = pdg.backward_slice(find_send(m.body));
  bool branch_in = false;
  for (const int id : slice) {
    if (m.body.node(id).kind == ir::InstrKind::kBranch) branch_in = true;
  }
  EXPECT_TRUE(branch_in);
}

TEST(Slicer, ExcludesLogOnlyCode) {
  const ir::Module m = lowered(nf_body(
      "stat = stat + 1;\nlog(\"count\", stat);\nsend(pkt, 1);",
      "var stat = 0;"));
  const Pdg pdg(m.body);
  const auto slice = pdg.backward_slice(find_send(m.body));
  for (const int id : slice) {
    const auto& n = m.body.node(id);
    EXPECT_NE(n.kind, ir::InstrKind::kCall);  // the log() call
    if (n.kind == ir::InstrKind::kAssign) {
      EXPECT_NE(n.var, "stat");
    }
  }
}

TEST(Slicer, LocSpecificCriterionNarrowsSeeds) {
  const ir::Module m = lowered(nf_body(
      "a = pkt.dport;\nb = pkt.ip_ttl;\nsend(pkt, a + b);"));
  const Pdg pdg(m.body);
  const int snd = find_send(m.body);
  const auto only_a = pdg.backward_slice(snd, {"a"});
  bool b_in = false;
  for (const int id : only_a) {
    const auto& n = m.body.node(id);
    if (n.kind == ir::InstrKind::kAssign && n.var == "b") b_in = true;
  }
  EXPECT_FALSE(b_in);
}

/// Dependence-closure property over all corpus NFs: every slice is closed
/// under data and control dependences, and slicing is idempotent.
class SliceClosure : public ::testing::TestWithParam<const char*> {};

TEST_P(SliceClosure, SlicesAreDependenceClosed) {
  const auto r = pipeline::run_source(nfs::find(GetParam()).source,
                                      GetParam());
  const Pdg& pdg = *r.pdg;
  for (const std::set<int>* slice :
       {&r.pkt_slice, &r.state_slice, &r.union_slice}) {
    for (const int id : *slice) {
      for (const int d : pdg.data_deps(id)) {
        EXPECT_TRUE(slice->count(d))
            << "data dep " << d << " of " << id << " missing";
      }
      for (const int c : pdg.control_deps(id)) {
        EXPECT_TRUE(slice->count(c))
            << "control dep " << c << " of " << id << " missing";
      }
    }
  }
}

TEST_P(SliceClosure, EverySendIsInThePacketSlice) {
  const auto r = pipeline::run_source(nfs::find(GetParam()).source,
                                      GetParam());
  for (const auto& n : r.module->body.nodes) {
    if (n->kind == ir::InstrKind::kSend) {
      EXPECT_TRUE(r.pkt_slice.count(n->id));
    }
  }
}

TEST_P(SliceClosure, SliceIsSubsetOfProgram) {
  const auto r = pipeline::run_source(nfs::find(GetParam()).source,
                                      GetParam());
  EXPECT_LE(r.union_slice.size(), r.module->body.size());
  EXPECT_LE(r.loc_slice, r.loc_orig);
}

INSTANTIATE_TEST_SUITE_P(Corpus, SliceClosure,
                         ::testing::Values("lb", "balance", "snort_lite",
                                           "nat", "firewall", "monitor",
                                           "l2_switch", "dpi", "heavy_hitter",
                                           "synflood"));

// ---------------------------------------------------------------------------
// Dynamic slicing
// ---------------------------------------------------------------------------

TEST(DynamicSlice, SubsetOfExecutedNodesAndStaticSlice) {
  const auto r = pipeline::run_source(nfs::find("lb").source, "lb");
  runtime::Interpreter interp(*r.module);
  interp.enable_trace(true);
  const auto out = interp.process(
      testutil::tcp_packet("10.0.0.1", 1234, "3.3.3.3", 80));
  ASSERT_FALSE(out.sent.empty());

  const Trace& trace = interp.trace();
  int criterion = -1;
  for (std::size_t i = 0; i < trace.size(); ++i) {
    if (r.module->body.node(trace[i].node).kind == ir::InstrKind::kSend) {
      criterion = static_cast<int>(i);
    }
  }
  ASSERT_GE(criterion, 0);

  const auto dyn = dynamic_slice_nodes(trace, *r.pdg, criterion);
  std::set<int> executed;
  for (const auto& ev : trace) executed.insert(ev.node);
  const auto stat = r.pdg->backward_slice(trace[static_cast<std::size_t>(criterion)].node);

  for (const int n : dyn) {
    EXPECT_TRUE(executed.count(n));
    EXPECT_TRUE(stat.count(n)) << "dynamic slice exceeded static slice at " << n;
  }
}

TEST(DynamicSlice, ExcludesLogStatements) {
  const auto r = pipeline::run_source(nfs::find("lb").source, "lb");
  runtime::Interpreter interp(*r.module);
  interp.enable_trace(true);
  interp.process(testutil::tcp_packet("10.0.0.1", 1234, "3.3.3.3", 80));
  const Trace& trace = interp.trace();
  int criterion = -1;
  for (std::size_t i = 0; i < trace.size(); ++i) {
    if (r.module->body.node(trace[i].node).kind == ir::InstrKind::kSend) {
      criterion = static_cast<int>(i);
    }
  }
  const auto dyn = dynamic_slice_nodes(trace, *r.pdg, criterion);
  for (const int n : dyn) {
    const auto& node = r.module->body.node(n);
    if (node.kind == ir::InstrKind::kAssign) {
      EXPECT_NE(node.var, "pass_stat");
      EXPECT_NE(node.var, "drop_stat");
    }
  }
}

TEST(DynamicSlice, FirstPacketSliceTakesNewConnectionArm) {
  const auto r = pipeline::run_source(nfs::find("lb").source, "lb");
  runtime::Interpreter interp(*r.module);
  interp.enable_trace(true);
  interp.process(testutil::tcp_packet("10.0.0.1", 1234, "3.3.3.3", 80));
  const Trace& trace = interp.trace();
  int criterion = static_cast<int>(trace.size()) - 1;
  const auto dyn = dynamic_slice_nodes(trace, *r.pdg, criterion);
  // The round-robin selection (reads rr_idx) must be in the slice of a
  // first packet; the map-hit lookup must not be.
  bool saw_rr = false, saw_map_hit = false;
  for (const int n : dyn) {
    const auto& node = r.module->body.node(n);
    const std::string text = node.to_string();
    if (text.find("servers[rr_idx]") != std::string::npos) saw_rr = true;
    if (text.find("= f2b_nat[") != std::string::npos) saw_map_hit = true;
  }
  EXPECT_TRUE(saw_rr);
  EXPECT_FALSE(saw_map_hit);
}

TEST(DynamicSlice, SecondPacketUsesMapHitArm) {
  const auto r = pipeline::run_source(nfs::find("lb").source, "lb");
  runtime::Interpreter interp(*r.module);
  const auto p = testutil::tcp_packet("10.0.0.1", 1234, "3.3.3.3", 80);
  interp.process(p);  // installs the mapping, untraced
  interp.enable_trace(true);
  interp.process(p);  // traced second packet
  const Trace& trace = interp.trace();
  int criterion = static_cast<int>(trace.size()) - 1;
  const auto dyn = dynamic_slice_nodes(trace, *r.pdg, criterion);
  bool saw_map_hit = false;
  for (const int n : dyn) {
    if (r.module->body.node(n).to_string().find("= f2b_nat[") !=
        std::string::npos) {
      saw_map_hit = true;
    }
  }
  EXPECT_TRUE(saw_map_hit);
}

}  // namespace
}  // namespace nfactor::analysis
