// Model validation (solver-backed consistency) and model diffing.
#include "model/validate.h"

#include <gtest/gtest.h>

#include "nfactor/pipeline.h"
#include "nfs/corpus.h"

namespace nfactor::model {
namespace {

pipeline::PipelineResult run_nf(const char* name) {
  return pipeline::run_source(nfs::find(name).source, name);
}

class ValidateCorpus : public ::testing::TestWithParam<const char*> {};

TEST_P(ValidateCorpus, SynthesizedModelsAreConsistent) {
  const auto r = run_nf(GetParam());
  const auto report = validate(r.model);
  EXPECT_TRUE(report.ok()) << report.summary();
  EXPECT_GT(report.pairs_checked + r.model.entries.size(), 0u);
}

INSTANTIATE_TEST_SUITE_P(Corpus, ValidateCorpus,
                         ::testing::Values("lb", "balance", "snort_lite",
                                           "nat", "firewall", "monitor",
                                           "l2_switch", "dpi",
                                           "heavy_hitter", "synflood"));

TEST(Validate, DetectsDeadEntry) {
  auto r = run_nf("firewall");
  // Sabotage: give one entry contradictory flow conditions.
  auto& e = r.model.entries.front();
  const auto dport =
      symex::make_var("pkt.dport", symex::VarClass::kPkt);
  e.flow_match.push_back(
      symex::make_bin(lang::BinOp::kEq, dport, symex::make_int(1)));
  e.flow_match.push_back(
      symex::make_bin(lang::BinOp::kEq, dport, symex::make_int(2)));
  const auto report = validate(r.model);
  bool dead = false;
  for (const auto& i : report.issues) {
    dead |= i.kind == ValidationIssue::Kind::kUnsatisfiableEntry;
  }
  EXPECT_TRUE(dead) << report.summary();
}

TEST(Validate, DetectsOverlappingEntries) {
  auto r = run_nf("firewall");
  // Duplicate an entry: trivially overlapping.
  r.model.entries.push_back(r.model.entries.front().path_nodes.empty()
                                ? r.model.entries.front()
                                : r.model.entries.front());
  const auto report = validate(r.model);
  bool overlap = false;
  for (const auto& i : report.issues) {
    overlap |= i.kind == ValidationIssue::Kind::kOverlap;
  }
  EXPECT_TRUE(overlap) << report.summary();
}

TEST(Validate, SummaryIsReadable) {
  const auto r = run_nf("nat");
  const auto report = validate(r.model);
  EXPECT_NE(report.summary().find("pairs checked"), std::string::npos);
}

TEST(Diff, IdenticalModelsAreIdentical) {
  const auto a = run_nf("lb");
  const auto b = run_nf("lb");
  const auto d = diff_models(a.model, b.model);
  EXPECT_TRUE(d.identical()) << d.summary();
  EXPECT_EQ(d.unchanged, a.model.entries.size());
}

TEST(Diff, ConfigChangeShowsUp) {
  const auto before = run_nf("heavy_hitter");
  // A revised NF version: threshold semantics changed from > to >=.
  std::string src(nfs::find("heavy_hitter").source);
  const auto pos = src.find("nb > THRESH");
  ASSERT_NE(pos, std::string::npos);
  src.replace(pos, 11, "nb >= THRESH");
  const auto after = pipeline::run_source(src, "heavy_hitter_v2");

  const auto d = diff_models(before.model, after.model);
  EXPECT_FALSE(d.identical());
  EXPECT_FALSE(d.added.empty());
  EXPECT_FALSE(d.removed.empty());
  EXPECT_NE(d.summary().find("added"), std::string::npos);
}

TEST(Diff, UnrelatedNfsShareNothing) {
  const auto a = run_nf("nat");
  const auto b = run_nf("firewall");
  const auto d = diff_models(a.model, b.model);
  EXPECT_EQ(d.unchanged, 0u);
  EXPECT_EQ(d.added.size(), b.model.entries.size());
  EXPECT_EQ(d.removed.size(), a.model.entries.size());
}

TEST(Diff, SignatureIgnoresEntryOrder) {
  auto a = run_nf("nat");
  auto b = run_nf("nat");
  std::reverse(b.model.entries.begin(), b.model.entries.end());
  EXPECT_TRUE(diff_models(a.model, b.model).identical());
}

}  // namespace
}  // namespace nfactor::model
