// The dataplane compiler's differential test wall (docs/dataplane.md):
// FDD structural invariants on hand-built rule sets and on every
// bundled NF's compiled table, compiled-vs-interpreter equivalence over
// edge-case and random batches for the whole corpus (with and without
// config specialization), golden compiled-table dumps for
// nat/firewall/snort_lite (NFACTOR_UPDATE_GOLDEN=1 regenerates), and
// byte-identity of the dump across SE worker widths.
#include "dataplane/engine.h"

#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <map>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "dataplane/fdd.h"
#include "dataplane/threaded.h"
#include "model/interp.h"
#include "netsim/packet_gen.h"
#include "nfactor/pipeline.h"
#include "nfs/corpus.h"
#include "tests/test_util.h"

#ifndef NFACTOR_SOURCE_DIR
#error "tests/CMakeLists.txt must define NFACTOR_SOURCE_DIR"
#endif

namespace nfactor::dataplane {
namespace {

using runtime::Value;
using symex::SymRef;
using symex::VarClass;
using testutil::tcp_packet;

SymRef pkt_field(const char* f) {
  return symex::make_var(std::string("pkt.") + f, VarClass::kPkt);
}

SymRef eq(SymRef a, SymRef b) {
  return symex::make_bin(lang::BinOp::kEq, std::move(a), std::move(b));
}

// ---------------------------------------------------------------------------
// FDD builder invariants on hand-built rule sets
// ---------------------------------------------------------------------------

TEST(FddBuild, FirstMatchWinsOnOverlap) {
  // Rule 0: dport == 80 -> entry 0. Rule 1: (no constraint) -> entry 1.
  // Both match a dport-80 packet; the FDD must commit to entry 0 on the
  // true edge and entry 1 everywhere else.
  const SymRef a = eq(pkt_field("dport"), symex::make_int(80));
  const std::vector<FddRule> rules = {{0, {a}}, {1, {}}};
  const Fdd f = build_fdd(rules);
  ASSERT_EQ(f.nodes.size(), 1u);
  EXPECT_EQ(f.root, 0);
  EXPECT_EQ(f.nodes[0].on_true, leaf_ref(0));
  EXPECT_EQ(f.nodes[0].on_false, leaf_ref(1));
  // Rule 1 never mentions the atom, so it also survives a throw.
  EXPECT_EQ(f.nodes[0].on_except, leaf_ref(1));
  EXPECT_TRUE(check_ordered(f));
  EXPECT_TRUE(check_reduced(f));
}

TEST(FddBuild, ComplementsUnifyIntoOneTest) {
  // negate() folds !(a == b) into a != b; both polarities of the same
  // comparison must share a single test node.
  const SymRef c = eq(pkt_field("ip_proto"), symex::make_int(6));
  const std::vector<FddRule> rules = {{0, {c}}, {1, {symex::negate(c)}}};
  const Fdd f = build_fdd(rules);
  EXPECT_EQ(f.stats.atoms, 1u);
  EXPECT_EQ(f.stats.complement_pairs, 1u);
  ASSERT_EQ(f.nodes.size(), 1u);
  EXPECT_EQ(f.nodes[0].on_true, leaf_ref(0));
  EXPECT_EQ(f.nodes[0].on_false, leaf_ref(1));
  // A throwing atom fails *both* rules (each mentions it), so the
  // except edge is the default drop.
  EXPECT_EQ(f.nodes[0].on_except, leaf_ref(-1));
}

TEST(FddBuild, ContradictoryRuleIsPruned) {
  const SymRef c = eq(pkt_field("sport"), symex::make_int(53));
  const std::vector<FddRule> rules = {{0, {c, symex::negate(c)}}, {1, {}}};
  const Fdd f = build_fdd(rules);
  EXPECT_EQ(f.stats.infeasible, 1u);
  EXPECT_EQ(f.stats.rules, 1u);
  // Only the unconstrained rule remains: the whole FDD is its leaf.
  EXPECT_EQ(f.root, leaf_ref(1));
  EXPECT_TRUE(f.nodes.empty());
}

TEST(FddBuild, SharedContinuationIsBuiltOnce) {
  // Rule 0 tests atom a; rule 1 tests atom z. After a is false or
  // throws, the continuation is the same "test z" subtree — the memo
  // must reuse it, making the DAG a genuine DAG.
  const SymRef a = eq(pkt_field("dport"), symex::make_int(80));
  const SymRef z = eq(pkt_field("sport"), symex::make_int(1000));
  const std::vector<FddRule> rules = {{0, {a}}, {1, {z}}};
  const Fdd f = build_fdd(rules);
  ASSERT_EQ(f.nodes.size(), 2u);
  EXPECT_EQ(f.nodes[1].on_false, f.nodes[1].on_except);
  EXPECT_GE(f.stats.memo_hits, 1u);
  EXPECT_GE(shared_edge_count(f), 1u);
  EXPECT_TRUE(check_ordered(f));
  EXPECT_TRUE(check_reduced(f));
}

TEST(FddBuild, NodeBudgetThrows) {
  // 2^k distinct outcomes on k independent atoms with a tiny budget.
  std::vector<FddRule> rules;
  for (int i = 0; i < 12; ++i) {
    std::vector<SymRef> atoms;
    for (int b = 0; b < 12; ++b) {
      const SymRef c = eq(pkt_field("ip_id"), symex::make_int(b));
      atoms.push_back(((i >> b) & 1) != 0 ? c : symex::negate(c));
    }
    rules.push_back(FddRule{i, std::move(atoms)});
  }
  FddOptions opts;
  opts.max_nodes = 4;
  EXPECT_THROW(build_fdd(rules, opts), std::runtime_error);
}

// ---------------------------------------------------------------------------
// Compiled-vs-interpreter equivalence
// ---------------------------------------------------------------------------

/// Rebuild an Fdd view of a flattened table so the structural checkers
/// apply to the exact artifact the engine executes.
Fdd to_fdd(const CompiledTable& t) {
  Fdd f;
  for (const auto& p : t.preds) f.atoms.push_back(p.expr);
  const auto conv = [&](std::int32_t e) -> FddRef {
    return e >= 0 ? e : leaf_ref(t.leaves[static_cast<std::size_t>(~e)].entry);
  };
  for (const auto& n : t.nodes) {
    f.nodes.push_back(
        FddNode{n.pred, conv(n.on_true), conv(n.on_false), conv(n.on_except)});
  }
  f.root = conv(t.root);
  return f;
}

std::vector<netsim::Packet> test_batch() {
  auto packets = netsim::PacketGen::edge_cases();
  netsim::PacketGen gen(11);
  const auto random = gen.batch(250);
  packets.insert(packets.end(), random.begin(), random.end());
  // Edge cases again, now against warmed-up state.
  const auto edges = netsim::PacketGen::edge_cases();
  packets.insert(packets.end(), edges.begin(), edges.end());
  return packets;
}

/// Run the interpreter and both compiled tiers in lockstep and require
/// identical matched entries, identical emitted packets/ports, and
/// identical final oisVar state.
void expect_equivalent(const model::Model& m,
                       const std::map<std::string, Value>& store,
                       const std::vector<netsim::Packet>& packets,
                       bool specialize, const std::string& label) {
  CompileOptions copts;
  if (specialize) copts.bindings = &store;
  const CompiledTable table = compile(m, copts);
  model::ModelInterpreter mi(m, store);
  DataplaneEngine eng(table, store);
  DataplaneEngine thr(table, store, EngineOptions{Tier::kThreaded});
  for (std::size_t i = 0; i < packets.size(); ++i) {
    const model::ModelOutput a = mi.process(packets[i]);
    const model::ModelOutput b = eng.process(packets[i]);
    const model::ModelOutput c = thr.process(packets[i]);
    ASSERT_EQ(a.matched_entry, b.matched_entry)
        << label << ": packet " << i << ": " << netsim::to_string(packets[i]);
    ASSERT_EQ(a.matched_entry, c.matched_entry)
        << label << " (threaded): packet " << i << ": "
        << netsim::to_string(packets[i]);
    ASSERT_EQ(a.sent.size(), b.sent.size()) << label << ": packet " << i;
    ASSERT_EQ(a.sent.size(), c.sent.size())
        << label << " (threaded): packet " << i;
    for (std::size_t j = 0; j < a.sent.size(); ++j) {
      EXPECT_TRUE(a.sent[j].first == b.sent[j].first)
          << label << ": packet " << i << " send " << j;
      EXPECT_EQ(a.sent[j].second, b.sent[j].second)
          << label << ": packet " << i << " send " << j;
      EXPECT_TRUE(a.sent[j].first == c.sent[j].first)
          << label << " (threaded): packet " << i << " send " << j;
      EXPECT_EQ(a.sent[j].second, c.sent[j].second)
          << label << " (threaded): packet " << i << " send " << j;
    }
  }
  for (const std::string& v : m.ois_vars) {
    const Value* a = mi.state(v);
    for (DataplaneEngine* e : {&eng, &thr}) {
      const Value* b = e->state(v);
      const char* tier = e == &eng ? "table" : "threaded";
      ASSERT_EQ(a == nullptr, b == nullptr)
          << label << ": state " << v << " (" << tier << ")";
      if (a != nullptr && b != nullptr) {
        EXPECT_TRUE(runtime::value_eq(*a, *b))
            << label << ": state " << v << " (" << tier << "): interpreter "
            << runtime::to_string(*a) << " vs compiled "
            << runtime::to_string(*b);
      }
    }
  }
}

class DataplaneCorpus : public ::testing::TestWithParam<nfs::CorpusEntry> {};

TEST_P(DataplaneCorpus, CompiledMatchesInterpreter) {
  const auto& e = GetParam();
  const auto r =
      pipeline::run_source(std::string(e.source), std::string(e.name));
  ASSERT_FALSE(r.degraded()) << e.name;
  const auto store = model::initial_store(*r.module);
  const auto packets = test_batch();
  expect_equivalent(r.model, store, packets, /*specialize=*/true,
                    std::string(e.name) + " (specialized)");
  expect_equivalent(r.model, store, packets, /*specialize=*/false,
                    std::string(e.name) + " (generic)");
}

TEST_P(DataplaneCorpus, StructuralInvariantsHold) {
  const auto& e = GetParam();
  const auto r =
      pipeline::run_source(std::string(e.source), std::string(e.name));
  const auto store = model::initial_store(*r.module);
  CompileOptions copts;
  copts.bindings = &store;
  const CompiledTable table = compile(r.model, copts);
  const Fdd f = to_fdd(table);
  // Variable-ordered: no atom re-tested on any path. Reduced: no
  // all-edges-equal node, no structural duplicates.
  EXPECT_TRUE(check_ordered(f)) << e.name;
  EXPECT_TRUE(check_reduced(f)) << e.name;
  ASSERT_FALSE(table.leaves.empty()) << e.name;
  EXPECT_EQ(table.leaves[0].entry, -1) << e.name;  // default drop slot
}

/// Tier-2 batch equivalence: the threaded engine's execute_batch must
/// produce byte-identical verdicts, sends, and post-state to the
/// table-walk engine's, for every corpus NF.
TEST_P(DataplaneCorpus, ThreadedBatchMatchesTableWalk) {
  const auto& e = GetParam();
  const auto r =
      pipeline::run_source(std::string(e.source), std::string(e.name));
  const auto store = model::initial_store(*r.module);
  CompileOptions copts;
  copts.bindings = &store;
  const CompiledTable table = compile(r.model, copts);
  const auto packets = test_batch();

  DataplaneEngine walk(table, store);
  DataplaneEngine thr(table, store, EngineOptions{Tier::kThreaded});
  ASSERT_EQ(thr.tier(), Tier::kThreaded);
  BatchOutput wa;
  BatchOutput wb;
  // Two batches through each: the second hits warmed-up per-flow state.
  for (int round = 0; round < 2; ++round) {
    wa.clear();
    wb.clear();
    walk.execute_batch(packets, wa);
    thr.execute_batch(packets, wb);
    ASSERT_EQ(wa.matched, wb.matched) << e.name << " round " << round;
    const auto sa = wa.sends();
    const auto sb = wb.sends();
    ASSERT_EQ(sa.size(), sb.size()) << e.name << " round " << round;
    for (std::size_t j = 0; j < sa.size(); ++j) {
      EXPECT_EQ(sa[j].src, sb[j].src) << e.name << " send " << j;
      EXPECT_EQ(sa[j].port, sb[j].port) << e.name << " send " << j;
      EXPECT_TRUE(sa[j].packet() == sb[j].packet()) << e.name << " send " << j;
    }
  }
  for (const std::string& v : r.model.ois_vars) {
    const Value* a = walk.state(v);
    const Value* b = thr.state(v);
    ASSERT_EQ(a == nullptr, b == nullptr) << e.name << ": state " << v;
    if (a != nullptr && b != nullptr) {
      EXPECT_TRUE(runtime::value_eq(*a, *b)) << e.name << ": state " << v;
    }
  }
}

/// Every FlatNode must lower to a test chain of at least one op (the
/// splitter may emit several per node), every leaf to exactly one
/// terminal, with the entry pc resolving the table root.
TEST_P(DataplaneCorpus, ThreadedLoweringShape) {
  const auto& e = GetParam();
  const auto r =
      pipeline::run_source(std::string(e.source), std::string(e.name));
  const auto store = model::initial_store(*r.module);
  CompileOptions copts;
  copts.bindings = &store;
  const CompiledTable table = compile(r.model, copts);
  const ThreadedCode tc = lower_threaded(table);
  EXPECT_EQ(tc.code.size(), tc.node_ops + table.leaves.size()) << e.name;
  EXPECT_GE(tc.node_ops, table.nodes.size()) << e.name;
  EXPECT_EQ(tc.node_pc.size(), table.nodes.size()) << e.name;
  EXPECT_EQ(tc.fused_ops + tc.prog_ops + tc.generic_ops, tc.node_ops)
      << e.name;
  // Branch targets are pre-resolved: every node edge lands inside the
  // program, every node entry lands inside the test block, every
  // terminal carries its leaf index.
  const auto in_range = [&](std::int32_t pc) {
    return pc >= 0 && static_cast<std::size_t>(pc) < tc.code.size();
  };
  EXPECT_TRUE(in_range(tc.entry_pc)) << e.name;
  for (const std::int32_t entry : tc.node_pc) {
    EXPECT_TRUE(entry >= 0 && static_cast<std::size_t>(entry) < tc.node_ops)
        << e.name << " entry pc" << entry;
  }
  for (std::size_t i = 0; i < tc.node_ops; ++i) {
    EXPECT_TRUE(in_range(tc.code[i].t)) << e.name << " pc" << i;
    EXPECT_TRUE(in_range(tc.code[i].f)) << e.name << " pc" << i;
    EXPECT_TRUE(in_range(tc.code[i].x)) << e.name << " pc" << i;
  }
  for (std::size_t l = 0; l < table.leaves.size(); ++l) {
    const ThreadedOp& term = tc.code[tc.node_ops + l];
    EXPECT_EQ(term.aux, static_cast<std::int32_t>(l)) << e.name;
    EXPECT_EQ(term.entry, table.leaves[l].entry) << e.name;
  }
}

/// The vectored executor's sweep order: topo must start at the entry,
/// contain no duplicates, and order every branch edge forward — an op
/// can only push packets onto queues that have not been drained yet.
TEST_P(DataplaneCorpus, ThreadedTopoOrdersEveryEdgeForward) {
  const auto& e = GetParam();
  const auto r =
      pipeline::run_source(std::string(e.source), std::string(e.name));
  const auto store = model::initial_store(*r.module);
  CompileOptions copts;
  copts.bindings = &store;
  const CompiledTable table = compile(r.model, copts);
  const ThreadedCode tc = lower_threaded(table);
  const auto test_ops = static_cast<std::int32_t>(tc.node_ops);
  if (tc.entry_pc >= test_ops) {
    EXPECT_TRUE(tc.topo.empty()) << e.name;
    return;
  }
  ASSERT_FALSE(tc.topo.empty()) << e.name;
  EXPECT_EQ(tc.topo.front(), tc.entry_pc) << e.name;
  std::vector<std::int32_t> pos(tc.node_ops, -1);
  for (std::size_t i = 0; i < tc.topo.size(); ++i) {
    const std::int32_t pc = tc.topo[i];
    ASSERT_TRUE(pc >= 0 && pc < test_ops) << e.name << " pc" << pc;
    EXPECT_EQ(pos[static_cast<std::size_t>(pc)], -1)
        << e.name << " duplicate pc" << pc;
    pos[static_cast<std::size_t>(pc)] = static_cast<std::int32_t>(i);
  }
  for (const std::int32_t pc : tc.topo) {
    const ThreadedOp& o = tc.code[static_cast<std::size_t>(pc)];
    for (const std::int32_t nx : {o.t, o.f, o.x}) {
      if (nx >= test_ops) continue;  // terminal edge
      EXPECT_GT(pos[static_cast<std::size_t>(nx)],
                pos[static_cast<std::size_t>(pc)])
          << e.name << " edge pc" << pc << " -> pc" << nx;
    }
  }
}

std::string corpus_name(
    const ::testing::TestParamInfo<nfs::CorpusEntry>& info) {
  return std::string(info.param.name);
}

INSTANTIATE_TEST_SUITE_P(AllNfs, DataplaneCorpus,
                         ::testing::ValuesIn(nfs::corpus()), corpus_name);

// ---------------------------------------------------------------------------
// Batch execution
// ---------------------------------------------------------------------------

TEST(DataplaneBatch, BatchEqualsSequentialProcess) {
  const auto r = pipeline::run_source(nfs::find("firewall").source, "firewall");
  const auto store = model::initial_store(*r.module);
  CompileOptions copts;
  copts.bindings = &store;
  const CompiledTable table = compile(r.model, copts);
  const auto packets = test_batch();

  DataplaneEngine seq(table, store);
  DataplaneEngine bat(table, store);
  BatchOutput out;
  bat.execute_batch(packets, out);

  ASSERT_EQ(out.matched.size(), packets.size());
  const auto sends = out.sends();
  std::size_t send_at = 0;
  for (std::size_t i = 0; i < packets.size(); ++i) {
    const model::ModelOutput o = seq.process(packets[i]);
    EXPECT_EQ(o.matched_entry, out.matched[i]) << "packet " << i;
    for (const auto& [pkt, port] : o.sent) {
      ASSERT_LT(send_at, sends.size());
      EXPECT_EQ(sends[send_at].src, static_cast<std::int32_t>(i));
      EXPECT_TRUE(sends[send_at].packet() == pkt);
      EXPECT_EQ(sends[send_at].port, port);
      ++send_at;
    }
  }
  EXPECT_EQ(send_at, sends.size());
  // Same engine, second batch on a cleared output: state carries over
  // exactly as sequential processing would.
  out.clear();
  bat.execute_batch(packets, out);
  ASSERT_EQ(out.matched.size(), packets.size());
  for (std::size_t i = 0; i < packets.size(); ++i) {
    const model::ModelOutput o = seq.process(packets[i]);
    EXPECT_EQ(o.matched_entry, out.matched[i]) << "second batch, packet " << i;
  }
}

// ---------------------------------------------------------------------------
// Exception semantics and config specialization on hand-built models
// ---------------------------------------------------------------------------

TEST(DataplaneSemantics, ThrowingAtomFailsOnlyEntriesMentioningIt) {
  // Entry 0 matches on a map lookup that throws while the map is empty;
  // entry 1 matches dport 80 without touching the map. The interpreter
  // lets entry 1 win until the mapping exists — the engine must too.
  model::Model m;
  m.nf_name = "hand";
  m.ois_vars = {"sessions"};
  const SymRef key = symex::make_tuple({pkt_field("sport")});
  const SymRef lookup =
      symex::make_map_get(symex::make_map_base("sessions"), key);
  model::ModelEntry e0;
  e0.state_match = {eq(lookup, symex::make_int(1))};
  e0.flow_action.push_back(model::SendAction{{}, symex::make_int(1)});
  model::ModelEntry e1;
  e1.flow_match = {eq(pkt_field("dport"), symex::make_int(80))};
  e1.flow_action.push_back(model::SendAction{{}, symex::make_int(2)});
  e1.state_action["sessions"] = symex::make_map_store(
      symex::make_map_base("sessions"), key, symex::make_int(1));
  m.entries = {e0, e1};

  std::map<std::string, Value> store;
  store["sessions"] = Value(std::make_shared<runtime::MapV>());

  CompileOptions copts;
  copts.bindings = &store;
  const CompiledTable table = compile(m, copts);
  model::ModelInterpreter mi(m, store);
  DataplaneEngine eng(table, store);

  const auto p = tcp_packet("10.0.0.1", 4242, "10.0.0.2", 80);
  // First packet: the lookup throws, entry 1 matches and installs state.
  auto a = mi.process(p);
  auto b = eng.process(p);
  ASSERT_EQ(a.matched_entry, 1);
  ASSERT_EQ(b.matched_entry, 1);
  // Second packet: the mapping exists, entry 0 now matches on both sides.
  a = mi.process(p);
  b = eng.process(p);
  ASSERT_EQ(a.matched_entry, 0);
  ASSERT_EQ(b.matched_entry, 0);
  EXPECT_EQ(a.sent[0].second, b.sent[0].second);
}

TEST(DataplaneSemantics, ConfigSpecializationFoldsAndCompiles) {
  model::Model m;
  m.nf_name = "hand";
  m.cfg_vars = {"WATCH"};
  model::ModelEntry e0;
  e0.config_match = {};
  e0.flow_match = {
      eq(pkt_field("dport"), symex::make_var("WATCH", VarClass::kCfg))};
  e0.flow_action.push_back(model::SendAction{{}, symex::make_int(1)});
  m.entries = {e0};

  std::map<std::string, Value> store;
  store["WATCH"] = Value(runtime::Int{80});

  CompileOptions copts;
  copts.bindings = &store;
  const CompiledTable table = compile(m, copts);
  // The config scalar is substituted and the predicate compiles to a
  // stack program over packet fields only.
  ASSERT_EQ(table.preds.size(), 1u);
  EXPECT_TRUE(table.preds[0].prog.compiled());
  EXPECT_EQ(symex::to_string(table.preds[0].expr), "(pkt.dport == 80)");

  model::ModelInterpreter mi(m, store);
  DataplaneEngine eng(table, store);
  for (const int dport : {80, 81}) {
    const auto p = tcp_packet("10.0.0.1", 1234, "10.0.0.2", dport);
    EXPECT_EQ(mi.process(p).matched_entry, eng.process(p).matched_entry)
        << "dport " << dport;
  }
}

// ---------------------------------------------------------------------------
// Golden compiled-table dumps (nat / firewall / snort_lite)
// ---------------------------------------------------------------------------

bool update_mode() { return std::getenv("NFACTOR_UPDATE_GOLDEN") != nullptr; }

std::string golden_path(const std::string& nf) {
  return std::string(NFACTOR_SOURCE_DIR) + "/tests/golden/dataplane/" + nf +
         ".txt";
}

std::string read_file(const std::string& path, bool* ok) {
  std::ifstream in(path);
  *ok = static_cast<bool>(in);
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

/// nf-synth --compile parity: simplify on (fold_config), bindings from
/// the module's initial store.
std::string compiled_dump(const std::string& nf, int jobs) {
  pipeline::PipelineOptions opts;
  opts.simplify.enabled = true;
  opts.simplify.fold_config = true;
  opts.jobs = jobs;
  const auto r = pipeline::run_source(nfs::find(nf).source, nf, opts);
  const auto store = model::initial_store(*r.module);
  CompileOptions copts;
  copts.bindings = &store;
  return compile(r.model, copts).to_text();
}

class DataplaneGolden : public ::testing::TestWithParam<const char*> {};

TEST_P(DataplaneGolden, DumpMatchesGolden) {
  const std::string nf = GetParam();
  const std::string dump = compiled_dump(nf, /*jobs=*/1);
  if (update_mode()) {
    std::ofstream out(golden_path(nf));
    ASSERT_TRUE(out) << "cannot write " << golden_path(nf);
    out << dump;
    return;
  }
  bool ok = false;
  const std::string expected = read_file(golden_path(nf), &ok);
  ASSERT_TRUE(ok) << "missing golden " << golden_path(nf)
                  << " (run with NFACTOR_UPDATE_GOLDEN=1 to create)";
  EXPECT_EQ(expected, dump) << "golden mismatch for " << golden_path(nf);
}

TEST_P(DataplaneGolden, DumpIdenticalAcrossJobs) {
  const std::string nf = GetParam();
  EXPECT_EQ(compiled_dump(nf, 1), compiled_dump(nf, 4)) << nf;
}

INSTANTIATE_TEST_SUITE_P(Corpus, DataplaneGolden,
                         ::testing::Values("nat", "firewall", "snort_lite"),
                         [](const ::testing::TestParamInfo<const char*>& i) {
                           return std::string(i.param);
                         });

/// nf-synth --compile --tier 2 parity: the threaded dump must be as
/// jobs-deterministic as the table dump it lowers from.
std::string threaded_dump(const std::string& nf, int jobs) {
  pipeline::PipelineOptions opts;
  opts.simplify.enabled = true;
  opts.simplify.fold_config = true;
  opts.jobs = jobs;
  const auto r = pipeline::run_source(nfs::find(nf).source, nf, opts);
  const auto store = model::initial_store(*r.module);
  CompileOptions copts;
  copts.bindings = &store;
  const CompiledTable table = compile(r.model, copts);
  return lower_threaded(table).to_text(table);
}

TEST_P(DataplaneGolden, ThreadedDumpIdenticalAcrossJobs) {
  const std::string nf = GetParam();
  const std::string d1 = threaded_dump(nf, 1);
  EXPECT_EQ(d1, threaded_dump(nf, 4)) << nf;
  EXPECT_NE(d1.find("# nfactor dataplane threaded v1"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Payload scan: memchr-hop vs Boyer–Moore–Horspool
// ---------------------------------------------------------------------------

std::vector<std::uint8_t> bytes(const std::string& s) {
  return {s.begin(), s.end()};
}

TEST(PayloadScan, BmhKicksInAtThreshold) {
  EXPECT_FALSE(make_needle("exploit").use_bmh);  // 7 bytes: memchr hop
  EXPECT_TRUE(make_needle("USER root").use_bmh);
  EXPECT_TRUE(make_needle("/etc/shadow").use_bmh);
  EXPECT_EQ(make_needle("12345678").use_bmh, kBmhMinNeedle <= 8);
}

TEST(PayloadScan, ScannersAgreeOnEdgeCases) {
  const std::vector<std::string> needles = {
      "",          "a",          "ab",          "exploit",    "/etc/shadow",
      "USER root", "aaaaaaaaaa", "ababababab",  "longneedle", "zzzzzzzz"};
  const std::vector<std::string> hays = {
      "",
      "a",
      "exploit",
      "xexploit",
      "exploitx",
      "GET /etc/shadow HTTP/1.1",
      "USER root\r\nPASS x",
      "aaaaaaaaa",
      "aaaaaaaaaa",
      "abababababab",
      "the quick brown fox jumps over the lazy dog",
      std::string(1024, 'x'),
      std::string(1000, 'x') + "/etc/shadow",
      "/etc/shado",  // one byte short of a match
      std::string(64, 'U') + "USER root",
  };
  for (const std::string& ntext : needles) {
    const Needle n = make_needle(ntext);
    for (const std::string& h : hays) {
      const auto hay = bytes(h);
      const bool expected = h.find(ntext) != std::string::npos;
      EXPECT_EQ(scan_memchr_hop({hay.data(), hay.size()}, ntext), expected)
          << "memchr-hop \"" << ntext << "\" in \"" << h.substr(0, 32) << "\"";
      // scan_bmh must terminate and agree even below the use_bmh
      // threshold — make_needle builds the shift table for every
      // length, and the payload-scan microbench drives short needles
      // through it directly.
      EXPECT_EQ(scan_bmh({hay.data(), hay.size()}, n), expected)
          << "bmh \"" << ntext << "\" in \"" << h.substr(0, 32) << "\"";
      EXPECT_EQ(scan_adaptive({hay.data(), hay.size()}, n), expected)
          << "adaptive \"" << ntext << "\" in \"" << h.substr(0, 32) << "\"";
      EXPECT_EQ(payload_contains(hay, n), expected)
          << "dispatch \"" << ntext << "\" in \"" << h.substr(0, 32) << "\"";
    }
  }
}

TEST(PayloadScan, RandomizedAgreementWithStdSearch) {
  // Pseudo-random haystacks over a small alphabet (so matches actually
  // happen) against needles sampled from the same distribution.
  std::uint64_t s = 42;
  const auto rnd = [&] {
    s = s * 6364136223846793005ULL + 1442695040888963407ULL;
    return static_cast<std::uint32_t>(s >> 33);
  };
  for (int iter = 0; iter < 500; ++iter) {
    std::string hay_s;
    const std::size_t hl = rnd() % 200;
    for (std::size_t i = 0; i < hl; ++i) {
      hay_s.push_back(static_cast<char>('a' + rnd() % 4));
    }
    std::string ntext;
    const std::size_t nl = 1 + rnd() % 14;
    for (std::size_t i = 0; i < nl; ++i) {
      ntext.push_back(static_cast<char>('a' + rnd() % 4));
    }
    const auto hay = bytes(hay_s);
    const bool expected = hay_s.find(ntext) != std::string::npos;
    const Needle n = make_needle(ntext);
    EXPECT_EQ(payload_contains(hay, n), expected)
        << "needle \"" << ntext << "\" hay \"" << hay_s << "\"";
    EXPECT_EQ(scan_bmh({hay.data(), hay.size()}, n), expected)
        << "bmh needle \"" << ntext << "\" hay \"" << hay_s << "\"";
    EXPECT_EQ(scan_memchr_hop({hay.data(), hay.size()}, ntext), expected)
        << "memchr needle \"" << ntext << "\" hay \"" << hay_s << "\"";
    // The 4-letter alphabet makes first-byte candidates dense, so long
    // needles here exercise the adaptive scan's BMH switchover path.
    EXPECT_EQ(scan_adaptive({hay.data(), hay.size()}, n), expected)
        << "adaptive needle \"" << ntext << "\" hay \"" << hay_s << "\"";
  }
}

TEST(PayloadScan, FusedOrScanMatchesTwoScans) {
  // payload_contains_either(h, a, b) == contains(h, a) || contains(h, b)
  // for every pairing of the edge-case needles over randomized
  // haystacks — including shared first bytes, one-needle-longer-than-
  // haystack splits, and empty needles.
  const std::vector<std::string> needles = {
      "",   "a",          "ab",          "exploit", "/etc/shadow",
      "ax", "aaaaaaaaaa", "ababababab",  "bbbb"};
  std::uint64_t s = 7;
  const auto rnd = [&] {
    s = s * 6364136223846793005ULL + 1442695040888963407ULL;
    return static_cast<std::uint32_t>(s >> 33);
  };
  std::vector<std::string> hays = {"", "a", "exploit", "/etc/shadow x"};
  for (int iter = 0; iter < 200; ++iter) {
    std::string h;
    const std::size_t hl = rnd() % 80;
    for (std::size_t i = 0; i < hl; ++i) {
      h.push_back(static_cast<char>('a' + rnd() % 4));
    }
    hays.push_back(std::move(h));
  }
  for (const std::string& na : needles) {
    for (const std::string& nb : needles) {
      const Needle a = make_needle(na);
      const Needle b = make_needle(nb);
      for (const std::string& h : hays) {
        const auto hay = bytes(h);
        const bool expected = payload_contains(hay, a) ||
                              payload_contains(hay, b);
        EXPECT_EQ(payload_contains_either(hay, a, b), expected)
            << "\"" << na << "\" | \"" << nb << "\" in \"" << h << "\"";
      }
    }
  }
}

}  // namespace
}  // namespace nfactor::dataplane
