// Randomized topology fuzzing, seed-stable: random graphs of corpus NF
// instances (random fan-out edges, wildcard links, config-free nodes)
// are queried with reach/isolate under a small budget. Invariants:
//   - parse_topology + run_query never crash on a well-formed topology;
//   - UNSAT verdicts carry no evidence paths and yield no witness;
//   - every witness that materializes replays consistently through the
//     model interpreter, wire codec and compiled dataplane;
//   - results are byte-identical across jobs widths.
// The trial count and budgets are deliberately small (CI smoke); crank
// kTrials locally for a deeper run.
#include <gtest/gtest.h>

#include <cstdint>
#include <optional>
#include <set>
#include <sstream>
#include <utility>
#include <string>
#include <vector>

#include "symex/solver.h"
#include "tests/topology_test_util.h"
#include "verify/topology.h"
#include "verify/witness.h"

namespace nfactor::verify {
namespace {

constexpr int kTrials = 12;

class Rng {
 public:
  explicit Rng(std::uint64_t seed) : s_(seed ? seed : 1) {}
  std::uint64_t next() {
    s_ = s_ * 6364136223846793005ULL + 1442695040888963407ULL;
    return s_ >> 17;
  }
  std::size_t below(std::size_t n) { return n ? next() % n : 0; }
  bool chance(int pct) { return static_cast<int>(below(100)) < pct; }

 private:
  std::uint64_t s_;
};

const std::vector<std::string>& nf_pool() {
  static const std::vector<std::string> nfs = {
      "firewall", "nat",          "monitor",  "snort_lite", "dpi",
      "synflood", "heavy_hitter", "lb",       "l2_switch"};
  return nfs;
}

/// A random mostly-forward topology: node i gets a forward edge from a
/// random earlier node (so everything is reachable from the ingress),
/// plus occasional extra fan-out edges and wildcard links. The last
/// node exits at `out`; a random mid node may also exit at `tap`.
std::string random_topo(Rng& rng) {
  const std::size_t n = 3 + rng.below(6);  // 3..8 instances
  std::ostringstream os;
  for (std::size_t i = 0; i < n; ++i) {
    os << "node n" << i << " " << nf_pool()[rng.below(nf_pool().size())]
       << "\n";
  }
  os << "ingress in -> n0:0\n";
  // validate() rejects two edges sharing (from, port) — wildcards
  // included — so claim each source port once, falling back to a
  // per-target unique port when the preferred one is taken.
  std::set<std::pair<std::size_t, int>> used;
  for (std::size_t i = 1; i < n; ++i) {
    const std::size_t from = rng.below(i);
    // Wildcard, forward port 1 (the corpus' common egress) or mirror 9.
    int port = rng.chance(40) ? -1 : (rng.chance(25) ? 9 : 1);
    if (!used.insert({from, port}).second) {
      port = 10 + static_cast<int>(i);
      used.insert({from, port});
    }
    os << "edge n" << from << ":";
    if (port < 0) {
      os << "*";
    } else {
      os << port;
    }
    os << " -> n" << i << ":0\n";
  }
  // Occasional extra cross edge deepens fan-out (port 7 is never
  // claimed by the generator above, so the edge set stays unique).
  if (n >= 4 && rng.chance(50)) {
    os << "edge n0:7 -> n" << (1 + rng.below(n - 1)) << ":1\n";
  }
  os << "egress out <- n" << (n - 1) << ":*\n";
  if (rng.chance(50)) {
    os << "egress tap <- n" << rng.below(n - 1) << ":8\n";
  }
  return os.str();
}

TEST(TopologyFuzz, RandomTopologiesKeepTheWitnessContract) {
  Rng rng(0xF0110);
  for (int trial = 0; trial < kTrials; ++trial) {
    const std::string text = random_topo(rng);
    SCOPED_TRACE("trial " + std::to_string(trial) + "\n" + text);

    Topology topo;
    ASSERT_NO_THROW(topo = parse_topology(
                        text, testutil::corpus_models().resolver()));
    ASSERT_TRUE(topo.validate().empty()) << topo.validate().front();

    for (const std::string spec : {"reach in out", "isolate in out"}) {
      const Query q = parse_query(spec);
      symex::SolverCache cache;
      QueryOptions opts;
      opts.jobs = 2;
      opts.max_hops = 10;
      opts.max_paths = 16;
      opts.solver_cache = &cache;
      QueryResult result;
      ASSERT_NO_THROW(result = run_query(topo, q, opts));

      if (!result.sat) {
        EXPECT_TRUE(result.paths.empty());
        EXPECT_FALSE(find_witness(topo, result).has_value());
        continue;
      }
      for (const TopoPath& path : result.paths) {
        const auto witness = materialize_witness(topo, q, path);
        if (!witness) continue;
        const ReplayReport replay = replay_witness(topo, *witness);
        EXPECT_TRUE(replay.consistent) << replay.detail;
      }

      // Determinism: serial re-run renders the same document.
      symex::SolverCache cache1;
      QueryOptions serial = opts;
      serial.jobs = 1;
      serial.solver_cache = &cache1;
      const QueryResult again = run_query(topo, q, serial);
      ReplayReport rep_a, rep_b;
      std::optional<Witness> w_a, w_b;
      if (result.sat) w_a = find_witness(topo, result, &rep_a);
      if (again.sat) w_b = find_witness(topo, again, &rep_b);
      EXPECT_EQ(topology_json(topo, result, w_a ? &*w_a : nullptr,
                              w_a ? &rep_a : nullptr),
                topology_json(topo, again, w_b ? &*w_b : nullptr,
                              w_b ? &rep_b : nullptr));
    }
  }
}

}  // namespace
}  // namespace nfactor::verify
