// Golden tests for nf-lint output: every bundled corpus NF plus the two
// deliberately-buggy fixtures under tests/fixtures/ are linted and the
// rendered text compared against tests/golden/lint/<unit>.txt.
//
// Regenerate after an intentional diagnostics change with
//   NFACTOR_UPDATE_GOLDEN=1 ctest -R LintGolden
// and review the diff like any other source change.
#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#include "lang/diagnostics.h"
#include "lint/lint.h"
#include "nfs/corpus.h"

#ifndef NFACTOR_SOURCE_DIR
#error "tests/CMakeLists.txt must define NFACTOR_SOURCE_DIR"
#endif

namespace nfactor {
namespace {

std::string read_file(const std::string& path, bool* ok = nullptr) {
  std::ifstream in(path);
  if (ok) *ok = static_cast<bool>(in);
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

/// Exactly what `nfactor_cli --lint` prints: the rendered diagnostics
/// followed by the one-line severity summary.
std::string lint_report(const std::string& source, const std::string& unit) {
  lang::DiagnosticSink sink;
  lint::lint_source(source, unit, sink);
  char summary[160];
  std::snprintf(summary, sizeof summary,
                "%s: %d error(s), %d warning(s), %d note(s)\n", unit.c_str(),
                sink.errors(), sink.warnings(), sink.notes());
  return sink.render_text(unit) + summary;
}

void check_golden(const std::string& source, const std::string& unit) {
  const std::string golden_path =
      std::string(NFACTOR_SOURCE_DIR) + "/tests/golden/lint/" + unit + ".txt";
  const std::string actual = lint_report(source, unit);

  if (std::getenv("NFACTOR_UPDATE_GOLDEN") != nullptr) {
    std::ofstream out(golden_path);
    ASSERT_TRUE(out) << "cannot write " << golden_path;
    out << actual;
    return;
  }

  bool ok = false;
  const std::string expected = read_file(golden_path, &ok);
  ASSERT_TRUE(ok) << "missing golden file " << golden_path
                  << " (run with NFACTOR_UPDATE_GOLDEN=1 to create)";
  EXPECT_EQ(actual, expected) << "lint output drifted for " << unit;
}

TEST(LintGoldenTest, Corpus) {
  for (const auto& e : nfs::corpus()) {
    SCOPED_TRACE(std::string(e.name));
    check_golden(std::string(e.source), std::string(e.name));
  }
}

TEST(LintGoldenTest, BuggyFixtures) {
  for (const std::string name :
       {"lint_uninit.nf", "lint_deadstate.nf", "lint_duplicate_arm.nf"}) {
    SCOPED_TRACE(name);
    const std::string path =
        std::string(NFACTOR_SOURCE_DIR) + "/tests/fixtures/" + name;
    bool ok = false;
    const std::string source = read_file(path, &ok);
    ASSERT_TRUE(ok) << "missing fixture " << path;
    // Golden files are keyed by the basename (minus .nf handled below),
    // so the report is path-independent.
    check_golden(source, name);
  }
}

/// The fixtures exist to prove every NF2xx fires somewhere: assert the
/// full code coverage explicitly, independent of golden-file contents.
TEST(LintGoldenTest, FixturesCoverEveryDataflowCheck) {
  std::string all;
  for (const std::string name :
       {"lint_uninit.nf", "lint_deadstate.nf", "lint_duplicate_arm.nf"}) {
    const std::string path =
        std::string(NFACTOR_SOURCE_DIR) + "/tests/fixtures/" + name;
    bool ok = false;
    const std::string source = read_file(path, &ok);
    ASSERT_TRUE(ok) << path;
    all += lint_report(source, name);
  }
  for (const std::string code : {"NF201", "NF202", "NF203", "NF204", "NF205",
                                 "NF206", "NF207", "NF208"}) {
    EXPECT_NE(all.find(code), std::string::npos)
        << code << " fires in neither fixture:\n" << all;
  }
}

}  // namespace
}  // namespace nfactor
