// StateAlyzer variable categorization — the paper's Table 1, exactly.
#include "statealyzer/statealyzer.h"

#include <gtest/gtest.h>

#include "analysis/pdg.h"
#include "nfactor/pipeline.h"
#include "nfs/corpus.h"
#include "tests/test_util.h"

namespace nfactor::statealyzer {
namespace {

Result analyze_src(const std::string& src) {
  static std::vector<std::unique_ptr<ir::Module>> keep_alive;
  static std::vector<std::unique_ptr<analysis::Pdg>> keep_pdg;
  keep_alive.push_back(
      std::make_unique<ir::Module>(testutil::lowered(src)));
  keep_pdg.push_back(std::make_unique<analysis::Pdg>(keep_alive.back()->body));
  return analyze(*keep_alive.back(), *keep_pdg.back());
}

TEST(StateAlyzer, PaperTable1OnLoadBalancer) {
  const auto r = pipeline::run_source(nfs::find("lb").source, "lb");
  const auto& c = r.cats;

  // pktVar: packet I/O function parameter / return value.
  EXPECT_TRUE(c.pkt_vars.count("__pkt"));  // recv target post-normalize

  // cfgVar: persistent, top-level, not updateable — mode, LB_IP (Table 1).
  EXPECT_TRUE(c.is_cfg("mode"));
  EXPECT_TRUE(c.is_cfg("LB_IP"));
  EXPECT_TRUE(c.is_cfg("LB_PORT"));
  EXPECT_TRUE(c.is_cfg("servers"));
  EXPECT_TRUE(c.is_cfg("ROUND_ROBIN"));

  // oisVar: persistent, top-level, updateable, output-impacting —
  // f2b_nat, rr_idx (Table 1).
  EXPECT_TRUE(c.is_ois("f2b_nat"));
  EXPECT_TRUE(c.is_ois("b2f_nat"));
  EXPECT_TRUE(c.is_ois("rr_idx"));
  EXPECT_TRUE(c.is_ois("cur_port"));

  // logVar: persistent, top-level, updateable, NOT output-impacting —
  // pass_stat, drop_stat (Table 1).
  EXPECT_TRUE(c.log_vars.count("pass_stat"));
  EXPECT_TRUE(c.log_vars.count("drop_stat"));
  EXPECT_FALSE(c.is_ois("pass_stat"));
}

TEST(StateAlyzer, FeaturesAreConsistentWithCategories) {
  const auto r = pipeline::run_source(nfs::find("lb").source, "lb");
  for (const auto& v : r.cats.cfg_vars) {
    const auto& f = r.cats.features.at(v);
    EXPECT_TRUE(f.persistent && f.top_level && !f.updateable) << v;
  }
  for (const auto& v : r.cats.ois_vars) {
    const auto& f = r.cats.features.at(v);
    EXPECT_TRUE(f.persistent && f.top_level && f.updateable &&
                f.output_impacting)
        << v;
  }
  for (const auto& v : r.cats.log_vars) {
    const auto& f = r.cats.features.at(v);
    EXPECT_TRUE(f.persistent && f.updateable && !f.output_impacting) << v;
  }
}

TEST(StateAlyzer, UnusedGlobalIsNotTopLevel) {
  const auto c = analyze_src(testutil::nf_body(
      "send(pkt, 0);", "var unused = 42;"));
  EXPECT_FALSE(c.features.at("unused").top_level);
  EXPECT_FALSE(c.is_cfg("unused"));
}

TEST(StateAlyzer, PacketAliasIsPktVar) {
  const auto c = analyze_src(testutil::nf_body(
      "p2 = pkt;\nsend(p2, 0);"));
  EXPECT_TRUE(c.is_pkt("pkt"));
  EXPECT_TRUE(c.is_pkt("p2"));
}

TEST(StateAlyzer, LocalTemporariesAreLocal) {
  const auto c = analyze_src(testutil::nf_body(
      "tmp = pkt.dport + 1;\nsend(pkt, tmp);"));
  EXPECT_EQ(c.category.at("tmp"), VarCategory::kLocal);
}

TEST(StateAlyzer, StateReadInConditionIsOutputImpacting) {
  // A persistent counter that gates forwarding is oisVar even though its
  // update looks like a logging counter.
  const auto c = analyze_src(testutil::nf_body(
      "n = n + 1;\nif (n < 3) {\n  send(pkt, 0);\n}", "var n = 0;"));
  EXPECT_TRUE(c.is_ois("n"));
}

TEST(StateAlyzer, PureCounterIsLogVar) {
  const auto c = analyze_src(testutil::nf_body(
      "n = n + 1;\nsend(pkt, 0);", "var n = 0;"));
  EXPECT_TRUE(c.log_vars.count("n"));
}

TEST(StateAlyzer, ConfigReadOnlyInActionIsCfg) {
  const auto c = analyze_src(testutil::nf_body(
      "send(pkt, OUT);", "var OUT = 3;"));
  EXPECT_TRUE(c.is_cfg("OUT"));
}

TEST(StateAlyzer, InitSectionStateIsPersistent) {
  const auto c = analyze_src(
      "def main() { cache = {}; while (true) { pkt = recv(0); "
      "cache[(pkt.ip_src, pkt.sport)] = 1; "
      "if ((pkt.ip_dst, pkt.dport) in cache) { send(pkt, 0); } } }");
  EXPECT_TRUE(c.is_ois("cache"));
}

class CorpusCategories : public ::testing::TestWithParam<const char*> {};

TEST_P(CorpusCategories, EveryNfHasOisStateAndPktVar) {
  const auto r = pipeline::run_source(nfs::find(GetParam()).source,
                                      GetParam());
  EXPECT_FALSE(r.cats.pkt_vars.empty());
  // snort_lite forwards based on configuration only — all of its mutable
  // state is logging; every other corpus NF keeps forwarding state.
  if (std::string(GetParam()) != "snort_lite" && std::string(GetParam()) != "dpi") {
    EXPECT_FALSE(r.cats.ois_vars.empty());
  }
  // Categories are disjoint.
  for (const auto& v : r.cats.ois_vars) {
    EXPECT_FALSE(r.cats.cfg_vars.count(v));
    EXPECT_FALSE(r.cats.log_vars.count(v));
    EXPECT_FALSE(r.cats.pkt_vars.count(v));
  }
  for (const auto& v : r.cats.cfg_vars) {
    EXPECT_FALSE(r.cats.log_vars.count(v));
  }
}

INSTANTIATE_TEST_SUITE_P(Corpus, CorpusCategories,
                         ::testing::Values("lb", "balance", "snort_lite",
                                           "nat", "firewall", "monitor",
                                           "l2_switch", "dpi", "heavy_hitter",
                                           "synflood"));

TEST(StateAlyzer, SpecificCategoriesAcrossCorpus) {
  const auto nat = pipeline::run_source(nfs::find("nat").source, "nat");
  EXPECT_TRUE(nat.cats.is_ois("nat_out"));
  EXPECT_TRUE(nat.cats.is_ois("nat_in"));
  EXPECT_TRUE(nat.cats.is_ois("next_p"));
  EXPECT_TRUE(nat.cats.is_cfg("EXT_IP"));
  EXPECT_TRUE(nat.cats.log_vars.count("xlated"));

  const auto fw = pipeline::run_source(nfs::find("firewall").source, "fw");
  EXPECT_TRUE(fw.cats.is_ois("conns"));
  EXPECT_TRUE(fw.cats.log_vars.count("allowed"));
  EXPECT_TRUE(fw.cats.log_vars.count("blocked"));

  const auto mon = pipeline::run_source(nfs::find("monitor").source, "mon");
  EXPECT_TRUE(mon.cats.is_ois("flow_count"));
  EXPECT_TRUE(mon.cats.is_cfg("LIMIT"));
  EXPECT_TRUE(mon.cats.log_vars.count("total"));

  const auto ids = pipeline::run_source(nfs::find("snort_lite").source, "ids");
  EXPECT_TRUE(ids.cats.is_cfg("rules"));
  EXPECT_TRUE(ids.cats.is_cfg("INLINE_DROP"));
  EXPECT_TRUE(ids.cats.log_vars.count("pkt_count"));
  EXPECT_TRUE(ids.cats.log_vars.count("alert_count"));
}

TEST(StateAlyzer, TableRenderingMentionsAllCategories) {
  const auto r = pipeline::run_source(nfs::find("lb").source, "lb");
  const std::string t = r.cats.to_table();
  EXPECT_NE(t.find("pktVar"), std::string::npos);
  EXPECT_NE(t.find("cfgVar"), std::string::npos);
  EXPECT_NE(t.find("oisVar"), std::string::npos);
  EXPECT_NE(t.find("logVar"), std::string::npos);
  EXPECT_NE(t.find("f2b_nat"), std::string::npos);
}

}  // namespace
}  // namespace nfactor::statealyzer
