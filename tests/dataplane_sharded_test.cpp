// ShardedDataplane's contract wall (docs/dataplane.md): flow-hash
// determinism and direction symmetry, shard-partition stability across
// runs and shard counts, per-shard equivalence with a single engine fed
// the same packet subsequence (valid for *every* NF), shard-count
// invariance for flow-partitionable NFs, and merge_state()/snapshot()
// semantics. The whole binary also runs under TSan in CI — the worker
// pool, the per-shard engines, and the scatter phase must be race-free
// at 1/2/8 shards.
#include "dataplane/sharded.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <string>
#include <vector>

#include "dataplane/engine.h"
#include "model/interp.h"
#include "netsim/packet_gen.h"
#include "nfactor/pipeline.h"
#include "nfs/corpus.h"
#include "tests/test_util.h"

namespace nfactor::dataplane {
namespace {

using runtime::Value;
using testutil::tcp_packet;

netsim::Packet reversed(netsim::Packet p) {
  std::swap(p.ip_src, p.ip_dst);
  std::swap(p.sport, p.dport);
  return p;
}

/// Traffic with real flow structure: random packets, reverse-direction
/// replies for half of them, then the whole mix again so every flow has
/// repeat packets hitting warmed-up state.
std::vector<netsim::Packet> flow_batch() {
  netsim::PacketGen gen(7);
  auto packets = gen.batch(120);
  const std::size_t n = packets.size();
  for (std::size_t i = 0; i < n / 2; ++i) {
    packets.push_back(reversed(packets[i]));
  }
  const auto edges = netsim::PacketGen::edge_cases();
  packets.insert(packets.end(), edges.begin(), edges.end());
  const std::vector<netsim::Packet> again = packets;
  packets.insert(packets.end(), again.begin(), again.end());
  return packets;
}

struct CompiledNf {
  pipeline::PipelineResult r;
  std::map<std::string, Value> store;
  CompiledTable table;
};

CompiledNf compile_nf(const std::string& name) {
  auto r = pipeline::run_source(nfs::find(name).source, name);
  auto store = model::initial_store(*r.module);
  CompileOptions copts;
  copts.bindings = &store;
  CompiledTable table = compile(r.model, copts);
  return CompiledNf{std::move(r), std::move(store), std::move(table)};
}

// ---------------------------------------------------------------------------
// Flow hash
// ---------------------------------------------------------------------------

TEST(FlowHash, DeterministicAcrossCallsAndDirectionSymmetric) {
  netsim::PacketGen gen(3);
  for (const auto& p : gen.batch(200)) {
    EXPECT_EQ(flow_hash(p), flow_hash(p));
    // A reply packet must land on the requester's shard: firewall-style
    // NFs match the reversed tuple.
    EXPECT_EQ(flow_hash(p), flow_hash(reversed(p)));
  }
}

TEST(FlowHash, DistinguishesFlows) {
  // Not a cryptographic requirement — just that the hash actually uses
  // the tuple. All-pairs distinct over a modest sample.
  std::vector<std::uint64_t> hashes;
  for (int i = 0; i < 64; ++i) {
    hashes.push_back(flow_hash(tcp_packet("10.0.0.1", 1000 + i, "10.0.0.2",
                                          80)));
  }
  std::sort(hashes.begin(), hashes.end());
  EXPECT_EQ(std::unique(hashes.begin(), hashes.end()), hashes.end());
}

TEST(FlowHash, ShardAssignmentStableAcrossRunsAndCounts) {
  const CompiledNf nf = compile_nf("firewall");
  const auto packets = flow_batch();
  for (const int shards : {1, 2, 8}) {
    ShardOptions opts;
    opts.shards = shards;
    const ShardedDataplane a(nf.table, nf.store, opts);
    const ShardedDataplane b(nf.table, nf.store, opts);
    for (const auto& p : packets) {
      const int s = a.shard_of(p);
      EXPECT_EQ(s, b.shard_of(p));       // same 5-tuple -> same shard
      EXPECT_EQ(s, a.shard_of(p));       // stable across calls
      EXPECT_EQ(s, a.shard_of(reversed(p)));
      EXPECT_GE(s, 0);
      EXPECT_LT(s, shards);
    }
  }
}

// ---------------------------------------------------------------------------
// Equivalence: sharded vs single, corpus-wide, both tiers
// ---------------------------------------------------------------------------

class ShardedCorpus : public ::testing::TestWithParam<nfs::CorpusEntry> {};

TEST_P(ShardedCorpus, OneShardEqualsUnshardedEngine) {
  const CompiledNf nf = compile_nf(std::string(GetParam().name));
  const auto packets = flow_batch();

  DataplaneEngine single(nf.table, nf.store);
  BatchOutput sout;
  single.execute_batch(packets, sout);

  ShardedDataplane sharded(nf.table, nf.store, ShardOptions{1, {}});
  ShardedOutput out;
  sharded.execute_batch(packets, out);

  ASSERT_EQ(out.matched.size(), packets.size());
  EXPECT_EQ(out.matched, sout.matched);
  ASSERT_EQ(out.shard_outputs().size(), 1u);
  const auto sa = sout.sends();
  const auto sb = out.shard_outputs()[0].sends();
  ASSERT_EQ(sa.size(), sb.size());
  for (std::size_t j = 0; j < sa.size(); ++j) {
    EXPECT_EQ(sa[j].src, sb[j].src);
    EXPECT_EQ(sa[j].port, sb[j].port);
    EXPECT_TRUE(sa[j].packet() == sb[j].packet());
  }
  for (const std::string& v : nf.r.model.ois_vars) {
    const Value* a = single.state(v);
    const Value* b = sharded.engine(0).state(v);
    ASSERT_EQ(a == nullptr, b == nullptr) << v;
    if (a != nullptr) {
      EXPECT_TRUE(runtime::value_eq(*a, *b)) << v;
    }
  }
}

/// The universal contract: each shard behaves exactly like a single
/// engine fed that shard's packet subsequence — regardless of whether
/// the NF is flow-partitionable. Checked at 2 and 8 shards, on both
/// execution tiers.
TEST_P(ShardedCorpus, EveryShardMatchesAReferenceEngine) {
  const CompiledNf nf = compile_nf(std::string(GetParam().name));
  const auto packets = flow_batch();
  for (const Tier tier : {Tier::kTableWalk, Tier::kThreaded}) {
    for (const int shards : {2, 8}) {
      ShardOptions opts;
      opts.shards = shards;
      opts.engine.tier = tier;
      ShardedDataplane sharded(nf.table, nf.store, opts);
      ShardedOutput out;
      sharded.execute_batch(packets, out);
      ASSERT_EQ(out.matched.size(), packets.size());
      ASSERT_EQ(out.shard_of.size(), packets.size());

      for (int s = 0; s < shards; ++s) {
        // Reference: a fresh single engine over this shard's packets.
        std::vector<netsim::Packet> sub;
        std::vector<std::size_t> sub_src;
        for (std::size_t i = 0; i < packets.size(); ++i) {
          if (out.shard_of[i] == s) {
            sub.push_back(packets[i]);
            sub_src.push_back(i);
          }
        }
        DataplaneEngine ref(nf.table, nf.store);
        BatchOutput rout;
        ref.execute_batch(sub, rout);

        const auto& shard_out = out.shard_outputs()[static_cast<std::size_t>(s)];
        ASSERT_EQ(shard_out.matched.size(), sub.size())
            << GetParam().name << " shard " << s << "/" << shards;
        for (std::size_t j = 0; j < sub.size(); ++j) {
          EXPECT_EQ(rout.matched[j], shard_out.matched[j])
              << GetParam().name << " shard " << s << " packet " << j;
          EXPECT_EQ(rout.matched[j], out.matched[sub_src[j]]);
        }
        const auto rs = rout.sends();
        const auto ss = shard_out.sends();
        ASSERT_EQ(rs.size(), ss.size())
            << GetParam().name << " shard " << s << "/" << shards;
        for (std::size_t j = 0; j < rs.size(); ++j) {
          // Reference srcs index the subsequence; shard srcs are global.
          EXPECT_EQ(sub_src[static_cast<std::size_t>(rs[j].src)],
                    static_cast<std::size_t>(ss[j].src));
          EXPECT_EQ(rs[j].port, ss[j].port);
          EXPECT_TRUE(rs[j].packet() == ss[j].packet());
        }
        for (const std::string& v : nf.r.model.ois_vars) {
          const Value* a = ref.state(v);
          const Value* b = sharded.engine(s).state(v);
          ASSERT_EQ(a == nullptr, b == nullptr) << v;
          if (a != nullptr) {
            EXPECT_TRUE(runtime::value_eq(*a, *b))
                << GetParam().name << " shard " << s << " state " << v;
          }
        }
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllNfs, ShardedCorpus, ::testing::ValuesIn(nfs::corpus()),
    [](const ::testing::TestParamInfo<nfs::CorpusEntry>& info) {
      return std::string(info.param.name);
    });

/// Shard-count invariance holds for flow-partitionable NFs: stateless
/// filters trivially, and firewall because its only state is keyed by
/// the (symmetric) 5-tuple the hash partitions on. NFs keyed by
/// coarser-than-flow data (heavy_hitter's per-src bytes, nat's global
/// port cursor) are deliberately absent — see docs/dataplane.md.
TEST(ShardedInvariance, FlowPartitionableNfsAreShardCountInvariant) {
  for (const char* name : {"snort_lite", "dpi", "firewall"}) {
    const CompiledNf nf = compile_nf(name);
    const auto packets = flow_batch();
    ShardedDataplane one(nf.table, nf.store, ShardOptions{1, {}});
    ShardedOutput base;
    one.execute_batch(packets, base);
    for (const int shards : {2, 4, 8}) {
      ShardedDataplane sd(nf.table, nf.store, ShardOptions{shards, {}});
      ShardedOutput out;
      sd.execute_batch(packets, out);
      EXPECT_EQ(base.matched, out.matched) << name << " shards " << shards;
      // Sends: same multiset per source packet. Flatten and sort by
      // (src, port) — within-flow order is preserved per shard, and a
      // single packet's sends stay contiguous.
      const auto flatten = [](const ShardedOutput& o) {
        std::vector<std::pair<std::int32_t, int>> v;
        for (const auto& b : o.shard_outputs()) {
          for (const auto& snd : b.sends()) v.emplace_back(snd.src, snd.port);
        }
        std::sort(v.begin(), v.end());
        return v;
      };
      EXPECT_EQ(flatten(base), flatten(out)) << name << " shards " << shards;
    }
  }
}

// ---------------------------------------------------------------------------
// State reconciliation
// ---------------------------------------------------------------------------

TEST(ShardedState, MergeUnionsFlowKeyedMaps) {
  const CompiledNf nf = compile_nf("firewall");
  const auto packets = flow_batch();
  ShardedDataplane sd(nf.table, nf.store, ShardOptions{4, {}});
  ShardedOutput out;
  sd.execute_batch(packets, out);

  const auto merged = sd.merge_state();
  const auto it = merged.find("conns");
  ASSERT_NE(it, merged.end());
  ASSERT_TRUE(it->second.is_map());
  // Union: every shard entry appears in the merged map, and the merged
  // map has nothing the shards don't.
  std::size_t shard_total = 0;
  for (int s = 0; s < 4; ++s) {
    const Value* sv = sd.engine(s).state("conns");
    ASSERT_NE(sv, nullptr);
    shard_total += sv->as_map().items.size();
    for (const auto& [k, v] : sv->as_map().items) {
      const auto mit = it->second.as_map().items.find(k);
      ASSERT_NE(mit, it->second.as_map().items.end());
      EXPECT_TRUE(runtime::value_eq(mit->second, v));
    }
  }
  // Flow-keyed: shard key sets are disjoint, so the union is exact.
  EXPECT_EQ(it->second.as_map().items.size(), shard_total);
  ASSERT_GT(shard_total, 0u) << "traffic never established a connection";

  // And the merged map equals the single-engine end state (same flows,
  // same per-flow transitions, just executed on different replicas).
  DataplaneEngine single(nf.table, nf.store);
  BatchOutput sout;
  single.execute_batch(packets, sout);
  EXPECT_TRUE(runtime::value_eq(*single.state("conns"), it->second));
}

TEST(ShardedState, MergeSumsScalarDeltasAndSnapshotsPerShard) {
  // nat's next_p is the canonical NOT-flow-partitionable scalar: each
  // shard allocates ports independently from the same initial cursor.
  // The delta merge counts total allocations; it cannot (and does not
  // claim to) reproduce single-engine port assignment order.
  const CompiledNf nf = compile_nf("nat");
  const auto packets = flow_batch();
  ShardedDataplane sd(nf.table, nf.store, ShardOptions{4, {}});
  ShardedOutput out;
  sd.execute_batch(packets, out);

  const auto snap = sd.snapshot("next_p");
  ASSERT_EQ(snap.size(), 4u);
  const auto init = nf.store.find("next_p");
  ASSERT_NE(init, nf.store.end());
  runtime::Int expected = init->second.as_int();
  for (const Value* v : snap) {
    ASSERT_NE(v, nullptr);
    expected += v->as_int() - init->second.as_int();
  }
  const auto merged = sd.merge_state();
  ASSERT_TRUE(merged.at("next_p").is_int());
  EXPECT_EQ(merged.at("next_p").as_int(), expected);
}

// ---------------------------------------------------------------------------
// Worker-pool stress (the TSan target)
// ---------------------------------------------------------------------------

TEST(ShardedStress, RepeatedBatchesAtOneTwoEightShards) {
  const CompiledNf nf = compile_nf("firewall");
  netsim::PacketGen gen(13);
  for (const int shards : {1, 2, 8}) {
    for (const Tier tier : {Tier::kTableWalk, Tier::kThreaded}) {
      ShardOptions opts;
      opts.shards = shards;
      opts.engine.tier = tier;
      ShardedDataplane sd(nf.table, nf.store, opts);
      ShardedOutput out;
      for (int round = 0; round < 5; ++round) {
        const auto packets = gen.batch(200);
        sd.execute_batch(packets, out);
        ASSERT_EQ(out.matched.size(), packets.size());
      }
    }
  }
}

}  // namespace
}  // namespace nfactor::dataplane
