# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/pipeline_smoke_test[1]_include.cmake")
include("/root/repo/build/tests/netsim_packet_test[1]_include.cmake")
include("/root/repo/build/tests/netsim_flow_tcp_test[1]_include.cmake")
include("/root/repo/build/tests/lang_lexer_test[1]_include.cmake")
include("/root/repo/build/tests/lang_parser_test[1]_include.cmake")
include("/root/repo/build/tests/lang_sema_test[1]_include.cmake")
include("/root/repo/build/tests/ir_lower_test[1]_include.cmake")
include("/root/repo/build/tests/analysis_cfg_test[1]_include.cmake")
include("/root/repo/build/tests/analysis_slice_test[1]_include.cmake")
include("/root/repo/build/tests/statealyzer_test[1]_include.cmake")
include("/root/repo/build/tests/symex_expr_test[1]_include.cmake")
include("/root/repo/build/tests/symex_solver_test[1]_include.cmake")
include("/root/repo/build/tests/symex_executor_test[1]_include.cmake")
include("/root/repo/build/tests/runtime_test[1]_include.cmake")
include("/root/repo/build/tests/model_test[1]_include.cmake")
include("/root/repo/build/tests/model_interp_test[1]_include.cmake")
include("/root/repo/build/tests/transform_test[1]_include.cmake")
include("/root/repo/build/tests/verify_test[1]_include.cmake")
include("/root/repo/build/tests/pipeline_integration_test[1]_include.cmake")
include("/root/repo/build/tests/export_test[1]_include.cmake")
include("/root/repo/build/tests/property_random_test[1]_include.cmake")
include("/root/repo/build/tests/netsim_trace_test[1]_include.cmake")
include("/root/repo/build/tests/model_validate_test[1]_include.cmake")
include("/root/repo/build/tests/multi_packet_test[1]_include.cmake")
include("/root/repo/build/tests/solver_property_test[1]_include.cmake")
include("/root/repo/build/tests/api_surface_test[1]_include.cmake")
