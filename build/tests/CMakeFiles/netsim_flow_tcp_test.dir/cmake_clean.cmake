file(REMOVE_RECURSE
  "CMakeFiles/netsim_flow_tcp_test.dir/netsim_flow_tcp_test.cpp.o"
  "CMakeFiles/netsim_flow_tcp_test.dir/netsim_flow_tcp_test.cpp.o.d"
  "netsim_flow_tcp_test"
  "netsim_flow_tcp_test.pdb"
  "netsim_flow_tcp_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/netsim_flow_tcp_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
