# Empty dependencies file for netsim_flow_tcp_test.
# This may be replaced when dependencies are built.
