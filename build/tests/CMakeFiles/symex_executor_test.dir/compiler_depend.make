# Empty compiler generated dependencies file for symex_executor_test.
# This may be replaced when dependencies are built.
