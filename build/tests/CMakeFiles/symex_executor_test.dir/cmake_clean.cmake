file(REMOVE_RECURSE
  "CMakeFiles/symex_executor_test.dir/symex_executor_test.cpp.o"
  "CMakeFiles/symex_executor_test.dir/symex_executor_test.cpp.o.d"
  "symex_executor_test"
  "symex_executor_test.pdb"
  "symex_executor_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/symex_executor_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
