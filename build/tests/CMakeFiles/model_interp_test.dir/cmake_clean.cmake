file(REMOVE_RECURSE
  "CMakeFiles/model_interp_test.dir/model_interp_test.cpp.o"
  "CMakeFiles/model_interp_test.dir/model_interp_test.cpp.o.d"
  "model_interp_test"
  "model_interp_test.pdb"
  "model_interp_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/model_interp_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
