# Empty dependencies file for model_interp_test.
# This may be replaced when dependencies are built.
