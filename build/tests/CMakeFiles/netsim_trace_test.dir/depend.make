# Empty dependencies file for netsim_trace_test.
# This may be replaced when dependencies are built.
