file(REMOVE_RECURSE
  "CMakeFiles/netsim_trace_test.dir/netsim_trace_test.cpp.o"
  "CMakeFiles/netsim_trace_test.dir/netsim_trace_test.cpp.o.d"
  "netsim_trace_test"
  "netsim_trace_test.pdb"
  "netsim_trace_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/netsim_trace_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
