# Empty compiler generated dependencies file for netsim_trace_test.
# This may be replaced when dependencies are built.
