file(REMOVE_RECURSE
  "CMakeFiles/solver_property_test.dir/solver_property_test.cpp.o"
  "CMakeFiles/solver_property_test.dir/solver_property_test.cpp.o.d"
  "solver_property_test"
  "solver_property_test.pdb"
  "solver_property_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/solver_property_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
