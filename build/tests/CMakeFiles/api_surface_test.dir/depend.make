# Empty dependencies file for api_surface_test.
# This may be replaced when dependencies are built.
