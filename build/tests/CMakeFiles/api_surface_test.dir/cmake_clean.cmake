file(REMOVE_RECURSE
  "CMakeFiles/api_surface_test.dir/api_surface_test.cpp.o"
  "CMakeFiles/api_surface_test.dir/api_surface_test.cpp.o.d"
  "api_surface_test"
  "api_surface_test.pdb"
  "api_surface_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/api_surface_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
