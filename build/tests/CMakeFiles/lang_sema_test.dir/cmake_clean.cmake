file(REMOVE_RECURSE
  "CMakeFiles/lang_sema_test.dir/lang_sema_test.cpp.o"
  "CMakeFiles/lang_sema_test.dir/lang_sema_test.cpp.o.d"
  "lang_sema_test"
  "lang_sema_test.pdb"
  "lang_sema_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lang_sema_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
