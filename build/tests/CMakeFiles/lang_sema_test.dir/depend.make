# Empty dependencies file for lang_sema_test.
# This may be replaced when dependencies are built.
