file(REMOVE_RECURSE
  "CMakeFiles/model_validate_test.dir/model_validate_test.cpp.o"
  "CMakeFiles/model_validate_test.dir/model_validate_test.cpp.o.d"
  "model_validate_test"
  "model_validate_test.pdb"
  "model_validate_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/model_validate_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
