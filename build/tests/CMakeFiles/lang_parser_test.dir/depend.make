# Empty dependencies file for lang_parser_test.
# This may be replaced when dependencies are built.
