file(REMOVE_RECURSE
  "CMakeFiles/netsim_packet_test.dir/netsim_packet_test.cpp.o"
  "CMakeFiles/netsim_packet_test.dir/netsim_packet_test.cpp.o.d"
  "netsim_packet_test"
  "netsim_packet_test.pdb"
  "netsim_packet_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/netsim_packet_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
