# Empty compiler generated dependencies file for statealyzer_test.
# This may be replaced when dependencies are built.
