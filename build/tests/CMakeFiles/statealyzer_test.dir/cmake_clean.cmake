file(REMOVE_RECURSE
  "CMakeFiles/statealyzer_test.dir/statealyzer_test.cpp.o"
  "CMakeFiles/statealyzer_test.dir/statealyzer_test.cpp.o.d"
  "statealyzer_test"
  "statealyzer_test.pdb"
  "statealyzer_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/statealyzer_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
