file(REMOVE_RECURSE
  "CMakeFiles/pipeline_integration_test.dir/pipeline_integration_test.cpp.o"
  "CMakeFiles/pipeline_integration_test.dir/pipeline_integration_test.cpp.o.d"
  "pipeline_integration_test"
  "pipeline_integration_test.pdb"
  "pipeline_integration_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pipeline_integration_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
