# Empty dependencies file for pipeline_integration_test.
# This may be replaced when dependencies are built.
