# Empty compiler generated dependencies file for analysis_cfg_test.
# This may be replaced when dependencies are built.
