file(REMOVE_RECURSE
  "CMakeFiles/analysis_cfg_test.dir/analysis_cfg_test.cpp.o"
  "CMakeFiles/analysis_cfg_test.dir/analysis_cfg_test.cpp.o.d"
  "analysis_cfg_test"
  "analysis_cfg_test.pdb"
  "analysis_cfg_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/analysis_cfg_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
