file(REMOVE_RECURSE
  "CMakeFiles/lang_lexer_test.dir/lang_lexer_test.cpp.o"
  "CMakeFiles/lang_lexer_test.dir/lang_lexer_test.cpp.o.d"
  "lang_lexer_test"
  "lang_lexer_test.pdb"
  "lang_lexer_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lang_lexer_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
