file(REMOVE_RECURSE
  "CMakeFiles/pipeline_smoke_test.dir/pipeline_smoke_test.cpp.o"
  "CMakeFiles/pipeline_smoke_test.dir/pipeline_smoke_test.cpp.o.d"
  "pipeline_smoke_test"
  "pipeline_smoke_test.pdb"
  "pipeline_smoke_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pipeline_smoke_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
