
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/pipeline_smoke_test.cpp" "tests/CMakeFiles/pipeline_smoke_test.dir/pipeline_smoke_test.cpp.o" "gcc" "tests/CMakeFiles/pipeline_smoke_test.dir/pipeline_smoke_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/nfactor/CMakeFiles/nfactor_pipeline.dir/DependInfo.cmake"
  "/root/repo/build/src/verify/CMakeFiles/nfactor_verify.dir/DependInfo.cmake"
  "/root/repo/build/src/nfs/CMakeFiles/nfactor_nfs.dir/DependInfo.cmake"
  "/root/repo/build/src/transform/CMakeFiles/nfactor_transform.dir/DependInfo.cmake"
  "/root/repo/build/src/model/CMakeFiles/nfactor_model.dir/DependInfo.cmake"
  "/root/repo/build/src/symex/CMakeFiles/nfactor_symex.dir/DependInfo.cmake"
  "/root/repo/build/src/statealyzer/CMakeFiles/nfactor_statealyzer.dir/DependInfo.cmake"
  "/root/repo/build/src/runtime/CMakeFiles/nfactor_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/netsim/CMakeFiles/nfactor_netsim.dir/DependInfo.cmake"
  "/root/repo/build/src/analysis/CMakeFiles/nfactor_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/ir/CMakeFiles/nfactor_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/lang/CMakeFiles/nfactor_lang.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
