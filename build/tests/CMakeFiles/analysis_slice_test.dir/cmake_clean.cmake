file(REMOVE_RECURSE
  "CMakeFiles/analysis_slice_test.dir/analysis_slice_test.cpp.o"
  "CMakeFiles/analysis_slice_test.dir/analysis_slice_test.cpp.o.d"
  "analysis_slice_test"
  "analysis_slice_test.pdb"
  "analysis_slice_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/analysis_slice_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
