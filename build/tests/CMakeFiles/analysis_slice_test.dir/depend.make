# Empty dependencies file for analysis_slice_test.
# This may be replaced when dependencies are built.
