file(REMOVE_RECURSE
  "CMakeFiles/multi_packet_test.dir/multi_packet_test.cpp.o"
  "CMakeFiles/multi_packet_test.dir/multi_packet_test.cpp.o.d"
  "multi_packet_test"
  "multi_packet_test.pdb"
  "multi_packet_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/multi_packet_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
