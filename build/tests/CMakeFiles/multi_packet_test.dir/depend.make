# Empty dependencies file for multi_packet_test.
# This may be replaced when dependencies are built.
