# Empty compiler generated dependencies file for property_random_test.
# This may be replaced when dependencies are built.
