file(REMOVE_RECURSE
  "CMakeFiles/property_random_test.dir/property_random_test.cpp.o"
  "CMakeFiles/property_random_test.dir/property_random_test.cpp.o.d"
  "property_random_test"
  "property_random_test.pdb"
  "property_random_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/property_random_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
