file(REMOVE_RECURSE
  "CMakeFiles/export_test.dir/export_test.cpp.o"
  "CMakeFiles/export_test.dir/export_test.cpp.o.d"
  "export_test"
  "export_test.pdb"
  "export_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/export_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
