# Empty compiler generated dependencies file for symex_expr_test.
# This may be replaced when dependencies are built.
