file(REMOVE_RECURSE
  "CMakeFiles/symex_expr_test.dir/symex_expr_test.cpp.o"
  "CMakeFiles/symex_expr_test.dir/symex_expr_test.cpp.o.d"
  "symex_expr_test"
  "symex_expr_test.pdb"
  "symex_expr_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/symex_expr_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
