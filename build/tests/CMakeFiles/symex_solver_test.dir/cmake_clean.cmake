file(REMOVE_RECURSE
  "CMakeFiles/symex_solver_test.dir/symex_solver_test.cpp.o"
  "CMakeFiles/symex_solver_test.dir/symex_solver_test.cpp.o.d"
  "symex_solver_test"
  "symex_solver_test.pdb"
  "symex_solver_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/symex_solver_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
