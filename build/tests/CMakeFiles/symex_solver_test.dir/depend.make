# Empty dependencies file for symex_solver_test.
# This may be replaced when dependencies are built.
