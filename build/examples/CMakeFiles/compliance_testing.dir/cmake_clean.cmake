file(REMOVE_RECURSE
  "CMakeFiles/compliance_testing.dir/compliance_testing.cpp.o"
  "CMakeFiles/compliance_testing.dir/compliance_testing.cpp.o.d"
  "compliance_testing"
  "compliance_testing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/compliance_testing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
