# Empty compiler generated dependencies file for compliance_testing.
# This may be replaced when dependencies are built.
