file(REMOVE_RECURSE
  "CMakeFiles/service_chain.dir/service_chain.cpp.o"
  "CMakeFiles/service_chain.dir/service_chain.cpp.o.d"
  "service_chain"
  "service_chain.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/service_chain.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
