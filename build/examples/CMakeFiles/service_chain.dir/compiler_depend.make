# Empty compiler generated dependencies file for service_chain.
# This may be replaced when dependencies are built.
