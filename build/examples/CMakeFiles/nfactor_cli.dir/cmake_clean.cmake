file(REMOVE_RECURSE
  "CMakeFiles/nfactor_cli.dir/nfactor_cli.cpp.o"
  "CMakeFiles/nfactor_cli.dir/nfactor_cli.cpp.o.d"
  "nfactor_cli"
  "nfactor_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nfactor_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
