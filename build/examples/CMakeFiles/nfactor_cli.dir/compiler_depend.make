# Empty compiler generated dependencies file for nfactor_cli.
# This may be replaced when dependencies are built.
