file(REMOVE_RECURSE
  "CMakeFiles/bench_verification.dir/bench_verification.cpp.o"
  "CMakeFiles/bench_verification.dir/bench_verification.cpp.o.d"
  "bench_verification"
  "bench_verification.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_verification.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
