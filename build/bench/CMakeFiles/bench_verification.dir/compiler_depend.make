# Empty compiler generated dependencies file for bench_verification.
# This may be replaced when dependencies are built.
