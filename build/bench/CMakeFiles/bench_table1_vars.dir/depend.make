# Empty dependencies file for bench_table1_vars.
# This may be replaced when dependencies are built.
