file(REMOVE_RECURSE
  "CMakeFiles/bench_table1_vars.dir/bench_table1_vars.cpp.o"
  "CMakeFiles/bench_table1_vars.dir/bench_table1_vars.cpp.o.d"
  "bench_table1_vars"
  "bench_table1_vars.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table1_vars.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
