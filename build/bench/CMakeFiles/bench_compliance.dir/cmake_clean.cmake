file(REMOVE_RECURSE
  "CMakeFiles/bench_compliance.dir/bench_compliance.cpp.o"
  "CMakeFiles/bench_compliance.dir/bench_compliance.cpp.o.d"
  "bench_compliance"
  "bench_compliance.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_compliance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
