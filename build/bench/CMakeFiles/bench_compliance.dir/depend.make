# Empty dependencies file for bench_compliance.
# This may be replaced when dependencies are built.
