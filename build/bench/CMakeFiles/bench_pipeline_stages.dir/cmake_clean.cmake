file(REMOVE_RECURSE
  "CMakeFiles/bench_pipeline_stages.dir/bench_pipeline_stages.cpp.o"
  "CMakeFiles/bench_pipeline_stages.dir/bench_pipeline_stages.cpp.o.d"
  "bench_pipeline_stages"
  "bench_pipeline_stages.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_pipeline_stages.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
