# Empty compiler generated dependencies file for bench_pipeline_stages.
# This may be replaced when dependencies are built.
