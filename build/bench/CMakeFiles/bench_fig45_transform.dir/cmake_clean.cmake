file(REMOVE_RECURSE
  "CMakeFiles/bench_fig45_transform.dir/bench_fig45_transform.cpp.o"
  "CMakeFiles/bench_fig45_transform.dir/bench_fig45_transform.cpp.o.d"
  "bench_fig45_transform"
  "bench_fig45_transform.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig45_transform.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
