# Empty compiler generated dependencies file for bench_fig45_transform.
# This may be replaced when dependencies are built.
