# Empty compiler generated dependencies file for bench_chain_compose.
# This may be replaced when dependencies are built.
