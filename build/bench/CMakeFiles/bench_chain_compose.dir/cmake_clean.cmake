file(REMOVE_RECURSE
  "CMakeFiles/bench_chain_compose.dir/bench_chain_compose.cpp.o"
  "CMakeFiles/bench_chain_compose.dir/bench_chain_compose.cpp.o.d"
  "bench_chain_compose"
  "bench_chain_compose.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_chain_compose.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
