file(REMOVE_RECURSE
  "CMakeFiles/bench_fig1_slice.dir/bench_fig1_slice.cpp.o"
  "CMakeFiles/bench_fig1_slice.dir/bench_fig1_slice.cpp.o.d"
  "bench_fig1_slice"
  "bench_fig1_slice.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig1_slice.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
