# Empty dependencies file for bench_fig1_slice.
# This may be replaced when dependencies are built.
