file(REMOVE_RECURSE
  "CMakeFiles/bench_multi_packet.dir/bench_multi_packet.cpp.o"
  "CMakeFiles/bench_multi_packet.dir/bench_multi_packet.cpp.o.d"
  "bench_multi_packet"
  "bench_multi_packet.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_multi_packet.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
