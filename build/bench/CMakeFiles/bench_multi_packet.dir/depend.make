# Empty dependencies file for bench_multi_packet.
# This may be replaced when dependencies are built.
