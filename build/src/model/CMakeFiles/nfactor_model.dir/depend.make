# Empty dependencies file for nfactor_model.
# This may be replaced when dependencies are built.
