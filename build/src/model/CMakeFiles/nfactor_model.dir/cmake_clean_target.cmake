file(REMOVE_RECURSE
  "libnfactor_model.a"
)
