file(REMOVE_RECURSE
  "CMakeFiles/nfactor_model.dir/fsm.cpp.o"
  "CMakeFiles/nfactor_model.dir/fsm.cpp.o.d"
  "CMakeFiles/nfactor_model.dir/interp.cpp.o"
  "CMakeFiles/nfactor_model.dir/interp.cpp.o.d"
  "CMakeFiles/nfactor_model.dir/model.cpp.o"
  "CMakeFiles/nfactor_model.dir/model.cpp.o.d"
  "CMakeFiles/nfactor_model.dir/sefl_export.cpp.o"
  "CMakeFiles/nfactor_model.dir/sefl_export.cpp.o.d"
  "CMakeFiles/nfactor_model.dir/validate.cpp.o"
  "CMakeFiles/nfactor_model.dir/validate.cpp.o.d"
  "libnfactor_model.a"
  "libnfactor_model.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nfactor_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
