# Empty compiler generated dependencies file for nfactor_transform.
# This may be replaced when dependencies are built.
