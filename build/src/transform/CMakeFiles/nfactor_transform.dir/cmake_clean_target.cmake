file(REMOVE_RECURSE
  "libnfactor_transform.a"
)
