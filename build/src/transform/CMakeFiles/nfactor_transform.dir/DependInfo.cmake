
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/transform/normalize.cpp" "src/transform/CMakeFiles/nfactor_transform.dir/normalize.cpp.o" "gcc" "src/transform/CMakeFiles/nfactor_transform.dir/normalize.cpp.o.d"
  "/root/repo/src/transform/rewrite.cpp" "src/transform/CMakeFiles/nfactor_transform.dir/rewrite.cpp.o" "gcc" "src/transform/CMakeFiles/nfactor_transform.dir/rewrite.cpp.o.d"
  "/root/repo/src/transform/unfold_sockets.cpp" "src/transform/CMakeFiles/nfactor_transform.dir/unfold_sockets.cpp.o" "gcc" "src/transform/CMakeFiles/nfactor_transform.dir/unfold_sockets.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/lang/CMakeFiles/nfactor_lang.dir/DependInfo.cmake"
  "/root/repo/build/src/netsim/CMakeFiles/nfactor_netsim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
