file(REMOVE_RECURSE
  "CMakeFiles/nfactor_transform.dir/normalize.cpp.o"
  "CMakeFiles/nfactor_transform.dir/normalize.cpp.o.d"
  "CMakeFiles/nfactor_transform.dir/rewrite.cpp.o"
  "CMakeFiles/nfactor_transform.dir/rewrite.cpp.o.d"
  "CMakeFiles/nfactor_transform.dir/unfold_sockets.cpp.o"
  "CMakeFiles/nfactor_transform.dir/unfold_sockets.cpp.o.d"
  "libnfactor_transform.a"
  "libnfactor_transform.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nfactor_transform.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
