# Empty dependencies file for nfactor_nfs.
# This may be replaced when dependencies are built.
