file(REMOVE_RECURSE
  "libnfactor_nfs.a"
)
