file(REMOVE_RECURSE
  "CMakeFiles/nfactor_nfs.dir/corpus.cpp.o"
  "CMakeFiles/nfactor_nfs.dir/corpus.cpp.o.d"
  "libnfactor_nfs.a"
  "libnfactor_nfs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nfactor_nfs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
