file(REMOVE_RECURSE
  "CMakeFiles/nfactor_analysis.dir/control_dep.cpp.o"
  "CMakeFiles/nfactor_analysis.dir/control_dep.cpp.o.d"
  "CMakeFiles/nfactor_analysis.dir/dominators.cpp.o"
  "CMakeFiles/nfactor_analysis.dir/dominators.cpp.o.d"
  "CMakeFiles/nfactor_analysis.dir/dot.cpp.o"
  "CMakeFiles/nfactor_analysis.dir/dot.cpp.o.d"
  "CMakeFiles/nfactor_analysis.dir/dynamic_slice.cpp.o"
  "CMakeFiles/nfactor_analysis.dir/dynamic_slice.cpp.o.d"
  "CMakeFiles/nfactor_analysis.dir/live_vars.cpp.o"
  "CMakeFiles/nfactor_analysis.dir/live_vars.cpp.o.d"
  "CMakeFiles/nfactor_analysis.dir/pdg.cpp.o"
  "CMakeFiles/nfactor_analysis.dir/pdg.cpp.o.d"
  "CMakeFiles/nfactor_analysis.dir/reaching_defs.cpp.o"
  "CMakeFiles/nfactor_analysis.dir/reaching_defs.cpp.o.d"
  "libnfactor_analysis.a"
  "libnfactor_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nfactor_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
