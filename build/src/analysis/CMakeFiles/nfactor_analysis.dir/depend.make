# Empty dependencies file for nfactor_analysis.
# This may be replaced when dependencies are built.
