
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/analysis/control_dep.cpp" "src/analysis/CMakeFiles/nfactor_analysis.dir/control_dep.cpp.o" "gcc" "src/analysis/CMakeFiles/nfactor_analysis.dir/control_dep.cpp.o.d"
  "/root/repo/src/analysis/dominators.cpp" "src/analysis/CMakeFiles/nfactor_analysis.dir/dominators.cpp.o" "gcc" "src/analysis/CMakeFiles/nfactor_analysis.dir/dominators.cpp.o.d"
  "/root/repo/src/analysis/dot.cpp" "src/analysis/CMakeFiles/nfactor_analysis.dir/dot.cpp.o" "gcc" "src/analysis/CMakeFiles/nfactor_analysis.dir/dot.cpp.o.d"
  "/root/repo/src/analysis/dynamic_slice.cpp" "src/analysis/CMakeFiles/nfactor_analysis.dir/dynamic_slice.cpp.o" "gcc" "src/analysis/CMakeFiles/nfactor_analysis.dir/dynamic_slice.cpp.o.d"
  "/root/repo/src/analysis/live_vars.cpp" "src/analysis/CMakeFiles/nfactor_analysis.dir/live_vars.cpp.o" "gcc" "src/analysis/CMakeFiles/nfactor_analysis.dir/live_vars.cpp.o.d"
  "/root/repo/src/analysis/pdg.cpp" "src/analysis/CMakeFiles/nfactor_analysis.dir/pdg.cpp.o" "gcc" "src/analysis/CMakeFiles/nfactor_analysis.dir/pdg.cpp.o.d"
  "/root/repo/src/analysis/reaching_defs.cpp" "src/analysis/CMakeFiles/nfactor_analysis.dir/reaching_defs.cpp.o" "gcc" "src/analysis/CMakeFiles/nfactor_analysis.dir/reaching_defs.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/ir/CMakeFiles/nfactor_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/lang/CMakeFiles/nfactor_lang.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
