file(REMOVE_RECURSE
  "libnfactor_analysis.a"
)
