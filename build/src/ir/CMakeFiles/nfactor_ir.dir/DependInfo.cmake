
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ir/dot.cpp" "src/ir/CMakeFiles/nfactor_ir.dir/dot.cpp.o" "gcc" "src/ir/CMakeFiles/nfactor_ir.dir/dot.cpp.o.d"
  "/root/repo/src/ir/ir.cpp" "src/ir/CMakeFiles/nfactor_ir.dir/ir.cpp.o" "gcc" "src/ir/CMakeFiles/nfactor_ir.dir/ir.cpp.o.d"
  "/root/repo/src/ir/lower.cpp" "src/ir/CMakeFiles/nfactor_ir.dir/lower.cpp.o" "gcc" "src/ir/CMakeFiles/nfactor_ir.dir/lower.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/lang/CMakeFiles/nfactor_lang.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
