file(REMOVE_RECURSE
  "libnfactor_ir.a"
)
