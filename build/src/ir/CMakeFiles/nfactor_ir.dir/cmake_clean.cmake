file(REMOVE_RECURSE
  "CMakeFiles/nfactor_ir.dir/dot.cpp.o"
  "CMakeFiles/nfactor_ir.dir/dot.cpp.o.d"
  "CMakeFiles/nfactor_ir.dir/ir.cpp.o"
  "CMakeFiles/nfactor_ir.dir/ir.cpp.o.d"
  "CMakeFiles/nfactor_ir.dir/lower.cpp.o"
  "CMakeFiles/nfactor_ir.dir/lower.cpp.o.d"
  "libnfactor_ir.a"
  "libnfactor_ir.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nfactor_ir.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
