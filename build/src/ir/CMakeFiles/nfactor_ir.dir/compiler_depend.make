# Empty compiler generated dependencies file for nfactor_ir.
# This may be replaced when dependencies are built.
