file(REMOVE_RECURSE
  "CMakeFiles/nfactor_statealyzer.dir/statealyzer.cpp.o"
  "CMakeFiles/nfactor_statealyzer.dir/statealyzer.cpp.o.d"
  "libnfactor_statealyzer.a"
  "libnfactor_statealyzer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nfactor_statealyzer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
