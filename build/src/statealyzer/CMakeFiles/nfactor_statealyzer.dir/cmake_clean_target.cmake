file(REMOVE_RECURSE
  "libnfactor_statealyzer.a"
)
