# Empty compiler generated dependencies file for nfactor_statealyzer.
# This may be replaced when dependencies are built.
