
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/runtime/interp.cpp" "src/runtime/CMakeFiles/nfactor_runtime.dir/interp.cpp.o" "gcc" "src/runtime/CMakeFiles/nfactor_runtime.dir/interp.cpp.o.d"
  "/root/repo/src/runtime/value.cpp" "src/runtime/CMakeFiles/nfactor_runtime.dir/value.cpp.o" "gcc" "src/runtime/CMakeFiles/nfactor_runtime.dir/value.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/analysis/CMakeFiles/nfactor_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/netsim/CMakeFiles/nfactor_netsim.dir/DependInfo.cmake"
  "/root/repo/build/src/ir/CMakeFiles/nfactor_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/lang/CMakeFiles/nfactor_lang.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
