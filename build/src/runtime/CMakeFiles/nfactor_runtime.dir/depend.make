# Empty dependencies file for nfactor_runtime.
# This may be replaced when dependencies are built.
