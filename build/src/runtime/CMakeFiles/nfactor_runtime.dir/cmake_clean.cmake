file(REMOVE_RECURSE
  "CMakeFiles/nfactor_runtime.dir/interp.cpp.o"
  "CMakeFiles/nfactor_runtime.dir/interp.cpp.o.d"
  "CMakeFiles/nfactor_runtime.dir/value.cpp.o"
  "CMakeFiles/nfactor_runtime.dir/value.cpp.o.d"
  "libnfactor_runtime.a"
  "libnfactor_runtime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nfactor_runtime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
