file(REMOVE_RECURSE
  "libnfactor_runtime.a"
)
