# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("netsim")
subdirs("lang")
subdirs("ir")
subdirs("analysis")
subdirs("statealyzer")
subdirs("runtime")
subdirs("symex")
subdirs("model")
subdirs("transform")
subdirs("nfactor")
subdirs("verify")
subdirs("nfs")
