file(REMOVE_RECURSE
  "libnfactor_netsim.a"
)
