file(REMOVE_RECURSE
  "CMakeFiles/nfactor_netsim.dir/checksum.cpp.o"
  "CMakeFiles/nfactor_netsim.dir/checksum.cpp.o.d"
  "CMakeFiles/nfactor_netsim.dir/flow.cpp.o"
  "CMakeFiles/nfactor_netsim.dir/flow.cpp.o.d"
  "CMakeFiles/nfactor_netsim.dir/packet.cpp.o"
  "CMakeFiles/nfactor_netsim.dir/packet.cpp.o.d"
  "CMakeFiles/nfactor_netsim.dir/packet_gen.cpp.o"
  "CMakeFiles/nfactor_netsim.dir/packet_gen.cpp.o.d"
  "CMakeFiles/nfactor_netsim.dir/tcp_fsm.cpp.o"
  "CMakeFiles/nfactor_netsim.dir/tcp_fsm.cpp.o.d"
  "CMakeFiles/nfactor_netsim.dir/trace.cpp.o"
  "CMakeFiles/nfactor_netsim.dir/trace.cpp.o.d"
  "libnfactor_netsim.a"
  "libnfactor_netsim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nfactor_netsim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
