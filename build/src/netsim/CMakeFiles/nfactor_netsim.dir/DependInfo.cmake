
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/netsim/checksum.cpp" "src/netsim/CMakeFiles/nfactor_netsim.dir/checksum.cpp.o" "gcc" "src/netsim/CMakeFiles/nfactor_netsim.dir/checksum.cpp.o.d"
  "/root/repo/src/netsim/flow.cpp" "src/netsim/CMakeFiles/nfactor_netsim.dir/flow.cpp.o" "gcc" "src/netsim/CMakeFiles/nfactor_netsim.dir/flow.cpp.o.d"
  "/root/repo/src/netsim/packet.cpp" "src/netsim/CMakeFiles/nfactor_netsim.dir/packet.cpp.o" "gcc" "src/netsim/CMakeFiles/nfactor_netsim.dir/packet.cpp.o.d"
  "/root/repo/src/netsim/packet_gen.cpp" "src/netsim/CMakeFiles/nfactor_netsim.dir/packet_gen.cpp.o" "gcc" "src/netsim/CMakeFiles/nfactor_netsim.dir/packet_gen.cpp.o.d"
  "/root/repo/src/netsim/tcp_fsm.cpp" "src/netsim/CMakeFiles/nfactor_netsim.dir/tcp_fsm.cpp.o" "gcc" "src/netsim/CMakeFiles/nfactor_netsim.dir/tcp_fsm.cpp.o.d"
  "/root/repo/src/netsim/trace.cpp" "src/netsim/CMakeFiles/nfactor_netsim.dir/trace.cpp.o" "gcc" "src/netsim/CMakeFiles/nfactor_netsim.dir/trace.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
