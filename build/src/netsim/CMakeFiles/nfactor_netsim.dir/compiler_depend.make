# Empty compiler generated dependencies file for nfactor_netsim.
# This may be replaced when dependencies are built.
