file(REMOVE_RECURSE
  "libnfactor_verify.a"
)
