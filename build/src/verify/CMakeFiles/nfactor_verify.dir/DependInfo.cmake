
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/verify/chain.cpp" "src/verify/CMakeFiles/nfactor_verify.dir/chain.cpp.o" "gcc" "src/verify/CMakeFiles/nfactor_verify.dir/chain.cpp.o.d"
  "/root/repo/src/verify/compliance.cpp" "src/verify/CMakeFiles/nfactor_verify.dir/compliance.cpp.o" "gcc" "src/verify/CMakeFiles/nfactor_verify.dir/compliance.cpp.o.d"
  "/root/repo/src/verify/equivalence.cpp" "src/verify/CMakeFiles/nfactor_verify.dir/equivalence.cpp.o" "gcc" "src/verify/CMakeFiles/nfactor_verify.dir/equivalence.cpp.o.d"
  "/root/repo/src/verify/hsa.cpp" "src/verify/CMakeFiles/nfactor_verify.dir/hsa.cpp.o" "gcc" "src/verify/CMakeFiles/nfactor_verify.dir/hsa.cpp.o.d"
  "/root/repo/src/verify/multi_packet.cpp" "src/verify/CMakeFiles/nfactor_verify.dir/multi_packet.cpp.o" "gcc" "src/verify/CMakeFiles/nfactor_verify.dir/multi_packet.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/model/CMakeFiles/nfactor_model.dir/DependInfo.cmake"
  "/root/repo/build/src/runtime/CMakeFiles/nfactor_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/symex/CMakeFiles/nfactor_symex.dir/DependInfo.cmake"
  "/root/repo/build/src/netsim/CMakeFiles/nfactor_netsim.dir/DependInfo.cmake"
  "/root/repo/build/src/statealyzer/CMakeFiles/nfactor_statealyzer.dir/DependInfo.cmake"
  "/root/repo/build/src/analysis/CMakeFiles/nfactor_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/ir/CMakeFiles/nfactor_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/lang/CMakeFiles/nfactor_lang.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
