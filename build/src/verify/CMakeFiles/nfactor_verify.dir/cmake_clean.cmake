file(REMOVE_RECURSE
  "CMakeFiles/nfactor_verify.dir/chain.cpp.o"
  "CMakeFiles/nfactor_verify.dir/chain.cpp.o.d"
  "CMakeFiles/nfactor_verify.dir/compliance.cpp.o"
  "CMakeFiles/nfactor_verify.dir/compliance.cpp.o.d"
  "CMakeFiles/nfactor_verify.dir/equivalence.cpp.o"
  "CMakeFiles/nfactor_verify.dir/equivalence.cpp.o.d"
  "CMakeFiles/nfactor_verify.dir/hsa.cpp.o"
  "CMakeFiles/nfactor_verify.dir/hsa.cpp.o.d"
  "CMakeFiles/nfactor_verify.dir/multi_packet.cpp.o"
  "CMakeFiles/nfactor_verify.dir/multi_packet.cpp.o.d"
  "libnfactor_verify.a"
  "libnfactor_verify.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nfactor_verify.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
