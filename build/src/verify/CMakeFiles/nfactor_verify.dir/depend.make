# Empty dependencies file for nfactor_verify.
# This may be replaced when dependencies are built.
