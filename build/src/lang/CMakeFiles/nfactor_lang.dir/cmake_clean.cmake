file(REMOVE_RECURSE
  "CMakeFiles/nfactor_lang.dir/ast.cpp.o"
  "CMakeFiles/nfactor_lang.dir/ast.cpp.o.d"
  "CMakeFiles/nfactor_lang.dir/builtins.cpp.o"
  "CMakeFiles/nfactor_lang.dir/builtins.cpp.o.d"
  "CMakeFiles/nfactor_lang.dir/lexer.cpp.o"
  "CMakeFiles/nfactor_lang.dir/lexer.cpp.o.d"
  "CMakeFiles/nfactor_lang.dir/parser.cpp.o"
  "CMakeFiles/nfactor_lang.dir/parser.cpp.o.d"
  "CMakeFiles/nfactor_lang.dir/sema.cpp.o"
  "CMakeFiles/nfactor_lang.dir/sema.cpp.o.d"
  "libnfactor_lang.a"
  "libnfactor_lang.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nfactor_lang.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
