
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/lang/ast.cpp" "src/lang/CMakeFiles/nfactor_lang.dir/ast.cpp.o" "gcc" "src/lang/CMakeFiles/nfactor_lang.dir/ast.cpp.o.d"
  "/root/repo/src/lang/builtins.cpp" "src/lang/CMakeFiles/nfactor_lang.dir/builtins.cpp.o" "gcc" "src/lang/CMakeFiles/nfactor_lang.dir/builtins.cpp.o.d"
  "/root/repo/src/lang/lexer.cpp" "src/lang/CMakeFiles/nfactor_lang.dir/lexer.cpp.o" "gcc" "src/lang/CMakeFiles/nfactor_lang.dir/lexer.cpp.o.d"
  "/root/repo/src/lang/parser.cpp" "src/lang/CMakeFiles/nfactor_lang.dir/parser.cpp.o" "gcc" "src/lang/CMakeFiles/nfactor_lang.dir/parser.cpp.o.d"
  "/root/repo/src/lang/sema.cpp" "src/lang/CMakeFiles/nfactor_lang.dir/sema.cpp.o" "gcc" "src/lang/CMakeFiles/nfactor_lang.dir/sema.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
