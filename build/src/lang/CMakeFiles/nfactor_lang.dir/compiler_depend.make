# Empty compiler generated dependencies file for nfactor_lang.
# This may be replaced when dependencies are built.
