file(REMOVE_RECURSE
  "libnfactor_lang.a"
)
