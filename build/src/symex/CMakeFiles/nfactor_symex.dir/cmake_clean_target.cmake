file(REMOVE_RECURSE
  "libnfactor_symex.a"
)
