file(REMOVE_RECURSE
  "CMakeFiles/nfactor_symex.dir/concrete_eval.cpp.o"
  "CMakeFiles/nfactor_symex.dir/concrete_eval.cpp.o.d"
  "CMakeFiles/nfactor_symex.dir/executor.cpp.o"
  "CMakeFiles/nfactor_symex.dir/executor.cpp.o.d"
  "CMakeFiles/nfactor_symex.dir/expr.cpp.o"
  "CMakeFiles/nfactor_symex.dir/expr.cpp.o.d"
  "CMakeFiles/nfactor_symex.dir/solver.cpp.o"
  "CMakeFiles/nfactor_symex.dir/solver.cpp.o.d"
  "libnfactor_symex.a"
  "libnfactor_symex.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nfactor_symex.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
