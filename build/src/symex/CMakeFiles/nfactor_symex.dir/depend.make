# Empty dependencies file for nfactor_symex.
# This may be replaced when dependencies are built.
