file(REMOVE_RECURSE
  "libnfactor_pipeline.a"
)
