# Empty dependencies file for nfactor_pipeline.
# This may be replaced when dependencies are built.
