file(REMOVE_RECURSE
  "CMakeFiles/nfactor_pipeline.dir/pipeline.cpp.o"
  "CMakeFiles/nfactor_pipeline.dir/pipeline.cpp.o.d"
  "libnfactor_pipeline.a"
  "libnfactor_pipeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nfactor_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
