# CMake generated Testfile for 
# Source directory: /root/repo/src/nfactor
# Build directory: /root/repo/build/src/nfactor
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
