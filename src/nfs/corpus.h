// The NF corpus: DSL re-implementations of the programs the paper
// studies (Fig. 1 load balancer, Fig. 3 "balance", snort) plus three
// more NFs (NAT, stateful firewall, consumer-producer rate monitor) that
// exercise every §3.2 code structure. Single source of truth for tests,
// benches and examples; write_corpus() materializes the .nf files.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace nfactor::nfs {

struct CorpusEntry {
  std::string_view name;      // "lb", "balance", "snort_lite", ...
  std::string_view filename;  // "lb.nf"
  std::string_view source;
  std::string_view structure;  // §3.2 structure this program exhibits
};

const std::vector<CorpusEntry>& corpus();
const CorpusEntry& find(std::string_view name);

/// Write every corpus program to `<dir>/<filename>`.
void write_corpus(const std::string& dir);

/// Synthetic NF generator for scaling studies: a fixed forwarding core
/// (port-match + connection map) surrounded by `log_branches` independent
/// forwarding-irrelevant statistic branches and `rules` header-match drop
/// rules. Slicing should prune the former and keep the latter, so
/// original-program SE cost grows ~2^log_branches while slice SE grows
/// ~linearly in `rules`.
std::string synthetic_nf(int log_branches, int rules);

}  // namespace nfactor::nfs
