#include "nfs/corpus.h"

#include <fstream>
#include <stdexcept>

namespace nfactor::nfs {

namespace {

// ---------------------------------------------------------------------------
// lb.nf — the paper's Figure 1 load balancer, callback structure (Fig. 4b).
// ---------------------------------------------------------------------------
constexpr std::string_view kLb = R"NF(# Layer-4 load balancer (paper Figure 1), callback structure (Fig. 4b).
# Constants
var ROUND_ROBIN = 1;
var HASH_MODE = 2;
# Configurations
var mode = 1;
var LB_IFACE = 0;
var LB_IP = 3.3.3.3;
var LB_PORT = 80;
var servers = [(1.1.1.1, 80), (2.2.2.2, 80)];
# Output-impacting states
var f2b_nat = {};
var b2f_nat = {};
var rr_idx = 0;
var cur_port = 10000;
# Log states
var pass_stat = 0;
var drop_stat = 0;

def pkt_callback(pkt) {
  si = pkt.ip_src;
  di = pkt.ip_dst;
  sp = pkt.sport;
  dp = pkt.dport;
  if (dp == LB_PORT) {
    # packet from client to server
    cs_ftpl = (si, sp, di, dp);
    sc_ftpl = (di, dp, si, sp);
    if (!(cs_ftpl in f2b_nat)) {
      # new connection
      if (mode == ROUND_ROBIN) {
        server = servers[rr_idx];
        rr_idx = (rr_idx + 1) % len(servers);
      } else {
        # hash to a backend server
        server = servers[hash(si) % len(servers)];
      }
      n_port = cur_port;
      cur_port = cur_port + 1;
      cs_btpl = (LB_IP, n_port, server[0], server[1]);
      sc_btpl = (server[0], server[1], LB_IP, n_port);
      f2b_nat[cs_ftpl] = cs_btpl;
      b2f_nat[sc_btpl] = sc_ftpl;
      nat_tpl = cs_btpl;
    } else {
      # existing connection
      nat_tpl = f2b_nat[cs_ftpl];
    }
  } else {
    # packet from server to client
    sc_btpl = (si, sp, di, dp);
    if (sc_btpl in b2f_nat) {
      nat_tpl = b2f_nat[sc_btpl];
    } else {
      # no initial outbound traffic is allowed
      drop_stat = drop_stat + 1;
      return;
    }
  }
  pass_stat = pass_stat + 1;
  pkt.ip_src = nat_tpl[0];
  pkt.sport = nat_tpl[1];
  pkt.ip_dst = nat_tpl[2];
  pkt.dport = nat_tpl[3];
  send(pkt, LB_IFACE);
}

def main() {
  sniff(0, pkt_callback);
}
)NF";

// ---------------------------------------------------------------------------
// balance_sock.nf — the paper's Figure 3: socket-level TCP proxy balancer
// with the nested accept/fork/relay loops (Fig. 4d). Must pass through
// transform::unfold_sockets before analysis.
// ---------------------------------------------------------------------------
constexpr std::string_view kBalanceSock =
    R"NF(# balance 3.5-style TCP proxy load balancer (paper Figure 3).
# Nested-loop socket structure (Fig. 4d): hidden TCP state lives in the
# OS until transform::unfold_sockets makes it explicit.
var MODE_RR = 1;
var mode = 1;
var BAL_PORT = 80;
var servers = [(1.1.1.1, 80), (2.2.2.2, 80)];
var idx = 0;
# Log state
var conn_stat = 0;
var busy_stat = 0;
var wrap_stat = 0;

def main() {
  lfd = sock_listen(BAL_PORT);
  while (true) {
    cfd = sock_accept(lfd);
    if (mode == MODE_RR) {
      server = servers[idx];
      idx = (idx + 1) % len(servers);
    } else {
      # hash the client to a backend server
      server = servers[hash(cfd) % len(servers)];
    }
    conn_stat = conn_stat + 1;
    if (conn_stat > 1000) {
      # failure handling: connection table pressure accounting
      busy_stat = busy_stat + 1;
    }
    if (idx == 0) {
      wrap_stat = wrap_stat + 1;
    }
    child = fork();
    if (child == 0) {
      sfd = sock_connect(server[0], server[1]);
      while (true) {
        buf = sock_recv(cfd);
        sock_send(sfd, buf);
        buf2 = sock_recv(sfd);
        sock_send(cfd, buf2);
      }
    }
  }
}
)NF";

// ---------------------------------------------------------------------------
// snort_lite.nf — signature-based inline IDS/IPS modeled on snort 1.0's
// decode -> preprocess -> detect -> verdict flow. Canonical loop (Fig 4a).
// The preprocess/logging stages carry many forwarding-irrelevant branches
// — the code NFactor's slicing prunes (paper §5: "The pruned code
// includes logs, failure handling, locking, etc.").
// ---------------------------------------------------------------------------
constexpr std::string_view kSnortLite = R"NF(# snort-lite: inline signature IDS/IPS, canonical loop structure (Fig. 4a).
# -------- configuration --------
var IFACE_IN = 0;
var IFACE_OUT = 1;
var INLINE_DROP = 1;
# rule tuple: (proto, src_ip, src_port, dst_ip, dst_port, flags_mask)
# field value 0 means wildcard.
var rules = [
  (6, 0, 0, 0, 23, 0),
  (6, 0, 0, 0, 8080, 2),
  (17, 0, 0, 0, 69, 0),
];

# -------- log / statistics state (forwarding-irrelevant) --------
var pkt_count = 0;
var tcp_count = 0;
var udp_count = 0;
var other_count = 0;
var syn_count = 0;
var fin_count = 0;
var rst_count = 0;
var big_count = 0;
var tiny_count = 0;
var lowttl_count = 0;
var frag_count = 0;
var http_count = 0;
var telnet_count = 0;
var alert_count = 0;
var drop_count = 0;
var byte_count = 0;
var decode_fail = 0;

def decode_ok(pkt) {
  # failure handling: malformed packets are not forwarded
  if (pkt.eth_type != 0x0800) {
    return false;
  }
  if (pkt.ip_ttl == 0) {
    return false;
  }
  return true;
}

def preprocess(pkt) {
  # per-protocol accounting (log-only; pruned by slicing)
  pkt_count = pkt_count + 1;
  byte_count = byte_count + pkt.len;
  if (pkt.ip_proto == 6) {
    tcp_count = tcp_count + 1;
  } else {
    if (pkt.ip_proto == 17) {
      udp_count = udp_count + 1;
    } else {
      other_count = other_count + 1;
    }
  }
  if ((pkt.tcp_flags & 2) != 0) {
    syn_count = syn_count + 1;
  }
  if ((pkt.tcp_flags & 1) != 0) {
    fin_count = fin_count + 1;
  }
  if ((pkt.tcp_flags & 4) != 0) {
    rst_count = rst_count + 1;
  }
  if (pkt.len > 512) {
    big_count = big_count + 1;
  }
  if (pkt.len < 16) {
    tiny_count = tiny_count + 1;
  }
  if (pkt.ip_ttl < 5) {
    lowttl_count = lowttl_count + 1;
  }
  if (pkt.ip_id != 0) {
    frag_count = frag_count + 1;
  }
  if (pkt.dport == 80) {
    http_count = http_count + 1;
  }
  if (pkt.dport == 23) {
    telnet_count = telnet_count + 1;
  }
}

def match_rule(pkt, r) {
  # header match with 0-wildcards; compound condition keeps the branch
  # factor at one per rule
  if ((r[0] == 0 || r[0] == pkt.ip_proto) &&
      (r[1] == 0 || r[1] == pkt.ip_src) &&
      (r[2] == 0 || r[2] == pkt.sport) &&
      (r[3] == 0 || r[3] == pkt.ip_dst) &&
      (r[4] == 0 || r[4] == pkt.dport) &&
      (r[5] == 0 || (pkt.tcp_flags & r[5]) != 0)) {
    return true;
  }
  return false;
}

def detect(pkt) {
  for i in 0..len(rules) {
    if (match_rule(pkt, rules[i])) {
      return i;
    }
  }
  # content rules (compiled in, like snort's content: options)
  if (pkt.dport == 21 && payload_contains(pkt, "USER root")) {
    return 100;
  }
  if (pkt.dport == 80 && payload_contains(pkt, "/etc/passwd")) {
    return 101;
  }
  return 0 - 1;
}

def log_alert(pkt, rule_id) {
  alert_count = alert_count + 1;
  # alert record formatting (pruned by slicing)
  sev = 1;
  if (rule_id >= 100) {
    sev = 2;
  }
  src_hi = pkt.ip_src >> 16;
  src_lo = pkt.ip_src & 0xFFFF;
  log("ALERT", rule_id, sev, src_hi, src_lo, pkt.sport, pkt.dport);
}

def main() {
  while (true) {
    pkt = recv(IFACE_IN);
    if (!decode_ok(pkt)) {
      decode_fail = decode_fail + 1;
      return;
    }
    preprocess(pkt);
    rule_id = detect(pkt);
    if (rule_id >= 0) {
      log_alert(pkt, rule_id);
      if (INLINE_DROP == 1) {
        drop_count = drop_count + 1;
        return;
      }
    }
    send(pkt, IFACE_OUT);
  }
}
)NF";

// ---------------------------------------------------------------------------
// nat.nf — NAPT gateway, canonical loop.
// ---------------------------------------------------------------------------
constexpr std::string_view kNat = R"NF(# napt: network address/port translation gateway (Fig. 4a structure).
var EXT_IP = 5.5.5.5;
var INT_PORT = 0;
var EXT_PORT = 1;
var PORT_BASE = 40000;
# Translation state
var nat_out = {};
var nat_in = {};
var next_p = 40000;
# Log state
var xlated = 0;
var dropped_in = 0;

def main() {
  while (true) {
    pkt = recv(0);
    if (pkt.in_port == INT_PORT) {
      k = (pkt.ip_src, pkt.sport, pkt.ip_dst, pkt.dport);
      if (!(k in nat_out)) {
        nat_out[k] = next_p;
        nat_in[next_p] = (pkt.ip_src, pkt.sport, pkt.ip_dst, pkt.dport);
        next_p = next_p + 1;
      }
      ep = nat_out[k];
      xlated = xlated + 1;
      pkt.ip_src = EXT_IP;
      pkt.sport = ep;
      send(pkt, EXT_PORT);
      return;
    }
    if (pkt.dport in nat_in) {
      orig = nat_in[pkt.dport];
      pkt.ip_dst = orig[0];
      pkt.dport = orig[1];
      send(pkt, INT_PORT);
      return;
    }
    dropped_in = dropped_in + 1;
    return;
  }
}
)NF";

// ---------------------------------------------------------------------------
// firewall.nf — stateful firewall, canonical loop.
// ---------------------------------------------------------------------------
constexpr std::string_view kFirewall =
    R"NF(# stateful-firewall: LAN->WAN allowed and tracked; WAN->LAN only for
# established connections; RST tears the entry down (Fig. 4a structure).
var LAN_PORT = 0;
var WAN_PORT = 1;
# Connection table: 5-tuple -> 1 (live) / 0 (torn down)
var conns = {};
# Log state
var allowed = 0;
var blocked = 0;

def main() {
  while (true) {
    pkt = recv(0);
    if (pkt.in_port == LAN_PORT) {
      k = (pkt.ip_src, pkt.sport, pkt.ip_dst, pkt.dport, pkt.ip_proto);
      conns[k] = 1;
      allowed = allowed + 1;
      send(pkt, WAN_PORT);
      return;
    }
    rk = (pkt.ip_dst, pkt.dport, pkt.ip_src, pkt.sport, pkt.ip_proto);
    if (rk in conns && conns[rk] == 1) {
      if ((pkt.tcp_flags & 4) != 0) {
        # RST: tear down and still deliver the reset
        conns[rk] = 0;
      }
      allowed = allowed + 1;
      send(pkt, LAN_PORT);
      return;
    }
    blocked = blocked + 1;
    return;
  }
}
)NF";

// ---------------------------------------------------------------------------
// monitor.nf — per-flow rate limiter, consumer-producer structure (Fig 4c).
// ---------------------------------------------------------------------------
constexpr std::string_view kMonitor =
    R"NF(# flow-rate-limiter with a consumer-producer structure (Fig. 4c):
# a read loop enqueues packets, a processing loop pops and decides.
var LIMIT = 3;
var OUT_PORT = 1;
var queue = [];
# Output-impacting state
var flow_count = {};
# Log state
var total = 0;
var limited = 0;

def read_loop() {
  while (true) {
    p = recv(0);
    push(queue, p);
  }
}

def proc_loop() {
  while (true) {
    p = pop(queue);
    total = total + 1;
    k = (p.ip_src, p.ip_dst, p.ip_proto);
    if (k in flow_count) {
      c = flow_count[k];
    } else {
      c = 0;
    }
    if (c >= LIMIT) {
      limited = limited + 1;
      return;
    }
    flow_count[k] = c + 1;
    send(p, OUT_PORT);
  }
}

def main() {
  spawn(read_loop);
  spawn(proc_loop);
}
)NF";

// ---------------------------------------------------------------------------
// l2_switch.nf — MAC-learning switch, canonical loop.
// ---------------------------------------------------------------------------
constexpr std::string_view kL2Switch =
    R"NF(# l2-switch: MAC learning switch with flooding (Fig. 4a structure).
var FLOOD_PORT = 255;
# Forwarding state: MAC -> switch port
var mac_table = {};
# Log state
var learned = 0;
var flooded = 0;

def main() {
  while (true) {
    pkt = recv(0);
    # learn the source MAC's port
    mac_table[pkt.eth_src] = pkt.in_port;
    learned = learned + 1;
    if (pkt.eth_dst in mac_table) {
      out = mac_table[pkt.eth_dst];
      if (out != pkt.in_port) {
        send(pkt, out);
      }
      return;
    }
    flooded = flooded + 1;
    send(pkt, FLOOD_PORT);
  }
}
)NF";

// ---------------------------------------------------------------------------
// dpi.nf — payload signature inspection with mirroring, canonical loop.
// ---------------------------------------------------------------------------
constexpr std::string_view kDpi =
    R"NF(# dpi: payload signature inspection; matched packets are mirrored to
# an analysis port AND still forwarded (Fig. 4a structure).
var WATCH_PORT = 80;
var MIRROR_PORT = 9;
var OUT_PORT = 1;
# Log state
var inspected = 0;
var matched = 0;

def main() {
  while (true) {
    pkt = recv(0);
    if (pkt.ip_proto != 6) {
      send(pkt, OUT_PORT);
      return;
    }
    if (pkt.dport == WATCH_PORT || pkt.sport == WATCH_PORT) {
      inspected = inspected + 1;
      if (payload_contains(pkt, "exploit") ||
          payload_contains(pkt, "/etc/shadow")) {
        matched = matched + 1;
        send(pkt, MIRROR_PORT);
        send(pkt, OUT_PORT);
        return;
      }
    }
    send(pkt, OUT_PORT);
  }
}
)NF";

// ---------------------------------------------------------------------------
// heavy_hitter.nf — per-source byte accounting with a blocking threshold.
// ---------------------------------------------------------------------------
constexpr std::string_view kHeavyHitter =
    R"NF(# heavy-hitter: per-source byte counter; sources above THRESH are
# blocked (Fig. 4a structure). The counter is output-impacting state —
# unlike a log counter, it gates forwarding.
var THRESH = 600;
var OUT_PORT = 1;
# Output-impacting state
var bytes_by_src = {};
# Log state
var blocked_cnt = 0;

def main() {
  while (true) {
    pkt = recv(0);
    if (pkt.ip_src in bytes_by_src) {
      b = bytes_by_src[pkt.ip_src];
    } else {
      b = 0;
    }
    nb = b + pkt.len;
    bytes_by_src[pkt.ip_src] = nb;
    if (nb > THRESH) {
      blocked_cnt = blocked_cnt + 1;
      return;
    }
    send(pkt, OUT_PORT);
  }
}
)NF";

// ---------------------------------------------------------------------------
// synflood.nf — stateful SYN-flood mitigation, canonical loop.
// ---------------------------------------------------------------------------
constexpr std::string_view kSynFlood =
    R"NF(# synflood: SYN-flood mitigation. Tracks half-open handshakes per
# source; sources above SYN_LIMIT have further SYNs dropped; a completed
# handshake (ACK) forgives one half-open entry (Fig. 4a structure).
var OUT_PORT = 1;
var SYN_LIMIT = 3;
# Output-impacting state
var half_open = {};
# Log state
var flood_drops = 0;
var forgiven = 0;

def main() {
  while (true) {
    pkt = recv(0);
    if (pkt.ip_proto != 6) {
      send(pkt, OUT_PORT);
      return;
    }
    f = pkt.tcp_flags;
    if ((f & 2) != 0 && (f & 16) == 0) {
      # bare SYN: count it against the source
      if (pkt.ip_src in half_open) {
        c = half_open[pkt.ip_src];
      } else {
        c = 0;
      }
      if (c >= SYN_LIMIT) {
        flood_drops = flood_drops + 1;
        return;
      }
      half_open[pkt.ip_src] = c + 1;
      send(pkt, OUT_PORT);
      return;
    }
    if ((f & 16) != 0) {
      # ACK: a handshake completed; forgive one half-open slot
      if (pkt.ip_src in half_open) {
        c2 = half_open[pkt.ip_src];
        if (c2 > 0) {
          half_open[pkt.ip_src] = c2 - 1;
          forgiven = forgiven + 1;
        }
      }
    }
    send(pkt, OUT_PORT);
  }
}
)NF";

const std::vector<CorpusEntry> kCorpus = {
    {"lb", "lb.nf", kLb, "callback"},
    {"balance", "balance_sock.nf", kBalanceSock, "nested-loop"},
    {"snort_lite", "snort_lite.nf", kSnortLite, "canonical-loop"},
    {"nat", "nat.nf", kNat, "canonical-loop"},
    {"firewall", "firewall.nf", kFirewall, "canonical-loop"},
    {"monitor", "monitor.nf", kMonitor, "consumer-producer"},
    {"l2_switch", "l2_switch.nf", kL2Switch, "canonical-loop"},
    {"dpi", "dpi.nf", kDpi, "canonical-loop"},
    {"heavy_hitter", "heavy_hitter.nf", kHeavyHitter, "canonical-loop"},
    {"synflood", "synflood.nf", kSynFlood, "canonical-loop"},
};

}  // namespace

const std::vector<CorpusEntry>& corpus() { return kCorpus; }

const CorpusEntry& find(std::string_view name) {
  for (const auto& e : kCorpus) {
    if (e.name == name) return e;
  }
  throw std::out_of_range("no corpus NF named '" + std::string(name) + "'");
}

std::string synthetic_nf(int log_branches, int rules) {
  std::string src;
  src += "# synthetic NF: " + std::to_string(log_branches) +
         " stat branches, " + std::to_string(rules) + " drop rules\n";
  src += "var SVC_PORT = 80;\nvar conns = {};\n";
  for (int i = 0; i < log_branches; ++i) {
    src += "var stat_" + std::to_string(i) + " = 0;\n";
  }
  src += "var rules = [";
  for (int i = 0; i < rules; ++i) {
    // (proto, dport) pairs; ports spread out so rules stay distinct.
    src += "(6, " + std::to_string(1000 + i) + "), ";
  }
  src += "];\n";
  src += "def main() {\n  while (true) {\n    pkt = recv(0);\n";
  for (int i = 0; i < log_branches; ++i) {
    const std::string fld = (i % 3 == 0)   ? "pkt.len > " + std::to_string(64 + i)
                            : (i % 3 == 1) ? "pkt.ip_ttl < " + std::to_string(8 + i)
                                           : "pkt.ip_tos == " + std::to_string(i);
    src += "    if (" + fld + ") {\n      stat_" + std::to_string(i) +
           " = stat_" + std::to_string(i) + " + 1;\n    }\n";
  }
  src += "    for i in 0..len(rules) {\n"
         "      r = rules[i];\n"
         "      if (r[0] == pkt.ip_proto && r[1] == pkt.dport) {\n"
         "        return;\n"
         "      }\n"
         "    }\n";
  src += "    if (pkt.dport == SVC_PORT) {\n"
         "      k = (pkt.ip_src, pkt.sport);\n"
         "      conns[k] = 1;\n"
         "      send(pkt, 1);\n"
         "      return;\n"
         "    }\n"
         "    rk = (pkt.ip_dst, pkt.dport);\n"
         "    if (rk in conns) {\n"
         "      send(pkt, 0);\n"
         "    }\n"
         "  }\n}\n";
  return src;
}

void write_corpus(const std::string& dir) {
  for (const auto& e : kCorpus) {
    std::ofstream out(dir + "/" + std::string(e.filename));
    if (!out) {
      throw std::runtime_error("cannot write corpus file in " + dir);
    }
    out << e.source;
  }
}

}  // namespace nfactor::nfs
