// Span-based tracer: RAII spans with nanosecond steady-clock durations,
// nested via a per-tracer open-span stack, completed records kept in a
// bounded ring buffer. Exports as Chrome trace_event JSON (load in
// chrome://tracing or ui.perfetto.dev; complete "X" events nest by time
// containment) and as a flat indented text tree.
//
// The explicit API (Tracer / Span) is always compiled in — the pipeline
// uses it for its stage timings, which must work even with the
// instrumentation kill switch off. The OBS_* macros in obs.h are the
// compile-time-gated layer for hot paths.
#pragma once

#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <thread>
#include <utility>
#include <vector>

namespace nfactor::obs {

/// One completed span. `start_ns` is relative to the tracer's steady
/// epoch; `wall_start_us` is microseconds since the Unix epoch (captured
/// once at tracer construction and offset by start_ns).
struct SpanRecord {
  std::string name;
  std::vector<std::pair<std::string, std::string>> attrs;
  std::int64_t start_ns = 0;
  std::int64_t dur_ns = 0;
  std::int64_t wall_start_us = 0;
  int depth = 0;  // nesting depth at begin time (0 = root)
};

class Tracer {
 public:
  explicit Tracer(std::size_t capacity = 65536);

  /// Begin a span; returns a token to pass to end(). Prefer the RAII
  /// Span wrapper over calling begin/end directly. Spans nest per
  /// thread: each thread has its own open-span stack, so concurrent
  /// spans from executor workers record independently (a span must be
  /// ended on the thread that began it — RAII guarantees this).
  std::int64_t begin(std::string name);
  /// Attach a key=value attribute to the open span `token`.
  void attr(std::int64_t token, std::string key, std::string value);
  /// End the span and record it. Returns the duration in nanoseconds.
  /// Any spans opened after `token` and still open are ended first
  /// (misuse guard; RAII makes this unreachable in practice).
  std::int64_t end(std::int64_t token);

  /// Completed spans, oldest first. When the ring overflowed, the oldest
  /// records were evicted (see dropped()).
  std::vector<SpanRecord> spans() const;
  std::size_t size() const;
  std::size_t dropped() const;
  std::size_t capacity() const { return capacity_; }

  /// Drop all completed records (open spans are untouched).
  void clear();

  /// Chrome trace_event JSON: {"traceEvents":[...]}.
  std::string to_chrome_json() const;
  /// Indented text rendering, ordered by start time.
  std::string to_text_tree() const;

 private:
  struct OpenSpan {
    std::string name;
    std::vector<std::pair<std::string, std::string>> attrs;
    std::int64_t start_ns = 0;
    std::int64_t token = 0;
  };

  std::int64_t now_ns() const;
  void push_record(SpanRecord rec);

  mutable std::mutex mu_;
  std::size_t capacity_;
  std::vector<SpanRecord> ring_;  // circular once full
  std::size_t head_ = 0;          // index of the oldest record when full
  std::size_t dropped_ = 0;
  std::map<std::thread::id, std::vector<OpenSpan>> open_;  // per-thread stacks
  std::int64_t next_token_ = 1;
  std::int64_t epoch_steady_ns_ = 0;  // steady_clock raw ns at construction
  std::int64_t epoch_wall_us_ = 0;    // wall clock at construction
};

/// Process-wide default tracer (used by the OBS_SPAN macros and the
/// pipeline's stage spans).
Tracer& default_tracer();

/// RAII span on a tracer. Ends at scope exit, or earlier via close_ms().
class Span {
 public:
  Span(Tracer& t, std::string name) : t_(&t), token_(t.begin(std::move(name))) {}
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;
  ~Span() {
    if (t_ != nullptr) t_->end(token_);
  }

  void attr(std::string key, std::string value) {
    if (t_ != nullptr) t_->attr(token_, std::move(key), std::move(value));
  }
  void attr(std::string key, std::int64_t value) {
    attr(std::move(key), std::to_string(value));
  }
  void attr(std::string key, std::uint64_t value) {
    attr(std::move(key), std::to_string(value));
  }
  void attr(std::string key, double value) {
    attr(std::move(key), std::to_string(value));
  }

  /// End the span now; returns its duration in milliseconds, computed
  /// from the same nanosecond measurement stored in the record — so a
  /// StageTimes field filled from this is exactly the span's duration.
  double close_ms() {
    if (t_ == nullptr) return 0.0;
    const std::int64_t ns = t_->end(token_);
    t_ = nullptr;
    return static_cast<double>(ns) / 1e6;
  }

 private:
  Tracer* t_;
  std::int64_t token_;
};

/// No-op stand-in with the same surface as Span; what OBS_SPAN_VAR
/// declares when the kill switch is off.
struct NoopSpan {
  template <typename K, typename V>
  void attr(K&&, V&&) {}
  double close_ms() { return 0.0; }
};

}  // namespace nfactor::obs
