#include "obs/metrics.h"

#include <bit>
#include <limits>
#include <sstream>

#include "obs/json.h"

namespace nfactor::obs {

std::size_t Histogram::bucket_index(std::uint64_t v) {
  if (v <= 1) return 0;
  return static_cast<std::size_t>(std::bit_width(v - 1));
}

std::uint64_t Histogram::bucket_bound(std::size_t i) {
  if (i >= 64) return std::numeric_limits<std::uint64_t>::max();
  return std::uint64_t{1} << i;
}

void Histogram::observe(std::uint64_t v) {
  if (count == 0) {
    min = v;
    max = v;
  } else {
    if (v < min) min = v;
    if (v > max) max = v;
  }
  ++count;
  sum += v;
  ++buckets[bucket_index(v)];
}

std::uint64_t Histogram::approx_quantile(double q) const {
  if (count == 0) return 0;
  if (q < 0) q = 0;
  if (q > 1) q = 1;
  const auto rank = static_cast<std::uint64_t>(q * static_cast<double>(count));
  std::uint64_t seen = 0;
  for (std::size_t i = 0; i < kBuckets; ++i) {
    seen += buckets[i];
    if (seen > rank || (seen == count && seen != 0)) {
      const std::uint64_t bound = bucket_bound(i);
      return bound < max ? bound : max;
    }
  }
  return max;
}

void Registry::count(std::string_view name, std::uint64_t delta) {
  const std::lock_guard<std::mutex> lock(mu_);
  const auto it = counters_.find(name);
  if (it != counters_.end()) {
    it->second += delta;
  } else {
    counters_.emplace(std::string(name), delta);
  }
}

void Registry::gauge_set(std::string_view name, double value) {
  const std::lock_guard<std::mutex> lock(mu_);
  const auto it = gauges_.find(name);
  if (it != gauges_.end()) {
    it->second = value;
  } else {
    gauges_.emplace(std::string(name), value);
  }
}

void Registry::observe(std::string_view name, std::uint64_t value) {
  const std::lock_guard<std::mutex> lock(mu_);
  auto it = hists_.find(name);
  if (it == hists_.end()) {
    it = hists_.emplace(std::string(name), Histogram{}).first;
  }
  it->second.observe(value);
}

std::uint64_t Registry::counter(std::string_view name) const {
  const std::lock_guard<std::mutex> lock(mu_);
  const auto it = counters_.find(name);
  return it == counters_.end() ? 0 : it->second;
}

double Registry::gauge(std::string_view name) const {
  const std::lock_guard<std::mutex> lock(mu_);
  const auto it = gauges_.find(name);
  return it == gauges_.end() ? 0.0 : it->second;
}

Histogram Registry::histogram(std::string_view name) const {
  const std::lock_guard<std::mutex> lock(mu_);
  const auto it = hists_.find(name);
  return it == hists_.end() ? Histogram{} : it->second;
}

std::map<std::string, std::uint64_t, std::less<>> Registry::counters() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return counters_;
}

std::map<std::string, double, std::less<>> Registry::gauges() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return gauges_;
}

std::string Registry::to_json() const {
  const std::lock_guard<std::mutex> lock(mu_);
  std::ostringstream os;
  os << "{\"counters\":{";
  bool first = true;
  for (const auto& [k, v] : counters_) {
    if (!first) os << ",";
    first = false;
    os << "\"" << json_escape(k) << "\":" << v;
  }
  os << "},\"gauges\":{";
  first = true;
  for (const auto& [k, v] : gauges_) {
    if (!first) os << ",";
    first = false;
    os << "\"" << json_escape(k) << "\":" << v;
  }
  os << "},\"histograms\":{";
  first = true;
  for (const auto& [k, h] : hists_) {
    if (!first) os << ",";
    first = false;
    os << "\"" << json_escape(k) << "\":{\"count\":" << h.count
       << ",\"sum\":" << h.sum << ",\"min\":" << h.min << ",\"max\":" << h.max
       << ",\"p50\":" << h.approx_quantile(0.5)
       << ",\"p99\":" << h.approx_quantile(0.99) << ",\"buckets\":[";
    bool bfirst = true;
    for (std::size_t i = 0; i < Histogram::kBuckets; ++i) {
      if (h.buckets[i] == 0) continue;
      if (!bfirst) os << ",";
      bfirst = false;
      os << "{\"le\":" << Histogram::bucket_bound(i)
         << ",\"count\":" << h.buckets[i] << "}";
    }
    os << "]}";
  }
  os << "}}";
  return os.str();
}

std::string Registry::summary() const {
  const std::lock_guard<std::mutex> lock(mu_);
  std::ostringstream os;
  os << "obs:";
  for (const auto& [k, v] : counters_) os << " " << k << "=" << v;
  for (const auto& [k, v] : gauges_) os << " " << k << "=" << v;
  for (const auto& [k, h] : hists_) {
    os << " " << k << "{n=" << h.count << ",p50=" << h.approx_quantile(0.5)
       << ",max=" << h.max << "}";
  }
  return os.str();
}

void Registry::clear() {
  const std::lock_guard<std::mutex> lock(mu_);
  counters_.clear();
  gauges_.clear();
  hists_.clear();
}

Registry& default_registry() {
  static Registry r;
  return r;
}

}  // namespace nfactor::obs
