// Tiny JSON string-escaping helper shared by the tracer and metrics
// exporters. Not a JSON library — the exporters emit their documents
// directly and only need correct string escaping.
#pragma once

#include <cstdio>
#include <string>
#include <string_view>

namespace nfactor::obs {

inline std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace nfactor::obs
