// Metrics registry: named counters (monotonic uint64), gauges (last-set
// double), and fixed-bucket histograms (power-of-two upper bounds —
// bucket i holds values v with 2^(i-1) < v <= 2^i, bucket 0 holds 0 and
// 1). Exportable as JSON and as a one-line summary. Naming convention
// (docs/observability.md): dotted lowercase paths, unit-suffixed where
// a unit applies — e.g. `symex.solver.query_ns`, `slice.worklist.pops`,
// `model.entries`.
#pragma once

#include <array>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <string_view>

namespace nfactor::obs {

struct Histogram {
  static constexpr std::size_t kBuckets = 65;

  std::uint64_t count = 0;
  std::uint64_t sum = 0;
  std::uint64_t min = 0;
  std::uint64_t max = 0;
  std::array<std::uint64_t, kBuckets> buckets{};  // buckets[i]: v <= 2^i

  /// Index of the bucket a value lands in.
  static std::size_t bucket_index(std::uint64_t v);
  /// Upper bound of bucket i (2^i; saturates at the top bucket).
  static std::uint64_t bucket_bound(std::size_t i);

  void observe(std::uint64_t v);
  /// Bucket-resolution quantile estimate (returns an upper bound);
  /// q in [0,1]. Returns 0 on an empty histogram.
  std::uint64_t approx_quantile(double q) const;
};

class Registry {
 public:
  // -- recording -----------------------------------------------------------
  void count(std::string_view name, std::uint64_t delta = 1);
  void gauge_set(std::string_view name, double value);
  void observe(std::string_view name, std::uint64_t value);

  // -- reading -------------------------------------------------------------
  /// Counter value (0 when never incremented).
  std::uint64_t counter(std::string_view name) const;
  /// Gauge value (0.0 when never set).
  double gauge(std::string_view name) const;
  /// Snapshot of a histogram (empty when never observed).
  Histogram histogram(std::string_view name) const;

  std::map<std::string, std::uint64_t, std::less<>> counters() const;
  std::map<std::string, double, std::less<>> gauges() const;

  // -- export --------------------------------------------------------------
  /// {"counters":{...},"gauges":{...},"histograms":{name:{count,sum,min,
  /// max,p50,p99,buckets:[{"le":bound,"count":n},...]}}}
  std::string to_json() const;
  /// Single-line digest: counters and gauges as k=v, histograms as
  /// name{n,p50,max}.
  std::string summary() const;

  void clear();

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::uint64_t, std::less<>> counters_;
  std::map<std::string, double, std::less<>> gauges_;
  std::map<std::string, Histogram, std::less<>> hists_;
};

/// Process-wide default registry (used by the OBS_COUNT/... macros, the
/// CLI's --metrics-out, and the bench runner's metrics emission).
Registry& default_registry();

}  // namespace nfactor::obs
