// Umbrella header + instrumentation macros for the obs subsystem.
//
// The OBS_* macros record into the process-wide default tracer/registry
// and compile to nothing when the kill switch is off (CMake
// -DNFACTOR_OBS=OFF, i.e. -DNFACTOR_OBS_ENABLED=0), so hot paths carry
// zero overhead in stripped builds. The explicit Tracer/Span/Registry
// API stays available either way — cold-path callers that *own* their
// measurements (e.g. the pipeline's StageTimes) use it directly.
//
//   OBS_SPAN("symex.run");                 // RAII span, anonymous local
//   OBS_SPAN_VAR(sp, "symex.path");        // named, for sp.attr(...)
//   OBS_COUNT("symex.forks");              // counter += 1
//   OBS_COUNT_N("symex.steps", n);         // counter += n
//   OBS_GAUGE("slice.union_nodes", n);     // gauge = n
//   OBS_HIST("symex.solver.query_ns", v);  // histogram observation
//   OBS_TIMER_NS("symex.solver.query_ns"); // RAII: observes elapsed ns
#pragma once

#include <chrono>

#include "obs/metrics.h"
#include "obs/tracer.h"

#ifndef NFACTOR_OBS_ENABLED
#define NFACTOR_OBS_ENABLED 1
#endif

#define NFACTOR_OBS_CONCAT_IMPL(a, b) a##b
#define NFACTOR_OBS_CONCAT(a, b) NFACTOR_OBS_CONCAT_IMPL(a, b)

#if NFACTOR_OBS_ENABLED

namespace nfactor::obs {

/// RAII timer feeding a histogram in the default registry.
class ScopedTimerNs {
 public:
  explicit ScopedTimerNs(const char* name) : name_(name), t0_(now()) {}
  ScopedTimerNs(const ScopedTimerNs&) = delete;
  ScopedTimerNs& operator=(const ScopedTimerNs&) = delete;
  ~ScopedTimerNs() {
    default_registry().observe(name_, static_cast<std::uint64_t>(now() - t0_));
  }

 private:
  static std::int64_t now() {
    return std::chrono::duration_cast<std::chrono::nanoseconds>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
  }
  const char* name_;
  std::int64_t t0_;
};

}  // namespace nfactor::obs

#define OBS_SPAN(name)                                               \
  ::nfactor::obs::Span NFACTOR_OBS_CONCAT(obs_span_, __LINE__)(      \
      ::nfactor::obs::default_tracer(), (name))
#define OBS_SPAN_VAR(var, name) \
  ::nfactor::obs::Span var(::nfactor::obs::default_tracer(), (name))
#define OBS_COUNT(name) ::nfactor::obs::default_registry().count((name))
#define OBS_COUNT_N(name, n) \
  ::nfactor::obs::default_registry().count((name), (n))
#define OBS_GAUGE(name, v)                   \
  ::nfactor::obs::default_registry().gauge_set((name), \
                                               static_cast<double>(v))
#define OBS_HIST(name, v)                  \
  ::nfactor::obs::default_registry().observe((name), \
                                             static_cast<std::uint64_t>(v))
#define OBS_TIMER_NS(name)                                             \
  ::nfactor::obs::ScopedTimerNs NFACTOR_OBS_CONCAT(obs_timer_, __LINE__)( \
      (name))

#else  // NFACTOR_OBS_ENABLED == 0: every call site is a no-op.

#define OBS_SPAN(name) static_cast<void>(0)
#define OBS_SPAN_VAR(var, name) ::nfactor::obs::NoopSpan var
#define OBS_COUNT(name) static_cast<void>(0)
#define OBS_COUNT_N(name, n) static_cast<void>(0)
#define OBS_GAUGE(name, v) static_cast<void>(0)
#define OBS_HIST(name, v) static_cast<void>(0)
#define OBS_TIMER_NS(name) static_cast<void>(0)

#endif  // NFACTOR_OBS_ENABLED
