#include "obs/provenance.h"

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <map>
#include <sstream>

#include "obs/json.h"

namespace nfactor::obs {

namespace {

/// "drop" / "send" / "2 sends", with "+state" when the rule writes
/// persistent state. Deterministic; used in listings and JSON.
std::string action_label(const model::ModelEntry& e) {
  std::string label;
  if (e.flow_action.empty()) {
    label = "drop";
  } else if (e.flow_action.size() == 1) {
    label = "send";
  } else {
    label = std::to_string(e.flow_action.size()) + " sends";
  }
  if (!e.state_action.empty()) label += "+state";
  return label;
}

std::vector<std::pair<int, int>> collapse_intervals(const std::vector<int>& lines) {
  std::vector<std::pair<int, int>> out;
  for (const int l : lines) {
    if (!out.empty() && out.back().second + 1 == l) {
      out.back().second = l;
    } else {
      out.emplace_back(l, l);
    }
  }
  return out;
}

std::string format_ms(std::uint64_t ns) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.3f", static_cast<double>(ns) / 1e6);
  return buf;
}

std::string render_intervals(const std::vector<std::pair<int, int>>& ivs) {
  std::string out;
  for (std::size_t i = 0; i < ivs.size(); ++i) {
    if (i) out += ",";
    out += std::to_string(ivs[i].first);
    if (ivs[i].second != ivs[i].first) out += "-" + std::to_string(ivs[i].second);
  }
  if (out.empty()) out = "-";
  return out;
}

}  // namespace

double ModelProvenance::solver_time_accounted() const {
  if (total_solver_ns == 0) return 1.0;
  std::uint64_t attributed = 0;
  for (const auto& r : rules) attributed += r.solver_ns;
  const double f = static_cast<double>(attributed) / static_cast<double>(total_solver_ns);
  return f > 1.0 ? 1.0 : f;
}

std::vector<int> ModelProvenance::rules_for_line(int line) const {
  std::vector<int> out;
  for (const auto& r : rules) {
    if (std::binary_search(r.lines.begin(), r.lines.end(), line)) out.push_back(r.entry);
  }
  return out;
}

ModelProvenance build_model_provenance(const ir::Module& module,
                                       const std::vector<symex::ExecPath>& paths,
                                       const model::Model& model,
                                       const symex::ExecStats* stats) {
  ModelProvenance prov;
  prov.nf = model.nf_name;
  if (stats != nullptr) {
    prov.total_solver_queries = stats->solver_queries;
    prov.total_solver_ns = stats->solver_ns;
    prov.total_exec_ns = static_cast<std::uint64_t>(stats->wall_ms * 1e6);
  }

  const std::size_t n = std::min(paths.size(), model.entries.size());
  prov.rules.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    const symex::ExecPath& path = paths[i];
    const model::ModelEntry& entry = model.entries[i];
    RuleProvenance r;
    r.entry = static_cast<int>(i);
    r.truncated = path.truncated;
    r.decision_key = path.decision_key;
    r.action = action_label(entry);

    for (const auto& b : path.branches) {
      if (b.forked) r.fork_sites.push_back(b.node);
    }
    std::sort(r.fork_sites.begin(), r.fork_sites.end());
    r.fork_sites.erase(std::unique(r.fork_sites.begin(), r.fork_sites.end()),
                       r.fork_sites.end());

    // Node set -> source lines and rendered statements. Line 0 marks
    // synthesized instructions (entry/exit, lowering artifacts) — skip.
    std::vector<std::pair<int, int>> line_nodes;  // (line, node id)
    for (const int id : path.nodes) {
      if (id < 0 || static_cast<std::size_t>(id) >= module.body.size()) continue;
      const ir::Instr& ins = module.body.node(id);
      if (ins.loc.line <= 0) continue;
      line_nodes.emplace_back(ins.loc.line, id);
    }
    std::sort(line_nodes.begin(), line_nodes.end());
    for (const auto& [line, id] : line_nodes) {
      if (r.lines.empty() || r.lines.back() != line) r.lines.push_back(line);
      r.statements.emplace_back(line, module.body.node(id).to_string());
    }
    r.intervals = collapse_intervals(r.lines);

    r.solver_queries = path.profile.solver_queries;
    r.solver_ns = path.profile.solver_ns;
    r.exec_ns = path.profile.exec_ns;

    // Per-branch-site solver ns -> per-source-line solver ns.
    std::map<int, std::uint64_t> by_line;
    for (const auto& [node, ns] : path.profile.branch_solver_ns) {
      if (node < 0 || static_cast<std::size_t>(node) >= module.body.size()) continue;
      const int line = module.body.node(node).loc.line;
      by_line[line > 0 ? line : 0] += ns;
    }
    r.line_solver_ns.assign(by_line.begin(), by_line.end());

    prov.rules.push_back(std::move(r));
  }
  return prov;
}

std::string to_json(const ModelProvenance& p, bool include_timing) {
  std::ostringstream os;
  os << "{\"schema\":\"nfactor-provenance-v1\",\"nf\":\"" << json_escape(p.nf)
     << "\",\"rules\":[";
  std::uint64_t attributed_queries = 0;
  for (std::size_t i = 0; i < p.rules.size(); ++i) {
    const RuleProvenance& r = p.rules[i];
    attributed_queries += r.solver_queries;
    if (i) os << ",";
    os << "{\"entry\":" << r.entry << ",\"action\":\"" << json_escape(r.action)
       << "\",\"truncated\":" << (r.truncated ? "true" : "false");
    os << ",\"decision_key\":[";
    for (std::size_t k = 0; k < r.decision_key.size(); ++k) {
      if (k) os << ",";
      os << r.decision_key[k];
    }
    os << "],\"fork_sites\":[";
    for (std::size_t k = 0; k < r.fork_sites.size(); ++k) {
      if (k) os << ",";
      os << r.fork_sites[k];
    }
    os << "],\"lines\":[";
    for (std::size_t k = 0; k < r.lines.size(); ++k) {
      if (k) os << ",";
      os << r.lines[k];
    }
    os << "],\"intervals\":[";
    for (std::size_t k = 0; k < r.intervals.size(); ++k) {
      if (k) os << ",";
      os << "[" << r.intervals[k].first << "," << r.intervals[k].second << "]";
    }
    os << "],\"solver_queries\":" << r.solver_queries;
    if (include_timing) {
      os << ",\"solver_ns\":" << r.solver_ns << ",\"exec_ns\":" << r.exec_ns;
      os << ",\"line_solver_ns\":[";
      for (std::size_t k = 0; k < r.line_solver_ns.size(); ++k) {
        if (k) os << ",";
        os << "[" << r.line_solver_ns[k].first << "," << r.line_solver_ns[k].second
           << "]";
      }
      os << "]";
    }
    os << "}";
  }
  // Totals restricted to pure functions of the per-rule records, so the
  // default export stays byte-stable even when the run-level counters
  // are schedule-dependent (path cap / timeout in play).
  os << "],\"totals\":{\"rules\":" << p.rules.size()
     << ",\"attributed_solver_queries\":" << attributed_queries;
  if (include_timing) {
    os << ",\"solver_queries\":" << p.total_solver_queries
       << ",\"solver_ns\":" << p.total_solver_ns
       << ",\"exec_ns\":" << p.total_exec_ns;
  }
  os << "}}\n";
  return os.str();
}

std::string to_folded(const ModelProvenance& p) {
  std::ostringstream os;
  const std::string nf = p.nf.empty() ? "nf" : p.nf;
  for (const RuleProvenance& r : p.rules) {
    const std::string stem = nf + ";entry " + std::to_string(r.entry) + ";";

    // Statement count per line — the shape weight, and the fallback
    // sample weight when the build carries no timing.
    std::map<int, std::uint64_t> counts;
    for (const auto& [line, text] : r.statements) {
      (void)text;
      ++counts[line];
    }
    std::uint64_t total_count = 0;
    for (const auto& [line, c] : counts) {
      (void)line;
      total_count += c;
    }

    // SE self time = continuation wall time minus its solver time,
    // distributed over the path's lines proportional to statement count.
    const std::uint64_t exec_self = r.exec_ns > r.solver_ns ? r.exec_ns - r.solver_ns : 0;
    for (const auto& [line, c] : counts) {
      std::uint64_t w = c;  // fallback: statement counts
      if (exec_self > 0 && total_count > 0) w = exec_self * c / total_count;
      if (w > 0) os << stem << "L" << line << " " << w << "\n";
    }
    for (const auto& [line, ns] : r.line_solver_ns) {
      if (ns == 0) continue;
      if (line > 0) {
        os << stem << "L" << line << ";solver " << ns << "\n";
      } else {
        os << stem << "solver " << ns << "\n";
      }
    }
  }
  return os.str();
}

namespace {

std::string explain_rule(const RuleProvenance& r) {
  std::ostringstream os;
  os << "rule " << r.entry << " (" << r.action << (r.truncated ? ", truncated" : "")
     << ")\n";
  os << "  source lines: " << render_intervals(r.intervals) << "\n";
  os << "  decision key:";
  if (r.decision_key.empty()) os << " (unconditional)";
  for (std::size_t i = 0; i + 1 < r.decision_key.size(); i += 2) {
    os << " n" << r.decision_key[i] << (r.decision_key[i + 1] == 0 ? "+" : "-");
  }
  os << "\n";
  os << "  fork sites:";
  if (r.fork_sites.empty()) os << " (none)";
  for (const int n : r.fork_sites) os << " n" << n;
  os << "\n";
  os << "  solver: " << r.solver_queries << " queries";
  if (r.solver_ns > 0 || r.exec_ns > 0) {
    os << ", " << format_ms(r.solver_ns) << " ms solver / " << format_ms(r.exec_ns)
       << " ms path";
  }
  os << "\n";
  if (!r.line_solver_ns.empty()) {
    os << "  solver time by line:\n";
    for (const auto& [line, ns] : r.line_solver_ns) {
      os << "    ";
      if (line > 0) {
        os << "L" << line;
      } else {
        os << "(synthesized)";
      }
      os << ": " << format_ms(ns) << " ms\n";
    }
  }
  os << "  statements:\n";
  for (const auto& [line, text] : r.statements) {
    os << "    L" << line << ": " << text << "\n";
  }
  return os.str();
}

std::string explain_all(const ModelProvenance& p) {
  std::ostringstream os;
  os << p.nf << ": " << p.rules.size() << " rules\n";
  std::uint64_t attributed_ns = 0;
  std::uint64_t attributed_queries = 0;
  for (const RuleProvenance& r : p.rules) {
    attributed_ns += r.solver_ns;
    attributed_queries += r.solver_queries;
    os << "  rule " << r.entry << ": " << r.action << "  lines "
       << render_intervals(r.intervals) << "  solver " << r.solver_queries << "q";
    if (p.total_solver_ns > 0) {
      const double pct = 100.0 * static_cast<double>(r.solver_ns) /
                         static_cast<double>(p.total_solver_ns);
      char buf[48];
      std::snprintf(buf, sizeof(buf), " %s ms (%.1f%%)", format_ms(r.solver_ns).c_str(),
                    pct);
      os << buf;
    }
    if (r.truncated) os << "  [truncated]";
    os << "\n";
  }
  os << "solver accounting: " << attributed_queries << "/" << p.total_solver_queries
     << " queries attributed";
  if (p.total_solver_ns > 0) {
    char buf[96];
    std::snprintf(buf, sizeof(buf), ", %s/%s ms (%.1f%%)",
                  format_ms(attributed_ns).c_str(), format_ms(p.total_solver_ns).c_str(),
                  100.0 * p.solver_time_accounted());
    os << buf;
  }
  os << "\n";
  return os.str();
}

}  // namespace

std::string explain(const ModelProvenance& p, const std::string& query) {
  if (query.empty() || query == "all") return explain_all(p);

  std::string q = query;
  bool is_line = false;
  if (q.size() > 1 && (q[0] == 'L' || q[0] == 'l') &&
      q.find_first_not_of("0123456789", 1) == std::string::npos) {
    is_line = true;
    q = q.substr(1);
  } else if (q.rfind("line:", 0) == 0) {
    is_line = true;
    q = q.substr(5);
  }
  if (q.empty() || q.find_first_not_of("0123456789") != std::string::npos) {
    return "explain: unknown query '" + query +
           "' (expected a rule index, L<line>, line:<line>, or nothing)\n";
  }
  const int n = std::stoi(q);

  if (is_line) {
    std::ostringstream os;
    const std::vector<int> hits = p.rules_for_line(n);
    os << "line " << n << ": " << hits.size() << " rule(s)\n";
    for (const int e : hits) {
      const RuleProvenance& r = p.rules[static_cast<std::size_t>(e)];
      os << "  rule " << e << ": " << r.action << "  lines "
         << render_intervals(r.intervals) << "\n";
    }
    return os.str();
  }

  if (n < 0 || static_cast<std::size_t>(n) >= p.rules.size()) {
    return "explain: rule " + q + " out of range (model has " +
           std::to_string(p.rules.size()) + " rules)\n";
  }
  return explain_rule(p.rules[static_cast<std::size_t>(n)]);
}

}  // namespace nfactor::obs
