#include "obs/tracer.h"

#include <algorithm>
#include <chrono>
#include <sstream>

#include "obs/json.h"

namespace nfactor::obs {

namespace {

std::int64_t steady_ns() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

std::int64_t wall_us() {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::system_clock::now().time_since_epoch())
      .count();
}

}  // namespace

Tracer::Tracer(std::size_t capacity)
    : capacity_(capacity == 0 ? 1 : capacity),
      epoch_steady_ns_(steady_ns()),
      epoch_wall_us_(wall_us()) {}

std::int64_t Tracer::now_ns() const { return steady_ns() - epoch_steady_ns_; }

std::int64_t Tracer::begin(std::string name) {
  const std::lock_guard<std::mutex> lock(mu_);
  OpenSpan s;
  s.name = std::move(name);
  s.start_ns = now_ns();
  s.token = next_token_++;
  auto& stack = open_[std::this_thread::get_id()];
  stack.push_back(std::move(s));
  return stack.back().token;
}

void Tracer::attr(std::int64_t token, std::string key, std::string value) {
  const std::lock_guard<std::mutex> lock(mu_);
  const auto si = open_.find(std::this_thread::get_id());
  if (si == open_.end()) return;
  for (auto it = si->second.rbegin(); it != si->second.rend(); ++it) {
    if (it->token == token) {
      it->attrs.emplace_back(std::move(key), std::move(value));
      return;
    }
  }
}

std::int64_t Tracer::end(std::int64_t token) {
  const std::lock_guard<std::mutex> lock(mu_);
  const std::int64_t end_ns = now_ns();
  std::int64_t dur = 0;
  const auto si = open_.find(std::this_thread::get_id());
  if (si == open_.end()) return dur;
  auto& stack = si->second;
  // Pop until (and including) the frame holding `token`. Only this
  // thread's stack is touched: spans of concurrently running workers
  // are unaffected by an end() on another thread.
  while (!stack.empty()) {
    OpenSpan frame = std::move(stack.back());
    stack.pop_back();
    const bool is_target = frame.token == token;
    SpanRecord rec;
    rec.name = std::move(frame.name);
    rec.attrs = std::move(frame.attrs);
    rec.start_ns = frame.start_ns;
    rec.dur_ns = end_ns - frame.start_ns;
    rec.wall_start_us = epoch_wall_us_ + frame.start_ns / 1000;
    rec.depth = static_cast<int>(stack.size());
    if (is_target) dur = rec.dur_ns;
    push_record(std::move(rec));
    if (is_target) break;
  }
  if (stack.empty()) open_.erase(si);
  return dur;
}

void Tracer::push_record(SpanRecord rec) {
  if (ring_.size() < capacity_) {
    ring_.push_back(std::move(rec));
    return;
  }
  ring_[head_] = std::move(rec);
  head_ = (head_ + 1) % capacity_;
  ++dropped_;
}

std::vector<SpanRecord> Tracer::spans() const {
  const std::lock_guard<std::mutex> lock(mu_);
  std::vector<SpanRecord> out;
  out.reserve(ring_.size());
  for (std::size_t i = 0; i < ring_.size(); ++i) {
    out.push_back(ring_[(head_ + i) % ring_.size()]);
  }
  return out;
}

std::size_t Tracer::size() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return ring_.size();
}

std::size_t Tracer::dropped() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return dropped_;
}

void Tracer::clear() {
  const std::lock_guard<std::mutex> lock(mu_);
  ring_.clear();
  head_ = 0;
  dropped_ = 0;
}

std::string Tracer::to_chrome_json() const {
  auto recs = spans();
  std::stable_sort(recs.begin(), recs.end(),
                   [](const SpanRecord& a, const SpanRecord& b) {
                     return a.start_ns < b.start_ns;
                   });
  std::ostringstream os;
  os << "{\"traceEvents\":[";
  os << "{\"ph\":\"M\",\"pid\":1,\"tid\":1,\"name\":\"process_name\","
        "\"args\":{\"name\":\"nfactor\"}}";
  for (const auto& r : recs) {
    os << ",{\"ph\":\"X\",\"pid\":1,\"tid\":1,\"name\":\""
       << json_escape(r.name) << "\",\"ts\":" << (static_cast<double>(r.start_ns) / 1e3)
       << ",\"dur\":" << (static_cast<double>(r.dur_ns) / 1e3) << ",\"args\":{";
    os << "\"wall_start_us\":" << r.wall_start_us;
    for (const auto& [k, v] : r.attrs) {
      os << ",\"" << json_escape(k) << "\":\"" << json_escape(v) << "\"";
    }
    os << "}}";
  }
  os << "]}";
  return os.str();
}

std::string Tracer::to_text_tree() const {
  auto recs = spans();
  std::stable_sort(recs.begin(), recs.end(),
                   [](const SpanRecord& a, const SpanRecord& b) {
                     return a.start_ns < b.start_ns;
                   });
  std::ostringstream os;
  for (const auto& r : recs) {
    for (int i = 0; i < r.depth; ++i) os << "  ";
    os << r.name << "  " << (static_cast<double>(r.dur_ns) / 1e6) << "ms";
    for (const auto& [k, v] : r.attrs) os << "  " << k << "=" << v;
    os << "\n";
  }
  return os.str();
}

Tracer& default_tracer() {
  static Tracer t;
  return t;
}

}  // namespace nfactor::obs
