// Synthesis provenance: why does the model say what it says, and where
// did the solver time go? Every ModelEntry is refactored from exactly
// one symbolic-execution path (model::build_model is 1:1 and
// order-preserving), so per-rule provenance is the per-path record —
// branch-decision key, fork sites, executed source lines, solver effort
// (symex::PathProfile) — aggregated against the module's CFG.
//
// Two layers with different stability guarantees:
//  - the *deterministic* core (decision keys, fork sites, source lines,
//    solver query counts) is byte-stable across runs and `--jobs`
//    widths — this is what to_json() exports by default, and what the
//    CI determinism check compares;
//  - the *timing* layer (solver/exec nanoseconds, collected on the SE
//    hot path only when NFACTOR_OBS is compiled in) is wall-clock and
//    varies run to run — it feeds `--explain`'s solver-time attribution
//    and the to_folded() flamegraph export, never the stable JSON.
//
// Aggregation itself (this header's API) is always available, in both
// NFACTOR_OBS configurations: with the kill switch off the timing
// fields are simply zero while lines/keys/fork sites still work.
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "ir/ir.h"
#include "model/model.h"
#include "symex/executor.h"

namespace nfactor::obs {

/// Provenance of one model rule (= one execution path).
struct RuleProvenance {
  int entry = -1;        ///< index into Model::entries
  bool truncated = false;

  // -- deterministic core ---------------------------------------------------
  /// Canonical branch-decision key: flattened (CFG node, taken ? 0 : 1)
  /// pairs, lex-least canonical order (symex::ExecPath::decision_key).
  std::vector<int> decision_key;
  /// CFG nodes where symbolic execution forked both sides (sorted,
  /// deduplicated).
  std::vector<int> fork_sites;
  /// Distinct source lines executed by the path (sorted; line 0 —
  /// synthesized statements — excluded).
  std::vector<int> lines;
  /// `lines` collapsed into closed intervals [lo, hi].
  std::vector<std::pair<int, int>> intervals;
  /// Rendered statements of the path, (line, text), in line order —
  /// for --explain output; not part of the JSON export.
  std::vector<std::pair<int, std::string>> statements;
  /// Short action label ("drop", "send", "2 sends") for listings.
  std::string action;
  /// Solver feasibility checks charged to this path (schedule-stable,
  /// see symex::PathProfile; zero when NFACTOR_OBS is compiled out).
  std::uint64_t solver_queries = 0;

  // -- timing layer (wall clock; never in the stable export) ----------------
  std::uint64_t solver_ns = 0;  ///< solver wall ns charged to this path
  std::uint64_t exec_ns = 0;    ///< SE wall ns of the finalizing continuation
  /// Solver ns per source line (from per-branch-site measurements),
  /// sorted by line.
  std::vector<std::pair<int, std::uint64_t>> line_solver_ns;
};

/// Provenance of a whole synthesized model.
struct ModelProvenance {
  std::string nf;
  std::vector<RuleProvenance> rules;  ///< parallel to Model::entries

  // Run-level denominators (from the slice-SE ExecStats).
  std::uint64_t total_solver_queries = 0;  ///< all checks the run made
  std::uint64_t total_solver_ns = 0;       ///< measured solver wall ns
  std::uint64_t total_exec_ns = 0;         ///< SE wall ns (stats.wall_ms)

  /// Fraction of the run's measured solver time attributed to surviving
  /// rules (in [0, 1]; 1.0 when the run spent no solver time at all —
  /// nothing was left unaccounted). The gap is states that never
  /// finalized: discarded by the path cap, infeasible, or cut by a
  /// timeout.
  double solver_time_accounted() const;

  /// Rules whose `lines` contain `line`.
  std::vector<int> rules_for_line(int line) const;
};

/// Aggregate per-path provenance against the module and model.
/// `paths` must be the exact path vector `model` was built from
/// (model::build_model is 1:1 and order-preserving; sizes must match).
/// `stats` supplies the run-level denominators; may be null.
ModelProvenance build_model_provenance(const ir::Module& module,
                                       const std::vector<symex::ExecPath>& paths,
                                       const model::Model& model,
                                       const symex::ExecStats* stats = nullptr);

/// JSON export. By default only the deterministic core is emitted —
/// byte-stable across runs and --jobs widths (the schema is documented
/// in docs/observability.md). With include_timing, wall-clock fields
/// (solver_ns / exec_ns / line_solver_ns and ns totals) are added; that
/// variant is NOT byte-stable and exists for ad-hoc inspection.
std::string to_json(const ModelProvenance& p, bool include_timing = false);

/// Collapsed-stack ("folded") export for standard flamegraph renderers:
/// one `frame;frame;... weight` line per sample bucket. Frames are
/// `nf;entry N;L<line>` for SE execution self-time and
/// `nf;entry N;L<line>;solver` for solver time attributed to the branch
/// at that line. Weights are nanoseconds; when the build carries no
/// timing (NFACTOR_OBS=OFF) weights fall back to executed-statement
/// counts so the path structure still renders.
std::string to_folded(const ModelProvenance& p);

/// Human-readable rule <-> source cross-reference (the --explain mode).
/// `query` selects the view: "" lists every rule plus the solver-time
/// accounting line; an integer selects one rule's detail (statements,
/// decision key, per-line solver time); "L<n>" or "line:<n>" lists the
/// rules that executed source line n.
std::string explain(const ModelProvenance& p, const std::string& query = "");

}  // namespace nfactor::obs
