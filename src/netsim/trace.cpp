#include "netsim/trace.h"

#include <cstring>
#include <fstream>
#include <stdexcept>

namespace nfactor::netsim {

namespace {

constexpr char kMagic[4] = {'N', 'F', 'T', 'R'};

void put_u32(std::ofstream& out, std::uint32_t v) {
  const std::uint8_t b[4] = {
      static_cast<std::uint8_t>(v >> 24), static_cast<std::uint8_t>(v >> 16),
      static_cast<std::uint8_t>(v >> 8), static_cast<std::uint8_t>(v)};
  out.write(reinterpret_cast<const char*>(b), 4);
}

void put_u16(std::ofstream& out, std::uint16_t v) {
  const std::uint8_t b[2] = {static_cast<std::uint8_t>(v >> 8),
                             static_cast<std::uint8_t>(v)};
  out.write(reinterpret_cast<const char*>(b), 2);
}

std::uint32_t get_u32(std::ifstream& in) {
  std::uint8_t b[4];
  in.read(reinterpret_cast<char*>(b), 4);
  if (!in) throw std::runtime_error("truncated trace file");
  return static_cast<std::uint32_t>(b[0]) << 24 |
         static_cast<std::uint32_t>(b[1]) << 16 |
         static_cast<std::uint32_t>(b[2]) << 8 | b[3];
}

std::uint16_t get_u16(std::ifstream& in) {
  std::uint8_t b[2];
  in.read(reinterpret_cast<char*>(b), 2);
  if (!in) throw std::runtime_error("truncated trace file");
  return static_cast<std::uint16_t>(b[0] << 8 | b[1]);
}

}  // namespace

void write_trace(const std::string& path, std::span<const Packet> packets) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) throw std::runtime_error("cannot open trace file " + path);
  out.write(kMagic, 4);
  put_u32(out, static_cast<std::uint32_t>(packets.size()));
  for (const Packet& p : packets) {
    const auto wire = encode(p);
    put_u16(out, static_cast<std::uint16_t>(p.in_port));
    put_u32(out, static_cast<std::uint32_t>(wire.size()));
    out.write(reinterpret_cast<const char*>(wire.data()),
              static_cast<std::streamsize>(wire.size()));
  }
  if (!out) throw std::runtime_error("short write to trace file " + path);
}

std::vector<Packet> read_trace(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("cannot open trace file " + path);
  char magic[4];
  in.read(magic, 4);
  if (!in || std::memcmp(magic, kMagic, 4) != 0) {
    throw std::runtime_error("not an NFTR trace: " + path);
  }
  const std::uint32_t count = get_u32(in);
  std::vector<Packet> out;
  out.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    const std::uint16_t in_port = get_u16(in);
    const std::uint32_t len = get_u32(in);
    if (len > (1u << 20)) throw std::runtime_error("oversized trace frame");
    std::vector<std::uint8_t> wire(len);
    in.read(reinterpret_cast<char*>(wire.data()),
            static_cast<std::streamsize>(len));
    if (!in) throw std::runtime_error("truncated trace frame");
    auto pkt = decode(wire);
    if (!pkt) {
      throw std::runtime_error("undecodable frame " + std::to_string(i) +
                               " in " + path);
    }
    pkt->in_port = in_port;
    out.push_back(std::move(*pkt));
  }
  return out;
}

}  // namespace nfactor::netsim
