// Flow identification: 4-tuples and 5-tuples with hashing, plus the
// direction-normalised connection key used by the TCP state tracker.
#pragma once

#include <cstdint>
#include <functional>
#include <string>

#include "netsim/packet.h"

namespace nfactor::netsim {

/// (src ip, src port, dst ip, dst port) — the tuple vocabulary of the
/// paper's load-balancer example ("cs_ftpl", "sc_btpl", ...).
struct FourTuple {
  std::uint32_t src_ip = 0;
  std::uint16_t src_port = 0;
  std::uint32_t dst_ip = 0;
  std::uint16_t dst_port = 0;

  auto operator<=>(const FourTuple&) const = default;

  /// The same flow seen from the opposite direction.
  FourTuple reversed() const { return {dst_ip, dst_port, src_ip, src_port}; }
};

/// FourTuple plus protocol.
struct FiveTuple {
  FourTuple addr;
  std::uint8_t proto = static_cast<std::uint8_t>(IpProto::kTcp);

  auto operator<=>(const FiveTuple&) const = default;
  FiveTuple reversed() const { return {addr.reversed(), proto}; }
};

FourTuple four_tuple(const Packet& p);
FiveTuple five_tuple(const Packet& p);

/// Direction-insensitive connection key: the lexicographically smaller of
/// (tuple, reversed tuple), so both directions of a connection map to the
/// same tracker entry.
FiveTuple connection_key(const Packet& p);

std::string to_string(const FourTuple& t);
std::string to_string(const FiveTuple& t);

std::size_t hash_value(const FourTuple& t);
std::size_t hash_value(const FiveTuple& t);

}  // namespace nfactor::netsim

template <>
struct std::hash<nfactor::netsim::FourTuple> {
  std::size_t operator()(const nfactor::netsim::FourTuple& t) const {
    return nfactor::netsim::hash_value(t);
  }
};

template <>
struct std::hash<nfactor::netsim::FiveTuple> {
  std::size_t operator()(const nfactor::netsim::FiveTuple& t) const {
    return nfactor::netsim::hash_value(t);
  }
};
