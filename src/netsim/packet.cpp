#include "netsim/packet.h"

#include <algorithm>
#include <cstdio>
#include <sstream>
#include <stdexcept>

#include "netsim/checksum.h"

namespace nfactor::netsim {

namespace {

constexpr std::size_t kEthLen = 14;
constexpr std::size_t kIpLen = 20;
constexpr std::size_t kTcpLen = 20;
constexpr std::size_t kUdpLen = 8;

void put16(std::vector<std::uint8_t>& b, std::uint16_t v) {
  b.push_back(static_cast<std::uint8_t>(v >> 8));
  b.push_back(static_cast<std::uint8_t>(v));
}

void put32(std::vector<std::uint8_t>& b, std::uint32_t v) {
  put16(b, static_cast<std::uint16_t>(v >> 16));
  put16(b, static_cast<std::uint16_t>(v));
}

std::uint16_t get16(std::span<const std::uint8_t> b, std::size_t i) {
  return static_cast<std::uint16_t>(b[i] << 8 | b[i + 1]);
}

std::uint32_t get32(std::span<const std::uint8_t> b, std::size_t i) {
  return static_cast<std::uint32_t>(get16(b, i)) << 16 | get16(b, i + 2);
}

}  // namespace

std::size_t Packet::ip_total_length() const {
  const std::size_t transport = is_tcp() ? kTcpLen : kUdpLen;
  return kIpLen + transport + payload.size();
}

std::uint32_t ipv4(const std::string& dotted) {
  std::uint32_t parts[4];
  char extra = 0;
  if (std::sscanf(dotted.c_str(), "%u.%u.%u.%u%c", &parts[0], &parts[1],
                  &parts[2], &parts[3], &extra) != 4) {
    throw std::invalid_argument("malformed IPv4 literal: " + dotted);
  }
  std::uint32_t out = 0;
  for (std::uint32_t p : parts) {
    if (p > 255) throw std::invalid_argument("IPv4 octet out of range: " + dotted);
    out = out << 8 | p;
  }
  return out;
}

std::string ipv4_to_string(std::uint32_t addr) {
  char buf[16];
  std::snprintf(buf, sizeof(buf), "%u.%u.%u.%u", addr >> 24 & 0xFF,
                addr >> 16 & 0xFF, addr >> 8 & 0xFF, addr & 0xFF);
  return buf;
}

std::string to_string(const Packet& p) {
  std::ostringstream os;
  os << (p.is_tcp() ? "TCP " : p.is_udp() ? "UDP " : "IP ");
  os << ipv4_to_string(p.ip_src) << ':' << p.sport << " > "
     << ipv4_to_string(p.ip_dst) << ':' << p.dport;
  if (p.is_tcp()) {
    os << " [";
    if (p.has_flag(kSyn)) os << 'S';
    if (p.has_flag(kFin)) os << 'F';
    if (p.has_flag(kRst)) os << 'R';
    if (p.has_flag(kPsh)) os << 'P';
    if (p.has_flag(kAck)) os << 'A';
    os << ']';
  }
  os << " len=" << p.payload.size();
  return os.str();
}

std::vector<std::uint8_t> encode(const Packet& p) {
  std::vector<std::uint8_t> out;
  out.reserve(kEthLen + p.ip_total_length());

  // Ethernet
  out.insert(out.end(), p.eth_dst.begin(), p.eth_dst.end());
  out.insert(out.end(), p.eth_src.begin(), p.eth_src.end());
  put16(out, p.eth_type);

  // IPv4 header (no options)
  const std::size_t ip_off = out.size();
  out.push_back(0x45);  // version 4, IHL 5
  out.push_back(p.ip_tos);
  put16(out, static_cast<std::uint16_t>(p.ip_total_length()));
  put16(out, p.ip_id);
  put16(out, 0);  // flags/fragment offset
  out.push_back(p.ip_ttl);
  out.push_back(p.ip_proto);
  put16(out, 0);  // checksum placeholder
  put32(out, p.ip_src);
  put32(out, p.ip_dst);
  const std::uint16_t ip_sum =
      internet_checksum({out.data() + ip_off, kIpLen});
  out[ip_off + 10] = static_cast<std::uint8_t>(ip_sum >> 8);
  out[ip_off + 11] = static_cast<std::uint8_t>(ip_sum);

  // Transport
  const std::size_t tp_off = out.size();
  if (p.is_tcp()) {
    put16(out, p.sport);
    put16(out, p.dport);
    put32(out, p.tcp_seq);
    put32(out, p.tcp_ack);
    out.push_back(0x50);  // data offset 5
    out.push_back(p.tcp_flags);
    put16(out, p.tcp_win);
    put16(out, 0);  // checksum placeholder
    put16(out, 0);  // urgent pointer
  } else {
    put16(out, p.sport);
    put16(out, p.dport);
    put16(out, static_cast<std::uint16_t>(kUdpLen + p.payload.size()));
    put16(out, 0);  // checksum placeholder
  }
  out.insert(out.end(), p.payload.begin(), p.payload.end());

  const std::uint16_t tp_sum = transport_checksum(
      p.ip_src, p.ip_dst, p.ip_proto, {out.data() + tp_off, out.size() - tp_off});
  const std::size_t sum_off = p.is_tcp() ? tp_off + 16 : tp_off + 6;
  out[sum_off] = static_cast<std::uint8_t>(tp_sum >> 8);
  out[sum_off + 1] = static_cast<std::uint8_t>(tp_sum);
  return out;
}

std::optional<Packet> decode(std::span<const std::uint8_t> wire,
                             bool verify_checksums) {
  if (wire.size() < kEthLen + kIpLen) return std::nullopt;
  Packet p;
  std::copy_n(wire.begin(), 6, p.eth_dst.begin());
  std::copy_n(wire.begin() + 6, 6, p.eth_src.begin());
  p.eth_type = get16(wire, 12);
  if (p.eth_type != 0x0800) return std::nullopt;

  const auto ip = wire.subspan(kEthLen);
  if ((ip[0] >> 4) != 4) return std::nullopt;
  const std::size_t ihl = static_cast<std::size_t>(ip[0] & 0x0F) * 4;
  if (ihl < kIpLen || ip.size() < ihl) return std::nullopt;
  p.ip_tos = ip[1];
  const std::uint16_t total_len = get16(ip, 2);
  if (total_len < ihl || total_len > ip.size()) return std::nullopt;
  p.ip_id = get16(ip, 4);
  p.ip_ttl = ip[8];
  p.ip_proto = ip[9];
  p.ip_src = get32(ip, 12);
  p.ip_dst = get32(ip, 16);
  if (verify_checksums && internet_checksum(ip.subspan(0, ihl)) != 0) {
    return std::nullopt;
  }

  const auto tp = ip.subspan(ihl, total_len - ihl);
  if (p.is_tcp()) {
    if (tp.size() < kTcpLen) return std::nullopt;
    p.sport = get16(tp, 0);
    p.dport = get16(tp, 2);
    p.tcp_seq = get32(tp, 4);
    p.tcp_ack = get32(tp, 8);
    const std::size_t doff = static_cast<std::size_t>(tp[12] >> 4) * 4;
    if (doff < kTcpLen || tp.size() < doff) return std::nullopt;
    p.tcp_flags = tp[13];
    p.tcp_win = get16(tp, 14);
    p.payload.assign(tp.begin() + doff, tp.end());
  } else if (p.is_udp()) {
    if (tp.size() < kUdpLen) return std::nullopt;
    p.sport = get16(tp, 0);
    p.dport = get16(tp, 2);
    const std::uint16_t ulen = get16(tp, 4);
    if (ulen < kUdpLen || ulen > tp.size()) return std::nullopt;
    p.payload.assign(tp.begin() + kUdpLen, tp.begin() + ulen);
  } else {
    return std::nullopt;
  }
  if (verify_checksums && transport_checksum(p.ip_src, p.ip_dst, p.ip_proto, tp) != 0) {
    return std::nullopt;
  }
  return p;
}

}  // namespace nfactor::netsim
