#include "netsim/packet_gen.h"

namespace nfactor::netsim {

namespace {

MacAddr mac_from(std::uint64_t v) {
  MacAddr m;
  for (int i = 0; i < 6; ++i) m[i] = static_cast<std::uint8_t>(v >> (i * 8));
  return m;
}

}  // namespace

Packet PacketGen::base_client_packet() {
  Packet p;
  std::uniform_int_distribution<int> client(1, cfg_.client_count);
  const int c = client(rng_);
  p.ip_src = 0x0A000000u + static_cast<std::uint32_t>(c);  // 10.0.0.c
  p.ip_dst = cfg_.service_ip;
  p.sport = static_cast<std::uint16_t>(
      1024 + std::uniform_int_distribution<int>(0, 4000)(rng_));
  p.dport = cfg_.service_port;
  p.eth_src = mac_from(0xAA0000000000ULL + static_cast<std::uint64_t>(c));
  p.eth_dst = mac_from(0xBB0000000000ULL);
  p.tcp_flags = kAck;
  p.tcp_seq = std::uniform_int_distribution<std::uint32_t>()(rng_);
  const int len = std::uniform_int_distribution<int>(0, cfg_.max_payload)(rng_);
  p.payload.resize(static_cast<std::size_t>(len));
  for (auto& b : p.payload) {
    b = static_cast<std::uint8_t>(std::uniform_int_distribution<int>(0, 255)(rng_));
  }
  return p;
}

Packet PacketGen::next() {
  Packet p = base_client_packet();
  std::uniform_real_distribution<double> coin(0.0, 1.0);

  if (coin(rng_) < cfg_.udp_fraction) {
    p.ip_proto = static_cast<std::uint8_t>(IpProto::kUdp);
    p.tcp_flags = 0;
  }
  if (coin(rng_) < cfg_.background_fraction) {
    // Miss the service address/port so the NF's match fails.
    p.ip_dst = 0x08080808;
    p.dport = static_cast<std::uint16_t>(
        std::uniform_int_distribution<int>(1, 65535)(rng_));
  } else if (coin(rng_) < cfg_.reverse_fraction && !cfg_.server_ips.empty()) {
    // Server -> LB direction packet.
    std::uniform_int_distribution<std::size_t> pick(0, cfg_.server_ips.size() - 1);
    const Packet fwd = p;
    p.ip_src = cfg_.server_ips[pick(rng_)];
    p.sport = 80;
    p.ip_dst = cfg_.service_ip;
    p.dport = static_cast<std::uint16_t>(
        10000 + std::uniform_int_distribution<int>(0, 200)(rng_));
    p.payload = fwd.payload;
  }
  return p;
}

std::vector<Packet> PacketGen::batch(int n) {
  std::vector<Packet> out;
  out.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) out.push_back(next());
  return out;
}

std::vector<Packet> PacketGen::edge_cases() {
  // A fixed template client packet; each edge case perturbs one axis.
  Packet base;
  base.ip_src = 0x0A000001;  // 10.0.0.1
  base.ip_dst = 0x03030303;  // 3.3.3.3
  base.sport = 1024;
  base.dport = 80;
  base.tcp_flags = kAck;
  base.eth_src = mac_from(0xAA0000000001ULL);
  base.eth_dst = mac_from(0xBB0000000000ULL);

  std::vector<Packet> out;
  {
    Packet p = base;  // source port 0
    p.sport = 0;
    out.push_back(p);
  }
  {
    Packet p = base;  // destination port 0
    p.dport = 0;
    out.push_back(p);
  }
  {
    Packet p = base;  // both ports at the top of the range
    p.sport = 65535;
    p.dport = 65535;
    out.push_back(p);
  }
  {
    Packet p = base;  // zero-length payload (pkt.len == 0)
    p.payload.clear();
    out.push_back(p);
  }
  {
    Packet p = base;  // large payload
    p.payload.assign(1400, 0x5A);
    out.push_back(p);
  }
  {
    Packet p = base;  // TTL at the floor routers still forward
    p.ip_ttl = 1;
    out.push_back(p);
  }
  {
    Packet p = base;  // maximum TTL
    p.ip_ttl = 255;
    out.push_back(p);
  }
  {
    Packet p = base;  // every TCP flag at once
    p.tcp_flags = kFin | kSyn | kRst | kPsh | kAck | kUrg;
    out.push_back(p);
  }
  {
    Packet p = base;  // flagless UDP with an edge port
    p.ip_proto = static_cast<std::uint8_t>(IpProto::kUdp);
    p.tcp_flags = 0;
    p.dport = 0;
    out.push_back(p);
  }
  return out;
}

std::vector<Packet> PacketGen::handshake_flow(int data_segments) {
  Packet syn = base_client_packet();
  syn.sport = next_client_port_++;
  syn.payload.clear();
  syn.tcp_flags = kSyn;

  Packet synack = syn;
  std::swap(synack.ip_src, synack.ip_dst);
  std::swap(synack.sport, synack.dport);
  synack.tcp_flags = kSyn | kAck;

  Packet ack = syn;
  ack.tcp_flags = kAck;

  std::vector<Packet> out = {syn, synack, ack};
  for (int i = 0; i < data_segments; ++i) {
    Packet d = (i % 2 == 0) ? ack : synack;
    d.tcp_flags = kAck | kPsh;
    d.payload.assign(16, static_cast<std::uint8_t>(i));
    out.push_back(d);
  }
  return out;
}

}  // namespace nfactor::netsim
