// Deterministic random packet and trace generation. Substitutes for the
// paper's live traffic in the accuracy experiment (§5): 1000 random
// inputs per NF, fed to both the original program and the synthesized
// model.
#pragma once

#include <cstdint>
#include <random>
#include <vector>

#include "netsim/packet.h"

namespace nfactor::netsim {

/// Knobs for the generator. Defaults produce TCP packets between a small
/// client pool and one virtual service address — the regime the corpus
/// NFs (LB, NAT, firewall) are written for — with a configurable fraction
/// of "background" packets that should miss the NF's match conditions.
struct GenConfig {
  std::uint32_t service_ip = 0x03030303;  // 3.3.3.3
  std::uint16_t service_port = 80;
  std::vector<std::uint32_t> server_ips = {0x01010101, 0x02020202};
  int client_count = 8;
  double reverse_fraction = 0.3;     // server->client direction packets
  double background_fraction = 0.1;  // packets not aimed at the service
  double udp_fraction = 0.0;
  int max_payload = 64;
};

class PacketGen {
 public:
  explicit PacketGen(std::uint64_t seed, GenConfig cfg = {})
      : rng_(seed), cfg_(std::move(cfg)) {}

  /// One random packet per the configured mix.
  Packet next();

  /// A batch of `n` packets.
  std::vector<Packet> batch(int n);

  /// A plausible client flow: SYN, SYN-ACK, ACK handshake followed by
  /// `data_segments` data packets alternating directions. Exercises the
  /// stateful NFs end to end.
  std::vector<Packet> handshake_flow(int data_segments);

  /// Deterministic boundary-value packets the random mix only grazes:
  /// ports 0 and 65535, zero-length payload, maximum payload, TTL 1 and
  /// 255, all-flags TCP, flagless UDP. The fuzzing oracle appends these
  /// to every batch; netsim_packet_edge_test pins their semantics in
  /// both interpreters.
  static std::vector<Packet> edge_cases();

 private:
  Packet base_client_packet();
  std::mt19937_64 rng_;
  GenConfig cfg_;
  std::uint16_t next_client_port_ = 20000;
};

}  // namespace nfactor::netsim
