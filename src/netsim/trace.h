// On-disk packet traces: length-prefixed wire-format frames with an
// ingress-port tag ("poor man's pcap"). Lets test traffic round-trip
// through real encoded bytes, the way captured traces would.
#pragma once

#include <span>
#include <string>
#include <vector>

#include "netsim/packet.h"

namespace nfactor::netsim {

/// File layout: magic "NFTR" u32, count u32, then per packet:
/// u16 in_port, u32 wire length, wire bytes (Ethernet frame).
void write_trace(const std::string& path, std::span<const Packet> packets);

/// Read a trace written by write_trace. Throws std::runtime_error on
/// malformed files or frames that fail checksum verification.
std::vector<Packet> read_trace(const std::string& path);

}  // namespace nfactor::netsim
