#include "netsim/tcp_fsm.h"

namespace nfactor::netsim {

std::string to_string(TcpState s) {
  switch (s) {
    case TcpState::kClosed: return "CLOSED";
    case TcpState::kListen: return "LISTEN";
    case TcpState::kSynSent: return "SYN_SENT";
    case TcpState::kSynReceived: return "SYN_RECEIVED";
    case TcpState::kEstablished: return "ESTABLISHED";
    case TcpState::kFinWait1: return "FIN_WAIT_1";
    case TcpState::kFinWait2: return "FIN_WAIT_2";
    case TcpState::kCloseWait: return "CLOSE_WAIT";
    case TcpState::kClosing: return "CLOSING";
    case TcpState::kLastAck: return "LAST_ACK";
    case TcpState::kTimeWait: return "TIME_WAIT";
  }
  return "?";
}

bool TcpConnection::can_pass_data() const {
  switch (state_) {
    case TcpState::kEstablished:
    case TcpState::kFinWait1:
    case TcpState::kFinWait2:
    case TcpState::kCloseWait:
      return true;
    default:
      return false;
  }
}

TcpState TcpConnection::on_segment(Dir dir, std::uint8_t flags) {
  const bool syn = flags & kSyn;
  const bool ack = flags & kAck;
  const bool fin = flags & kFin;
  const bool rst = flags & kRst;

  if (rst) {
    state_ = TcpState::kClosed;
    return state_;
  }

  switch (state_) {
    case TcpState::kClosed:
    case TcpState::kListen:
      if (syn && !ack && dir == Dir::kClientToServer) {
        state_ = TcpState::kSynReceived;
      }
      break;
    case TcpState::kSynSent:
      if (syn && ack && dir == Dir::kServerToClient) {
        state_ = TcpState::kEstablished;
      }
      break;
    case TcpState::kSynReceived:
      if (syn && ack && dir == Dir::kServerToClient) {
        // SYN-ACK observed from the passive side; stay until the final ACK.
        break;
      }
      if (ack && !syn && dir == Dir::kClientToServer) {
        state_ = TcpState::kEstablished;
      }
      break;
    case TcpState::kEstablished:
      if (fin) {
        state_ = dir == Dir::kClientToServer ? TcpState::kFinWait1
                                             : TcpState::kCloseWait;
      }
      break;
    case TcpState::kFinWait1:
      if (fin && dir == Dir::kServerToClient) {
        state_ = ack ? TcpState::kTimeWait : TcpState::kClosing;
      } else if (ack && dir == Dir::kServerToClient) {
        state_ = TcpState::kFinWait2;
      }
      break;
    case TcpState::kFinWait2:
      if (fin && dir == Dir::kServerToClient) state_ = TcpState::kTimeWait;
      break;
    case TcpState::kCloseWait:
      if (fin && dir == Dir::kClientToServer) state_ = TcpState::kLastAck;
      break;
    case TcpState::kClosing:
      if (ack) state_ = TcpState::kTimeWait;
      break;
    case TcpState::kLastAck:
      if (ack && dir == Dir::kServerToClient) state_ = TcpState::kClosed;
      break;
    case TcpState::kTimeWait:
      break;
  }
  return state_;
}

TcpState TcpTracker::on_packet(const Packet& p) {
  if (!p.is_tcp()) return TcpState::kClosed;
  const FiveTuple key = connection_key(p);
  auto [it, inserted] = conns_.try_emplace(key);
  if (inserted) {
    // First segment defines the client direction. A bare SYN is the
    // canonical opener; for anything else we still record the sender as
    // initiator (mid-stream pickup never reaches ESTABLISHED without a
    // proper handshake anyway, which is the drop behaviour we want).
    it->second.initiator = five_tuple(p);
  }
  const Dir dir = five_tuple(p) == it->second.initiator
                      ? Dir::kClientToServer
                      : Dir::kServerToClient;
  return it->second.conn.on_segment(dir, p.tcp_flags);
}

TcpState TcpTracker::state_of(const Packet& p) const {
  const auto it = conns_.find(connection_key(p));
  return it == conns_.end() ? TcpState::kClosed : it->second.conn.state();
}

}  // namespace nfactor::netsim
