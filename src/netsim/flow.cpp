#include "netsim/flow.h"

#include <sstream>

namespace nfactor::netsim {

namespace {

// 64-bit FNV-1a over an integer sequence; good enough for table keys and
// deterministic across platforms (unlike std::hash of primitives).
std::size_t fnv(std::initializer_list<std::uint64_t> xs) {
  std::uint64_t h = 1469598103934665603ULL;
  for (std::uint64_t x : xs) {
    for (int i = 0; i < 8; ++i) {
      h ^= (x >> (i * 8)) & 0xFF;
      h *= 1099511628211ULL;
    }
  }
  return static_cast<std::size_t>(h);
}

}  // namespace

FourTuple four_tuple(const Packet& p) {
  return {p.ip_src, p.sport, p.ip_dst, p.dport};
}

FiveTuple five_tuple(const Packet& p) { return {four_tuple(p), p.ip_proto}; }

FiveTuple connection_key(const Packet& p) {
  FiveTuple f = five_tuple(p);
  FiveTuple r = f.reversed();
  return f < r ? f : r;
}

std::string to_string(const FourTuple& t) {
  std::ostringstream os;
  os << ipv4_to_string(t.src_ip) << ':' << t.src_port << "->"
     << ipv4_to_string(t.dst_ip) << ':' << t.dst_port;
  return os.str();
}

std::string to_string(const FiveTuple& t) {
  return to_string(t.addr) + "/" + std::to_string(t.proto);
}

std::size_t hash_value(const FourTuple& t) {
  return fnv({t.src_ip, t.src_port, t.dst_ip, t.dst_port});
}

std::size_t hash_value(const FiveTuple& t) {
  return fnv({t.addr.src_ip, t.addr.src_port, t.addr.dst_ip, t.addr.dst_port,
              t.proto});
}

}  // namespace nfactor::netsim
