// TCP connection state machine (RFC 793 subset) used for two purposes:
//  1. socket-call unfolding (paper §3.2 "Hidden States"): NFs written
//     against listen()/connect()/recv() hide per-connection state in the
//     OS; the transform module rewrites them into packet-level code that
//     consults this FSM;
//  2. the stateful firewall / balance NFs in the corpus, which track
//     connection establishment before relaying data.
#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>

#include "netsim/flow.h"
#include "netsim/packet.h"

namespace nfactor::netsim {

enum class TcpState : std::uint8_t {
  kClosed,
  kListen,
  kSynSent,
  kSynReceived,
  kEstablished,
  kFinWait1,
  kFinWait2,
  kCloseWait,
  kClosing,
  kLastAck,
  kTimeWait,
};

std::string to_string(TcpState s);

/// Which endpoint of the tracked connection a segment came from.
enum class Dir : std::uint8_t { kClientToServer, kServerToClient };

/// One connection's automaton. `on_segment` applies RFC 793 transitions
/// for the common paths (3-way handshake, data transfer, FIN teardown,
/// RST abort). Returns the state after the transition.
class TcpConnection {
 public:
  explicit TcpConnection(TcpState initial = TcpState::kListen)
      : state_(initial) {}

  TcpState state() const { return state_; }

  /// True when data segments are deliverable (ESTABLISHED or the
  /// half-closed states that still accept data).
  bool can_pass_data() const;

  TcpState on_segment(Dir dir, std::uint8_t tcp_flags);

 private:
  TcpState state_;
};

/// Per-flow connection table keyed by direction-normalised 5-tuple.
/// This is exactly the "hidden state" the paper says lives in the OS:
/// the tracker decides whether a data packet belongs to an established
/// connection (pass) or not (drop).
class TcpTracker {
 public:
  /// Feeds a packet through the tracked connection, creating the entry on
  /// first sight. `client_initiated` decides segment direction by
  /// comparing against the stored initiator tuple. Returns the state
  /// after the transition.
  TcpState on_packet(const Packet& p);

  /// State for the packet's connection, or kClosed when untracked.
  TcpState state_of(const Packet& p) const;

  bool established(const Packet& p) const {
    return state_of(p) == TcpState::kEstablished;
  }

  std::size_t size() const { return conns_.size(); }
  void clear() { conns_.clear(); }

 private:
  struct Entry {
    TcpConnection conn{TcpState::kListen};
    FiveTuple initiator;  // tuple as seen from the connection's client
  };
  std::unordered_map<FiveTuple, Entry> conns_;
};

}  // namespace nfactor::netsim
