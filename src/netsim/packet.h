// Packet substrate: concrete packet representation used to exercise both
// the original NF programs (via the DSL runtime) and the synthesized
// NFactor models (via the model interpreter).
//
// The representation is a parsed header view (Ethernet / IPv4 / TCP|UDP)
// plus an opaque payload. Wire-format encode/decode with real byte order
// and checksums lives in codec functions so traces can round-trip through
// a byte buffer, as they would on a NIC.
#pragma once

#include <array>
#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <vector>

namespace nfactor::netsim {

/// TCP flag bits (RFC 793 order within the flags octet).
enum TcpFlag : std::uint8_t {
  kFin = 0x01,
  kSyn = 0x02,
  kRst = 0x04,
  kPsh = 0x08,
  kAck = 0x10,
  kUrg = 0x20,
};

/// IANA protocol numbers used by the substrate.
enum class IpProto : std::uint8_t {
  kIcmp = 1,
  kTcp = 6,
  kUdp = 17,
};

using MacAddr = std::array<std::uint8_t, 6>;

/// A parsed packet. Field names deliberately mirror the DSL's packet
/// field accessors (pkt.ip_src, pkt.tcp_dport, ...) so the runtime and
/// the analyses share one vocabulary.
struct Packet {
  MacAddr eth_src{};
  MacAddr eth_dst{};
  std::uint16_t eth_type = 0x0800;  // IPv4 by default

  std::uint32_t ip_src = 0;
  std::uint32_t ip_dst = 0;
  std::uint8_t ip_proto = static_cast<std::uint8_t>(IpProto::kTcp);
  std::uint8_t ip_ttl = 64;
  std::uint16_t ip_id = 0;
  std::uint8_t ip_tos = 0;

  // Transport. For TCP packets the udp_* view is unused and vice versa;
  // sport/dport are shared so the DSL sees one pair of port fields.
  std::uint16_t sport = 0;
  std::uint16_t dport = 0;
  std::uint32_t tcp_seq = 0;
  std::uint32_t tcp_ack = 0;
  std::uint8_t tcp_flags = 0;
  std::uint16_t tcp_win = 65535;

  std::vector<std::uint8_t> payload;

  /// Ingress port index assigned by the harness (not a wire field).
  int in_port = 0;

  bool is_tcp() const { return ip_proto == static_cast<std::uint8_t>(IpProto::kTcp); }
  bool is_udp() const { return ip_proto == static_cast<std::uint8_t>(IpProto::kUdp); }
  bool has_flag(TcpFlag f) const { return (tcp_flags & f) != 0; }

  /// Total length of the IPv4 datagram (header + transport + payload).
  std::size_t ip_total_length() const;

  bool operator==(const Packet&) const = default;
};

/// Dotted-quad helpers. `ipv4` accepts "a.b.c.d"; throws std::invalid_argument
/// on malformed input.
std::uint32_t ipv4(const std::string& dotted);
std::string ipv4_to_string(std::uint32_t addr);

/// Human-readable one-line rendering, e.g.
/// "TCP 10.0.0.1:1234 > 3.3.3.3:80 [S] len=0".
std::string to_string(const Packet& p);

/// Wire codec. Encode always recomputes IPv4 and TCP/UDP checksums.
std::vector<std::uint8_t> encode(const Packet& p);

/// Decode a wire buffer. Returns std::nullopt when the buffer is truncated,
/// not IPv4, or not TCP/UDP. Checksums are verified when `verify_checksums`.
std::optional<Packet> decode(std::span<const std::uint8_t> wire,
                             bool verify_checksums = true);

}  // namespace nfactor::netsim
