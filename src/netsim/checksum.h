// Internet checksum (RFC 1071) and the TCP/UDP pseudo-header variant.
#pragma once

#include <cstdint>
#include <span>

namespace nfactor::netsim {

/// One's-complement sum over `data`, folded to 16 bits and complemented.
/// An odd trailing byte is padded with zero, per RFC 1071.
std::uint16_t internet_checksum(std::span<const std::uint8_t> data);

/// TCP/UDP checksum over the IPv4 pseudo-header plus the transport segment.
/// `segment` must already contain a zeroed checksum field.
std::uint16_t transport_checksum(std::uint32_t ip_src, std::uint32_t ip_dst,
                                 std::uint8_t proto,
                                 std::span<const std::uint8_t> segment);

}  // namespace nfactor::netsim
