#include "netsim/checksum.h"

#include <vector>

namespace nfactor::netsim {

namespace {

std::uint32_t ones_sum(std::span<const std::uint8_t> data, std::uint32_t acc) {
  std::size_t i = 0;
  for (; i + 1 < data.size(); i += 2) {
    acc += static_cast<std::uint32_t>(data[i]) << 8 | data[i + 1];
  }
  if (i < data.size()) acc += static_cast<std::uint32_t>(data[i]) << 8;
  return acc;
}

std::uint16_t fold(std::uint32_t acc) {
  while (acc >> 16) acc = (acc & 0xFFFF) + (acc >> 16);
  return static_cast<std::uint16_t>(~acc & 0xFFFF);
}

}  // namespace

std::uint16_t internet_checksum(std::span<const std::uint8_t> data) {
  return fold(ones_sum(data, 0));
}

std::uint16_t transport_checksum(std::uint32_t ip_src, std::uint32_t ip_dst,
                                 std::uint8_t proto,
                                 std::span<const std::uint8_t> segment) {
  const auto len = static_cast<std::uint32_t>(segment.size());
  const std::uint8_t pseudo[12] = {
      static_cast<std::uint8_t>(ip_src >> 24),
      static_cast<std::uint8_t>(ip_src >> 16),
      static_cast<std::uint8_t>(ip_src >> 8),
      static_cast<std::uint8_t>(ip_src),
      static_cast<std::uint8_t>(ip_dst >> 24),
      static_cast<std::uint8_t>(ip_dst >> 16),
      static_cast<std::uint8_t>(ip_dst >> 8),
      static_cast<std::uint8_t>(ip_dst),
      0,
      proto,
      static_cast<std::uint8_t>(len >> 8),
      static_cast<std::uint8_t>(len),
  };
  std::uint32_t acc = ones_sum(pseudo, 0);
  return fold(ones_sum(segment, acc));
}

}  // namespace nfactor::netsim
