// NFactor end-to-end pipeline (paper §2.4, Algorithm 1):
//   1. normalize the code structure (§3.2) and lower to the per-packet CFG;
//   2. packet-processing slice: backward slices from every send();
//   3. StateAlyzer variable categorization on the packet slice;
//   4. state-transition slice: backward slices from every oisVar update;
//   5. symbolic execution of the union slice -> execution paths;
//   6. refactor each path into a model table entry.
// Also (optionally) runs symbolic execution on the original, unsliced
// program to produce the Table-2 comparison columns.
#pragma once

#include <memory>
#include <set>
#include <string>
#include <string_view>
#include <vector>

#include "analysis/pdg.h"
#include "ir/ir.h"
#include "lang/ast.h"
#include "lint/simplify.h"
#include "model/model.h"
#include "obs/provenance.h"
#include "statealyzer/statealyzer.h"
#include "symex/executor.h"

namespace nfactor::pipeline {

struct PipelineOptions {
  bool normalize_structure = true;  // apply §3.2 transforms first
  /// Opt-in IR simplification between lowering and slicing (disabled by
  /// default so library behavior is unchanged; nfactor_cli turns it on
  /// with fold_config and offers --no-simplify).
  lint::SimplifyOptions simplify;
  symex::ExecOptions se_slice;      // symbolic execution on the slice
  symex::ExecOptions se_orig;       // symbolic execution on the original
  bool run_orig_se = false;         // Table 2's "orig" columns
  /// Worker threads for both SE runs: 0 leaves se_slice/se_orig alone
  /// (their own `jobs` fields apply), > 0 overrides both. Any value
  /// yields byte-identical models (see symex::ExecOptions::jobs).
  int jobs = 0;
};

/// Per-stage wall times. A *view* over the pipeline's obs spans: each
/// field is exactly the duration of the correspondingly named span
/// (`pipeline.lower`, `pipeline.slice`, `pipeline.se_slice`,
/// `pipeline.model`, `pipeline.se_orig`, `pipeline.run`) recorded in
/// `obs::default_tracer()` — no separate chrono bookkeeping.
struct StageTimes {
  double lower_ms = 0;
  double simplify_ms = 0;     // 0 unless PipelineOptions.simplify.enabled
  double slicing_ms = 0;      // PDG + packet & state slices (paper: "Slicing Time")
  double se_slice_ms = 0;
  double model_ms = 0;        // path -> model-entry refactoring
  double se_orig_ms = 0;
  double total_ms = 0;
};

struct PipelineResult {
  std::unique_ptr<ir::Module> module;  // stable address: pdg refers into it
  std::unique_ptr<analysis::Pdg> pdg;
  statealyzer::Result cats;

  std::set<int> pkt_slice;
  std::set<int> state_slice;
  std::set<int> union_slice;

  std::vector<symex::ExecPath> slice_paths;
  symex::ExecStats slice_stats;
  std::vector<symex::ExecPath> orig_paths;
  symex::ExecStats orig_stats;

  model::Model model;
  /// Per-rule provenance (source lines, decision keys, solver effort),
  /// built from slice_paths right after the model stage. The
  /// deterministic core is populated in every build; timing fields are
  /// nonzero only when NFACTOR_OBS is compiled in.
  obs::ModelProvenance provenance;
  lint::SimplifyStats simplify_stats;  // all-zero unless simplify ran
  StageTimes times;

  // Table-2 metrics (source-line counts).
  int loc_orig = 0;
  int loc_slice = 0;
  int loc_path = 0;  // largest single execution path within the slice

  /// True when either symbolic-execution run degraded its result: hit
  /// the path cap, timed out, or truncated paths (loop bound / step
  /// budget). A degraded run means the model may be missing entries —
  /// callers should surface this, not silently present a partial model.
  bool degraded() const {
    return se_degraded(slice_stats) || se_degraded(orig_stats);
  }
  static bool se_degraded(const symex::ExecStats& s) {
    return s.hit_path_cap || s.timed_out || s.paths_truncated > 0;
  }
};

PipelineResult run(const lang::Program& prog, const PipelineOptions& opts = {});

/// Parse + run.
PipelineResult run_source(std::string_view source, std::string unit_name,
                          const PipelineOptions& opts = {});

}  // namespace nfactor::pipeline
