#include "nfactor/pipeline.h"

#include "ir/lower.h"
#include "lang/parser.h"
#include "obs/obs.h"
#include "symex/intern.h"
#include "transform/normalize.h"

namespace nfactor::pipeline {

namespace {

std::string base_of(const ir::Location& loc) {
  std::string base;
  return ir::split_field_loc(loc, &base, nullptr) ? base : loc;
}

}  // namespace

PipelineResult run(const lang::Program& prog, const PipelineOptions& opts) {
  // Stage timing *is* span duration: every StageTimes field below is
  // filled from Span::close_ms() of the stage's span, so the recorded
  // trace and the reported times cannot drift apart.
  obs::Tracer& tracer = obs::default_tracer();
  obs::Span total(tracer, "pipeline.run");
  total.attr("nf", prog.unit_name);
  PipelineResult r;

  // ---- Stage 0: structure normalization + lowering ----------------------
  {
    obs::Span sp(tracer, "pipeline.lower");
    lang::Program canon = opts.normalize_structure ? transform::normalize(prog)
                                                   : prog.clone();
    r.module = std::make_unique<ir::Module>(ir::lower(std::move(canon)));
    sp.attr("cfg_nodes", static_cast<std::int64_t>(r.module->body.size()));
    r.times.lower_ms = sp.close_ms();
  }

  // ---- Optional: IR simplification (constant folding + dead-arm
  //      pruning) ahead of slicing and symbolic execution --------------
  if (opts.simplify.enabled) {
    obs::Span sp(tracer, "pipeline.simplify");
    r.simplify_stats = lint::simplify_module(*r.module, opts.simplify);
    sp.attr("branches_pruned",
            static_cast<std::int64_t>(r.simplify_stats.branches_pruned));
    sp.attr("exprs_folded",
            static_cast<std::int64_t>(r.simplify_stats.exprs_folded));
    r.times.simplify_ms = sp.close_ms();
  }

  // ---- Stage 1+2: dependence graph, packet slice, categorization,
  //                 state slice (Algorithm 1, lines 1-9) -------------------
  {
    obs::Span sp(tracer, "pipeline.slice");
    r.pdg = std::make_unique<analysis::Pdg>(r.module->body);
    r.cats = statealyzer::analyze(*r.module, *r.pdg);
    r.pkt_slice = r.cats.pkt_slice;

    std::set<int> ois_updates;
    for (const auto& n : r.module->body.nodes) {
      for (const auto& d : n->defs()) {
        if (r.cats.is_ois(base_of(d))) {
          ois_updates.insert(n->id);
          break;
        }
      }
    }
    r.state_slice = r.pdg->backward_slice(ois_updates);

    r.union_slice = r.pkt_slice;
    r.union_slice.insert(r.state_slice.begin(), r.state_slice.end());
    // The loop-head recv anchors every per-packet path.
    if (r.module->recv_port_node >= 0) {
      r.union_slice.insert(r.module->recv_port_node);
    }
    OBS_GAUGE("slice.pkt_nodes", r.pkt_slice.size());
    OBS_GAUGE("slice.state_nodes", r.state_slice.size());
    OBS_GAUGE("slice.union_nodes", r.union_slice.size());
    sp.attr("pkt_nodes", static_cast<std::int64_t>(r.pkt_slice.size()));
    sp.attr("state_nodes", static_cast<std::int64_t>(r.state_slice.size()));
    sp.attr("union_nodes", static_cast<std::int64_t>(r.union_slice.size()));
    r.times.slicing_ms = sp.close_ms();
  }

  // ---- Stage 3: symbolic execution of the slice (line 10) ---------------
  symex::SymbolicExecutor se(*r.module, r.cats);
  // One verdict memo for the whole pipeline: the orig-SE run replays most
  // of the slice run's branch conditions, so sharing the cache across the
  // two runs is where the big hit rates come from.
  symex::SolverCache solver_cache;
  {
    obs::Span sp(tracer, "pipeline.se_slice");
    symex::ExecOptions slice_opts = opts.se_slice;
    slice_opts.filter = &r.union_slice;
    if (opts.jobs > 0) slice_opts.jobs = opts.jobs;
    if (slice_opts.solver_cache == nullptr) {
      slice_opts.solver_cache = &solver_cache;
    }
    r.slice_paths = se.run(slice_opts, &r.slice_stats);
    sp.attr("paths", static_cast<std::int64_t>(r.slice_paths.size()));
    r.times.se_slice_ms = sp.close_ms();
  }

  // ---- Stage 4: refactor paths into the model (lines 11-16) -------------
  {
    obs::Span sp(tracer, "pipeline.model");
    r.model = model::build_model(r.module->name, r.slice_paths, r.cats);
    sp.attr("entries", static_cast<std::int64_t>(r.model.entries.size()));
    r.times.model_ms = sp.close_ms();
  }

  // Provenance aggregation rides on data the stages above already
  // computed (paths, model, CFG) — pure bookkeeping, no solver work.
  r.provenance = obs::build_model_provenance(*r.module, r.slice_paths, r.model,
                                             &r.slice_stats);

  // ---- Optional: SE on the original program (Table 2 baseline) ----------
  if (opts.run_orig_se) {
    obs::Span sp(tracer, "pipeline.se_orig");
    symex::ExecOptions orig_opts = opts.se_orig;
    if (opts.jobs > 0) orig_opts.jobs = opts.jobs;
    if (orig_opts.solver_cache == nullptr) {
      orig_opts.solver_cache = &solver_cache;
    }
    r.orig_paths = se.run(orig_opts, &r.orig_stats);
    sp.attr("paths", static_cast<std::int64_t>(r.orig_paths.size()));
    r.times.se_orig_ms = sp.close_ms();
  }

  // ---- Metrics -----------------------------------------------------------
  r.loc_orig = r.module->body.source_lines();
  r.loc_slice = r.module->body.source_lines(r.union_slice);
  for (const auto& p : r.slice_paths) {
    if (p.truncated) continue;
    r.loc_path = std::max(r.loc_path, r.module->body.source_lines(p.nodes));
  }
  OBS_GAUGE("pipeline.loc_orig", r.loc_orig);
  OBS_GAUGE("pipeline.loc_slice", r.loc_slice);
  OBS_GAUGE("pipeline.loc_path", r.loc_path);

  {
    const auto cs = solver_cache.stats();
    OBS_GAUGE("pipeline.solver_cache.entries", solver_cache.size());
    const std::uint64_t lookups = cs.hits + cs.misses;
    if (lookups > 0) {
      OBS_GAUGE("pipeline.solver_cache.hit_rate",
                static_cast<double>(cs.hits) / static_cast<double>(lookups));
    }
  }

  r.times.total_ms = total.close_ms();

  // Mirror the interner counters accumulated by this run (deltas since
  // the last publish) into the registry — the intern hot path itself
  // never touches the registry mutex.
  symex::publish_intern_metrics();

  // Mirror the stage times into the registry so --metrics-out / bench
  // metric dumps carry the per-stage breakdown without the trace.
  OBS_GAUGE("pipeline.lower_ms", r.times.lower_ms);
  OBS_GAUGE("pipeline.simplify_ms", r.times.simplify_ms);
  OBS_GAUGE("pipeline.slicing_ms", r.times.slicing_ms);
  OBS_GAUGE("pipeline.se_slice_ms", r.times.se_slice_ms);
  OBS_GAUGE("pipeline.model_ms", r.times.model_ms);
  OBS_GAUGE("pipeline.se_orig_ms", r.times.se_orig_ms);
  OBS_GAUGE("pipeline.total_ms", r.times.total_ms);
  return r;
}

PipelineResult run_source(std::string_view source, std::string unit_name,
                          const PipelineOptions& opts) {
  return run(lang::parse(source, std::move(unit_name)), opts);
}

}  // namespace nfactor::pipeline
