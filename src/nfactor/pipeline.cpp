#include "nfactor/pipeline.h"

#include <chrono>

#include "ir/lower.h"
#include "lang/parser.h"
#include "transform/normalize.h"

namespace nfactor::pipeline {

namespace {

double ms_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - t0)
      .count();
}

std::string base_of(const ir::Location& loc) {
  std::string base;
  return ir::split_field_loc(loc, &base, nullptr) ? base : loc;
}

}  // namespace

PipelineResult run(const lang::Program& prog, const PipelineOptions& opts) {
  const auto t_total = std::chrono::steady_clock::now();
  PipelineResult r;

  // ---- Stage 0: structure normalization + lowering ----------------------
  auto t0 = std::chrono::steady_clock::now();
  lang::Program canon = opts.normalize_structure ? transform::normalize(prog)
                                                 : prog.clone();
  r.module = std::make_unique<ir::Module>(ir::lower(std::move(canon)));
  r.times.lower_ms = ms_since(t0);

  // ---- Stage 1+2: dependence graph, packet slice, categorization,
  //                 state slice (Algorithm 1, lines 1-9) -------------------
  t0 = std::chrono::steady_clock::now();
  r.pdg = std::make_unique<analysis::Pdg>(r.module->body);
  r.cats = statealyzer::analyze(*r.module, *r.pdg);
  r.pkt_slice = r.cats.pkt_slice;

  std::set<int> ois_updates;
  for (const auto& n : r.module->body.nodes) {
    for (const auto& d : n->defs()) {
      if (r.cats.is_ois(base_of(d))) {
        ois_updates.insert(n->id);
        break;
      }
    }
  }
  r.state_slice = r.pdg->backward_slice(ois_updates);

  r.union_slice = r.pkt_slice;
  r.union_slice.insert(r.state_slice.begin(), r.state_slice.end());
  // The loop-head recv anchors every per-packet path.
  if (r.module->recv_port_node >= 0) {
    r.union_slice.insert(r.module->recv_port_node);
  }
  r.times.slicing_ms = ms_since(t0);

  // ---- Stage 3: symbolic execution of the slice (line 10) ---------------
  t0 = std::chrono::steady_clock::now();
  symex::SymbolicExecutor se(*r.module, r.cats);
  symex::ExecOptions slice_opts = opts.se_slice;
  slice_opts.filter = &r.union_slice;
  r.slice_paths = se.run(slice_opts, &r.slice_stats);
  r.times.se_slice_ms = ms_since(t0);

  // ---- Stage 4: refactor paths into the model (lines 11-16) -------------
  r.model = model::build_model(r.module->name, r.slice_paths, r.cats);

  // ---- Optional: SE on the original program (Table 2 baseline) ----------
  if (opts.run_orig_se) {
    t0 = std::chrono::steady_clock::now();
    r.orig_paths = se.run(opts.se_orig, &r.orig_stats);
    r.times.se_orig_ms = ms_since(t0);
  }

  // ---- Metrics -----------------------------------------------------------
  r.loc_orig = r.module->body.source_lines();
  r.loc_slice = r.module->body.source_lines(r.union_slice);
  for (const auto& p : r.slice_paths) {
    if (p.truncated) continue;
    r.loc_path = std::max(r.loc_path, r.module->body.source_lines(p.nodes));
  }

  r.times.total_ms = ms_since(t_total);
  return r;
}

PipelineResult run_source(std::string_view source, std::string unit_name,
                          const PipelineOptions& opts) {
  return run(lang::parse(source, std::move(unit_name)), opts);
}

}  // namespace nfactor::pipeline
