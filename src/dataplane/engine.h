// Dataplane engine (docs/dataplane.md): compiles a synthesized NFactor
// model into a flat, cache-friendly decision structure and executes it
// over packet *batches* — the third execution backend beside the DSL
// runtime and the per-packet model interpreter, and the substrate the
// throughput numbers in bench_dataplane come from.
//
// Lowering passes, in order:
//   1. config specialization — concrete config values are substituted
//      into every provably throw-free predicate/action expression, so
//      "pkt.dport == WATCH_PORT" becomes "pkt.dport == 80";
//   2. FDD construction (dataplane/fdd.h) — the ordered rule list
//      becomes a reduced, complement-unified, hash-consed decision DAG;
//   3. predicate/action compilation — expressions made of packet-field
//      reads, constants, arithmetic and payload literals are lowered to
//      tiny stack programs evaluated without the symbolic-expression
//      walker or any allocation (everything else keeps a generic slot
//      that falls back to symex::eval_concrete);
//   4. flattening — the DAG becomes one contiguous node array walked
//      iteratively per packet, leaves become compiled action blocks.
//
// Equivalence with model::ModelInterpreter is exact — including its
// treatment of throwing predicates (the entry fails, others survive) —
// and is enforced continuously by tests/dataplane_test.cpp, the golden
// dumps, and the fuzz oracle's compiled leg.
#pragma once

#include <array>
#include <bit>
#include <cstdint>
#include <cstring>
#include <map>

#if defined(__SSE2__)
#include <emmintrin.h>
#endif
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "dataplane/fdd.h"
#include "model/interp.h"
#include "model/model.h"
#include "netsim/packet.h"
#include "runtime/value.h"
#include "symex/concrete_eval.h"
#include "symex/expr.h"

namespace nfactor::dataplane {

/// Packet header fields addressable by compiled programs — one enum
/// value per DSL field name, resolved at compile time so the batch loop
/// never does string comparisons.
enum class PacketField : std::uint8_t {
  kEthSrc, kEthDst, kEthType,
  kIpSrc, kIpDst, kIpProto, kIpTtl, kIpId, kIpTos,
  kSport, kDport,
  kTcpFlags, kTcpSeq, kTcpAck, kTcpWin,
  kLen, kInPort,
};

std::optional<PacketField> packet_field_from_name(std::string_view name);
runtime::Int read_packet_field(const netsim::Packet& p, PacketField f);

/// Stack-machine opcodes for compiled (total, throw-free) expressions.
/// Value semantics mirror symex::eval_concrete exactly: booleans live on
/// the stack as 0/1, comparisons yield 0/1, logical ops test nonzero.
enum class OpCode : std::uint8_t {
  kPushConst,  ///< imm -> stack
  kPushField,  ///< read_packet_field(pkt, imm) -> stack
  kEq, kNe, kLt, kLe, kGt, kGe,
  kAdd, kSub, kMul,
  kDiv, kMod,  ///< emitted only with a constant nonzero divisor
  kBitAnd, kBitOr, kBitXor, kShl, kShr,
  kAnd, kOr, kNot, kNeg,
  kPayloadContains,  ///< needles[imm] found in pkt.payload -> 0/1
};

struct Op {
  OpCode code = OpCode::kPushConst;
  runtime::Int imm = 0;
};

/// A compiled payload literal. Short needles are found with a memchr hop
/// (memchr on the first byte, memcmp to confirm); needles of at least
/// kBmhMinNeedle bytes additionally precompute a Boyer–Moore–Horspool
/// skip table and scan *adaptively*: start on the memchr hop (unbeatable
/// when the first byte is rare — one vectorized sweep), and switch to
/// BMH striding the moment candidate density proves high. The crossover
/// is measured by bench_dataplane's payload-scan microbench (gauge
/// dataplane.payload_scan.ns_per_kb).
struct Needle {
  std::string text;
  std::array<std::uint8_t, 256> skip{};  ///< BMH shift table (long needles)
  bool use_bmh = false;
};

/// Needles shorter than this never engage BMH: its per-probe cost only
/// amortizes once the stride (needle length) is long enough to skip
/// whole words per probe; below it even a degenerate memchr hop wins.
inline constexpr std::size_t kBmhMinNeedle = 8;

/// Failed first-byte candidates the adaptive scan tolerates on the
/// memchr hop before concluding the haystack is candidate-dense and
/// switching to BMH. Sparse haystacks (random payload bytes: first-byte
/// density ~1/256) stay under the budget and keep pure-memchr speed;
/// dense ones pay at most this many wasted confirms, then stride.
inline constexpr std::size_t kScanSwitchCandidates = 16;

Needle make_needle(std::string text);

// Scan primitives, exposed for the payload-scan microbench. The engine
// itself always goes through payload_contains, which runs the memchr
// hop for short needles and scan_adaptive for use_bmh needles. Defined
// inline here so every execution tier — the table walk in engine.cpp
// and the threaded code in threaded.cpp — gets them inlined into its
// hot loop instead of paying a cross-TU call per scan.

/// Substring scan tuned for packet payloads: memchr (SIMD) hops between
/// first-byte candidates, memcmp confirms. glibc memmem's preprocessing
/// costs more than an entire 32-byte haystack; this is ~4x faster on
/// the generator's traffic mix. Same result as eval_concrete's
/// std::search.
inline bool scan_memchr_hop(std::span<const std::uint8_t> hay,
                            std::string_view needle) {
  const std::size_t nn = needle.size();
  if (nn == 0) return true;
  if (nn > hay.size()) return false;
  const std::uint8_t* p = hay.data();
  const std::uint8_t* const end = p + hay.size() - nn + 1;
  while (p < end) {
    p = static_cast<const std::uint8_t*>(
        std::memchr(p, needle[0], static_cast<std::size_t>(end - p)));
    if (p == nullptr) return false;
    if (std::memcmp(p + 1, needle.data() + 1, nn - 1) == 0) return true;
    ++p;
  }
  return false;
}

/// Boyer–Moore–Horspool: probe the byte aligned with the needle's end
/// and stride by its skip-table shift. For needles >= kBmhMinNeedle the
/// average stride approaches the needle length, beating memchr's
/// byte-at-a-time candidate scan (bench_dataplane's payload-scan
/// section measures the crossover).
inline bool scan_bmh(std::span<const std::uint8_t> hay, const Needle& n) {
  const std::size_t nn = n.text.size();
  if (nn == 0) return true;
  if (nn > hay.size()) return false;
  const auto* needle = reinterpret_cast<const std::uint8_t*>(n.text.data());
  const std::uint8_t last = needle[nn - 1];
  std::size_t pos = 0;
  const std::size_t limit = hay.size() - nn;
  while (pos <= limit) {
    const std::uint8_t probe = hay[pos + nn - 1];
    if (probe == last && std::memcmp(hay.data() + pos, needle, nn - 1) == 0) {
      return true;
    }
    pos += n.skip[probe];
  }
  return false;
}

/// Adaptive scan for long needles: run the memchr hop while first-byte
/// candidates are sparse (the common case on random payload bytes,
/// where one vectorized sweep finds nothing), and hand the remaining
/// haystack to BMH once kScanSwitchCandidates confirms have failed —
/// candidate-dense haystacks (payloads sharing the needle's alphabet)
/// degrade the hop to a byte-at-a-time memcmp crawl, while BMH's cost
/// stays bounded at ~haystack/needle_len probes regardless of density.
inline bool scan_adaptive(std::span<const std::uint8_t> hay, const Needle& n) {
  const std::string_view needle = n.text;
  const std::size_t nn = needle.size();
  if (nn == 0) return true;
  if (nn > hay.size()) return false;
  const std::uint8_t* const base = hay.data();
  const std::uint8_t* p = base;
  const std::uint8_t* const end = p + hay.size() - nn + 1;
  std::size_t budget = kScanSwitchCandidates;
  while (p < end) {
    p = static_cast<const std::uint8_t*>(
        std::memchr(p, needle[0], static_cast<std::size_t>(end - p)));
    if (p == nullptr) return false;
    if (std::memcmp(p + 1, needle.data() + 1, nn - 1) == 0) return true;
    ++p;
    if (--budget == 0) {
      return scan_bmh(hay.subspan(static_cast<std::size_t>(p - base)), n);
    }
  }
  return false;
}

inline bool payload_contains(const std::vector<std::uint8_t>& hay,
                             const Needle& n) {
  return n.use_bmh ? scan_adaptive({hay.data(), hay.size()}, n)
                   : scan_memchr_hop({hay.data(), hay.size()}, n.text);
}

/// Disjunction scan: payload_contains(a) || payload_contains(b) behind
/// one call — the kContainsOr superinstruction's body. The common
/// length prologue runs once; then SSE2 builds a candidate mask for
/// *both* needles' first bytes per 16-byte chunk in a single pass and
/// memcmp-confirms the rare hits. On corpus-sized payloads (<= 64 B of
/// near-random bytes) that pass is pure compute over one or two
/// L1-resident chunks, versus two memchr library calls' worth of setup
/// for the sweep pair — the scan cost itself, not memory latency, is
/// what the vectored executor leaves on the profile. Non-x86 builds
/// keep the two-sweep form.
inline bool payload_contains_either(const std::vector<std::uint8_t>& hay,
                                    const Needle& a, const Needle& b) {
  const std::size_t n = hay.size();
  const std::size_t la = a.text.size();
  const std::size_t lb = b.text.size();
  if (la == 0 || lb == 0) return true;  // empty needle: contains == true
  if (la > n && lb > n) return false;
  if (la > n) return payload_contains(hay, b);
  if (lb > n) return payload_contains(hay, a);
#if defined(__SSE2__)
  const std::uint8_t* const p = hay.data();
  const std::uint8_t f0 = static_cast<std::uint8_t>(a.text[0]);
  const std::uint8_t f1 = static_cast<std::uint8_t>(b.text[0]);
  // Candidate starts exist up to n - min(la, lb); positions past that
  // fail the confirm's bounds checks naturally, so chunk masks never
  // need a span cutoff.
  const std::size_t span = n - std::min(la, lb) + 1;
  const auto confirm = [&](std::size_t pos) {
    const std::uint8_t c = p[pos];
    if (c == f0 && pos + la <= n &&
        std::memcmp(p + pos + 1, a.text.data() + 1, la - 1) == 0) {
      return true;
    }
    return c == f1 && pos + lb <= n &&
           std::memcmp(p + pos + 1, b.text.data() + 1, lb - 1) == 0;
  };
  if (n < 16) {
    for (std::size_t pos = 0; pos < span; ++pos) {
      if ((p[pos] == f0 || p[pos] == f1) && confirm(pos)) return true;
    }
    return false;
  }
  const __m128i va = _mm_set1_epi8(static_cast<char>(f0));
  const __m128i vb = _mm_set1_epi8(static_cast<char>(f1));
  const auto chunk_hits = [&](const std::uint8_t* q) {
    const __m128i w = _mm_loadu_si128(reinterpret_cast<const __m128i*>(q));
    return static_cast<unsigned>(_mm_movemask_epi8(
        _mm_or_si128(_mm_cmpeq_epi8(w, va), _mm_cmpeq_epi8(w, vb))));
  };
  std::size_t i = 0;
  for (; i + 16 <= n && i < span; i += 16) {
    unsigned hits = chunk_hits(p + i);
    while (hits != 0) {
      if (confirm(i + static_cast<std::size_t>(std::countr_zero(hits)))) {
        return true;
      }
      hits &= hits - 1;
    }
  }
  if (i < span) {
    // Tail: re-load the last 16 bytes (overlapped — never reads past
    // the allocation) and drop the low bits already scanned above.
    const std::size_t j = n - 16;
    unsigned hits = chunk_hits(p + j) >> (i - j);
    while (hits != 0) {
      if (confirm(i + static_cast<std::size_t>(std::countr_zero(hits)))) {
        return true;
      }
      hits &= hits - 1;
    }
  }
  return false;
#else
  return payload_contains(hay, a) || payload_contains(hay, b);
#endif
}

/// A compiled expression; empty ops == "not compilable", evaluate the
/// retained SymRef generically instead.
struct Program {
  std::vector<Op> ops;
  bool compiled() const { return !ops.empty(); }
};

/// Superinstruction form of a predicate. The generic stack machine pays
/// one indirect-branch dispatch per opcode, and on mixed traffic those
/// dispatches mispredict badly — the walk costs more than the packet
/// logic itself. Synthesized models overwhelmingly test one of four
/// shapes, so the compiler peephole-fuses those into a single record the
/// match loop evaluates inline with at most two well-predicted branches.
struct FusedPred {
  enum class Kind : std::uint8_t {
    kNone,       ///< not fused — run prog / fall back to eval_concrete
    kCmp,        ///< cmp1(field f1, const k1)
    kCmp2,       ///< cmp1(f1,k1) op cmp2(f2,k2), op per `disjunction`
    kContains,   ///< payload contains needles[k1]
    kContains2,  ///< contains(needles[k1]) op contains(needles[k2])
  };
  Kind kind = Kind::kNone;
  OpCode cmp1 = OpCode::kEq;  ///< comparison op (kEq..kGe)
  OpCode cmp2 = OpCode::kEq;
  PacketField f1{}, f2{};
  runtime::Int k1 = 0, k2 = 0;  ///< constants (kCmp*) or needle indices
  bool disjunction = false;     ///< two-term forms: true = ||, false = &&
};

struct CompiledPred {
  symex::SymRef expr;  ///< specialized expression (rendering + fallback)
  Program prog;
  FusedPred fused;  ///< peephole-fused form of prog (fuse() in engine.cpp)
};

struct CompiledWrite {
  std::string field;  ///< DSL field name
  symex::SymRef expr;
  Program prog;
};

struct CompiledSend {
  std::vector<CompiledWrite> writes;  ///< sorted by field name
  symex::SymRef port_expr;
  Program port_prog;
  bool const_port = false;      ///< port_prog is a single constant push
  runtime::Int port_const = 0;  ///< that constant, read without dispatch
};

struct CompiledUpdate {
  std::string var;
  symex::SymRef expr;
  Program prog;  ///< compiled only for integer-typed right-hand sides
  /// In-place map-set fast path: set when expr is
  /// MapStore(MapBase(var), key, val) — the "install one flow entry"
  /// shape every stateful corpus NF uses. eval_concrete's copy-on-store
  /// semantics rebuild the whole map per packet (O(flow count)); the
  /// engine instead evaluates key/val and writes one slot of its own
  /// (deep-copied) map. Falls back to the generic expr whenever the
  /// variable does not currently hold a map, which is exactly the case
  /// where materialize_map starts from empty.
  bool map_set = false;
  symex::SymRef key_expr;
  symex::SymRef val_expr;
  Program val_prog;  ///< compiled when val is integer-typed and total
};

struct CompiledLeaf {
  int entry = -1;  ///< model entry index; -1 = default drop
  std::vector<CompiledSend> sends;
  std::vector<CompiledUpdate> updates;
};

/// Flat decision node. Edge encoding: >= 0 -> next node index,
/// < 0 -> leaf index ~edge (i.e. -edge - 1).
struct FlatNode {
  std::int32_t pred = 0;
  std::int32_t on_true = 0;
  std::int32_t on_false = 0;
  std::int32_t on_except = 0;
};

struct CompiledTable {
  std::string nf_name;
  std::vector<CompiledPred> preds;
  std::vector<Needle> needles;  ///< payload_contains literals, precompiled
  std::vector<FlatNode> nodes;
  std::vector<CompiledLeaf> leaves;  ///< leaves[0] is always default drop
  std::int32_t root = -1;            ///< edge encoding (may point at a leaf)
  FddStats stats;
  std::size_t compiled_preds = 0;  ///< preds with a stack program
  /// True when every predicate is fused and every leaf is a pure
  /// forward/drop (no writes, no state updates, constant ports). Such
  /// tables run execute_batch's streamlined loop: no environment setup,
  /// no fallback branches, just fused tests and constant-port emits.
  bool pure_filter = false;

  /// Deterministic text rendering — the golden-dump format
  /// (tests/golden/dataplane/). Byte-identical at any --jobs width.
  std::string to_text() const;
};

struct CompileOptions {
  /// Concrete initial values (model::initial_store). Config scalars and
  /// lists found here are substituted into throw-free expressions before
  /// predicate compilation; state variables are never substituted.
  const std::map<std::string, runtime::Value>* bindings = nullptr;
  FddOptions fdd;
};

/// Lower a synthesized model into its compiled form. Deterministic in
/// the model (and bindings); throws std::runtime_error on FDD budget
/// exhaustion.
CompiledTable compile(const model::Model& m, const CompileOptions& opts = {});

/// Output of a batch run. Reuse one instance across batches: clear() is
/// logical — Send slots (and their payload buffers) stay constructed and
/// are overwritten in place on the next run, so a steady-state batch
/// loop does no per-send allocation at all.
struct BatchOutput {
  struct Send {
    int port = 0;
    std::int32_t src = 0;  ///< index of the input packet that produced it
    /// The sent packet. Sends that forward the input unmodified borrow
    /// it (zero-copy) — such views stay valid while the input batch is
    /// alive and until the engine's next execute_batch on this output;
    /// sends with header rewrites own their bytes.
    const netsim::Packet& packet() const {
      return view_ != nullptr ? *view_ : owned_;
    }

   private:
    friend class DataplaneEngine;
    const netsim::Packet* view_ = nullptr;
    netsim::Packet owned_;
  };
  std::vector<std::int32_t> matched;  ///< per input packet: entry or -1

  std::span<const Send> sends() const { return {pool_.data(), used_}; }
  void clear() {
    matched.clear();
    used_ = 0;
  }

 private:
  friend class DataplaneEngine;
  /// Next slot to fill; the caller bumps used_ once the slot is valid.
  Send& next_slot() {
    if (used_ == pool_.size()) pool_.emplace_back();
    return pool_[used_];
  }
  std::vector<Send> pool_;
  std::size_t used_ = 0;
};

/// Execution tier. Tier 1 walks the FlatNode array with a generic match
/// loop; tier 2 (threaded.h) lowers the same array into threaded code —
/// one direct-threaded op per node with pre-resolved branch targets,
/// dispatched by computed goto where the compiler supports it. Both
/// tiers share every piece of leaf-application machinery, so their
/// outputs are identical by construction and by test.
enum class Tier : std::uint8_t {
  kTableWalk = 1,
  kThreaded = 2,
};

struct EngineOptions {
  Tier tier = Tier::kTableWalk;
};

struct ThreadedCode;  // dataplane/threaded.h

/// Executes a compiled table over concrete packets, maintaining the
/// oisVar state exactly like model::ModelInterpreter. The table must
/// outlive the engine.
class DataplaneEngine {
 public:
  DataplaneEngine(const CompiledTable& table,
                  std::map<std::string, runtime::Value> store,
                  EngineOptions opts = {});
  ~DataplaneEngine();
  DataplaneEngine(DataplaneEngine&&) = delete;
  DataplaneEngine& operator=(DataplaneEngine&&) = delete;

  /// Batch loop: every packet in order, appending to `out`.
  void execute_batch(std::span<const netsim::Packet> packets,
                     BatchOutput& out);

  /// Batch loop over a subset of `packets` selected by `idx`, in idx
  /// order. Send::src and `out.matched` positions refer to the *idx
  /// positions* (matched[j] is the verdict for packets[idx[j]], and
  /// sends carry src = idx[j], the global packet index) — this is the
  /// zero-copy substrate ShardedDataplane partitions batches with.
  void execute_indexed(std::span<const netsim::Packet> packets,
                       std::span<const std::int32_t> idx, BatchOutput& out);

  /// Single-packet convenience with ModelInterpreter-shaped output (the
  /// differential legs compare these directly).
  model::ModelOutput process(const netsim::Packet& in);

  const runtime::Value* state(const std::string& name) const;
  void set_state(const std::string& name, runtime::Value v);
  Tier tier() const { return threaded_ ? Tier::kThreaded : Tier::kTableWalk; }
  const std::map<std::string, runtime::Value>& store() const { return store_; }

 private:
  friend struct ThreadedCode;
  const CompiledLeaf& match(const netsim::Packet& in);
  template <typename Emit>
  void apply_leaf(const CompiledLeaf& leaf, const netsim::Packet& in,
                  Emit&& emit);
  /// Non-template leaf application for out-of-TU callers (threaded.cpp):
  /// same semantics as apply_leaf with the batch/process emit bodies.
  void apply_leaf_batch(const CompiledLeaf& leaf, const netsim::Packet& in,
                        std::int32_t src, BatchOutput& out);
  void apply_writes(netsim::Packet& p, const CompiledSend& s,
                    const netsim::Packet& in);
  runtime::Int eval_port(const CompiledSend& s, const netsim::Packet& in);
  runtime::Int run_program(const Program& prog, const netsim::Packet& in) const;
  template <typename IdxFn>
  void batch_table(std::span<const netsim::Packet> packets, std::size_t count,
                   IdxFn idx, BatchOutput& out);
  /// Tier-2 entry points, defined in threaded.cpp. run_threaded executes
  /// the threaded program for one packet and returns the pc of the
  /// terminal op it halted on (always a leaf terminal).
  std::int32_t run_threaded(const netsim::Packet& in);
  template <typename IdxFn>
  void batch_threaded(std::span<const netsim::Packet> packets,
                      std::size_t count, IdxFn idx, BatchOutput& out);
  /// Vectored batch executor (threaded.cpp): sweeps the op graph in
  /// topological order, each op draining a queue of packet indices.
  /// Taken by batch_threaded for large generic-free batches.
  template <typename IdxFn>
  void batch_vectored(std::span<const netsim::Packet> packets,
                      std::size_t count, IdxFn idx, BatchOutput& out);
  template <typename IdxFn>
  void batch_vectored_block(std::span<const netsim::Packet> packets,
                            std::size_t b0, std::size_t b1, IdxFn idx,
                            BatchOutput& out);
  void execute_batch_threaded(std::span<const netsim::Packet> packets,
                              BatchOutput& out);
  void execute_indexed_threaded(std::span<const netsim::Packet> packets,
                                std::span<const std::int32_t> idx,
                                BatchOutput& out);

  const CompiledTable& table_;
  std::map<std::string, runtime::Value> store_;
  const netsim::Packet* cur_ = nullptr;  ///< packet the env closures read
  symex::ConcreteEnv env_;               ///< built once, reused per packet
  std::unique_ptr<ThreadedCode> threaded_;  ///< non-null iff tier 2
  /// batch_vectored scratch, reused across batches: one packet-index
  /// queue per threaded op, plus the per-packet terminal pc. Engine
  /// state like store_ — never shared across threads.
  std::vector<std::vector<std::int32_t>> vec_q_;
  std::vector<std::int32_t> vec_term_;
};

}  // namespace nfactor::dataplane
