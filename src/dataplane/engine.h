// Dataplane engine (docs/dataplane.md): compiles a synthesized NFactor
// model into a flat, cache-friendly decision structure and executes it
// over packet *batches* — the third execution backend beside the DSL
// runtime and the per-packet model interpreter, and the substrate the
// throughput numbers in bench_dataplane come from.
//
// Lowering passes, in order:
//   1. config specialization — concrete config values are substituted
//      into every provably throw-free predicate/action expression, so
//      "pkt.dport == WATCH_PORT" becomes "pkt.dport == 80";
//   2. FDD construction (dataplane/fdd.h) — the ordered rule list
//      becomes a reduced, complement-unified, hash-consed decision DAG;
//   3. predicate/action compilation — expressions made of packet-field
//      reads, constants, arithmetic and payload literals are lowered to
//      tiny stack programs evaluated without the symbolic-expression
//      walker or any allocation (everything else keeps a generic slot
//      that falls back to symex::eval_concrete);
//   4. flattening — the DAG becomes one contiguous node array walked
//      iteratively per packet, leaves become compiled action blocks.
//
// Equivalence with model::ModelInterpreter is exact — including its
// treatment of throwing predicates (the entry fails, others survive) —
// and is enforced continuously by tests/dataplane_test.cpp, the golden
// dumps, and the fuzz oracle's compiled leg.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "dataplane/fdd.h"
#include "model/interp.h"
#include "model/model.h"
#include "netsim/packet.h"
#include "runtime/value.h"
#include "symex/concrete_eval.h"
#include "symex/expr.h"

namespace nfactor::dataplane {

/// Packet header fields addressable by compiled programs — one enum
/// value per DSL field name, resolved at compile time so the batch loop
/// never does string comparisons.
enum class PacketField : std::uint8_t {
  kEthSrc, kEthDst, kEthType,
  kIpSrc, kIpDst, kIpProto, kIpTtl, kIpId, kIpTos,
  kSport, kDport,
  kTcpFlags, kTcpSeq, kTcpAck, kTcpWin,
  kLen, kInPort,
};

std::optional<PacketField> packet_field_from_name(std::string_view name);
runtime::Int read_packet_field(const netsim::Packet& p, PacketField f);

/// Stack-machine opcodes for compiled (total, throw-free) expressions.
/// Value semantics mirror symex::eval_concrete exactly: booleans live on
/// the stack as 0/1, comparisons yield 0/1, logical ops test nonzero.
enum class OpCode : std::uint8_t {
  kPushConst,  ///< imm -> stack
  kPushField,  ///< read_packet_field(pkt, imm) -> stack
  kEq, kNe, kLt, kLe, kGt, kGe,
  kAdd, kSub, kMul,
  kDiv, kMod,  ///< emitted only with a constant nonzero divisor
  kBitAnd, kBitOr, kBitXor, kShl, kShr,
  kAnd, kOr, kNot, kNeg,
  kPayloadContains,  ///< needles[imm] found in pkt.payload -> 0/1
};

struct Op {
  OpCode code = OpCode::kPushConst;
  runtime::Int imm = 0;
};

/// A compiled expression; empty ops == "not compilable", evaluate the
/// retained SymRef generically instead.
struct Program {
  std::vector<Op> ops;
  bool compiled() const { return !ops.empty(); }
};

/// Superinstruction form of a predicate. The generic stack machine pays
/// one indirect-branch dispatch per opcode, and on mixed traffic those
/// dispatches mispredict badly — the walk costs more than the packet
/// logic itself. Synthesized models overwhelmingly test one of four
/// shapes, so the compiler peephole-fuses those into a single record the
/// match loop evaluates inline with at most two well-predicted branches.
struct FusedPred {
  enum class Kind : std::uint8_t {
    kNone,       ///< not fused — run prog / fall back to eval_concrete
    kCmp,        ///< cmp1(field f1, const k1)
    kCmp2,       ///< cmp1(f1,k1) op cmp2(f2,k2), op per `disjunction`
    kContains,   ///< payload contains needles[k1]
    kContains2,  ///< contains(needles[k1]) op contains(needles[k2])
  };
  Kind kind = Kind::kNone;
  OpCode cmp1 = OpCode::kEq;  ///< comparison op (kEq..kGe)
  OpCode cmp2 = OpCode::kEq;
  PacketField f1{}, f2{};
  runtime::Int k1 = 0, k2 = 0;  ///< constants (kCmp*) or needle indices
  bool disjunction = false;     ///< two-term forms: true = ||, false = &&
};

struct CompiledPred {
  symex::SymRef expr;  ///< specialized expression (rendering + fallback)
  Program prog;
  FusedPred fused;  ///< peephole-fused form of prog (fuse() in engine.cpp)
};

struct CompiledWrite {
  std::string field;  ///< DSL field name
  symex::SymRef expr;
  Program prog;
};

struct CompiledSend {
  std::vector<CompiledWrite> writes;  ///< sorted by field name
  symex::SymRef port_expr;
  Program port_prog;
  bool const_port = false;      ///< port_prog is a single constant push
  runtime::Int port_const = 0;  ///< that constant, read without dispatch
};

struct CompiledUpdate {
  std::string var;
  symex::SymRef expr;
  Program prog;  ///< compiled only for integer-typed right-hand sides
  /// In-place map-set fast path: set when expr is
  /// MapStore(MapBase(var), key, val) — the "install one flow entry"
  /// shape every stateful corpus NF uses. eval_concrete's copy-on-store
  /// semantics rebuild the whole map per packet (O(flow count)); the
  /// engine instead evaluates key/val and writes one slot of its own
  /// (deep-copied) map. Falls back to the generic expr whenever the
  /// variable does not currently hold a map, which is exactly the case
  /// where materialize_map starts from empty.
  bool map_set = false;
  symex::SymRef key_expr;
  symex::SymRef val_expr;
  Program val_prog;  ///< compiled when val is integer-typed and total
};

struct CompiledLeaf {
  int entry = -1;  ///< model entry index; -1 = default drop
  std::vector<CompiledSend> sends;
  std::vector<CompiledUpdate> updates;
};

/// Flat decision node. Edge encoding: >= 0 -> next node index,
/// < 0 -> leaf index ~edge (i.e. -edge - 1).
struct FlatNode {
  std::int32_t pred = 0;
  std::int32_t on_true = 0;
  std::int32_t on_false = 0;
  std::int32_t on_except = 0;
};

struct CompiledTable {
  std::string nf_name;
  std::vector<CompiledPred> preds;
  std::vector<std::string> needles;  ///< payload_contains literals
  std::vector<FlatNode> nodes;
  std::vector<CompiledLeaf> leaves;  ///< leaves[0] is always default drop
  std::int32_t root = -1;            ///< edge encoding (may point at a leaf)
  FddStats stats;
  std::size_t compiled_preds = 0;  ///< preds with a stack program
  /// True when every predicate is fused and every leaf is a pure
  /// forward/drop (no writes, no state updates, constant ports). Such
  /// tables run execute_batch's streamlined loop: no environment setup,
  /// no fallback branches, just fused tests and constant-port emits.
  bool pure_filter = false;

  /// Deterministic text rendering — the golden-dump format
  /// (tests/golden/dataplane/). Byte-identical at any --jobs width.
  std::string to_text() const;
};

struct CompileOptions {
  /// Concrete initial values (model::initial_store). Config scalars and
  /// lists found here are substituted into throw-free expressions before
  /// predicate compilation; state variables are never substituted.
  const std::map<std::string, runtime::Value>* bindings = nullptr;
  FddOptions fdd;
};

/// Lower a synthesized model into its compiled form. Deterministic in
/// the model (and bindings); throws std::runtime_error on FDD budget
/// exhaustion.
CompiledTable compile(const model::Model& m, const CompileOptions& opts = {});

/// Output of a batch run. Reuse one instance across batches: clear() is
/// logical — Send slots (and their payload buffers) stay constructed and
/// are overwritten in place on the next run, so a steady-state batch
/// loop does no per-send allocation at all.
struct BatchOutput {
  struct Send {
    int port = 0;
    std::int32_t src = 0;  ///< index of the input packet that produced it
    /// The sent packet. Sends that forward the input unmodified borrow
    /// it (zero-copy) — such views stay valid while the input batch is
    /// alive and until the engine's next execute_batch on this output;
    /// sends with header rewrites own their bytes.
    const netsim::Packet& packet() const {
      return view_ != nullptr ? *view_ : owned_;
    }

   private:
    friend class DataplaneEngine;
    const netsim::Packet* view_ = nullptr;
    netsim::Packet owned_;
  };
  std::vector<std::int32_t> matched;  ///< per input packet: entry or -1

  std::span<const Send> sends() const { return {pool_.data(), used_}; }
  void clear() {
    matched.clear();
    used_ = 0;
  }

 private:
  friend class DataplaneEngine;
  /// Next slot to fill; the caller bumps used_ once the slot is valid.
  Send& next_slot() {
    if (used_ == pool_.size()) pool_.emplace_back();
    return pool_[used_];
  }
  std::vector<Send> pool_;
  std::size_t used_ = 0;
};

/// Executes a compiled table over concrete packets, maintaining the
/// oisVar state exactly like model::ModelInterpreter. The table must
/// outlive the engine.
class DataplaneEngine {
 public:
  DataplaneEngine(const CompiledTable& table,
                  std::map<std::string, runtime::Value> store);

  /// Batch loop: every packet in order, appending to `out`.
  void execute_batch(std::span<const netsim::Packet> packets,
                     BatchOutput& out);

  /// Single-packet convenience with ModelInterpreter-shaped output (the
  /// differential legs compare these directly).
  model::ModelOutput process(const netsim::Packet& in);

  const runtime::Value* state(const std::string& name) const;
  void set_state(const std::string& name, runtime::Value v);

 private:
  const CompiledLeaf& match(const netsim::Packet& in);
  template <typename Emit>
  void apply_leaf(const CompiledLeaf& leaf, const netsim::Packet& in,
                  Emit&& emit);
  void apply_writes(netsim::Packet& p, const CompiledSend& s,
                    const netsim::Packet& in);
  runtime::Int eval_port(const CompiledSend& s, const netsim::Packet& in);
  runtime::Int run_program(const Program& prog, const netsim::Packet& in) const;

  const CompiledTable& table_;
  std::map<std::string, runtime::Value> store_;
  const netsim::Packet* cur_ = nullptr;  ///< packet the env closures read
  symex::ConcreteEnv env_;               ///< built once, reused per packet
};

}  // namespace nfactor::dataplane
