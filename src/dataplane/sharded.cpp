#include "dataplane/sharded.h"

#include <condition_variable>
#include <mutex>
#include <thread>
#include <utility>

#include "obs/obs.h"

namespace nfactor::dataplane {

namespace {

inline std::uint64_t splitmix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

}  // namespace

std::uint64_t flow_hash(const netsim::Packet& p) {
  // Canonicalize endpoint order so both directions of a connection mix
  // the same words (firewall.nf matches replies on the reversed tuple).
  std::uint64_t a =
      (static_cast<std::uint64_t>(p.ip_src) << 16) | p.sport;
  std::uint64_t b =
      (static_cast<std::uint64_t>(p.ip_dst) << 16) | p.dport;
  if (a > b) std::swap(a, b);
  std::uint64_t h = splitmix64(a);
  h = splitmix64(h ^ b);
  return splitmix64(h ^ p.ip_proto);
}

/// Epoch-counted batch barrier. Workers sleep on cv_ until the epoch
/// advances, run their shard, then signal done_cv_. One mutex guards
/// the counters only — shard execution itself runs lock-free on
/// disjoint engines and output slots.
struct ShardedDataplane::Pool {
  std::vector<std::thread> workers;
  std::mutex mu;
  std::condition_variable cv;
  std::condition_variable done_cv;
  std::uint64_t epoch = 0;
  int remaining = 0;
  bool stop = false;
};

ShardedDataplane::ShardedDataplane(
    const CompiledTable& table,
    const std::map<std::string, runtime::Value>& store, ShardOptions opts)
    : initial_(store) {
  const int n = opts.shards < 1 ? 1 : opts.shards;
  engines_.reserve(static_cast<std::size_t>(n));
  for (int s = 0; s < n; ++s) {
    // Each engine deep-copies the store on construction, so replicas
    // never alias each other's containers.
    engines_.push_back(
        std::make_unique<DataplaneEngine>(table, store, opts.engine));
  }
  shard_idx_.resize(static_cast<std::size_t>(n));
  if (n > 1) {
    pool_ = std::make_unique<Pool>();
    pool_->workers.reserve(static_cast<std::size_t>(n));
    for (int s = 0; s < n; ++s) {
      pool_->workers.emplace_back([this, s] { worker_loop(s); });
    }
  }
}

ShardedDataplane::~ShardedDataplane() {
  if (pool_ != nullptr) {
    {
      const std::lock_guard<std::mutex> lk(pool_->mu);
      pool_->stop = true;
    }
    pool_->cv.notify_all();
    for (std::thread& t : pool_->workers) t.join();
  }
}

void ShardedDataplane::run_shard(int s) {
  engines_[static_cast<std::size_t>(s)]->execute_indexed(
      cur_packets_, shard_idx_[static_cast<std::size_t>(s)],
      cur_out_->per_shard_[static_cast<std::size_t>(s)]);
}

void ShardedDataplane::worker_loop(int s) {
  std::uint64_t seen = 0;
  while (true) {
    {
      std::unique_lock<std::mutex> lk(pool_->mu);
      pool_->cv.wait(lk, [&] { return pool_->stop || pool_->epoch != seen; });
      if (pool_->stop) return;
      seen = pool_->epoch;
    }
    run_shard(s);
    {
      const std::lock_guard<std::mutex> lk(pool_->mu);
      --pool_->remaining;
    }
    pool_->done_cv.notify_one();
  }
}

void ShardedDataplane::execute_batch(std::span<const netsim::Packet> packets,
                                     ShardedOutput& out) {
  const int n = shards();
  const std::size_t np = packets.size();
  out.matched.assign(np, 0);
  out.shard_of.resize(np);
  out.per_shard_.resize(static_cast<std::size_t>(n));
  for (BatchOutput& b : out.per_shard_) b.clear();
  for (auto& v : shard_idx_) v.clear();
  for (std::size_t i = 0; i < np; ++i) {
    const int s = shard_of(packets[i]);
    out.shard_of[i] = s;
    shard_idx_[static_cast<std::size_t>(s)].push_back(
        static_cast<std::int32_t>(i));
  }
  cur_packets_ = packets;
  cur_out_ = &out;
  if (pool_ == nullptr) {
    run_shard(0);
  } else {
    {
      const std::lock_guard<std::mutex> lk(pool_->mu);
      ++pool_->epoch;
      pool_->remaining = n;
    }
    pool_->cv.notify_all();
    std::unique_lock<std::mutex> lk(pool_->mu);
    pool_->done_cv.wait(lk, [&] { return pool_->remaining == 0; });
  }
  // Scatter verdicts back to input order. Sends stay per shard.
  for (int s = 0; s < n; ++s) {
    const auto& idx = shard_idx_[static_cast<std::size_t>(s)];
    const auto& matched = out.per_shard_[static_cast<std::size_t>(s)].matched;
    for (std::size_t j = 0; j < idx.size(); ++j) {
      out.matched[static_cast<std::size_t>(idx[j])] = matched[j];
    }
  }
  OBS_COUNT_N("dataplane.sharded.packets", np);
}

std::map<std::string, runtime::Value> ShardedDataplane::merge_state() const {
  std::map<std::string, runtime::Value> merged = initial_;
  for (auto& [name, v] : merged) {
    if (v.is_int()) {
      // Additive-counter merge: initial + sum of per-shard deltas.
      runtime::Int acc = v.as_int();
      for (const auto& e : engines_) {
        const runtime::Value* sv = e->state(name);
        if (sv != nullptr && sv->is_int()) acc += sv->as_int() - v.as_int();
      }
      v = runtime::Value(acc);
      continue;
    }
    if (v.is_map()) {
      // Union in ascending shard order; colliding keys keep the highest
      // shard's value (disjoint by construction for flow-keyed maps).
      auto m = std::make_shared<runtime::MapV>();
      for (const auto& e : engines_) {
        const runtime::Value* sv = e->state(name);
        if (sv == nullptr || !sv->is_map()) continue;
        for (const auto& [k, mv] : sv->as_map().items) {
          m->items.insert_or_assign(k, mv);
        }
      }
      v = runtime::Value(std::move(m));
      continue;
    }
    // Everything else: shard 0's view wins.
    if (const runtime::Value* sv = engines_.front()->state(name)) v = *sv;
  }
  return merged;
}

std::vector<const runtime::Value*> ShardedDataplane::snapshot(
    const std::string& var) const {
  std::vector<const runtime::Value*> out;
  out.reserve(engines_.size());
  for (const auto& e : engines_) out.push_back(e->state(var));
  return out;
}

}  // namespace nfactor::dataplane
