#include "dataplane/fdd.h"

#include <algorithm>
#include <limits>
#include <map>
#include <set>
#include <stdexcept>
#include <unordered_map>

#include "obs/obs.h"

namespace nfactor::dataplane {

namespace {

/// One rule's requirement on one test: the atom index and the polarity
/// the canonical expression must evaluate to. Sorted by atom.
struct Req {
  std::int32_t atom = 0;
  bool want = true;
};

struct RuleReqs {
  int entry = 0;
  std::vector<Req> reqs;
};

/// First requirement of `r` at or after `level`; npos when none remain.
constexpr std::int32_t kNoReq = std::numeric_limits<std::int32_t>::max();

std::int32_t first_req_at(const RuleReqs& r, std::int32_t level) {
  const auto it = std::lower_bound(
      r.reqs.begin(), r.reqs.end(), level,
      [](const Req& q, std::int32_t lv) { return q.atom < lv; });
  return it == r.reqs.end() ? kNoReq : it->atom;
}

/// Requirement polarity of `r` on `atom`: 1 = must be true, 0 = must be
/// false, -1 = unconstrained.
int polarity_on(const RuleReqs& r, std::int32_t atom) {
  const auto it = std::lower_bound(
      r.reqs.begin(), r.reqs.end(), atom,
      [](const Req& q, std::int32_t lv) { return q.atom < lv; });
  if (it == r.reqs.end() || it->atom != atom) return -1;
  return it->want ? 1 : 0;
}

struct Builder {
  const FddOptions& opts;
  Fdd out;
  std::vector<RuleReqs> rules;

  /// (test atom, candidate list) -> built ref. Candidates determine the
  /// whole continuation, so this both avoids rebuilding shared suffixes
  /// and is where most structural sharing comes from.
  std::map<std::pair<std::int32_t, std::vector<int>>, FddRef> memo;

  /// Structural hash-cons of finished nodes.
  std::map<std::array<std::int32_t, 4>, FddRef> cons;

  FddRef intern(std::int32_t atom, FddRef t, FddRef f, FddRef ex) {
    const std::array<std::int32_t, 4> key{atom, t, f, ex};
    if (const auto it = cons.find(key); it != cons.end()) {
      ++out.stats.cons_hits;
      return it->second;
    }
    if (out.nodes.size() >= opts.max_nodes) {
      throw std::runtime_error("dataplane: FDD node budget exceeded (" +
                               std::to_string(opts.max_nodes) + " nodes)");
    }
    out.nodes.push_back(FddNode{atom, t, f, ex});
    const auto ref = static_cast<FddRef>(out.nodes.size() - 1);
    cons.emplace(key, ref);
    return ref;
  }

  FddRef build(std::int32_t level, const std::vector<int>& cands) {
    if (cands.empty()) return leaf_ref(-1);
    // First match wins: once the highest-priority candidate has no
    // requirement left to test, no later test can unseat it.
    if (first_req_at(rules[static_cast<std::size_t>(cands[0])], level) ==
        kNoReq) {
      return leaf_ref(rules[static_cast<std::size_t>(cands[0])].entry);
    }
    // Skip every test no remaining candidate mentions ("reduced": the
    // DAG holds no node whose outcome cannot depend on the answer).
    std::int32_t next = kNoReq;
    for (const int c : cands) {
      next = std::min(next,
                      first_req_at(rules[static_cast<std::size_t>(c)], level));
    }
    const auto key = std::make_pair(next, cands);
    if (const auto it = memo.find(key); it != memo.end()) {
      ++out.stats.memo_hits;
      return it->second;
    }

    std::vector<int> t_cands, f_cands, e_cands;
    for (const int c : cands) {
      const int pol = polarity_on(rules[static_cast<std::size_t>(c)], next);
      if (pol != 0) t_cands.push_back(c);
      if (pol != 1) f_cands.push_back(c);
      if (pol == -1) e_cands.push_back(c);
    }
    const FddRef rt = build(next + 1, t_cands);
    const FddRef rf = build(next + 1, f_cands);
    const FddRef re = build(next + 1, e_cands);
    const FddRef ref =
        (rt == rf && rf == re) ? rt : intern(next, rt, rf, re);
    memo.emplace(key, ref);
    return ref;
  }
};

}  // namespace

Fdd build_fdd(std::span<const FddRule> rules, const FddOptions& opts) {
  OBS_SPAN("dataplane.fdd");
  Builder b{opts, Fdd{}, {}, {}, {}};

  // Atom unification: each distinct constraint (by structural
  // fingerprint) becomes a test, and a constraint whose negation is
  // already a test reuses that test with inverted polarity — `negate`
  // builds through the interner, so `c` and `!c` meet by fingerprint
  // whichever order they appear in. Atom ids double as the variable
  // order (first appearance over the rule list).
  struct Slot {
    std::int32_t atom;
    bool want;
  };
  std::unordered_map<std::uint64_t, Slot> by_fp;
  for (const FddRule& r : rules) {
    RuleReqs reqs;
    reqs.entry = r.entry;
    bool infeasible = false;
    for (const symex::SymRef& c : r.atoms) {
      auto it = by_fp.find(c->fp);
      if (it == by_fp.end()) {
        const auto id = static_cast<std::int32_t>(b.out.atoms.size());
        b.out.atoms.push_back(c);
        by_fp.emplace(c->fp, Slot{id, true});
        const symex::SymRef neg = symex::negate(c);
        if (by_fp.emplace(neg->fp, Slot{id, false}).second) {
          ++b.out.stats.complement_pairs;
        }
        it = by_fp.find(c->fp);
      }
      const Slot slot = it->second;
      const int prior = polarity_on(reqs, slot.atom);
      if (prior == -1) {
        reqs.reqs.push_back(Req{slot.atom, slot.want});
        std::sort(reqs.reqs.begin(), reqs.reqs.end(),
                  [](const Req& a, const Req& x) { return a.atom < x.atom; });
      } else if (prior != (slot.want ? 1 : 0)) {
        // c and !c in one conjunction: the rule can never match (the
        // interpreter would evaluate both and fail one of them).
        infeasible = true;
        break;
      }
    }
    if (infeasible) {
      ++b.out.stats.infeasible;
      continue;
    }
    b.rules.push_back(std::move(reqs));
  }
  // complement_pairs counted insertions of negation fingerprints; the
  // interesting number is how many tests actually absorbed both
  // polarities, which only the requirement lists know. Recount.
  b.out.stats.complement_pairs = 0;
  {
    std::set<std::int32_t> pos, neg;
    for (const RuleReqs& r : b.rules) {
      for (const Req& q : r.reqs) (q.want ? pos : neg).insert(q.atom);
    }
    for (const std::int32_t a : neg) {
      if (pos.count(a) != 0) ++b.out.stats.complement_pairs;
    }
  }
  b.out.stats.rules = b.rules.size();
  b.out.stats.atoms = b.out.atoms.size();

  std::vector<int> all(b.rules.size());
  for (std::size_t i = 0; i < all.size(); ++i) all[i] = static_cast<int>(i);
  b.out.root = b.build(0, all);
  b.out.stats.nodes = b.out.nodes.size();
  OBS_GAUGE("dataplane.fdd.nodes", b.out.nodes.size());
  OBS_GAUGE("dataplane.fdd.atoms", b.out.atoms.size());
  return std::move(b.out);
}

namespace {

void for_each_edge(const FddNode& n, const auto& fn) {
  fn(n.on_true);
  fn(n.on_false);
  fn(n.on_except);
}

}  // namespace

bool check_ordered(const Fdd& f) {
  for (const FddNode& n : f.nodes) {
    bool ok = true;
    for_each_edge(n, [&](FddRef r) {
      if (!is_leaf(r) &&
          f.nodes[static_cast<std::size_t>(r)].atom <= n.atom) {
        ok = false;
      }
    });
    if (!ok) return false;
  }
  return true;
}

bool check_reduced(const Fdd& f) {
  std::set<std::array<std::int32_t, 4>> seen;
  for (const FddNode& n : f.nodes) {
    if (n.on_true == n.on_false && n.on_false == n.on_except) return false;
    if (!seen.insert({n.atom, n.on_true, n.on_false, n.on_except}).second) {
      return false;
    }
  }
  return true;
}

std::size_t shared_edge_count(const Fdd& f) {
  std::map<FddRef, std::size_t> in_degree;
  for (const FddNode& n : f.nodes) {
    for_each_edge(n, [&](FddRef r) { ++in_degree[r]; });
  }
  std::size_t shared = 0;
  for (const auto& [ref, deg] : in_degree) {
    (void)ref;
    if (deg > 1) shared += deg - 1;
  }
  return shared;
}

}  // namespace nfactor::dataplane
