// FDD layer of the dataplane compiler (docs/dataplane.md): lower an
// ordered rule list — each rule a conjunction of interned constraint
// atoms — into a reduced, variable-ordered decision DAG in the spirit of
// the NetKAT fast compiler's forwarding decision diagrams. Test nodes
// are keyed by the interner's structural fingerprints, complements
// (`c` / `negate(c)`) share one test, and structurally identical
// subtrees are hash-consed so common continuations are built once.
//
// Semantics match the model interpreter exactly, including its
// exception rule: evaluating an atom may throw (a map lookup whose key
// is absent, a read of an undefined symbol), and a throwing atom fails
// every rule that mentions it — in either polarity — while leaving
// rules that never test it alive. Each node therefore carries a third
// edge (`on_except`) taken when its atom's evaluation throws.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "symex/expr.h"

namespace nfactor::dataplane {

/// One priority-ordered rule: `entry` is the model-entry index the rule
/// stands for; `atoms` is the conjunction of its match constraints
/// (config + flow + state, already config-specialized by the caller).
struct FddRule {
  int entry = 0;
  std::vector<symex::SymRef> atoms;
};

/// A decision-DAG reference: >= 0 indexes Fdd::nodes; < 0 encodes a
/// leaf. Leaves are model-entry outcomes: `leaf_ref(e)` for entry e,
/// with e == -1 the default drop.
using FddRef = std::int32_t;

constexpr FddRef leaf_ref(int entry) {
  return static_cast<FddRef>(-entry - 2);
}
constexpr bool is_leaf(FddRef r) { return r < 0; }
constexpr int leaf_entry(FddRef r) { return static_cast<int>(-r - 2); }

/// One test node: evaluate `atoms[atom]`; true -> on_true, false ->
/// on_false, evaluation threw -> on_except.
struct FddNode {
  std::int32_t atom = 0;
  FddRef on_true = leaf_ref(-1);
  FddRef on_false = leaf_ref(-1);
  FddRef on_except = leaf_ref(-1);

  bool operator==(const FddNode&) const = default;
};

struct FddStats {
  std::size_t rules = 0;         ///< input rules (infeasible ones excluded)
  std::size_t infeasible = 0;    ///< rules with contradictory atoms, pruned
  std::size_t atoms = 0;         ///< unified tests (complement pairs merged)
  std::size_t complement_pairs = 0;  ///< atoms that absorbed a negation
  std::size_t nodes = 0;
  std::size_t memo_hits = 0;     ///< (level, candidate-set) continuations reused
  std::size_t cons_hits = 0;     ///< structurally equal nodes unified
};

struct Fdd {
  /// Canonical test expressions, in variable order: atoms[i] is tested
  /// strictly before atoms[j] on every path iff i < j. The order is
  /// first-appearance over the rule list — deterministic because the
  /// model's entry order is.
  std::vector<symex::SymRef> atoms;
  /// Hash-consed test nodes, children strictly before parents.
  std::vector<FddNode> nodes;
  FddRef root = leaf_ref(-1);
  FddStats stats;
};

struct FddOptions {
  /// Hard budget on test nodes; exceeded -> std::runtime_error. The
  /// memoized build is near-linear on real models, so this is a
  /// backstop against adversarial (fuzz-generated) rule sets only.
  std::size_t max_nodes = 1u << 20;
};

/// Compile the rule list (first match wins, default drop) into a
/// reduced ordered decision DAG.
Fdd build_fdd(std::span<const FddRule> rules, const FddOptions& opts = {});

// ---- Structural invariants (asserted by tests/dataplane_test.cpp) ---------

/// Every edge goes to a leaf or to a node with a strictly larger atom
/// index — so no atom is ever re-tested on a path.
bool check_ordered(const Fdd& f);

/// No node has all three out-edges equal, and no two nodes are
/// structurally identical (hash-consing canonicalizes them).
bool check_reduced(const Fdd& f);

/// Total out-edges vs distinct targets: > 0 means some subtree is
/// genuinely shared (the DAG is not a tree).
std::size_t shared_edge_count(const Fdd& f);

}  // namespace nfactor::dataplane
