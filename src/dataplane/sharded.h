// Multi-core sharded batch pipeline (docs/dataplane.md).
//
// ShardedDataplane owns N DataplaneEngine replicas — each with its own
// deep-copied state store — and partitions every input batch with an
// RSS-style symmetric 5-tuple flow hash: all packets of a flow, in both
// directions, land on the same shard, so per-flow state (NAT bindings,
// firewall connections, per-flow counters) behaves exactly as on a
// single engine. Shards execute on a persistent worker pool; results
// scatter back into per-input-packet verdicts plus per-shard send lists
// that preserve the within-shard packet order.
//
// Equivalence contract (tested in tests/dataplane_sharded_test.cpp and
// the fuzz oracle's sharded leg):
//   - every shard's verdicts, sends, and post-state are byte-equal to a
//     single engine fed that shard's packet subsequence, at any shard
//     count — this holds for *every* NF, because a shard is just an
//     engine;
//   - for flow-partitionable NFs (all state keyed by flow), per-packet
//     outputs are additionally shard-count invariant: shards never
//     interact, so the single-engine run decomposes exactly;
//   - NFs with cross-flow state (a global allocation counter, an
//     aggregate threshold) do NOT get shard-count-invariant outputs.
//     merge_state()/snapshot() reconcile such state best-effort — see
//     the soundness notes on merge_state().
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "dataplane/engine.h"

namespace nfactor::dataplane {

/// Symmetric 5-tuple flow hash: (ip, port) endpoints are ordered before
/// mixing, so a reply packet (src/dst swapped) hashes identically to
/// its request — required for NFs that look up reverse-direction keys
/// (firewall.nf's `rk`). splitmix64-mixed, stable across runs and
/// platforms (no pointer or seed input).
std::uint64_t flow_hash(const netsim::Packet& p);

struct ShardOptions {
  int shards = 1;
  EngineOptions engine;  ///< tier for every replica
};

/// Batch result. matched[i] is the verdict for input packet i (same
/// encoding as BatchOutput::matched); shard_of[i] says which shard ran
/// it. Sends stay grouped per shard (shard_outputs()[s]), in that
/// shard's execution order, with Send::src holding the *global* input
/// index — flatten or re-sort by src as needed.
struct ShardedOutput {
  std::vector<std::int32_t> matched;
  std::vector<std::int32_t> shard_of;

  std::span<const BatchOutput> shard_outputs() const {
    return {per_shard_.data(), per_shard_.size()};
  }

 private:
  friend class ShardedDataplane;
  std::vector<BatchOutput> per_shard_;
};

class ShardedDataplane {
 public:
  /// Every replica starts from a deep copy of `store`. The table must
  /// outlive the ShardedDataplane.
  ShardedDataplane(const CompiledTable& table,
                   const std::map<std::string, runtime::Value>& store,
                   ShardOptions opts = {});
  ~ShardedDataplane();
  ShardedDataplane(const ShardedDataplane&) = delete;
  ShardedDataplane& operator=(const ShardedDataplane&) = delete;

  /// Partition `packets` by flow hash, run all shards (on the worker
  /// pool when shards > 1), scatter verdicts back. Unlike
  /// DataplaneEngine::execute_batch this *replaces* the previous
  /// contents of `out` (send pools are still reused, so steady-state
  /// batches do not allocate).
  void execute_batch(std::span<const netsim::Packet> packets,
                     ShardedOutput& out);

  int shards() const { return static_cast<int>(engines_.size()); }
  DataplaneEngine& engine(int shard) { return *engines_[static_cast<std::size_t>(shard)]; }
  const DataplaneEngine& engine(int shard) const {
    return *engines_[static_cast<std::size_t>(shard)];
  }
  int shard_of(const netsim::Packet& p) const {
    return static_cast<int>(flow_hash(p) % static_cast<std::uint64_t>(engines_.size()));
  }

  /// Reconcile per-shard state into one cross-shard view:
  ///   - maps: union over shards (ascending shard order; a key written
  ///     by several shards keeps the highest shard's value). SOUND when
  ///     map keys are flow-derived — the flow partition makes shard key
  ///     sets disjoint. NOT sound for maps keyed by non-flow data two
  ///     shards may both write.
  ///   - int scalars: initial + sum of per-shard deltas. SOUND for
  ///     additive counters (packet/byte tallies). NOT sound for scalars
  ///     with non-commutative updates (an allocation cursor like nat.nf's
  ///     next_p — the merged value counts allocations but cannot
  ///     reproduce single-engine assignment order).
  ///   - anything else: shard 0's value wins.
  std::map<std::string, runtime::Value> merge_state() const;

  /// Per-shard copy of one variable's state (index = shard); entries
  /// are null where the shard lacks the variable.
  std::vector<const runtime::Value*> snapshot(const std::string& var) const;

 private:
  void run_shard(int s);
  void worker_loop(int s);

  std::vector<std::unique_ptr<DataplaneEngine>> engines_;
  std::map<std::string, runtime::Value> initial_;  ///< for delta merges
  std::vector<std::vector<std::int32_t>> shard_idx_;  ///< reused per batch

  // Per-batch shared inputs (set by execute_batch, read by workers).
  std::span<const netsim::Packet> cur_packets_;
  ShardedOutput* cur_out_ = nullptr;

  // Worker pool (spawned only when shards > 1): epoch-counted batch
  // barrier — bump epoch_ to release every worker once, wait for
  // remaining_ to drain.
  struct Pool;
  std::unique_ptr<Pool> pool_;
};

}  // namespace nfactor::dataplane
