#include "dataplane/threaded.h"

#include <algorithm>
#include <cstring>
#include <optional>
#include <sstream>

#include "obs/obs.h"

// NFACTOR_DATAPLANE_THREADED selects the dispatch strategy: 1 = computed
// goto (labels-as-values), 0 = portable switch loop. CMake defines it 0
// when the option is OFF; otherwise the compiler decides.
#if !defined(NFACTOR_DATAPLANE_THREADED)
#if defined(__GNUC__) || defined(__clang__)
#define NFACTOR_DATAPLANE_THREADED 1
#else
#define NFACTOR_DATAPLANE_THREADED 0
#endif
#endif

namespace nfactor::dataplane {

namespace {

using runtime::Int;

/// Raw-load plan for a packet field: byte offset into netsim::Packet
/// plus load width. Width 0 = not raw-loadable (computed fields: the
/// MAC integers, pkt.len, in_port) — those keep read_packet_field.
struct RawField {
  std::uint16_t off = 0;
  std::uint8_t w = 0;
};

RawField raw_field(PacketField f) {
  static const netsim::Packet p{};
  const char* const base = reinterpret_cast<const char*>(&p);
  const auto at = [&](const void* m, std::uint8_t w) {
    return RawField{
        static_cast<std::uint16_t>(static_cast<const char*>(m) - base), w};
  };
  switch (f) {
    case PacketField::kEthType: return at(&p.eth_type, 2);
    case PacketField::kIpSrc: return at(&p.ip_src, 4);
    case PacketField::kIpDst: return at(&p.ip_dst, 4);
    case PacketField::kIpProto: return at(&p.ip_proto, 1);
    case PacketField::kIpTtl: return at(&p.ip_ttl, 1);
    case PacketField::kIpId: return at(&p.ip_id, 2);
    case PacketField::kIpTos: return at(&p.ip_tos, 1);
    case PacketField::kSport: return at(&p.sport, 2);
    case PacketField::kDport: return at(&p.dport, 2);
    case PacketField::kTcpFlags: return at(&p.tcp_flags, 1);
    case PacketField::kTcpSeq: return at(&p.tcp_seq, 4);
    case PacketField::kTcpAck: return at(&p.tcp_ack, 4);
    case PacketField::kTcpWin: return at(&p.tcp_win, 2);
    default: return {};
  }
}

/// Relation mask: the comparison is true for which of {v<k, v==k, v>k}.
std::uint8_t mask_of(OpCode c) {
  switch (c) {
    case OpCode::kEq: return 0b010;
    case OpCode::kNe: return 0b101;
    case OpCode::kLt: return 0b001;
    case OpCode::kLe: return 0b011;
    case OpCode::kGt: return 0b100;
    default: return 0b110;  // kGe
  }
}

/// Mirror a comparison so the field ends up on the left.
OpCode flip_cmp(OpCode c) {
  switch (c) {
    case OpCode::kLt: return OpCode::kGt;
    case OpCode::kLe: return OpCode::kGe;
    case OpCode::kGt: return OpCode::kLt;
    case OpCode::kGe: return OpCode::kLe;
    default: return c;  // kEq / kNe are symmetric
  }
}

bool is_cmp(OpCode c) {
  return c == OpCode::kEq || c == OpCode::kNe || c == OpCode::kLt ||
         c == OpCode::kLe || c == OpCode::kGt || c == OpCode::kGe;
}

const char* cmp_name(OpCode c) {
  switch (c) {
    case OpCode::kEq: return "==";
    case OpCode::kNe: return "!=";
    case OpCode::kLt: return "<";
    case OpCode::kLe: return "<=";
    case OpCode::kGt: return ">";
    default: return ">=";
  }
}

const char* field_name(PacketField f) {
  switch (f) {
    case PacketField::kEthSrc: return "eth_src";
    case PacketField::kEthDst: return "eth_dst";
    case PacketField::kEthType: return "eth_type";
    case PacketField::kIpSrc: return "ip_src";
    case PacketField::kIpDst: return "ip_dst";
    case PacketField::kIpProto: return "ip_proto";
    case PacketField::kIpTtl: return "ip_ttl";
    case PacketField::kIpId: return "ip_id";
    case PacketField::kIpTos: return "ip_tos";
    case PacketField::kSport: return "sport";
    case PacketField::kDport: return "dport";
    case PacketField::kTcpFlags: return "tcp_flags";
    case PacketField::kTcpSeq: return "tcp_seq";
    case PacketField::kTcpAck: return "tcp_ack";
    case PacketField::kTcpWin: return "tcp_win";
    case PacketField::kLen: return "len";
    case PacketField::kInPort: return "in_port";
  }
  return "?";
}

/// Expression-tree node reconstructed from a stack Program, so the
/// splitter can walk and/or/not structure instead of a linear op list.
struct PNode {
  OpCode code;
  Int imm = 0;
  int a = -1, b = -1;
};

std::optional<int> parse_tree(const std::vector<Op>& ops,
                              std::vector<PNode>& pn) {
  std::vector<int> st;
  for (const Op& op : ops) {
    switch (op.code) {
      case OpCode::kPushConst:
      case OpCode::kPushField:
      case OpCode::kPayloadContains:
        pn.push_back({op.code, op.imm});
        st.push_back(static_cast<int>(pn.size()) - 1);
        break;
      case OpCode::kNot:
      case OpCode::kNeg: {
        if (st.empty()) return std::nullopt;
        const int a = st.back();
        pn.push_back({op.code, 0, a});
        st.back() = static_cast<int>(pn.size()) - 1;
        break;
      }
      default: {
        if (st.size() < 2) return std::nullopt;
        const int b = st.back();
        st.pop_back();
        const int a = st.back();
        pn.push_back({op.code, 0, a, b});
        st.back() = static_cast<int>(pn.size()) - 1;
      }
    }
  }
  if (st.size() != 1) return std::nullopt;
  return st[0];
}

/// Branch target while lowering: either a FlatNode edge (resolved once
/// every node's entry pc is known) or the pc of an already-emitted op.
struct Tgt {
  bool is_edge;
  std::int32_t v;
  static Tgt edge(std::int32_t e) { return {true, e}; }
  static Tgt pc(std::int32_t p) { return {false, p}; }
};

struct Lowerer {
  const CompiledTable& t;
  ThreadedCode& c;
  struct Patch {
    std::size_t op;
    int slot;  // 0 = t, 1 = f, 2 = x
    std::int32_t edge;
  };
  std::vector<Patch> patches;

  void wire(std::size_t op, int slot, Tgt g) {
    std::int32_t& ref = slot == 0   ? c.code[op].t
                        : slot == 1 ? c.code[op].f
                                    : c.code[op].x;
    if (g.is_edge) {
      patches.push_back({op, slot, g.v});
      ref = 0;
    } else {
      ref = g.v;
    }
  }

  std::int32_t emit(const ThreadedOp& o, Tgt tt, Tgt ff, Tgt xx) {
    const std::size_t idx = c.code.size();
    c.code.push_back(o);
    wire(idx, 0, tt);
    wire(idx, 1, ff);
    wire(idx, 2, xx);
    return static_cast<std::int32_t>(idx);
  }

  std::int32_t emit_cmp_field(PacketField f, OpCode cmp, Int k, Tgt tt,
                              Tgt ff, Tgt xx) {
    ThreadedOp o;
    o.cmp1 = cmp;
    o.mask3 = mask_of(cmp);
    o.k1 = k;
    o.f1 = f;
    const RawField r = raw_field(f);
    o.off = r.off;
    o.op = r.w == 1   ? TOp::kCmpRaw8
           : r.w == 2 ? TOp::kCmpRaw16
           : r.w == 4 ? TOp::kCmpRaw32
                      : TOp::kCmpGen;
    ++c.fused_ops;
    return emit(o, tt, ff, xx);
  }

  std::int32_t emit_contains(Int needle, Tgt tt, Tgt ff, Tgt xx) {
    ThreadedOp o;
    o.op = TOp::kContains;
    o.k1 = needle;
    ++c.fused_ops;
    ++c.scan_ops;
    return emit(o, tt, ff, xx);
  }

  /// contains(k1) || contains(k2) as one op: the fused SWAR pass scans
  /// the payload once for both needles' first bytes instead of running
  /// two separate sweeps (scans are pure, so collapsing the
  /// short-circuit is observationally identical).
  std::int32_t emit_contains_or(Int n1, Int n2, Tgt tt, Tgt ff, Tgt xx) {
    ThreadedOp o;
    o.op = TOp::kContainsOr;
    o.k1 = n1;
    o.k2 = n2;
    ++c.fused_ops;
    ++c.scan_ops;
    return emit(o, tt, ff, xx);
  }

  /// Lower `value cmp k` where value is a field or a (field & mask)
  /// bit-test; anything else defeats the splitter.
  std::optional<std::int32_t> emit_cmp(const std::vector<PNode>& pn,
                                       int value, OpCode cmp, Int k, Tgt tt,
                                       Tgt ff, Tgt xx) {
    const PNode& v = pn[value];
    if (v.code == OpCode::kPushField) {
      return emit_cmp_field(static_cast<PacketField>(v.imm), cmp, k, tt, ff,
                            xx);
    }
    if (v.code == OpCode::kBitAnd) {
      const PNode* fld = &pn[v.a];
      const PNode* msk = &pn[v.b];
      if (fld->code == OpCode::kPushConst) std::swap(fld, msk);
      if (fld->code != OpCode::kPushField ||
          msk->code != OpCode::kPushConst) {
        return std::nullopt;
      }
      ThreadedOp o;
      o.op = TOp::kMaskCmp;
      o.cmp1 = cmp;
      o.mask3 = mask_of(cmp);
      o.k1 = k;
      o.k2 = msk->imm;
      o.f1 = static_cast<PacketField>(fld->imm);
      const RawField r = raw_field(o.f1);
      o.off = r.off;
      o.w = r.w;
      ++c.fused_ops;
      return emit(o, tt, ff, xx);
    }
    return std::nullopt;
  }

  /// Lower "pn[n] is nonzero -> tt else ff" as a chain of single-test
  /// ops with short-circuit branching. Emission order is right operand
  /// first (so the left test knows its chain target), which only
  /// affects pc layout, never semantics. Returns the entry pc, or
  /// nullopt if the tree has a shape the splitter cannot take apart —
  /// the caller then rolls back and keeps the whole stack program.
  // NOLINTNEXTLINE(misc-no-recursion)
  std::optional<std::int32_t> lower_bool(const std::vector<PNode>& pn, int n,
                                         Tgt tt, Tgt ff, Tgt xx) {
    const PNode& e = pn[n];
    switch (e.code) {
      case OpCode::kAnd: {
        // Pure predicate: skipping the right term when the left decides
        // is exactly run_program's (a != 0 && b != 0), minus the work.
        const auto rhs = lower_bool(pn, e.b, tt, ff, xx);
        if (!rhs) return std::nullopt;
        return lower_bool(pn, e.a, Tgt::pc(*rhs), ff, xx);
      }
      case OpCode::kOr: {
        // Or of two payload scans fuses into a single-pass op instead
        // of a short-circuit chain of two sweeps.
        if (pn[static_cast<std::size_t>(e.a)].code ==
                OpCode::kPayloadContains &&
            pn[static_cast<std::size_t>(e.b)].code ==
                OpCode::kPayloadContains) {
          return emit_contains_or(pn[static_cast<std::size_t>(e.a)].imm,
                                  pn[static_cast<std::size_t>(e.b)].imm, tt,
                                  ff, xx);
        }
        const auto rhs = lower_bool(pn, e.b, tt, ff, xx);
        if (!rhs) return std::nullopt;
        return lower_bool(pn, e.a, tt, Tgt::pc(*rhs), xx);
      }
      case OpCode::kNot:
        return lower_bool(pn, e.a, ff, tt, xx);
      case OpCode::kPayloadContains:
        return emit_contains(e.imm, tt, ff, xx);
      case OpCode::kPushField:
        return emit_cmp_field(static_cast<PacketField>(e.imm), OpCode::kNe, 0,
                              tt, ff, xx);
      default:
        if (!is_cmp(e.code)) return std::nullopt;
        if (pn[static_cast<std::size_t>(e.b)].code == OpCode::kPushConst) {
          return emit_cmp(pn, e.a, e.code,
                          pn[static_cast<std::size_t>(e.b)].imm, tt, ff, xx);
        }
        if (pn[static_cast<std::size_t>(e.a)].code == OpCode::kPushConst) {
          return emit_cmp(pn, e.b, flip_cmp(e.code),
                          pn[static_cast<std::size_t>(e.a)].imm, tt, ff, xx);
        }
        return std::nullopt;
    }
  }

  std::int32_t lower_node(std::size_t i) {
    const FlatNode& n = t.nodes[i];
    const CompiledPred& p = t.preds[static_cast<std::size_t>(n.pred)];
    const Tgt tt = Tgt::edge(n.on_true);
    const Tgt ff = Tgt::edge(n.on_false);
    const Tgt xx = Tgt::edge(n.on_except);
    switch (p.fused.kind) {
      case FusedPred::Kind::kCmp:
        return emit_cmp_field(p.fused.f1, p.fused.cmp1, p.fused.k1, tt, ff,
                              xx);
      case FusedPred::Kind::kCmp2: {
        // term2 is emitted first so term1 can branch straight into it;
        // the chain short-circuits exactly like eval_fused.
        const std::int32_t i2 = emit_cmp_field(p.fused.f2, p.fused.cmp2,
                                               p.fused.k2, tt, ff, xx);
        ++c.split_nodes;
        return p.fused.disjunction
                   ? emit_cmp_field(p.fused.f1, p.fused.cmp1, p.fused.k1, tt,
                                    Tgt::pc(i2), xx)
                   : emit_cmp_field(p.fused.f1, p.fused.cmp1, p.fused.k1,
                                    Tgt::pc(i2), ff, xx);
      }
      case FusedPred::Kind::kContains:
        return emit_contains(p.fused.k1, tt, ff, xx);
      case FusedPred::Kind::kContains2: {
        if (p.fused.disjunction) {
          return emit_contains_or(p.fused.k1, p.fused.k2, tt, ff, xx);
        }
        const std::int32_t i2 = emit_contains(p.fused.k2, tt, ff, xx);
        ++c.split_nodes;
        return emit_contains(p.fused.k1, Tgt::pc(i2), ff, xx);
      }
      case FusedPred::Kind::kNone:
        break;
    }
    if (p.prog.compiled()) {
      // Try to split the stack program into a short-circuit test chain;
      // roll back to a single kProg op when any subtree resists.
      const std::size_t code_mark = c.code.size();
      const std::size_t patch_mark = patches.size();
      const std::size_t fused_mark = c.fused_ops;
      std::vector<PNode> pn;
      const auto root = parse_tree(p.prog.ops, pn);
      if (root) {
        const auto entry = lower_bool(pn, *root, tt, ff, xx);
        if (entry) {
          if (c.code.size() - code_mark > 1) ++c.split_nodes;
          return *entry;
        }
      }
      c.code.resize(code_mark);
      patches.resize(patch_mark);
      c.fused_ops = fused_mark;
      ThreadedOp o;
      o.op = TOp::kProg;
      o.aux = n.pred;
      ++c.prog_ops;
      return emit(o, tt, ff, xx);
    }
    ThreadedOp o;
    o.op = TOp::kGeneric;
    o.aux = n.pred;
    ++c.generic_ops;
    return emit(o, tt, ff, xx);
  }
};

}  // namespace

// ---------------------------------------------------------------------------
// Lowering
// ---------------------------------------------------------------------------

ThreadedCode lower_threaded(const CompiledTable& t) {
  ThreadedCode c;
  const std::size_t nn = t.nodes.size();
  c.node_pc.resize(nn);
  Lowerer lw{t, c, {}};
  for (std::size_t i = 0; i < nn; ++i) {
    c.node_pc[i] = lw.lower_node(i);
  }
  c.node_ops = c.code.size();
  for (std::size_t l = 0; l < t.leaves.size(); ++l) {
    const CompiledLeaf& leaf = t.leaves[l];
    ThreadedOp o;
    o.aux = static_cast<std::int32_t>(l);
    o.entry = leaf.entry;
    if (leaf.updates.empty() && leaf.sends.empty()) {
      o.op = TOp::kDrop;
      ++c.pure_terminals;
    } else if (leaf.updates.empty() && leaf.sends.size() == 1 &&
               leaf.sends[0].writes.empty() && leaf.sends[0].const_port) {
      o.op = TOp::kForward;
      o.port = static_cast<std::int32_t>(leaf.sends[0].port_const);
      ++c.pure_terminals;
    } else {
      o.op = TOp::kLeaf;
    }
    c.code.push_back(o);
  }
  // Edge -> pc: node edges resolve to the node's entry op, leaf edges
  // to the leaf's terminal op appended after the test block.
  const auto resolve = [&](std::int32_t e) -> std::int32_t {
    return e >= 0 ? c.node_pc[static_cast<std::size_t>(e)]
                  : static_cast<std::int32_t>(c.node_ops) + ~e;
  };
  for (const auto& p : lw.patches) {
    std::int32_t& ref = p.slot == 0   ? c.code[p.op].t
                        : p.slot == 1 ? c.code[p.op].f
                                      : c.code[p.op].x;
    ref = resolve(p.edge);
  }
  c.entry_pc = resolve(t.root);
  // Topological order of the reachable test ops (reverse postorder DFS
  // from the entry over t/f/x edges): the vectored batch executor sweeps
  // ops in this order, so every branch it takes lands on an op that has
  // not been drained yet. The FDD is a DAG and within-node split chains
  // are acyclic, so the lowered graph is too; the cycle check is pure
  // paranoia — tripping it just leaves topo empty, which disables the
  // vectored path and keeps the scalar dispatch loop.
  const auto test_ops = static_cast<std::int32_t>(c.node_ops);
  if (c.entry_pc < test_ops) {
    std::vector<std::uint8_t> mark(c.node_ops, 0);  // 0 new, 1 open, 2 done
    std::vector<std::pair<std::int32_t, int>> st;
    std::vector<std::int32_t> post;
    post.reserve(c.node_ops);
    bool cyclic = false;
    st.emplace_back(c.entry_pc, 0);
    mark[static_cast<std::size_t>(c.entry_pc)] = 1;
    while (!st.empty() && !cyclic) {
      auto& top = st.back();
      const std::int32_t pc = top.first;
      const ThreadedOp& o = c.code[static_cast<std::size_t>(pc)];
      const std::int32_t nexts[3] = {o.t, o.f, o.x};
      bool descended = false;
      while (top.second < 3) {
        const std::int32_t nx = nexts[top.second++];
        if (nx >= test_ops) continue;  // terminal edge
        const std::uint8_t m = mark[static_cast<std::size_t>(nx)];
        if (m == 1) {
          cyclic = true;
          break;
        }
        if (m == 0) {
          mark[static_cast<std::size_t>(nx)] = 1;
          st.emplace_back(nx, 0);  // invalidates `top`; re-take next round
          descended = true;
          break;
        }
      }
      if (descended || cyclic) continue;
      mark[static_cast<std::size_t>(pc)] = 2;
      post.push_back(pc);
      st.pop_back();
    }
    if (!cyclic) c.topo.assign(post.rbegin(), post.rend());
  }
  OBS_GAUGE("dataplane.threaded.ops", c.code.size());
  OBS_GAUGE("dataplane.threaded.generic_ops", c.generic_ops);
  OBS_GAUGE("dataplane.threaded.split_nodes", c.split_nodes);
  return c;
}

bool threaded_dispatch_is_computed_goto() {
  return NFACTOR_DATAPLANE_THREADED != 0;
}

// ---------------------------------------------------------------------------
// to_text()
// ---------------------------------------------------------------------------

std::string ThreadedCode::to_text(const CompiledTable& table) const {
  std::ostringstream os;
  os << "# nfactor dataplane threaded v1\n";
  os << "nf: " << table.nf_name << "\n";
  os << "ops: " << code.size() << " = " << node_ops << " tests over "
     << node_pc.size() << " nodes (" << fused_ops << " fused, " << prog_ops
     << " prog, " << generic_ops << " gen, " << split_nodes << " split) + "
     << (code.size() - node_ops) << " terminals (" << pure_terminals
     << " pure)\n";
  os << "entry: pc" << entry_pc << "\n";
  os << "code:\n";
  // Node-entry annotations: which pcs begin a FlatNode's test chain.
  std::vector<std::int32_t> entry_of(code.size(), -1);
  for (std::size_t i = 0; i < node_pc.size(); ++i) {
    entry_of[static_cast<std::size_t>(node_pc[i])] =
        static_cast<std::int32_t>(i);
  }
  const auto needle = [&](Int k) {
    return "s" + std::to_string(k) + ":\"" +
           table.needles[static_cast<std::size_t>(k)].text + "\"";
  };
  for (std::size_t i = 0; i < code.size(); ++i) {
    const ThreadedOp& o = code[i];
    os << "  pc" << i << ": ";
    if (i < node_ops && entry_of[i] >= 0) os << "[n" << entry_of[i] << "] ";
    const auto edges = [&](bool with_x = false) {
      os << " -> t:pc" << o.t << " f:pc" << o.f;
      if (with_x) os << " !:pc" << o.x;
    };
    switch (o.op) {
      case TOp::kCmpRaw8:
      case TOp::kCmpRaw16:
      case TOp::kCmpRaw32:
      case TOp::kCmpGen: {
        static constexpr const char* kWidth[] = {"cmp8", "cmp16", "cmp32",
                                                 "cmp"};
        os << kWidth[static_cast<std::size_t>(o.op)] << " "
           << field_name(o.f1) << " " << cmp_name(o.cmp1) << " " << o.k1;
        edges();
        break;
      }
      case TOp::kMaskCmp:
        os << "test (" << field_name(o.f1) << " & " << o.k2 << ") "
           << cmp_name(o.cmp1) << " " << o.k1;
        edges();
        break;
      case TOp::kContains:
        os << "contains " << needle(o.k1);
        edges();
        break;
      case TOp::kContainsOr:
        os << "contains-or " << needle(o.k1) << " | " << needle(o.k2);
        edges();
        break;
      case TOp::kProg:
        os << "prog p" << o.aux;
        edges();
        break;
      case TOp::kGeneric:
        os << "gen p" << o.aux;
        edges(/*with_x=*/true);
        break;
      case TOp::kForward:
        os << "forward L" << o.aux << " entry " << o.entry << " port "
           << o.port;
        break;
      case TOp::kDrop:
        os << "drop L" << o.aux;
        if (o.entry >= 0) os << " entry " << o.entry;
        break;
      case TOp::kLeaf:
        os << "leaf L" << o.aux << " entry " << o.entry;
        break;
    }
    os << "\n";
  }
  return os.str();
}

// ---------------------------------------------------------------------------
// Execution
// ---------------------------------------------------------------------------

namespace {

/// Branchless comparison resolve: v's relation to k1 (0 = less, 1 =
/// equal, 2 = greater) indexes the precomputed truth mask.
inline std::int32_t cmp_branch(const ThreadedOp& o, Int v) {
  const int rel = static_cast<int>(v > o.k1) - static_cast<int>(v < o.k1) + 1;
  return ((o.mask3 >> rel) & 1) != 0 ? o.t : o.f;
}

inline Int load_u16(const std::uint8_t* p) {
  std::uint16_t v;
  std::memcpy(&v, p, sizeof(v));
  return v;
}

inline Int load_u32(const std::uint8_t* p) {
  std::uint32_t v;
  std::memcpy(&v, p, sizeof(v));
  return v;
}

inline Int load_masked(const ThreadedOp& o, const std::uint8_t* base,
                       const netsim::Packet& in) {
  switch (o.w) {
    case 1: return base[o.off];
    case 2: return load_u16(base + o.off);
    case 4: return load_u32(base + o.off);
    default: return read_packet_field(in, o.f1);
  }
}

}  // namespace

std::int32_t DataplaneEngine::run_threaded(const netsim::Packet& in) {
  const ThreadedOp* const code = threaded_->code.data();
  const std::vector<Needle>& needles = table_.needles;
  const auto* const base = reinterpret_cast<const std::uint8_t*>(&in);
  std::int32_t pc = threaded_->entry_pc;
  const ThreadedOp* op = nullptr;

#if NFACTOR_DATAPLANE_THREADED
  // Direct-threaded dispatch: every op ends by jumping straight to the
  // next op's label through a label-address table. Unlike a switch loop,
  // each op gets its *own* indirect branch, so the predictor can learn
  // the per-op successor distribution (node i's jump almost always
  // targets the same two labels).
  static const void* const kDispatch[] = {
      &&op_cmp_raw8,  &&op_cmp_raw16,   &&op_cmp_raw32, &&op_cmp_gen,
      &&op_mask_cmp,  &&op_contains,    &&op_contains_or,
      &&op_prog,      &&op_generic,
      &&op_term,      &&op_term,        &&op_term,
  };
#define NFACTOR_TC_DISPATCH()                         \
  op = code + pc;                                     \
  goto* kDispatch[static_cast<std::size_t>(op->op)]

  NFACTOR_TC_DISPATCH();
op_cmp_raw8:
  pc = cmp_branch(*op, base[op->off]);
  NFACTOR_TC_DISPATCH();
op_cmp_raw16:
  pc = cmp_branch(*op, load_u16(base + op->off));
  NFACTOR_TC_DISPATCH();
op_cmp_raw32:
  pc = cmp_branch(*op, load_u32(base + op->off));
  NFACTOR_TC_DISPATCH();
op_cmp_gen:
  pc = cmp_branch(*op, read_packet_field(in, op->f1));
  NFACTOR_TC_DISPATCH();
op_mask_cmp:
  pc = cmp_branch(*op, load_masked(*op, base, in) & op->k2);
  NFACTOR_TC_DISPATCH();
op_contains:
  pc = payload_contains(in.payload,
                        needles[static_cast<std::size_t>(op->k1)])
           ? op->t
           : op->f;
  NFACTOR_TC_DISPATCH();
op_contains_or:
  pc = payload_contains_either(in.payload,
                               needles[static_cast<std::size_t>(op->k1)],
                               needles[static_cast<std::size_t>(op->k2)])
           ? op->t
           : op->f;
  NFACTOR_TC_DISPATCH();
op_prog:
  pc = run_program(table_.preds[static_cast<std::size_t>(op->aux)].prog, in) !=
               0
           ? op->t
           : op->f;
  NFACTOR_TC_DISPATCH();
op_generic: {
  // Lazy environment setup: only packets that actually reach a generic
  // predicate pay the two pointer stores.
  cur_ = &in;
  env_.input_packet = &in;
  bool t;
  try {
    t = symex::eval_concrete_bool(
        table_.preds[static_cast<std::size_t>(op->aux)].expr, env_);
  } catch (const std::exception&) {
    pc = op->x;
    NFACTOR_TC_DISPATCH();
  }
  pc = t ? op->t : op->f;
  NFACTOR_TC_DISPATCH();
}
op_term:
  return pc;
#undef NFACTOR_TC_DISPATCH

#else  // portable switch fallback — identical semantics
  while (true) {
    op = code + pc;
    switch (op->op) {
      case TOp::kCmpRaw8:
        pc = cmp_branch(*op, base[op->off]);
        break;
      case TOp::kCmpRaw16:
        pc = cmp_branch(*op, load_u16(base + op->off));
        break;
      case TOp::kCmpRaw32:
        pc = cmp_branch(*op, load_u32(base + op->off));
        break;
      case TOp::kCmpGen:
        pc = cmp_branch(*op, read_packet_field(in, op->f1));
        break;
      case TOp::kMaskCmp:
        pc = cmp_branch(*op, load_masked(*op, base, in) & op->k2);
        break;
      case TOp::kContains:
        pc = payload_contains(in.payload,
                              needles[static_cast<std::size_t>(op->k1)])
                 ? op->t
                 : op->f;
        break;
      case TOp::kContainsOr:
        pc = payload_contains_either(in.payload,
                                     needles[static_cast<std::size_t>(op->k1)],
                                     needles[static_cast<std::size_t>(op->k2)])
                 ? op->t
                 : op->f;
        break;
      case TOp::kProg:
        pc = run_program(table_.preds[static_cast<std::size_t>(op->aux)].prog,
                         in) != 0
                 ? op->t
                 : op->f;
        break;
      case TOp::kGeneric: {
        cur_ = &in;
        env_.input_packet = &in;
        try {
          pc = symex::eval_concrete_bool(
                   table_.preds[static_cast<std::size_t>(op->aux)].expr, env_)
                   ? op->t
                   : op->f;
        } catch (const std::exception&) {
          pc = op->x;
        }
        break;
      }
      case TOp::kForward:
      case TOp::kDrop:
      case TOp::kLeaf:
        return pc;
    }
  }
#endif
}

namespace {

struct SeqIdx {
  std::int32_t operator()(std::size_t i) const {
    return static_cast<std::int32_t>(i);
  }
};
struct ArrIdx {
  const std::int32_t* idx;
  std::int32_t operator()(std::size_t i) const { return idx[i]; }
};

/// Batches at least this large take the vectored executor (when the
/// program qualifies); smaller ones stay on the scalar dispatch loop,
/// whose per-packet cost has no queue traffic to amortize.
constexpr std::size_t kVectoredMinBatch = 64;

/// Vectored sweep block size. Large enough that a sweep exposes plenty
/// of independent misses to the memory system, small enough that a
/// block's packet headers and queues stay cache-resident across all the
/// ops that touch them (256 packets x ~3 lines ~= 48 KiB).
constexpr std::size_t kVectoredBlock = 256;

}  // namespace

// Vectored execution: sweep the op graph, not the packet list.
//
// The scalar dispatch loop runs each packet to completion before
// touching the next, so on working sets past L2 the batch degenerates
// into one long dependency chain of cache misses — every packet's
// header load and payload-pointer chase stalls behind the previous
// packet's, and the out-of-order window can only overlap a couple of
// neighbors. Profiling dpi showed exactly this: ~60% of its per-packet
// cost was the *first touch* of the payload bytes, identical in both
// tiers, which is why no amount of op-level fusion moved the ratio.
//
// The vectored executor (the VPP idea, applied to threaded code)
// instead visits each *op* once, in topological order, draining a queue
// of packet indices: all loads issued inside one op's sweep belong to
// different packets, so they are independent and the core overlaps
// their misses instead of serializing them. A payload-scan op that cost
// a full L3 round trip per packet in the scalar loop now pipelines
// those round trips across its whole queue. Short-circuit structure is
// preserved exactly — a packet whose dport test fails is simply never
// pushed onto the scan op's queue.
//
// Eligibility: every test op must be pure (kGeneric may throw and needs
// per-packet environment setup, so any generic op disables the path —
// the lowering statistics make that a one-integer check). Terminals run
// in a final pass in *input order*, so sends, state updates, and the
// matched vector are byte-identical to the scalar loop's; the only
// thing reordered is the evaluation of side-effect-free predicates.
template <typename IdxFn>
void DataplaneEngine::batch_vectored(std::span<const netsim::Packet> packets,
                                     std::size_t count, IdxFn idx,
                                     BatchOutput& out) {
  const ThreadedCode& tc = *threaded_;
  const ThreadedOp* const code = tc.code.data();
  const std::vector<Needle>& needles = table_.needles;
  const auto test_ops = static_cast<std::int32_t>(tc.node_ops);

  vec_q_.resize(tc.code.size());
  vec_term_.resize(count);
  out.matched.reserve(out.matched.size() + count);
  // Sweep in blocks, not the whole batch at once: a block's packet
  // headers (~3 cache lines each) fit L1/L2, so only the *first* op
  // that touches a packet pays its miss — overlapped across the block —
  // and every later op re-hits cache. Whole-batch sweeps measured
  // *slower* than the scalar loop on shallow programs: each op's pass
  // re-walked a multi-megabyte header working set and re-missed L2 per
  // packet, forfeiting the locality the scalar loop gets for free.
  for (std::size_t b0 = 0; b0 < count; b0 += kVectoredBlock) {
    const std::size_t b1 = std::min(count, b0 + kVectoredBlock);
    batch_vectored_block(packets, b0, b1, idx, out);
  }
  OBS_COUNT_N("dataplane.packets", count);
}

/// One vectored block: seed the entry queue, sweep the op graph in
/// topological order, then apply terminals in input order.
template <typename IdxFn>
void DataplaneEngine::batch_vectored_block(
    std::span<const netsim::Packet> packets, std::size_t b0, std::size_t b1,
    IdxFn idx, BatchOutput& out) {
  const ThreadedCode& tc = *threaded_;
  const ThreadedOp* const code = tc.code.data();
  const std::vector<Needle>& needles = table_.needles;
  const auto test_ops = static_cast<std::int32_t>(tc.node_ops);
  // Queues carry *local* batch positions so the terminal pass can
  // restore input order; idx() maps them to packet-array slots (the
  // identity for whole batches, the shard's index list when sharded).
  const auto sink = [&](std::int32_t tgt, std::int32_t li) {
    if (tgt < test_ops) {
      vec_q_[static_cast<std::size_t>(tgt)].push_back(li);
    } else {
      vec_term_[static_cast<std::size_t>(li)] = tgt;
    }
  };
  const auto pkt = [&](std::int32_t li) -> const netsim::Packet& {
    return packets[static_cast<std::size_t>(idx(static_cast<std::size_t>(li)))];
  };
  {
    auto& entry_q = vec_q_[static_cast<std::size_t>(tc.entry_pc)];
    entry_q.resize(b1 - b0);
    const bool scans = tc.scan_ops != 0;
    for (std::size_t i = b0; i < b1; ++i) {
      entry_q[i - b0] = static_cast<std::int32_t>(i);
      // Warm the block while building its queue: the op sweeps reach
      // these packets hundreds of nanoseconds from now, so the header
      // line prefetch and — when the program scans payloads — the
      // payload first-touch can complete in their shadow.
      const netsim::Packet& p = pkt(static_cast<std::int32_t>(i));
      __builtin_prefetch(&p);
      if (scans) __builtin_prefetch(p.payload.data());
    }
  }
  for (const std::int32_t pc : tc.topo) {
    auto& q = vec_q_[static_cast<std::size_t>(pc)];
    if (q.empty()) continue;
    const ThreadedOp o = code[pc];
    switch (o.op) {
      case TOp::kCmpRaw8:
        for (const std::int32_t li : q) {
          const auto* base = reinterpret_cast<const std::uint8_t*>(&pkt(li));
          sink(cmp_branch(o, base[o.off]), li);
        }
        break;
      case TOp::kCmpRaw16:
        for (const std::int32_t li : q) {
          const auto* base = reinterpret_cast<const std::uint8_t*>(&pkt(li));
          sink(cmp_branch(o, load_u16(base + o.off)), li);
        }
        break;
      case TOp::kCmpRaw32:
        for (const std::int32_t li : q) {
          const auto* base = reinterpret_cast<const std::uint8_t*>(&pkt(li));
          sink(cmp_branch(o, load_u32(base + o.off)), li);
        }
        break;
      case TOp::kCmpGen:
        for (const std::int32_t li : q) {
          sink(cmp_branch(o, read_packet_field(pkt(li), o.f1)), li);
        }
        break;
      case TOp::kMaskCmp:
        for (const std::int32_t li : q) {
          const netsim::Packet& in = pkt(li);
          const auto* base = reinterpret_cast<const std::uint8_t*>(&in);
          sink(cmp_branch(o, load_masked(o, base, in) & o.k2), li);
        }
        break;
      case TOp::kContains: {
        const Needle& n = needles[static_cast<std::size_t>(o.k1)];
        for (const std::int32_t li : q) {
          sink(payload_contains(pkt(li).payload, n) ? o.t : o.f, li);
        }
        break;
      }
      case TOp::kContainsOr: {
        const Needle& n1 = needles[static_cast<std::size_t>(o.k1)];
        const Needle& n2 = needles[static_cast<std::size_t>(o.k2)];
        for (const std::int32_t li : q) {
          sink(payload_contains_either(pkt(li).payload, n1, n2) ? o.t : o.f,
               li);
        }
        break;
      }
      case TOp::kProg: {
        const Program& prog =
            table_.preds[static_cast<std::size_t>(o.aux)].prog;
        for (const std::int32_t li : q) {
          sink(run_program(prog, pkt(li)) != 0 ? o.t : o.f, li);
        }
        break;
      }
      default:  // kGeneric never qualifies; terminals never enter topo
        break;
    }
    q.clear();
  }
  // Terminal pass, input order — the one place state may be touched.
  for (std::size_t i = b0; i < b1; ++i) {
    const std::int32_t gi = idx(i);
    const netsim::Packet* in = &packets[static_cast<std::size_t>(gi)];
    const ThreadedOp& o = code[vec_term_[i]];
    out.matched.push_back(o.entry);
    if (o.op == TOp::kForward) {
      BatchOutput::Send& slot = out.next_slot();
      slot.view_ = in;  // single unmodified send: forward by view
      slot.port = o.port;
      slot.src = gi;
      ++out.used_;
    } else if (o.op != TOp::kDrop) {
      cur_ = in;
      env_.input_packet = in;
      apply_leaf_batch(table_.leaves[static_cast<std::size_t>(o.aux)], *in, gi,
                       out);
    }
  }
}

template <typename IdxFn>
void DataplaneEngine::batch_threaded(std::span<const netsim::Packet> packets,
                                     std::size_t count, IdxFn idx,
                                     BatchOutput& out) {
  // Large generic-free batches take the vectored executor (see the
  // comment above batch_vectored); everything else runs the scalar
  // dispatch loop below.
  if (count >= kVectoredMinBatch && threaded_->generic_ops == 0 &&
      !threaded_->topo.empty()) {
    batch_vectored(packets, count, idx, out);
    return;
  }
  out.matched.reserve(out.matched.size() + count);
  const ThreadedOp* const code = threaded_->code.data();
  const std::vector<Needle>& needles = table_.needles;
  const std::int32_t entry_pc = threaded_->entry_pc;
  std::size_t i = 0;
  std::int32_t gi = 0;
  const netsim::Packet* in = nullptr;
  const std::uint8_t* base = nullptr;
  std::int32_t pc = 0;
  const ThreadedOp* op = nullptr;

#if NFACTOR_DATAPLANE_THREADED
  // The dispatch machine is cloned from run_threaded (label addresses
  // are function-local) with the batch loop folded *into* it: terminal
  // ops write their output and jump straight to the next packet's
  // entry, so the steady state has no per-packet call/return and no
  // terminal re-decode. Pure terminals (kForward/kDrop) finish without
  // environment setup or leaf-table access — the common case for
  // filter-shaped NFs.
  static const void* const kDispatch[] = {
      &&op_cmp_raw8,  &&op_cmp_raw16,   &&op_cmp_raw32, &&op_cmp_gen,
      &&op_mask_cmp,  &&op_contains,    &&op_contains_or,
      &&op_prog,      &&op_generic,
      &&op_forward,   &&op_drop,        &&op_leaf,
  };
#define NFACTOR_TC_DISPATCH()                         \
  op = code + pc;                                     \
  goto* kDispatch[static_cast<std::size_t>(op->op)]

next_packet:
  if (i == count) goto batch_done;
  gi = idx(i);
  ++i;
  in = &packets[static_cast<std::size_t>(gi)];
  base = reinterpret_cast<const std::uint8_t*>(in);
  pc = entry_pc;
  NFACTOR_TC_DISPATCH();
op_cmp_raw8:
  pc = cmp_branch(*op, base[op->off]);
  NFACTOR_TC_DISPATCH();
op_cmp_raw16:
  pc = cmp_branch(*op, load_u16(base + op->off));
  NFACTOR_TC_DISPATCH();
op_cmp_raw32:
  pc = cmp_branch(*op, load_u32(base + op->off));
  NFACTOR_TC_DISPATCH();
op_cmp_gen:
  pc = cmp_branch(*op, read_packet_field(*in, op->f1));
  NFACTOR_TC_DISPATCH();
op_mask_cmp:
  pc = cmp_branch(*op, load_masked(*op, base, *in) & op->k2);
  NFACTOR_TC_DISPATCH();
op_contains:
  pc = payload_contains(in->payload,
                        needles[static_cast<std::size_t>(op->k1)])
           ? op->t
           : op->f;
  NFACTOR_TC_DISPATCH();
op_contains_or:
  pc = payload_contains_either(in->payload,
                               needles[static_cast<std::size_t>(op->k1)],
                               needles[static_cast<std::size_t>(op->k2)])
           ? op->t
           : op->f;
  NFACTOR_TC_DISPATCH();
op_prog:
  pc = run_program(table_.preds[static_cast<std::size_t>(op->aux)].prog,
                   *in) != 0
           ? op->t
           : op->f;
  NFACTOR_TC_DISPATCH();
op_generic: {
  cur_ = in;
  env_.input_packet = in;
  bool t;
  try {
    t = symex::eval_concrete_bool(
        table_.preds[static_cast<std::size_t>(op->aux)].expr, env_);
  } catch (const std::exception&) {
    pc = op->x;
    NFACTOR_TC_DISPATCH();
  }
  pc = t ? op->t : op->f;
  NFACTOR_TC_DISPATCH();
}
op_forward: {
  out.matched.push_back(op->entry);
  BatchOutput::Send& slot = out.next_slot();
  slot.view_ = in;  // single unmodified send: forward by view
  slot.port = op->port;
  slot.src = gi;
  ++out.used_;
  goto next_packet;
}
op_drop:
  out.matched.push_back(op->entry);
  goto next_packet;
op_leaf:
  out.matched.push_back(op->entry);
  cur_ = in;
  env_.input_packet = in;
  apply_leaf_batch(table_.leaves[static_cast<std::size_t>(op->aux)], *in, gi,
                   out);
  goto next_packet;
batch_done:;
#undef NFACTOR_TC_DISPATCH

#else  // portable switch fallback — per-packet run_threaded + terminals
  (void)needles;
  (void)entry_pc;
  (void)base;
  (void)pc;
  for (; i < count; ++i) {
    gi = idx(i);
    in = &packets[static_cast<std::size_t>(gi)];
    op = code + run_threaded(*in);
    out.matched.push_back(op->entry);
    if (op->op == TOp::kForward) {
      BatchOutput::Send& slot = out.next_slot();
      slot.view_ = in;  // single unmodified send: forward by view
      slot.port = op->port;
      slot.src = gi;
      ++out.used_;
      continue;
    }
    if (op->op == TOp::kDrop) continue;
    cur_ = in;
    env_.input_packet = in;
    apply_leaf_batch(table_.leaves[static_cast<std::size_t>(op->aux)], *in, gi,
                     out);
  }
#endif
  OBS_COUNT_N("dataplane.packets", count);
}

void DataplaneEngine::execute_batch_threaded(
    std::span<const netsim::Packet> packets, BatchOutput& out) {
  batch_threaded(packets, packets.size(), SeqIdx{}, out);
}

void DataplaneEngine::execute_indexed_threaded(
    std::span<const netsim::Packet> packets,
    std::span<const std::int32_t> idx, BatchOutput& out) {
  batch_threaded(packets, idx.size(), ArrIdx{idx.data()}, out);
}

}  // namespace nfactor::dataplane
