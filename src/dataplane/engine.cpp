#include "dataplane/engine.h"

#include <algorithm>
#include <cstring>
#include <set>
#include <sstream>
#include <stdexcept>
#include <unordered_map>
#include <utility>

#include "dataplane/threaded.h"
#include "obs/obs.h"

namespace nfactor::dataplane {

namespace {

using runtime::Int;
using runtime::Value;
using symex::SymKind;
using symex::SymRef;

Int mac_to_int(const netsim::MacAddr& m) {
  Int out = 0;
  for (int i = 0; i < 6; ++i) out = out << 8 | m[static_cast<std::size_t>(i)];
  return out;
}

}  // namespace

std::optional<PacketField> packet_field_from_name(std::string_view name) {
  if (name == "eth_src") return PacketField::kEthSrc;
  if (name == "eth_dst") return PacketField::kEthDst;
  if (name == "eth_type") return PacketField::kEthType;
  if (name == "ip_src") return PacketField::kIpSrc;
  if (name == "ip_dst") return PacketField::kIpDst;
  if (name == "ip_proto") return PacketField::kIpProto;
  if (name == "ip_ttl") return PacketField::kIpTtl;
  if (name == "ip_id") return PacketField::kIpId;
  if (name == "ip_tos") return PacketField::kIpTos;
  if (name == "sport") return PacketField::kSport;
  if (name == "dport") return PacketField::kDport;
  if (name == "tcp_flags") return PacketField::kTcpFlags;
  if (name == "tcp_seq") return PacketField::kTcpSeq;
  if (name == "tcp_ack") return PacketField::kTcpAck;
  if (name == "tcp_win") return PacketField::kTcpWin;
  if (name == "len") return PacketField::kLen;
  if (name == "in_port") return PacketField::kInPort;
  return std::nullopt;
}

runtime::Int read_packet_field(const netsim::Packet& p, PacketField f) {
  switch (f) {
    case PacketField::kEthSrc: return mac_to_int(p.eth_src);
    case PacketField::kEthDst: return mac_to_int(p.eth_dst);
    case PacketField::kEthType: return p.eth_type;
    case PacketField::kIpSrc: return p.ip_src;
    case PacketField::kIpDst: return p.ip_dst;
    case PacketField::kIpProto: return p.ip_proto;
    case PacketField::kIpTtl: return p.ip_ttl;
    case PacketField::kIpId: return p.ip_id;
    case PacketField::kIpTos: return p.ip_tos;
    case PacketField::kSport: return p.sport;
    case PacketField::kDport: return p.dport;
    case PacketField::kTcpFlags: return p.tcp_flags;
    case PacketField::kTcpSeq: return p.tcp_seq;
    case PacketField::kTcpAck: return p.tcp_ack;
    case PacketField::kTcpWin: return p.tcp_win;
    case PacketField::kLen: return static_cast<Int>(p.payload.size());
    case PacketField::kInPort: return p.in_port;
  }
  throw std::invalid_argument("unhandled PacketField");
}

// ---------------------------------------------------------------------------
// Config specialization
// ---------------------------------------------------------------------------

namespace {

/// Coarse value type of a provably *total* (throw-free under
/// eval_concrete) expression; kUnsafe when evaluation might throw.
/// Gates config substitution: substituting + rebuilding through the
/// folding builders is value-preserving only for total expressions —
/// a fold like `x || true -> true` would otherwise erase a throw the
/// interpreter still performs.
enum class SafeTy : std::uint8_t {
  kUnsafe, kScalar, kStr, kTuple, kList, kMap,
};

struct Classifier {
  const std::map<std::string, Value>* bindings;
  std::unordered_map<const symex::SymExpr*, SafeTy> memo;

  SafeTy run(const SymRef& e) {
    if (const auto it = memo.find(e.get()); it != memo.end()) return it->second;
    const SafeTy t = run_uncached(e);
    memo.emplace(e.get(), t);
    return t;
  }

  SafeTy run_uncached(const SymRef& e) {  // NOLINT(readability-function-cognitive-complexity)
    using lang::BinOp;
    switch (e->kind) {
      case SymKind::kConstInt:
      case SymKind::kConstBool:
        return SafeTy::kScalar;
      case SymKind::kConstStr:
        return SafeTy::kStr;
      case SymKind::kConstTuple:
        return SafeTy::kTuple;
      case SymKind::kConstList: {
        for (const auto& x : e->operands) {
          if (run(x) == SafeTy::kUnsafe) return SafeTy::kUnsafe;
        }
        return SafeTy::kList;
      }
      case SymKind::kVar: {
        const std::string& n = e->str_val;
        if (n.starts_with("undef$")) return SafeTy::kUnsafe;
        if (n.starts_with("pkt.")) {
          const std::string_view field = std::string_view(n).substr(4);
          if (field == "__payload") return SafeTy::kScalar;
          return packet_field_from_name(field).has_value() ? SafeTy::kScalar
                                                           : SafeTy::kUnsafe;
        }
        // A store symbol is total only when we can see it is present
        // (it stays present: the model only overwrites state vars).
        if (bindings == nullptr) return SafeTy::kUnsafe;
        const auto it = bindings->find(n);
        if (it == bindings->end()) return SafeTy::kUnsafe;
        const Value& v = it->second;
        if (v.is_int() || v.is_bool()) return SafeTy::kScalar;
        if (v.is_str()) return SafeTy::kStr;
        if (v.is_tuple()) return SafeTy::kTuple;
        if (v.is_list()) return SafeTy::kList;
        if (v.is_map()) return SafeTy::kMap;
        return SafeTy::kUnsafe;
      }
      case SymKind::kUn:
        return run(e->operands[0]) == SafeTy::kScalar ? SafeTy::kScalar
                                                      : SafeTy::kUnsafe;
      case SymKind::kBin: {
        const SafeTy a = run(e->operands[0]);
        const SafeTy b = run(e->operands[1]);
        switch (e->bin_op) {
          case BinOp::kEq:
          case BinOp::kNe:
            // value_eq is total: any two evaluable values compare.
            return (a != SafeTy::kUnsafe && b != SafeTy::kUnsafe)
                       ? SafeTy::kScalar
                       : SafeTy::kUnsafe;
          case BinOp::kDiv:
          case BinOp::kMod:
            return (a == SafeTy::kScalar &&
                    symex::is_const_int(e->operands[1]) &&
                    e->operands[1]->int_val != 0)
                       ? SafeTy::kScalar
                       : SafeTy::kUnsafe;
          case BinOp::kIn:
            return SafeTy::kUnsafe;  // lowered to kContains; never seen
          default:
            return (a == SafeTy::kScalar && b == SafeTy::kScalar)
                       ? SafeTy::kScalar
                       : SafeTy::kUnsafe;
        }
      }
      case SymKind::kTupleExpr: {
        for (const auto& x : e->operands) {
          if (run(x) != SafeTy::kScalar) return SafeTy::kUnsafe;
        }
        return SafeTy::kTuple;
      }
      case SymKind::kListGet:
        return SafeTy::kUnsafe;  // index range throws
      case SymKind::kMapBase:
        return SafeTy::kMap;  // absent base reads as empty
      case SymKind::kMapStore: {
        const SafeTy k = run(e->operands[1]);
        return (run(e->operands[0]) == SafeTy::kMap &&
                (k == SafeTy::kScalar || k == SafeTy::kTuple) &&
                run(e->operands[2]) != SafeTy::kUnsafe)
                   ? SafeTy::kMap
                   : SafeTy::kUnsafe;
      }
      case SymKind::kMapGet:
        return SafeTy::kUnsafe;  // absent key throws
      case SymKind::kContains: {
        const SafeTy c = run(e->operands[0]);
        const SafeTy k = run(e->operands[1]);
        if (c == SafeTy::kMap) {
          return (k == SafeTy::kScalar || k == SafeTy::kTuple)
                     ? SafeTy::kScalar
                     : SafeTy::kUnsafe;
        }
        if (c == SafeTy::kList) {
          return k != SafeTy::kUnsafe ? SafeTy::kScalar : SafeTy::kUnsafe;
        }
        return SafeTy::kUnsafe;
      }
      case SymKind::kCall: {
        const std::string& fn = e->str_val;
        if (fn == "hash") {
          const SafeTy a = run(e->operands[0]);
          return (a == SafeTy::kScalar || a == SafeTy::kTuple)
                     ? SafeTy::kScalar
                     : SafeTy::kUnsafe;
        }
        if (fn == "len") {
          const SafeTy a = run(e->operands[0]);
          return (a == SafeTy::kStr || a == SafeTy::kTuple ||
                  a == SafeTy::kList || a == SafeTy::kMap)
                     ? SafeTy::kScalar
                     : SafeTy::kUnsafe;
        }
        if (fn == "payload_contains") {
          // eval only touches operand 1 (the needle) and the packet.
          return e->operands.size() == 2 && run(e->operands[1]) == SafeTy::kStr
                     ? SafeTy::kScalar
                     : SafeTy::kUnsafe;
        }
        if (fn == "list") {
          for (const auto& x : e->operands) {
            if (run(x) == SafeTy::kUnsafe) return SafeTy::kUnsafe;
          }
          return SafeTy::kList;
        }
        return SafeTy::kUnsafe;  // tuple_get/get range-throw; unknown calls
      }
      case SymKind::kPacket:
        return SafeTy::kUnsafe;
    }
    return SafeTy::kUnsafe;
  }
};

SymRef value_to_sym(const Value& v) {
  if (v.is_int()) return symex::make_int(v.as_int());
  if (v.is_bool()) return symex::make_bool(v.as_bool());
  if (v.is_str()) return symex::make_str(v.as_str());
  if (v.is_tuple()) return symex::make_tuple_const(v.as_tuple());
  if (v.is_list()) {
    std::vector<SymRef> elems;
    elems.reserve(v.as_list().items.size());
    for (const Value& x : v.as_list().items) {
      SymRef e = value_to_sym(x);
      if (e == nullptr) return nullptr;
      elems.push_back(std::move(e));
    }
    return symex::make_list_const(std::move(elems));
  }
  return nullptr;  // maps stay symbolic: MapBase already reads the store
}

struct Specializer {
  std::map<std::string, SymRef> subst;
  Classifier classify;

  SymRef operator()(const SymRef& e) {
    if (subst.empty()) return e;
    // Only rewrite expressions that mention a substituted symbol and
    // are provably total (see Classifier) — everything else keeps its
    // original shape and the generic evaluator's exact throw behavior.
    std::map<std::string, symex::VarClass> vars;
    symex::collect_vars(e, vars);
    bool mentions = false;
    for (const auto& [name, cls] : vars) {
      (void)cls;
      if (subst.count(name) != 0) {
        mentions = true;
        break;
      }
    }
    if (!mentions) return e;
    if (classify.run(e) == SafeTy::kUnsafe) return e;
    try {
      return symex::substitute(e, subst);
    } catch (const std::exception&) {
      return e;
    }
  }
};

// ---------------------------------------------------------------------------
// Stack-program compilation
// ---------------------------------------------------------------------------

constexpr int kMaxStackDepth = 64;
constexpr std::size_t kMaxProgramOps = 256;

/// Result type of a compiled subexpression: Bool values live on the
/// stack as 0/1, and the tag tells us what eval_concrete would have
/// wrapped them in (Value(bool) vs Value(Int)) — which matters for
/// Eq/Ne (variant-strict) and for action slots (as_int is
/// std::get<Int>, so a bool-producing expression must stay generic).
enum class Ty : std::uint8_t { kInt, kBool };

struct ProgCompiler {
  std::vector<Needle>* needles;

  Program compile_pred(const SymRef& e) { return compile(e, /*want_int=*/false); }
  Program compile_int(const SymRef& e) { return compile(e, /*want_int=*/true); }

 private:
  Program compile(const SymRef& e, bool want_int) {
    Program p;
    int depth = 0;
    int max_depth = 0;
    const auto ty = emit(e, p.ops, depth, max_depth);
    if (!ty.has_value() || max_depth > kMaxStackDepth ||
        p.ops.size() > kMaxProgramOps || (want_int && *ty != Ty::kInt)) {
      p.ops.clear();
    }
    return p;
  }

  std::optional<Ty> emit(const SymRef& e, std::vector<Op>& ops, int& depth,
                         int& max_depth) {  // NOLINT(misc-no-recursion)
    using lang::BinOp;
    const auto push = [&](OpCode code, Int imm) {
      ops.push_back(Op{code, imm});
      max_depth = std::max(max_depth, ++depth);
    };
    const auto binary = [&](OpCode code) {
      ops.push_back(Op{code, 0});
      --depth;
    };
    switch (e->kind) {
      case SymKind::kConstInt:
        push(OpCode::kPushConst, e->int_val);
        return Ty::kInt;
      case SymKind::kConstBool:
        push(OpCode::kPushConst, e->bool_val ? 1 : 0);
        return Ty::kBool;
      case SymKind::kVar: {
        if (!e->str_val.starts_with("pkt.")) return std::nullopt;
        const std::string_view field = std::string_view(e->str_val).substr(4);
        if (field == "__payload") {
          push(OpCode::kPushConst, 0);  // identity handle, same as the env
          return Ty::kInt;
        }
        const auto f = packet_field_from_name(field);
        if (!f.has_value()) return std::nullopt;
        push(OpCode::kPushField, static_cast<Int>(*f));
        return Ty::kInt;
      }
      case SymKind::kUn: {
        if (!emit(e->operands[0], ops, depth, max_depth).has_value()) {
          return std::nullopt;
        }
        if (e->un_op == lang::UnOp::kNeg) {
          ops.push_back(Op{OpCode::kNeg, 0});
          return Ty::kInt;
        }
        ops.push_back(Op{OpCode::kNot, 0});
        return Ty::kBool;
      }
      case SymKind::kBin: {
        // Div/Mod throw on a zero divisor; compile only the provably
        // nonzero-constant case so programs stay total.
        if (e->bin_op == BinOp::kDiv || e->bin_op == BinOp::kMod) {
          if (!symex::is_const_int(e->operands[1]) ||
              e->operands[1]->int_val == 0) {
            return std::nullopt;
          }
        }
        const auto a = emit(e->operands[0], ops, depth, max_depth);
        if (!a.has_value()) return std::nullopt;
        const auto b = emit(e->operands[1], ops, depth, max_depth);
        if (!b.has_value()) return std::nullopt;
        switch (e->bin_op) {
          case BinOp::kEq:
          case BinOp::kNe:
            // value_eq is variant-strict: Value(true) != Value(1). Only
            // type-matched operands reduce to an integer compare.
            if (*a != *b) return std::nullopt;
            binary(e->bin_op == BinOp::kEq ? OpCode::kEq : OpCode::kNe);
            return Ty::kBool;
          case BinOp::kLt: binary(OpCode::kLt); return Ty::kBool;
          case BinOp::kLe: binary(OpCode::kLe); return Ty::kBool;
          case BinOp::kGt: binary(OpCode::kGt); return Ty::kBool;
          case BinOp::kGe: binary(OpCode::kGe); return Ty::kBool;
          case BinOp::kAnd: binary(OpCode::kAnd); return Ty::kBool;
          case BinOp::kOr: binary(OpCode::kOr); return Ty::kBool;
          case BinOp::kAdd: binary(OpCode::kAdd); return Ty::kInt;
          case BinOp::kSub: binary(OpCode::kSub); return Ty::kInt;
          case BinOp::kMul: binary(OpCode::kMul); return Ty::kInt;
          case BinOp::kDiv: binary(OpCode::kDiv); return Ty::kInt;
          case BinOp::kMod: binary(OpCode::kMod); return Ty::kInt;
          case BinOp::kBitAnd: binary(OpCode::kBitAnd); return Ty::kInt;
          case BinOp::kBitOr: binary(OpCode::kBitOr); return Ty::kInt;
          case BinOp::kBitXor: binary(OpCode::kBitXor); return Ty::kInt;
          case BinOp::kShl: binary(OpCode::kShl); return Ty::kInt;
          case BinOp::kShr: binary(OpCode::kShr); return Ty::kInt;
          case BinOp::kIn: return std::nullopt;
        }
        return std::nullopt;
      }
      case SymKind::kCall: {
        if (e->str_val != "payload_contains" || e->operands.size() != 2 ||
            e->operands[1]->kind != SymKind::kConstStr) {
          return std::nullopt;
        }
        const std::string& needle = e->operands[1]->str_val;
        const auto it =
            std::find_if(needles->begin(), needles->end(),
                         [&](const Needle& n) { return n.text == needle; });
        std::size_t idx = static_cast<std::size_t>(it - needles->begin());
        if (it == needles->end()) {
          idx = needles->size();
          needles->push_back(make_needle(needle));
        }
        push(OpCode::kPayloadContains, static_cast<Int>(idx));
        return Ty::kBool;
      }
      default:
        return std::nullopt;
    }
  }
};

bool is_cmp_op(OpCode c) {
  return c == OpCode::kEq || c == OpCode::kNe || c == OpCode::kLt ||
         c == OpCode::kLe || c == OpCode::kGt || c == OpCode::kGe;
}

/// Mirror a comparison so the field ends up on the left:
/// `k < field` becomes `field > k`.
OpCode flip_cmp(OpCode c) {
  switch (c) {
    case OpCode::kLt: return OpCode::kGt;
    case OpCode::kLe: return OpCode::kGe;
    case OpCode::kGt: return OpCode::kLt;
    case OpCode::kGe: return OpCode::kLe;
    default: return c;  // kEq / kNe are symmetric
  }
}

struct CmpUnit {
  OpCode cmp;
  PacketField field;
  runtime::Int k;
};

/// Parse ops[at..at+2] as `field cmp const` (either operand order).
std::optional<CmpUnit> parse_cmp(const std::vector<Op>& ops, std::size_t at) {
  if (at + 3 > ops.size() || !is_cmp_op(ops[at + 2].code)) return std::nullopt;
  const Op& a = ops[at];
  const Op& b = ops[at + 1];
  if (a.code == OpCode::kPushField && b.code == OpCode::kPushConst) {
    return CmpUnit{ops[at + 2].code, static_cast<PacketField>(a.imm), b.imm};
  }
  if (a.code == OpCode::kPushConst && b.code == OpCode::kPushField) {
    return CmpUnit{flip_cmp(ops[at + 2].code), static_cast<PacketField>(b.imm),
                   a.imm};
  }
  return std::nullopt;
}

/// Peephole-recognize the superinstruction shapes (see FusedPred).
FusedPred fuse(const Program& prog) {
  FusedPred f;
  const auto& ops = prog.ops;
  if (ops.size() == 1 && ops[0].code == OpCode::kPayloadContains) {
    f.kind = FusedPred::Kind::kContains;
    f.k1 = ops[0].imm;
  } else if (ops.size() == 3 && ops[0].code == OpCode::kPayloadContains &&
             ops[1].code == OpCode::kPayloadContains &&
             (ops[2].code == OpCode::kOr || ops[2].code == OpCode::kAnd)) {
    f.kind = FusedPred::Kind::kContains2;
    f.k1 = ops[0].imm;
    f.k2 = ops[1].imm;
    f.disjunction = ops[2].code == OpCode::kOr;
  } else if (ops.size() == 3) {
    if (const auto c = parse_cmp(ops, 0)) {
      f.kind = FusedPred::Kind::kCmp;
      f.cmp1 = c->cmp;
      f.f1 = c->field;
      f.k1 = c->k;
    }
  } else if (ops.size() == 7 &&
             (ops[6].code == OpCode::kOr || ops[6].code == OpCode::kAnd)) {
    const auto a = parse_cmp(ops, 0);
    const auto b = parse_cmp(ops, 3);
    if (a && b) {
      f.kind = FusedPred::Kind::kCmp2;
      f.cmp1 = a->cmp;
      f.f1 = a->field;
      f.k1 = a->k;
      f.cmp2 = b->cmp;
      f.f2 = b->field;
      f.k2 = b->k;
      f.disjunction = ops[6].code == OpCode::kOr;
    }
  }
  return f;
}

CompiledLeaf compile_leaf(const model::ModelEntry& e, int entry,
                          Specializer& spec, ProgCompiler& pc) {
  CompiledLeaf leaf;
  leaf.entry = entry;
  for (const auto& a : e.flow_action) {
    CompiledSend send;
    for (const auto& [field, expr] : a.rewrites) {
      CompiledWrite w;
      w.field = field;
      w.expr = spec(expr);
      w.prog = pc.compile_int(w.expr);
      send.writes.push_back(std::move(w));
    }
    send.port_expr = spec(a.port);
    send.port_prog = pc.compile_int(send.port_expr);
    if (send.port_prog.ops.size() == 1 &&
        send.port_prog.ops[0].code == OpCode::kPushConst) {
      send.const_port = true;
      send.port_const = send.port_prog.ops[0].imm;
    }
    leaf.sends.push_back(std::move(send));
  }
  for (const auto& [var, expr] : e.state_action) {
    CompiledUpdate u;
    u.var = var;
    u.expr = spec(expr);
    u.prog = pc.compile_int(u.expr);
    // Single-level self-store: var := var{key -> val}. The engine sets
    // one map slot in place instead of materializing a full copy.
    if (u.expr->kind == symex::SymKind::kMapStore &&
        u.expr->operands[0]->kind == symex::SymKind::kMapBase &&
        u.expr->operands[0]->str_val == var) {
      u.map_set = true;
      u.key_expr = u.expr->operands[1];
      u.val_expr = u.expr->operands[2];
      u.val_prog = pc.compile_int(u.val_expr);
    }
    leaf.updates.push_back(std::move(u));
  }
  return leaf;
}

}  // namespace

// ---------------------------------------------------------------------------
// compile()
// ---------------------------------------------------------------------------

CompiledTable compile(const model::Model& m, const CompileOptions& opts) {
  OBS_SPAN("dataplane.compile");
  CompiledTable t;
  t.nf_name = m.nf_name;

  Specializer spec{{}, Classifier{opts.bindings, {}}};
  if (opts.bindings != nullptr) {
    for (const std::string& name : m.cfg_vars) {
      const auto it = opts.bindings->find(name);
      if (it == opts.bindings->end()) continue;
      if (SymRef v = value_to_sym(it->second)) {
        spec.subst.emplace(name, std::move(v));
      }
    }
  }

  std::vector<FddRule> rules;
  rules.reserve(m.entries.size());
  for (std::size_t i = 0; i < m.entries.size(); ++i) {
    const model::ModelEntry& e = m.entries[i];
    FddRule r;
    r.entry = static_cast<int>(i);
    bool feasible = true;
    const auto add = [&](const SymRef& c) {
      if (!feasible) return;
      SymRef s = spec(c);
      if (symex::is_const_bool(s)) {
        // Specialization is gated on totality, so a constant verdict is
        // exactly what the interpreter would compute for this packet-
        // independent atom: true -> drop the test, false -> dead entry.
        feasible = s->bool_val;
        return;
      }
      r.atoms.push_back(std::move(s));
    };
    for (const auto& c : e.config_match) add(c);
    for (const auto& c : e.flow_match) add(c);
    for (const auto& c : e.state_match) add(c);
    if (feasible) rules.push_back(std::move(r));
  }

  const Fdd fdd = build_fdd(rules, opts.fdd);

  ProgCompiler pc{&t.needles};
  t.preds.reserve(fdd.atoms.size());
  for (const SymRef& a : fdd.atoms) {
    CompiledPred p;
    p.expr = a;
    p.prog = pc.compile_pred(a);
    p.fused = fuse(p.prog);
    if (p.prog.compiled()) ++t.compiled_preds;
    t.preds.push_back(std::move(p));
  }

  // Leaves: slot 0 is the default drop; matched entries follow in
  // ascending entry order (deterministic, and the dump reads naturally).
  std::set<int> used;
  const auto note = [&](FddRef r) {
    if (is_leaf(r) && leaf_entry(r) >= 0) used.insert(leaf_entry(r));
  };
  note(fdd.root);
  for (const FddNode& n : fdd.nodes) {
    note(n.on_true);
    note(n.on_false);
    note(n.on_except);
  }
  std::map<int, std::int32_t> leaf_of;
  t.leaves.push_back(CompiledLeaf{});
  leaf_of[-1] = 0;
  for (const int e : used) {
    leaf_of[e] = static_cast<std::int32_t>(t.leaves.size());
    t.leaves.push_back(
        compile_leaf(m.entries[static_cast<std::size_t>(e)], e, spec, pc));
  }

  const auto xlate = [&](FddRef r) -> std::int32_t {
    return is_leaf(r) ? ~leaf_of.at(leaf_entry(r)) : r;
  };
  t.nodes.reserve(fdd.nodes.size());
  for (const FddNode& n : fdd.nodes) {
    t.nodes.push_back(FlatNode{n.atom, xlate(n.on_true), xlate(n.on_false),
                               xlate(n.on_except)});
  }
  t.root = xlate(fdd.root);
  t.stats = fdd.stats;
  t.pure_filter = true;
  for (const CompiledPred& p : t.preds) {
    if (p.fused.kind == FusedPred::Kind::kNone) t.pure_filter = false;
  }
  for (const CompiledLeaf& l : t.leaves) {
    if (!l.updates.empty()) t.pure_filter = false;
    for (const CompiledSend& s : l.sends) {
      if (!s.writes.empty() || !s.const_port) t.pure_filter = false;
    }
  }
  OBS_GAUGE("dataplane.compile.nodes", t.nodes.size());
  OBS_GAUGE("dataplane.compile.compiled_preds", t.compiled_preds);
  return t;
}

// ---------------------------------------------------------------------------
// to_text()
// ---------------------------------------------------------------------------

std::string CompiledTable::to_text() const {
  std::ostringstream os;
  os << "# nfactor dataplane table v1\n";
  os << "nf: " << nf_name << "\n";
  os << "rules: " << stats.rules << " (infeasible pruned: " << stats.infeasible
     << ")\n";
  os << "atoms: " << stats.atoms
     << " (complement-unified: " << stats.complement_pairs << ")\n";
  os << "nodes: " << nodes.size() << " (memo hits: " << stats.memo_hits
     << ", cons hits: " << stats.cons_hits << ")\n";
  os << "leaves: " << leaves.size() << "\n";
  os << "compiled-preds: " << compiled_preds << "/" << preds.size() << "\n";
  os << "mode: " << (pure_filter ? "pure-filter" : "general") << "\n";
  const auto edge = [](std::int32_t r) {
    return r >= 0 ? "n" + std::to_string(r) : "L" + std::to_string(~r);
  };
  if (!needles.empty()) {
    os << "needles:\n";
    for (std::size_t i = 0; i < needles.size(); ++i) {
      os << "  s" << i << ": \"" << needles[i].text << "\"\n";
    }
  }
  os << "preds:\n";
  for (std::size_t i = 0; i < preds.size(); ++i) {
    const char* tag = preds[i].fused.kind != FusedPred::Kind::kNone ? "fuse"
                      : preds[i].prog.compiled()                    ? "prog"
                                                                    : "gen ";
    os << "  p" << i << " [" << tag << "] " << symex::to_string(preds[i].expr)
       << "\n";
  }
  os << "nodes (root = " << edge(root) << "):\n";
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    const FlatNode& n = nodes[i];
    os << "  n" << i << ": p" << n.pred << " -> t:" << edge(n.on_true)
       << " f:" << edge(n.on_false) << " !:" << edge(n.on_except) << "\n";
  }
  os << "leaves:\n";
  for (std::size_t i = 0; i < leaves.size(); ++i) {
    const CompiledLeaf& l = leaves[i];
    os << "  L" << i << ": ";
    if (l.entry < 0) {
      os << "drop\n";
      continue;
    }
    os << "entry " << l.entry << "\n";
    for (const CompiledSend& s : l.sends) {
      os << "      send -> port " << symex::to_string(s.port_expr)
         << (s.port_prog.compiled() ? "" : " [gen]") << "\n";
      for (const CompiledWrite& w : s.writes) {
        os << "        set " << w.field << " := " << symex::to_string(w.expr)
           << (w.prog.compiled() ? "" : " [gen]") << "\n";
      }
    }
    for (const CompiledUpdate& u : l.updates) {
      os << "      state " << u.var << " := " << symex::to_string(u.expr);
      if (u.map_set) {
        os << " [set]";
      } else if (!u.prog.compiled()) {
        os << " [gen]";
      }
      os << "\n";
    }
  }
  return os.str();
}

// ---------------------------------------------------------------------------
// DataplaneEngine
// ---------------------------------------------------------------------------

namespace {

/// Containers in a Value are shared_ptrs; a caller's store (and any
/// ModelInterpreter built from it) may alias them. The engine mutates
/// its maps in place (CompiledUpdate::map_set), so it must own every
/// container outright.
Value deep_copy_value(const Value& v);

/// A Value headed for store_ must not alias any store_ container
/// (env_.map_value hands out aliases; so does a bare-variable read).
/// Scalars pass through untouched.
Value own(Value v) {
  if (v.is_map() || v.is_list()) return deep_copy_value(v);
  return v;
}

Value deep_copy_value(const Value& v) {
  if (v.is_map()) {
    auto m = std::make_shared<runtime::MapV>();
    for (const auto& [k, mv] : v.as_map().items) {
      m->items.emplace(k, deep_copy_value(mv));
    }
    return Value(std::move(m));
  }
  if (v.is_list()) {
    auto l = std::make_shared<runtime::ListV>();
    l->items.reserve(v.as_list().items.size());
    for (const auto& lv : v.as_list().items) {
      l->items.push_back(deep_copy_value(lv));
    }
    return Value(std::move(l));
  }
  return v;
}

}  // namespace

DataplaneEngine::DataplaneEngine(const CompiledTable& table,
                                 std::map<std::string, runtime::Value> store,
                                 EngineOptions opts)
    : table_(table), store_(std::move(store)) {
  if (opts.tier == Tier::kThreaded) {
    threaded_ = std::make_unique<ThreadedCode>(lower_threaded(table));
  }
  for (auto& [name, v] : store_) v = deep_copy_value(v);
  // One environment for the engine's whole life: the closures chase
  // cur_ / store_ through `this`, so per-packet setup is two pointer
  // stores instead of the interpreter's per-entry std::function builds.
  env_.var = [this](const std::string& name) -> Value {
    if (name.starts_with("pkt.")) {
      const std::string field = name.substr(4);
      if (field == "__payload") {
        return Value(static_cast<Int>(0));  // identity handle
      }
      return Value(runtime::get_packet_field(*cur_, field));
    }
    const auto it = store_.find(name);
    if (it == store_.end()) throw std::out_of_range("unknown symbol " + name);
    return it->second;
  };
  env_.map_base = [this](const std::string& name) -> const runtime::MapV* {
    const auto it = store_.find(name);
    if (it == store_.end() || !it->second.is_map()) return nullptr;
    return &it->second.as_map();
  };
  // Zero-copy map reads: m[k] and k-in-m alias the engine's map instead
  // of materializing a copy per evaluation. Everything staged back into
  // store_ is deep-copied first (apply_leaf), keeping the invariant that
  // each store_ container is reachable only through its own variable.
  env_.map_value = [this](const std::string& name) -> const Value* {
    const auto it = store_.find(name);
    if (it == store_.end() || !it->second.is_map()) return nullptr;
    return &it->second;
  };
}

DataplaneEngine::~DataplaneEngine() = default;  // ThreadedCode complete here

const runtime::Value* DataplaneEngine::state(const std::string& name) const {
  const auto it = store_.find(name);
  return it == store_.end() ? nullptr : &it->second;
}

void DataplaneEngine::set_state(const std::string& name, runtime::Value v) {
  store_[name] = deep_copy_value(v);
}

// ---------------------------------------------------------------------------
// Payload scan
// ---------------------------------------------------------------------------

Needle make_needle(std::string text) {
  Needle n;
  n.text = std::move(text);
  n.use_bmh = n.text.size() >= kBmhMinNeedle;
  // Horspool shift table: on a mismatch, shift by the distance from the
  // haystack byte under the needle's last position to that byte's
  // rightmost occurrence in needle[0..len-2]; bytes not in the needle
  // shift a full needle length. (Needle lengths are bounded by
  // kMaxProgramOps-scale literals, far below 255, so uint8 shifts fit.)
  // Built even below the use_bmh threshold — every shift is >= 1, so
  // scan_bmh terminates on any Needle this function returns (the
  // payload-scan microbench drives it across the whole length range).
  const std::size_t len = n.text.size();
  n.skip.fill(static_cast<std::uint8_t>(len));
  for (std::size_t i = 0; i + 1 < len; ++i) {
    n.skip[static_cast<std::uint8_t>(n.text[i])] =
        static_cast<std::uint8_t>(len - 1 - i);
  }
  return n;
}

// scan_memchr_hop / scan_bmh / scan_adaptive / payload_contains are
// defined inline in engine.h so both execution tiers inline them.

runtime::Int DataplaneEngine::run_program(const Program& prog,
                                          const netsim::Packet& in) const {
  Int st[kMaxStackDepth];
  int sp = 0;
  for (const Op& op : prog.ops) {
    switch (op.code) {
      case OpCode::kPushConst: st[sp++] = op.imm; break;
      case OpCode::kPushField:
        st[sp++] = read_packet_field(in, static_cast<PacketField>(op.imm));
        break;
      case OpCode::kEq: --sp; st[sp - 1] = st[sp - 1] == st[sp] ? 1 : 0; break;
      case OpCode::kNe: --sp; st[sp - 1] = st[sp - 1] != st[sp] ? 1 : 0; break;
      case OpCode::kLt: --sp; st[sp - 1] = st[sp - 1] < st[sp] ? 1 : 0; break;
      case OpCode::kLe: --sp; st[sp - 1] = st[sp - 1] <= st[sp] ? 1 : 0; break;
      case OpCode::kGt: --sp; st[sp - 1] = st[sp - 1] > st[sp] ? 1 : 0; break;
      case OpCode::kGe: --sp; st[sp - 1] = st[sp - 1] >= st[sp] ? 1 : 0; break;
      case OpCode::kAdd: --sp; st[sp - 1] += st[sp]; break;
      case OpCode::kSub: --sp; st[sp - 1] -= st[sp]; break;
      case OpCode::kMul: --sp; st[sp - 1] *= st[sp]; break;
      case OpCode::kDiv: --sp; st[sp - 1] /= st[sp]; break;
      case OpCode::kMod:
        --sp;
        st[sp - 1] = ((st[sp - 1] % st[sp]) + st[sp]) % st[sp];
        break;
      case OpCode::kBitAnd: --sp; st[sp - 1] &= st[sp]; break;
      case OpCode::kBitOr: --sp; st[sp - 1] |= st[sp]; break;
      case OpCode::kBitXor: --sp; st[sp - 1] ^= st[sp]; break;
      case OpCode::kShl: --sp; st[sp - 1] <<= (st[sp] & 63); break;
      case OpCode::kShr:
        --sp;
        st[sp - 1] = static_cast<Int>(static_cast<std::uint64_t>(st[sp - 1]) >>
                                      (st[sp] & 63));
        break;
      case OpCode::kAnd:
        --sp;
        st[sp - 1] = (st[sp - 1] != 0 && st[sp] != 0) ? 1 : 0;
        break;
      case OpCode::kOr:
        --sp;
        st[sp - 1] = (st[sp - 1] != 0 || st[sp] != 0) ? 1 : 0;
        break;
      case OpCode::kNot: st[sp - 1] = st[sp - 1] == 0 ? 1 : 0; break;
      case OpCode::kNeg: st[sp - 1] = -st[sp - 1]; break;
      case OpCode::kPayloadContains:
        st[sp++] = payload_contains(
                       in.payload,
                       table_.needles[static_cast<std::size_t>(op.imm)])
                       ? 1
                       : 0;
        break;
    }
  }
  return st[0];
}

namespace {

inline bool eval_cmp(OpCode c, runtime::Int v, runtime::Int k) {
  switch (c) {
    case OpCode::kEq: return v == k;
    case OpCode::kNe: return v != k;
    case OpCode::kLt: return v < k;
    case OpCode::kLe: return v <= k;
    case OpCode::kGt: return v > k;
    default: return v >= k;  // kGe (fuse() only emits kEq..kGe here)
  }
}

/// Evaluate a fused predicate (kind != kNone). Two-term forms
/// short-circuit on the first term exactly when its value decides the op
/// (true for ||, false for &&); neither term can have side effects, so
/// this matches full evaluation. Fused forms are total — never throw.
inline bool eval_fused(const FusedPred& fp, const netsim::Packet& in,
                       const std::vector<Needle>& needles) {
  switch (fp.kind) {
    case FusedPred::Kind::kCmp:
      return eval_cmp(fp.cmp1, read_packet_field(in, fp.f1), fp.k1);
    case FusedPred::Kind::kCmp2: {
      const bool a = eval_cmp(fp.cmp1, read_packet_field(in, fp.f1), fp.k1);
      return a == fp.disjunction
                 ? a
                 : eval_cmp(fp.cmp2, read_packet_field(in, fp.f2), fp.k2);
    }
    case FusedPred::Kind::kContains:
      return payload_contains(in.payload,
                              needles[static_cast<std::size_t>(fp.k1)]);
    default: {  // kContains2
      const bool a = payload_contains(
          in.payload, needles[static_cast<std::size_t>(fp.k1)]);
      return a == fp.disjunction
                 ? a
                 : payload_contains(in.payload,
                                    needles[static_cast<std::size_t>(fp.k2)]);
    }
  }
}

}  // namespace

const CompiledLeaf& DataplaneEngine::match(const netsim::Packet& in) {
  cur_ = &in;
  env_.input_packet = &in;
  std::int32_t ref = table_.root;
  while (ref >= 0) {
    const FlatNode& n = table_.nodes[static_cast<std::size_t>(ref)];
    const CompiledPred& p = table_.preds[static_cast<std::size_t>(n.pred)];
    bool t;
    if (p.fused.kind != FusedPred::Kind::kNone) {
      t = eval_fused(p.fused, in, table_.needles);
    } else if (p.prog.compiled()) {
      t = run_program(p.prog, in) != 0;
    } else {
      try {
        t = symex::eval_concrete_bool(p.expr, env_);
      } catch (const std::exception&) {
        ref = n.on_except;
        continue;
      }
    }
    ref = t ? n.on_true : n.on_false;
  }
  return table_.leaves[static_cast<std::size_t>(~ref)];
}

void DataplaneEngine::apply_writes(netsim::Packet& p, const CompiledSend& s,
                                   const netsim::Packet& in) {
  for (const CompiledWrite& w : s.writes) {
    const Int v = w.prog.compiled()
                      ? run_program(w.prog, in)
                      : symex::eval_concrete(w.expr, env_).as_int();
    runtime::set_packet_field(p, w.field, v);
  }
}

runtime::Int DataplaneEngine::eval_port(const CompiledSend& s,
                                        const netsim::Packet& in) {
  return s.port_prog.compiled()
             ? run_program(s.port_prog, in)
             : symex::eval_concrete(s.port_expr, env_).as_int();
}

template <typename Emit>
void DataplaneEngine::apply_leaf(const CompiledLeaf& leaf,
                                 const netsim::Packet& in, Emit&& emit) {
  for (const CompiledSend& s : leaf.sends) emit(s);
  if (!leaf.updates.empty()) {
    // Evaluate every RHS against the pre-state, then commit — the same
    // atomic-transition rule as ModelInterpreter::process. Map-set
    // updates stage (slot, key, val) and write that one slot at commit;
    // the fallback stages a whole replacement Value. A throw anywhere in
    // the staging phase leaves the state untouched, exactly like the
    // interpreter's pre-commit evaluation.
    struct Staged {
      const std::string* var;
      runtime::MapV* map;  // non-null: in-place key -> val into this map
      runtime::Tuple key;
      Value val;
    };
    std::vector<Staged> staged;
    staged.reserve(leaf.updates.size());
    for (const CompiledUpdate& u : leaf.updates) {
      // No store_ insertion here: other RHS in this entry must see the
      // pre-state, including a variable's absence. (state_action is
      // keyed by variable, so at most one update targets each slot and
      // the MapV* stays valid through commit.)
      const auto it = store_.find(u.var);
      if (u.map_set && it != store_.end() && it->second.is_map()) {
        // materialize_map evaluates base, then key, then val; the base
        // is this very map, so only key/val remain.
        runtime::Tuple key =
            runtime::to_key(symex::eval_concrete(u.key_expr, env_));
        Value val = u.val_prog.compiled()
                        ? Value(run_program(u.val_prog, in))
                        : own(symex::eval_concrete(u.val_expr, env_));
        staged.push_back(Staged{&u.var, &it->second.as_map(), std::move(key),
                                std::move(val)});
        continue;
      }
      staged.push_back(Staged{&u.var, nullptr, {},
                              u.prog.compiled()
                                  ? Value(run_program(u.prog, in))
                                  : own(symex::eval_concrete(u.expr, env_))});
    }
    for (Staged& s : staged) {
      if (s.map != nullptr) {
        s.map->items.insert_or_assign(std::move(s.key), std::move(s.val));
      } else {
        store_[*s.var] = std::move(s.val);
      }
    }
  }
}

void DataplaneEngine::apply_leaf_batch(const CompiledLeaf& leaf,
                                       const netsim::Packet& in,
                                       std::int32_t src, BatchOutput& out) {
  apply_leaf(leaf, in, [&](const CompiledSend& s) {
    // Overwrite a retired slot: the packet assignment reuses the
    // slot's payload buffer, so the steady state allocates nothing.
    BatchOutput::Send& slot = out.next_slot();
    if (s.writes.empty()) {
      slot.view_ = &in;  // unmodified forward: borrow, don't copy
    } else {
      slot.view_ = nullptr;
      slot.owned_ = in;
      apply_writes(slot.owned_, s, in);
    }
    slot.port = static_cast<int>(s.const_port ? s.port_const
                                              : eval_port(s, in));
    slot.src = src;
    ++out.used_;  // commit only once the slot is fully valid
  });
}

namespace {

/// Index sources for the shared batch loop: sequential (execute_batch)
/// or gather through a shard's index array (execute_indexed).
struct SeqIdx {
  std::int32_t operator()(std::size_t i) const {
    return static_cast<std::int32_t>(i);
  }
};
struct ArrIdx {
  const std::int32_t* idx;
  std::int32_t operator()(std::size_t i) const { return idx[i]; }
};

}  // namespace

template <typename IdxFn>
void DataplaneEngine::batch_table(std::span<const netsim::Packet> packets,
                                  std::size_t count, IdxFn idx,
                                  BatchOutput& out) {
  out.matched.reserve(out.matched.size() + count);
  // Streamlined loop for stateless forward/drop tables: every pred is
  // fused (total — no throws, so on_except is unreachable) and every
  // send is an unmodified copy to a constant port. Keeping the generic
  // machinery out of the loop body roughly halves the per-packet cost.
  if (table_.pure_filter) {
    for (std::size_t i = 0; i < count; ++i) {
      const std::int32_t gi = idx(i);
      const netsim::Packet& in = packets[static_cast<std::size_t>(gi)];
      std::int32_t ref = table_.root;
      while (ref >= 0) {
        const FlatNode& n = table_.nodes[static_cast<std::size_t>(ref)];
        ref = eval_fused(table_.preds[static_cast<std::size_t>(n.pred)].fused,
                         in, table_.needles)
                  ? n.on_true
                  : n.on_false;
      }
      const CompiledLeaf& leaf = table_.leaves[static_cast<std::size_t>(~ref)];
      out.matched.push_back(leaf.entry);
      for (const CompiledSend& s : leaf.sends) {
        BatchOutput::Send& slot = out.next_slot();
        slot.view_ = &in;  // pure filters never rewrite: forward by view
        slot.port = static_cast<int>(s.port_const);
        slot.src = gi;
        ++out.used_;
      }
    }
    OBS_COUNT_N("dataplane.packets", count);
    return;
  }
  for (std::size_t i = 0; i < count; ++i) {
    const std::int32_t gi = idx(i);
    const netsim::Packet& in = packets[static_cast<std::size_t>(gi)];
    const CompiledLeaf& leaf = match(in);
    out.matched.push_back(leaf.entry);
    apply_leaf_batch(leaf, in, gi, out);
  }
  OBS_COUNT_N("dataplane.packets", count);
}

void DataplaneEngine::execute_batch(std::span<const netsim::Packet> packets,
                                    BatchOutput& out) {
  if (threaded_ != nullptr) {
    execute_batch_threaded(packets, out);
    return;
  }
  batch_table(packets, packets.size(), SeqIdx{}, out);
}

void DataplaneEngine::execute_indexed(std::span<const netsim::Packet> packets,
                                      std::span<const std::int32_t> idx,
                                      BatchOutput& out) {
  if (threaded_ != nullptr) {
    execute_indexed_threaded(packets, idx, out);
    return;
  }
  batch_table(packets, idx.size(), ArrIdx{idx.data()}, out);
}

model::ModelOutput DataplaneEngine::process(const netsim::Packet& in) {
  const CompiledLeaf* matched;
  if (threaded_ != nullptr) {
    const std::int32_t pc = run_threaded(in);
    // The terminal op carries its leaf index; generic leaf application
    // below needs the env wired to this packet (run_threaded only does
    // that lazily, when a generic predicate fires).
    cur_ = &in;
    env_.input_packet = &in;
    matched = &table_.leaves[static_cast<std::size_t>(
        threaded_->code[static_cast<std::size_t>(pc)].aux)];
  } else {
    matched = &match(in);
  }
  const CompiledLeaf& leaf = *matched;
  model::ModelOutput out;
  out.matched_entry = leaf.entry;
  apply_leaf(leaf, in, [&](const CompiledSend& s) {
    netsim::Packet p = in;
    if (!s.writes.empty()) apply_writes(p, s, in);
    const int port =
        static_cast<int>(s.const_port ? s.port_const : eval_port(s, in));
    out.sent.emplace_back(std::move(p), port);
  });
  return out;
}

}  // namespace nfactor::dataplane
