// Dataplane tier 2: threaded-code execution (docs/dataplane.md).
//
// Tier 1 walks the FlatNode array generically: every node re-inspects
// its predicate's FusedPred kind and comparison opcode, so each hop
// pays a chain of data-dependent branches before it even evaluates the
// packet. Tier 2 lowers the same array once, at engine construction,
// into a contiguous *threaded program*:
//
//   - predicates are *split*: an and/or/not tree (a fused two-term
//     pred, or a pure stack program reconstructed into its expression
//     tree) becomes a chain of single-test ops wired together by branch
//     targets, so conjunctions and disjunctions short-circuit — a
//     packet that fails `dport == 21` never pays the payload scan the
//     table walk's stack machine would have run unconditionally;
//   - each single test is one superinstruction: comparisons load the
//     field as a raw byte/half/word at a precomputed offset into
//     netsim::Packet (kCmpRaw8/16/32; computed fields keep the generic
//     reader via kCmpGen) and branch through a 3-bit relation mask —
//     no comparison-opcode dispatch at all; mask-tests, payload
//     needles, and the residual stack-program / symbolic fallbacks get
//     their own opcodes;
//   - branch targets are pre-resolved to instruction offsets; an edge
//     that pointed at node j becomes node j's entry pc, an edge that
//     pointed at leaf l becomes the pc of that leaf's *terminal op*.
//     Constant-port forward and drop leaves terminate the packet
//     without any environment setup (kForward/kDrop); everything else
//     falls back to the shared generic leaf application (kLeaf).
//
// Dispatch is computed goto (&&label address table) under GCC/Clang;
// configuring with -DNFACTOR_DATAPLANE_THREADED=OFF (or building with a
// compiler without the extension) selects a portable switch loop with
// identical semantics.
//
// Batches additionally get *vectored* execution when every test op is
// pure: instead of running each packet to completion (one long
// dependency chain of cache misses on big working sets), the executor
// sweeps the op graph once in topological order, each op draining a
// queue of packet indices, so loads are independent across packets and
// their misses overlap. Terminals still apply in input order — outputs
// and state transitions are byte-identical to the scalar loop. See
// batch_vectored in threaded.cpp.
//
// Both tiers share every piece of predicate fallback and leaf
// machinery in DataplaneEngine, and their equivalence is enforced
// corpus-wide by tests/dataplane_test.cpp and the fuzz oracle's
// threaded leg.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "dataplane/engine.h"

namespace nfactor::dataplane {

/// Threaded opcodes. The first block is the single-test shapes the
/// predicate splitter emits; kProg/kGeneric are the tier-1 fallbacks
/// (stack program / symbolic evaluator) for trees the splitter cannot
/// take apart; the terminal block ends a packet. Order matters: the
/// computed-goto label table in threaded.cpp is indexed by this enum.
enum class TOp : std::uint8_t {
  kCmpRaw8,   ///< u8  at off, relation-mask branch against k1
  kCmpRaw16,  ///< u16 at off
  kCmpRaw32,  ///< u32 at off
  kCmpGen,    ///< read_packet_field(f1) (computed fields: len, eth_*)
  kMaskCmp,     ///< (load & k2) vs k1 — the tcp_flags bit-test shape
  kContains,    ///< payload needle k1
  kContainsOr,  ///< needle k1 OR needle k2, one fused SWAR pass
  kProg,        ///< stack program preds[aux].prog
  kGeneric,   ///< symex::eval_concrete on preds[aux].expr (may throw)
  kForward,   ///< terminal: single const-port unmodified send
  kDrop,      ///< terminal: no sends, no updates
  kLeaf,      ///< terminal: generic leaf application (leaves[aux])
};

/// One direct-threaded instruction. Test ops use {t, f, x} as the pcs
/// to jump to on true/false/exception; terminal ops use {aux, entry,
/// port} to finish the packet without touching the leaf table on the
/// pure paths.
///
/// Comparisons are branchless inside the op: the loaded value's
/// relation to k1 indexes mask3 (bit 0 = less, bit 1 = equal, bit 2 =
/// greater), so one op covers all six comparison operators with zero
/// per-op comparison dispatch. cmp1 keeps the source operator purely
/// for the text rendering.
struct ThreadedOp {
  TOp op = TOp::kDrop;
  OpCode cmp1 = OpCode::kEq;  ///< source comparison (to_text only)
  std::uint8_t mask3 = 0;     ///< relation mask: bit per {lt, eq, gt}
  std::uint8_t w = 0;         ///< kMaskCmp load width (1/2/4; 0 = generic)
  PacketField f1{};
  std::uint16_t off = 0;  ///< raw byte offset into netsim::Packet
  std::int32_t t = 0;     ///< pc on true
  std::int32_t f = 0;     ///< pc on false
  std::int32_t x = 0;     ///< pc on exception (kGeneric only)
  runtime::Int k1 = 0, k2 = 0;  ///< constants / needle indices / masks
  std::int32_t aux = 0;   ///< pred index (kProg/kGeneric), leaf index (terminals)
  std::int32_t entry = -1;  ///< terminals: model entry (-1 = default drop)
  std::int32_t port = 0;    ///< kForward: the constant port
};

/// The lowered program: code[0..node_ops) holds the split test chains
/// (node i's entry is node_pc[i]; a node lowers to one *or more* ops),
/// code[node_ops..] holds one terminal per leaf.
struct ThreadedCode {
  std::vector<ThreadedOp> code;
  std::vector<std::int32_t> node_pc;  ///< entry pc per FlatNode
  /// Test-block pcs in topological order (every branch edge points to a
  /// later entry or a terminal), reachable ops only — the sweep order of
  /// the vectored batch executor. Empty when the entry is a terminal.
  std::vector<std::int32_t> topo;
  std::int32_t entry_pc = 0;
  std::size_t node_ops = 0;  ///< ops in the test block (>= nodes: splitting)
  std::size_t fused_ops = 0;    ///< single-test superinstruction ops
  std::size_t prog_ops = 0;     ///< ops running a whole stack program
  std::size_t generic_ops = 0;  ///< ops on the symbolic fallback
  std::size_t split_nodes = 0;  ///< nodes lowered to more than one op
  std::size_t scan_ops = 0;  ///< kContains + kContainsOr ops (payload readers)
  std::size_t pure_terminals = 0;  ///< kForward + kDrop terminals

  /// Deterministic text rendering (nf-synth --compile --tier 2).
  /// Byte-identical at any --jobs width and across dispatch modes.
  std::string to_text(const CompiledTable& table) const;
};

/// Lower a compiled table into threaded code. Pure function of the
/// table, so it is exactly as deterministic as compile() itself.
ThreadedCode lower_threaded(const CompiledTable& table);

/// True when this build dispatches by computed goto; false when the
/// portable switch fallback is active (NFACTOR_DATAPLANE_THREADED=0 or
/// a compiler without the labels-as-values extension).
bool threaded_dispatch_is_computed_goto();

}  // namespace nfactor::dataplane
