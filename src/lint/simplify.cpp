#include "lint/simplify.h"

#include <deque>
#include <map>
#include <set>
#include <utility>

#include "obs/obs.h"

namespace nfactor::lint {

namespace {

using analysis::ConstVal;

std::string base_of(const ir::Location& loc) {
  std::string base;
  return ir::split_field_loc(loc, &base, nullptr) ? base : loc;
}

using Lookup = std::function<ConstVal(const ir::Location&)>;

lang::ExprPtr make_literal(const ConstVal& v, lang::SourceLoc loc) {
  switch (v.kind) {
    case ConstVal::Kind::kInt: {
      auto e = std::make_unique<lang::IntLit>(v.i, loc);
      e->type = lang::Type::kInt;
      return e;
    }
    case ConstVal::Kind::kBool: {
      auto e = std::make_unique<lang::BoolLit>(v.b, loc);
      e->type = lang::Type::kBool;
      return e;
    }
    case ConstVal::Kind::kStr: {
      auto e = std::make_unique<lang::StrLit>(v.s, loc);
      e->type = lang::Type::kStr;
      return e;
    }
    default:
      return nullptr;
  }
}

bool is_literal(const lang::Expr& e) {
  return e.kind == lang::ExprKind::kIntLit ||
         e.kind == lang::ExprKind::kBoolLit ||
         e.kind == lang::ExprKind::kStrLit;
}

/// Replace `e` (or its maximal constant subtrees) with literals under
/// the node's fixpoint environment. Counts each replacement in *folds.
lang::ExprPtr fold_expr(const lang::Expr& e, const Lookup& lookup,
                        int* folds) {
  const ConstVal v = analysis::eval_const(e, lookup);
  if (v.is_const() && !is_literal(e)) {
    ++*folds;
    return make_literal(v, e.loc);
  }
  switch (e.kind) {
    case lang::ExprKind::kUnary: {
      const auto& u = static_cast<const lang::Unary&>(e);
      auto out = std::make_unique<lang::Unary>(
          u.op, fold_expr(*u.operand, lookup, folds), u.loc);
      out->type = u.type;
      return out;
    }
    case lang::ExprKind::kBinary: {
      const auto& b = static_cast<const lang::Binary&>(e);
      auto out = std::make_unique<lang::Binary>(
          b.op, fold_expr(*b.lhs, lookup, folds),
          fold_expr(*b.rhs, lookup, folds), b.loc);
      out->type = b.type;
      return out;
    }
    case lang::ExprKind::kCall: {
      const auto& c = static_cast<const lang::Call&>(e);
      std::vector<lang::ExprPtr> args;
      args.reserve(c.args.size());
      for (const auto& a : c.args) args.push_back(fold_expr(*a, lookup, folds));
      auto out =
          std::make_unique<lang::Call>(c.callee, std::move(args), c.loc);
      out->type = c.type;
      return out;
    }
    case lang::ExprKind::kIndex: {
      const auto& ix = static_cast<const lang::Index&>(e);
      auto out = std::make_unique<lang::Index>(
          fold_expr(*ix.base, lookup, folds),
          fold_expr(*ix.index, lookup, folds), ix.loc);
      out->type = ix.type;
      return out;
    }
    case lang::ExprKind::kTupleLit: {
      const auto& t = static_cast<const lang::TupleLit&>(e);
      std::vector<lang::ExprPtr> elems;
      elems.reserve(t.elems.size());
      for (const auto& x : t.elems) {
        elems.push_back(fold_expr(*x, lookup, folds));
      }
      auto out = std::make_unique<lang::TupleLit>(std::move(elems), t.loc);
      out->type = t.type;
      return out;
    }
    case lang::ExprKind::kListLit: {
      const auto& l = static_cast<const lang::ListLit&>(e);
      std::vector<lang::ExprPtr> elems;
      elems.reserve(l.elems.size());
      for (const auto& x : l.elems) {
        elems.push_back(fold_expr(*x, lookup, folds));
      }
      auto out = std::make_unique<lang::ListLit>(std::move(elems), l.loc);
      out->type = l.type;
      return out;
    }
    default:
      return e.clone();  // literals, VarRef, FieldRef, MapLit
  }
}

}  // namespace

analysis::ConstEnv config_env(const ir::Module& m) {
  // Globals evaluate in declaration order; an initializer may reference
  // earlier globals. Unknown references read Bottom (not Top: there is
  // no "later definition" to wait for at init time).
  analysis::ConstEnv globals_env;
  for (const auto& g : m.globals) {
    ConstVal v = analysis::eval_const(
        *g.init, [&globals_env](const ir::Location& loc) {
          const auto it = globals_env.find(loc);
          return it == globals_env.end() ? ConstVal::bottom() : it->second;
        });
    if (v.is_top()) v = ConstVal::bottom();
    globals_env[g.name] = v;
  }

  // Init-section statements may overwrite or add persistents.
  const analysis::ConstProp init_cp(m.init, globals_env);
  if (m.init.exit < 0 || !init_cp.node_executable(m.init.exit)) return {};

  analysis::ConstEnv out;
  for (const auto& v : m.persistent) {
    const ConstVal val = init_cp.value_in(m.init.exit, v);
    if (val.is_const()) out[v] = val;
  }
  // Anything the packet loop updates (weakly or strongly) is state, not
  // config.
  for (const auto& n : m.body.nodes) {
    for (const auto& d : n->defs()) {
      out.erase(d);
      out.erase(base_of(d));
    }
  }
  return out;
}

SimplifyStats simplify_module(ir::Module& m, const SimplifyOptions& opts) {
  SimplifyStats st;
  if (!opts.enabled) return st;

  obs::Span sp(obs::default_tracer(), "lint.simplify");
  sp.attr("nf", m.name);

  analysis::ConstEnv env;
  for (const auto& v : m.persistent) env[v] = ConstVal::bottom();
  for (const auto& g : m.globals) env[g.name] = ConstVal::bottom();
  if (opts.fold_config) {
    for (auto& [k, v] : config_env(m)) env[k] = v;
  }
  const analysis::ConstProp cp(m.body, std::move(env));
  ir::Cfg& cfg = m.body;

  // 1. Branches decided at fixpoint (only on executable nodes: an
  //    unreachable branch's environment is meaningless).
  std::map<int, int> decided;  // branch id -> taken successor slot
  for (const auto& n : cfg.nodes) {
    if (n->kind != ir::InstrKind::kBranch || n->succs.size() != 2) continue;
    if (!cp.node_executable(n->id)) continue;
    const ConstVal d = cp.branch_decision(n->id);
    if (d.kind == ConstVal::Kind::kBool) decided[n->id] = d.b ? 0 : 1;
  }

  // 2. resolve(): skip over chains of decided branches. A cycle of
  //    decided branches is a provably-infinite loop — bail out entirely.
  const auto resolve = [&](int t) -> int {
    std::set<int> seen;
    while (t >= 0 && decided.count(t)) {
      if (!seen.insert(t).second) return -1;
      t = cfg.node(t).succs[static_cast<std::size_t>(decided.at(t))];
    }
    return t;
  };

  // 3. Reachability over resolved edges; keep order stable by old id.
  std::set<int> keep;
  std::deque<int> wl;
  const int start = resolve(cfg.entry);
  if (start < 0) return SimplifyStats{};
  wl.push_back(start);
  keep.insert(start);
  while (!wl.empty()) {
    const int id = wl.front();
    wl.pop_front();
    for (const int s : cfg.node(id).succs) {
      const int t = resolve(s);
      if (t < 0) return SimplifyStats{};
      if (keep.insert(t).second) wl.push_back(t);
    }
  }
  if (!keep.count(cfg.exit) || !keep.count(cfg.entry) ||
      (m.recv_port_node >= 0 && !keep.count(m.recv_port_node))) {
    return SimplifyStats{};  // pruning would break the pipeline's anchors
  }

  // 4. Rebuild the CFG: clone kept nodes in old-id order, folding
  //    expressions of executable nodes under their fixpoint environments.
  const std::size_t old_real = cfg.real_nodes().size();
  std::map<int, int> remap;
  for (const auto& n : cfg.nodes) {
    if (keep.count(n->id)) {
      const int nid = static_cast<int>(remap.size());
      remap[n->id] = nid;
    }
  }

  ir::Cfg out;
  out.nodes.reserve(remap.size());
  for (const auto& n : cfg.nodes) {
    if (!keep.count(n->id)) continue;
    auto c = std::make_unique<ir::Instr>();
    c->kind = n->kind;
    c->id = remap.at(n->id);
    c->loc = n->loc;
    c->var = n->var;
    c->field = n->field;
    c->callee = n->callee;

    const bool fold = cp.node_executable(n->id);
    const int old_id = n->id;
    const Lookup lookup = [&cp, old_id](const ir::Location& loc) {
      return cp.value_in(old_id, loc);
    };
    const auto xform = [&](const lang::ExprPtr& e) -> lang::ExprPtr {
      if (!e) return nullptr;
      return fold ? fold_expr(*e, lookup, &st.exprs_folded) : e->clone();
    };
    c->index = xform(n->index);
    c->value = xform(n->value);
    c->aux = xform(n->aux);
    c->args.reserve(n->args.size());
    for (const auto& a : n->args) c->args.push_back(xform(a));

    c->succs.reserve(n->succs.size());
    for (const int s : n->succs) c->succs.push_back(remap.at(resolve(s)));
    out.nodes.push_back(std::move(c));
  }
  for (const auto& n : out.nodes) {
    for (const int s : n->succs) {
      out.nodes[static_cast<std::size_t>(s)]->preds.push_back(n->id);
    }
  }
  out.entry = remap.at(resolve(cfg.entry));
  out.exit = remap.at(cfg.exit);

  st.branches_pruned = static_cast<int>(decided.size());
  st.nodes_removed =
      static_cast<int>(old_real) - static_cast<int>(out.real_nodes().size());

  m.body = std::move(out);
  if (m.recv_port_node >= 0) m.recv_port_node = remap.at(m.recv_port_node);

  OBS_GAUGE("simplify.branches_pruned", st.branches_pruned);
  OBS_GAUGE("simplify.exprs_folded", st.exprs_folded);
  OBS_GAUGE("simplify.nodes_removed", st.nodes_removed);
  sp.attr("branches_pruned", static_cast<std::int64_t>(st.branches_pruned));
  sp.attr("exprs_folded", static_cast<std::int64_t>(st.exprs_folded));
  return st;
}

}  // namespace nfactor::lint
