// IR simplification ahead of slicing and symbolic execution: fold
// SCCP-constant expressions and prune branch arms whose condition is a
// known constant at fixpoint. Two tiers:
//
//   core         — constants derived from the packet-loop code alone
//                  (persistents opaque). Provably behavior-preserving;
//                  the synthesized model is identical.
//   fold_config  — additionally specializes config scalars (persistent
//                  int/bool/str variables whose initializer is a
//                  compile-time constant and which the packet loop never
//                  updates) to their initial values. The model is
//                  equivalent *for the configured constants* — exactly
//                  what the paper's per-deployment models describe — and
//                  is checked by verify::compare_action_sets_under_config.
//
// The pass is opt-in (PipelineOptions.simplify); nfactor_cli enables it
// by default with a --no-simplify escape hatch.
#pragma once

#include <string>

#include "analysis/const_prop.h"
#include "ir/ir.h"

namespace nfactor::lint {

struct SimplifyOptions {
  bool enabled = false;
  bool fold_config = false;
};

struct SimplifyStats {
  int branches_pruned = 0;  // branch nodes removed (condition was Const)
  int exprs_folded = 0;     // subexpressions replaced by literals
  int nodes_removed = 0;    // real CFG nodes dropped (pruned arms + branches)

  bool changed() const {
    return branches_pruned > 0 || exprs_folded > 0 || nodes_removed > 0;
  }
  std::string to_string() const {
    return "branches_pruned=" + std::to_string(branches_pruned) +
           " exprs_folded=" + std::to_string(exprs_folded) +
           " nodes_removed=" + std::to_string(nodes_removed);
  }
};

/// The config scalars foldable from their initializers: persistent
/// int/bool/str variables whose value is constant at the end of the init
/// section and which the packet loop never updates. (Shared with
/// verify::config_bindings so simplification and its equivalence check
/// can never disagree about what "the config" is.)
analysis::ConstEnv config_env(const ir::Module& m);

/// Simplify m.body in place (globals and the init CFG are untouched).
/// Bails out with zero stats when pruning would disconnect the CFG exit
/// or the recv anchor (e.g. a config-constant infinite loop).
SimplifyStats simplify_module(ir::Module& m, const SimplifyOptions& opts);

}  // namespace nfactor::lint
