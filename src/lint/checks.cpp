#include "lint/checks.h"

#include <algorithm>
#include <map>
#include <string>

#include "analysis/reaching_defs.h"

namespace nfactor::lint {

namespace {

using analysis::ConstVal;

std::string base_of(const ir::Location& loc) {
  std::string base;
  return ir::split_field_loc(loc, &base, nullptr) ? base : loc;
}

/// Compiler-introduced temporaries (`__tN`) and inlined return slots
/// (`callee$N$ret`) — their def/use shape is the lowerer's business, not
/// the NF author's.
bool compiler_generated(const std::string& var) {
  if (var.rfind("__t", 0) == 0) return true;
  const auto n = var.size();
  return n >= 4 && var.compare(n - 4, 4, "$ret") == 0;
}

}  // namespace

// NF201: a non-persistent variable may be read before any assignment
// reaches the read. Forward definite-assignment (must) analysis: a
// variable is safe at a node only when every CFG path to it contains a
// strong whole-variable def.
void check_use_before_init(const CheckContext& ctx) {
  const ir::Cfg& cfg = ctx.m.body;
  const auto tracked = [&](const std::string& v) {
    return ctx.m.persistent.count(v) == 0 && v != ctx.m.pkt_var;
  };

  // Universe of tracked variables (for the must-lattice top).
  std::set<std::string> universe;
  for (const auto& n : cfg.nodes) {
    for (const auto& u : n->uses()) {
      if (tracked(base_of(u))) universe.insert(base_of(u));
    }
    for (const auto& d : n->defs()) {
      if (tracked(base_of(d))) universe.insert(base_of(d));
    }
  }

  const auto gen = [&](const ir::Instr& n) -> const std::string* {
    // Strong whole-variable defs initialize; pop()'s result is always
    // assigned too. Container element stores do not initialize the
    // container.
    switch (n.kind) {
      case ir::InstrKind::kAssign:
      case ir::InstrKind::kRecv:
        return &n.var;
      case ir::InstrKind::kCall:
        return n.var.empty() ? nullptr : &n.var;
      default:
        return nullptr;
    }
  };

  std::map<int, std::set<std::string>> in;
  std::map<int, std::set<std::string>> out;
  for (const auto& n : cfg.nodes) {
    in[n->id] = universe;
    out[n->id] = universe;
  }
  in[cfg.entry].clear();
  bool changed = true;
  while (changed) {
    changed = false;
    for (const auto& n : cfg.nodes) {
      const int id = n->id;
      std::set<std::string> nin;
      if (id == cfg.entry) {
        // nothing assigned yet
      } else if (n->preds.empty()) {
        nin = universe;  // unreachable: vacuously all-assigned
      } else {
        nin = out[n->preds[0]];
        for (std::size_t i = 1; i < n->preds.size(); ++i) {
          const auto& po = out[n->preds[i]];
          for (auto it = nin.begin(); it != nin.end();) {
            it = po.count(*it) ? std::next(it) : nin.erase(it);
          }
        }
      }
      std::set<std::string> nout = nin;
      if (const std::string* g = gen(*n); g != nullptr && tracked(*g)) {
        nout.insert(*g);
      }
      if (nin != in[id] || nout != out[id]) {
        in[id] = std::move(nin);
        out[id] = std::move(nout);
        changed = true;
      }
    }
  }

  std::set<std::string> reported;
  for (const auto& n : cfg.nodes) {
    for (const auto& u : n->uses()) {
      const std::string v = base_of(u);
      if (!tracked(v) || in[n->id].count(v) || !reported.insert(v).second) {
        continue;
      }
      ctx.sink.report(n->loc, lang::Severity::kWarning, "NF201",
                      "'" + v + "' may be used before initialization");
    }
  }
}

// NF202: an assignment to a per-packet local whose value no later
// statement can read (liveness-dead store).
void check_dead_store(const CheckContext& ctx) {
  const ir::Cfg& cfg = ctx.m.body;
  for (const auto& n : cfg.nodes) {
    if (n->kind != ir::InstrKind::kAssign) continue;
    const std::string& v = n->var;
    if (ctx.m.persistent.count(v) || v == ctx.m.pkt_var ||
        compiler_generated(v)) {
      continue;
    }
    const auto& live = ctx.live.live_out(n->id);
    const bool is_live = std::any_of(
        live.begin(), live.end(),
        [&](const ir::Location& l) { return analysis::locations_alias(v, l); });
    if (!is_live) {
      ctx.sink.report(n->loc, lang::Severity::kWarning, "NF202",
                      "dead store: the value assigned to '" + v +
                          "' is never read");
    }
  }
}

// NF203: a persistent variable the packet loop writes but never reads —
// not even in its own update expression — is write-only state: it can
// influence nothing (StateAlyzer would call it a logVar, but even log
// state is normally read to be incremented or reported).
void check_write_only_state(const CheckContext& ctx) {
  const ir::Cfg& cfg = ctx.m.body;
  std::map<std::string, const ir::Instr*> first_def;
  std::set<std::string> read;
  for (const auto& n : cfg.nodes) {
    for (const auto& d : n->defs()) {
      const std::string v = base_of(d);
      if (ctx.m.persistent.count(v) && !first_def.count(v)) {
        first_def.emplace(v, n.get());
      }
    }
    for (const auto& u : n->uses()) read.insert(base_of(u));
  }
  for (const auto& [v, n] : first_def) {
    if (read.count(v)) continue;
    ctx.sink.report(n->loc, lang::Severity::kWarning, "NF203",
                    "state variable '" + v +
                        "' is written during packet processing but never "
                        "read");
  }
}

// NF204: a branch arm no execution can take, for *any* configuration
// (persistents are seeded Bottom, so config-guarded arms stay live).
// A literal true/false condition is intentional (`while true`) and skipped.
void check_unreachable_arm(const CheckContext& ctx) {
  const ir::Cfg& cfg = ctx.m.body;
  for (const auto& n : cfg.nodes) {
    if (n->kind != ir::InstrKind::kBranch || n->succs.size() != 2) continue;
    if (!ctx.cp.node_executable(n->id)) continue;  // avoid cascades
    if (n->value && n->value->kind == lang::ExprKind::kBoolLit) continue;
    const ConstVal d = ctx.cp.branch_decision(n->id);
    if (d.kind != ConstVal::Kind::kBool) continue;
    ctx.sink.report(n->loc, lang::Severity::kWarning, "NF204",
                    std::string("branch condition is always ") +
                        (d.b ? "true" : "false") + "; the " +
                        (d.b ? "false" : "true") + " arm is unreachable");
  }
}

// NF205: a branch condition reads a variable StateAlyzer classified as
// logVar. By construction a logVar guard cannot influence any output
// (it would have been reclassified output-impacting), so this is legal —
// but it usually means the author *intended* state, hence a note.
void check_logvar_guard(const CheckContext& ctx) {
  const ir::Cfg& cfg = ctx.m.body;
  std::set<std::pair<int, std::string>> seen;
  for (const auto& n : cfg.nodes) {
    if (n->kind != ir::InstrKind::kBranch) continue;
    for (const auto& u : n->uses()) {
      const std::string v = base_of(u);
      if (!ctx.cats.log_vars.count(v)) continue;
      if (!seen.emplace(n->id, v).second) continue;
      ctx.sink.report(n->loc, lang::Severity::kNote, "NF205",
                      "branch guards on log variable '" + v +
                          "'; log state never influences packet output "
                          "(possibly miscategorized state)");
    }
  }
}

// NF206: two element stores to the same container with the same index
// expression and no intervening read — the first (weak) update is
// shadowed before anything can observe it.
void check_weak_update_shadow(const CheckContext& ctx) {
  const ir::Cfg& cfg = ctx.m.body;
  for (const auto& n1 : cfg.nodes) {
    if (n1->kind != ir::InstrKind::kIndexStore) continue;
    const std::string key = lang::to_source(*n1->index);
    std::set<std::string> idx_vars;
    ir::collect_var_names(*n1->index, idx_vars);
    if (idx_vars.count(n1->var)) continue;  // index reads the container

    const ir::Instr* cur = n1.get();
    while (cur->succs.size() == 1) {
      const ir::Instr& nxt = cfg.node(cur->succs[0]);
      if (nxt.preds.size() != 1) break;  // merge: another path may read
      if (nxt.kind == ir::InstrKind::kIndexStore && nxt.var == n1->var &&
          lang::to_source(*nxt.index) == key) {
        std::set<ir::Location> val_uses;
        ir::collect_uses(*nxt.value, val_uses);
        const bool reads_container = std::any_of(
            val_uses.begin(), val_uses.end(),
            [&](const ir::Location& u) { return base_of(u) == n1->var; });
        if (!reads_container) {
          ctx.sink.report(
              n1->loc, lang::Severity::kWarning, "NF206",
              "element store to '" + n1->var + "[" + key +
                  "]' is overwritten at line " + std::to_string(nxt.loc.line) +
                  " before any read (weak-update shadowing)");
        }
        break;
      }
      // Stop at anything that observes the container or perturbs the key.
      const auto nxt_uses = nxt.uses();
      const bool touches = std::any_of(
          nxt_uses.begin(), nxt_uses.end(),
          [&](const ir::Location& u) { return base_of(u) == n1->var; });
      if (touches) break;
      bool key_changed = false;
      for (const auto& d : nxt.defs()) {
        const std::string v = base_of(d);
        if (v == n1->var || idx_vars.count(v)) {
          key_changed = true;
          break;
        }
      }
      if (key_changed) break;
      cur = &nxt;
    }
  }
}

// NF207: the port operand of a send() folds to a constant outside the
// representable port range — under the *configured* constants (cp_cfg),
// since ports routinely come from config scalars.
void check_invalid_send_port(const CheckContext& ctx) {
  const ir::Cfg& cfg = ctx.m.body;
  for (const auto& n : cfg.nodes) {
    if (n->kind != ir::InstrKind::kSend || !n->aux) continue;
    if (!ctx.cp_cfg.node_executable(n->id)) continue;
    const ConstVal d = ctx.cp_cfg.eval_in(n->id, *n->aux);
    if (d.kind == ConstVal::Kind::kInt && (d.i < 0 || d.i > 65535)) {
      ctx.sink.report(n->loc, lang::Severity::kWarning, "NF207",
                      "send() to provably-invalid port " +
                          std::to_string(d.i) + " (valid range 0..65535)");
    }
  }
}

// NF208: a branch re-tests a condition an enclosing branch has already
// decided on this path — same rendered condition, and nothing the guard
// reads is redefined in between — so one arm of the second branch is
// provably unreachable. SCCP alone cannot see this (the condition is
// not a constant, it is merely *repeated*), which is why NF204 misses
// it. The walk follows one arm of the first branch through straight-line
// single-predecessor nodes, stepping through intermediate branches via
// their false edges (on either walk the tracked condition's truth value
// is preserved there), and stops at joins or at any redefinition of a
// location the guard reads.
void check_duplicate_arm(const CheckContext& ctx) {
  const ir::Cfg& cfg = ctx.m.body;
  std::set<std::pair<int, int>> reported;  // (dup node, arm) pairs
  for (const auto& n1 : cfg.nodes) {
    if (n1->kind != ir::InstrKind::kBranch || n1->succs.size() != 2) continue;
    if (!ctx.cp.node_executable(n1->id)) continue;
    if (!n1->value || n1->value->kind == lang::ExprKind::kBoolLit) continue;
    // A constant-decided branch is NF204's finding, not a duplicate.
    if (ctx.cp.branch_decision(n1->id).kind == ConstVal::Kind::kBool) continue;
    const std::string cond = lang::to_source(*n1->value);
    const std::set<ir::Location> guard_uses = n1->uses();

    for (int arm = 0; arm < 2; ++arm) {  // 0 = true edge, 1 = false edge
      int cur = n1->succs[arm];
      std::set<int> visited;
      while (visited.insert(cur).second) {
        const ir::Instr& n2 = cfg.node(cur);
        if (n2.preds.size() > 1) break;  // join: other paths reach here
        if (n2.kind == ir::InstrKind::kBranch && n2.succs.size() == 2) {
          if (n2.value && n2.value->kind != lang::ExprKind::kBoolLit &&
              lang::to_source(*n2.value) == cond) {
            if (reported.emplace(n2.id, arm).second) {
              ctx.sink.report(
                  n2.loc, lang::Severity::kWarning, "NF208",
                  "duplicate arm: condition '" + cond + "' is already " +
                      (arm == 0 ? "true" : "false") + " on this path; the " +
                      (arm == 0 ? "false" : "true") + " arm is unreachable");
            }
            break;
          }
          cur = n2.succs[1];  // traverse the else-chain
          continue;
        }
        if (n2.succs.size() != 1) break;
        bool clobbers = false;
        for (const auto& d : n2.defs()) {
          for (const auto& u : guard_uses) {
            if (analysis::locations_alias(d, u)) clobbers = true;
          }
        }
        if (clobbers) break;
        cur = n2.succs[0];
      }
    }
  }
}

// NF301: the packet loop contains no send() at all — the synthesized
// model can only ever drop, which is almost never the intended NF.
void check_vacuous_model(const CheckContext& ctx) {
  const ir::Cfg& cfg = ctx.m.body;
  for (const auto& n : cfg.nodes) {
    if (n->kind == ir::InstrKind::kSend) return;
  }
  lang::SourceLoc loc{0, 0};
  if (ctx.m.recv_port_node >= 0) loc = cfg.node(ctx.m.recv_port_node).loc;
  ctx.sink.report(loc, lang::Severity::kWarning, "NF301",
                  "NF never calls send(): the synthesized model forwards "
                  "nothing (vacuous model)");
}

}  // namespace nfactor::lint
