#include "lint/lint.h"

#include "analysis/const_prop.h"
#include "analysis/live_vars.h"
#include "analysis/pdg.h"
#include "ir/lower.h"
#include "lang/parser.h"
#include "lint/checks.h"
#include "lint/simplify.h"
#include "obs/obs.h"
#include "statealyzer/statealyzer.h"
#include "transform/normalize.h"

namespace nfactor::lint {

const std::vector<CheckInfo>& checks() {
  using lang::Severity;
  static const std::vector<CheckInfo> kChecks = {
      {"NF201", "use-before-init", Severity::kWarning,
       "non-persistent variable may be read before initialization"},
      {"NF202", "dead-store", Severity::kWarning,
       "assignment to a local that is never read"},
      {"NF203", "write-only-state", Severity::kWarning,
       "persistent variable written during packet processing but never read"},
      {"NF204", "unreachable-arm", Severity::kWarning,
       "branch arm unreachable under constant propagation (any config)"},
      {"NF205", "logvar-guard", Severity::kNote,
       "branch condition reads a logVar (possibly miscategorized state)"},
      {"NF206", "weak-update-shadow", Severity::kWarning,
       "container element store overwritten before any read"},
      {"NF207", "invalid-send-port", Severity::kWarning,
       "send() port folds to a constant outside 0..65535"},
      {"NF208", "duplicate-arm", Severity::kWarning,
       "branch re-tests a condition already decided on this path; one arm "
       "is unreachable"},
      {"NF301", "vacuous-model", Severity::kWarning,
       "NF never sends a packet; the synthesized model is vacuous"},
  };
  return kChecks;
}

void run_checks(const ir::Module& m, lang::DiagnosticSink& sink) {
  obs::Span sp(obs::default_tracer(), "lint.run_checks");
  sp.attr("nf", m.name);

  analysis::Pdg pdg(m.body);
  const statealyzer::Result cats = statealyzer::analyze(m, pdg);
  const analysis::LiveVars live(m.body);

  // Config-agnostic lattice: every persistent is opaque (Bottom), so a
  // "dead" arm is dead for every possible configuration.
  analysis::ConstEnv env_any;
  for (const auto& v : m.persistent) env_any[v] = analysis::ConstVal::bottom();
  for (const auto& g : m.globals) env_any[g.name] = analysis::ConstVal::bottom();
  const analysis::ConstProp cp(m.body, std::move(env_any));

  // Config-specific lattice: config scalars take their initializer
  // constants (what simplify's fold_config uses).
  analysis::ConstEnv env_cfg;
  for (const auto& v : m.persistent) env_cfg[v] = analysis::ConstVal::bottom();
  for (const auto& g : m.globals) env_cfg[g.name] = analysis::ConstVal::bottom();
  for (auto& [k, v] : config_env(m)) env_cfg[k] = v;
  const analysis::ConstProp cp_cfg(m.body, std::move(env_cfg));

  const CheckContext ctx{m, pdg, cats, live, cp, cp_cfg, sink};
  check_use_before_init(ctx);
  check_dead_store(ctx);
  check_write_only_state(ctx);
  check_unreachable_arm(ctx);
  check_logvar_guard(ctx);
  check_weak_update_shadow(ctx);
  check_invalid_send_port(ctx);
  check_duplicate_arm(ctx);
  check_vacuous_model(ctx);

  OBS_GAUGE("lint.diags", sink.size());
  sp.attr("diags", static_cast<std::int64_t>(sink.size()));
}

bool lint_source(std::string_view source, const std::string& unit,
                 lang::DiagnosticSink& sink) {
  try {
    lang::Program prog = lang::parse(source, unit);
    lang::Program canon = transform::normalize(prog);
    const ir::Module m = ir::lower(std::move(canon));
    run_checks(m, sink);
    return true;
  } catch (const lang::LexError& e) {
    sink.report(e.diag().loc, lang::Severity::kError, "NF101",
                e.diag().message);
  } catch (const lang::ParseError& e) {
    sink.report(e.diag().loc, lang::Severity::kError, "NF102",
                e.diag().message);
  } catch (const lang::SemaError& e) {
    sink.report(e.diag().loc, lang::Severity::kError, "NF103",
                e.diag().message);
  } catch (const lang::FrontendError& e) {
    // LowerError, TransformError, and anything else structural.
    sink.report(e.diag().loc, lang::Severity::kError, "NF104",
                e.diag().message);
  }
  OBS_GAUGE("lint.diags", sink.size());
  return false;
}

}  // namespace nfactor::lint
