// Internal interface between the lint driver and the check passes.
// Each check is a free function over a shared, read-only analysis
// context; the driver owns the analyses and the execution order.
#pragma once

#include "analysis/const_prop.h"
#include "analysis/live_vars.h"
#include "analysis/pdg.h"
#include "ir/ir.h"
#include "lang/diagnostics.h"
#include "statealyzer/statealyzer.h"

namespace nfactor::lint {

struct CheckContext {
  const ir::Module& m;
  const analysis::Pdg& pdg;
  const statealyzer::Result& cats;
  const analysis::LiveVars& live;
  /// SCCP with every persistent seeded Bottom: facts hold for *any*
  /// configuration (used by NF204 so config-guarded arms stay live).
  const analysis::ConstProp& cp;
  /// SCCP with config scalars seeded to their initializer constants:
  /// facts hold for *this* configuration (used by NF207).
  const analysis::ConstProp& cp_cfg;
  lang::DiagnosticSink& sink;
};

void check_use_before_init(const CheckContext& ctx);     // NF201
void check_dead_store(const CheckContext& ctx);          // NF202
void check_write_only_state(const CheckContext& ctx);    // NF203
void check_unreachable_arm(const CheckContext& ctx);     // NF204
void check_logvar_guard(const CheckContext& ctx);        // NF205
void check_weak_update_shadow(const CheckContext& ctx);  // NF206
void check_invalid_send_port(const CheckContext& ctx);   // NF207
void check_duplicate_arm(const CheckContext& ctx);       // NF208
void check_vacuous_model(const CheckContext& ctx);       // NF301

}  // namespace nfactor::lint
