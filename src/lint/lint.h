// nf-lint: static-analysis diagnostics over NF sources and their lowered
// IR. The engine is a pass manager: every check is a named pass with a
// stable code (docs/lint.md has the catalog) running over a shared
// analysis context (PDG, StateAlyzer categories, SCCP constant lattice).
//
//   NF1xx  frontend (lex / parse / sema / lowering failures)
//   NF2xx  dataflow over the per-packet CFG
//   NF3xx  model-level (synthesis produces a vacuous model)
//
// Severity policy: errors stop model synthesis, warnings indicate likely
// bugs (a clean NF has zero), notes flag suspicious-but-legal idioms.
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "ir/ir.h"
#include "lang/diagnostics.h"

namespace nfactor::lint {

/// One registered check pass (for docs, tests, and --help output).
struct CheckInfo {
  std::string code;      // "NF202"
  std::string name;      // "dead-store"
  lang::Severity severity;
  std::string summary;   // one-line description
};

/// The NF2xx/NF3xx check catalog in execution order.
const std::vector<CheckInfo>& checks();

/// Run every IR-level check over a lowered module, appending to `sink`.
/// Builds its own PDG / StateAlyzer / constant-propagation context.
void run_checks(const ir::Module& m, lang::DiagnosticSink& sink);

/// Front door used by the CLI: parse + normalize + lower `source`, then
/// run_checks. Frontend failures become NF1xx error diagnostics (and the
/// IR checks are skipped). Returns true when lowering succeeded.
bool lint_source(std::string_view source, const std::string& unit,
                 lang::DiagnosticSink& sink);

}  // namespace nfactor::lint
