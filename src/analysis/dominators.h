// Immediate (post)dominators via the Cooper–Harvey–Kennedy iterative
// algorithm. Postdominators drive control-dependence computation
// (Ferrante–Ottenstein–Warren), which the slicer needs.
#pragma once

#include <vector>

#include "ir/ir.h"

namespace nfactor::analysis {

/// Dominator tree over an arbitrary successor function.
struct DomTree {
  /// idom[n] = immediate dominator node id; root maps to itself;
  /// unreachable nodes map to -1.
  std::vector<int> idom;

  bool reachable(int n) const { return idom[static_cast<std::size_t>(n)] >= 0; }

  /// True when `a` dominates `b` (reflexive).
  bool dominates(int a, int b) const;
};

/// Dominators of `cfg` rooted at entry.
DomTree dominators(const ir::Cfg& cfg);

/// Postdominators: dominators of the reverse CFG rooted at exit.
/// Nodes that cannot reach exit (e.g. bodies of genuinely infinite inner
/// loops) come out unreachable; callers treat them as postdominated by
/// nothing.
DomTree postdominators(const ir::Cfg& cfg);

}  // namespace nfactor::analysis
