#include "analysis/dynamic_slice.h"

#include <deque>

namespace nfactor::analysis {

std::set<int> dynamic_slice_events(const Trace& trace, const Pdg& pdg,
                                   int criterion_event) {
  std::set<int> events;
  std::deque<int> work;
  events.insert(criterion_event);
  work.push_back(criterion_event);

  while (!work.empty()) {
    const int ev = work.front();
    work.pop_front();
    const TraceEvent& e = trace[static_cast<std::size_t>(ev)];

    // Dynamic data dependences.
    for (const auto& [loc, def_ev] : e.use_defs) {
      (void)loc;
      if (def_ev >= 0 && events.insert(def_ev).second) work.push_back(def_ev);
    }

    // Control: most recent earlier event executing a branch this node is
    // statically control-dependent on.
    const auto& cds = pdg.control_deps(e.node);
    if (!cds.empty()) {
      for (int prior = ev - 1; prior >= 0; --prior) {
        const int pn = trace[static_cast<std::size_t>(prior)].node;
        if (cds.count(pn)) {
          if (events.insert(prior).second) work.push_back(prior);
          break;
        }
      }
    }
  }
  return events;
}

std::set<int> dynamic_slice_nodes(const Trace& trace, const Pdg& pdg,
                                  int criterion_event) {
  std::set<int> nodes;
  for (const int ev : dynamic_slice_events(trace, pdg, criterion_event)) {
    nodes.insert(trace[static_cast<std::size_t>(ev)].node);
  }
  return nodes;
}

}  // namespace nfactor::analysis
