#include "analysis/pdg.h"

#include <deque>

#include "obs/obs.h"

namespace nfactor::analysis {

Pdg::Pdg(const ir::Cfg& cfg) : cfg_(cfg), rd_(cfg) {
  OBS_SPAN_VAR(span, "slice.pdg_build");
  span.attr("cfg_nodes", static_cast<std::int64_t>(cfg.size()));
  data_.assign(cfg.size(), {});
  control_.assign(cfg.size(), {});

  for (const auto& n : cfg.nodes) {
    data_[static_cast<std::size_t>(n->id)] = rd_.data_deps(n->id);
  }
  const ControlDeps cd = control_dependence(cfg);
  for (std::size_t i = 0; i < cfg.size(); ++i) control_[i] = cd.deps[i];
}

std::set<int> Pdg::backward_slice(int criterion,
                                  const std::set<ir::Location>& locs) const {
  std::set<int> slice;
  std::deque<int> work;

  slice.insert(criterion);
  if (locs.empty()) {
    for (const int d : data_deps(criterion)) {
      if (slice.insert(d).second) work.push_back(d);
    }
  } else {
    for (const auto& loc : locs) {
      for (const int d : rd_.reaching_def_nodes(criterion, loc)) {
        if (slice.insert(d).second) work.push_back(d);
      }
    }
  }
  for (const int c : control_deps(criterion)) {
    if (slice.insert(c).second) work.push_back(c);
  }

  std::uint64_t pops = 0;
  while (!work.empty()) {
    const int u = work.front();
    work.pop_front();
    ++pops;
    for (const int d : data_deps(u)) {
      if (slice.insert(d).second) work.push_back(d);
    }
    for (const int c : control_deps(u)) {
      if (slice.insert(c).second) work.push_back(c);
    }
  }
  OBS_COUNT("slice.backward_slices");
  OBS_COUNT_N("slice.worklist.pops", pops);
  OBS_HIST("slice.size_nodes", slice.size());
  return slice;
}

std::set<int> Pdg::backward_slice(const std::set<int>& criteria) const {
  std::set<int> out;
  for (const int c : criteria) {
    const auto s = backward_slice(c);
    out.insert(s.begin(), s.end());
  }
  return out;
}

}  // namespace nfactor::analysis
