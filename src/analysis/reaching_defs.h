// Reaching definitions over the statement CFG. Definitions are
// (node, location) pairs; scalar assignments kill, container element
// stores are weak updates (gen without kill), and whole-packet recv kills
// every field of the packet variable.
#pragma once

#include <map>
#include <set>
#include <string>
#include <vector>

#include "analysis/bitset.h"
#include "ir/ir.h"

namespace nfactor::analysis {

struct Def {
  int node;
  ir::Location loc;
};

/// May-alias between a defined location and a used location:
/// exact match, or whole-variable vs field of the same variable.
bool locations_alias(const ir::Location& def_loc, const ir::Location& use_loc);

class ReachingDefs {
 public:
  explicit ReachingDefs(const ir::Cfg& cfg);

  const std::vector<Def>& defs() const { return defs_; }

  /// Definitions reaching the *entry* of `node` that may supply `use_loc`.
  std::set<int> reaching_def_nodes(int node, const ir::Location& use_loc) const;

  /// All def-node predecessors for every use location of `node` —
  /// the node's data-dependence sources.
  std::set<int> data_deps(int node) const;

  /// Locations defined before the packet loop ran (treated as coming from
  /// the virtual entry definition): a use with no reaching def inside the
  /// CFG reads persistent/initial state.
  bool has_internal_def(int node, const ir::Location& use_loc) const;

 private:
  const ir::Cfg& cfg_;
  std::vector<Def> defs_;
  std::vector<BitSet> in_;   // per node
  std::vector<BitSet> gen_;
  std::vector<BitSet> kill_;
};

}  // namespace nfactor::analysis
