#include "analysis/dot.h"

#include <sstream>

namespace nfactor::analysis {

namespace {

std::string dot_escape(const std::string& s) {
  std::string out;
  for (const char c : s) {
    if (c == '"' || c == '\\') out.push_back('\\');
    out.push_back(c);
  }
  return out;
}

}  // namespace

std::string to_dot(const Pdg& pdg, const std::string& title) {
  const ir::Cfg& cfg = pdg.cfg();
  std::ostringstream os;
  os << "digraph \"" << dot_escape(title) << "\" {\n";
  os << "  node [shape=box, fontname=\"monospace\", fontsize=9];\n";
  for (const auto& n : cfg.nodes) {
    if (n->kind == ir::InstrKind::kEntry || n->kind == ir::InstrKind::kExit) {
      continue;
    }
    std::string label = n->to_string();
    if (label.size() > 70) label = label.substr(0, 67) + "...";
    os << "  n" << n->id << " [label=\"" << dot_escape(label) << "\"];\n";
  }
  for (const auto& n : cfg.nodes) {
    for (const int d : pdg.data_deps(n->id)) {
      os << "  n" << n->id << " -> n" << d << " [color=blue];\n";
    }
    for (const int c : pdg.control_deps(n->id)) {
      os << "  n" << n->id << " -> n" << c
         << " [color=red, style=dashed];\n";
    }
  }
  os << "}\n";
  return os.str();
}

}  // namespace nfactor::analysis
