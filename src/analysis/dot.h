// Graphviz export of the program dependence graph (data edges solid,
// control edges dashed).
#pragma once

#include <string>

#include "analysis/pdg.h"

namespace nfactor::analysis {

std::string to_dot(const Pdg& pdg, const std::string& title = "pdg");

}  // namespace nfactor::analysis
