#include "analysis/const_prop.h"

#include <deque>
#include <utility>

#include "lang/builtins.h"

namespace nfactor::analysis {

namespace {

using lang::BinOp;
using lang::UnOp;

/// Integer folding with the exact semantics of the symbolic folder and
/// the concrete runtime (Python-style modulo, 64-bit shift masking).
/// *ok=false on division/modulo by zero or a non-integer operator.
std::int64_t fold_bin_int(BinOp op, std::int64_t a, std::int64_t b, bool* ok) {
  *ok = true;
  switch (op) {
    case BinOp::kAdd: return a + b;
    case BinOp::kSub: return a - b;
    case BinOp::kMul: return a * b;
    case BinOp::kDiv:
      if (b == 0) { *ok = false; return 0; }
      return a / b;
    case BinOp::kMod:
      if (b == 0) { *ok = false; return 0; }
      return ((a % b) + b) % b;
    case BinOp::kBitAnd: return a & b;
    case BinOp::kBitOr: return a | b;
    case BinOp::kBitXor: return a ^ b;
    case BinOp::kShl: return a << (b & 63);
    case BinOp::kShr:
      return static_cast<std::int64_t>(static_cast<std::uint64_t>(a) >>
                                       (b & 63));
    default:
      *ok = false;
      return 0;
  }
}

ConstVal eval_binary(BinOp op, const ConstVal& l, const ConstVal& r) {
  using K = ConstVal::Kind;
  if (l.is_top() || r.is_top()) return ConstVal::top();
  if (l.is_bottom() || r.is_bottom()) return ConstVal::bottom();

  if (op == BinOp::kEq || op == BinOp::kNe) {
    if (l.kind != r.kind) return ConstVal::bottom();
    bool eq = false;
    switch (l.kind) {
      case K::kInt: eq = l.i == r.i; break;
      case K::kBool: eq = l.b == r.b; break;
      case K::kStr: eq = l.s == r.s; break;
      default: return ConstVal::bottom();
    }
    return ConstVal::of_bool(op == BinOp::kEq ? eq : !eq);
  }

  if (l.kind != K::kInt || r.kind != K::kInt) return ConstVal::bottom();
  switch (op) {
    case BinOp::kLt: return ConstVal::of_bool(l.i < r.i);
    case BinOp::kLe: return ConstVal::of_bool(l.i <= r.i);
    case BinOp::kGt: return ConstVal::of_bool(l.i > r.i);
    case BinOp::kGe: return ConstVal::of_bool(l.i >= r.i);
    default: break;
  }
  bool ok = false;
  const std::int64_t v = fold_bin_int(op, l.i, r.i, &ok);
  return ok ? ConstVal::of_int(v) : ConstVal::bottom();
}

/// Set every tracked field location of `var` to Bottom (whole-variable
/// strong def: old field facts die; packet targets get the full field
/// vocabulary so later reads see Bottom, not Top).
void smash_fields(ConstEnv& env, const std::string& var, bool full_vocab) {
  const std::string prefix = var + ".";
  for (auto it = env.lower_bound(prefix); it != env.end(); ++it) {
    if (it->first.compare(0, prefix.size(), prefix) != 0) break;
    it->second = ConstVal::bottom();
  }
  if (full_vocab) {
    for (const auto& f : lang::packet_fields()) {
      env[ir::field_loc(var, f.name)] = ConstVal::bottom();
    }
  }
}

/// Pointwise meet of `src` into `dst` (missing key = Top). Returns true
/// when `dst` descended.
bool merge_into(ConstEnv& dst, const ConstEnv& src) {
  bool changed = false;
  for (const auto& [loc, v] : src) {
    if (v.is_top()) continue;  // Top adds no information
    auto it = dst.find(loc);
    if (it == dst.end()) {
      dst.emplace(loc, v);
      changed = true;
    } else {
      const ConstVal m = meet(it->second, v);
      if (!(m == it->second)) {
        it->second = m;
        changed = true;
      }
    }
  }
  return changed;
}

}  // namespace

std::string ConstVal::to_string() const {
  switch (kind) {
    case Kind::kTop: return "top";
    case Kind::kBottom: return "bottom";
    case Kind::kInt: return std::to_string(i);
    case Kind::kBool: return b ? "true" : "false";
    case Kind::kStr: return "\"" + s + "\"";
  }
  return "?";
}

ConstVal meet(const ConstVal& a, const ConstVal& b) {
  if (a.is_top()) return b;
  if (b.is_top()) return a;
  if (a == b) return a;
  return ConstVal::bottom();
}

ConstVal eval_const(
    const lang::Expr& e,
    const std::function<ConstVal(const ir::Location&)>& lookup) {
  switch (e.kind) {
    case lang::ExprKind::kIntLit:
      return ConstVal::of_int(static_cast<const lang::IntLit&>(e).value);
    case lang::ExprKind::kBoolLit:
      return ConstVal::of_bool(static_cast<const lang::BoolLit&>(e).value);
    case lang::ExprKind::kStrLit:
      return ConstVal::of_str(static_cast<const lang::StrLit&>(e).value);
    case lang::ExprKind::kVarRef:
      return lookup(static_cast<const lang::VarRef&>(e).name);
    case lang::ExprKind::kField: {
      const auto& f = static_cast<const lang::FieldRef&>(e);
      if (f.base->kind != lang::ExprKind::kVarRef) return ConstVal::bottom();
      const auto& base = static_cast<const lang::VarRef&>(*f.base);
      return lookup(ir::field_loc(base.name, f.field));
    }
    case lang::ExprKind::kUnary: {
      const auto& u = static_cast<const lang::Unary&>(e);
      const ConstVal v = eval_const(*u.operand, lookup);
      if (v.is_top()) return v;
      if (u.op == UnOp::kNeg && v.kind == ConstVal::Kind::kInt) {
        return ConstVal::of_int(-v.i);
      }
      if (u.op == UnOp::kNot && v.kind == ConstVal::Kind::kBool) {
        return ConstVal::of_bool(!v.b);
      }
      return ConstVal::bottom();
    }
    case lang::ExprKind::kBinary: {
      const auto& b = static_cast<const lang::Binary&>(e);
      if (b.op == BinOp::kAnd || b.op == BinOp::kOr) {
        // Short-circuit folding only off a Const left side: the right
        // side may divide by zero at runtime, so it must not be skipped
        // on the strength of its own constness.
        const ConstVal l = eval_const(*b.lhs, lookup);
        if (l.kind == ConstVal::Kind::kBool) {
          if (b.op == BinOp::kAnd && !l.b) return ConstVal::of_bool(false);
          if (b.op == BinOp::kOr && l.b) return ConstVal::of_bool(true);
          const ConstVal r = eval_const(*b.rhs, lookup);
          if (r.is_top()) return r;
          if (r.kind == ConstVal::Kind::kBool) return r;
          return ConstVal::bottom();
        }
        return l.is_top() ? ConstVal::top() : ConstVal::bottom();
      }
      return eval_binary(b.op, eval_const(*b.lhs, lookup),
                         eval_const(*b.rhs, lookup));
    }
    default:
      // Calls, indexing, membership, and container literals are never
      // constants here (container stores are weak updates).
      return ConstVal::bottom();
  }
}

ConstProp::ConstProp(const ir::Cfg& cfg, ConstEnv entry_env) : cfg_(cfg) {
  in_.resize(cfg.size());
  exec_.assign(cfg.size(), false);
  edge_exec_.resize(cfg.size());
  for (std::size_t i = 0; i < cfg.size(); ++i) {
    edge_exec_[i].assign(cfg.nodes[i]->succs.size(), false);
  }
  if (cfg.entry < 0) return;

  in_[static_cast<std::size_t>(cfg.entry)] = std::move(entry_env);
  exec_[static_cast<std::size_t>(cfg.entry)] = true;

  std::deque<std::pair<int, int>> wl;
  const auto push_live_edges = [&](int n) {
    const ir::Instr& nd = cfg_.node(n);
    if (nd.kind == ir::InstrKind::kBranch && nd.succs.size() == 2) {
      const ConstVal d = branch_decision(n);
      if (d.kind == ConstVal::Kind::kBool) {
        wl.emplace_back(n, d.b ? 0 : 1);
      } else if (!d.is_top()) {
        wl.emplace_back(n, 0);
        wl.emplace_back(n, 1);
      }
      // Top: no arm provably executes yet — wait for the condition to
      // descend (it stays Top only for provably-undefined reads, which
      // edge_executable() then reports as both-live).
      return;
    }
    for (int slot = 0; slot < static_cast<int>(nd.succs.size()); ++slot) {
      wl.emplace_back(n, slot);
    }
  };

  push_live_edges(cfg.entry);
  while (!wl.empty()) {
    const auto [u, slot] = wl.front();
    wl.pop_front();
    const int v = cfg_.node(u).succs[static_cast<std::size_t>(slot)];
    if (v < 0) continue;
    edge_exec_[static_cast<std::size_t>(u)][static_cast<std::size_t>(slot)] =
        true;
    const ConstEnv out =
        transfer(cfg_.node(u), in_[static_cast<std::size_t>(u)]);
    bool changed = merge_into(in_[static_cast<std::size_t>(v)], out);
    if (!exec_[static_cast<std::size_t>(v)]) {
      exec_[static_cast<std::size_t>(v)] = true;
      changed = true;
    }
    if (changed) push_live_edges(v);
  }
}

ConstEnv ConstProp::transfer(const ir::Instr& n, const ConstEnv& in) const {
  ConstEnv out = in;
  const auto lookup = [&in](const ir::Location& loc) {
    const auto it = in.find(loc);
    return it == in.end() ? ConstVal::top() : it->second;
  };
  switch (n.kind) {
    case ir::InstrKind::kAssign: {
      const ConstVal v = eval_const(*n.value, lookup);
      smash_fields(out, n.var, n.value->type == lang::Type::kPacket);
      out[n.var] = v;
      break;
    }
    case ir::InstrKind::kRecv:
      smash_fields(out, n.var, /*full_vocab=*/true);
      out[n.var] = ConstVal::bottom();
      break;
    case ir::InstrKind::kFieldStore:
      out[ir::field_loc(n.var, n.field)] = eval_const(*n.value, lookup);
      break;
    case ir::InstrKind::kIndexStore:
      out[n.var] = ConstVal::bottom();
      break;
    case ir::InstrKind::kCall:
      // push/pop smash their container; pop's result is unknown.
      for (const auto& loc : n.defs()) out[loc] = ConstVal::bottom();
      break;
    default:
      break;  // entry/exit/branch/send: no defs
  }
  return out;
}

bool ConstProp::edge_executable(int node, int slot) const {
  if (!exec_[static_cast<std::size_t>(node)]) return false;
  const ir::Instr& nd = cfg_.node(node);
  if (nd.kind == ir::InstrKind::kBranch && branch_decision(node).is_top()) {
    return true;
  }
  const auto& edges = edge_exec_[static_cast<std::size_t>(node)];
  return slot >= 0 && slot < static_cast<int>(edges.size()) &&
         edges[static_cast<std::size_t>(slot)];
}

ConstVal ConstProp::value_in(int node, const ir::Location& loc) const {
  const auto& env = in_[static_cast<std::size_t>(node)];
  const auto it = env.find(loc);
  return it == env.end() ? ConstVal::top() : it->second;
}

ConstVal ConstProp::eval_in(int node, const lang::Expr& e) const {
  return eval_const(e, [this, node](const ir::Location& loc) {
    return value_in(node, loc);
  });
}

ConstVal ConstProp::branch_decision(int node) const {
  const ir::Instr& nd = cfg_.node(node);
  return nd.value ? eval_in(node, *nd.value) : ConstVal::bottom();
}

}  // namespace nfactor::analysis
