// Small dense bitset for dataflow fixpoints (std::vector<bool> has the
// right semantics but poor word-level ops; this keeps union/intersection
// word-wide, which matters when reaching-defs runs inside the Table-2
// benchmark loop).
#pragma once

#include <cstdint>
#include <vector>

namespace nfactor::analysis {

class BitSet {
 public:
  BitSet() = default;
  explicit BitSet(std::size_t bits)
      : bits_(bits), words_((bits + 63) / 64, 0) {}

  std::size_t size() const { return bits_; }

  void set(std::size_t i) { words_[i >> 6] |= 1ULL << (i & 63); }
  void reset(std::size_t i) { words_[i >> 6] &= ~(1ULL << (i & 63)); }
  bool test(std::size_t i) const { return words_[i >> 6] >> (i & 63) & 1; }

  /// this |= other; returns true when any bit changed.
  bool unite(const BitSet& other) {
    bool changed = false;
    for (std::size_t w = 0; w < words_.size(); ++w) {
      const std::uint64_t before = words_[w];
      words_[w] |= other.words_[w];
      changed |= words_[w] != before;
    }
    return changed;
  }

  /// this &= ~other.
  void subtract(const BitSet& other) {
    for (std::size_t w = 0; w < words_.size(); ++w) {
      words_[w] &= ~other.words_[w];
    }
  }

  bool operator==(const BitSet&) const = default;

  template <typename F>
  void for_each(F&& f) const {
    for (std::size_t w = 0; w < words_.size(); ++w) {
      std::uint64_t word = words_[w];
      while (word != 0) {
        const int bit = __builtin_ctzll(word);
        f(w * 64 + static_cast<std::size_t>(bit));
        word &= word - 1;
      }
    }
  }

 private:
  std::size_t bits_ = 0;
  std::vector<std::uint64_t> words_;
};

}  // namespace nfactor::analysis
