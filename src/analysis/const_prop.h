// Sparse conditional constant propagation (SCCP) over the statement CFG.
// The lattice per location is the classic three-level one:
//
//     Top  (no executable definition seen yet — optimistically unknown)
//      |
//    Const (a single int/bool/str constant on every executable path)
//      |
//   Bottom (overdefined: symbolic, container-valued, or conflicting)
//
// The pass interleaves value propagation with edge executability: a
// branch whose condition evaluates to a constant only propagates along
// the taken edge, so code behind provably-dead arms never pollutes the
// merge points (Wegman–Zadeck, adapted to our non-SSA location maps).
//
// Clients:
//   - lint NF204 (unreachable arm) / NF207 (invalid send port), with
//     persistents seeded Bottom or config-seeded respectively;
//   - the lint simplify pass, which folds Const expressions and prunes
//     branch arms whose condition is Const at fixpoint.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "ir/ir.h"
#include "lang/ast.h"

namespace nfactor::analysis {

/// One lattice element. Tuples, lists and maps are never tracked as
/// constants (container stores are weak updates) — they go to Bottom.
struct ConstVal {
  enum class Kind : std::uint8_t { kTop, kInt, kBool, kStr, kBottom };

  Kind kind = Kind::kTop;
  std::int64_t i = 0;
  bool b = false;
  std::string s;

  static ConstVal top() { return {}; }
  static ConstVal bottom() { return {Kind::kBottom, 0, false, {}}; }
  static ConstVal of_int(std::int64_t v) { return {Kind::kInt, v, false, {}}; }
  static ConstVal of_bool(bool v) { return {Kind::kBool, 0, v, {}}; }
  static ConstVal of_str(std::string v) {
    return {Kind::kStr, 0, false, std::move(v)};
  }

  bool is_top() const { return kind == Kind::kTop; }
  bool is_bottom() const { return kind == Kind::kBottom; }
  bool is_const() const { return !is_top() && !is_bottom(); }

  bool operator==(const ConstVal& o) const {
    return kind == o.kind && i == o.i && b == o.b && s == o.s;
  }

  std::string to_string() const;
};

/// Lattice meet: Top ∧ x = x; Const(a) ∧ Const(b) = Const(a) when equal,
/// Bottom otherwise; Bottom ∧ x = Bottom.
ConstVal meet(const ConstVal& a, const ConstVal& b);

/// Abstract environment: location -> lattice value. A missing key reads
/// as Top (nothing known yet).
using ConstEnv = std::map<ir::Location, ConstVal>;

/// Abstractly evaluate `e` under `lookup`. Matches the concrete runtime
/// and the symbolic folder exactly where it folds (Python-style modulo,
/// shift masking); division/modulo by a constant zero yields Bottom so
/// the runtime's error path is never folded away. `and`/`or` fold via
/// left-to-right short-circuit only when the left side is Const.
ConstVal eval_const(
    const lang::Expr& e,
    const std::function<ConstVal(const ir::Location&)>& lookup);

class ConstProp {
 public:
  /// Runs to fixpoint on construction. `entry_env` seeds the entry
  /// node's environment (typically: every persistent location mapped to
  /// Bottom, or to a Const for config-folded scalars). Locations absent
  /// from the seed start at Top.
  ConstProp(const ir::Cfg& cfg, ConstEnv entry_env);

  /// Whether any executable path reaches `node`.
  bool node_executable(int node) const {
    return exec_[static_cast<std::size_t>(node)];
  }

  /// Whether the edge `node -> succs[slot]` is ever taken. For a branch
  /// with a Top condition at fixpoint both slots read executable (we
  /// refuse to reason about provably-undefined conditions).
  bool edge_executable(int node, int slot) const;

  /// Lattice value of `loc` at the entry of `node`.
  ConstVal value_in(int node, const ir::Location& loc) const;

  /// Abstractly evaluate `e` in `node`'s entry environment.
  ConstVal eval_in(int node, const lang::Expr& e) const;

  /// For a kBranch node: its condition's fixpoint value. Only a Const
  /// bool decides the branch; anything else means both arms stay live.
  ConstVal branch_decision(int node) const;

 private:
  ConstEnv transfer(const ir::Instr& n, const ConstEnv& in) const;

  const ir::Cfg& cfg_;
  std::vector<ConstEnv> in_;
  std::vector<bool> exec_;
  std::vector<std::vector<bool>> edge_exec_;
};

}  // namespace nfactor::analysis
