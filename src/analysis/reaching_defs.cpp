#include "analysis/reaching_defs.h"

#include <deque>

namespace nfactor::analysis {

bool locations_alias(const ir::Location& def_loc, const ir::Location& use_loc) {
  if (def_loc == use_loc) return true;
  std::string def_base, use_base;
  const bool def_is_field = ir::split_field_loc(def_loc, &def_base, nullptr);
  const bool use_is_field = ir::split_field_loc(use_loc, &use_base, nullptr);
  if (def_is_field && !use_is_field) return def_base == use_loc;
  if (!def_is_field && use_is_field) return def_loc == use_base;
  return false;
}

ReachingDefs::ReachingDefs(const ir::Cfg& cfg) : cfg_(cfg) {
  // Enumerate definitions.
  for (const auto& n : cfg.nodes) {
    for (const auto& loc : n->defs()) {
      defs_.push_back({n->id, loc});
    }
  }
  const std::size_t nd = defs_.size();

  gen_.assign(cfg.size(), BitSet(nd));
  kill_.assign(cfg.size(), BitSet(nd));
  in_.assign(cfg.size(), BitSet(nd));

  for (const auto& n : cfg.nodes) {
    const auto node_defs = n->defs();
    for (std::size_t d = 0; d < nd; ++d) {
      if (defs_[d].node == n->id) gen_[static_cast<std::size_t>(n->id)].set(d);
    }
    for (const auto& loc : node_defs) {
      if (!n->is_strong_def(loc)) continue;
      for (std::size_t d = 0; d < nd; ++d) {
        if (defs_[d].node == n->id) continue;
        // A strong def of `loc` kills defs of `loc` itself and — when
        // `loc` is a whole variable — defs of its fields (pkt = recv()
        // kills pkt.ip_src := ...).
        const ir::Location& dl = defs_[d].loc;
        std::string base;
        const bool killed =
            dl == loc ||
            (ir::split_field_loc(dl, &base, nullptr) && base == loc);
        if (killed) kill_[static_cast<std::size_t>(n->id)].set(d);
      }
    }
  }

  // Worklist fixpoint.
  std::deque<int> work;
  std::vector<char> queued(cfg.size(), 1);
  for (const auto& n : cfg.nodes) work.push_back(n->id);

  std::vector<BitSet> out(cfg.size(), BitSet(nd));
  for (const auto& n : cfg.nodes) {
    BitSet o = gen_[static_cast<std::size_t>(n->id)];
    out[static_cast<std::size_t>(n->id)] = std::move(o);
  }

  while (!work.empty()) {
    const int u = work.front();
    work.pop_front();
    queued[static_cast<std::size_t>(u)] = 0;

    BitSet& in = in_[static_cast<std::size_t>(u)];
    for (const int p : cfg.node(u).preds) {
      in.unite(out[static_cast<std::size_t>(p)]);
    }
    BitSet new_out = in;
    new_out.subtract(kill_[static_cast<std::size_t>(u)]);
    new_out.unite(gen_[static_cast<std::size_t>(u)]);
    if (!(new_out == out[static_cast<std::size_t>(u)])) {
      out[static_cast<std::size_t>(u)] = std::move(new_out);
      for (const int s : cfg.node(u).succs) {
        if (s >= 0 && !queued[static_cast<std::size_t>(s)]) {
          queued[static_cast<std::size_t>(s)] = 1;
          work.push_back(s);
        }
      }
    }
  }
}

std::set<int> ReachingDefs::reaching_def_nodes(int node,
                                               const ir::Location& use_loc) const {
  std::set<int> out;
  const BitSet& in = in_[static_cast<std::size_t>(node)];
  in.for_each([&](std::size_t d) {
    if (locations_alias(defs_[d].loc, use_loc)) out.insert(defs_[d].node);
  });
  return out;
}

std::set<int> ReachingDefs::data_deps(int node) const {
  std::set<int> out;
  const auto uses = cfg_.node(node).uses();
  const BitSet& in = in_[static_cast<std::size_t>(node)];
  in.for_each([&](std::size_t d) {
    for (const auto& u : uses) {
      if (locations_alias(defs_[d].loc, u)) {
        out.insert(defs_[d].node);
        break;
      }
    }
  });
  return out;
}

bool ReachingDefs::has_internal_def(int node, const ir::Location& use_loc) const {
  const BitSet& in = in_[static_cast<std::size_t>(node)];
  bool found = false;
  in.for_each([&](std::size_t d) {
    if (locations_alias(defs_[d].loc, use_loc)) found = true;
  });
  return found;
}

}  // namespace nfactor::analysis
