#include "analysis/dominators.h"

#include <algorithm>
#include <functional>

namespace nfactor::analysis {

namespace {

/// Generic CHK dominators over an adjacency view.
DomTree compute(std::size_t n, int root,
                const std::function<const std::vector<int>&(int)>& succs,
                const std::function<const std::vector<int>&(int)>& preds) {
  // Reverse postorder from root over succs.
  std::vector<int> order;  // postorder
  std::vector<char> seen(n, 0);
  std::function<void(int)> dfs = [&](int u) {
    seen[static_cast<std::size_t>(u)] = 1;
    for (int v : succs(u)) {
      if (!seen[static_cast<std::size_t>(v)]) dfs(v);
    }
    order.push_back(u);
  };
  dfs(root);
  std::vector<int> rpo(order.rbegin(), order.rend());
  std::vector<int> rpo_index(n, -1);
  for (std::size_t i = 0; i < rpo.size(); ++i) {
    rpo_index[static_cast<std::size_t>(rpo[i])] = static_cast<int>(i);
  }

  DomTree t;
  t.idom.assign(n, -1);
  t.idom[static_cast<std::size_t>(root)] = root;

  auto intersect = [&](int a, int b) {
    while (a != b) {
      while (rpo_index[static_cast<std::size_t>(a)] >
             rpo_index[static_cast<std::size_t>(b)]) {
        a = t.idom[static_cast<std::size_t>(a)];
      }
      while (rpo_index[static_cast<std::size_t>(b)] >
             rpo_index[static_cast<std::size_t>(a)]) {
        b = t.idom[static_cast<std::size_t>(b)];
      }
    }
    return a;
  };

  bool changed = true;
  while (changed) {
    changed = false;
    for (int u : rpo) {
      if (u == root) continue;
      int new_idom = -1;
      for (int p : preds(u)) {
        if (t.idom[static_cast<std::size_t>(p)] < 0) continue;  // unprocessed
        new_idom = new_idom < 0 ? p : intersect(new_idom, p);
      }
      if (new_idom >= 0 && t.idom[static_cast<std::size_t>(u)] != new_idom) {
        t.idom[static_cast<std::size_t>(u)] = new_idom;
        changed = true;
      }
    }
  }
  return t;
}

}  // namespace

bool DomTree::dominates(int a, int b) const {
  if (!reachable(b)) return false;
  int x = b;
  for (;;) {
    if (x == a) return true;
    const int up = idom[static_cast<std::size_t>(x)];
    if (up == x) return false;  // reached root
    x = up;
  }
}

DomTree dominators(const ir::Cfg& cfg) {
  return compute(
      cfg.size(), cfg.entry,
      [&cfg](int u) -> const std::vector<int>& { return cfg.node(u).succs; },
      [&cfg](int u) -> const std::vector<int>& { return cfg.node(u).preds; });
}

DomTree postdominators(const ir::Cfg& cfg) {
  return compute(
      cfg.size(), cfg.exit,
      [&cfg](int u) -> const std::vector<int>& { return cfg.node(u).preds; },
      [&cfg](int u) -> const std::vector<int>& { return cfg.node(u).succs; });
}

}  // namespace nfactor::analysis
