// Program dependence graph (data + control edges) and the backward
// slicer — the core of Algorithm 1's BackwardSlice().
#pragma once

#include <set>
#include <vector>

#include "analysis/control_dep.h"
#include "analysis/reaching_defs.h"
#include "ir/ir.h"

namespace nfactor::analysis {

class Pdg {
 public:
  explicit Pdg(const ir::Cfg& cfg);

  /// Nodes `n` directly depends on (reads values defined by / controlled by).
  const std::set<int>& data_deps(int n) const {
    return data_[static_cast<std::size_t>(n)];
  }
  const std::set<int>& control_deps(int n) const {
    return control_[static_cast<std::size_t>(n)];
  }

  /// Backward slice from `criterion`. With `locs` empty, the criterion's
  /// full use set seeds the slice (the usual stmt-level criterion);
  /// otherwise only reaching defs of the given locations seed it.
  /// The criterion itself is always in the slice; the closure follows
  /// data and control dependences transitively.
  std::set<int> backward_slice(int criterion,
                               const std::set<ir::Location>& locs = {}) const;

  /// Union of slices over several criteria.
  std::set<int> backward_slice(const std::set<int>& criteria) const;

  const ir::Cfg& cfg() const { return cfg_; }
  const ReachingDefs& reaching() const { return rd_; }

 private:
  const ir::Cfg& cfg_;
  ReachingDefs rd_;
  std::vector<std::set<int>> data_;
  std::vector<std::set<int>> control_;
};

}  // namespace nfactor::analysis
