// Dynamic program slicing (Agrawal–Horgan style): given an execution
// trace with dynamic def-use links recorded by the runtime, compute the
// statements that *really* led to the criterion — the paper's Figure 1
// highlights exactly such a slice for the LB's first-packet path.
#pragma once

#include <map>
#include <set>
#include <vector>

#include "analysis/pdg.h"
#include "ir/ir.h"

namespace nfactor::analysis {

struct TraceEvent {
  int node = -1;  // CFG node executed
  /// defining location -> index (into the trace) of the event that wrote
  /// it, for every location this event's uses read. A whole-variable use
  /// (send(pkt, ...)) carries one link per live partial definition.
  /// Locations absent here came from initial/persistent state.
  std::map<ir::Location, int> use_defs;
};

using Trace = std::vector<TraceEvent>;

/// Events (by trace index) contributing to the criterion event, following
/// dynamic data edges and (static) control dependences of executed nodes.
std::set<int> dynamic_slice_events(const Trace& trace, const Pdg& pdg,
                                   int criterion_event);

/// The dynamic slice as a set of CFG nodes (for source-line highlighting).
std::set<int> dynamic_slice_nodes(const Trace& trace, const Pdg& pdg,
                                  int criterion_event);

}  // namespace nfactor::analysis
