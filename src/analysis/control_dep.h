// Control dependence per Ferrante–Ottenstein–Warren: node n is control-
// dependent on branch b when one successor of b always reaches n (n
// postdominates it) and another can bypass n.
#pragma once

#include <set>
#include <vector>

#include "analysis/dominators.h"
#include "ir/ir.h"

namespace nfactor::analysis {

struct ControlDeps {
  /// deps[n] = branch nodes that n is control-dependent on.
  std::vector<std::set<int>> deps;
};

ControlDeps control_dependence(const ir::Cfg& cfg);
ControlDeps control_dependence(const ir::Cfg& cfg, const DomTree& pdom);

}  // namespace nfactor::analysis
