#include "analysis/live_vars.h"

#include <deque>

#include "analysis/reaching_defs.h"

namespace nfactor::analysis {

LiveVars::LiveVars(const ir::Cfg& cfg) {
  for (const auto& n : cfg.nodes) {
    in_[n->id] = {};
    out_[n->id] = {};
  }

  std::deque<int> work;
  std::vector<char> queued(cfg.size(), 1);
  // Seed in reverse order for fast convergence.
  for (auto it = cfg.nodes.rbegin(); it != cfg.nodes.rend(); ++it) {
    work.push_back((*it)->id);
  }

  while (!work.empty()) {
    const int u = work.front();
    work.pop_front();
    queued[static_cast<std::size_t>(u)] = 0;

    std::set<ir::Location>& out = out_[u];
    for (const int s : cfg.node(u).succs) {
      if (s < 0) continue;
      const auto& sin = in_[s];
      out.insert(sin.begin(), sin.end());
    }

    // in = uses ∪ (out − strong defs)
    std::set<ir::Location> in = cfg.node(u).uses();
    for (const auto& loc : out) {
      bool killed = false;
      for (const auto& d : cfg.node(u).defs()) {
        if (cfg.node(u).is_strong_def(d) && locations_alias(d, loc) &&
            d == loc) {
          killed = true;
          break;
        }
      }
      if (!killed) in.insert(loc);
    }

    if (in != in_[u]) {
      in_[u] = std::move(in);
      for (const int p : cfg.node(u).preds) {
        if (!queued[static_cast<std::size_t>(p)]) {
          queued[static_cast<std::size_t>(p)] = 1;
          work.push_back(p);
        }
      }
    }
  }
}

}  // namespace nfactor::analysis
