#include "analysis/control_dep.h"

namespace nfactor::analysis {

ControlDeps control_dependence(const ir::Cfg& cfg) {
  return control_dependence(cfg, postdominators(cfg));
}

ControlDeps control_dependence(const ir::Cfg& cfg, const DomTree& pdom) {
  ControlDeps out;
  out.deps.assign(cfg.size(), {});

  for (const auto& node : cfg.nodes) {
    const int a = node->id;
    for (const int b : node->succs) {
      if (b < 0) continue;
      // Edge (a, b) where b does not postdominate a: walk the pdom tree
      // from b up to (but excluding) ipdom(a).
      if (pdom.dominates(b, a)) continue;
      const int stop = pdom.reachable(a)
                           ? pdom.idom[static_cast<std::size_t>(a)]
                           : -1;
      int runner = b;
      while (runner != stop && runner >= 0) {
        out.deps[static_cast<std::size_t>(runner)].insert(a);
        if (!pdom.reachable(runner)) break;
        const int up = pdom.idom[static_cast<std::size_t>(runner)];
        if (up == runner) break;
        runner = up;
      }
    }
  }
  return out;
}

}  // namespace nfactor::analysis
