// Backward live-location analysis. Used by tests (fixpoint properties),
// the dead-state ablation bench, and as a sanity cross-check of the
// slicer (a sliced-away scalar assignment should be dead w.r.t. the
// criterion's live set).
#pragma once

#include <map>
#include <set>

#include "ir/ir.h"

namespace nfactor::analysis {

class LiveVars {
 public:
  explicit LiveVars(const ir::Cfg& cfg);

  const std::set<ir::Location>& live_in(int node) const {
    return in_.at(node);
  }
  const std::set<ir::Location>& live_out(int node) const {
    return out_.at(node);
  }

 private:
  std::map<int, std::set<ir::Location>> in_;
  std::map<int, std::set<ir::Location>> out_;
};

}  // namespace nfactor::analysis
