// Runtime values of the NF-DSL. Tuples are immutable value types; lists
// and maps have reference semantics (matching the Python-style NF code
// the paper analyzes, where module-level dicts are mutated in place);
// packets are value types mutated through their owning variable.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <variant>
#include <vector>

#include "netsim/packet.h"

namespace nfactor::runtime {

using Int = std::int64_t;
using Tuple = std::vector<Int>;

struct Value;

struct ListV {
  std::vector<Value> items;
};

struct MapV {
  std::map<Tuple, Value> items;
};

struct Value {
  std::variant<std::monostate, Int, bool, std::string, Tuple,
               std::shared_ptr<ListV>, std::shared_ptr<MapV>, netsim::Packet>
      v;

  Value() = default;
  Value(Int i) : v(i) {}
  Value(bool b) : v(b) {}
  Value(std::string s) : v(std::move(s)) {}
  Value(Tuple t) : v(std::move(t)) {}
  Value(std::shared_ptr<ListV> l) : v(std::move(l)) {}
  Value(std::shared_ptr<MapV> m) : v(std::move(m)) {}
  Value(netsim::Packet p) : v(std::move(p)) {}

  bool is_int() const { return std::holds_alternative<Int>(v); }
  bool is_bool() const { return std::holds_alternative<bool>(v); }
  bool is_str() const { return std::holds_alternative<std::string>(v); }
  bool is_tuple() const { return std::holds_alternative<Tuple>(v); }
  bool is_list() const { return std::holds_alternative<std::shared_ptr<ListV>>(v); }
  bool is_map() const { return std::holds_alternative<std::shared_ptr<MapV>>(v); }
  bool is_packet() const { return std::holds_alternative<netsim::Packet>(v); }
  bool is_unset() const { return std::holds_alternative<std::monostate>(v); }

  Int as_int() const { return std::get<Int>(v); }
  bool as_bool() const { return std::get<bool>(v); }
  const std::string& as_str() const { return std::get<std::string>(v); }
  const Tuple& as_tuple() const { return std::get<Tuple>(v); }
  ListV& as_list() { return *std::get<std::shared_ptr<ListV>>(v); }
  const ListV& as_list() const { return *std::get<std::shared_ptr<ListV>>(v); }
  MapV& as_map() { return *std::get<std::shared_ptr<MapV>>(v); }
  const MapV& as_map() const { return *std::get<std::shared_ptr<MapV>>(v); }
  netsim::Packet& as_packet() { return std::get<netsim::Packet>(v); }
  const netsim::Packet& as_packet() const { return std::get<netsim::Packet>(v); }
};

/// Structural equality (== / != / map-key semantics). Lists/maps compare
/// by contents, packets by field equality.
bool value_eq(const Value& a, const Value& b);

/// Normalize a key value (int or tuple) to the canonical Tuple key form.
Tuple to_key(const Value& v);

/// The DSL's deterministic hash — shared by the concrete runtime and the
/// model interpreter so hash-mode NFs agree between original and model.
Int dsl_hash(const Tuple& t);

std::string to_string(const Value& v);

/// Read a packet header field by DSL field name.
Int get_packet_field(const netsim::Packet& p, const std::string& field);
/// Write a packet header field by DSL field name (read-only fields throw
/// std::invalid_argument; sema normally prevents this).
void set_packet_field(netsim::Packet& p, const std::string& field, Int value);

}  // namespace nfactor::runtime
