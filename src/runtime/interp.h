// Concrete interpreter for lowered NF modules: runs the *original*
// program on real packets. Used by the accuracy experiment (differential
// testing against the synthesized model, §5), by dynamic slicing (trace
// recording), and as the reference semantics for every other component.
#pragma once

#include <optional>
#include <set>
#include <stdexcept>
#include <string>
#include <unordered_map>
#include <vector>

#include "analysis/dynamic_slice.h"
#include "ir/ir.h"
#include "netsim/packet.h"
#include "runtime/value.h"

namespace nfactor::runtime {

class RuntimeError : public std::runtime_error {
 public:
  RuntimeError(lang::SourceLoc loc, const std::string& msg)
      : std::runtime_error(std::to_string(loc.line) + ":" +
                           std::to_string(loc.col) + ": " + msg) {}
};

/// One processed packet's externally visible result.
struct Output {
  /// Packets emitted by send(), with their output ports, in order.
  std::vector<std::pair<netsim::Packet, int>> sent;
  bool dropped() const { return sent.empty(); }  // §3.2: default action
};

class Interpreter {
 public:
  explicit Interpreter(const ir::Module& m);

  /// Re-initialize: evaluate global initializers, run the init CFG.
  void reset();

  /// Process one packet through the per-packet body.
  Output process(const netsim::Packet& in);

  /// Persistent store access (tests & differential checks).
  const Value* global(const std::string& name) const;
  void set_global(const std::string& name, Value v);

  /// Record a dynamic trace of the next process() calls.
  void enable_trace(bool on) { tracing_ = on; }
  const analysis::Trace& trace() const { return trace_; }
  void clear_trace() { trace_.clear(); }

  /// Restrict execution to a node subset ("running the slice"): excluded
  /// non-branch nodes become no-ops; branch conditions always evaluate so
  /// control flow stays concrete.
  void set_node_filter(std::optional<std::set<int>> filter) {
    filter_ = std::move(filter);
  }

  /// Log lines captured from log() calls.
  const std::vector<std::string>& log_lines() const { return log_; }

  /// Safety valve for runaway loops inside one packet's processing.
  void set_step_limit(std::size_t n) { step_limit_ = n; }

 private:
  bool node_enabled(int id) const {
    return !filter_ || filter_->count(id) != 0;
  }

  Value eval(const lang::Expr& e);
  Value eval_call(const lang::Call& c);
  Value& lvalue(const std::string& var, lang::SourceLoc loc);
  Value lookup(const std::string& var, lang::SourceLoc loc);
  void exec_body(Output& out);
  void run_cfg(const ir::Cfg& cfg, Output* out, bool is_body);
  void record_event(const ir::Instr& n);

  const ir::Module& m_;
  netsim::Packet pending_input_;  // bound by the body's kRecv node
  std::unordered_map<std::string, Value> persistent_;
  std::unordered_map<std::string, Value> locals_;  // per-packet
  Output* cur_out_ = nullptr;

  bool tracing_ = false;
  analysis::Trace trace_;
  std::unordered_map<ir::Location, int> last_def_;  // location -> trace idx

  std::optional<std::set<int>> filter_;
  std::vector<std::string> log_;
  std::size_t step_limit_ = 1u << 20;
};

}  // namespace nfactor::runtime
