#include "runtime/value.h"

#include <sstream>
#include <stdexcept>

namespace nfactor::runtime {

bool value_eq(const Value& a, const Value& b) {
  if (a.v.index() != b.v.index()) return false;
  if (a.is_list()) {
    const auto& la = a.as_list().items;
    const auto& lb = b.as_list().items;
    if (la.size() != lb.size()) return false;
    for (std::size_t i = 0; i < la.size(); ++i) {
      if (!value_eq(la[i], lb[i])) return false;
    }
    return true;
  }
  if (a.is_map()) {
    const auto& ma = a.as_map().items;
    const auto& mb = b.as_map().items;
    if (ma.size() != mb.size()) return false;
    auto ia = ma.begin();
    auto ib = mb.begin();
    for (; ia != ma.end(); ++ia, ++ib) {
      if (ia->first != ib->first || !value_eq(ia->second, ib->second)) {
        return false;
      }
    }
    return true;
  }
  return a.v == b.v;
}

Tuple to_key(const Value& v) {
  if (v.is_int()) return Tuple{v.as_int()};
  if (v.is_bool()) return Tuple{v.as_bool() ? 1 : 0};
  if (v.is_tuple()) return v.as_tuple();
  throw std::invalid_argument("map keys must be ints or tuples, got " +
                              to_string(v));
}

Int dsl_hash(const Tuple& t) {
  // FNV-1a over the elements; masked positive so `hash(x) % n` behaves.
  std::uint64_t h = 1469598103934665603ULL;
  for (const Int x : t) {
    for (int i = 0; i < 8; ++i) {
      h ^= (static_cast<std::uint64_t>(x) >> (i * 8)) & 0xFF;
      h *= 1099511628211ULL;
    }
  }
  return static_cast<Int>(h & 0x7FFFFFFFFFFFFFFFULL);
}

std::string to_string(const Value& v) {
  std::ostringstream os;
  if (v.is_unset()) {
    os << "<unset>";
  } else if (v.is_int()) {
    os << v.as_int();
  } else if (v.is_bool()) {
    os << (v.as_bool() ? "true" : "false");
  } else if (v.is_str()) {
    os << '"' << v.as_str() << '"';
  } else if (v.is_tuple()) {
    os << '(';
    const auto& t = v.as_tuple();
    for (std::size_t i = 0; i < t.size(); ++i) {
      if (i) os << ", ";
      os << t[i];
    }
    os << ')';
  } else if (v.is_list()) {
    os << '[';
    const auto& l = v.as_list().items;
    for (std::size_t i = 0; i < l.size(); ++i) {
      if (i) os << ", ";
      os << to_string(l[i]);
    }
    os << ']';
  } else if (v.is_map()) {
    os << '{';
    bool first = true;
    for (const auto& [k, val] : v.as_map().items) {
      if (!first) os << ", ";
      first = false;
      os << to_string(Value(k)) << ": " << to_string(val);
    }
    os << '}';
  } else if (v.is_packet()) {
    os << netsim::to_string(v.as_packet());
  }
  return os.str();
}

namespace {

Int mac_to_int(const netsim::MacAddr& m) {
  Int out = 0;
  for (int i = 0; i < 6; ++i) out = out << 8 | m[static_cast<std::size_t>(i)];
  return out;
}

netsim::MacAddr int_to_mac(Int v) {
  netsim::MacAddr m;
  for (int i = 5; i >= 0; --i) {
    m[static_cast<std::size_t>(i)] = static_cast<std::uint8_t>(v);
    v >>= 8;
  }
  return m;
}

}  // namespace

Int get_packet_field(const netsim::Packet& p, const std::string& field) {
  if (field == "eth_src") return mac_to_int(p.eth_src);
  if (field == "eth_dst") return mac_to_int(p.eth_dst);
  if (field == "eth_type") return p.eth_type;
  if (field == "ip_src") return p.ip_src;
  if (field == "ip_dst") return p.ip_dst;
  if (field == "ip_proto") return p.ip_proto;
  if (field == "ip_ttl") return p.ip_ttl;
  if (field == "ip_id") return p.ip_id;
  if (field == "ip_tos") return p.ip_tos;
  if (field == "sport") return p.sport;
  if (field == "dport") return p.dport;
  if (field == "tcp_flags") return p.tcp_flags;
  if (field == "tcp_seq") return p.tcp_seq;
  if (field == "tcp_ack") return p.tcp_ack;
  if (field == "tcp_win") return p.tcp_win;
  if (field == "len") return static_cast<Int>(p.payload.size());
  if (field == "in_port") return p.in_port;
  throw std::invalid_argument("unknown packet field '" + field + "'");
}

void set_packet_field(netsim::Packet& p, const std::string& field, Int value) {
  const auto u32 = static_cast<std::uint32_t>(value);
  const auto u16 = static_cast<std::uint16_t>(value);
  const auto u8 = static_cast<std::uint8_t>(value);
  if (field == "eth_src") {
    p.eth_src = int_to_mac(value);
  } else if (field == "eth_dst") {
    p.eth_dst = int_to_mac(value);
  } else if (field == "eth_type") {
    p.eth_type = u16;
  } else if (field == "ip_src") {
    p.ip_src = u32;
  } else if (field == "ip_dst") {
    p.ip_dst = u32;
  } else if (field == "ip_proto") {
    p.ip_proto = u8;
  } else if (field == "ip_ttl") {
    p.ip_ttl = u8;
  } else if (field == "ip_id") {
    p.ip_id = u16;
  } else if (field == "ip_tos") {
    p.ip_tos = u8;
  } else if (field == "sport") {
    p.sport = u16;
  } else if (field == "dport") {
    p.dport = u16;
  } else if (field == "tcp_flags") {
    p.tcp_flags = u8;
  } else if (field == "tcp_seq") {
    p.tcp_seq = u32;
  } else if (field == "tcp_ack") {
    p.tcp_ack = u32;
  } else if (field == "tcp_win") {
    p.tcp_win = u16;
  } else {
    throw std::invalid_argument("packet field '" + field + "' is not writable");
  }
}

}  // namespace nfactor::runtime
