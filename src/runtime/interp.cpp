#include "runtime/interp.h"

#include <algorithm>

#include "lang/builtins.h"

namespace nfactor::runtime {

namespace {

using lang::Expr;
using lang::ExprKind;

Int as_int_or_throw(const Value& v, lang::SourceLoc loc, const char* what) {
  if (v.is_int()) return v.as_int();
  if (v.is_bool()) return v.as_bool() ? 1 : 0;
  throw RuntimeError(loc, std::string(what) + " must be an int, got " +
                              to_string(v));
}

bool as_bool_or_throw(const Value& v, lang::SourceLoc loc) {
  if (v.is_bool()) return v.as_bool();
  if (v.is_int()) return v.as_int() != 0;
  throw RuntimeError(loc, "condition must be bool, got " + to_string(v));
}

}  // namespace

Interpreter::Interpreter(const ir::Module& m) : m_(m) { reset(); }

void Interpreter::reset() {
  persistent_.clear();
  locals_.clear();
  log_.clear();
  trace_.clear();
  last_def_.clear();

  for (const auto& g : m_.globals) {
    persistent_[g.name] = eval(*g.init);
  }
  Output scratch;
  run_cfg(m_.init, &scratch, /*is_body=*/false);
  // Anything the init section defined becomes persistent.
  for (auto& [name, v] : locals_) persistent_[name] = std::move(v);
  locals_.clear();
}

const Value* Interpreter::global(const std::string& name) const {
  const auto it = persistent_.find(name);
  return it == persistent_.end() ? nullptr : &it->second;
}

void Interpreter::set_global(const std::string& name, Value v) {
  persistent_[name] = std::move(v);
}

Value& Interpreter::lvalue(const std::string& var, lang::SourceLoc loc) {
  (void)loc;
  if (const auto it = persistent_.find(var); it != persistent_.end()) {
    return it->second;
  }
  return locals_[var];
}

Value Interpreter::lookup(const std::string& var, lang::SourceLoc loc) {
  if (const auto it = locals_.find(var); it != locals_.end()) return it->second;
  if (const auto it = persistent_.find(var); it != persistent_.end()) {
    return it->second;
  }
  throw RuntimeError(loc, "read of unset variable '" + var + "'");
}

Output Interpreter::process(const netsim::Packet& in) {
  locals_.clear();
  Output out;
  // Bind the packet: the kRecv node does this on execution.
  pending_input_ = in;
  run_cfg(m_.body, &out, /*is_body=*/true);
  return out;
}

void Interpreter::run_cfg(const ir::Cfg& cfg, Output* out, bool is_body) {
  if (cfg.nodes.empty()) return;
  cur_out_ = out;
  std::size_t steps = 0;
  int cur = cfg.entry;
  while (cur != cfg.exit) {
    if (++steps > step_limit_) {
      throw RuntimeError(cfg.node(cur).loc,
                         "step limit exceeded (runaway loop?)");
    }
    const ir::Instr& n = cfg.node(cur);
    int next = n.succs.empty() ? cfg.exit : n.succs[0];

    const bool enabled = node_enabled(n.id);
    switch (n.kind) {
      case ir::InstrKind::kEntry:
      case ir::InstrKind::kExit:
        break;
      case ir::InstrKind::kRecv: {
        if (is_body) {
          netsim::Packet p = pending_input_;
          if (n.aux) {
            // The program may filter by ingress port; honor the packet's
            // own in_port (set by the harness).
          }
          lvalue(n.var, n.loc) = Value(std::move(p));
        }
        if (tracing_ && is_body) record_event(n);
        break;
      }
      case ir::InstrKind::kAssign:
        if (enabled) {
          if (tracing_ && is_body) record_event(n);
          lvalue(n.var, n.loc) = eval(*n.value);
        }
        break;
      case ir::InstrKind::kFieldStore:
        if (enabled) {
          if (tracing_ && is_body) record_event(n);
          Value& base = lvalue(n.var, n.loc);
          if (!base.is_packet()) {
            throw RuntimeError(n.loc, "field store on non-packet '" + n.var + "'");
          }
          set_packet_field(base.as_packet(), n.field,
                           as_int_or_throw(eval(*n.value), n.loc, "field value"));
        }
        break;
      case ir::InstrKind::kIndexStore:
        if (enabled) {
          if (tracing_ && is_body) record_event(n);
          Value& base = lvalue(n.var, n.loc);
          if (base.is_map()) {
            base.as_map().items[to_key(eval(*n.index))] = eval(*n.value);
          } else if (base.is_list()) {
            const Int i = as_int_or_throw(eval(*n.index), n.loc, "list index");
            auto& items = base.as_list().items;
            if (i < 0 || static_cast<std::size_t>(i) >= items.size()) {
              throw RuntimeError(n.loc, "list index out of range");
            }
            items[static_cast<std::size_t>(i)] = eval(*n.value);
          } else {
            throw RuntimeError(n.loc, "element store on non-container '" +
                                          n.var + "'");
          }
        }
        break;
      case ir::InstrKind::kBranch: {
        // Branch conditions always evaluate, even under a node filter —
        // control flow must stay concrete when "running the slice".
        if (tracing_ && is_body) record_event(n);
        const bool taken = as_bool_or_throw(eval(*n.value), n.loc);
        next = taken ? n.succs[0] : n.succs[1];
        break;
      }
      case ir::InstrKind::kSend:
        if (enabled) {
          if (tracing_ && is_body) record_event(n);
          const Value pkt = eval(*n.value);
          if (!pkt.is_packet()) {
            throw RuntimeError(n.loc, "send() of non-packet value");
          }
          const Int port = as_int_or_throw(eval(*n.aux), n.loc, "send port");
          if (cur_out_) {
            cur_out_->sent.emplace_back(pkt.as_packet(), static_cast<int>(port));
          }
        }
        break;
      case ir::InstrKind::kCall:
        if (enabled) {
          if (tracing_ && is_body) record_event(n);
          if (n.callee == "log") {
            std::string line;
            for (std::size_t i = 0; i < n.args.size(); ++i) {
              if (i) line += " ";
              line += to_string(eval(*n.args[i]));
            }
            log_.push_back(std::move(line));
          } else if (n.callee == "push") {
            Value container = eval(*n.args[0]);
            if (!container.is_list()) {
              throw RuntimeError(n.loc, "push() needs a list");
            }
            container.as_list().items.push_back(eval(*n.args[1]));
          } else if (n.callee == "pop") {
            Value container = eval(*n.args[0]);
            if (!container.is_list() || container.as_list().items.empty()) {
              throw RuntimeError(n.loc, "pop() from empty or non-list");
            }
            Value front = container.as_list().items.front();
            container.as_list().items.erase(container.as_list().items.begin());
            if (!n.var.empty()) lvalue(n.var, n.loc) = std::move(front);
          } else {
            throw RuntimeError(n.loc, "unknown effect builtin '" + n.callee + "'");
          }
        }
        break;
    }

    // Record definitions for dynamic def-use links.
    if (tracing_ && is_body && enabled && !trace_.empty() &&
        trace_.back().node == n.id) {
      for (const auto& d : n.defs()) {
        last_def_[d] = static_cast<int>(trace_.size()) - 1;
      }
    }

    cur = next;
  }
  cur_out_ = nullptr;
}

void Interpreter::record_event(const ir::Instr& n) {
  analysis::TraceEvent ev;
  ev.node = n.id;
  // A use of a whole variable (e.g. send(pkt, ...)) reads every live
  // partial definition (each field's latest store), so the event links to
  // all of them — keyed by the defining location.
  for (const auto& u : n.uses()) {
    for (const auto& [loc, idx] : last_def_) {
      if (!analysis::locations_alias(loc, u)) continue;
      auto [it, inserted] = ev.use_defs.emplace(loc, idx);
      if (!inserted) it->second = std::max(it->second, idx);
    }
  }
  trace_.push_back(std::move(ev));
}

Value Interpreter::eval(const Expr& e) {
  switch (e.kind) {
    case ExprKind::kIntLit:
      return Value(static_cast<const lang::IntLit&>(e).value);
    case ExprKind::kBoolLit:
      return Value(static_cast<const lang::BoolLit&>(e).value);
    case ExprKind::kStrLit:
      return Value(static_cast<const lang::StrLit&>(e).value);
    case ExprKind::kMapLit:
      return Value(std::make_shared<MapV>());
    case ExprKind::kVarRef:
      return lookup(static_cast<const lang::VarRef&>(e).name, e.loc);
    case ExprKind::kUnary: {
      const auto& u = static_cast<const lang::Unary&>(e);
      const Value x = eval(*u.operand);
      if (u.op == lang::UnOp::kNeg) {
        return Value(-as_int_or_throw(x, e.loc, "negation operand"));
      }
      return Value(!as_bool_or_throw(x, e.loc));
    }
    case ExprKind::kBinary: {
      const auto& b = static_cast<const lang::Binary&>(e);
      using lang::BinOp;
      // Short-circuit logicals.
      if (b.op == BinOp::kAnd) {
        return Value(as_bool_or_throw(eval(*b.lhs), e.loc) &&
                     as_bool_or_throw(eval(*b.rhs), e.loc));
      }
      if (b.op == BinOp::kOr) {
        return Value(as_bool_or_throw(eval(*b.lhs), e.loc) ||
                     as_bool_or_throw(eval(*b.rhs), e.loc));
      }
      const Value l = eval(*b.lhs);
      const Value r = eval(*b.rhs);
      switch (b.op) {
        case BinOp::kEq: return Value(value_eq(l, r));
        case BinOp::kNe: return Value(!value_eq(l, r));
        case BinOp::kIn: {
          if (r.is_map()) {
            return Value(r.as_map().items.count(to_key(l)) != 0);
          }
          if (r.is_list()) {
            for (const auto& x : r.as_list().items) {
              if (value_eq(x, l)) return Value(true);
            }
            return Value(false);
          }
          throw RuntimeError(e.loc, "'in' needs a map or list");
        }
        default:
          break;
      }
      const Int a = as_int_or_throw(l, e.loc, "left operand");
      const Int c = as_int_or_throw(r, e.loc, "right operand");
      switch (b.op) {
        case BinOp::kAdd: return Value(a + c);
        case BinOp::kSub: return Value(a - c);
        case BinOp::kMul: return Value(a * c);
        case BinOp::kDiv:
          if (c == 0) throw RuntimeError(e.loc, "division by zero");
          return Value(a / c);
        case BinOp::kMod:
          if (c == 0) throw RuntimeError(e.loc, "modulo by zero");
          return Value(((a % c) + c) % c);  // non-negative, Python-style
        case BinOp::kLt: return Value(a < c);
        case BinOp::kLe: return Value(a <= c);
        case BinOp::kGt: return Value(a > c);
        case BinOp::kGe: return Value(a >= c);
        case BinOp::kBitAnd: return Value(a & c);
        case BinOp::kBitOr: return Value(a | c);
        case BinOp::kBitXor: return Value(a ^ c);
        case BinOp::kShl: return Value(a << (c & 63));
        case BinOp::kShr: return Value(static_cast<Int>(
            static_cast<std::uint64_t>(a) >> (c & 63)));
        default:
          throw RuntimeError(e.loc, "unhandled binary operator");
      }
    }
    case ExprKind::kTupleLit: {
      const auto& t = static_cast<const lang::TupleLit&>(e);
      Tuple out;
      out.reserve(t.elems.size());
      for (const auto& x : t.elems) {
        out.push_back(as_int_or_throw(eval(*x), e.loc, "tuple element"));
      }
      return Value(std::move(out));
    }
    case ExprKind::kListLit: {
      const auto& l = static_cast<const lang::ListLit&>(e);
      auto out = std::make_shared<ListV>();
      out->items.reserve(l.elems.size());
      for (const auto& x : l.elems) out->items.push_back(eval(*x));
      return Value(std::move(out));
    }
    case ExprKind::kIndex: {
      const auto& i = static_cast<const lang::Index&>(e);
      const Value base = eval(*i.base);
      if (base.is_tuple()) {
        const Int idx = as_int_or_throw(eval(*i.index), e.loc, "tuple index");
        const auto& t = base.as_tuple();
        if (idx < 0 || static_cast<std::size_t>(idx) >= t.size()) {
          throw RuntimeError(e.loc, "tuple index out of range");
        }
        return Value(t[static_cast<std::size_t>(idx)]);
      }
      if (base.is_list()) {
        const Int idx = as_int_or_throw(eval(*i.index), e.loc, "list index");
        const auto& items = base.as_list().items;
        if (idx < 0 || static_cast<std::size_t>(idx) >= items.size()) {
          throw RuntimeError(e.loc, "list index out of range");
        }
        return items[static_cast<std::size_t>(idx)];
      }
      if (base.is_map()) {
        const Tuple key = to_key(eval(*i.index));
        const auto& items = base.as_map().items;
        const auto it = items.find(key);
        if (it == items.end()) {
          throw RuntimeError(e.loc, "map key not found: " +
                                        to_string(Value(key)));
        }
        return it->second;
      }
      throw RuntimeError(e.loc, "indexing non-container value");
    }
    case ExprKind::kField: {
      const auto& f = static_cast<const lang::FieldRef&>(e);
      const Value base = eval(*f.base);
      if (!base.is_packet()) {
        throw RuntimeError(e.loc, "field access on non-packet value");
      }
      return Value(get_packet_field(base.as_packet(), f.field));
    }
    case ExprKind::kCall:
      return eval_call(static_cast<const lang::Call&>(e));
  }
  throw RuntimeError(e.loc, "unhandled expression kind");
}

Value Interpreter::eval_call(const lang::Call& c) {
  if (c.callee == "len") {
    const Value x = eval(*c.args[0]);
    if (x.is_tuple()) return Value(static_cast<Int>(x.as_tuple().size()));
    if (x.is_list()) return Value(static_cast<Int>(x.as_list().items.size()));
    if (x.is_map()) return Value(static_cast<Int>(x.as_map().items.size()));
    if (x.is_str()) return Value(static_cast<Int>(x.as_str().size()));
    throw RuntimeError(c.loc, "len() of unsupported value");
  }
  if (c.callee == "hash") {
    return Value(dsl_hash(to_key(eval(*c.args[0]))));
  }
  if (c.callee == "payload_contains") {
    const Value p = eval(*c.args[0]);
    const Value s = eval(*c.args[1]);
    if (!p.is_packet() || !s.is_str()) {
      throw RuntimeError(c.loc, "payload_contains(packet, str)");
    }
    const auto& pay = p.as_packet().payload;
    const auto& needle = s.as_str();
    if (needle.empty()) return Value(true);
    const auto it = std::search(pay.begin(), pay.end(), needle.begin(), needle.end());
    return Value(it != pay.end());
  }
  throw RuntimeError(c.loc, "call to '" + c.callee +
                                "' not executable in expression position");
}

}  // namespace nfactor::runtime
