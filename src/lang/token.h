// Token vocabulary of the NF-DSL, the language the corpus NFs are written
// in. The DSL is a small imperative language with first-class packets,
// tuples, lists and maps — expressive enough for every code pattern the
// paper discusses (Figs. 1, 3, 4, 5) while keeping the frontend fully
// analyzable.
#pragma once

#include <cstdint>
#include <string>

namespace nfactor::lang {

enum class Tok : std::uint8_t {
  kEof,
  kInt,     // 123, 0x1F, or dotted-quad IPv4 literal 3.3.3.3
  kString,  // "eth0"
  kIdent,

  // Keywords
  kVar, kDef, kIf, kElse, kWhile, kFor, kIn, kReturn, kBreak, kContinue,
  kTrue, kFalse,

  // Punctuation
  kLParen, kRParen, kLBrace, kRBrace, kLBracket, kRBracket,
  kComma, kSemi, kDot, kDotDot, kColon,

  // Operators
  kAssign, kPlusAssign, kMinusAssign, kStarAssign, kPercentAssign,
  kPlus, kMinus, kStar, kSlash, kPercent,
  kEq, kNe, kLt, kLe, kGt, kGe,
  kAndAnd, kOrOr, kNot,
  kAmp, kPipe, kCaret, kShl, kShr,
};

struct SourceLoc {
  int line = 0;
  int col = 0;
};

struct Token {
  Tok kind = Tok::kEof;
  std::string text;       // identifier / string contents
  std::int64_t value = 0; // integer literals
  SourceLoc loc;
};

/// Spelled-out token name for diagnostics ("'=='", "identifier", ...).
std::string token_name(Tok t);

}  // namespace nfactor::lang
