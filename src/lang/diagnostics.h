// Diagnostics for the frontend: errors carry a source location and are
// thrown as ParseError / SemaError; callers that want to accumulate use a
// DiagnosticSink.
#pragma once

#include <stdexcept>
#include <string>
#include <vector>

#include "lang/token.h"

namespace nfactor::lang {

/// A single frontend diagnostic.
struct Diagnostic {
  SourceLoc loc;
  std::string message;

  std::string render(const std::string& unit = "<input>") const {
    return unit + ":" + std::to_string(loc.line) + ":" +
           std::to_string(loc.col) + ": " + message;
  }
};

class FrontendError : public std::runtime_error {
 public:
  FrontendError(SourceLoc loc, const std::string& msg)
      : std::runtime_error(Diagnostic{loc, msg}.render()), diag_{loc, msg} {}
  const Diagnostic& diag() const { return diag_; }

 private:
  Diagnostic diag_;
};

class LexError : public FrontendError {
  using FrontendError::FrontendError;
};
class ParseError : public FrontendError {
  using FrontendError::FrontendError;
};
class SemaError : public FrontendError {
  using FrontendError::FrontendError;
};

}  // namespace nfactor::lang
