// Diagnostics shared by the frontend and the lint engine. Errors carry a
// source location and are thrown as LexError / ParseError / SemaError;
// callers that want to accumulate (the lint driver, IDE-style tooling)
// use a DiagnosticSink, which collects diagnostics with a severity and a
// stable check code and renders them as text or JSON.
#pragma once

#include <algorithm>
#include <array>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

#include "lang/token.h"

namespace nfactor::lang {

enum class Severity : std::uint8_t { kNote, kWarning, kError };

inline std::string to_string(Severity s) {
  switch (s) {
    case Severity::kNote: return "note";
    case Severity::kWarning: return "warning";
    case Severity::kError: return "error";
  }
  return "?";
}

/// A single diagnostic. `code` is the stable check identifier (NF1xx
/// frontend, NF2xx dataflow, NF3xx model-level; docs/lint.md has the
/// catalog); empty for ad-hoc frontend errors.
struct Diagnostic {
  SourceLoc loc;
  std::string message;
  Severity severity = Severity::kError;
  std::string code;

  /// `unit:line:col: severity: CODE: message` (code part omitted when
  /// empty, matching the historical frontend-error rendering).
  std::string render(const std::string& unit = "<input>") const {
    std::string out = unit + ":" + std::to_string(loc.line) + ":" +
                      std::to_string(loc.col) + ": ";
    if (!code.empty()) {
      out += to_string(severity) + ": " + code + ": ";
    }
    return out + message;
  }
};

/// Accumulates diagnostics (frontend + lint share this type). Stable
/// insertion order is preserved; renderers sort by source location so
/// golden output does not depend on check execution order.
class DiagnosticSink {
 public:
  void report(Diagnostic d) {
    counts_[static_cast<std::size_t>(d.severity)]++;
    diags_.push_back(std::move(d));
  }
  void report(SourceLoc loc, Severity sev, std::string code,
              std::string message) {
    report(Diagnostic{loc, std::move(message), sev, std::move(code)});
  }

  const std::vector<Diagnostic>& diagnostics() const { return diags_; }
  std::size_t size() const { return diags_.size(); }
  bool empty() const { return diags_.empty(); }

  int notes() const { return counts_[0]; }
  int warnings() const { return counts_[1]; }
  int errors() const { return counts_[2]; }
  bool has_errors() const { return errors() > 0; }

  /// One rendered diagnostic per line, ordered by source location
  /// (then code), followed by nothing — callers append their own summary.
  std::string render_text(const std::string& unit = "<input>") const {
    std::string out;
    for (const Diagnostic* d : ordered()) {
      out += d->render(unit);
      out += '\n';
    }
    return out;
  }

  /// Machine-readable form:
  ///   {"unit": ..., "diagnostics": [{line,col,severity,code,message}...],
  ///    "counts": {"note":N,"warning":N,"error":N}}
  std::string render_json(const std::string& unit = "<input>") const;

 private:
  std::vector<const Diagnostic*> ordered() const {
    std::vector<const Diagnostic*> v;
    v.reserve(diags_.size());
    for (const auto& d : diags_) v.push_back(&d);
    std::stable_sort(v.begin(), v.end(),
                     [](const Diagnostic* a, const Diagnostic* b) {
                       if (a->loc.line != b->loc.line)
                         return a->loc.line < b->loc.line;
                       if (a->loc.col != b->loc.col) return a->loc.col < b->loc.col;
                       return a->code < b->code;
                     });
    return v;
  }

  std::vector<Diagnostic> diags_;
  std::array<int, 3> counts_{};
};

class FrontendError : public std::runtime_error {
 public:
  FrontendError(SourceLoc loc, const std::string& msg)
      : std::runtime_error(Diagnostic{loc, msg, Severity::kError, {}}.render()),
        diag_{loc, msg, Severity::kError, {}} {}
  const Diagnostic& diag() const { return diag_; }

 private:
  Diagnostic diag_;
};

class LexError : public FrontendError {
  using FrontendError::FrontendError;
};
class ParseError : public FrontendError {
  using FrontendError::FrontendError;
};
class SemaError : public FrontendError {
  using FrontendError::FrontendError;
};

}  // namespace nfactor::lang
