#pragma once

#include <string_view>
#include <vector>

#include "lang/token.h"

namespace nfactor::lang {

/// Tokenize a whole compilation unit. `#` starts a line comment.
/// Integer literals: decimal, 0x hex, and dotted-quad IPv4 (3.3.3.3),
/// which lexes to the 32-bit big-endian integer value — the DSL has no
/// floating point, so the form is unambiguous.
/// Throws LexError on malformed input.
std::vector<Token> lex(std::string_view source);

}  // namespace nfactor::lang
