// Semantic analysis: name resolution, type inference/checking, builtin
// signature checks, packet-field checks, recursion rejection. Annotates
// Expr::type in place and returns symbol information consumed by the
// lowerer and StateAlyzer.
#pragma once

#include <map>
#include <set>
#include <string>

#include "lang/ast.h"

namespace nfactor::lang {

struct FuncInfo {
  Type return_type = Type::kUnknown;  // kVoid once a bare `return;` is seen
  std::map<std::string, Type> locals;  // params + assigned locals
  std::set<std::string> callees;       // user functions called
  std::set<std::string> globals_read;
  std::set<std::string> globals_written;
};

struct SemaInfo {
  std::map<std::string, Type> globals;
  std::map<std::string, FuncInfo> funcs;

  bool is_global(const std::string& name) const {
    return globals.count(name) != 0;
  }
};

/// Analyze `prog`, annotating expression types in place.
/// Throws SemaError on the first error.
SemaInfo analyze(Program& prog);

}  // namespace nfactor::lang
