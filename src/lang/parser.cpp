#include "lang/parser.h"

#include <optional>

#include "lang/diagnostics.h"
#include "lang/lexer.h"

namespace nfactor::lang {

namespace {

/// Binding powers for precedence climbing; higher binds tighter.
int precedence(Tok t) {
  switch (t) {
    case Tok::kOrOr: return 1;
    case Tok::kAndAnd: return 2;
    case Tok::kIn: return 3;
    case Tok::kEq: case Tok::kNe: return 4;
    case Tok::kLt: case Tok::kLe: case Tok::kGt: case Tok::kGe: return 5;
    case Tok::kPipe: return 6;
    case Tok::kCaret: return 7;
    case Tok::kAmp: return 8;
    case Tok::kShl: case Tok::kShr: return 9;
    case Tok::kPlus: case Tok::kMinus: return 10;
    case Tok::kStar: case Tok::kSlash: case Tok::kPercent: return 11;
    default: return -1;
  }
}

BinOp to_binop(Tok t) {
  switch (t) {
    case Tok::kOrOr: return BinOp::kOr;
    case Tok::kAndAnd: return BinOp::kAnd;
    case Tok::kIn: return BinOp::kIn;
    case Tok::kEq: return BinOp::kEq;
    case Tok::kNe: return BinOp::kNe;
    case Tok::kLt: return BinOp::kLt;
    case Tok::kLe: return BinOp::kLe;
    case Tok::kGt: return BinOp::kGt;
    case Tok::kGe: return BinOp::kGe;
    case Tok::kPipe: return BinOp::kBitOr;
    case Tok::kCaret: return BinOp::kBitXor;
    case Tok::kAmp: return BinOp::kBitAnd;
    case Tok::kShl: return BinOp::kShl;
    case Tok::kShr: return BinOp::kShr;
    case Tok::kPlus: return BinOp::kAdd;
    case Tok::kMinus: return BinOp::kSub;
    case Tok::kStar: return BinOp::kMul;
    case Tok::kSlash: return BinOp::kDiv;
    case Tok::kPercent: return BinOp::kMod;
    default: throw std::logic_error("not a binary operator token");
  }
}

class Parser {
 public:
  Parser(std::vector<Token> toks, std::string unit)
      : toks_(std::move(toks)), unit_(std::move(unit)) {}

  Program run() {
    Program p;
    p.unit_name = unit_;
    while (!at(Tok::kEof)) {
      if (at(Tok::kVar)) {
        p.globals.push_back(global());
      } else if (at(Tok::kDef)) {
        p.funcs.push_back(func());
      } else {
        fail("expected 'var' or 'def' at top level");
      }
    }
    return p;
  }

 private:
  const Token& cur() const { return toks_[pos_]; }
  const Token& peek(std::size_t ahead = 1) const {
    const std::size_t i = pos_ + ahead;
    return i < toks_.size() ? toks_[i] : toks_.back();
  }
  bool at(Tok t) const { return cur().kind == t; }

  Token advance() { return toks_[pos_++]; }

  Token expect(Tok t, const char* what) {
    if (!at(t)) {
      fail(std::string("expected ") + what + ", found " +
           token_name(cur().kind));
    }
    return advance();
  }

  bool accept(Tok t) {
    if (at(t)) {
      ++pos_;
      return true;
    }
    return false;
  }

  [[noreturn]] void fail(const std::string& msg) const {
    throw ParseError(cur().loc, msg);
  }

  GlobalVar global() {
    const SourceLoc loc = expect(Tok::kVar, "'var'").loc;
    std::string name = expect(Tok::kIdent, "identifier").text;
    expect(Tok::kAssign, "'='");
    ExprPtr init = expression();
    expect(Tok::kSemi, "';'");
    return {std::move(name), std::move(init), loc};
  }

  FuncDef func() {
    FuncDef f;
    f.loc = expect(Tok::kDef, "'def'").loc;
    f.name = expect(Tok::kIdent, "function name").text;
    expect(Tok::kLParen, "'('");
    if (!at(Tok::kRParen)) {
      do {
        f.params.push_back(expect(Tok::kIdent, "parameter name").text);
      } while (accept(Tok::kComma));
    }
    expect(Tok::kRParen, "')'");
    f.body = block();
    return f;
  }

  std::unique_ptr<Block> block() {
    auto b = std::make_unique<Block>(cur().loc);
    expect(Tok::kLBrace, "'{'");
    while (!at(Tok::kRBrace)) {
      if (at(Tok::kEof)) fail("unterminated block");
      b->stmts.push_back(statement());
    }
    expect(Tok::kRBrace, "'}'");
    return b;
  }

  StmtPtr statement() {
    switch (cur().kind) {
      case Tok::kIf: return if_stmt();
      case Tok::kWhile: return while_stmt();
      case Tok::kFor: return for_stmt();
      case Tok::kReturn: {
        auto s = std::make_unique<Return>(advance().loc);
        if (!at(Tok::kSemi)) s->value = expression();
        expect(Tok::kSemi, "';'");
        return s;
      }
      case Tok::kBreak: {
        auto s = std::make_unique<Break>(advance().loc);
        expect(Tok::kSemi, "';'");
        return s;
      }
      case Tok::kContinue: {
        auto s = std::make_unique<Continue>(advance().loc);
        expect(Tok::kSemi, "';'");
        return s;
      }
      default:
        return simple_stmt();
    }
  }

  StmtPtr if_stmt() {
    auto s = std::make_unique<If>(expect(Tok::kIf, "'if'").loc);
    expect(Tok::kLParen, "'('");
    s->cond = expression();
    expect(Tok::kRParen, "')'");
    s->then_body = block();
    if (accept(Tok::kElse)) {
      if (at(Tok::kIf)) {
        s->else_body = if_stmt();
      } else {
        s->else_body = block();
      }
    }
    return s;
  }

  StmtPtr while_stmt() {
    auto s = std::make_unique<While>(expect(Tok::kWhile, "'while'").loc);
    expect(Tok::kLParen, "'('");
    s->cond = expression();
    expect(Tok::kRParen, "')'");
    s->body = block();
    return s;
  }

  StmtPtr for_stmt() {
    auto s = std::make_unique<For>(expect(Tok::kFor, "'for'").loc);
    s->var = expect(Tok::kIdent, "loop variable").text;
    expect(Tok::kIn, "'in'");
    s->begin = expression();
    expect(Tok::kDotDot, "'..'");
    s->end = expression();
    s->body = block();
    return s;
  }

  /// Assignment (plain / augmented / field / element) or expression stmt.
  StmtPtr simple_stmt() {
    const SourceLoc loc = cur().loc;

    // Lookahead: IDENT followed by an assignment-shaped suffix.
    if (at(Tok::kIdent)) {
      // var = / var += ...
      const Tok after = peek().kind;
      if (after == Tok::kAssign || after == Tok::kPlusAssign ||
          after == Tok::kMinusAssign || after == Tok::kStarAssign ||
          after == Tok::kPercentAssign) {
        auto a = std::make_unique<Assign>(loc);
        a->target = Assign::Target::kVar;
        a->var = advance().text;
        a->value = rhs_with_desugar(a->var, nullptr, "", advance().kind, loc);
        expect(Tok::kSemi, "';'");
        return a;
      }
      // base.field = ...
      if (after == Tok::kDot && peek(2).kind == Tok::kIdent &&
          is_assign_tok(peek(3).kind)) {
        auto a = std::make_unique<Assign>(loc);
        a->target = Assign::Target::kField;
        a->var = advance().text;
        advance();  // '.'
        a->field = advance().text;
        const Tok op = advance().kind;
        a->value = rhs_with_desugar(a->var, nullptr, a->field, op, loc);
        expect(Tok::kSemi, "';'");
        return a;
      }
      // base[index] = ...  — need to parse the index expression first, so
      // scan: parse speculatively when the '[' is present.
      if (after == Tok::kLBracket) {
        const std::size_t save = pos_;
        std::string base = advance().text;
        advance();  // '['
        ExprPtr index = expression();
        if (at(Tok::kRBracket) && is_assign_tok(peek().kind)) {
          advance();  // ']'
          const Tok op = advance().kind;
          auto a = std::make_unique<Assign>(loc);
          a->target = Assign::Target::kIndex;
          a->var = std::move(base);
          a->index = std::move(index);
          a->value = rhs_with_desugar(a->var, a->index.get(), "", op, loc);
          expect(Tok::kSemi, "';'");
          return a;
        }
        pos_ = save;  // not an element assignment; reparse as expression
      }
    }

    auto s = std::make_unique<ExprStmt>(loc);
    s->expr = expression();
    expect(Tok::kSemi, "';'");
    return s;
  }

  static bool is_assign_tok(Tok t) {
    return t == Tok::kAssign || t == Tok::kPlusAssign ||
           t == Tok::kMinusAssign || t == Tok::kStarAssign ||
           t == Tok::kPercentAssign;
  }

  /// Parse the RHS; for augmented ops, desugar `x op= e` into `x = x op e`
  /// (and similarly for field/index targets).
  ExprPtr rhs_with_desugar(const std::string& base, const Expr* index,
                           const std::string& field, Tok op, SourceLoc loc) {
    ExprPtr rhs = expression();
    if (op == Tok::kAssign) return rhs;

    BinOp bin;
    switch (op) {
      case Tok::kPlusAssign: bin = BinOp::kAdd; break;
      case Tok::kMinusAssign: bin = BinOp::kSub; break;
      case Tok::kStarAssign: bin = BinOp::kMul; break;
      case Tok::kPercentAssign: bin = BinOp::kMod; break;
      default: throw std::logic_error("not an augmented assignment");
    }

    ExprPtr current;
    if (index != nullptr) {
      current = std::make_unique<Index>(std::make_unique<VarRef>(base, loc),
                                        index->clone(), loc);
    } else if (!field.empty()) {
      current = std::make_unique<FieldRef>(std::make_unique<VarRef>(base, loc),
                                           field, loc);
    } else {
      current = std::make_unique<VarRef>(base, loc);
    }
    return std::make_unique<Binary>(bin, std::move(current), std::move(rhs), loc);
  }

  ExprPtr expression(int min_prec = 0) {
    ExprPtr lhs = unary();
    for (;;) {
      const int prec = precedence(cur().kind);
      if (prec < min_prec || prec < 0) return lhs;
      const Token op = advance();
      ExprPtr rhs = expression(prec + 1);  // all operators left-associative
      lhs = std::make_unique<Binary>(to_binop(op.kind), std::move(lhs),
                                     std::move(rhs), op.loc);
    }
  }

  ExprPtr unary() {
    if (at(Tok::kNot)) {
      const SourceLoc loc = advance().loc;
      return std::make_unique<Unary>(UnOp::kNot, unary(), loc);
    }
    if (at(Tok::kMinus)) {
      const SourceLoc loc = advance().loc;
      return std::make_unique<Unary>(UnOp::kNeg, unary(), loc);
    }
    return postfix();
  }

  ExprPtr postfix() {
    ExprPtr e = primary();
    for (;;) {
      if (at(Tok::kLBracket)) {
        const SourceLoc loc = advance().loc;
        ExprPtr idx = expression();
        expect(Tok::kRBracket, "']'");
        e = std::make_unique<Index>(std::move(e), std::move(idx), loc);
      } else if (at(Tok::kDot) && peek().kind == Tok::kIdent) {
        const SourceLoc loc = advance().loc;
        std::string field = advance().text;
        e = std::make_unique<FieldRef>(std::move(e), std::move(field), loc);
      } else {
        return e;
      }
    }
  }

  ExprPtr primary() {
    const Token t = cur();
    switch (t.kind) {
      case Tok::kInt:
        advance();
        return std::make_unique<IntLit>(t.value, t.loc);
      case Tok::kTrue:
        advance();
        return std::make_unique<BoolLit>(true, t.loc);
      case Tok::kFalse:
        advance();
        return std::make_unique<BoolLit>(false, t.loc);
      case Tok::kString:
        advance();
        return std::make_unique<StrLit>(t.text, t.loc);
      case Tok::kIdent: {
        advance();
        if (at(Tok::kLParen)) {
          advance();
          std::vector<ExprPtr> args;
          if (!at(Tok::kRParen)) {
            do {
              args.push_back(expression());
            } while (accept(Tok::kComma));
          }
          expect(Tok::kRParen, "')'");
          return std::make_unique<Call>(t.text, std::move(args), t.loc);
        }
        return std::make_unique<VarRef>(t.text, t.loc);
      }
      case Tok::kLParen: {
        advance();
        ExprPtr first = expression();
        if (accept(Tok::kComma)) {
          std::vector<ExprPtr> elems;
          elems.push_back(std::move(first));
          do {
            elems.push_back(expression());
          } while (accept(Tok::kComma));
          expect(Tok::kRParen, "')'");
          return std::make_unique<TupleLit>(std::move(elems), t.loc);
        }
        expect(Tok::kRParen, "')'");
        return first;
      }
      case Tok::kLBracket: {
        advance();
        std::vector<ExprPtr> elems;
        while (!at(Tok::kRBracket)) {
          elems.push_back(expression());
          if (!accept(Tok::kComma)) break;  // trailing comma allowed
        }
        expect(Tok::kRBracket, "']'");
        return std::make_unique<ListLit>(std::move(elems), t.loc);
      }
      case Tok::kLBrace: {
        advance();
        expect(Tok::kRBrace, "'}' (only the empty map literal is supported)");
        return std::make_unique<MapLit>(t.loc);
      }
      default:
        fail("expected expression, found " + token_name(t.kind));
    }
  }

  std::vector<Token> toks_;
  std::string unit_;
  std::size_t pos_ = 0;
};

}  // namespace

Program parse(std::string_view source, std::string unit_name) {
  return Parser(lex(source), std::move(unit_name)).run();
}

}  // namespace nfactor::lang
