// Abstract syntax tree of the NF-DSL. Nodes are owned via unique_ptr;
// every node supports deep clone() because the transform module (§3.2
// code-structure normalization) rewrites ASTs wholesale.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "lang/token.h"

namespace nfactor::lang {

/// DSL value types, inferred by Sema.
enum class Type : std::uint8_t {
  kUnknown,
  kInt,
  kBool,
  kStr,
  kTuple,   // immutable sequence of ints
  kList,    // sequence of ints or tuples
  kMap,     // tuple/int -> tuple/int dictionary
  kPacket,
  kVoid,
};

std::string to_string(Type t);

enum class BinOp : std::uint8_t {
  kAdd, kSub, kMul, kDiv, kMod,
  kEq, kNe, kLt, kLe, kGt, kGe,
  kAnd, kOr,
  kBitAnd, kBitOr, kBitXor, kShl, kShr,
  kIn,  // membership: key in map / elem in list
};

enum class UnOp : std::uint8_t { kNeg, kNot };

std::string to_string(BinOp op);
std::string to_string(UnOp op);

// ---------------------------------------------------------------------------
// Expressions
// ---------------------------------------------------------------------------

enum class ExprKind : std::uint8_t {
  kIntLit, kBoolLit, kStrLit, kVarRef, kUnary, kBinary, kCall,
  kTupleLit, kListLit, kMapLit, kIndex, kField,
};

struct Expr;
using ExprPtr = std::unique_ptr<Expr>;

struct Expr {
  ExprKind kind;
  SourceLoc loc;
  Type type = Type::kUnknown;  // filled in by Sema

  virtual ~Expr() = default;
  virtual ExprPtr clone() const = 0;

 protected:
  Expr(ExprKind k, SourceLoc l) : kind(k), loc(l) {}
};

struct IntLit final : Expr {
  std::int64_t value;
  IntLit(std::int64_t v, SourceLoc l) : Expr(ExprKind::kIntLit, l), value(v) {}
  ExprPtr clone() const override { return std::make_unique<IntLit>(value, loc); }
};

struct BoolLit final : Expr {
  bool value;
  BoolLit(bool v, SourceLoc l) : Expr(ExprKind::kBoolLit, l), value(v) {}
  ExprPtr clone() const override { return std::make_unique<BoolLit>(value, loc); }
};

struct StrLit final : Expr {
  std::string value;
  StrLit(std::string v, SourceLoc l)
      : Expr(ExprKind::kStrLit, l), value(std::move(v)) {}
  ExprPtr clone() const override { return std::make_unique<StrLit>(value, loc); }
};

struct VarRef final : Expr {
  std::string name;
  VarRef(std::string n, SourceLoc l)
      : Expr(ExprKind::kVarRef, l), name(std::move(n)) {}
  ExprPtr clone() const override { return std::make_unique<VarRef>(name, loc); }
};

struct Unary final : Expr {
  UnOp op;
  ExprPtr operand;
  Unary(UnOp o, ExprPtr e, SourceLoc l)
      : Expr(ExprKind::kUnary, l), op(o), operand(std::move(e)) {}
  ExprPtr clone() const override {
    return std::make_unique<Unary>(op, operand->clone(), loc);
  }
};

struct Binary final : Expr {
  BinOp op;
  ExprPtr lhs, rhs;
  Binary(BinOp o, ExprPtr a, ExprPtr b, SourceLoc l)
      : Expr(ExprKind::kBinary, l), op(o), lhs(std::move(a)), rhs(std::move(b)) {}
  ExprPtr clone() const override {
    return std::make_unique<Binary>(op, lhs->clone(), rhs->clone(), loc);
  }
};

struct Call final : Expr {
  std::string callee;
  std::vector<ExprPtr> args;
  Call(std::string c, std::vector<ExprPtr> a, SourceLoc l)
      : Expr(ExprKind::kCall, l), callee(std::move(c)), args(std::move(a)) {}
  ExprPtr clone() const override {
    std::vector<ExprPtr> a;
    a.reserve(args.size());
    for (const auto& e : args) a.push_back(e->clone());
    return std::make_unique<Call>(callee, std::move(a), loc);
  }
};

struct TupleLit final : Expr {
  std::vector<ExprPtr> elems;
  TupleLit(std::vector<ExprPtr> e, SourceLoc l)
      : Expr(ExprKind::kTupleLit, l), elems(std::move(e)) {}
  ExprPtr clone() const override {
    std::vector<ExprPtr> e;
    e.reserve(elems.size());
    for (const auto& x : elems) e.push_back(x->clone());
    return std::make_unique<TupleLit>(std::move(e), loc);
  }
};

struct ListLit final : Expr {
  std::vector<ExprPtr> elems;
  ListLit(std::vector<ExprPtr> e, SourceLoc l)
      : Expr(ExprKind::kListLit, l), elems(std::move(e)) {}
  ExprPtr clone() const override {
    std::vector<ExprPtr> e;
    e.reserve(elems.size());
    for (const auto& x : elems) e.push_back(x->clone());
    return std::make_unique<ListLit>(std::move(e), loc);
  }
};

/// Only the empty map literal `{}` exists; maps are populated by element
/// stores.
struct MapLit final : Expr {
  explicit MapLit(SourceLoc l) : Expr(ExprKind::kMapLit, l) {}
  ExprPtr clone() const override { return std::make_unique<MapLit>(loc); }
};

struct Index final : Expr {
  ExprPtr base, index;
  Index(ExprPtr b, ExprPtr i, SourceLoc l)
      : Expr(ExprKind::kIndex, l), base(std::move(b)), index(std::move(i)) {}
  ExprPtr clone() const override {
    return std::make_unique<Index>(base->clone(), index->clone(), loc);
  }
};

/// Packet field access `pkt.ip_src`.
struct FieldRef final : Expr {
  ExprPtr base;
  std::string field;
  FieldRef(ExprPtr b, std::string f, SourceLoc l)
      : Expr(ExprKind::kField, l), base(std::move(b)), field(std::move(f)) {}
  ExprPtr clone() const override {
    return std::make_unique<FieldRef>(base->clone(), field, loc);
  }
};

// ---------------------------------------------------------------------------
// Statements
// ---------------------------------------------------------------------------

enum class StmtKind : std::uint8_t {
  kAssign, kIf, kWhile, kFor, kReturn, kBreak, kContinue, kExprStmt, kBlock,
};

struct Stmt;
using StmtPtr = std::unique_ptr<Stmt>;

struct Stmt {
  StmtKind kind;
  SourceLoc loc;
  virtual ~Stmt() = default;
  virtual StmtPtr clone() const = 0;

 protected:
  Stmt(StmtKind k, SourceLoc l) : kind(k), loc(l) {}
};

struct Block final : Stmt {
  std::vector<StmtPtr> stmts;
  explicit Block(SourceLoc l) : Stmt(StmtKind::kBlock, l) {}
  StmtPtr clone() const override {
    auto b = std::make_unique<Block>(loc);
    b->stmts.reserve(stmts.size());
    for (const auto& s : stmts) b->stmts.push_back(s->clone());
    return b;
  }
};

/// Assignment. Augmented forms (`+=`) are desugared by the parser.
/// Targets:
///   kVar:   var = value
///   kField: base.field = value        (packet field store)
///   kIndex: base[index] = value       (map/list element store)
struct Assign final : Stmt {
  enum class Target : std::uint8_t { kVar, kField, kIndex };
  Target target;
  std::string var;   // kVar: the variable; kField/kIndex: base variable name
  std::string field; // kField only
  ExprPtr index;     // kIndex only
  ExprPtr value;

  Assign(SourceLoc l) : Stmt(StmtKind::kAssign, l), target(Target::kVar) {}
  StmtPtr clone() const override {
    auto a = std::make_unique<Assign>(loc);
    a->target = target;
    a->var = var;
    a->field = field;
    a->index = index ? index->clone() : nullptr;
    a->value = value->clone();
    return a;
  }
};

struct If final : Stmt {
  ExprPtr cond;
  StmtPtr then_body;
  StmtPtr else_body;  // nullable; may be another If (else-if chain)
  If(SourceLoc l) : Stmt(StmtKind::kIf, l) {}
  StmtPtr clone() const override {
    auto s = std::make_unique<If>(loc);
    s->cond = cond->clone();
    s->then_body = then_body->clone();
    s->else_body = else_body ? else_body->clone() : nullptr;
    return s;
  }
};

struct While final : Stmt {
  ExprPtr cond;
  StmtPtr body;
  While(SourceLoc l) : Stmt(StmtKind::kWhile, l) {}
  StmtPtr clone() const override {
    auto s = std::make_unique<While>(loc);
    s->cond = cond->clone();
    s->body = body->clone();
    return s;
  }
};

/// `for v in a..b { ... }` iterates v = a, a+1, ..., b-1.
struct For final : Stmt {
  std::string var;
  ExprPtr begin, end;
  StmtPtr body;
  For(SourceLoc l) : Stmt(StmtKind::kFor, l) {}
  StmtPtr clone() const override {
    auto s = std::make_unique<For>(loc);
    s->var = var;
    s->begin = begin->clone();
    s->end = end->clone();
    s->body = body->clone();
    return s;
  }
};

struct Return final : Stmt {
  ExprPtr value;  // nullable
  Return(SourceLoc l) : Stmt(StmtKind::kReturn, l) {}
  StmtPtr clone() const override {
    auto s = std::make_unique<Return>(loc);
    s->value = value ? value->clone() : nullptr;
    return s;
  }
};

struct Break final : Stmt {
  Break(SourceLoc l) : Stmt(StmtKind::kBreak, l) {}
  StmtPtr clone() const override { return std::make_unique<Break>(loc); }
};

struct Continue final : Stmt {
  Continue(SourceLoc l) : Stmt(StmtKind::kContinue, l) {}
  StmtPtr clone() const override { return std::make_unique<Continue>(loc); }
};

struct ExprStmt final : Stmt {
  ExprPtr expr;
  ExprStmt(SourceLoc l) : Stmt(StmtKind::kExprStmt, l) {}
  StmtPtr clone() const override {
    auto s = std::make_unique<ExprStmt>(loc);
    s->expr = expr->clone();
    return s;
  }
};

// ---------------------------------------------------------------------------
// Declarations
// ---------------------------------------------------------------------------

struct GlobalVar {
  std::string name;
  ExprPtr init;
  SourceLoc loc;

  GlobalVar clone() const { return {name, init->clone(), loc}; }
};

struct FuncDef {
  std::string name;
  std::vector<std::string> params;
  std::unique_ptr<Block> body;
  SourceLoc loc;

  FuncDef clone() const {
    FuncDef f;
    f.name = name;
    f.params = params;
    auto b = body->clone();
    f.body.reset(static_cast<Block*>(b.release()));
    f.loc = loc;
    return f;
  }
};

struct Program {
  std::string unit_name = "<input>";
  std::vector<GlobalVar> globals;
  std::vector<FuncDef> funcs;

  Program clone() const {
    Program p;
    p.unit_name = unit_name;
    p.globals.reserve(globals.size());
    for (const auto& g : globals) p.globals.push_back(g.clone());
    p.funcs.reserve(funcs.size());
    for (const auto& f : funcs) p.funcs.push_back(f.clone());
    return p;
  }

  const FuncDef* find_func(const std::string& name) const {
    for (const auto& f : funcs) {
      if (f.name == name) return &f;
    }
    return nullptr;
  }

  FuncDef* find_func(const std::string& name) {
    for (auto& f : funcs) {
      if (f.name == name) return &f;
    }
    return nullptr;
  }
};

/// Pretty-print an AST back to parseable DSL source (used by the
/// transform module's output and in golden tests).
std::string to_source(const Program& p);
std::string to_source(const Stmt& s, int indent = 0);
std::string to_source(const Expr& e);

}  // namespace nfactor::lang
