#include "lang/builtins.h"

#include <unordered_map>

namespace nfactor::lang {

namespace {

using T = Type;
using R = BuiltinRole;

std::vector<BuiltinSig> make_builtins() {
  return {
      // Packet I/O — the anchors of Algorithm 1.
      {"recv", {T::kInt}, T::kPacket, R::kPktInput},
      {"send", {T::kPacket, T::kInt}, T::kVoid, R::kPktOutput},

      // Control-plane registration (Fig. 4b callback structure).
      {"sniff", {T::kInt, T::kUnknown}, T::kVoid, R::kControl},
      // Thread spawn (Fig. 4c consumer-producer structure).
      {"spawn", {T::kUnknown}, T::kVoid, R::kControl},

      // Pure helpers.
      {"len", {T::kUnknown}, T::kInt, R::kPure},
      {"hash", {T::kUnknown}, T::kInt, R::kPure},
      // Payload predicate: concrete substring search at runtime,
      // uninterpreted boolean in symbolic execution (snort-style content
      // rules).
      {"payload_contains", {T::kPacket, T::kStr}, T::kBool, R::kPure},

      // Logging — the canonical logVar producer.
      {"log", {T::kUnknown}, T::kVoid, R::kLog, /*variadic=*/true},

      // List mutation (queues in Fig. 4c).
      {"push", {T::kList, T::kUnknown}, T::kVoid, R::kEffect},
      {"pop", {T::kList}, T::kUnknown, R::kEffect},

      // Socket-level ops that hide state in the OS (Fig. 3, Fig. 4d).
      // Programs using these must pass through transform::unfold_sockets
      // before analysis or execution.
      {"sock_listen", {T::kInt}, T::kInt, R::kSocket},
      {"sock_accept", {T::kInt}, T::kInt, R::kSocket},
      {"sock_connect", {T::kInt, T::kInt}, T::kInt, R::kSocket},
      {"sock_recv", {T::kInt}, T::kPacket, R::kSocket},
      {"sock_send", {T::kInt, T::kPacket}, T::kVoid, R::kSocket},
      {"sock_close", {T::kInt}, T::kVoid, R::kSocket},
      {"fork", {}, T::kInt, R::kSocket},
  };
}

}  // namespace

const std::vector<BuiltinSig>& all_builtins() {
  static const std::vector<BuiltinSig> table = make_builtins();
  return table;
}

const BuiltinSig* find_builtin(const std::string& name) {
  static const std::unordered_map<std::string, const BuiltinSig*> index = [] {
    std::unordered_map<std::string, const BuiltinSig*> m;
    for (const auto& b : all_builtins()) m.emplace(b.name, &b);
    return m;
  }();
  const auto it = index.find(name);
  return it == index.end() ? nullptr : it->second;
}

const std::vector<PacketField>& packet_fields() {
  static const std::vector<PacketField> table = {
      {"eth_src", true},   {"eth_dst", true},
      {"eth_type", true},  {"ip_src", true},   {"ip_dst", true},
      {"ip_proto", true},  {"ip_ttl", true},   {"ip_id", true},
      {"ip_tos", true},    {"sport", true},    {"dport", true},
      {"tcp_flags", true}, {"tcp_seq", true},  {"tcp_ack", true},
      {"tcp_win", true},   {"len", false},     {"in_port", false},
  };
  return table;
}

const PacketField* find_packet_field(const std::string& name) {
  for (const auto& f : packet_fields()) {
    if (f.name == name) return &f;
  }
  return nullptr;
}

}  // namespace nfactor::lang
