#include "lang/ast.h"

#include <sstream>

namespace nfactor::lang {

std::string to_string(Type t) {
  switch (t) {
    case Type::kUnknown: return "unknown";
    case Type::kInt: return "int";
    case Type::kBool: return "bool";
    case Type::kStr: return "str";
    case Type::kTuple: return "tuple";
    case Type::kList: return "list";
    case Type::kMap: return "map";
    case Type::kPacket: return "packet";
    case Type::kVoid: return "void";
  }
  return "?";
}

std::string to_string(BinOp op) {
  switch (op) {
    case BinOp::kAdd: return "+";
    case BinOp::kSub: return "-";
    case BinOp::kMul: return "*";
    case BinOp::kDiv: return "/";
    case BinOp::kMod: return "%";
    case BinOp::kEq: return "==";
    case BinOp::kNe: return "!=";
    case BinOp::kLt: return "<";
    case BinOp::kLe: return "<=";
    case BinOp::kGt: return ">";
    case BinOp::kGe: return ">=";
    case BinOp::kAnd: return "&&";
    case BinOp::kOr: return "||";
    case BinOp::kBitAnd: return "&";
    case BinOp::kBitOr: return "|";
    case BinOp::kBitXor: return "^";
    case BinOp::kShl: return "<<";
    case BinOp::kShr: return ">>";
    case BinOp::kIn: return "in";
  }
  return "?";
}

std::string to_string(UnOp op) {
  return op == UnOp::kNeg ? "-" : "!";
}

namespace {

void print_expr(const Expr& e, std::ostream& os);

void print_list(const std::vector<ExprPtr>& xs, std::ostream& os) {
  for (std::size_t i = 0; i < xs.size(); ++i) {
    if (i) os << ", ";
    print_expr(*xs[i], os);
  }
}

void print_expr(const Expr& e, std::ostream& os) {
  switch (e.kind) {
    case ExprKind::kIntLit:
      os << static_cast<const IntLit&>(e).value;
      break;
    case ExprKind::kBoolLit:
      os << (static_cast<const BoolLit&>(e).value ? "true" : "false");
      break;
    case ExprKind::kStrLit:
      os << '"' << static_cast<const StrLit&>(e).value << '"';
      break;
    case ExprKind::kVarRef:
      os << static_cast<const VarRef&>(e).name;
      break;
    case ExprKind::kUnary: {
      const auto& u = static_cast<const Unary&>(e);
      os << to_string(u.op) << '(';
      print_expr(*u.operand, os);
      os << ')';
      break;
    }
    case ExprKind::kBinary: {
      const auto& b = static_cast<const Binary&>(e);
      os << '(';
      print_expr(*b.lhs, os);
      os << ' ' << to_string(b.op) << ' ';
      print_expr(*b.rhs, os);
      os << ')';
      break;
    }
    case ExprKind::kCall: {
      const auto& c = static_cast<const Call&>(e);
      os << c.callee << '(';
      print_list(c.args, os);
      os << ')';
      break;
    }
    case ExprKind::kTupleLit: {
      const auto& t = static_cast<const TupleLit&>(e);
      os << '(';
      print_list(t.elems, os);
      os << ')';
      break;
    }
    case ExprKind::kListLit: {
      const auto& l = static_cast<const ListLit&>(e);
      os << '[';
      print_list(l.elems, os);
      os << ']';
      break;
    }
    case ExprKind::kMapLit:
      os << "{}";
      break;
    case ExprKind::kIndex: {
      const auto& i = static_cast<const Index&>(e);
      print_expr(*i.base, os);
      os << '[';
      print_expr(*i.index, os);
      os << ']';
      break;
    }
    case ExprKind::kField: {
      const auto& f = static_cast<const FieldRef&>(e);
      print_expr(*f.base, os);
      os << '.' << f.field;
      break;
    }
  }
}

void print_stmt(const Stmt& s, std::ostream& os, int indent) {
  const std::string pad(static_cast<std::size_t>(indent) * 2, ' ');
  switch (s.kind) {
    case StmtKind::kBlock: {
      const auto& b = static_cast<const Block&>(s);
      for (const auto& st : b.stmts) print_stmt(*st, os, indent);
      break;
    }
    case StmtKind::kAssign: {
      const auto& a = static_cast<const Assign&>(s);
      os << pad;
      switch (a.target) {
        case Assign::Target::kVar:
          os << a.var;
          break;
        case Assign::Target::kField:
          os << a.var << '.' << a.field;
          break;
        case Assign::Target::kIndex:
          os << a.var << '[';
          print_expr(*a.index, os);
          os << ']';
          break;
      }
      os << " = ";
      print_expr(*a.value, os);
      os << ";\n";
      break;
    }
    case StmtKind::kIf: {
      const auto& i = static_cast<const If&>(s);
      os << pad << "if (";
      print_expr(*i.cond, os);
      os << ") {\n";
      print_stmt(*i.then_body, os, indent + 1);
      os << pad << "}";
      if (i.else_body) {
        if (i.else_body->kind == StmtKind::kIf) {
          os << " else ";
          // flatten else-if onto one line by printing without leading pad
          std::ostringstream inner;
          print_stmt(*i.else_body, inner, indent);
          std::string text = inner.str();
          // strip the duplicated indentation the nested print added
          if (text.size() >= pad.size() && text.compare(0, pad.size(), pad) == 0) {
            text.erase(0, pad.size());
          }
          os << text;
          return;
        }
        os << " else {\n";
        print_stmt(*i.else_body, os, indent + 1);
        os << pad << "}";
      }
      os << "\n";
      break;
    }
    case StmtKind::kWhile: {
      const auto& w = static_cast<const While&>(s);
      os << pad << "while (";
      print_expr(*w.cond, os);
      os << ") {\n";
      print_stmt(*w.body, os, indent + 1);
      os << pad << "}\n";
      break;
    }
    case StmtKind::kFor: {
      const auto& f = static_cast<const For&>(s);
      os << pad << "for " << f.var << " in ";
      print_expr(*f.begin, os);
      os << "..";
      print_expr(*f.end, os);
      os << " {\n";
      print_stmt(*f.body, os, indent + 1);
      os << pad << "}\n";
      break;
    }
    case StmtKind::kReturn: {
      const auto& r = static_cast<const Return&>(s);
      os << pad << "return";
      if (r.value) {
        os << ' ';
        print_expr(*r.value, os);
      }
      os << ";\n";
      break;
    }
    case StmtKind::kBreak:
      os << pad << "break;\n";
      break;
    case StmtKind::kContinue:
      os << pad << "continue;\n";
      break;
    case StmtKind::kExprStmt: {
      const auto& e = static_cast<const ExprStmt&>(s);
      os << pad;
      print_expr(*e.expr, os);
      os << ";\n";
      break;
    }
  }
}

}  // namespace

std::string to_source(const Expr& e) {
  std::ostringstream os;
  print_expr(e, os);
  return os.str();
}

std::string to_source(const Stmt& s, int indent) {
  std::ostringstream os;
  print_stmt(s, os, indent);
  return os.str();
}

std::string to_source(const Program& p) {
  std::ostringstream os;
  for (const auto& g : p.globals) {
    os << "var " << g.name << " = ";
    print_expr(*g.init, os);
    os << ";\n";
  }
  for (const auto& f : p.funcs) {
    os << "\ndef " << f.name << "(";
    for (std::size_t i = 0; i < f.params.size(); ++i) {
      if (i) os << ", ";
      os << f.params[i];
    }
    os << ") {\n";
    print_stmt(*f.body, os, 1);
    os << "}\n";
  }
  return os.str();
}

}  // namespace nfactor::lang
