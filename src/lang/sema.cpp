#include "lang/sema.h"

#include <functional>

#include "lang/builtins.h"
#include "lang/diagnostics.h"

namespace nfactor::lang {

namespace {

bool compatible(Type a, Type b) {
  return a == b || a == Type::kUnknown || b == Type::kUnknown;
}

/// Join for the monotone Unknown -> concrete lattice.
Type join(Type a, Type b, SourceLoc loc, bool checking) {
  if (a == b) return a;
  if (a == Type::kUnknown) return b;
  if (b == Type::kUnknown) return a;
  if (checking) {
    throw SemaError(loc, "type mismatch: " + to_string(a) + " vs " + to_string(b));
  }
  return a;
}

class Sema {
 public:
  explicit Sema(Program& prog) : prog_(prog) {}

  SemaInfo run() {
    collect_decls();
    check_no_recursion();
    analyze_globals();
    // Fixpoint inference (types only move Unknown -> concrete), then a
    // final pass with checking on.
    for (int round = 0; round < 8; ++round) analyze_funcs(/*checking=*/false);
    analyze_funcs(/*checking=*/true);
    return info_;
  }

 private:
  [[noreturn]] void fail(SourceLoc loc, const std::string& msg) const {
    throw SemaError(loc, msg);
  }

  void collect_decls() {
    for (const auto& g : prog_.globals) {
      if (info_.globals.count(g.name)) fail(g.loc, "duplicate global '" + g.name + "'");
      if (find_builtin(g.name)) fail(g.loc, "global '" + g.name + "' shadows a builtin");
      info_.globals[g.name] = Type::kUnknown;
    }
    for (const auto& f : prog_.funcs) {
      if (info_.funcs.count(f.name)) fail(f.loc, "duplicate function '" + f.name + "'");
      if (find_builtin(f.name)) fail(f.loc, "function '" + f.name + "' shadows a builtin");
      FuncInfo fi;
      for (const auto& p : f.params) {
        if (fi.locals.count(p)) fail(f.loc, "duplicate parameter '" + p + "'");
        fi.locals[p] = Type::kUnknown;
      }
      info_.funcs[f.name] = std::move(fi);
    }
    // Pre-scan call graph for recursion detection.
    for (const auto& f : prog_.funcs) {
      std::function<void(const Stmt&)> scan_stmt;
      std::function<void(const Expr&)> scan_expr = [&](const Expr& e) {
        if (e.kind == ExprKind::kCall) {
          const auto& c = static_cast<const Call&>(e);
          if (!find_builtin(c.callee) && info_.funcs.count(c.callee)) {
            info_.funcs[f.name].callees.insert(c.callee);
          }
          for (const auto& a : c.args) scan_expr(*a);
        } else if (e.kind == ExprKind::kUnary) {
          scan_expr(*static_cast<const Unary&>(e).operand);
        } else if (e.kind == ExprKind::kBinary) {
          const auto& b = static_cast<const Binary&>(e);
          scan_expr(*b.lhs);
          scan_expr(*b.rhs);
        } else if (e.kind == ExprKind::kIndex) {
          const auto& i = static_cast<const Index&>(e);
          scan_expr(*i.base);
          scan_expr(*i.index);
        } else if (e.kind == ExprKind::kField) {
          scan_expr(*static_cast<const FieldRef&>(e).base);
        } else if (e.kind == ExprKind::kTupleLit) {
          for (const auto& x : static_cast<const TupleLit&>(e).elems) scan_expr(*x);
        } else if (e.kind == ExprKind::kListLit) {
          for (const auto& x : static_cast<const ListLit&>(e).elems) scan_expr(*x);
        }
      };
      scan_stmt = [&](const Stmt& s) {
        switch (s.kind) {
          case StmtKind::kBlock:
            for (const auto& st : static_cast<const Block&>(s).stmts) scan_stmt(*st);
            break;
          case StmtKind::kAssign: {
            const auto& a = static_cast<const Assign&>(s);
            if (a.index) scan_expr(*a.index);
            scan_expr(*a.value);
            break;
          }
          case StmtKind::kIf: {
            const auto& i = static_cast<const If&>(s);
            scan_expr(*i.cond);
            scan_stmt(*i.then_body);
            if (i.else_body) scan_stmt(*i.else_body);
            break;
          }
          case StmtKind::kWhile: {
            const auto& w = static_cast<const While&>(s);
            scan_expr(*w.cond);
            scan_stmt(*w.body);
            break;
          }
          case StmtKind::kFor: {
            const auto& fo = static_cast<const For&>(s);
            scan_expr(*fo.begin);
            scan_expr(*fo.end);
            scan_stmt(*fo.body);
            break;
          }
          case StmtKind::kReturn: {
            const auto& r = static_cast<const Return&>(s);
            if (r.value) scan_expr(*r.value);
            break;
          }
          case StmtKind::kExprStmt:
            scan_expr(*static_cast<const ExprStmt&>(s).expr);
            break;
          default:
            break;
        }
      };
      scan_stmt(*f.body);
    }
  }

  void check_no_recursion() {
    enum class Mark { kWhite, kGrey, kBlack };
    std::map<std::string, Mark> mark;
    std::function<void(const std::string&)> dfs = [&](const std::string& fn) {
      mark[fn] = Mark::kGrey;
      for (const auto& callee : info_.funcs.at(fn).callees) {
        if (mark[callee] == Mark::kGrey) {
          fail(prog_.find_func(fn)->loc,
               "recursion detected involving '" + fn + "' and '" + callee +
                   "' (the DSL requires non-recursive functions)");
        }
        if (mark[callee] == Mark::kWhite) dfs(callee);
      }
      mark[fn] = Mark::kBlack;
    };
    for (const auto& f : prog_.funcs) {
      if (mark[f.name] == Mark::kWhite) dfs(f.name);
    }
  }

  // -- Globals ---------------------------------------------------------

  void analyze_globals() {
    for (auto& g : prog_.globals) {
      check_const_expr(*g.init);
      const Type t = infer_expr(*g.init, nullptr, /*checking=*/true);
      info_.globals[g.name] = t;
    }
  }

  void check_const_expr(const Expr& e) {
    switch (e.kind) {
      case ExprKind::kIntLit:
      case ExprKind::kBoolLit:
      case ExprKind::kStrLit:
      case ExprKind::kMapLit:
        return;
      case ExprKind::kVarRef: {
        const auto& v = static_cast<const VarRef&>(e);
        if (!info_.globals.count(v.name) ||
            info_.globals.at(v.name) == Type::kUnknown) {
          fail(e.loc, "global initializer may only reference earlier globals");
        }
        return;
      }
      case ExprKind::kUnary:
        check_const_expr(*static_cast<const Unary&>(e).operand);
        return;
      case ExprKind::kBinary: {
        const auto& b = static_cast<const Binary&>(e);
        check_const_expr(*b.lhs);
        check_const_expr(*b.rhs);
        return;
      }
      case ExprKind::kTupleLit:
        for (const auto& x : static_cast<const TupleLit&>(e).elems) check_const_expr(*x);
        return;
      case ExprKind::kListLit:
        for (const auto& x : static_cast<const ListLit&>(e).elems) check_const_expr(*x);
        return;
      default:
        fail(e.loc, "global initializer must be a constant expression");
    }
  }

  // -- Functions -------------------------------------------------------

  void analyze_funcs(bool checking) {
    for (auto& f : prog_.funcs) {
      cur_func_ = &info_.funcs[f.name];
      cur_func_name_ = f.name;
      infer_stmt(*f.body, checking);
      cur_func_ = nullptr;
    }
  }

  Type lookup_var(const std::string& name, SourceLoc loc, bool checking,
                  bool* is_global = nullptr) {
    if (cur_func_ != nullptr) {
      if (const auto it = cur_func_->locals.find(name); it != cur_func_->locals.end()) {
        if (is_global) *is_global = false;
        return it->second;
      }
    }
    if (const auto it = info_.globals.find(name); it != info_.globals.end()) {
      if (is_global) *is_global = true;
      return it->second;
    }
    if (checking) fail(loc, "use of undeclared variable '" + name + "'");
    return Type::kUnknown;
  }

  void infer_stmt(Stmt& s, bool checking) {
    switch (s.kind) {
      case StmtKind::kBlock:
        for (auto& st : static_cast<Block&>(s).stmts) infer_stmt(*st, checking);
        break;
      case StmtKind::kAssign:
        infer_assign(static_cast<Assign&>(s), checking);
        break;
      case StmtKind::kIf: {
        auto& i = static_cast<If&>(s);
        const Type t = infer_expr(*i.cond, cur_func_, checking);
        if (checking && !compatible(t, Type::kBool)) {
          fail(i.cond->loc, "if condition must be bool, got " + to_string(t));
        }
        infer_stmt(*i.then_body, checking);
        if (i.else_body) infer_stmt(*i.else_body, checking);
        break;
      }
      case StmtKind::kWhile: {
        auto& w = static_cast<While&>(s);
        const Type t = infer_expr(*w.cond, cur_func_, checking);
        if (checking && !compatible(t, Type::kBool)) {
          fail(w.cond->loc, "while condition must be bool, got " + to_string(t));
        }
        infer_stmt(*w.body, checking);
        break;
      }
      case StmtKind::kFor: {
        auto& fo = static_cast<For&>(s);
        const Type b = infer_expr(*fo.begin, cur_func_, checking);
        const Type e = infer_expr(*fo.end, cur_func_, checking);
        if (checking && (!compatible(b, Type::kInt) || !compatible(e, Type::kInt))) {
          fail(fo.loc, "for-range bounds must be int");
        }
        set_local(fo.var, Type::kInt, fo.loc, checking);
        infer_stmt(*fo.body, checking);
        break;
      }
      case StmtKind::kReturn: {
        auto& r = static_cast<Return&>(s);
        Type t = Type::kVoid;
        if (r.value) t = infer_expr(*r.value, cur_func_, checking);
        cur_func_->return_type =
            join(cur_func_->return_type, t, r.loc, checking);
        break;
      }
      case StmtKind::kExprStmt:
        infer_expr(*static_cast<ExprStmt&>(s).expr, cur_func_, checking);
        break;
      case StmtKind::kBreak:
      case StmtKind::kContinue:
        break;
    }
  }

  void set_local(const std::string& name, Type t, SourceLoc loc, bool checking) {
    if (info_.globals.count(name)) {
      info_.globals[name] = join(info_.globals[name], t, loc, checking);
      if (cur_func_) cur_func_->globals_written.insert(name);
      return;
    }
    Type& slot = cur_func_->locals[name];  // creates on first assignment
    slot = join(slot, t, loc, checking);
  }

  void infer_assign(Assign& a, bool checking) {
    const Type value_t = infer_expr(*a.value, cur_func_, checking);
    switch (a.target) {
      case Assign::Target::kVar:
        set_local(a.var, value_t, a.loc, checking);
        break;
      case Assign::Target::kField: {
        const Type base_t = lookup_var(a.var, a.loc, checking);
        if (checking && !compatible(base_t, Type::kPacket)) {
          fail(a.loc, "field store on non-packet '" + a.var + "'");
        }
        const auto* f = find_packet_field(a.field);
        if (checking && f == nullptr) fail(a.loc, "unknown packet field '" + a.field + "'");
        if (checking && f != nullptr && !f->writable) {
          fail(a.loc, "packet field '" + a.field + "' is read-only");
        }
        if (checking && !compatible(value_t, Type::kInt)) {
          fail(a.loc, "packet fields hold ints, got " + to_string(value_t));
        }
        note_global_use(a.var);
        break;
      }
      case Assign::Target::kIndex: {
        bool is_global = false;
        const Type base_t = lookup_var(a.var, a.loc, checking, &is_global);
        if (checking && !compatible(base_t, Type::kMap) &&
            !compatible(base_t, Type::kList)) {
          fail(a.loc, "element store on non-container '" + a.var + "'");
        }
        infer_expr(*a.index, cur_func_, checking);
        if (is_global && cur_func_) cur_func_->globals_written.insert(a.var);
        break;
      }
    }
  }

  void note_global_use(const std::string& name) {
    if (cur_func_ && info_.globals.count(name)) {
      cur_func_->globals_read.insert(name);
    }
  }

  Type infer_expr(Expr& e, FuncInfo* /*scope*/, bool checking) {
    const Type t = infer_expr_impl(e, checking);
    e.type = t;
    return t;
  }

  Type infer_expr_impl(Expr& e, bool checking) {
    switch (e.kind) {
      case ExprKind::kIntLit: return Type::kInt;
      case ExprKind::kBoolLit: return Type::kBool;
      case ExprKind::kStrLit: return Type::kStr;
      case ExprKind::kMapLit: return Type::kMap;
      case ExprKind::kVarRef: {
        auto& v = static_cast<VarRef&>(e);
        note_global_use(v.name);
        return lookup_var(v.name, v.loc, checking);
      }
      case ExprKind::kUnary: {
        auto& u = static_cast<Unary&>(e);
        const Type t = infer_expr(*u.operand, cur_func_, checking);
        if (u.op == UnOp::kNeg) {
          if (checking && !compatible(t, Type::kInt)) fail(u.loc, "'-' needs int");
          return Type::kInt;
        }
        if (checking && !compatible(t, Type::kBool)) fail(u.loc, "'!' needs bool");
        return Type::kBool;
      }
      case ExprKind::kBinary: {
        auto& b = static_cast<Binary&>(e);
        const Type lt = infer_expr(*b.lhs, cur_func_, checking);
        const Type rt = infer_expr(*b.rhs, cur_func_, checking);
        switch (b.op) {
          case BinOp::kAdd: case BinOp::kSub: case BinOp::kMul:
          case BinOp::kDiv: case BinOp::kMod: case BinOp::kBitAnd:
          case BinOp::kBitOr: case BinOp::kBitXor: case BinOp::kShl:
          case BinOp::kShr:
            if (checking && (!compatible(lt, Type::kInt) || !compatible(rt, Type::kInt))) {
              fail(b.loc, "arithmetic needs int operands");
            }
            return Type::kInt;
          case BinOp::kEq: case BinOp::kNe:
            if (checking && !compatible(lt, rt)) {
              fail(b.loc, "'==' operands must have matching types (" +
                              to_string(lt) + " vs " + to_string(rt) + ")");
            }
            return Type::kBool;
          case BinOp::kLt: case BinOp::kLe: case BinOp::kGt: case BinOp::kGe:
            if (checking && (!compatible(lt, Type::kInt) || !compatible(rt, Type::kInt))) {
              fail(b.loc, "ordering comparison needs int operands");
            }
            return Type::kBool;
          case BinOp::kAnd: case BinOp::kOr:
            if (checking && (!compatible(lt, Type::kBool) || !compatible(rt, Type::kBool))) {
              fail(b.loc, "logical operator needs bool operands");
            }
            return Type::kBool;
          case BinOp::kIn:
            if (checking && !compatible(rt, Type::kMap) && !compatible(rt, Type::kList)) {
              fail(b.loc, "'in' needs a map or list on the right");
            }
            return Type::kBool;
        }
        return Type::kUnknown;
      }
      case ExprKind::kCall: return infer_call(static_cast<Call&>(e), checking);
      case ExprKind::kTupleLit: {
        auto& t = static_cast<TupleLit&>(e);
        for (auto& x : t.elems) {
          const Type xt = infer_expr(*x, cur_func_, checking);
          if (checking && !compatible(xt, Type::kInt)) {
            fail(x->loc, "tuple elements must be ints");
          }
        }
        return Type::kTuple;
      }
      case ExprKind::kListLit: {
        auto& l = static_cast<ListLit&>(e);
        for (auto& x : l.elems) infer_expr(*x, cur_func_, checking);
        return Type::kList;
      }
      case ExprKind::kIndex: {
        auto& i = static_cast<Index&>(e);
        const Type bt = infer_expr(*i.base, cur_func_, checking);
        const Type it = infer_expr(*i.index, cur_func_, checking);
        if (bt == Type::kTuple) {
          if (checking && !compatible(it, Type::kInt)) fail(i.loc, "tuple index must be int");
          return Type::kInt;
        }
        if (bt == Type::kList) {
          if (checking && !compatible(it, Type::kInt)) fail(i.loc, "list index must be int");
          return Type::kUnknown;  // element type tracked dynamically
        }
        if (bt == Type::kMap || bt == Type::kUnknown) return Type::kUnknown;
        if (checking) fail(i.loc, "indexing non-container of type " + to_string(bt));
        return Type::kUnknown;
      }
      case ExprKind::kField: {
        auto& f = static_cast<FieldRef&>(e);
        const Type bt = infer_expr(*f.base, cur_func_, checking);
        if (checking && !compatible(bt, Type::kPacket)) {
          fail(f.loc, "field access on non-packet value");
        }
        if (checking && find_packet_field(f.field) == nullptr) {
          fail(f.loc, "unknown packet field '" + f.field + "'");
        }
        return Type::kInt;
      }
    }
    return Type::kUnknown;
  }

  Type infer_call(Call& c, bool checking) {
    if (const auto* b = find_builtin(c.callee)) {
      if (checking) {
        const bool arity_ok = b->variadic ? c.args.size() >= 1
                                          : c.args.size() == b->params.size();
        if (!arity_ok) {
          fail(c.loc, "builtin '" + c.callee + "' expects " +
                          std::to_string(b->params.size()) + " argument(s)");
        }
      }
      // Callback registration: the function-name argument resolves against
      // the function table, not the variable scope.
      if (b->role == BuiltinRole::kControl) {
        for (std::size_t i = 0; i < c.args.size(); ++i) {
          Expr& arg = *c.args[i];
          if (arg.kind == ExprKind::kVarRef) {
            const auto& name = static_cast<const VarRef&>(arg).name;
            if (info_.funcs.count(name)) {
              arg.type = Type::kVoid;
              // Callbacks receive a packet parameter.
              auto& callee = info_.funcs[name];
              if (!prog_.find_func(name)->params.empty()) {
                auto& pt = callee.locals[prog_.find_func(name)->params[0]];
                pt = join(pt, Type::kPacket, arg.loc, checking);
              }
              continue;
            }
          }
          infer_expr(arg, cur_func_, checking);
        }
        return b->ret;
      }
      for (std::size_t i = 0; i < c.args.size(); ++i) {
        const Type at = infer_expr(*c.args[i], cur_func_, checking);
        if (checking && i < b->params.size() &&
            !compatible(at, b->params[i])) {
          fail(c.args[i]->loc, "argument " + std::to_string(i + 1) + " of '" +
                                   c.callee + "' must be " +
                                   to_string(b->params[i]) + ", got " +
                                   to_string(at));
        }
      }
      return b->ret;
    }

    // User function.
    FuncDef* callee = prog_.find_func(c.callee);
    if (callee == nullptr) {
      if (checking) fail(c.loc, "call to unknown function '" + c.callee + "'");
      for (auto& a : c.args) infer_expr(*a, cur_func_, checking);
      return Type::kUnknown;
    }
    if (checking && c.args.size() != callee->params.size()) {
      fail(c.loc, "function '" + c.callee + "' expects " +
                      std::to_string(callee->params.size()) + " argument(s)");
    }
    FuncInfo& ci = info_.funcs[c.callee];
    for (std::size_t i = 0; i < c.args.size(); ++i) {
      const Type at = infer_expr(*c.args[i], cur_func_, checking);
      if (i < callee->params.size()) {
        auto& pt = ci.locals[callee->params[i]];
        pt = join(pt, at, c.args[i]->loc, checking);
      }
    }
    return ci.return_type;
  }

  Program& prog_;
  SemaInfo info_;
  FuncInfo* cur_func_ = nullptr;
  std::string cur_func_name_;
};

}  // namespace

SemaInfo analyze(Program& prog) { return Sema(prog).run(); }

}  // namespace nfactor::lang
