#pragma once

#include <string_view>

#include "lang/ast.h"

namespace nfactor::lang {

/// Parse a complete NF-DSL compilation unit. Throws ParseError/LexError.
/// `unit_name` labels diagnostics and the resulting Program.
Program parse(std::string_view source, std::string unit_name = "<input>");

}  // namespace nfactor::lang
