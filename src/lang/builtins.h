// Builtin function registry, shared by Sema (signature checking), the IR
// lowerer (packet I/O identification — Algorithm 1 keys on PKT_INPUT /
// PKT_OUTPUT calls), the concrete runtime, and the symbolic executor.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "lang/ast.h"

namespace nfactor::lang {

/// Role flags NFactor's analysis cares about. The paper's Algorithm 1
/// locates packet read/write statements via "standard library or system
/// functions" — these flags are that knowledge base.
enum class BuiltinRole : std::uint8_t {
  kPure,       // no side effects (len, hash, ...)
  kPktInput,   // returns a packet read from the wire (recv)
  kPktOutput,  // writes a packet to the wire (send)
  kLog,        // observable only via logs; never output-impacting
  kSocket,     // socket-level op hiding OS state (must be unfolded, §3.2)
  kControl,    // control-plane registration (sniff, spawn)
  kEffect,     // mutates an argument in place (push, pop)
};

struct BuiltinSig {
  std::string name;
  std::vector<Type> params;  // kUnknown = any
  Type ret = Type::kVoid;
  BuiltinRole role = BuiltinRole::kPure;
  bool variadic = false;  // extra args of any type allowed (log)
};

/// Look up a builtin; nullptr when `name` is not a builtin.
const BuiltinSig* find_builtin(const std::string& name);

/// All registered builtins (for docs/tests).
const std::vector<BuiltinSig>& all_builtins();

inline bool is_pkt_output(const std::string& callee) {
  const auto* b = find_builtin(callee);
  return b != nullptr && b->role == BuiltinRole::kPktOutput;
}

inline bool is_pkt_input(const std::string& callee) {
  const auto* b = find_builtin(callee);
  return b != nullptr && b->role == BuiltinRole::kPktInput;
}

/// Packet field descriptor: the DSL-visible field vocabulary.
struct PacketField {
  std::string name;
  bool writable;
};

const std::vector<PacketField>& packet_fields();
const PacketField* find_packet_field(const std::string& name);

}  // namespace nfactor::lang
