#include "lang/diagnostics.h"

#include <sstream>

#include "obs/json.h"

namespace nfactor::lang {

std::string DiagnosticSink::render_json(const std::string& unit) const {
  std::ostringstream os;
  os << "{\"unit\":\"" << obs::json_escape(unit) << "\",\"diagnostics\":[";
  bool first = true;
  for (const Diagnostic* d : ordered()) {
    if (!first) os << ',';
    first = false;
    os << "{\"line\":" << d->loc.line << ",\"col\":" << d->loc.col
       << ",\"severity\":\"" << to_string(d->severity) << "\",\"code\":\""
       << obs::json_escape(d->code) << "\",\"message\":\""
       << obs::json_escape(d->message) << "\"}";
  }
  os << "],\"counts\":{\"note\":" << notes() << ",\"warning\":" << warnings()
     << ",\"error\":" << errors() << "}}";
  return os.str();
}

}  // namespace nfactor::lang
