#include "lang/lexer.h"

#include <cctype>
#include <unordered_map>

#include "lang/diagnostics.h"

namespace nfactor::lang {

namespace {

const std::unordered_map<std::string_view, Tok>& keywords() {
  static const std::unordered_map<std::string_view, Tok> kw = {
      {"var", Tok::kVar},        {"def", Tok::kDef},
      {"if", Tok::kIf},          {"else", Tok::kElse},
      {"while", Tok::kWhile},    {"for", Tok::kFor},
      {"in", Tok::kIn},          {"return", Tok::kReturn},
      {"break", Tok::kBreak},    {"continue", Tok::kContinue},
      {"true", Tok::kTrue},      {"false", Tok::kFalse},
  };
  return kw;
}

class Lexer {
 public:
  explicit Lexer(std::string_view src) : src_(src) {}

  std::vector<Token> run() {
    std::vector<Token> out;
    for (;;) {
      skip_trivia();
      Token t = next();
      const bool eof = t.kind == Tok::kEof;
      out.push_back(std::move(t));
      if (eof) return out;
    }
  }

 private:
  char peek(std::size_t ahead = 0) const {
    return pos_ + ahead < src_.size() ? src_[pos_ + ahead] : '\0';
  }

  char advance() {
    const char c = src_[pos_++];
    if (c == '\n') {
      ++line_;
      col_ = 1;
    } else {
      ++col_;
    }
    return c;
  }

  void skip_trivia() {
    for (;;) {
      const char c = peek();
      if (c == ' ' || c == '\t' || c == '\r' || c == '\n') {
        advance();
      } else if (c == '#') {
        while (peek() != '\n' && peek() != '\0') advance();
      } else {
        return;
      }
    }
  }

  Token make(Tok kind) {
    Token t;
    t.kind = kind;
    t.loc = start_;
    return t;
  }

  [[noreturn]] void fail(const std::string& msg) const {
    throw LexError({line_, col_}, msg);
  }

  Token next() {
    start_ = {line_, col_};
    if (pos_ >= src_.size()) return make(Tok::kEof);
    const char c = advance();

    if (std::isdigit(static_cast<unsigned char>(c))) return number(c);
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') return ident(c);

    switch (c) {
      case '"': return string_lit();
      case '(': return make(Tok::kLParen);
      case ')': return make(Tok::kRParen);
      case '{': return make(Tok::kLBrace);
      case '}': return make(Tok::kRBrace);
      case '[': return make(Tok::kLBracket);
      case ']': return make(Tok::kRBracket);
      case ',': return make(Tok::kComma);
      case ';': return make(Tok::kSemi);
      case ':': return make(Tok::kColon);
      case '.':
        if (peek() == '.') { advance(); return make(Tok::kDotDot); }
        return make(Tok::kDot);
      case '+':
        if (peek() == '=') { advance(); return make(Tok::kPlusAssign); }
        return make(Tok::kPlus);
      case '-':
        if (peek() == '=') { advance(); return make(Tok::kMinusAssign); }
        return make(Tok::kMinus);
      case '*':
        if (peek() == '=') { advance(); return make(Tok::kStarAssign); }
        return make(Tok::kStar);
      case '/': return make(Tok::kSlash);
      case '%':
        if (peek() == '=') { advance(); return make(Tok::kPercentAssign); }
        return make(Tok::kPercent);
      case '=':
        if (peek() == '=') { advance(); return make(Tok::kEq); }
        return make(Tok::kAssign);
      case '!':
        if (peek() == '=') { advance(); return make(Tok::kNe); }
        return make(Tok::kNot);
      case '<':
        if (peek() == '=') { advance(); return make(Tok::kLe); }
        if (peek() == '<') { advance(); return make(Tok::kShl); }
        return make(Tok::kLt);
      case '>':
        if (peek() == '=') { advance(); return make(Tok::kGe); }
        if (peek() == '>') { advance(); return make(Tok::kShr); }
        return make(Tok::kGt);
      case '&':
        if (peek() == '&') { advance(); return make(Tok::kAndAnd); }
        return make(Tok::kAmp);
      case '|':
        if (peek() == '|') { advance(); return make(Tok::kOrOr); }
        return make(Tok::kPipe);
      case '^': return make(Tok::kCaret);
      default:
        fail(std::string("unexpected character '") + c + "'");
    }
  }

  Token ident(char first) {
    std::string text(1, first);
    while (std::isalnum(static_cast<unsigned char>(peek())) || peek() == '_') {
      text.push_back(advance());
    }
    const auto& kw = keywords();
    if (const auto it = kw.find(text); it != kw.end()) return make(it->second);
    Token t = make(Tok::kIdent);
    t.text = std::move(text);
    return t;
  }

  Token string_lit() {
    std::string text;
    for (;;) {
      const char c = peek();
      if (c == '\0' || c == '\n') fail("unterminated string literal");
      advance();
      if (c == '"') break;
      if (c == '\\') {
        const char esc = peek();
        advance();
        switch (esc) {
          case 'n': text.push_back('\n'); break;
          case 't': text.push_back('\t'); break;
          case '\\': text.push_back('\\'); break;
          case '"': text.push_back('"'); break;
          default: fail("unknown escape sequence");
        }
      } else {
        text.push_back(c);
      }
    }
    Token t = make(Tok::kString);
    t.text = std::move(text);
    return t;
  }

  Token number(char first) {
    // Hex
    if (first == '0' && (peek() == 'x' || peek() == 'X')) {
      advance();
      std::int64_t v = 0;
      bool any = false;
      while (std::isxdigit(static_cast<unsigned char>(peek()))) {
        const char d = advance();
        any = true;
        const int nibble = std::isdigit(static_cast<unsigned char>(d))
                               ? d - '0'
                               : std::tolower(d) - 'a' + 10;
        v = v * 16 + nibble;
      }
      if (!any) fail("malformed hex literal");
      Token t = make(Tok::kInt);
      t.value = v;
      return t;
    }

    auto read_decimal = [&](char lead) {
      std::int64_t v = lead - '0';
      while (std::isdigit(static_cast<unsigned char>(peek()))) {
        v = v * 10 + (advance() - '0');
      }
      return v;
    };

    std::int64_t v = read_decimal(first);
    // Dotted-quad IPv4 literal: a '.' followed by a digit (a '..' range
    // operator follows with a second '.', so peek one further).
    if (peek() == '.' && std::isdigit(static_cast<unsigned char>(peek(1)))) {
      std::int64_t octets[4] = {v, 0, 0, 0};
      for (int i = 1; i < 4; ++i) {
        if (peek() != '.') fail("malformed IPv4 literal");
        advance();
        if (!std::isdigit(static_cast<unsigned char>(peek()))) {
          fail("malformed IPv4 literal");
        }
        octets[i] = read_decimal(advance());
      }
      std::int64_t addr = 0;
      for (const std::int64_t o : octets) {
        if (o > 255) fail("IPv4 octet out of range");
        addr = addr << 8 | o;
      }
      Token t = make(Tok::kInt);
      t.value = addr;
      return t;
    }

    Token t = make(Tok::kInt);
    t.value = v;
    return t;
  }

  std::string_view src_;
  std::size_t pos_ = 0;
  int line_ = 1;
  int col_ = 1;
  SourceLoc start_;
};

}  // namespace

std::string token_name(Tok t) {
  switch (t) {
    case Tok::kEof: return "end of input";
    case Tok::kInt: return "integer literal";
    case Tok::kString: return "string literal";
    case Tok::kIdent: return "identifier";
    case Tok::kVar: return "'var'";
    case Tok::kDef: return "'def'";
    case Tok::kIf: return "'if'";
    case Tok::kElse: return "'else'";
    case Tok::kWhile: return "'while'";
    case Tok::kFor: return "'for'";
    case Tok::kIn: return "'in'";
    case Tok::kReturn: return "'return'";
    case Tok::kBreak: return "'break'";
    case Tok::kContinue: return "'continue'";
    case Tok::kTrue: return "'true'";
    case Tok::kFalse: return "'false'";
    case Tok::kLParen: return "'('";
    case Tok::kRParen: return "')'";
    case Tok::kLBrace: return "'{'";
    case Tok::kRBrace: return "'}'";
    case Tok::kLBracket: return "'['";
    case Tok::kRBracket: return "']'";
    case Tok::kComma: return "','";
    case Tok::kSemi: return "';'";
    case Tok::kDot: return "'.'";
    case Tok::kDotDot: return "'..'";
    case Tok::kColon: return "':'";
    case Tok::kAssign: return "'='";
    case Tok::kPlusAssign: return "'+='";
    case Tok::kMinusAssign: return "'-='";
    case Tok::kStarAssign: return "'*='";
    case Tok::kPercentAssign: return "'%='";
    case Tok::kPlus: return "'+'";
    case Tok::kMinus: return "'-'";
    case Tok::kStar: return "'*'";
    case Tok::kSlash: return "'/'";
    case Tok::kPercent: return "'%'";
    case Tok::kEq: return "'=='";
    case Tok::kNe: return "'!='";
    case Tok::kLt: return "'<'";
    case Tok::kLe: return "'<='";
    case Tok::kGt: return "'>'";
    case Tok::kGe: return "'>='";
    case Tok::kAndAnd: return "'&&'";
    case Tok::kOrOr: return "'||'";
    case Tok::kNot: return "'!'";
    case Tok::kAmp: return "'&'";
    case Tok::kPipe: return "'|'";
    case Tok::kCaret: return "'^'";
    case Tok::kShl: return "'<<'";
    case Tok::kShr: return "'>>'";
  }
  return "?";
}

std::vector<Token> lex(std::string_view source) { return Lexer(source).run(); }

}  // namespace nfactor::lang
