// Symbolic expressions for the KLEE-style executor. Immutable,
// hash-consed DAG nodes shared via shared_ptr; builders constant-fold
// eagerly so fully concrete programs never touch the solver, and every
// builder interns its result (src/symex/intern.h) so structurally equal
// expressions are pointer-identical and carry a precomputed 64-bit
// structural fingerprint. Structural equality is `struct_eq` — a pointer
// compare on the hot path — and the rendered canonical key() string is
// retained for rendering, goldens, and cross-run-stable artifacts only.
//
// State maps are modeled as store chains (MapBase -> MapStore*), and map
// membership as Contains atoms — which is exactly what turns
// "cs_ftpl not in f2b_nat" into a *state match* in the extracted model.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "lang/ast.h"

namespace nfactor::symex {

using Int = std::int64_t;

enum class SymKind : std::uint8_t {
  kConstInt,
  kConstBool,
  kConstStr,
  kConstTuple,  // fully concrete tuple
  kConstList,   // concrete list of const elements (config containers)
  kVar,         // symbolic input: packet field / state scalar / config scalar
  kUn,
  kBin,
  kTupleExpr,   // tuple with symbolic elements
  kListGet,     // residual list index with symbolic index
  kMapBase,     // initial contents of a state map
  kMapStore,    // map after an element store
  kMapGet,      // residual map lookup
  kContains,    // membership atom
  kCall,        // uninterpreted function (hash, payload_contains)
  kPacket,      // compound packet value (environment-only, not in constraints)
};

/// Classification of symbolic variables — Algorithm 1 (lines 13-14)
/// partitions path conditions by exactly this.
enum class VarClass : std::uint8_t { kPkt, kState, kCfg, kLocal };

struct SymExpr;
using SymRef = std::shared_ptr<const SymExpr>;

struct SymExpr {
  SymKind kind = SymKind::kConstInt;

  // Payload (union-of-fields style; only the relevant members are set).
  Int int_val = 0;
  bool bool_val = false;
  std::string str_val;                 // kConstStr; kVar/kMapBase/kCall name
  std::vector<Int> tuple_val;          // kConstTuple
  std::vector<SymRef> operands;        // children (kind-specific layout)
  lang::BinOp bin_op = lang::BinOp::kAdd;
  lang::UnOp un_op = lang::UnOp::kNeg;
  VarClass var_class = VarClass::kLocal;
  std::map<std::string, SymRef> fields;  // kPacket

  /// 64-bit structural fingerprint, set by the interner before the node
  /// is published: a deterministic hash of (kind, payload, children
  /// fingerprints). Equal structures always have equal fingerprints;
  /// the converse holds only up to hash collision, so fingerprints gate
  /// equality checks (see struct_eq) and order canonical sequences, but
  /// never decide equality alone where soundness depends on it.
  std::uint64_t fp = 0;

  SymExpr() = default;
  SymExpr(SymExpr&& o) noexcept;
  SymExpr(const SymExpr&) = delete;
  SymExpr& operator=(const SymExpr&) = delete;
  SymExpr& operator=(SymExpr&&) = delete;
  ~SymExpr();

  /// Canonical rendering; equal keys <=> structurally equal expressions
  /// (within one run — var_class is part of interned identity but not of
  /// the rendering). Computed lazily on first use and cached with an
  /// atomic publish, so concurrent readers on shared DAGs are safe; hot
  /// paths compare fingerprints/pointers instead and most nodes never
  /// render their key at all.
  const std::string& key() const;

 private:
  mutable std::atomic<const std::string*> key_{nullptr};
};

/// Structural equality. With the interner on (the default) interned
/// structurally-equal nodes are pointer-identical, so this is a pointer
/// compare; the fingerprint-gated key comparison only runs when
/// interning is disabled (NFACTOR_SYMEX_INTERN=0) — a fingerprint
/// mismatch answers "not equal" in O(1), and a fingerprint match is
/// confirmed against the canonical key, never trusted alone.
inline bool struct_eq(const SymExpr* a, const SymExpr* b) {
  if (a == b) return true;
  if (a == nullptr || b == nullptr || a->fp != b->fp) return false;
  return a->key() == b->key();
}
inline bool struct_eq(const SymRef& a, const SymRef& b) {
  return struct_eq(a.get(), b.get());
}

// ---- Builders (with eager constant folding) -------------------------------

SymRef make_int(Int v);
SymRef make_bool(bool v);
SymRef make_str(std::string s);
SymRef make_tuple_const(std::vector<Int> t);
SymRef make_list_const(std::vector<SymRef> elems);
SymRef make_var(std::string name, VarClass cls);
SymRef make_un(lang::UnOp op, SymRef a);
SymRef make_bin(lang::BinOp op, SymRef a, SymRef b);
SymRef make_tuple(std::vector<SymRef> elems);
SymRef make_list_get(SymRef list, SymRef idx);
SymRef make_map_base(std::string name);
SymRef make_map_store(SymRef map, SymRef key, SymRef value);
SymRef make_map_get(SymRef map, SymRef key);
SymRef make_contains(SymRef container, SymRef key);
SymRef make_call(std::string name, std::vector<SymRef> args);
SymRef make_packet(std::map<std::string, SymRef> fields);

/// Logical negation with folding (!(a==b) -> a!=b etc.).
SymRef negate(const SymRef& e);

inline bool is_const_int(const SymRef& e) {
  return e->kind == SymKind::kConstInt;
}
inline bool is_const_bool(const SymRef& e) {
  return e->kind == SymKind::kConstBool;
}

/// Human-readable rendering (infix, for model printing).
std::string to_string(const SymExpr& e);
inline std::string to_string(const SymRef& e) { return to_string(*e); }

/// All kVar nodes in the DAG, grouped by class. Memoized on node
/// identity, so heavily shared DAGs (deep map-store chains) are walked
/// in time linear in the number of unique nodes.
void collect_vars(const SymRef& e,
                  std::map<std::string, VarClass>& out);

/// Substitute named symbols (kVar and kMapBase, matched by name) with
/// replacement expressions, rebuilding through the folding builders.
/// Used by chain composition: NF2's packet-field symbols become NF1's
/// output expressions. Memoized on node identity per call, so shared
/// subtrees are rewritten once.
SymRef substitute(const SymRef& e, const std::map<std::string, SymRef>& subst);

/// Rename every state/config symbol — kVar nodes of class kState/kCfg and
/// named kMapBase nodes — with `prefix`, leaving packet symbols alone.
/// This is what gives each NF *instance* in a composed chain or topology
/// its own disjoint state/config namespace: two instances of the same NF
/// model never alias each other's symbols.
SymRef prefix_symbols(const SymRef& e, const std::string& prefix);

}  // namespace nfactor::symex
