#include "symex/expr.h"

#include <sstream>
#include <unordered_map>
#include <unordered_set>

#include "symex/intern.h"

namespace nfactor::symex {

namespace {

SymExpr raw(SymKind k) {
  SymExpr e;
  e.kind = k;
  return e;
}

Int fold_bin_int(lang::BinOp op, Int a, Int b, bool* ok) {
  *ok = true;
  using lang::BinOp;
  switch (op) {
    case BinOp::kAdd: return a + b;
    case BinOp::kSub: return a - b;
    case BinOp::kMul: return a * b;
    case BinOp::kDiv:
      if (b == 0) { *ok = false; return 0; }
      return a / b;
    case BinOp::kMod:
      if (b == 0) { *ok = false; return 0; }
      return ((a % b) + b) % b;
    case BinOp::kBitAnd: return a & b;
    case BinOp::kBitOr: return a | b;
    case BinOp::kBitXor: return a ^ b;
    case BinOp::kShl: return a << (b & 63);
    case BinOp::kShr:
      return static_cast<Int>(static_cast<std::uint64_t>(a) >> (b & 63));
    default:
      *ok = false;
      return 0;
  }
}

}  // namespace

SymExpr::SymExpr(SymExpr&& o) noexcept
    : kind(o.kind),
      int_val(o.int_val),
      bool_val(o.bool_val),
      str_val(std::move(o.str_val)),
      tuple_val(std::move(o.tuple_val)),
      operands(std::move(o.operands)),
      bin_op(o.bin_op),
      un_op(o.un_op),
      var_class(o.var_class),
      fields(std::move(o.fields)),
      fp(o.fp),
      key_(o.key_.exchange(nullptr, std::memory_order_acq_rel)) {}

SymExpr::~SymExpr() { delete key_.load(std::memory_order_acquire); }

const std::string& SymExpr::key() const {
  if (const std::string* k = key_.load(std::memory_order_acquire)) return *k;
  std::ostringstream os;
  switch (kind) {
    case SymKind::kConstInt: os << 'i' << int_val; break;
    case SymKind::kConstBool: os << (bool_val ? "#t" : "#f"); break;
    case SymKind::kConstStr: os << 's' << str_val; break;
    case SymKind::kConstTuple: {
      os << "t(";
      for (const Int x : tuple_val) os << x << ',';
      os << ')';
      break;
    }
    case SymKind::kConstList: {
      os << "L(";
      for (const auto& x : operands) os << x->key() << ',';
      os << ')';
      break;
    }
    case SymKind::kVar: os << 'v' << str_val; break;
    case SymKind::kUn:
      os << lang::to_string(un_op) << '(' << operands[0]->key() << ')';
      break;
    case SymKind::kBin:
      os << '(' << operands[0]->key() << ' ' << lang::to_string(bin_op) << ' '
         << operands[1]->key() << ')';
      break;
    case SymKind::kTupleExpr: {
      os << "T(";
      for (const auto& x : operands) os << x->key() << ',';
      os << ')';
      break;
    }
    case SymKind::kListGet:
      os << "lg(" << operands[0]->key() << ',' << operands[1]->key() << ')';
      break;
    case SymKind::kMapBase: os << "M0:" << str_val; break;
    case SymKind::kMapStore:
      os << "st(" << operands[0]->key() << ',' << operands[1]->key() << ','
         << operands[2]->key() << ')';
      break;
    case SymKind::kMapGet:
      os << "get(" << operands[0]->key() << ',' << operands[1]->key() << ')';
      break;
    case SymKind::kContains:
      os << "in(" << operands[1]->key() << ',' << operands[0]->key() << ')';
      break;
    case SymKind::kCall: {
      os << str_val << '(';
      for (const auto& x : operands) os << x->key() << ',';
      os << ')';
      break;
    }
    case SymKind::kPacket: {
      os << "P{";
      for (const auto& [f, v] : fields) os << f << '=' << v->key() << ';';
      os << '}';
      break;
    }
  }
  auto* fresh = new std::string(os.str());
  const std::string* expected = nullptr;
  if (!key_.compare_exchange_strong(expected, fresh,
                                    std::memory_order_acq_rel,
                                    std::memory_order_acquire)) {
    delete fresh;  // another thread rendered the same key first
    return *expected;
  }
  return *fresh;
}

SymRef make_int(Int v) {
  auto e = raw(SymKind::kConstInt);
  e.int_val = v;
  return intern_node(std::move(e));
}

SymRef make_bool(bool v) {
  auto e = raw(SymKind::kConstBool);
  e.bool_val = v;
  return intern_node(std::move(e));
}

SymRef make_str(std::string s) {
  auto e = raw(SymKind::kConstStr);
  e.str_val = std::move(s);
  return intern_node(std::move(e));
}

SymRef make_tuple_const(std::vector<Int> t) {
  auto e = raw(SymKind::kConstTuple);
  e.tuple_val = std::move(t);
  return intern_node(std::move(e));
}

SymRef make_list_const(std::vector<SymRef> elems) {
  auto e = raw(SymKind::kConstList);
  e.operands = std::move(elems);
  return intern_node(std::move(e));
}

SymRef make_var(std::string name, VarClass cls) {
  auto e = raw(SymKind::kVar);
  e.str_val = std::move(name);
  e.var_class = cls;
  return intern_node(std::move(e));
}

SymRef make_un(lang::UnOp op, SymRef a) {
  if (op == lang::UnOp::kNeg && is_const_int(a)) return make_int(-a->int_val);
  if (op == lang::UnOp::kNot) return negate(a);
  auto e = raw(SymKind::kUn);
  e.un_op = op;
  e.operands = {std::move(a)};
  return intern_node(std::move(e));
}

SymRef negate(const SymRef& a) {
  using lang::BinOp;
  if (is_const_bool(a)) return make_bool(!a->bool_val);
  if (a->kind == SymKind::kUn && a->un_op == lang::UnOp::kNot) {
    return a->operands[0];
  }
  if (a->kind == SymKind::kBin) {
    auto inverted = [&](BinOp op) {
      auto e = raw(SymKind::kBin);
      e.bin_op = op;
      e.operands = a->operands;
      return intern_node(std::move(e));
    };
    switch (a->bin_op) {
      case BinOp::kEq: return inverted(BinOp::kNe);
      case BinOp::kNe: return inverted(BinOp::kEq);
      case BinOp::kLt: return inverted(BinOp::kGe);
      case BinOp::kGe: return inverted(BinOp::kLt);
      case BinOp::kGt: return inverted(BinOp::kLe);
      case BinOp::kLe: return inverted(BinOp::kGt);
      default: break;
    }
  }
  auto e = raw(SymKind::kUn);
  e.un_op = lang::UnOp::kNot;
  e.operands = {a};
  return intern_node(std::move(e));
}

SymRef make_bin(lang::BinOp op, SymRef a, SymRef b) {
  using lang::BinOp;
  // Constant folding.
  if (is_const_int(a) && is_const_int(b)) {
    switch (op) {
      case BinOp::kEq: return make_bool(a->int_val == b->int_val);
      case BinOp::kNe: return make_bool(a->int_val != b->int_val);
      case BinOp::kLt: return make_bool(a->int_val < b->int_val);
      case BinOp::kLe: return make_bool(a->int_val <= b->int_val);
      case BinOp::kGt: return make_bool(a->int_val > b->int_val);
      case BinOp::kGe: return make_bool(a->int_val >= b->int_val);
      default: {
        bool ok = false;
        const Int v = fold_bin_int(op, a->int_val, b->int_val, &ok);
        if (ok) return make_int(v);
        break;
      }
    }
  }
  if (is_const_bool(a) && is_const_bool(b)) {
    switch (op) {
      case BinOp::kAnd: return make_bool(a->bool_val && b->bool_val);
      case BinOp::kOr: return make_bool(a->bool_val || b->bool_val);
      case BinOp::kEq: return make_bool(a->bool_val == b->bool_val);
      case BinOp::kNe: return make_bool(a->bool_val != b->bool_val);
      default: break;
    }
  }
  // Short-circuit simplifications.
  if (op == BinOp::kAnd) {
    if (is_const_bool(a)) return a->bool_val ? b : make_bool(false);
    if (is_const_bool(b)) return b->bool_val ? a : make_bool(false);
  }
  if (op == BinOp::kOr) {
    if (is_const_bool(a)) return a->bool_val ? make_bool(true) : b;
    if (is_const_bool(b)) return b->bool_val ? make_bool(true) : a;
  }
  // Tuple equality folding.
  if ((op == BinOp::kEq || op == BinOp::kNe) &&
      a->kind == SymKind::kConstTuple && b->kind == SymKind::kConstTuple) {
    const bool eq = a->tuple_val == b->tuple_val;
    return make_bool(op == BinOp::kEq ? eq : !eq);
  }
  // Syntactic identity: e == e is true (a pointer compare when interned).
  if ((op == BinOp::kEq || op == BinOp::kLe || op == BinOp::kGe) &&
      struct_eq(a, b)) {
    return make_bool(true);
  }
  if ((op == BinOp::kNe || op == BinOp::kLt || op == BinOp::kGt) &&
      struct_eq(a, b)) {
    return make_bool(false);
  }
  // x + 0, x - 0, x * 1, x % with concrete... keep it minimal: identities.
  if (op == BinOp::kAdd && is_const_int(b) && b->int_val == 0) return a;
  if (op == BinOp::kAdd && is_const_int(a) && a->int_val == 0) return b;
  if (op == BinOp::kSub && is_const_int(b) && b->int_val == 0) return a;
  if (op == BinOp::kMul && is_const_int(b) && b->int_val == 1) return a;
  if (op == BinOp::kMul && is_const_int(a) && a->int_val == 1) return b;

  auto e = raw(SymKind::kBin);
  e.bin_op = op;
  e.operands = {std::move(a), std::move(b)};
  return intern_node(std::move(e));
}

SymRef make_tuple(std::vector<SymRef> elems) {
  bool all_const = true;
  for (const auto& x : elems) all_const &= is_const_int(x);
  if (all_const) {
    std::vector<Int> t;
    t.reserve(elems.size());
    for (const auto& x : elems) t.push_back(x->int_val);
    return make_tuple_const(std::move(t));
  }
  auto e = raw(SymKind::kTupleExpr);
  e.operands = std::move(elems);
  return intern_node(std::move(e));
}

SymRef make_list_get(SymRef list, SymRef idx) {
  if (list->kind == SymKind::kConstList && is_const_int(idx)) {
    const Int i = idx->int_val;
    if (i >= 0 && static_cast<std::size_t>(i) < list->operands.size()) {
      return list->operands[static_cast<std::size_t>(i)];
    }
  }
  auto e = raw(SymKind::kListGet);
  e.operands = {std::move(list), std::move(idx)};
  return intern_node(std::move(e));
}

SymRef make_map_base(std::string name) {
  auto e = raw(SymKind::kMapBase);
  e.str_val = std::move(name);
  return intern_node(std::move(e));
}

SymRef make_map_store(SymRef map, SymRef key, SymRef value) {
  auto e = raw(SymKind::kMapStore);
  e.operands = {std::move(map), std::move(key), std::move(value)};
  return intern_node(std::move(e));
}

namespace {

/// Definitely-different keys: both fully concrete and unequal.
bool keys_definitely_differ(const SymRef& a, const SymRef& b) {
  if (a->kind == SymKind::kConstTuple && b->kind == SymKind::kConstTuple) {
    return a->tuple_val != b->tuple_val;
  }
  if (is_const_int(a) && is_const_int(b)) return a->int_val != b->int_val;
  return false;
}

}  // namespace

SymRef make_map_get(SymRef map, SymRef key) {
  // Resolve through the store chain when possible.
  SymRef m = map;
  while (m->kind == SymKind::kMapStore) {
    const SymRef& sk = m->operands[1];
    if (struct_eq(sk, key)) return m->operands[2];
    if (keys_definitely_differ(sk, key)) {
      m = m->operands[0];
      continue;
    }
    break;  // undecidable: keep the residual over the full chain
  }
  auto e = raw(SymKind::kMapGet);
  e.operands = {std::move(map), std::move(key)};
  return intern_node(std::move(e));
}

SymRef make_contains(SymRef container, SymRef key) {
  if (container->kind == SymKind::kConstList) {
    // Concrete list: fold when the key is concrete too.
    bool all_comparable = key->kind == SymKind::kConstTuple || is_const_int(key);
    if (all_comparable) {
      for (const auto& x : container->operands) {
        if (struct_eq(x, key)) return make_bool(true);
        if (!keys_definitely_differ(x, key)) {
          all_comparable = false;
          break;
        }
      }
      if (all_comparable) return make_bool(false);
    }
  }
  SymRef m = container;
  while (m->kind == SymKind::kMapStore) {
    const SymRef& sk = m->operands[1];
    if (struct_eq(sk, key)) return make_bool(true);
    if (keys_definitely_differ(sk, key)) {
      m = m->operands[0];
      continue;
    }
    break;
  }
  // Empty concrete base: a MapBase marked concrete-empty would fold to
  // false; initial state maps stay symbolic (the whole point: membership
  // is a state match).
  auto e = raw(SymKind::kContains);
  e.operands = {std::move(m), std::move(key)};
  return intern_node(std::move(e));
}

SymRef make_call(std::string name, std::vector<SymRef> args) {
  auto e = raw(SymKind::kCall);
  e.str_val = std::move(name);
  e.operands = std::move(args);
  return intern_node(std::move(e));
}

SymRef make_packet(std::map<std::string, SymRef> fields) {
  auto e = raw(SymKind::kPacket);
  e.fields = std::move(fields);
  return intern_node(std::move(e));
}

std::string to_string(const SymExpr& e) {
  std::ostringstream os;
  switch (e.kind) {
    case SymKind::kConstInt: os << e.int_val; break;
    case SymKind::kConstBool: os << (e.bool_val ? "true" : "false"); break;
    case SymKind::kConstStr: os << '"' << e.str_val << '"'; break;
    case SymKind::kConstTuple: {
      os << '(';
      for (std::size_t i = 0; i < e.tuple_val.size(); ++i) {
        if (i) os << ", ";
        os << e.tuple_val[i];
      }
      os << ')';
      break;
    }
    case SymKind::kConstList: {
      os << '[';
      for (std::size_t i = 0; i < e.operands.size(); ++i) {
        if (i) os << ", ";
        os << to_string(*e.operands[i]);
      }
      os << ']';
      break;
    }
    case SymKind::kVar: os << e.str_val; break;
    case SymKind::kUn:
      os << lang::to_string(e.un_op) << '(' << to_string(*e.operands[0]) << ')';
      break;
    case SymKind::kBin:
      os << '(' << to_string(*e.operands[0]) << ' ' << lang::to_string(e.bin_op)
         << ' ' << to_string(*e.operands[1]) << ')';
      break;
    case SymKind::kTupleExpr: {
      os << '(';
      for (std::size_t i = 0; i < e.operands.size(); ++i) {
        if (i) os << ", ";
        os << to_string(*e.operands[i]);
      }
      os << ')';
      break;
    }
    case SymKind::kListGet:
      os << to_string(*e.operands[0]) << '[' << to_string(*e.operands[1]) << ']';
      break;
    case SymKind::kMapBase: os << e.str_val; break;
    case SymKind::kMapStore:
      os << to_string(*e.operands[0]) << "{" << to_string(*e.operands[1])
         << " -> " << to_string(*e.operands[2]) << "}";
      break;
    case SymKind::kMapGet:
      os << to_string(*e.operands[0]) << '[' << to_string(*e.operands[1]) << ']';
      break;
    case SymKind::kContains:
      os << to_string(*e.operands[1]) << " in " << to_string(*e.operands[0]);
      break;
    case SymKind::kCall: {
      os << e.str_val << '(';
      for (std::size_t i = 0; i < e.operands.size(); ++i) {
        if (i) os << ", ";
        os << to_string(*e.operands[i]);
      }
      os << ')';
      break;
    }
    case SymKind::kPacket: {
      os << "packet{";
      bool first = true;
      for (const auto& [f, v] : e.fields) {
        if (!first) os << ", ";
        first = false;
        os << f << '=' << to_string(*v);
      }
      os << '}';
      break;
    }
  }
  return os.str();
}

namespace {

/// Memoized substitution worker. Keyed by node identity: shared subtrees
/// (deep map-store chains are *all* sharing) are rewritten exactly once
/// instead of once per path to them, which is the difference between
/// linear and exponential on adversarial DAGs.
SymRef substitute_memo(const SymRef& e,
                       const std::map<std::string, SymRef>& subst,
                       std::unordered_map<const SymExpr*, SymRef>& memo) {
  switch (e->kind) {
    case SymKind::kVar:
    case SymKind::kMapBase: {
      const auto it = subst.find(e->str_val);
      return it == subst.end() ? e : it->second;
    }
    case SymKind::kConstInt:
    case SymKind::kConstBool:
    case SymKind::kConstStr:
    case SymKind::kConstTuple:
      return e;
    default:
      break;
  }
  if (const auto it = memo.find(e.get()); it != memo.end()) return it->second;
  std::vector<SymRef> ops;
  ops.reserve(e->operands.size());
  bool changed = false;
  for (const auto& c : e->operands) {
    ops.push_back(substitute_memo(c, subst, memo));
    changed |= ops.back() != c;
  }
  std::map<std::string, SymRef> fields;
  for (const auto& [f, v] : e->fields) {
    fields[f] = substitute_memo(v, subst, memo);
    changed |= fields[f] != v;
  }
  SymRef result = e;
  if (changed) {
    switch (e->kind) {
      case SymKind::kConstList: result = make_list_const(std::move(ops)); break;
      case SymKind::kUn: result = make_un(e->un_op, std::move(ops[0])); break;
      case SymKind::kBin:
        result = make_bin(e->bin_op, std::move(ops[0]), std::move(ops[1]));
        break;
      case SymKind::kTupleExpr: result = make_tuple(std::move(ops)); break;
      case SymKind::kListGet:
        result = make_list_get(std::move(ops[0]), std::move(ops[1]));
        break;
      case SymKind::kMapStore:
        result = make_map_store(std::move(ops[0]), std::move(ops[1]),
                                std::move(ops[2]));
        break;
      case SymKind::kMapGet:
        result = make_map_get(std::move(ops[0]), std::move(ops[1]));
        break;
      case SymKind::kContains:
        result = make_contains(std::move(ops[0]), std::move(ops[1]));
        break;
      case SymKind::kCall: result = make_call(e->str_val, std::move(ops)); break;
      case SymKind::kPacket: result = make_packet(std::move(fields)); break;
      default:
        break;
    }
  }
  memo.emplace(e.get(), result);
  return result;
}

void collect_vars_memo(const SymRef& e, std::map<std::string, VarClass>& out,
                       std::unordered_set<const SymExpr*>& visited) {
  if (!visited.insert(e.get()).second) return;
  if (e->kind == SymKind::kVar) {
    out.emplace(e->str_val, e->var_class);
  }
  for (const auto& c : e->operands) collect_vars_memo(c, out, visited);
  for (const auto& [f, v] : e->fields) {
    (void)f;
    collect_vars_memo(v, out, visited);
  }
}

}  // namespace

SymRef substitute(const SymRef& e, const std::map<std::string, SymRef>& subst) {
  std::unordered_map<const SymExpr*, SymRef> memo;
  return substitute_memo(e, subst, memo);
}

void collect_vars(const SymRef& e, std::map<std::string, VarClass>& out) {
  std::unordered_set<const SymExpr*> visited;
  collect_vars_memo(e, out, visited);
}

namespace {

void collect_map_bases(const SymRef& e, std::map<std::string, SymRef>& subst,
                       const std::string& prefix,
                       std::unordered_set<const SymExpr*>& visited) {
  if (!visited.insert(e.get()).second) return;
  if (e->kind == SymKind::kMapBase && e->str_val != "{}" &&
      !subst.count(e->str_val)) {
    subst[e->str_val] = make_map_base(prefix + e->str_val);
  }
  for (const auto& c : e->operands) collect_map_bases(c, subst, prefix, visited);
  for (const auto& [f, v] : e->fields) {
    (void)f;
    collect_map_bases(v, subst, prefix, visited);
  }
}

}  // namespace

SymRef prefix_symbols(const SymRef& e, const std::string& prefix) {
  std::map<std::string, VarClass> vars;
  collect_vars(e, vars);
  std::map<std::string, SymRef> subst;
  for (const auto& [name, cls] : vars) {
    if (cls == VarClass::kState || cls == VarClass::kCfg) {
      subst[name] = make_var(prefix + name, cls);
    }
  }
  std::unordered_set<const SymExpr*> visited;
  collect_map_bases(e, subst, prefix, visited);
  return subst.empty() ? e : substitute(e, subst);
}

}  // namespace nfactor::symex
