// Concrete evaluation of symbolic expressions: given an input packet,
// a concrete state store, and config values, compute the value of any
// SymExpr the executor can produce. This is what lets the synthesized
// model *run* on real packets (model interpreter) and what closes the
// loop in the §5 accuracy experiment.
#pragma once

#include <functional>
#include <string>

#include "netsim/packet.h"
#include "runtime/value.h"
#include "symex/expr.h"

namespace nfactor::symex {

struct ConcreteEnv {
  /// Value of a named symbol ("pkt.ip_src", "rr_idx", "mode", ...).
  /// Must throw std::out_of_range for unknown names.
  std::function<runtime::Value(const std::string&)> var;

  /// Contents of a named state map (MapBase); nullptr = empty.
  std::function<const runtime::MapV*(const std::string&)> map_base;

  /// Optional zero-copy variant of map_base: the store's own Value for a
  /// named map (nullptr = fall back to map_base). When set, evaluating a
  /// bare MapBase *aliases* the store's map instead of materializing a
  /// copy, turning m[k] / k-in-m from O(|m|) into O(log |m|). Only safe
  /// for callers that treat every evaluated Value as immutable or
  /// deep-copy before mutating — the dataplane engine does; the model
  /// interpreter deliberately keeps copy semantics as the reference.
  std::function<const runtime::Value*(const std::string&)> map_value;

  /// Input packet, needed by uninterpreted payload predicates.
  const netsim::Packet* input_packet = nullptr;
};

/// Evaluate `e` under `env`. Throws std::runtime_error on expressions
/// that cannot be concretized (e.g. undef$ symbols).
runtime::Value eval_concrete(const SymRef& e, const ConcreteEnv& env);

/// Convenience: evaluate a boolean expression.
bool eval_concrete_bool(const SymRef& e, const ConcreteEnv& env);

}  // namespace nfactor::symex
