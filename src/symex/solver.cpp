#include "symex/solver.h"

#include <algorithm>
#include <functional>
#include <limits>
#include <map>
#include <optional>
#include <set>
#include <string>
#include <unordered_set>
#include <utility>

#include "obs/obs.h"

namespace nfactor::symex {

bool expr_less(const SymRef& a, const SymRef& b) {
  if (a.get() == b.get()) return false;
  if (a->fp != b->fp) return a->fp < b->fp;
  if (struct_eq(a, b)) return false;
  return a->key() < b->key();  // fingerprint collision: rare, exact
}

namespace {

using lang::BinOp;

constexpr Int kMin = std::numeric_limits<Int>::min();
constexpr Int kMax = std::numeric_limits<Int>::max();

/// Sorted, deduplicated view of a conjunction (expr_less order). Shared
/// by the checker and the cache key so the verdict is a pure function of
/// the constraint *set*: the solver's split budget (kMaxSplits) is
/// consumed in ingestion order, so without a canonical order `a && b`
/// and `b && a` could degrade differently.
std::vector<SymRef> canonicalize(const std::vector<SymRef>& constraints) {
  std::vector<SymRef> sorted = constraints;
  std::sort(sorted.begin(), sorted.end(), expr_less);
  sorted.erase(std::unique(sorted.begin(), sorted.end(),
                           [](const SymRef& a, const SymRef& b) {
                             return struct_eq(a, b);
                           }),
               sorted.end());
  return sorted;
}

std::vector<std::uint64_t> fps_of(const std::vector<SymRef>& canon) {
  std::vector<std::uint64_t> fps;
  fps.reserve(canon.size());
  for (const auto& c : canon) fps.push_back(c->fp);
  return fps;
}

struct TermState {
  Int lo = kMin;
  Int hi = kMax;
  std::set<Int> forbidden;
  int uf_parent = -1;  // index into term table
};

class Checker {
 public:
  bool run(const std::vector<SymRef>& cs) {
    for (const auto& c : cs) {
      if (!add(c, /*polarity=*/true)) return false;
    }
    return search();
  }

 private:
  /// Case-split over collected disjunctions (DPLL-style, depth-bounded).
  /// SAT if some branch assignment is consistent; disjunctions beyond the
  /// split budget degrade to opaque atoms (sound: may over-report SAT).
  bool search() {
    if (!check_terms()) return false;
    if (splits_.empty()) return true;

    // Take one disjunction and try each side on a copy of the state.
    auto [lhs, rhs, polarity] = splits_.back();
    splits_.pop_back();
    for (const SymRef& disjunct : {lhs, rhs}) {
      Checker branch = *this;
      branch.split_depth_ = split_depth_ + 1;
      if (branch.add(disjunct, polarity) && branch.search()) return true;
    }
    return false;
  }
  // ---- term table / union-find ----

  /// Terms are identified by node: hashed by fingerprint, confirmed with
  /// struct_eq (a pointer compare under the interner), and the map holds
  /// the SymRef itself so every term a Linear view ever produced —
  /// including expressions the tuple decomposition builds on the fly —
  /// stays alive for the checker's lifetime.
  int term_id(const SymRef& e) {
    const auto it = ids_.find(e);
    if (it != ids_.end()) return it->second;
    const int id = static_cast<int>(terms_.size());
    ids_.emplace(e, id);
    terms_.push_back({});
    terms_.back().uf_parent = id;
    seed_width_bounds(e, id);
    return id;
  }

  /// Intrinsic bounds a fresh term carries: packet header fields have
  /// known widths (pkt.dport > 70000 is unsatisfiable), independent of
  /// any explicit constraint.
  void seed_width_bounds(const SymRef& e, int id) {
    // Packet fields are kVar terms named "pkt.<field>" (or
    // "pktN.<field>" in multi-packet sequences).
    if (e->kind != SymKind::kVar) return;
    const std::string& name = e->str_val;
    const auto dot = name.find('.');
    if (dot == std::string::npos || name.compare(0, 3, "pkt") != 0) return;
    const std::string field = name.substr(dot + 1);
    TermState& ts = terms_[static_cast<std::size_t>(id)];
    auto bound = [&ts](Int lo, Int hi) {
      ts.lo = lo;
      ts.hi = hi;
    };
    if (field == "sport" || field == "dport" || field == "eth_type" ||
        field == "ip_id" || field == "tcp_win" || field == "len") {
      bound(0, 65535);
    } else if (field == "ip_proto" || field == "ip_ttl" ||
               field == "ip_tos" || field == "tcp_flags") {
      bound(0, 255);
    } else if (field == "ip_src" || field == "ip_dst" ||
               field == "tcp_seq" || field == "tcp_ack") {
      bound(0, 0xFFFFFFFFLL);
    } else if (field == "in_port") {
      bound(0, 255);
    } else if (field == "eth_src" || field == "eth_dst") {
      bound(0, 0xFFFFFFFFFFFFLL);
    }
  }

  int find(int x) {
    while (terms_[static_cast<std::size_t>(x)].uf_parent != x) {
      x = terms_[static_cast<std::size_t>(x)].uf_parent =
          terms_[static_cast<std::size_t>(terms_[static_cast<std::size_t>(x)].uf_parent)]
              .uf_parent;
    }
    return x;
  }

  bool unite(int a, int b) {
    a = find(a);
    b = find(b);
    if (a == b) return true;
    // Merge b into a.
    TermState& ta = terms_[static_cast<std::size_t>(a)];
    TermState& tb = terms_[static_cast<std::size_t>(b)];
    ta.lo = std::max(ta.lo, tb.lo);
    ta.hi = std::min(ta.hi, tb.hi);
    ta.forbidden.insert(tb.forbidden.begin(), tb.forbidden.end());
    tb.uf_parent = a;
    // Re-point disequalities lazily (checked against find()).
    return true;
  }

  bool narrow(int t, Int lo, Int hi) {
    TermState& ts = terms_[static_cast<std::size_t>(find(t))];
    ts.lo = std::max(ts.lo, lo);
    ts.hi = std::min(ts.hi, hi);
    return ts.lo <= ts.hi;
  }

  bool forbid(int t, Int v) {
    terms_[static_cast<std::size_t>(find(t))].forbidden.insert(v);
    return true;
  }

  // ---- atom ingestion ----

  bool add(const SymRef& e, bool polarity) {
    if (is_const_bool(e)) return e->bool_val == polarity;

    if (e->kind == SymKind::kUn && e->un_op == lang::UnOp::kNot) {
      return add(e->operands[0], !polarity);
    }

    if (e->kind == SymKind::kBin) {
      switch (e->bin_op) {
        case BinOp::kAnd:
          if (polarity) {
            return add(e->operands[0], true) && add(e->operands[1], true);
          }
          // !(a && b) == !a || !b : case-split.
          if (split_depth_ + splits_.size() < kMaxSplits) {
            splits_.push_back({e->operands[0], e->operands[1], false});
            return true;
          }
          break;  // over budget: opaque
        case BinOp::kOr:
          if (!polarity) {
            return add(e->operands[0], false) && add(e->operands[1], false);
          }
          if (split_depth_ + splits_.size() < kMaxSplits) {
            splits_.push_back({e->operands[0], e->operands[1], true});
            return true;
          }
          break;  // over budget: opaque
        case BinOp::kEq: case BinOp::kNe: case BinOp::kLt:
        case BinOp::kLe: case BinOp::kGt: case BinOp::kGe:
          return add_cmp(e, polarity);
        default:
          break;
      }
    }

    // Opaque boolean atom (Contains, uninterpreted call, residual Or...).
    // Polarity conflicts are detected on node identity: same atom under
    // both polarities is unsatisfiable.
    const auto it = bool_atoms_.find(e);
    if (it != bool_atoms_.end() && it->second != polarity) return false;
    bool_atoms_.emplace(e, polarity);
    return true;
  }

  static BinOp apply_polarity(BinOp op, bool polarity) {
    if (polarity) return op;
    switch (op) {
      case BinOp::kEq: return BinOp::kNe;
      case BinOp::kNe: return BinOp::kEq;
      case BinOp::kLt: return BinOp::kGe;
      case BinOp::kGe: return BinOp::kLt;
      case BinOp::kGt: return BinOp::kLe;
      case BinOp::kLe: return BinOp::kGt;
      default: return op;
    }
  }

  /// (term, offset) view of an int expression: expr = term + offset, or
  /// pure constant (term = nullptr).
  struct Linear {
    SymRef term;  // the term node itself; null for pure constants
    Int offset = 0;
  };

  Linear linearize(const SymRef& e) {
    if (is_const_int(e)) return {nullptr, e->int_val};
    if (e->kind == SymKind::kBin &&
        (e->bin_op == BinOp::kAdd || e->bin_op == BinOp::kSub)) {
      const Linear a = linearize(e->operands[0]);
      const Linear b = linearize(e->operands[1]);
      if (e->bin_op == BinOp::kAdd) {
        if (!a.term) return {b.term, a.offset + b.offset};
        if (!b.term) return {a.term, a.offset + b.offset};
      } else {
        if (!b.term) return {a.term, a.offset - b.offset};
      }
    }
    // Modulo by a positive constant: the term's value is intrinsically
    // within [0, c-1] (DSL modulo is Python-style non-negative).
    if (e->kind == SymKind::kBin && e->bin_op == BinOp::kMod &&
        is_const_int(e->operands[1]) && e->operands[1]->int_val > 0) {
      const int t = term_id(e);
      narrow(t, 0, e->operands[1]->int_val - 1);
      return {e, 0};
    }
    // Bitwise AND with a constant mask is bounded by the mask.
    if (e->kind == SymKind::kBin && e->bin_op == BinOp::kBitAnd) {
      for (int side = 0; side < 2; ++side) {
        const SymRef& m = e->operands[static_cast<std::size_t>(side)];
        if (is_const_int(m) && m->int_val >= 0) {
          const int t = term_id(e);
          narrow(t, 0, m->int_val);
          break;
        }
      }
    }
    return {e, 0};
  }

  bool add_cmp(const SymRef& e, bool polarity) {
    const BinOp op = apply_polarity(e->bin_op, polarity);
    const SymRef& lhs = e->operands[0];
    const SymRef& rhs = e->operands[1];

    // Tuple equality: decompose elementwise when arities match.
    const bool lhs_tuple = lhs->kind == SymKind::kTupleExpr ||
                           lhs->kind == SymKind::kConstTuple;
    const bool rhs_tuple = rhs->kind == SymKind::kTupleExpr ||
                           rhs->kind == SymKind::kConstTuple;
    if (op == BinOp::kEq && lhs_tuple && rhs_tuple) {
      const auto elems = [](const SymRef& t) {
        std::vector<SymRef> out;
        if (t->kind == SymKind::kConstTuple) {
          for (const Int v : t->tuple_val) out.push_back(make_int(v));
        } else {
          out = t->operands;
        }
        return out;
      };
      const auto le = elems(lhs);
      const auto re = elems(rhs);
      if (le.size() != re.size()) return false;
      for (std::size_t i = 0; i < le.size(); ++i) {
        if (!add(make_bin(BinOp::kEq, le[i], re[i]), true)) return false;
      }
      return true;
    }

    const Linear a = linearize(lhs);
    const Linear b = linearize(rhs);

    if (!a.term && !b.term) {
      // Fully constant; builders usually folded this already.
      switch (op) {
        case BinOp::kEq: return a.offset == b.offset;
        case BinOp::kNe: return a.offset != b.offset;
        case BinOp::kLt: return a.offset < b.offset;
        case BinOp::kLe: return a.offset <= b.offset;
        case BinOp::kGt: return a.offset > b.offset;
        case BinOp::kGe: return a.offset >= b.offset;
        default: return true;
      }
    }

    if (a.term && b.term) {
      const int ta = term_id(a.term);
      const int tb = term_id(b.term);
      if (struct_eq(a.term, b.term)) {
        // Same term: the relation is decided by the offsets alone.
        switch (op) {
          case BinOp::kEq: return a.offset == b.offset;
          case BinOp::kNe: return a.offset != b.offset;
          case BinOp::kLt: return a.offset < b.offset;
          case BinOp::kLe: return a.offset <= b.offset;
          case BinOp::kGt: return a.offset > b.offset;
          case BinOp::kGe: return a.offset >= b.offset;
          default: return true;
        }
      }
      if (op == BinOp::kEq && a.offset == b.offset) {
        return unite(ta, tb) && constrain_pair(a.term, b.term, kEqMask);
      }
      if (op == BinOp::kNe && a.offset == b.offset) {
        diseq_.emplace_back(ta, tb);
        return constrain_pair(a.term, b.term, kLtMask | kGtMask);
      }
      if (a.offset == b.offset) {
        // Ordering between two distinct terms: track the allowed
        // {<, =, >} relations per pair and detect contradictions like
        // t1 >= t2 && t1 < t2.
        std::uint8_t mask = kLtMask | kEqMask | kGtMask;
        switch (op) {
          case BinOp::kLt: mask = kLtMask; break;
          case BinOp::kLe: mask = kLtMask | kEqMask; break;
          case BinOp::kGt: mask = kGtMask; break;
          case BinOp::kGe: mask = kGtMask | kEqMask; break;
          default: break;
        }
        return constrain_pair(a.term, b.term, mask);
      }
      return true;  // differing offsets: undecided, assume satisfiable
    }

    // term + off OP const
    const SymRef& term = a.term ? a.term : b.term;
    Int c = a.term ? b.offset - a.offset : a.offset - b.offset;
    BinOp eff = op;
    if (!a.term) {
      // const OP term  ->  term OP' const
      switch (op) {
        case BinOp::kLt: eff = BinOp::kGt; break;
        case BinOp::kLe: eff = BinOp::kGe; break;
        case BinOp::kGt: eff = BinOp::kLt; break;
        case BinOp::kGe: eff = BinOp::kLe; break;
        default: break;
      }
    }
    const int t = term_id(term);
    switch (eff) {
      case BinOp::kEq: return narrow(t, c, c);
      case BinOp::kNe: return forbid(t, c);
      case BinOp::kLt: return narrow(t, kMin, c == kMin ? kMin : c - 1);
      case BinOp::kLe: return narrow(t, kMin, c);
      case BinOp::kGt: return narrow(t, c == kMax ? kMax : c + 1, kMax);
      case BinOp::kGe: return narrow(t, c, kMax);
      default: return true;
    }
  }

  bool check_terms() {
    for (std::size_t i = 0; i < terms_.size(); ++i) {
      const int r = find(static_cast<int>(i));
      if (r != static_cast<int>(i)) continue;
      const TermState& ts = terms_[static_cast<std::size_t>(r)];
      if (ts.lo > ts.hi) return false;
      if (ts.lo == ts.hi && ts.forbidden.count(ts.lo)) return false;
      // Narrow finite small ranges against forbidden sets.
      if (ts.hi != kMax && ts.lo != kMin && ts.hi - ts.lo < 64) {
        bool any = false;
        for (Int v = ts.lo; v <= ts.hi; ++v) {
          if (!ts.forbidden.count(v)) {
            any = true;
            break;
          }
        }
        if (!any) return false;
      }
    }
    for (const auto& [a, b] : diseq_) {
      if (find(a) == find(b)) return false;
      const TermState& ta = terms_[static_cast<std::size_t>(find(a))];
      const TermState& tb = terms_[static_cast<std::size_t>(find(b))];
      if (ta.lo == ta.hi && tb.lo == tb.hi && ta.lo == tb.lo) return false;
    }
    return true;
  }

  // Allowed-relation masks for ordered term pairs.
  static constexpr std::uint8_t kLtMask = 1;
  static constexpr std::uint8_t kEqMask = 2;
  static constexpr std::uint8_t kGtMask = 4;

  struct PairHash {
    std::size_t operator()(const std::pair<SymRef, SymRef>& p) const {
      // Mixed asymmetrically so (a, b) and (b, a) hash apart.
      const std::uint64_t a = p.first->fp;
      const std::uint64_t b = p.second->fp;
      return static_cast<std::size_t>(a * 0x9e3779b97f4a7c15ULL + b);
    }
  };
  struct PairEq {
    bool operator()(const std::pair<SymRef, SymRef>& x,
                    const std::pair<SymRef, SymRef>& y) const {
      return struct_eq(x.first, y.first) && struct_eq(x.second, y.second);
    }
  };

  /// Intersect the allowed {<, =, >} relations of the (a, b) pair with
  /// `mask`; false when the pair's relation set becomes empty. Pairs are
  /// stored in expr_less orientation so both argument orders land on the
  /// same record.
  bool constrain_pair(SymRef a, SymRef b, std::uint8_t mask) {
    if (expr_less(b, a)) {
      std::swap(a, b);
      // Flip the relation direction for the canonical orientation.
      std::uint8_t flipped = mask & kEqMask;
      if (mask & kLtMask) flipped |= kGtMask;
      if (mask & kGtMask) flipped |= kLtMask;
      mask = flipped;
    }
    auto [it, inserted] = pair_relations_.try_emplace(
        std::make_pair(std::move(a), std::move(b)),
        static_cast<std::uint8_t>(kLtMask | kEqMask | kGtMask));
    (void)inserted;
    it->second &= mask;
    return it->second != 0;
  }

  struct Split {
    SymRef lhs;
    SymRef rhs;
    bool polarity;
  };
  static constexpr std::size_t kMaxSplits = 12;

  std::unordered_map<SymRef, int, RefHash, RefEq> ids_;
  std::vector<TermState> terms_;
  std::vector<std::pair<int, int>> diseq_;
  std::unordered_map<SymRef, bool, RefHash, RefEq> bool_atoms_;
  std::unordered_map<std::pair<SymRef, SymRef>, std::uint8_t, PairHash, PairEq>
      pair_relations_;
  std::vector<Split> splits_;
  std::size_t split_depth_ = 0;
};

/// Symbols through which a conjunct can interact with other conjuncts:
/// named variables, map bases, and whole uninterpreted-call terms,
/// identified by their structural fingerprints. The checker's theories
/// propagate only through struct_eq-identical terms — intervals and
/// forbidden sets are per term, union-find chains need a shared term,
/// and opaque-atom polarity conflicts need the identical atom — and
/// struct_eq implies equal fingerprints, so fingerprint-grouped
/// conjuncts can only *over*-merge (on a collision), never split a
/// real interaction across components. Over-merging is sound: the
/// component just gets checked as one bigger set. Memoized on node
/// identity so shared subtrees are visited once.
void collect_symbols(const SymRef& e, std::set<std::uint64_t>& out,
                     std::unordered_set<const SymExpr*>& visited) {
  if (!visited.insert(e.get()).second) return;
  switch (e->kind) {
    case SymKind::kVar:
    case SymKind::kMapBase:
    case SymKind::kCall:
      // The node fingerprint encodes the kind, so a var, a map base and
      // a call can never alias each other's symbol (short of a 64-bit
      // collision, which only over-merges). For kCall the whole call
      // term is the symbol: links e.g. hash((1,2))==x with hash((1,2))==5
      // even when the arguments carry no variables.
      out.insert(e->fp);
      break;
    default:
      break;
  }
  for (const auto& c : e->operands) collect_symbols(c, out, visited);
  for (const auto& [f, v] : e->fields) {
    (void)f;
    collect_symbols(v, out, visited);
  }
}

/// KLEE-style constraint independence: split a canonicalized conjunction
/// into connected components of the share-a-symbol graph. The
/// conjunction is satisfiable iff every component is (no theory crosses
/// a component boundary), each component gets the full DPLL split budget
/// (never less precise than checking the whole set), and — the point —
/// small components recur across path-condition queries far more often
/// than whole path conditions do, which is what makes the verdict cache
/// hit within a single symbolic-execution run.
std::vector<std::vector<SymRef>> independence_components(
    const std::vector<SymRef>& canon) {
  std::vector<int> parent(canon.size());
  for (std::size_t i = 0; i < canon.size(); ++i) parent[i] = static_cast<int>(i);
  std::function<int(int)> find = [&](int x) {
    while (parent[x] != x) {
      parent[x] = parent[parent[x]];
      x = parent[x];
    }
    return x;
  };

  std::unordered_map<std::uint64_t, int> owner;  // symbol -> first conjunct
  for (std::size_t i = 0; i < canon.size(); ++i) {
    std::set<std::uint64_t> syms;
    std::unordered_set<const SymExpr*> conjunct_visited;
    collect_symbols(canon[i], syms, conjunct_visited);
    if (syms.empty()) syms.insert(0);  // symbol-free conjuncts group
    for (const std::uint64_t s : syms) {
      const auto [it, inserted] = owner.emplace(s, static_cast<int>(i));
      if (!inserted) parent[find(static_cast<int>(i))] = find(it->second);
    }
  }

  // Group by root, preserving the canonical conjunct order within and
  // across components (first-index order), so component keys — and the
  // verdict — stay a pure function of the constraint set.
  std::map<int, std::size_t> root_slot;
  std::vector<std::vector<SymRef>> comps;
  for (std::size_t i = 0; i < canon.size(); ++i) {
    const int r = find(static_cast<int>(i));
    const auto [it, inserted] = root_slot.emplace(r, comps.size());
    if (inserted) comps.emplace_back();
    comps[it->second].push_back(canon[i]);
  }
  return comps;
}

}  // namespace

SolverCache::SolverCache(std::size_t max_entries)
    : max_per_shard_(std::max<std::size_t>(1, max_entries / kShards)) {}

std::size_t SolverCache::KeyHash::operator()(
    const std::vector<std::uint64_t>& key) const {
  std::uint64_t h = 0xcbf29ce484222325ULL ^ key.size();
  for (const std::uint64_t fp : key) {
    h ^= fp;
    h *= 0x100000001b3ULL;
  }
  return static_cast<std::size_t>(h);
}

SolverCache::Shard& SolverCache::shard_for(
    const std::vector<std::uint64_t>& key) {
  return shards_[KeyHash{}(key) % kShards];
}

std::optional<SatResult> SolverCache::lookup(
    const std::vector<SymRef>& constraints) {
  const std::vector<SymRef> canon = canonicalize(constraints);
  const std::vector<std::uint64_t> key = fps_of(canon);
  Shard& s = shard_for(key);
  const std::lock_guard<std::mutex> lock(s.mu);
  const auto it = s.map.find(key);
  // Confirm a fingerprint-key hit elementwise before trusting the
  // verdict: a collision (equal fps, different constraints) is a miss.
  bool confirmed = it != s.map.end() && it->second.conj.size() == canon.size();
  if (confirmed) {
    for (std::size_t i = 0; i < canon.size(); ++i) {
      if (!struct_eq(canon[i], it->second.conj[i])) {
        confirmed = false;
        break;
      }
    }
  }
  if (!confirmed) {
    misses_.fetch_add(1, std::memory_order_relaxed);
    OBS_COUNT("symex.solver.cache.misses");
    return std::nullopt;
  }
  hits_.fetch_add(1, std::memory_order_relaxed);
  OBS_COUNT("symex.solver.cache.hits");
  return it->second.verdict;
}

void SolverCache::insert(const std::vector<SymRef>& constraints,
                         SatResult verdict) {
  std::vector<SymRef> canon = canonicalize(constraints);
  const std::vector<std::uint64_t> key = fps_of(canon);
  Shard& s = shard_for(key);
  const std::lock_guard<std::mutex> lock(s.mu);
  if (s.map.size() >= max_per_shard_ && s.map.find(key) == s.map.end()) {
    // Bulk-evict the full shard: verdicts are cheap to recompute and a
    // full sweep keeps the eviction path trivially O(1) amortized.
    const std::uint64_t dropped = s.map.size();
    s.map.clear();
    evictions_.fetch_add(dropped, std::memory_order_relaxed);
    OBS_COUNT_N("symex.solver.cache.evictions", dropped);
  }
  s.map.emplace(key, Entry{std::move(canon), verdict});
}

std::vector<std::uint64_t> SolverCache::canonical_key(
    const std::vector<SymRef>& constraints) {
  return fps_of(canonicalize(constraints));
}

std::size_t SolverCache::size() const {
  std::size_t n = 0;
  for (const auto& s : shards_) {
    const std::lock_guard<std::mutex> lock(s.mu);
    n += s.map.size();
  }
  return n;
}

SolverCacheStats SolverCache::stats() const {
  SolverCacheStats st;
  st.hits = hits_.load(std::memory_order_relaxed);
  st.misses = misses_.load(std::memory_order_relaxed);
  st.evictions = evictions_.load(std::memory_order_relaxed);
  return st;
}

void SolverCache::clear() {
  for (auto& s : shards_) {
    const std::lock_guard<std::mutex> lock(s.mu);
    s.map.clear();
  }
}

SatResult Solver::check(const std::vector<SymRef>& constraints) {
  ++queries_;
  OBS_TIMER_NS("symex.solver.query_ns");
  OBS_COUNT("symex.solver.queries");
  const std::vector<SymRef> canon = canonicalize(constraints);

  // Check (and memoize) per independence component: the conjunction is
  // SAT iff every component is. Whole path conditions are nearly always
  // novel, but their components recur constantly.
  bool sat = true;
  bool all_from_cache = true;
  for (const auto& comp : independence_components(canon)) {
    std::optional<SatResult> verdict;
    if (cache_ != nullptr) verdict = cache_->lookup(comp);
    if (!verdict) {
      all_from_cache = false;
      verdict = Checker().run(comp) ? SatResult::kSat : SatResult::kUnsat;
      if (cache_ != nullptr) cache_->insert(comp, *verdict);
    }
    if (*verdict == SatResult::kUnsat) {
      sat = false;
      break;
    }
  }

  // Query-level accounting: a query "hit" only when every component it
  // needed was already cached, so hits + misses == query_count() and the
  // hit rate reads as "queries answered without running the checker".
  if (cache_ != nullptr) {
    if (all_from_cache) {
      ++cache_hits_;
    } else {
      ++cache_misses_;
    }
  }
  OBS_COUNT(sat ? "symex.solver.sat" : "symex.solver.unsat");
  return sat ? SatResult::kSat : SatResult::kUnsat;
}

}  // namespace nfactor::symex
